// Quickstart: the smallest complete NetKernel session.
//
// Two hosts joined by 40 GbE; each runs one tenant VM in NetKernel
// mode, so the VMs' network stacks live in provider-side Network Stack
// Modules. The client sends a request, the server echoes it back, and
// the program prints what happened and through which stack.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"netkernel"
)

func main() {
	// A deterministic two-host cluster (the paper's testbed, §4.1).
	c := netkernel.NewCluster(netkernel.ClusterConfig{Seed: 1})
	h1 := c.AddHost("host1")
	h2 := c.AddHost("host2")
	c.ConnectHosts(h1, h2, netkernel.Testbed40G())

	// The server VM: its network stack is a CUBIC NSM on host2.
	server, err := h2.CreateVM(netkernel.VMConfig{
		Name: "server", IP: netkernel.IP("10.0.2.1"),
		Mode: netkernel.ModeNetKernel,
		NSM:  netkernel.NSMSpec{Form: netkernel.FormVM, CC: "cubic"},
	})
	must(err)

	// The client VM: a Windows guest whose traffic runs BBR, because
	// its NSM does — the paper's headline flexibility claim (§4.3).
	client, err := h1.CreateVM(netkernel.VMConfig{
		Name: "client", IP: netkernel.IP("10.0.1.1"),
		Profile: netkernel.ProfileWindows,
		Mode:    netkernel.ModeNetKernel,
		NSM:     netkernel.NSMSpec{Form: netkernel.FormVM, CC: "bbr"},
	})
	must(err)

	// NSM VMs take a few seconds to boot (virtual time is free).
	c.Run(4 * time.Second)

	// Server: accept and echo. The API is the classic socket surface —
	// socket/listen/accept/send/recv — delivered by GuestLib (§3.1
	// keeps "the application interfaces in the guest … intact").
	srv := server.Guest
	lfd := srv.Socket(netkernel.Callbacks{})
	srv.SetCallbacks(lfd, netkernel.Callbacks{OnAcceptable: func() {
		fd, ok := srv.Accept(lfd)
		if !ok {
			return
		}
		buf := make([]byte, 64<<10)
		srv.SetCallbacks(fd, netkernel.Callbacks{OnReadable: func() {
			for {
				n, _ := srv.Recv(fd, buf)
				if n == 0 {
					return
				}
				srv.Send(fd, buf[:n])
			}
		}})
	}})
	must(srv.Listen(lfd, 7, 16))

	// Client: connect, send, print the echo.
	cli := client.Guest
	var reply []byte
	fd := cli.Socket(netkernel.Callbacks{})
	cli.SetCallbacks(fd, netkernel.Callbacks{
		OnEstablished: func(err error) {
			must(err)
			fmt.Println("client: connected through the BBR NSM")
			cli.Send(fd, []byte("hello, network stack as a service"))
		},
		OnReadable: func() {
			buf := make([]byte, 64<<10)
			n, _ := cli.Recv(fd, buf)
			reply = append(reply, buf[:n]...)
		},
	})
	must(cli.Connect(fd, server.IP, 7))

	c.Run(time.Second)

	fmt.Printf("client: echo reply %q\n", reply)
	client.NSM.Stack.Conns(func(conn *netkernel.Conn) {
		fmt.Printf("provider: tenant %q (guest profile %s) ran %s, srtt %v\n",
			client.Name, client.Profile, conn.CongestionControl().Name(), conn.Stats().SRTT)
	})
	fmt.Printf("simulated %v of cluster time\n", c.Now())
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
