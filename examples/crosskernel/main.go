// Crosskernel reproduces the paper's §4.3 flexibility experiment end
// to end: a Windows VM — whose own kernel only speaks C-TCP — serves a
// bulk upload over a lossy 12 Mbit/s, 350 ms WAN using Google's BBR,
// because its Network Stack Module runs BBR. Three baselines show what
// the same transfer achieves with native guest stacks.
//
// Run with: go run ./examples/crosskernel
package main

import (
	"fmt"
	"time"

	"netkernel"
)

const (
	lossProb = 0.003 // calibrated against the paper; see EXPERIMENTS.md
	warmup   = 10 * time.Second
	measure  = 10 * time.Second
)

func main() {
	fmt.Println("crosskernel: Beijing server → California client")
	fmt.Println("12 Mbit/s uplink, 350 ms RTT, random loss (§4.3)")
	fmt.Println()
	fmt.Printf("%-26s %s\n", "scenario", "upload throughput")

	type scenario struct {
		label   string
		useNSM  bool
		profile netkernel.GuestProfile
		cc      string
	}
	for _, sc := range []scenario{
		{"Windows VM + BBR NSM", true, netkernel.ProfileWindows, "bbr"},
		{"Linux VM, native BBR", false, netkernel.ProfileLinux, "bbr"},
		{"Windows VM, C-TCP", false, netkernel.ProfileWindows, ""},
		{"Linux VM, CUBIC", false, netkernel.ProfileLinux, ""},
	} {
		bps := run(sc.useNSM, sc.profile, sc.cc)
		fmt.Printf("%-26s %6.2f Mbit/s\n", sc.label, bps/1e6)
	}
	fmt.Println("\npaper: BBR NSM 11.12, Linux BBR 11.14, Windows CTCP 8.60, Linux Cubic 2.61")
}

// run measures one scenario's upload throughput in bits per second.
func run(useNSM bool, profile netkernel.GuestProfile, cc string) float64 {
	c := netkernel.NewCluster(netkernel.ClusterConfig{Seed: 5})
	beijing := c.AddHost("beijing")
	california := c.AddHost("california")
	c.ConnectHosts(beijing, california, netkernel.WANPath(lossProb))

	// The receiving client in California: an ordinary Linux VM whose
	// in-guest stack accepts and drains the upload.
	client, err := california.CreateVM(netkernel.VMConfig{
		Name: "client", IP: netkernel.IP("10.0.2.1"), Mode: netkernel.ModeLegacy,
	})
	must(err)
	var received uint64
	listener, err := client.Legacy.Listen(443, 4, netkernel.SocketOptions{})
	must(err)
	listener.OnAcceptable = func() {
		conn, ok := listener.Accept()
		if !ok {
			return
		}
		buf := make([]byte, 256<<10)
		drain := func() {
			for {
				n, _ := conn.Read(buf)
				if n == 0 {
					return
				}
				received += uint64(n)
			}
		}
		conn.SetCallbacks(drain, nil, nil)
	}

	// The sending server in Beijing, per scenario.
	if useNSM {
		server, err := beijing.CreateVM(netkernel.VMConfig{
			Name: "server", IP: netkernel.IP("10.0.1.1"), Profile: profile,
			Mode: netkernel.ModeNetKernel,
			NSM:  netkernel.NSMSpec{Form: netkernel.FormVM, CC: cc},
		})
		must(err)
		c.Run(4 * time.Second) // NSM VM boot
		uploadViaGuestLib(server, client.IP)
	} else {
		server, err := beijing.CreateVM(netkernel.VMConfig{
			Name: "server", IP: netkernel.IP("10.0.1.1"), Profile: profile,
			Mode: netkernel.ModeLegacy,
		})
		must(err)
		if cc != "" {
			server.Legacy.SetDefaultCC(cc) // a Linux guest with BBR built in
		}
		uploadViaLegacyStack(server, client.IP)
	}

	c.Run(warmup)
	start := received
	c.Run(measure)
	return float64(received-start) * 8 / measure.Seconds()
}

var payload = make([]byte, 64<<10)

// uploadViaGuestLib pumps data through the NetKernel socket surface.
func uploadViaGuestLib(server *netkernel.VM, dst netkernel.Addr) {
	g := server.Guest
	var fd int32
	pump := func() {
		for g.Send(fd, payload) > 0 {
		}
	}
	fd = g.Socket(netkernel.Callbacks{
		OnEstablished: func(err error) {
			must(err)
			pump()
		},
		OnWritable: pump,
	})
	must(g.Connect(fd, dst, 443))
}

// uploadViaLegacyStack pumps data through the in-guest stack.
func uploadViaLegacyStack(server *netkernel.VM, dst netkernel.Addr) {
	var conn *netkernel.Conn
	pump := func() {
		for conn.Write(payload) > 0 {
		}
	}
	var err error
	conn, err = server.Legacy.Dial(netkernel.AddrPort{Addr: dst, Port: 443}, netkernel.SocketOptions{
		OnEstablished: func(err error) {
			must(err)
			pump()
		},
		OnWritable: pump,
	})
	must(err)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
