// Multitenancy demonstrates the provider-side benefits of §2.1: one
// Network Stack Module serving several tenant VMs (multiplexing
// gains), throughput SLAs enforced per tenant, live SLA-compliance
// tracking, and the §5 pricing models applied to metered usage.
//
// Three tenants share one CUBIC NSM on host1 and upload to a sink on
// host2 across a 10 GbE fabric. Tenant SLAs are 4 / 2 / 1 Gbit/s.
//
// Run with: go run ./examples/multitenancy
package main

import (
	"fmt"
	"time"

	"netkernel"
)

var slas = []float64{4e9, 2e9, 1e9}

func main() {
	c := netkernel.NewCluster(netkernel.ClusterConfig{Seed: 9, PerPacketCost: 300 * time.Nanosecond})
	h1 := c.AddHost("host1")
	h2 := c.AddHost("host2")
	c.ConnectHosts(h1, h2, netkernel.LinkConfig{
		Rate: 10 * netkernel.Gbps, Delay: 20 * time.Microsecond, QueueBytes: 4 << 20,
	})

	// Upload sink on host2.
	sink, err := h2.CreateVM(netkernel.VMConfig{
		Name: "sink", IP: netkernel.IP("10.0.2.1"), Mode: netkernel.ModeNetKernel,
		NSM: netkernel.NSMSpec{Form: netkernel.FormModule, CC: "cubic"},
	})
	must(err)

	// Three tenants multiplexed onto ONE container NSM, each with a
	// rate SLA.
	var tenants []*netkernel.VM
	var shared *netkernel.NSM
	for i, sla := range slas {
		spec := netkernel.NSMSpec{
			Form: netkernel.FormContainer, CC: "cubic",
			RateLimitBps: sla,
			ShareWith:    shared,
		}
		vm, err := h1.CreateVM(netkernel.VMConfig{
			Name: fmt.Sprintf("tenant%d", i),
			IP:   netkernel.IP("10.0.1.1"), // multiplexed tenants share the NSM's identity
			Mode: netkernel.ModeNetKernel,
			NSM:  spec,
		})
		must(err)
		if shared == nil {
			shared = vm.NSM
		}
		tenants = append(tenants, vm)
	}
	fmt.Printf("provisioned %d tenants on %d NSM (%s, %d MB) — the multiplexing gain\n",
		len(tenants), h1.NSMs(), shared.Form, shared.Profile.MemoryMB)

	c.Run(500 * time.Millisecond) // container boot

	startSink(sink)

	// Each tenant uploads as fast as its SLA allows; meters and SLA
	// trackers watch.
	var meters []*netkernel.Meter
	var trackers []*netkernel.ThroughputSLA
	for i, vm := range tenants {
		startUpload(vm, sink.IP, uint16(9000+i))
		meters = append(meters, netkernel.MeterNSM(c, vm, slas[i]))
		tr := netkernel.NewVMThroughputSLA(c, h1, vm, slas[i]*0.9, 100*time.Millisecond)
		tr.Start()
		trackers = append(trackers, tr)
	}

	c.Run(2 * time.Second)

	fmt.Println("\nper-tenant results after 2 s of uploads:")
	models := netkernel.DefaultPricingModels()
	for i, m := range meters {
		u := m.Snapshot()
		fmt.Printf("  %s: SLA %.0f Gbit/s, achieved %.2f Gbit/s, compliance %.0f%%\n",
			tenants[i].Name, slas[i]/1e9,
			trackers[i].MeanActiveBps()/1e9, trackers[i].Compliance()*100)
		for _, line := range netkernel.Invoice(u, models...) {
			fmt.Printf("      %-14s %v\n", line.Model, line.Amount)
		}
	}

	// The shared NSM's aggregate view.
	fmt.Printf("\nshared NSM: %d tenants, %d live conns, CPU busy %v\n",
		shared.Tenants(), shared.Stack.ConnCount(), shared.CPU.TotalBusy().Round(time.Microsecond))
}

func startSink(sink *netkernel.VM) {
	g := sink.Guest
	for port := uint16(9000); port < 9003; port++ { // one listener per tenant port
		l := g.Socket(netkernel.Callbacks{})
		g.SetCallbacks(l, netkernel.Callbacks{OnAcceptable: acceptAndDrain(g, l)})
		must(g.Listen(l, port, 16))
	}
}

func acceptAndDrain(g *netkernel.GuestLib, lfd int32) func() {
	return func() {
		for {
			fd, ok := g.Accept(lfd)
			if !ok {
				return
			}
			buf := make([]byte, 256<<10)
			g.SetCallbacks(fd, netkernel.Callbacks{OnReadable: func() {
				for {
					if n, _ := g.Recv(fd, buf); n == 0 {
						return
					}
				}
			}})
		}
	}
}

var payload = make([]byte, 64<<10)

func startUpload(vm *netkernel.VM, dst netkernel.Addr, port uint16) {
	g := vm.Guest
	var fd int32
	pump := func() {
		for g.Send(fd, payload) > 0 {
		}
	}
	fd = g.Socket(netkernel.Callbacks{
		OnEstablished: func(err error) {
			must(err)
			pump()
		},
		OnWritable: pump,
	})
	must(g.Connect(fd, dst, port))
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
