// Containers demonstrates the §5 NSaaS-for-containers scenario: "A
// container running a Spark task may use DCTCP for its traffic, while
// a web server container may need BBR or CUBIC."
//
// Today a container is stuck with its host's stack; with NSaaS each
// container attaches to the NSM whose stack fits its workload. Here a
// Spark-like shuffle container on host1 runs DCTCP (with ECN marking
// on the fabric, keeping the switch queue shallow) and a web container
// on the same host runs BBR — per-container stacks on one machine.
//
// Run with: go run ./examples/containers
package main

import (
	"fmt"
	"time"

	"netkernel"
)

func main() {
	c := netkernel.NewCluster(netkernel.ClusterConfig{Seed: 3})
	h1 := c.AddHost("host1")
	h2 := c.AddHost("host2")

	// A datacenter fabric with DCTCP-style ECN marking: CE above a
	// shallow queue threshold.
	ab, _ := c.ConnectHosts(h1, h2, netkernel.LinkConfig{
		Rate: 10 * netkernel.Gbps, Delay: 40 * time.Microsecond,
		QueueBytes: 2 << 20, ECNThresholdBytes: 90 << 10,
		Marker: netkernel.MarkCE,
	})

	// Two "containers" on host1 (a container attaches to an NSM exactly
	// like a VM: it is a process using GuestLib instead of the host's
	// stack). Each gets the stack its workload wants.
	spark, err := h1.CreateVM(netkernel.VMConfig{
		Name: "spark-shuffle", IP: netkernel.IP("10.0.1.1"),
		Mode: netkernel.ModeNetKernel,
		NSM:  netkernel.NSMSpec{Form: netkernel.FormContainer, CC: "dctcp"},
	})
	must(err)
	web, err := h1.CreateVM(netkernel.VMConfig{
		Name: "web-server", IP: netkernel.IP("10.0.1.2"),
		Mode: netkernel.ModeNetKernel,
		NSM:  netkernel.NSMSpec{Form: netkernel.FormContainer, CC: "bbr"},
	})
	must(err)

	// Peers on host2.
	sparkPeer, err := h2.CreateVM(netkernel.VMConfig{
		Name: "spark-peer", IP: netkernel.IP("10.0.2.1"),
		Mode: netkernel.ModeNetKernel,
		NSM:  netkernel.NSMSpec{Form: netkernel.FormContainer, CC: "dctcp"},
	})
	must(err)
	webClient, err := h2.CreateVM(netkernel.VMConfig{
		Name: "web-client", IP: netkernel.IP("10.0.2.2"),
		Mode: netkernel.ModeNetKernel,
		NSM:  netkernel.NSMSpec{Form: netkernel.FormContainer, CC: "cubic"},
	})
	must(err)
	c.Run(500 * time.Millisecond) // container boots

	fmt.Println("two containers, one host, each with the stack its workload wants:")

	// Phase 1: the Spark shuffle, DCTCP over the marking fabric.
	sparkBytes := startSink(sparkPeer, 7077)
	startBulk(spark, sparkPeer.IP, 7077)
	peakQ := 0
	probe := func() {}
	probe = func() {
		if q := ab.QueuedBytes(); q > peakQ {
			peakQ = q
		}
		c.Clock().AfterFunc(100*time.Microsecond, probe)
	}
	probe()
	c.Run(time.Second)
	report(spark, *sparkBytes, time.Second)
	fmt.Printf("      fabric during shuffle: %d CE marks, peak queue %d KB (threshold 90 KB)\n",
		ab.Stats().ECNMarks, peakQ>>10)

	// Phase 2: the web transfer, BBR.
	webBytes := startSink(webClient, 80)
	startBulk(web, webClient.IP, 80)
	c.Run(time.Second)
	report(web, *webBytes, time.Second)

	fmt.Println("\nwithout NSaaS both containers would share the host kernel's single stack.")
}

func report(vm *netkernel.VM, bytes uint64, window time.Duration) {
	cc, echoes := "", uint64(0)
	var srtt time.Duration
	vm.NSM.Stack.Conns(func(conn *netkernel.Conn) {
		cc = conn.CongestionControl().Name()
		echoes = conn.Stats().ECNEchoes
		srtt = conn.Stats().SRTT
	})
	fmt.Printf("  %-14s stack=%-6s %7.2f Gbit/s, srtt %v, ECN echoes %d\n",
		vm.Name, cc, float64(bytes)*8/window.Seconds()/1e9, srtt.Round(time.Microsecond), echoes)
}

var payload = make([]byte, 64<<10)

func startSink(vm *netkernel.VM, port uint16) *uint64 {
	var received uint64
	g := vm.Guest
	lfd := g.Socket(netkernel.Callbacks{})
	g.SetCallbacks(lfd, netkernel.Callbacks{OnAcceptable: func() {
		fd, ok := g.Accept(lfd)
		if !ok {
			return
		}
		buf := make([]byte, 256<<10)
		g.SetCallbacks(fd, netkernel.Callbacks{OnReadable: func() {
			for {
				n, _ := g.Recv(fd, buf)
				if n == 0 {
					return
				}
				received += uint64(n)
			}
		}})
	}})
	must(g.Listen(lfd, port, 8))
	return &received
}

func startBulk(vm *netkernel.VM, dst netkernel.Addr, port uint16) {
	g := vm.Guest
	var fd int32
	pump := func() {
		for g.Send(fd, payload) > 0 {
		}
	}
	fd = g.Socket(netkernel.Callbacks{
		OnEstablished: func(err error) {
			must(err)
			pump()
		},
		OnWritable: pump,
	})
	must(g.Connect(fd, dst, port))
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
