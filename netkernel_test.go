package netkernel

import (
	"bytes"
	"testing"
	"time"
)

// TestPublicAPIQuickstart exercises the documented public surface end
// to end: cluster, hosts, a BBR NSM serving a Windows-profile guest,
// and an echo exchange.
func TestPublicAPIQuickstart(t *testing.T) {
	c := NewCluster(ClusterConfig{})
	h1 := c.AddHost("host1")
	h2 := c.AddHost("host2")
	c.ConnectHosts(h1, h2, Testbed40G())

	server, err := h2.CreateVM(VMConfig{
		Name: "server", IP: IP("10.0.2.1"), Mode: ModeNetKernel,
		NSM: NSMSpec{Form: FormModule, CC: "cubic"},
	})
	if err != nil {
		t.Fatal(err)
	}
	client, err := h1.CreateVM(VMConfig{
		Name: "client", IP: IP("10.0.1.1"), Mode: ModeNetKernel,
		Profile: ProfileWindows,
		NSM:     NSMSpec{Form: FormModule, CC: "bbr"},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(50 * time.Millisecond) // module boot

	// Echo server.
	srv := server.Guest
	lfd := srv.Socket(Callbacks{})
	srv.SetCallbacks(lfd, Callbacks{OnAcceptable: func() {
		fd, ok := srv.Accept(lfd)
		if !ok {
			return
		}
		buf := make([]byte, 4096)
		srv.SetCallbacks(fd, Callbacks{OnReadable: func() {
			n, _ := srv.Recv(fd, buf)
			if n > 0 {
				srv.Send(fd, buf[:n])
			}
		}})
	}})
	if err := srv.Listen(lfd, 7, 8); err != nil {
		t.Fatal(err)
	}

	// Client.
	cli := client.Guest
	var got bytes.Buffer
	fd := cli.Socket(Callbacks{})
	cli.SetCallbacks(fd, Callbacks{
		OnEstablished: func(err error) {
			if err != nil {
				t.Errorf("connect: %v", err)
				return
			}
			cli.Send(fd, []byte("ping over NSaaS"))
		},
		OnReadable: func() {
			buf := make([]byte, 4096)
			n, _ := cli.Recv(fd, buf)
			got.Write(buf[:n])
		},
	})
	if err := cli.Connect(fd, server.IP, 7); err != nil {
		t.Fatal(err)
	}
	c.Run(500 * time.Millisecond)

	if got.String() != "ping over NSaaS" {
		t.Fatalf("echo returned %q", got.String())
	}
	// The Windows guest's traffic ran BBR (the §4.3 flexibility claim).
	found := ""
	client.NSM.Stack.Conns(func(conn *Conn) { found = conn.CongestionControl().Name() })
	if found != "bbr" {
		t.Fatalf("client NSM ran %q", found)
	}
}

func TestClusterClockAndHosts(t *testing.T) {
	c := NewCluster(ClusterConfig{Seed: 7})
	if c.Now() != 0 {
		t.Fatal("fresh cluster not at time zero")
	}
	c.AddHost("a")
	c.AddHost("b")
	if len(c.Hosts()) != 2 {
		t.Fatalf("Hosts = %d", len(c.Hosts()))
	}
	c.Run(time.Second)
	if c.Now() != time.Second {
		t.Fatalf("Now = %v", c.Now())
	}
	fired := false
	c.Clock().AfterFunc(time.Millisecond, func() { fired = true })
	c.RunUntilIdle()
	if !fired {
		t.Fatal("clock callback never ran")
	}
}

func TestCongestionControlCatalogue(t *testing.T) {
	ccs := CongestionControls()
	want := map[string]bool{"reno": true, "cubic": true, "bbr": true, "ctcp": true, "dctcp": true}
	for _, n := range ccs {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("missing congestion controls: %v", want)
	}
}

func TestIPHelper(t *testing.T) {
	if IP("10.1.2.3") != (Addr{10, 1, 2, 3}) {
		t.Fatal("IP parse broken")
	}
}

func TestLinkPresets(t *testing.T) {
	if Testbed40G().Rate != 40*Gbps {
		t.Fatal("testbed preset broken")
	}
	if WANPath(0.003).LossProb != 0.003 {
		t.Fatal("WAN preset broken")
	}
}

func TestLegacyModeThroughPublicAPI(t *testing.T) {
	c := NewCluster(ClusterConfig{})
	h1 := c.AddHost("h1")
	h2 := c.AddHost("h2")
	c.ConnectHosts(h1, h2, Testbed40G())
	vm1, err := h1.CreateVM(VMConfig{Name: "l1", IP: IP("10.0.1.1"), Mode: ModeLegacy, Profile: ProfileFreeBSD})
	if err != nil {
		t.Fatal(err)
	}
	if vm1.Legacy == nil || vm1.Legacy.DefaultCC() != "reno" {
		t.Fatal("FreeBSD legacy stack should default to reno")
	}
}
