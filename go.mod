module netkernel

go 1.22
