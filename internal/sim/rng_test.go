package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a dead generator")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 || math.IsNaN(f) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint8) bool {
		bound := int(n%100) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGBernoulliExtremes(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestRNGBernoulliMean(t *testing.T) {
	r := NewRNG(99)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	mean := float64(hits) / n
	if mean < 0.28 || mean > 0.32 {
		t.Fatalf("Bernoulli(0.3) empirical mean = %v", mean)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		p := r.Perm(20)
		seen := make(map[int]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(seen) == 20
	}, nil); err != nil {
		t.Fatal(err)
	}
}
