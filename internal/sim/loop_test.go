package sim

import (
	"testing"
	"time"
)

func TestLoopOrdering(t *testing.T) {
	l := NewLoop()
	var got []int
	l.AfterFunc(3*time.Millisecond, func() { got = append(got, 3) })
	l.AfterFunc(1*time.Millisecond, func() { got = append(got, 1) })
	l.AfterFunc(2*time.Millisecond, func() { got = append(got, 2) })
	l.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if l.Now() != Time(3*time.Millisecond) {
		t.Fatalf("Now = %v, want 3ms", l.Now())
	}
}

func TestLoopSameInstantFIFO(t *testing.T) {
	l := NewLoop()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		l.AfterFunc(time.Millisecond, func() { got = append(got, i) })
	}
	l.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant order = %v, want FIFO", got)
		}
	}
}

func TestLoopPostRunsAtCurrentInstant(t *testing.T) {
	l := NewLoop()
	var at Time = -1
	l.AfterFunc(5*time.Millisecond, func() {
		l.Post(func() { at = l.Now() })
	})
	l.Run()
	if at != Time(5*time.Millisecond) {
		t.Fatalf("posted callback ran at %v, want 5ms", at)
	}
}

func TestLoopTimerStop(t *testing.T) {
	l := NewLoop()
	fired := false
	tm := l.AfterFunc(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("first Stop should report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	l.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestLoopStopAfterFire(t *testing.T) {
	l := NewLoop()
	tm := l.AfterFunc(time.Millisecond, func() {})
	l.Run()
	if tm.Stop() {
		t.Fatal("Stop after fire should report false")
	}
}

// A stale Timer handle whose event struct was recycled must not cancel the
// new occupant.
func TestLoopStaleTimerHandle(t *testing.T) {
	l := NewLoop()
	stale := l.AfterFunc(time.Millisecond, func() {})
	l.Run() // fires; event recycled to free list

	fired := false
	l.AfterFunc(time.Millisecond, func() { fired = true }) // reuses struct
	if stale.Stop() {
		t.Fatal("stale handle Stop reported true")
	}
	l.Run()
	if !fired {
		t.Fatal("stale handle cancelled an unrelated event")
	}
}

func TestLoopRunUntil(t *testing.T) {
	l := NewLoop()
	var fired []time.Duration
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 10 * time.Millisecond} {
		d := d
		l.AfterFunc(d, func() { fired = append(fired, d) })
	}
	l.RunUntil(Time(5 * time.Millisecond))
	if len(fired) != 2 {
		t.Fatalf("fired %v, want exactly the first two", fired)
	}
	if l.Now() != Time(5*time.Millisecond) {
		t.Fatalf("Now = %v, want 5ms", l.Now())
	}
	l.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %v after Run, want all three", fired)
	}
}

// Regression: cancelled timers sitting at the top of the heap must not
// let a time-bounded run execute events beyond its bound. (TCP rearms
// its RTO on every segment, so the heap front is usually a pile of
// stopped timers; the original RunUntil discarded them via Step, which
// then ran the next live event even if it lay past the bound.)
func TestLoopRunUntilSkipsStoppedWithoutOvershoot(t *testing.T) {
	l := NewLoop()
	for i := 0; i < 100; i++ {
		l.AfterFunc(time.Duration(i)*time.Microsecond, func() {}).Stop()
	}
	ran := false
	l.AfterFunc(10*time.Millisecond, func() { ran = true })
	l.RunFor(time.Millisecond)
	if ran {
		t.Fatal("RunFor executed an event beyond its bound")
	}
	if l.Now() != Time(time.Millisecond) {
		t.Fatalf("Now = %v, want exactly 1ms", l.Now())
	}
	l.RunFor(10 * time.Millisecond)
	if !ran {
		t.Fatal("the live event never ran")
	}
}

func TestLoopRunFor(t *testing.T) {
	l := NewLoop()
	l.RunFor(time.Second)
	l.RunFor(time.Second)
	if l.Now() != Time(2*time.Second) {
		t.Fatalf("Now = %v, want 2s", l.Now())
	}
}

func TestLoopNegativeDelayClamped(t *testing.T) {
	l := NewLoop()
	l.RunFor(time.Second)
	ran := false
	l.AfterFunc(-time.Hour, func() { ran = true })
	l.Run()
	if !ran {
		t.Fatal("negative-delay callback did not run")
	}
	if l.Now() != Time(time.Second) {
		t.Fatalf("negative delay moved time to %v", l.Now())
	}
}

func TestLoopNestedScheduling(t *testing.T) {
	l := NewLoop()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			l.AfterFunc(time.Microsecond, rec)
		}
	}
	l.AfterFunc(0, rec)
	l.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if l.Now() != Time(99*time.Microsecond) {
		t.Fatalf("Now = %v, want 99µs", l.Now())
	}
}

func TestLoopProcessedCount(t *testing.T) {
	l := NewLoop()
	for i := 0; i < 7; i++ {
		l.AfterFunc(time.Duration(i), func() {})
	}
	tm := l.AfterFunc(time.Hour, func() {})
	tm.Stop()
	l.Run()
	if l.Processed() != 7 {
		t.Fatalf("Processed = %d, want 7", l.Processed())
	}
}

func TestRealClockAfterFunc(t *testing.T) {
	c := NewRealClock()
	done := make(chan Time, 1)
	c.AfterFunc(time.Millisecond, func() { done <- c.Now() })
	select {
	case at := <-done:
		if at < Time(time.Millisecond) {
			t.Fatalf("fired early: %v", at)
		}
	case <-time.After(time.Second):
		t.Fatal("timer never fired")
	}
}

func TestRealClockSerialization(t *testing.T) {
	c := NewRealClock()
	counter := 0
	done := make(chan struct{})
	const n = 100
	for i := 0; i < n; i++ {
		c.Post(func() {
			counter++ // safe only if Post serializes
			if counter == n {
				close(done)
			}
		})
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("only %d of %d callbacks ran", counter, n)
	}
}

func TestRealClockStop(t *testing.T) {
	c := NewRealClock()
	fired := make(chan struct{}, 1)
	tm := c.AfterFunc(50*time.Millisecond, func() { fired <- struct{}{} })
	if !tm.Stop() {
		t.Fatal("Stop reported false for pending timer")
	}
	select {
	case <-fired:
		t.Fatal("stopped timer fired")
	case <-time.After(100 * time.Millisecond):
	}
}

func BenchmarkLoopScheduleAndRun(b *testing.B) {
	l := NewLoop()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.AfterFunc(time.Nanosecond, fn)
		l.Step()
	}
}
