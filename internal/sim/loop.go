package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Loop is a deterministic discrete-event loop implementing Clock in
// virtual time. Events scheduled for the same instant run in scheduling
// order. Loop is not safe for concurrent use: everything that touches a
// Loop must run either before Run/RunFor or from inside its callbacks.
type Loop struct {
	now    Time
	events eventHeap
	seq    uint64
	free   []*event // recycled event structs
	nrun   uint64
}

// NewLoop returns an empty loop positioned at time zero.
func NewLoop() *Loop {
	return &Loop{events: make(eventHeap, 0, 1024)}
}

// Now returns the current virtual time.
func (l *Loop) Now() Time { return l.now }

// Processed returns the number of callbacks executed so far, which is
// useful for cost accounting in tests and benchmarks.
func (l *Loop) Processed() uint64 { return l.nrun }

// Pending returns the number of scheduled (possibly stopped) events.
func (l *Loop) Pending() int { return len(l.events) }

// AfterFunc schedules fn to run once d has elapsed in virtual time.
func (l *Loop) AfterFunc(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	e := l.at(l.now.Add(d), fn)
	return loopTimer{e: e, seq: e.seq}
}

// Post schedules fn to run at the current instant, after events already
// pending for it.
func (l *Loop) Post(fn func()) { l.at(l.now, fn) }

func (l *Loop) at(t Time, fn func()) *event {
	if t < l.now {
		panic(fmt.Sprintf("sim: scheduling into the past: %v < %v", t, l.now))
	}
	var e *event
	if n := len(l.free); n > 0 {
		e = l.free[n-1]
		l.free = l.free[:n-1]
	} else {
		e = new(event)
	}
	l.seq++
	*e = event{at: t, seq: l.seq, fn: fn, loop: l, idx: -1}
	heap.Push(&l.events, e)
	return e
}

// Step executes the next pending event, advancing virtual time to its
// instant. It reports whether an event was executed.
func (l *Loop) Step() bool {
	for len(l.events) > 0 {
		e := heap.Pop(&l.events).(*event)
		fn, stopped := e.fn, e.stopped
		e.fn = nil
		e.loop = nil
		l.free = append(l.free, e)
		if stopped {
			continue
		}
		if e.at > l.now {
			l.now = e.at
		}
		l.nrun++
		fn()
		return true
	}
	return false
}

// Run executes events until none remain.
func (l *Loop) Run() {
	for l.Step() {
	}
}

// pruneStopped discards cancelled events sitting at the top of the heap
// so time-bounded runs never mistake them for runnable work.
func (l *Loop) pruneStopped() {
	for len(l.events) > 0 && l.events[0].stopped {
		e := heap.Pop(&l.events).(*event)
		e.fn = nil
		e.loop = nil
		l.free = append(l.free, e)
	}
}

// RunUntil executes every event scheduled at or before t, then advances
// the clock to t.
func (l *Loop) RunUntil(t Time) {
	for {
		l.pruneStopped()
		if len(l.events) == 0 || l.events[0].at > t {
			break
		}
		l.Step()
	}
	if t > l.now {
		l.now = t
	}
}

// RunFor executes everything within the next d of virtual time and
// advances the clock by exactly d.
func (l *Loop) RunFor(d time.Duration) { l.RunUntil(l.now.Add(d)) }

// event is a scheduled callback. Cancellation is lazy: Stop marks the
// event and Step discards marked events when they surface. Event structs
// are recycled, so Timer handles carry the sequence number they were
// issued for; a stale handle (its event already ran and was reissued)
// becomes a no-op instead of cancelling an unrelated event.
type event struct {
	at      Time
	seq     uint64
	fn      func()
	loop    *Loop
	idx     int
	stopped bool
}

type loopTimer struct {
	e   *event
	seq uint64
}

// Stop implements Timer.
func (t loopTimer) Stop() bool {
	e := t.e
	if e.seq != t.seq || e.loop == nil || e.stopped || e.fn == nil {
		return false
	}
	e.stopped = true
	return true
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}
