package sim

import (
	"testing"
	"time"
)

// A timer stopped from inside the serialized region must not run, even
// when the underlying time.Timer has already fired and its callback is
// blocked on the clock mutex. This is the wall-clock analogue of
// loopTimer's deterministic Stop; without it a canceled retransmission
// timer can fire spuriously against post-cancel connection state.
func TestRealClockStopCancelsFiredTimer(t *testing.T) {
	c := NewRealClock()
	ran := make(chan struct{}, 1)
	c.Locked(func() {
		tm := c.AfterFunc(0, func() { ran <- struct{}{} })
		// Give the runtime timer time to fire and block on c.mu, then
		// stop it while still holding the lock.
		time.Sleep(20 * time.Millisecond)
		tm.Stop()
	})
	select {
	case <-ran:
		t.Fatal("stopped timer callback ran anyway")
	case <-time.After(50 * time.Millisecond):
	}
}

// A timer that is not stopped still runs exactly once.
func TestRealClockAfterFuncRuns(t *testing.T) {
	c := NewRealClock()
	ran := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(ran) })
	select {
	case <-ran:
	case <-time.After(time.Second):
		t.Fatal("timer never fired")
	}
}
