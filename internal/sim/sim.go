// Package sim provides the time substrate shared by every NetKernel
// component: a Clock interface, a deterministic discrete-event loop that
// implements it in virtual time, a wall-clock implementation, and a
// deterministic random number generator.
//
// All protocol code (the TCP/IP stack, the CoreEngine, the simulated
// network fabric) is written against Clock, so the same state machines run
// unchanged in the virtual-time domain (benchmark reproduction,
// deterministic tests) and in the wall-clock domain (interactive use).
//
// Callbacks scheduled on a Clock are serialized: no two callbacks of the
// same Clock ever run concurrently, so state guarded by a Clock needs no
// further locking.
package sim

import "time"

// Time is an instant in nanoseconds since the clock's epoch (the start of
// the simulation or the creation of the wall clock).
type Time int64

// Duration converts a Time to the time.Duration since the epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// String formats the instant as a duration since the epoch.
func (t Time) String() string { return time.Duration(t).String() }

// A Timer is a handle to a pending callback scheduled with AfterFunc.
type Timer interface {
	// Stop cancels the pending callback. It reports whether the callback
	// was still pending: false means it already ran or was already stopped.
	Stop() bool
}

// Clock is the time source and serialized executor every NetKernel
// component runs on.
type Clock interface {
	// Now returns the current instant.
	Now() Time

	// AfterFunc schedules fn to run on the clock's executor once d has
	// elapsed. Non-positive d schedules fn as soon as possible, after
	// callbacks already pending for the current instant.
	AfterFunc(d time.Duration, fn func()) Timer

	// Post schedules fn to run on the clock's executor as soon as
	// possible. It is safe to call from any goroutine.
	Post(fn func())
}
