package sim

import (
	"sync"
	"sync/atomic"
	"time"
)

// RealClock implements Clock against the wall clock. Callbacks are
// serialized by an internal mutex, mirroring the single-threaded execution
// guarantee of Loop, so stack state needs no extra locking in either
// domain.
type RealClock struct {
	mu    sync.Mutex
	start time.Time
}

// NewRealClock returns a wall clock whose epoch is now.
func NewRealClock() *RealClock {
	return &RealClock{start: time.Now()}
}

// Now returns the wall-clock time since the epoch.
func (c *RealClock) Now() Time { return Time(time.Since(c.start)) }

// AfterFunc schedules fn after d of wall-clock time.
//
// Stop must cancel as deterministically here as it does in the Loop
// domain, where loopTimer.Stop marks the event dead before the
// scheduler reaches it. time.Timer.Stop alone cannot give that: once
// the runtime timer fires, its goroutine may already be blocked on
// c.mu while the serialized callback that is *currently running*
// decides to Stop it — e.g. an ACK canceling a retransmission timer.
// Without a guard the stale callback then runs against state that no
// longer expects it (a spurious RTO fires, backoff doubles, and a
// healthy connection can be torn down). The stopped flag closes that
// window: Stop sets it (the caller holds c.mu, the late callback
// acquires c.mu before loading), so a stopped timer never runs.
func (c *RealClock) AfterFunc(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	stopped := new(atomic.Bool)
	t := time.AfterFunc(d, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		if stopped.Load() {
			return
		}
		fn()
	})
	return realTimer{t: t, stopped: stopped}
}

// Post runs fn on a fresh goroutine under the clock's serialization lock.
func (c *RealClock) Post(fn func()) {
	go func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		fn()
	}()
}

// Locked runs fn under the clock's serialization lock from the calling
// goroutine, letting external code interact safely with state owned by
// the clock's callbacks.
func (c *RealClock) Locked(fn func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fn()
}

type realTimer struct {
	t       *time.Timer
	stopped *atomic.Bool
}

func (t realTimer) Stop() bool {
	t.stopped.Store(true)
	return t.t.Stop()
}
