package sim

import (
	"sync"
	"time"
)

// RealClock implements Clock against the wall clock. Callbacks are
// serialized by an internal mutex, mirroring the single-threaded execution
// guarantee of Loop, so stack state needs no extra locking in either
// domain.
type RealClock struct {
	mu    sync.Mutex
	start time.Time
}

// NewRealClock returns a wall clock whose epoch is now.
func NewRealClock() *RealClock {
	return &RealClock{start: time.Now()}
}

// Now returns the wall-clock time since the epoch.
func (c *RealClock) Now() Time { return Time(time.Since(c.start)) }

// AfterFunc schedules fn after d of wall-clock time.
func (c *RealClock) AfterFunc(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	t := time.AfterFunc(d, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		fn()
	})
	return realTimer{t}
}

// Post runs fn on a fresh goroutine under the clock's serialization lock.
func (c *RealClock) Post(fn func()) {
	go func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		fn()
	}()
}

// Locked runs fn under the clock's serialization lock from the calling
// goroutine, letting external code interact safely with state owned by
// the clock's callbacks.
func (c *RealClock) Locked(fn func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fn()
}

type realTimer struct{ t *time.Timer }

func (t realTimer) Stop() bool { return t.t.Stop() }
