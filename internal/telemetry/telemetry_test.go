package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"netkernel/internal/sim"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(-7)
	g.Add(10)
	if got := g.Load(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
}

func TestRegistryScopesAndSnapshot(t *testing.T) {
	r := NewRegistry()
	var owned Counter
	scope := r.Scope("vm1.guest")
	scope.Counter("ops", &owned)
	owned.Add(5)
	r.Counter("loose").Inc()
	r.Gauge("depth").Set(9)
	r.GaugeFunc("derived", func() int64 { return 11 })
	scope.Child("q").GaugeFunc("len", func() int64 { return 3 })
	r.Histogram("lat").Observe(100)

	snap := r.Snapshot()
	if got := snap.Counter("vm1.guest.ops"); got != 5 {
		t.Errorf("scoped counter = %d, want 5", got)
	}
	if got := snap.Counter("loose"); got != 1 {
		t.Errorf("loose counter = %d, want 1", got)
	}
	if got := snap.Gauge("depth"); got != 9 {
		t.Errorf("gauge = %d, want 9", got)
	}
	if got := snap.Gauge("derived"); got != 11 {
		t.Errorf("gauge func = %d, want 11", got)
	}
	if got := snap.Gauge("vm1.guest.q.len"); got != 3 {
		t.Errorf("child scope gauge = %d, want 3", got)
	}
	if h, ok := snap.Histograms["lat"]; !ok || h.Count != 1 {
		t.Errorf("histogram snapshot missing or wrong: %+v", h)
	}
	if got := r.CounterValue("vm1.guest.ops"); got != 5 {
		t.Errorf("CounterValue = %d, want 5", got)
	}
	if got := r.CounterValue("absent"); got != 0 {
		t.Errorf("CounterValue(absent) = %d, want 0", got)
	}

	filtered := snap.Filter("vm1.")
	if len(filtered.Counters) != 1 || len(filtered.Gauges) != 1 {
		t.Errorf("filter kept %d counters / %d gauges, want 1/1", len(filtered.Counters), len(filtered.Gauges))
	}
	if !strings.Contains(snap.String(), "vm1.guest.ops") {
		t.Error("String() missing scoped counter row")
	}
}

// TestRegistryLastWinsRegistration models an NSM restart: the rebooted
// component re-registers the same metric names and its fresh counters
// must take over.
func TestRegistryLastWinsRegistration(t *testing.T) {
	r := NewRegistry()
	var old, fresh Counter
	r.RegisterCounter("nsm1.stack.frames_in", &old)
	old.Add(100)
	r.RegisterCounter("nsm1.stack.frames_in", &fresh)
	fresh.Add(3)
	if got := r.Snapshot().Counter("nsm1.stack.frames_in"); got != 3 {
		t.Fatalf("after re-registration snapshot = %d, want 3 (the fresh counter)", got)
	}
}

// TestNilSafety: every Scope and Tracer method must be a no-op on nil
// receivers so unmetered components need no conditionals on hot paths.
func TestNilSafety(t *testing.T) {
	var r *Registry
	scope := r.Scope("x")
	if scope != nil {
		t.Fatal("nil registry must produce a nil scope")
	}
	var c Counter
	scope.Counter("a", &c)
	scope.GaugeFunc("b", func() int64 { return 0 })
	scope.Child("c").Counter("d", &c)
	scope.Histogram("e").Observe(1) // standalone histogram, must not panic
	if r.CounterValue("x") != 0 {
		t.Error("nil registry CounterValue != 0")
	}
	r.Snapshot() // must not panic

	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	if id := tr.Start("tx:send"); id != 0 {
		t.Errorf("nil tracer Start = %d, want 0", id)
	}
	tr.Stamp(1, "hop", 0)
	tr.End(1, "hop")
	tr.Drop(1)
	if got := tr.Completed(); got != nil {
		t.Errorf("nil tracer Completed = %v, want nil", got)
	}
}

// TestHistogramQuantiles checks the log-bucketed percentile estimates
// land in the right bucket's upper bound.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(100) // bucket of 64..127 → upper bound 127
	}
	h.Observe(1 << 20)
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.P50 != 127 {
		t.Errorf("p50 = %d, want 127 (bucket upper bound)", s.P50)
	}
	// Rank 99 of 100 is the outlier; its log2 bucket's upper bound is
	// 2^21-1.
	if s.P99 != 1<<21-1 {
		t.Errorf("p99 = %d, want %d", s.P99, 1<<21-1)
	}
	if s.Max != 1<<20 {
		t.Errorf("max = %d, want %d", s.Max, 1<<20)
	}
	if s.Sum != 99*100+1<<20 {
		t.Errorf("sum = %d", s.Sum)
	}
}

// TestRegistryConcurrency hammers counters, gauges, and histograms
// from N writer goroutines while M readers snapshot concurrently; run
// under -race this is the data-race gate for the whole registry. The
// invariants: counters observed by successive snapshots are monotonic,
// and every histogram snapshot conserves its total (Count == Σ bucket
// counts) even mid-write.
func TestRegistryConcurrency(t *testing.T) {
	const (
		writers = 8
		readers = 4
		perG    = 20000
	)
	r := NewRegistry()
	// Pre-register so writers contend on the atomics, not the map.
	for w := 0; w < writers; w++ {
		r.Counter(fmt.Sprintf("w%d.ops", w))
	}
	shared := r.Counter("shared.ops")
	hist := r.Histogram("shared.lat")
	r.GaugeFunc("derived.total", func() int64 { return int64(shared.Load()) })

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			own := r.Counter(fmt.Sprintf("w%d.ops", w))
			for i := 0; i < perG; i++ {
				own.Inc()
				shared.Add(2)
				hist.Observe(uint64(i%1024) + 1)
			}
		}()
	}
	errs := make(chan string, readers*4)
	for m := 0; m < readers; m++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastShared uint64
			for i := 0; i < 200; i++ {
				snap := r.Snapshot()
				if v := snap.Counter("shared.ops"); v < lastShared {
					errs <- fmt.Sprintf("shared.ops went backwards: %d after %d", v, lastShared)
					return
				} else {
					lastShared = v
				}
				h := snap.Histograms["shared.lat"]
				var sum uint64
				for _, b := range h.Buckets {
					sum += b
				}
				if h.Count != sum {
					errs <- fmt.Sprintf("histogram total not conserved: Count=%d Σbuckets=%d", h.Count, sum)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	final := r.Snapshot()
	if got := final.Counter("shared.ops"); got != writers*perG*2 {
		t.Errorf("shared.ops = %d, want %d", got, writers*perG*2)
	}
	for w := 0; w < writers; w++ {
		if got := final.Counter(fmt.Sprintf("w%d.ops", w)); got != perG {
			t.Errorf("w%d.ops = %d, want %d", w, got, perG)
		}
	}
	h := final.Histograms["shared.lat"]
	if h.Count != writers*perG {
		t.Errorf("histogram count = %d, want %d", h.Count, writers*perG)
	}
}

// TestTracerSampling verifies counter-based 1-in-N sampling: with
// SampleEvery=4, exactly every 4th Start call opens a span, with no
// randomness — the property trace determinism rests on.
func TestTracerSampling(t *testing.T) {
	loop := sim.NewLoop()
	tr := NewTracer(TraceConfig{Clock: loop, SampleEvery: 4})
	var ids []uint32
	for i := 0; i < 16; i++ {
		if id := tr.Start("tx:send"); id != 0 {
			ids = append(ids, id)
			tr.End(id, "done")
		}
	}
	if len(ids) != 4 {
		t.Fatalf("sampled %d of 16, want 4", len(ids))
	}
	if got := len(tr.Completed()); got != 4 {
		t.Fatalf("completed = %d, want 4", got)
	}
	tr.SetSampleEvery(0)
	if tr.Enabled() {
		t.Error("tracer still enabled after SetSampleEvery(0)")
	}
	if id := tr.Start("tx:send"); id != 0 {
		t.Error("disabled tracer started a span")
	}
}

// TestTracerSpanLifecycle walks one span through its hops in virtual
// time and checks the recorded offsets, notes, and duration.
func TestTracerSpanLifecycle(t *testing.T) {
	loop := sim.NewLoop()
	reg := NewRegistry()
	tr := NewTracer(TraceConfig{Clock: loop, SampleEvery: 1, Metrics: reg.Scope("trace")})

	var spanID uint32
	spanID = tr.Start("tx:send")
	if spanID == 0 {
		t.Fatal("SampleEvery=1 did not sample")
	}
	tr.Stamp(spanID, "guestlib.enqueue", 3)
	loop.AfterFunc(100, func() { tr.Stamp(spanID, "engine.vm-pump", 0) })
	loop.AfterFunc(250, func() { tr.End(spanID, "stack.tx") })
	loop.Run()

	done := tr.Completed()
	if len(done) != 1 {
		t.Fatalf("completed = %d, want 1", len(done))
	}
	sp := done[0]
	if sp.Duration() != 250 {
		t.Errorf("duration = %d, want 250", sp.Duration())
	}
	wantHops := []struct {
		name string
		at   sim.Time
		note int64
	}{{"guestlib.enqueue", 0, 3}, {"engine.vm-pump", 100, 0}, {"stack.tx", 250, 0}}
	if len(sp.Hops) != len(wantHops) {
		t.Fatalf("hops = %d, want %d: %v", len(sp.Hops), len(wantHops), sp.Hops)
	}
	for i, w := range wantHops {
		h := sp.Hops[i]
		if h.Name != w.name || h.At != w.at || h.Note != w.note {
			t.Errorf("hop %d = %+v, want %+v", i, h, w)
		}
	}
	if !strings.Contains(sp.Format(), "engine.vm-pump@+100") {
		t.Errorf("Format() = %q missing hop offset", sp.Format())
	}
	// The span-end histogram must have recorded the duration.
	h := reg.Snapshot().Histograms["trace.span.tx:send_ns"]
	if h.Count != 1 || h.Max != 250 {
		t.Errorf("span histogram = %+v, want count 1 max 250", h)
	}

	// Stamps on unknown/ended spans are no-ops; Drop abandons actives.
	tr.Stamp(spanID, "late", 0)
	id2 := tr.Start("tx:send")
	tr.Drop(id2)
	if n := tr.ActiveCount(); n != 0 {
		t.Errorf("active = %d after drop, want 0", n)
	}
	if got := len(tr.Completed()); got != 1 {
		t.Errorf("completed = %d after drop, want still 1", got)
	}
}

// TestTracerCaps bounds both the active-span map and the done ring.
func TestTracerCaps(t *testing.T) {
	loop := sim.NewLoop()
	tr := NewTracer(TraceConfig{Clock: loop, SampleEvery: 1, Cap: 8})
	for i := 0; i < 100; i++ {
		if id := tr.Start("tx:send"); id != 0 {
			tr.End(id, "done")
		}
	}
	if got := len(tr.Completed()); got != 8 {
		t.Fatalf("done ring holds %d, want cap 8", got)
	}
	// The ring keeps the newest spans (oldest evicted first).
	done := tr.Completed()
	if done[len(done)-1].ID <= done[0].ID {
		t.Errorf("ring order wrong: first id %d, last id %d", done[0].ID, done[len(done)-1].ID)
	}
	// Active spans saturate at the cap instead of growing unboundedly.
	for i := 0; i < 100; i++ {
		tr.Start("rx:new_data")
	}
	if n := tr.ActiveCount(); n > 8 {
		t.Errorf("active map grew to %d, cap 8", n)
	}
}
