package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"netkernel/internal/sim"
)

// Per-nqe span tracing. A traced element carries a 32-bit trace id in
// its wire record (nqe offset 44, a former pad); each layer that
// touches the element stamps a named hop with the sim-clock time, so a
// finished span answers "where did this nqe spend its time?" hop by
// hop — GuestLib enqueue → CoreEngine pump → ServiceLib dispatch →
// stack TX, and the mirror receive path.
//
// Sampling is 1-in-N and counter-based, not random: with a fixed seed
// the k-th operation is the same operation in every run, so traces are
// byte-identical across identical runs (TestTraceDeterminism).
// SampleEvery = 0 disables tracing entirely; the hot-path cost of the
// disabled tracer is one nil check and one atomic load.

// A Hop is one stamped point in a span's life.
type Hop struct {
	Name string   // e.g. "guestlib.enqueue", "engine.vm-pump"
	At   sim.Time // virtual time of the stamp
	Note int64    // hop-specific detail (ring occupancy at enqueue)
}

// A Span is the life of one traced nqe.
type Span struct {
	ID    uint32
	Kind  string // "tx:send", "rx:new-data", …
	Start sim.Time
	End   sim.Time
	Hops  []Hop
}

// Duration is the span's virtual lifetime.
func (s Span) Duration() sim.Time { return s.End - s.Start }

// Format renders the span as one line with hop offsets relative to the
// span start, e.g.:
//
//	span 7 tx:send +9240ns: guestlib.enqueue@+0(1) engine.vm-pump@+1012 …
func (s Span) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "span %d %s +%dns:", s.ID, s.Kind, int64(s.Duration()))
	for _, h := range s.Hops {
		fmt.Fprintf(&b, " %s@+%d", h.Name, int64(h.At-s.Start))
		if h.Note != 0 {
			fmt.Fprintf(&b, "(%d)", h.Note)
		}
	}
	return b.String()
}

// TraceConfig shapes a Tracer.
type TraceConfig struct {
	// Clock stamps hops (required).
	Clock sim.Clock
	// SampleEvery traces one in every N sampling-eligible operations;
	// 0 (the default) disables tracing.
	SampleEvery int
	// Cap bounds both the in-flight span map and the retained
	// completed-span ring (default 256 each).
	Cap int
	// Metrics, when set, receives a per-kind span-latency histogram
	// ("span.<kind>_ns") observed at span end.
	Metrics *Scope
}

// A Tracer samples, stamps, and retains nqe spans. All methods are
// nil-safe no-ops on a nil tracer and goroutine-safe under a mutex —
// cheap enough because only sampled elements (id != 0) ever reach the
// locked paths.
type Tracer struct {
	every atomic.Int64

	mu     sync.Mutex
	clock  sim.Clock
	cap    int
	scope  *Scope
	seen   uint64
	nextID uint32
	active map[uint32]*Span
	done   []Span
}

// NewTracer builds a tracer.
func NewTracer(cfg TraceConfig) *Tracer {
	if cfg.Cap <= 0 {
		cfg.Cap = 256
	}
	t := &Tracer{
		clock:  cfg.Clock,
		cap:    cfg.Cap,
		scope:  cfg.Metrics,
		active: make(map[uint32]*Span),
	}
	t.every.Store(int64(cfg.SampleEvery))
	return t
}

// Enabled reports whether Start can currently yield a sampled span.
func (t *Tracer) Enabled() bool { return t != nil && t.every.Load() > 0 }

// SetSampleEvery changes the sampling interval (0 disables).
func (t *Tracer) SetSampleEvery(n int) {
	if t != nil {
		t.every.Store(int64(n))
	}
}

// Start considers one operation for sampling. It returns the new
// span's id, or 0 when the operation was not sampled (disabled tracer,
// off-sample op, or in-flight table full). The id travels in the nqe's
// trace field; id 0 means untraced everywhere.
func (t *Tracer) Start(kind string) uint32 {
	if t == nil {
		return 0
	}
	n := t.every.Load()
	if n <= 0 {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seen++
	if t.seen%uint64(n) != 0 {
		return 0
	}
	if len(t.active) >= t.cap {
		return 0
	}
	t.nextID++
	if t.nextID == 0 {
		t.nextID = 1
	}
	id := t.nextID
	t.active[id] = &Span{ID: id, Kind: kind, Start: t.clock.Now()}
	return id
}

// Stamp appends a hop to an in-flight span. Unknown ids (already
// ended, dropped, or from a restarted peer) are ignored.
func (t *Tracer) Stamp(id uint32, hop string, note int64) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := t.active[id]
	if sp == nil {
		return
	}
	sp.Hops = append(sp.Hops, Hop{Name: hop, At: t.clock.Now(), Note: note})
}

// End stamps the final hop and retires the span into the completed
// ring, observing its virtual duration into the per-kind histogram.
func (t *Tracer) End(id uint32, hop string) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := t.active[id]
	if sp == nil {
		return
	}
	delete(t.active, id)
	now := t.clock.Now()
	sp.Hops = append(sp.Hops, Hop{Name: hop, At: now})
	sp.End = now
	if len(t.done) >= t.cap {
		copy(t.done, t.done[1:])
		t.done = t.done[:len(t.done)-1]
	}
	t.done = append(t.done, *sp)
	if t.scope != nil {
		t.scope.Histogram("span." + sp.Kind + "_ns").Observe(uint64(sp.Duration()))
	}
}

// Drop abandons an in-flight span (element discarded by a crash,
// reset, or teardown) without recording it.
func (t *Tracer) Drop(id uint32) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	delete(t.active, id)
	t.mu.Unlock()
}

// Completed returns a copy of the retained finished spans in
// completion order (oldest first).
func (t *Tracer) Completed() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.done))
	copy(out, t.done)
	return out
}

// ActiveCount returns the number of in-flight spans.
func (t *Tracer) ActiveCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.active)
}
