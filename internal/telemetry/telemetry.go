// Package telemetry is the unified observability layer for the
// NetKernel reproduction: a lock-cheap metrics registry (atomic
// counters, gauges, and log-bucketed latency histograms) plus per-nqe
// span tracing stamped in virtual time (trace.go).
//
// The paper's §5 argues that decoupling the stack from the guest gives
// the provider a single vantage point for monitoring and diagnosis
// ("centralized management and control"). This package is that vantage
// point: every layer registers its hot-path counters here under a
// dotted name (`vm1.guest.bytes_sent`, `nsm2.stack.frames_in`,
// `engine.translated`, …) and one Snapshot() call renders the whole
// host. Hot paths never take a lock — components own their Counter
// values and update them with single atomic adds; the registry only
// holds pointers, and its mutex guards registration and snapshotting.
//
// Naming convention (DESIGN.md §9): `<instance>.<subsystem>.<metric>`,
// lower_snake_case metric leaf, instance prefixes like `vm3`, `nsm2`,
// `vm3.r1` (per-replica channel), `engine`, `switch`.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// A Counter is a monotonically increasing atomic counter. The zero
// value is ready to use; components embed Counters by value and
// register pointers so the hot-path update is one atomic add with no
// map lookup or lock.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// A Gauge is an atomic instantaneous value (may go down).
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// A Registry names metrics and snapshots them. Registration is
// last-wins: re-registering a name replaces the previous metric, which
// is what NSM restarts want (the fresh stack's counters take over the
// old name).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() int64
	histos   map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func() int64),
		histos:   make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed. Nil-safe:
// a nil registry hands back an unregistered standalone counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// RegisterCounter publishes an externally owned counter under name.
func (r *Registry) RegisterCounter(name string, c *Counter) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] = c
	r.mu.Unlock()
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc publishes a read-on-snapshot gauge. The function is called
// during Snapshot with the registry lock held; it must not call back
// into the registry.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.gaugeFns[name] = fn
	r.mu.Unlock()
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return &Histogram{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histos[name]
	if h == nil {
		h = &Histogram{}
		r.histos[name] = h
	}
	return h
}

// CounterValue reads a counter by name (0 if absent). This is the
// hand-off point for consumers like mgmt.ThroughputSLA that sample a
// cumulative metric on a timer.
func (r *Registry) CounterValue(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.counters[name]
	r.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.Load()
}

// Names returns the sorted names of every registered metric, across
// all four kinds. Restart-stability tests compare the name set before
// and after an NSM reboot: last-wins registration must swap metric
// owners without growing or shrinking it.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.gaugeFns)+len(r.histos))
	for name := range r.counters {
		names = append(names, name)
	}
	for name := range r.gauges {
		names = append(names, name)
	}
	for name := range r.gaugeFns {
		names = append(names, name)
	}
	for name := range r.histos {
		names = append(names, name)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// NumMetrics returns the count of registered metric names.
func (r *Registry) NumMetrics() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.counters) + len(r.gauges) + len(r.gaugeFns) + len(r.histos)
}

// Scope returns a registration helper that prefixes every name with
// prefix + ".". Nil-safe: scoping a nil registry returns a nil scope
// whose methods are no-ops (hot paths keep their own counters either
// way, so an unmetered component costs nothing).
func (r *Registry) Scope(prefix string) *Scope {
	if r == nil {
		return nil
	}
	return &Scope{r: r, prefix: strings.TrimSuffix(prefix, ".") + "."}
}

// A Scope registers metrics under a fixed dotted prefix.
type Scope struct {
	r      *Registry
	prefix string
}

// Child returns a sub-scope with "<prefix><sub>." prepended.
func (s *Scope) Child(sub string) *Scope {
	if s == nil {
		return nil
	}
	return s.r.Scope(s.prefix + sub)
}

// Counter publishes an externally owned counter under the scope.
func (s *Scope) Counter(name string, c *Counter) {
	if s == nil {
		return
	}
	s.r.RegisterCounter(s.prefix+name, c)
}

// GaugeFunc publishes a read-on-snapshot gauge under the scope.
func (s *Scope) GaugeFunc(name string, fn func() int64) {
	if s == nil {
		return
	}
	s.r.GaugeFunc(s.prefix+name, fn)
}

// Histogram returns the scoped named histogram. On a nil scope it
// returns a working standalone histogram so callers need no nil checks.
func (s *Scope) Histogram(name string) *Histogram {
	if s == nil {
		return &Histogram{}
	}
	return s.r.Histogram(s.prefix + name)
}

// A Snapshot is a point-in-time copy of every registered metric.
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot reads every metric. Counters and gauges are atomic loads;
// gauge funcs run under the registry lock. Concurrent hot-path updates
// keep going — a snapshot is a consistent-enough view, not a barrier.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, fn := range r.gaugeFns {
		s.Gauges[name] = fn()
	}
	for name, h := range r.histos {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Counter reads a counter from the snapshot (0 if absent).
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Gauge reads a gauge from the snapshot (0 if absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Filter returns the sub-snapshot whose names start with any prefix.
func (s Snapshot) Filter(prefixes ...string) Snapshot {
	match := func(name string) bool {
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
	out := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for name, v := range s.Counters {
		if match(name) {
			out.Counters[name] = v
		}
	}
	for name, v := range s.Gauges {
		if match(name) {
			out.Gauges[name] = v
		}
	}
	for name, v := range s.Histograms {
		if match(name) {
			out.Histograms[name] = v
		}
	}
	return out
}

// String renders the snapshot as sorted fixed-width rows, one metric
// per line — the `nkctl stats` output format.
func (s Snapshot) String() string {
	type row struct{ name, kind, val string }
	rows := make([]row, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for name, v := range s.Counters {
		rows = append(rows, row{name, "counter", fmt.Sprintf("%d", v)})
	}
	for name, v := range s.Gauges {
		rows = append(rows, row{name, "gauge", fmt.Sprintf("%d", v)})
	}
	for name, h := range s.Histograms {
		rows = append(rows, row{name, "hist",
			fmt.Sprintf("count=%d p50=%d p99=%d max=%d", h.Count, h.P50, h.P99, h.Max)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-48s %-8s %s\n", r.name, r.kind, r.val)
	}
	return b.String()
}
