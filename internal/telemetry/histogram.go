package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the number of log2 buckets: bucket b holds values v
// with bits.Len64(v) == b, i.e. the range [2^(b-1), 2^b - 1] (bucket 0
// holds exactly 0). 64 buckets cover the full uint64 range, so
// nanosecond latencies up to centuries land without clamping.
const histBuckets = 65

// A Histogram is a lock-free log2-bucketed histogram. Observe is a
// handful of atomic adds; Snapshot derives p50/p99 from the bucket
// counts. The zero value is ready to use.
type Histogram struct {
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)].Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// A HistogramSnapshot is a consistent read of a histogram. Count is
// derived from the bucket counts read during the snapshot, so
// Count == Σ Buckets always holds even while writers race the reader
// (the conservation invariant the -race suite asserts).
type HistogramSnapshot struct {
	Count   uint64
	Sum     uint64
	Max     uint64
	P50     uint64
	P99     uint64
	Buckets [histBuckets]uint64
}

// Snapshot reads the histogram. Percentiles are upper bounds of the
// log2 bucket containing the quantile, so they are exact to within 2×.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for b := range h.buckets {
		n := h.buckets[b].Load()
		s.Buckets[b] = n
		s.Count += n
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	s.P50 = s.quantile(0.50)
	s.P99 = s.quantile(0.99)
	return s
}

// Mean returns the average observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// quantile returns the upper bound of the bucket containing quantile q.
func (s HistogramSnapshot) quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen uint64
	for b, n := range s.Buckets {
		seen += n
		if n > 0 && seen > rank {
			if b == 0 {
				return 0
			}
			return 1<<uint(b) - 1
		}
	}
	return s.Max
}
