package mgmt

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"netkernel/internal/guestlib"
	"netkernel/internal/hypervisor"
	"netkernel/internal/netsim"
	"netkernel/internal/pricing"
	"netkernel/internal/proto/ipv4"
	"netkernel/internal/sim"
)

var (
	clientIP = ipv4.Addr{10, 0, 1, 1}
	serverIP = ipv4.Addr{10, 0, 2, 1}

	errUntouched = errors.New("close callback never fired")
)

// twoHosts is the paper's testbed: two hosts back to back on 40 GbE.
func twoHosts(t *testing.T) (*sim.Loop, *hypervisor.Host, *hypervisor.Host) {
	t.Helper()
	loop := sim.NewLoop()
	mk := func(name string, id uint8) *hypervisor.Host {
		return hypervisor.NewHost(hypervisor.HostConfig{
			Name: name, Clock: loop, RNG: sim.NewRNG(uint64(id)),
			HostID: id, Cores: 8,
			MinRTO: 20 * time.Millisecond, MSL: 50 * time.Millisecond,
		})
	}
	h1, h2 := mk("host1", 1), mk("host2", 2)
	l12, l21 := netsim.Duplex(loop, sim.NewRNG(99), netsim.Testbed40G(), h1.NIC, h2.NIC)
	h1.NIC.AttachWire(l12)
	h2.NIC.AttachWire(l21)
	return loop, h1, h2
}

// echoServer greedily accepts on port and echoes everything back,
// buffering through backpressure.
func echoServer(t *testing.T, g *guestlib.GuestLib, port uint16, backlog int) {
	t.Helper()
	lfd := g.Socket(guestlib.Callbacks{})
	g.SetCallbacks(lfd, guestlib.Callbacks{OnAcceptable: func() {
		for {
			fd, ok := g.Accept(lfd)
			if !ok {
				return
			}
			var pending []byte
			flush := func() {
				for len(pending) > 0 {
					n := g.Send(fd, pending)
					if n == 0 {
						return
					}
					pending = pending[n:]
				}
			}
			buf := make([]byte, 16384)
			g.SetCallbacks(fd, guestlib.Callbacks{
				OnReadable: func() {
					for {
						n, _ := g.Recv(fd, buf)
						if n == 0 {
							break
						}
						pending = append(pending, buf[:n]...)
					}
					flush()
				},
				OnWritable: flush,
			})
		}
	}})
	if err := g.Listen(lfd, port, backlog); err != nil {
		t.Fatal(err)
	}
}

// echoClient dials the server and pushes payload through in paced
// chunks, accumulating the echo.
type echoClient struct {
	fd       int32
	sent     int
	echoed   []byte
	closeErr error
}

func startEchoClient(loop *sim.Loop, g *guestlib.GuestLib, dst ipv4.Addr, port uint16, payload []byte, pace time.Duration) (*echoClient, error) {
	c := &echoClient{closeErr: errUntouched}
	buf := make([]byte, 16384)
	c.fd = g.Socket(guestlib.Callbacks{
		OnReadable: func() {
			for {
				n, _ := g.Recv(c.fd, buf)
				if n == 0 {
					return
				}
				c.echoed = append(c.echoed, buf[:n]...)
			}
		},
		OnClose: func(err error) { c.closeErr = err },
	})
	if err := g.Connect(c.fd, dst, port); err != nil {
		return nil, err
	}
	var tick func()
	tick = func() {
		if c.sent < len(payload) {
			end := c.sent + 2048
			if end > len(payload) {
				end = len(payload)
			}
			c.sent += g.Send(c.fd, payload[c.sent:end])
		}
		if c.sent < len(payload) {
			loop.AfterFunc(pace, tick)
		}
	}
	loop.AfterFunc(pace, tick)
	return c, nil
}

// TestRollingUpgradeServing100VMs is the issue's scale gate: one module
// multiplexes 100 tenant VMs, each mid-way through a paced echo
// transfer, and a rolling upgrade migrates the module to a new build
// (hot-swapping every flow's congestion control to BBR). Zero
// connection loss: every tenant's echo completes byte-exactly, no close
// callback fires, and the single migration record bills all 100 VMs.
func TestRollingUpgradeServing100VMs(t *testing.T) {
	const tenants = 100
	loop, h1, h2 := twoHosts(t)

	server, err := h2.CreateVM(hypervisor.VMConfig{
		Name: "server", IP: serverIP, Mode: hypervisor.ModeNetKernel,
		NSM: hypervisor.NSMSpec{Form: hypervisor.FormModule, CC: "cubic"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var vms []*hypervisor.VM
	var shared *hypervisor.NSM
	for i := 0; i < tenants; i++ {
		spec := hypervisor.NSMSpec{Form: hypervisor.FormModule, CC: "cubic", ShareWith: shared}
		vm, err := h1.CreateVM(hypervisor.VMConfig{
			Name: "tenant", IP: clientIP, Mode: hypervisor.ModeNetKernel, NSM: spec,
		})
		if err != nil {
			t.Fatal(err)
		}
		if shared == nil {
			shared = vm.NSM
		}
		vms = append(vms, vm)
	}
	loop.RunFor(50 * time.Millisecond) // module boot
	echoServer(t, server.Guest, 7000, 256)

	payload := bytes.Repeat([]byte("netkernel migration payload blk "), 4096) // 128 KB
	clients := make([]*echoClient, tenants)
	for i, vm := range vms {
		// Stagger dials so the listener backlog never overflows.
		c, err := startEchoClient(loop, vm.Guest, serverIP, 7000, payload, 2*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		loop.RunFor(100 * time.Microsecond)
	}
	loop.RunFor(20 * time.Millisecond) // everyone mid-transfer

	pricer := pricing.DefaultMigrationPricer()
	up := NewRollingUpgrade(h1, func(n *hypervisor.NSM) (hypervisor.NSMSpec, bool) {
		return hypervisor.NSMSpec{Form: hypervisor.FormModule, CC: "bbr"}, true
	}, hypervisor.MigrateOptions{}, pricer)
	if up.Pending() != 1 {
		t.Fatalf("host1 has %d modules queued, want the 1 shared module", up.Pending())
	}
	finished := false
	up.Start(func(*RollingUpgrade) { finished = true })
	for i := 0; i < 50 && !finished; i++ {
		loop.RunFor(10 * time.Millisecond)
	}
	if !finished {
		t.Fatal("rolling upgrade never completed")
	}
	loop.RunFor(2 * time.Second) // drain the transfers

	if len(up.Migrations) != 1 || up.Skipped != 0 {
		t.Fatalf("migrations=%d skipped=%d, want 1/0", len(up.Migrations), up.Skipped)
	}
	m := up.Migrations[0]
	if m.Aborted {
		t.Fatalf("migration aborted: %v", m.Err)
	}
	if m.VMs != tenants {
		t.Fatalf("migration moved %d VMs, want %d", m.VMs, tenants)
	}
	if m.Conns < tenants {
		t.Fatalf("migration moved %d conns, want ≥ %d live tenant flows", m.Conns, tenants)
	}
	if up.Bill <= 0 {
		t.Fatal("a 100-VM migration billed nothing")
	}
	if want := pricer.Price(MigrationBill(m)); up.Bill != want {
		t.Fatalf("Bill = %v, want %v", up.Bill, want)
	}
	for i, vm := range vms {
		if vm.NSM != m.To {
			t.Fatalf("tenant %d not rebound to the successor", i)
		}
	}
	if m.To.CC != "bbr" {
		t.Fatalf("successor CC = %q, want the hot-swapped bbr", m.To.CC)
	}

	lost := 0
	for i, c := range clients {
		if c.closeErr != errUntouched {
			t.Errorf("tenant %d connection closed across migration: %v", i, c.closeErr)
			lost++
			continue
		}
		if !bytes.Equal(c.echoed, payload) {
			t.Errorf("tenant %d echo not byte-exact: %d of %d bytes", i, len(c.echoed), len(payload))
			lost++
		}
		if lost > 3 {
			t.Fatal("... and more")
		}
	}
}

// TestConsolidateBillsOnlyExpensiveForms drives the consolidation
// planner: of two modules on the host, only the one whose form bills
// above the target migrates; congestion control is preserved.
func TestConsolidateBillsOnlyExpensiveForms(t *testing.T) {
	loop, h1, h2 := twoHosts(t)
	server, err := h2.CreateVM(hypervisor.VMConfig{
		Name: "server", IP: serverIP, Mode: hypervisor.ModeNetKernel,
		NSM: hypervisor.NSMSpec{Form: hypervisor.FormModule, CC: "cubic"},
	})
	if err != nil {
		t.Fatal(err)
	}
	vmCostly, err := h1.CreateVM(hypervisor.VMConfig{
		Name: "costly", IP: clientIP, Mode: hypervisor.ModeNetKernel,
		NSM: hypervisor.NSMSpec{Form: hypervisor.FormUnikernel, CC: "dctcp"},
	})
	if err != nil {
		t.Fatal(err)
	}
	vmCheap, err := h1.CreateVM(hypervisor.VMConfig{
		Name: "cheap", IP: ipv4.Addr{10, 0, 1, 2}, Mode: hypervisor.ModeNetKernel,
		NSM: hypervisor.NSMSpec{Form: hypervisor.FormModule, CC: "cubic"},
	})
	if err != nil {
		t.Fatal(err)
	}
	loop.RunFor(300 * time.Millisecond) // unikernel boot
	echoServer(t, server.Guest, 7000, 16)
	payload := bytes.Repeat([]byte("consolidate"), 2048)
	c1, err := startEchoClient(loop, vmCostly.Guest, serverIP, 7000, payload, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	loop.RunFor(5 * time.Millisecond)

	rates := pricing.PerInstance{
		Default: pricing.USD(0.01),
		HourlyByForm: map[string]pricing.MicroUSD{
			"unikernel": pricing.USD(0.02),
			"module":    pricing.USD(0.004),
		},
	}
	cheapNSM := vmCheap.NSM
	up := Consolidate(h1, hypervisor.FormModule, rates, hypervisor.MigrateOptions{}, pricing.DefaultMigrationPricer())
	finished := false
	up.Start(func(*RollingUpgrade) { finished = true })
	for i := 0; i < 50 && !finished; i++ {
		loop.RunFor(10 * time.Millisecond)
	}
	if !finished {
		t.Fatal("consolidation never completed")
	}
	loop.RunFor(time.Second)

	if len(up.Migrations) != 1 || up.Skipped != 1 {
		t.Fatalf("migrations=%d skipped=%d, want 1 move (unikernel) and 1 skip (module)", len(up.Migrations), up.Skipped)
	}
	m := up.Migrations[0]
	if m.Aborted || m.To.Form != hypervisor.FormModule || m.To.CC != "dctcp" {
		t.Fatalf("consolidation produced form=%v cc=%q aborted=%v, want module/dctcp/false", m.To.Form, m.To.CC, m.Aborted)
	}
	if vmCheap.NSM != cheapNSM {
		t.Fatal("already-cheap module was migrated")
	}
	if c1.closeErr != errUntouched || !bytes.Equal(c1.echoed, payload) {
		t.Fatalf("consolidated tenant lost data: err=%v echoed=%d/%d", c1.closeErr, len(c1.echoed), len(payload))
	}
}
