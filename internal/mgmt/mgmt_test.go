package mgmt

import (
	"testing"
	"time"

	"netkernel/internal/proto/ethernet"
	"netkernel/internal/proto/ipv4"
	"netkernel/internal/sim"
	"netkernel/internal/stack"
)

// threeNodeFabric builds three stacks on one shared "wire" (a hub) so
// any node can ping any other, with a kill switch per node.
func threeNodeFabric(t *testing.T) (*sim.Loop, []MeshNode, func(i int)) {
	t.Helper()
	loop := sim.NewLoop()
	type node struct {
		st   *stack.Stack
		dead bool
	}
	nodes := make([]*node, 3)
	var deliverAll func(from int, frame []byte)
	for i := 0; i < 3; i++ {
		i := i
		st := stack.New(stack.Config{Clock: loop, RNG: sim.NewRNG(uint64(i)), Name: string(rune('a' + i))})
		mac := ethernet.MAC{2, 0, 0, 0, 0, byte(i + 1)}
		ip := ipv4.Addr{10, 0, 0, byte(i + 1)}
		st.AttachInterface(mac, ip, 1500, 24, ipv4.Addr{}, func(f []byte) {
			loop.AfterFunc(time.Millisecond, func() { deliverAll(i, f) })
		})
		nodes[i] = &node{st: st}
	}
	deliverAll = func(from int, frame []byte) {
		for j, n := range nodes {
			if j == from || n.dead {
				continue
			}
			c := make([]byte, len(frame))
			copy(c, frame)
			n.st.DeliverFrame(c)
		}
	}
	var mesh []MeshNode
	for i, n := range nodes {
		mesh = append(mesh, MeshNode{
			Name:  string(rune('a' + i)),
			Stack: n.st,
			IP:    ipv4.Addr{10, 0, 0, byte(i + 1)},
		})
	}
	kill := func(i int) { nodes[i].dead = true }
	return loop, mesh, kill
}

func TestMeshHealthyPathsStayUp(t *testing.T) {
	loop, nodes, _ := threeNodeFabric(t)
	m := NewMesh(MeshConfig{Clock: loop, Interval: 100 * time.Millisecond, Timeout: 50 * time.Millisecond}, nodes)
	m.Start()
	loop.RunFor(2 * time.Second)
	m.Stop()
	for _, r := range m.Report() {
		if r.Down {
			t.Fatalf("healthy path %s→%s marked down", r.From, r.To)
		}
		if r.Sent < 10 || r.Lost > 0 {
			t.Fatalf("path %s→%s sent=%d lost=%d", r.From, r.To, r.Sent, r.Lost)
		}
		if r.RTTp50 <= 0 || r.RTTp50 > 20*time.Millisecond {
			t.Fatalf("path %s→%s p50=%v", r.From, r.To, r.RTTp50)
		}
	}
	if len(m.Report()) != 6 {
		t.Fatalf("reported %d paths, want 6 ordered pairs", len(m.Report()))
	}
}

func TestMeshDetectsFailureAndRecovery(t *testing.T) {
	loop, nodes, kill := threeNodeFabric(t)
	var downs, ups []string
	m := NewMesh(MeshConfig{
		Clock: loop, Interval: 100 * time.Millisecond, Timeout: 50 * time.Millisecond,
		FailThreshold: 3,
		OnPathDown:    func(from, to string) { downs = append(downs, from+"→"+to) },
		OnPathUp:      func(from, to string) { ups = append(ups, from+"→"+to) },
	}, nodes)
	m.Start()
	loop.RunFor(time.Second)
	if len(downs) != 0 {
		t.Fatalf("false positives before failure: %v", downs)
	}

	kill(2) // node c stops receiving
	loop.RunFor(2 * time.Second)
	if !m.PathDown("a", "c") || !m.PathDown("b", "c") {
		t.Fatalf("paths to dead node not detected; downs=%v", downs)
	}
	if m.PathDown("a", "b") {
		t.Fatal("healthy path misdetected")
	}
	// c→a fails too: c's requests go out, but the echo replies cannot
	// reach the deaf node, so its own probes also time out.
	if !m.PathDown("c", "a") {
		t.Fatal("deaf node's own probes should fail (reply path broken)")
	}
	if len(downs) < 4 {
		t.Fatalf("down transitions %v", downs)
	}
	_ = ups
	m.Stop()
}

func TestThroughputSLACompliance(t *testing.T) {
	loop := sim.NewLoop()
	var counter uint64
	sla := NewThroughputSLA(loop, "tenantA", 8e6 /* 8 Mbit/s */, 100*time.Millisecond, func() uint64 { return counter })
	sla.Start()
	// 5 windows at 10 Mbit/s (125 KB per 100 ms), then 5 at 4 Mbit/s.
	for i := 0; i < 5; i++ {
		counter += 125000
		loop.RunFor(100 * time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		counter += 50000
		loop.RunFor(100 * time.Millisecond)
	}
	sla.Stop()
	if sla.Windows() < 9 {
		t.Fatalf("windows = %d", sla.Windows())
	}
	c := sla.Compliance()
	if c < 0.4 || c > 0.6 {
		t.Fatalf("compliance = %v, want ≈0.5", c)
	}
	if sla.MeanActiveBps() < 5e6 || sla.MeanActiveBps() > 9e6 {
		t.Fatalf("mean = %v", sla.MeanActiveBps())
	}
	if sla.String() == "" {
		t.Fatal("String empty")
	}
}

func TestThroughputSLAIdleWindowsIgnored(t *testing.T) {
	loop := sim.NewLoop()
	var counter uint64
	sla := NewThroughputSLA(loop, "idle", 1e9, time.Second, func() uint64 { return counter })
	sla.Start()
	loop.RunFor(10 * time.Second) // no traffic at all
	sla.Stop()
	if sla.Compliance() != 1 {
		t.Fatalf("idle tenant compliance = %v, want 1 (no demand)", sla.Compliance())
	}
}
