package mgmt

import (
	"sort"

	"netkernel/internal/hypervisor"
	"netkernel/internal/pricing"
)

// Migration drivers (§5 "seamless NSM migration"): with live handoff
// as a hypervisor primitive, the management plane can roll a fleet of
// modules onto a new build one at a time, or consolidate tenants onto
// cheaper forms, billing every move through the pricing models.

// UpgradePlan decides, per module, whether and how to migrate it.
// Returning ok=false skips the module.
type UpgradePlan func(n *hypervisor.NSM) (spec hypervisor.NSMSpec, ok bool)

// RollingUpgrade migrates a host's NSMs one module at a time: the next
// migration only starts once the previous cutover (or abort) has
// completed, so at most one module's tenants are ever stalled. Modules
// are visited in ID order for deterministic replay.
type RollingUpgrade struct {
	host   *hypervisor.Host
	plan   UpgradePlan
	opts   hypervisor.MigrateOptions
	pricer pricing.MigrationPricer

	queue   []*hypervisor.NSM
	done    func(*RollingUpgrade)
	running bool

	// Migrations holds one record per attempted migration, in order;
	// Bill is the total under the pricer (aborts bill nothing); Skipped
	// counts modules the plan declined or the hypervisor refused.
	Migrations []*hypervisor.Migration
	Bill       pricing.MicroUSD
	Skipped    int
}

// NewRollingUpgrade builds a driver over every NSM currently on h.
func NewRollingUpgrade(h *hypervisor.Host, plan UpgradePlan, opts hypervisor.MigrateOptions, pricer pricing.MigrationPricer) *RollingUpgrade {
	u := &RollingUpgrade{host: h, plan: plan, opts: opts, pricer: pricer}
	h.EachNSM(func(n *hypervisor.NSM) { u.queue = append(u.queue, n) })
	sort.Slice(u.queue, func(i, j int) bool { return u.queue[i].ID < u.queue[j].ID })
	return u
}

// Pending returns how many modules are still waiting to migrate.
func (u *RollingUpgrade) Pending() int { return len(u.queue) }

// Running reports whether a migration is currently in flight.
func (u *RollingUpgrade) Running() bool { return u.running }

// Start begins the rolling upgrade; done, if non-nil, fires when the
// last module has migrated (or every module was skipped).
func (u *RollingUpgrade) Start(done func(*RollingUpgrade)) {
	if u.running {
		return
	}
	u.done = done
	u.running = true
	u.step()
}

func (u *RollingUpgrade) step() {
	for len(u.queue) > 0 {
		next := u.queue[0]
		u.queue = u.queue[1:]
		spec, ok := u.plan(next)
		if !ok {
			u.Skipped++
			continue
		}
		m, err := u.host.MigrateNSM(next, spec, u.opts, func(m *hypervisor.Migration) {
			u.record(m)
			u.step()
		})
		if err != nil {
			// The hypervisor refused (already migrated, replicated spec,
			// …): skip it and keep rolling.
			u.Skipped++
			continue
		}
		_ = m
		return // step resumes from the done callback
	}
	u.running = false
	if u.done != nil {
		u.done(u)
	}
}

func (u *RollingUpgrade) record(m *hypervisor.Migration) {
	u.Migrations = append(u.Migrations, m)
	u.Bill += u.pricer.Price(MigrationBill(m))
}

// MigrationBill converts a hypervisor migration record into the
// pricing event it bills as.
func MigrationBill(m *hypervisor.Migration) pricing.MigrationEvent {
	return pricing.MigrationEvent{
		FromForm: m.From.Form.String(),
		ToForm:   m.To.Form.String(),
		VMs:      m.VMs,
		Conns:    m.Conns,
		Stall:    m.Stall,
		Aborted:  m.Aborted,
	}
}

// Consolidate builds a rolling upgrade that moves every module whose
// form bills higher than target (under the per-instance rates) onto
// the target form — the provider packing tenants onto cheaper
// realizations without dropping a connection. Congestion control is
// preserved per module.
func Consolidate(h *hypervisor.Host, target hypervisor.NSMForm, rates pricing.PerInstance, opts hypervisor.MigrateOptions, pricer pricing.MigrationPricer) *RollingUpgrade {
	rate := func(form string) pricing.MicroUSD {
		if r, ok := rates.HourlyByForm[form]; ok {
			return r
		}
		return rates.Default
	}
	return NewRollingUpgrade(h, func(n *hypervisor.NSM) (hypervisor.NSMSpec, bool) {
		if n.Form == target || rate(n.Form.String()) <= rate(target.String()) {
			return hypervisor.NSMSpec{}, false
		}
		return hypervisor.NSMSpec{Form: target, CC: n.CC}, true
	}, opts, pricer)
}
