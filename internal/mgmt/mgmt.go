// Package mgmt provides the centralized management plane the paper
// argues NSaaS enables (§5 "Centralized management and control"):
// since the provider now owns the stack, "management protocols such as
// failure detection [17 — Pingmesh] and monitoring [28] can be
// deployed readily as NSMs."
//
// Three pieces:
//
//   - Mesh: a Pingmesh-style all-pairs ICMP prober with consecutive-
//     failure detection and RTT percentiles.
//   - ThroughputSLA: per-tenant achieved-vs-promised throughput
//     tracking, the basis for §2.1's "meaningful SLAs".
//   - Reports: snapshot structures for NSMs and hosts.
package mgmt

import (
	"fmt"
	"sort"
	"time"

	"netkernel/internal/proto/ipv4"
	"netkernel/internal/sim"
	"netkernel/internal/stack"
	"netkernel/internal/telemetry"
)

// MeshNode is one probe endpoint: a stack the provider controls (an
// NSM or a host agent).
type MeshNode struct {
	Name  string
	Stack *stack.Stack
	IP    ipv4.Addr
}

// MeshConfig shapes the prober.
type MeshConfig struct {
	Clock sim.Clock
	// Interval between probe rounds (default 1 s).
	Interval time.Duration
	// Timeout per probe (default 500 ms).
	Timeout time.Duration
	// FailThreshold is how many consecutive losses mark a path down
	// (default 3).
	FailThreshold int
	// OnPathDown / OnPathUp fire on state transitions.
	OnPathDown func(from, to string)
	OnPathUp   func(from, to string)
}

type pathKey struct{ from, to string }

type pathState struct {
	consecFails int
	down        bool
	rtts        []time.Duration // bounded history
	sent, lost  uint64
}

// Mesh probes every ordered pair of nodes.
type Mesh struct {
	cfg     MeshConfig
	nodes   []MeshNode
	paths   map[pathKey]*pathState
	running bool
	stopped bool
}

// NewMesh builds a prober over the given nodes.
func NewMesh(cfg MeshConfig, nodes []MeshNode) *Mesh {
	if cfg.Clock == nil {
		panic("mgmt: MeshConfig.Clock required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 500 * time.Millisecond
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	m := &Mesh{cfg: cfg, nodes: nodes, paths: make(map[pathKey]*pathState)}
	for _, a := range nodes {
		for _, b := range nodes {
			if a.Name != b.Name {
				m.paths[pathKey{a.Name, b.Name}] = &pathState{}
			}
		}
	}
	return m
}

// Start begins periodic probing.
func (m *Mesh) Start() {
	if m.running {
		return
	}
	m.running = true
	m.round()
}

// Stop halts probing after the current round.
func (m *Mesh) Stop() { m.stopped = true }

func (m *Mesh) round() {
	if m.stopped {
		m.running = false
		return
	}
	for _, a := range m.nodes {
		for _, b := range m.nodes {
			if a.Name == b.Name {
				continue
			}
			m.probe(a, b)
		}
	}
	m.cfg.Clock.AfterFunc(m.cfg.Interval, m.round)
}

func (m *Mesh) probe(a, b MeshNode) {
	key := pathKey{a.Name, b.Name}
	st := m.paths[key]
	st.sent++
	a.Stack.Ping(b.IP, []byte("pingmesh"), m.cfg.Timeout, func(rtt time.Duration, err error) {
		if err != nil {
			st.lost++
			st.consecFails++
			if !st.down && st.consecFails >= m.cfg.FailThreshold {
				st.down = true
				if m.cfg.OnPathDown != nil {
					m.cfg.OnPathDown(a.Name, b.Name)
				}
			}
			return
		}
		st.consecFails = 0
		if st.down {
			st.down = false
			if m.cfg.OnPathUp != nil {
				m.cfg.OnPathUp(a.Name, b.Name)
			}
		}
		st.rtts = append(st.rtts, rtt)
		if len(st.rtts) > 128 {
			st.rtts = st.rtts[1:]
		}
	})
}

// PathReport summarizes one directed path.
type PathReport struct {
	From, To   string
	Down       bool
	Sent, Lost uint64
	RTTp50     time.Duration
	RTTp99     time.Duration
}

// Report returns per-path summaries, sorted by (from, to).
func (m *Mesh) Report() []PathReport {
	var out []PathReport
	for key, st := range m.paths {
		r := PathReport{From: key.from, To: key.to, Down: st.down, Sent: st.sent, Lost: st.lost}
		if len(st.rtts) > 0 {
			sorted := append([]time.Duration(nil), st.rtts...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			r.RTTp50 = sorted[len(sorted)/2]
			r.RTTp99 = sorted[len(sorted)*99/100]
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// PathDown reports whether a directed path is currently marked down.
func (m *Mesh) PathDown(from, to string) bool {
	st := m.paths[pathKey{from, to}]
	return st != nil && st.down
}

// ThroughputSLA tracks a tenant's achieved throughput against a
// promised floor, sampled over fixed windows. The provider can only
// offer this because it owns the stack (§2.1: "providers can now offer
// meaningful SLAs to tenants and charge them accordingly").
type ThroughputSLA struct {
	clock     sim.Clock
	name      string
	targetBps float64
	window    time.Duration
	sample    func() uint64 // cumulative bytes

	last     uint64
	achieved []float64 // bps per window
	stopped  bool
}

// NewThroughputSLA builds a tracker. sample must return a cumulative
// byte counter (e.g. the tenant's ServiceLib DataIn).
func NewThroughputSLA(clock sim.Clock, name string, targetBps float64, window time.Duration, sample func() uint64) *ThroughputSLA {
	if window <= 0 {
		window = time.Second
	}
	return &ThroughputSLA{clock: clock, name: name, targetBps: targetBps, window: window, sample: sample}
}

// NewRegistrySLA builds a tracker that samples a cumulative byte
// counter straight out of the host telemetry registry by metric name
// (e.g. "vm1.r0.svc.data_in" for a tenant's egress), replacing
// hand-fed sample closures. An unregistered metric samples as 0,
// which reads as idle windows, not violations.
func NewRegistrySLA(clock sim.Clock, reg *telemetry.Registry, metric, name string, targetBps float64, window time.Duration) *ThroughputSLA {
	return NewThroughputSLA(clock, name, targetBps, window, func() uint64 {
		return reg.CounterValue(metric)
	})
}

// Start begins sampling.
func (s *ThroughputSLA) Start() {
	s.last = s.sample()
	s.tick()
}

// Stop halts sampling.
func (s *ThroughputSLA) Stop() { s.stopped = true }

func (s *ThroughputSLA) tick() {
	if s.stopped {
		return
	}
	s.clock.AfterFunc(s.window, func() {
		cur := s.sample()
		bps := float64(cur-s.last) * 8 / s.window.Seconds()
		s.last = cur
		s.achieved = append(s.achieved, bps)
		s.tick()
	})
}

// Windows returns the number of completed windows.
func (s *ThroughputSLA) Windows() int { return len(s.achieved) }

// Compliance returns the fraction of windows meeting the target,
// ignoring idle windows (no traffic means no demand, not a violation).
func (s *ThroughputSLA) Compliance() float64 {
	active, met := 0, 0
	for _, bps := range s.achieved {
		if bps <= 0 {
			continue
		}
		active++
		if bps >= s.targetBps {
			met++
		}
	}
	if active == 0 {
		return 1
	}
	return float64(met) / float64(active)
}

// MeanActiveBps returns the mean achieved rate over active windows.
func (s *ThroughputSLA) MeanActiveBps() float64 {
	sum, n := 0.0, 0
	for _, bps := range s.achieved {
		if bps > 0 {
			sum += bps
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// String summarizes the tracker.
func (s *ThroughputSLA) String() string {
	return fmt.Sprintf("sla %s: target %.1f Mbit/s, mean %.1f Mbit/s, compliance %.0f%%",
		s.name, s.targetBps/1e6, s.MeanActiveBps()/1e6, s.Compliance()*100)
}
