package stack

import (
	"fmt"
	"time"

	"netkernel/internal/proto/icmp"
	"netkernel/internal/proto/ipv4"
	"netkernel/internal/sim"
)

type pingWaiter struct {
	sentAt  sim.Time
	timer   sim.Timer
	cb      func(rtt time.Duration, err error)
	replied bool
}

// Ping sends an ICMP echo request and invokes cb exactly once with the
// round-trip time or a timeout error. It powers the pingmesh-style
// failure detector in internal/mgmt (§5 "management protocols such as
// failure detection and monitoring can be deployed readily as NSMs").
func (s *Stack) Ping(dst ipv4.Addr, payload []byte, timeout time.Duration, cb func(rtt time.Duration, err error)) {
	if s.iface == nil {
		cb(0, fmt.Errorf("stack %s: no interface attached", s.cfg.Name))
		return
	}
	if timeout <= 0 {
		timeout = time.Second
	}
	s.nextPing++
	id := s.nextPing
	seq := uint16(1)
	key := uint32(id)<<16 | uint32(seq)
	w := &pingWaiter{sentAt: s.cfg.Clock.Now(), cb: cb}
	w.timer = s.cfg.Clock.AfterFunc(timeout, func() {
		if !w.replied {
			w.replied = true
			delete(s.pings, key)
			cb(0, fmt.Errorf("stack %s: ping %v timed out", s.cfg.Name, dst))
		}
	})
	s.pings[key] = w
	msg := icmp.EchoRequest(id, seq, payload)
	if err := s.sendIPv4(dst, ipv4.ProtoICMP, 0, msg); err != nil {
		w.timer.Stop()
		w.replied = true
		delete(s.pings, key)
		cb(0, err)
	}
}

func (s *Stack) processICMP(src ipv4.Addr, pkt []byte) {
	m, err := icmp.Parse(pkt)
	if err != nil {
		s.stats.droppedBadPacket.Inc()
		return
	}
	s.stats.icmpIn.Inc()
	switch m.Type {
	case icmp.TypeEchoRequest:
		_ = s.sendIPv4(src, ipv4.ProtoICMP, 0, icmp.EchoReply(m))
	case icmp.TypeEchoReply:
		key := uint32(m.ID)<<16 | uint32(m.Seq)
		if w, ok := s.pings[key]; ok && !w.replied {
			w.replied = true
			w.timer.Stop()
			delete(s.pings, key)
			w.cb(s.cfg.Clock.Now().Sub(w.sentAt), nil)
		}
	case icmp.TypeDestUnreachable, icmp.TypeTimeExceeded:
		// Informational; counted but not currently propagated to
		// sockets (TCP's own timers handle unreachability).
	}
}
