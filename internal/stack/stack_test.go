package stack

import (
	"bytes"
	"testing"
	"time"

	"netkernel/internal/netsim"
	"netkernel/internal/proto/ethernet"
	"netkernel/internal/proto/ipv4"
	"netkernel/internal/proto/tcp"
	"netkernel/internal/sim"
)

var (
	ipA = ipv4.Addr{10, 0, 0, 1}
	ipB = ipv4.Addr{10, 0, 0, 2}
)

type pair struct {
	loop   *sim.Loop
	a, b   *Stack
	linkAB *netsim.Link
	linkBA *netsim.Link
}

// newPair wires two single-homed stacks through a duplex link.
func newPair(t *testing.T, link netsim.LinkConfig, mutate func(cfg *Config, side string)) *pair {
	t.Helper()
	loop := sim.NewLoop()
	rng := sim.NewRNG(42)

	macA := ethernet.MAC{2, 0, 0, 0, 0, 1}
	macB := ethernet.MAC{2, 0, 0, 0, 0, 2}
	nicA := netsim.NewNIC(loop, netsim.MAC(macA))
	nicB := netsim.NewNIC(loop, netsim.MAC(macB))
	ab, ba := netsim.Duplex(loop, rng, link, nicA, nicB)
	nicA.AttachWire(ab)
	nicB.AttachWire(ba)

	cfgA := Config{Clock: loop, RNG: sim.NewRNG(1), Name: "a", MinRTO: 50 * time.Millisecond, MSL: 50 * time.Millisecond}
	cfgB := Config{Clock: loop, RNG: sim.NewRNG(2), Name: "b", MinRTO: 50 * time.Millisecond, MSL: 50 * time.Millisecond}
	if mutate != nil {
		mutate(&cfgA, "a")
		mutate(&cfgB, "b")
	}
	a := New(cfgA)
	b := New(cfgB)
	a.AttachInterface(macA, ipA, 1500, 24, ipv4.Addr{}, nicA.Send)
	b.AttachInterface(macB, ipB, 1500, 24, ipv4.Addr{}, nicB.Send)
	nicA.SetHandler(a.DeliverFrame)
	nicB.SetHandler(b.DeliverFrame)
	return &pair{loop: loop, a: a, b: b, linkAB: ab, linkBA: ba}
}

func fastLink() netsim.LinkConfig {
	return netsim.LinkConfig{Rate: 1 * netsim.Gbps, Delay: time.Millisecond, QueueBytes: 1 << 20, FrameOverhead: netsim.EthernetOverhead}
}

func TestPingMeasuresRTT(t *testing.T) {
	p := newPair(t, fastLink(), nil)
	var rtt time.Duration
	var perr error = errPending
	p.a.Ping(ipB, []byte("probe"), time.Second, func(r time.Duration, err error) {
		rtt, perr = r, err
	})
	p.loop.RunFor(time.Second)
	if perr != nil {
		t.Fatalf("ping: %v", perr)
	}
	// 2×1 ms propagation plus serialization; ARP adds a round trip
	// before the echo but not to its timing.
	if rtt < 2*time.Millisecond || rtt > 10*time.Millisecond {
		t.Fatalf("rtt = %v, want ≈2ms", rtt)
	}
	if p.a.Stats().ARPRequests == 0 {
		t.Fatal("first packet did not trigger ARP")
	}
	if p.b.Stats().ARPReply == 0 {
		t.Fatal("peer did not answer ARP")
	}
}

var errPending = &pendingError{}

type pendingError struct{}

func (*pendingError) Error() string { return "pending" }

func TestPingTimeoutWhenPeerGone(t *testing.T) {
	p := newPair(t, fastLink(), nil)
	var perr error
	// 10.0.0.99 does not exist: ARP never resolves.
	p.a.Ping(ipv4.Addr{10, 0, 0, 99}, nil, 100*time.Millisecond, func(_ time.Duration, err error) {
		perr = err
	})
	p.loop.RunFor(time.Second)
	if perr == nil {
		t.Fatal("ping to a ghost host did not time out")
	}
}

// establishTCP dials b:port from a and returns both halves.
func establishTCP(t *testing.T, p *pair, port uint16, opts SocketOptions, lopts SocketOptions) (client, server *tcp.Conn) {
	t.Helper()
	l, err := p.b.Listen(port, 16, lopts)
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.a.Dial(tcp.AddrPort{Addr: ipB, Port: port}, opts)
	if err != nil {
		t.Fatal(err)
	}
	p.loop.RunFor(500 * time.Millisecond)
	srv, ok := l.Accept()
	if !ok {
		t.Fatalf("no accepted connection; client state %v", c.State())
	}
	if c.State() != tcp.StateEstablished || srv.State() != tcp.StateEstablished {
		t.Fatalf("states client=%v server=%v", c.State(), srv.State())
	}
	return c, srv
}

func TestTCPEndToEnd(t *testing.T) {
	p := newPair(t, fastLink(), nil)
	client, server := establishTCP(t, p, 80, SocketOptions{}, SocketOptions{})

	msg := []byte("GET /netkernel HTTP/1.1\r\n\r\n")
	client.Write(msg)
	p.loop.RunFor(100 * time.Millisecond)
	buf := make([]byte, 1024)
	n, _ := server.Read(buf)
	if !bytes.Equal(buf[:n], msg) {
		t.Fatalf("server read %q", buf[:n])
	}
	// Echo back.
	server.Write(buf[:n])
	p.loop.RunFor(100 * time.Millisecond)
	m, _ := client.Read(buf)
	if !bytes.Equal(buf[:m], msg) {
		t.Fatalf("client read %q", buf[:m])
	}
}

func TestTCPBulkThroughputApproachesLineRate(t *testing.T) {
	p := newPair(t, fastLink(), nil) // 1 Gbit/s, 1 ms delay
	client, server := establishTCP(t, p, 5001, SocketOptions{CC: "cubic"}, SocketOptions{CC: "cubic"})

	// Pump for one simulated second.
	payload := make([]byte, 256<<10)
	var received int
	buf := make([]byte, 256<<10)
	deadline := p.loop.Now().Add(time.Second)
	for p.loop.Now() < deadline {
		client.Write(payload)
		p.loop.RunFor(time.Millisecond)
		for {
			n, _ := server.Read(buf)
			if n == 0 {
				break
			}
			received += n
		}
	}
	gbps := float64(received) * 8 / 1e9
	if gbps < 0.85 {
		t.Fatalf("achieved %.2f Gbit/s over a 1 Gbit/s link", gbps)
	}
	if gbps > 1.0 {
		t.Fatalf("achieved %.2f Gbit/s — exceeds line rate, accounting bug", gbps)
	}
}

func TestTCPConnectionRefused(t *testing.T) {
	p := newPair(t, fastLink(), nil)
	var dialErr error = errPending
	_, err := p.a.Dial(tcp.AddrPort{Addr: ipB, Port: 81}, SocketOptions{
		OnEstablished: func(err error) { dialErr = err },
	})
	if err != nil {
		t.Fatal(err)
	}
	p.loop.RunFor(time.Second)
	if dialErr == nil || dialErr == errPending {
		t.Fatalf("dial to closed port: %v, want refusal", dialErr)
	}
}

func TestTCPConnTableLifecycle(t *testing.T) {
	p := newPair(t, fastLink(), nil)
	client, server := establishTCP(t, p, 80, SocketOptions{}, SocketOptions{})
	if p.a.ConnCount() != 1 || p.b.ConnCount() != 1 {
		t.Fatalf("conn counts a=%d b=%d", p.a.ConnCount(), p.b.ConnCount())
	}
	client.Close()
	p.loop.RunFor(50 * time.Millisecond)
	server.Close()
	p.loop.RunFor(2 * time.Second) // covers TIME_WAIT (2×50 ms MSL)
	if p.a.ConnCount() != 0 || p.b.ConnCount() != 0 {
		t.Fatalf("conns leaked: a=%d b=%d (client %v, server %v)",
			p.a.ConnCount(), p.b.ConnCount(), client.State(), server.State())
	}
}

func TestListenerBacklogOverflowDropsSYN(t *testing.T) {
	p := newPair(t, fastLink(), nil)
	_, err := p.b.Listen(80, 1, SocketOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.a.Dial(tcp.AddrPort{Addr: ipB, Port: 80}, SocketOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	p.loop.RunFor(300 * time.Millisecond)
	// Backlog 1: one deposited; extra SYNs dropped (clients retransmit
	// and remain in syn-sent or get deposited after Accept).
	if p.b.ConnCount() > 2 {
		t.Fatalf("overflowed backlog created %d server conns", p.b.ConnCount())
	}
}

func TestUDPExchangeAndUnreachable(t *testing.T) {
	p := newPair(t, fastLink(), nil)
	var got []byte
	var from ipv4.Addr
	_, err := p.b.OpenUDP(53, func(src ipv4.Addr, srcPort uint16, data []byte) {
		from = src
		got = append([]byte(nil), data...)
	})
	if err != nil {
		t.Fatal(err)
	}
	sock, err := p.a.OpenUDP(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sock.SendTo(ipB, 53, []byte("query")); err != nil {
		t.Fatal(err)
	}
	p.loop.RunFor(100 * time.Millisecond)
	if string(got) != "query" || from != ipA {
		t.Fatalf("server got %q from %v", got, from)
	}

	// Datagram to an unbound port triggers ICMP port unreachable.
	before := p.a.Stats().ICMPIn
	sock.SendTo(ipB, 54, []byte("void"))
	p.loop.RunFor(100 * time.Millisecond)
	if p.a.Stats().ICMPIn != before+1 {
		t.Fatal("no ICMP unreachable for unbound port")
	}
}

func TestUDPFragmentationOverMTU(t *testing.T) {
	p := newPair(t, fastLink(), nil)
	var got []byte
	p.b.OpenUDP(7000, func(_ ipv4.Addr, _ uint16, data []byte) {
		got = append([]byte(nil), data...)
	})
	sock, _ := p.a.OpenUDP(0, nil)
	big := make([]byte, 5000) // > 1500 MTU → 4 fragments
	for i := range big {
		big[i] = byte(i * 3)
	}
	sock.SendTo(ipB, 7000, big)
	p.loop.RunFor(100 * time.Millisecond)
	if !bytes.Equal(got, big) {
		t.Fatalf("fragmented datagram: got %d bytes", len(got))
	}
}

func TestPerCoreCPUBoundsSingleFlow(t *testing.T) {
	// One core with 4 µs per packet caps a single flow at ≈3 Gbit/s
	// even over a 10 Gbit/s link: the Figure 4 mechanism.
	loopRate := func(cost time.Duration) float64 {
		p := newPair(t, netsim.LinkConfig{Rate: 10 * netsim.Gbps, Delay: 10 * time.Microsecond, QueueBytes: 4 << 20, FrameOverhead: netsim.EthernetOverhead},
			func(cfg *Config, side string) {
				cfg.CPU = netsim.NewCPU(cfg.Clock, 1)
				cfg.PerPacketCost = cost
				cfg.MinRTO = 10 * time.Millisecond
			})
		client, server := establishTCP(t, p, 5001, SocketOptions{}, SocketOptions{})
		payload := make([]byte, 256<<10)
		received := 0
		buf := make([]byte, 256<<10)
		deadline := p.loop.Now().Add(200 * time.Millisecond)
		for p.loop.Now() < deadline {
			for client.Write(payload) > 0 { // saturate the send buffer
			}
			p.loop.RunFor(time.Millisecond)
			for {
				n, _ := server.Read(buf)
				if n == 0 {
					break
				}
				received += n
			}
		}
		return float64(received) * 8 / 0.2
	}
	capped := loopRate(4 * time.Microsecond)
	// 1500-byte frames every 4 µs ≈ 3 Gbit/s.
	if capped > 4e9 || capped < 1.5e9 {
		t.Fatalf("CPU-capped flow ran at %.2f Gbit/s, want ≈3", capped/1e9)
	}
	uncapped := loopRate(0)
	if uncapped < 2*capped {
		t.Fatalf("removing the CPU cap did not restore throughput: %.2f vs %.2f Gbit/s", uncapped/1e9, capped/1e9)
	}
}

func TestMSSDerivedFromMTU(t *testing.T) {
	p := newPair(t, fastLink(), nil)
	if p.a.MSS() != 1460 {
		t.Fatalf("MSS = %d, want 1460 for 1500 MTU", p.a.MSS())
	}
}

func TestDialWithUnknownCC(t *testing.T) {
	p := newPair(t, fastLink(), nil)
	if _, err := p.a.Dial(tcp.AddrPort{Addr: ipB, Port: 80}, SocketOptions{CC: "warp"}); err == nil {
		t.Fatal("unknown congestion control accepted")
	}
}

func TestListenPortConflict(t *testing.T) {
	p := newPair(t, fastLink(), nil)
	if _, err := p.b.Listen(80, 4, SocketOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.b.Listen(80, 4, SocketOptions{}); err == nil {
		t.Fatal("double listen accepted")
	}
	p.b.CloseListener(80)
	if _, err := p.b.Listen(80, 4, SocketOptions{}); err != nil {
		t.Fatalf("relisten after close: %v", err)
	}
}

func TestStackStatsPlausible(t *testing.T) {
	p := newPair(t, fastLink(), nil)
	client, server := establishTCP(t, p, 80, SocketOptions{}, SocketOptions{})
	client.Write(make([]byte, 100<<10))
	p.loop.RunFor(500 * time.Millisecond)
	buf := make([]byte, 200<<10)
	server.Read(buf)
	sa, sb := p.a.Stats(), p.b.Stats()
	if sa.FramesOut == 0 || sb.FramesIn == 0 || sb.TCPSegsIn == 0 {
		t.Fatalf("counters empty: a=%+v b=%+v", sa, sb)
	}
	if sb.FramesIn < sb.TCPSegsIn {
		t.Fatal("frame count below TCP segment count")
	}
}
