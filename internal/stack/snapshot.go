package stack

import (
	"fmt"
	"sort"

	"netkernel/internal/proto/tcp"
	"netkernel/internal/tcpcc"
)

// This file is the stack half of live NSM migration (DESIGN.md §12):
// draining a dying stack's TCP connections into versioned snapshots
// and reviving snapshots on a successor. The per-connection format
// lives in internal/proto/tcp; this layer adds the demux-table
// bookkeeping and the deterministic iteration order that makes a
// migration schedule a pure function of the seed.

// DrainSnapshots serializes and silently detaches every remaining TCP
// connection, in global tuple order, returning the snapshots. Detached
// connections fire no application callback — the service layer keeps
// its guest-facing state and rewires it to the restored successors.
//
// Mid-handshake passive connections (SYN-RCVD) are detached without a
// snapshot: the peer's SYN retransmission re-establishes them against
// the successor stack's listener, which is simpler and no less correct
// than migrating half a handshake.
func (s *Stack) DrainSnapshots() []*tcp.ConnSnapshot {
	var keys []fourTuple
	for i := range s.connShards {
		sh := &s.connShards[i]
		sh.mu.RLock()
		for k := range sh.conns {
			keys = append(keys, k)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(keys, func(i, j int) bool { return lessTuple(keys[i], keys[j]) })
	var snaps []*tcp.ConnSnapshot
	for _, k := range keys {
		c, ok := s.getConn(k)
		if !ok || c == nil {
			continue
		}
		if c.State() == tcp.StateSynRcvd {
			c.Detach()
			continue
		}
		snap := c.Snapshot()
		c.Detach()
		if snap != nil {
			snaps = append(snaps, snap)
		}
	}
	return snaps
}

// RestoreConn revives a migrated connection on this stack. The
// snapshot supplies every negotiated and learned parameter; opts
// supplies the new environment — callbacks, buffer overrides, and
// optionally a different congestion control (opts.CC non-empty forces
// a hot-swap; empty keeps the snapshot's algorithm). The restored
// connection is installed in the demux table and transmits nothing
// until the normal event flow (ACK arrival, timer, application write)
// resumes it.
func (s *Stack) RestoreConn(snap *tcp.ConnSnapshot, opts SocketOptions) (*tcp.Conn, error) {
	if snap == nil {
		return nil, fmt.Errorf("stack %s: nil snapshot", s.cfg.Name)
	}
	if s.dead {
		return nil, fmt.Errorf("stack %s: dead", s.cfg.Name)
	}
	if s.iface == nil {
		return nil, fmt.Errorf("stack %s: no interface attached", s.cfg.Name)
	}
	if snap.Local.Addr != s.iface.IP {
		return nil, fmt.Errorf("stack %s: snapshot local %v does not match interface %v",
			s.cfg.Name, snap.Local.Addr, s.iface.IP)
	}
	ccName := opts.CC
	if ccName == "" {
		ccName = snap.CC
	}
	cc, err := tcpcc.New(ccName)
	if err != nil {
		return nil, err
	}
	key := fourTuple{snap.Local.Addr, snap.Local.Port, snap.Remote.Addr, snap.Remote.Port}
	if _, exists := s.getConn(key); exists {
		return nil, fmt.Errorf("stack %s: connection %v->%v already present",
			s.cfg.Name, snap.Local, snap.Remote)
	}
	cfg := s.connConfig(snap.Local, snap.Remote, cc, opts)
	conn, err := tcp.Restore(cfg, snap)
	if err != nil {
		return nil, err
	}
	conn.SetOwnerHook(func() { s.delConn(key) })
	s.putConn(key, conn)
	return conn, nil
}
