package stack

import (
	"fmt"

	"netkernel/internal/proto/icmp"
	"netkernel/internal/proto/ipv4"
	"netkernel/internal/proto/udp"
)

// UDPSocket is a bound UDP port.
type UDPSocket struct {
	stack *Stack
	port  uint16
	// OnDatagram receives inbound datagrams (data aliases the packet;
	// copy to retain).
	OnDatagram func(src ipv4.Addr, srcPort uint16, data []byte)
	closed     bool
}

// OpenUDP binds a UDP port (0 picks an ephemeral one) with the given
// receive handler.
func (s *Stack) OpenUDP(port uint16, handler func(src ipv4.Addr, srcPort uint16, data []byte)) (*UDPSocket, error) {
	if s.iface == nil {
		return nil, fmt.Errorf("stack %s: no interface attached", s.cfg.Name)
	}
	if port == 0 {
		for i := 0; i < 16384; i++ {
			p := s.nextPort
			s.nextPort++
			if s.nextPort == 0 {
				s.nextPort = 49152
			}
			if _, used := s.udpSocks[p]; !used && p >= 49152 {
				port = p
				break
			}
		}
		if port == 0 {
			return nil, fmt.Errorf("stack %s: UDP ports exhausted", s.cfg.Name)
		}
	} else if _, used := s.udpSocks[port]; used {
		return nil, fmt.Errorf("stack %s: UDP port %d in use", s.cfg.Name, port)
	}
	u := &UDPSocket{stack: s, port: port, OnDatagram: handler}
	s.udpSocks[port] = u
	return u, nil
}

// Port returns the bound port.
func (u *UDPSocket) Port() uint16 { return u.port }

// SendTo transmits one datagram.
func (u *UDPSocket) SendTo(dst ipv4.Addr, dstPort uint16, payload []byte) error {
	if u.closed {
		return fmt.Errorf("stack %s: send on closed UDP socket", u.stack.cfg.Name)
	}
	h := udp.Header{SrcPort: u.port, DstPort: dstPort}
	dg := h.Marshal(u.stack.iface.IP, dst, payload)
	return u.stack.sendIPv4(dst, ipv4.ProtoUDP, 0, dg)
}

// Close unbinds the socket.
func (u *UDPSocket) Close() {
	if !u.closed {
		u.closed = true
		delete(u.stack.udpSocks, u.port)
	}
}

func (s *Stack) processUDP(src ipv4.Addr, dg []byte) {
	h, payload, err := udp.Parse(src, s.iface.IP, dg)
	if err != nil {
		s.stats.droppedBadPacket.Inc()
		return
	}
	s.stats.udpIn.Inc()
	sock, ok := s.udpSocks[h.DstPort]
	if !ok {
		s.stats.droppedNoSocket.Inc()
		// RFC 1122: signal port unreachable.
		msg := icmp.DestUnreachable(icmp.CodePortUnreachable, dg)
		_ = s.sendIPv4(src, ipv4.ProtoICMP, 0, msg)
		return
	}
	if sock.OnDatagram != nil {
		sock.OnDatagram(src, h.SrcPort, payload)
	}
}
