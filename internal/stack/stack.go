// Package stack assembles the protocol layers into a host network
// stack: interfaces with ARP resolution, IPv4 input/output with
// fragmentation, ICMP echo, UDP sockets, and TCP connections with
// pluggable congestion control.
//
// A Stack instance is exactly what a Network Stack Module hosts (the
// paper ports Linux 4.9's stack into its NSMs, §4.1) and also what the
// legacy baseline runs inside the guest (Figure 2a). Packet processing
// can be charged to a netsim.CPU to model per-core capacity, which is
// what bounds single-flow throughput in Figure 4.
package stack

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"netkernel/internal/netsim"
	"netkernel/internal/proto/arp"
	"netkernel/internal/proto/ethernet"
	"netkernel/internal/proto/ipv4"
	"netkernel/internal/proto/tcp"
	"netkernel/internal/sim"
	"netkernel/internal/tcpcc"
	"netkernel/internal/telemetry"
	"netkernel/internal/vswitch"
)

// Config parameterizes a stack.
type Config struct {
	Clock sim.Clock
	RNG   *sim.RNG
	// Name labels the stack in stats and errors.
	Name string

	// CPU, when set, charges PerPacketCost of core time per packet in
	// each direction, with flows steered to cores RSS-style. This is
	// the per-core processing model behind Figure 4's single-flow cap.
	CPU           *netsim.CPU
	PerPacketCost time.Duration
	// RoundRobinCores steers each new flow to the least-recently-
	// assigned core instead of hashing, guaranteeing up to NumCores
	// concurrent flows never share a core (manual pinning, as the
	// paper's testbed does). Hash steering (the default) is what
	// commodity RSS gives.
	RoundRobinCores bool
	// RxShards, when > 0, runs the stack in sharded (multi-queue NSM)
	// mode: the TCP connection table is split into RxShards shards
	// keyed by the canonical vswitch 4-tuple hash, and each frame is
	// dispatched to CPU core == its flow's shard, so shard i's
	// connection state is only ever touched from core i. RxShards=1
	// models a single-queue NSM (every flow on core 0); 0 keeps the
	// seed's legacy behavior (one table, rssHash core steering).
	RxShards int

	// DefaultCC names the congestion control used when a dial or
	// listen does not specify one. Default "cubic" (the Linux default).
	DefaultCC string

	// TCP knobs passed through to connections.
	MinRTO            time.Duration
	MSL               time.Duration
	DelayedAckTimeout time.Duration
	SendBufSize       int
	RecvBufSize       int
	TTL               uint8

	// Metrics, when set, publishes every stack counter into the host
	// telemetry registry under the scope's prefix (e.g.
	// "nsm2.stack.frames_in"). The counters exist and update either
	// way; the scope only names them.
	Metrics *telemetry.Scope
}

func (c *Config) fillDefaults() {
	if c.DefaultCC == "" {
		c.DefaultCC = "cubic"
	}
	if c.TTL == 0 {
		c.TTL = 64
	}
}

// Stats is a point-in-time copy of the stack counters.
type Stats struct {
	FramesIn, FramesOut   uint64
	IPIn, IPOut           uint64
	TCPSegsIn, UDPIn      uint64
	ICMPIn                uint64
	DroppedNoRoute        uint64
	DroppedBadPacket      uint64
	DroppedNoSocket       uint64
	DroppedDead           uint64 // frames arriving after Kill
	ARPRequests, ARPReply uint64
	// TCPCopiedTx and TCPCopiedRx aggregate the TCP layer's payload
	// memcpy counters across every connection this stack has hosted,
	// including ones already torn down (the per-conn Stats die with the
	// conn; the copy-budget accounting needs the cumulative view).
	TCPCopiedTx, TCPCopiedRx uint64
	// TCPRetransmits aggregates every hosted connection's retransmitted
	// segments (RTO and fast retransmit), cumulatively like the copy
	// ledger.
	TCPRetransmits uint64
}

// counters is the live, atomically updated form of Stats. The stack's
// frame path runs on netsim CPU cores and its counters are read by
// management-plane callers (VM.CopyReport, Snapshot) that may sit on a
// different goroutine under a wall-clock domain, so every hot-path
// counter is an atomic telemetry.Counter rather than a plain field.
type counters struct {
	framesIn, framesOut      telemetry.Counter
	ipIn, ipOut              telemetry.Counter
	tcpSegsIn, udpIn         telemetry.Counter
	icmpIn                   telemetry.Counter
	droppedNoRoute           telemetry.Counter
	droppedBadPacket         telemetry.Counter
	droppedNoSocket          telemetry.Counter
	droppedDead              telemetry.Counter
	arpRequests, arpReply    telemetry.Counter
	tcpCopiedTx, tcpCopiedRx telemetry.Counter
	tcpRetransmits           telemetry.Counter
}

func (c *counters) register(m *telemetry.Scope) {
	m.Counter("frames_in", &c.framesIn)
	m.Counter("frames_out", &c.framesOut)
	m.Counter("ip_in", &c.ipIn)
	m.Counter("ip_out", &c.ipOut)
	m.Counter("tcp_segs_in", &c.tcpSegsIn)
	m.Counter("udp_in", &c.udpIn)
	m.Counter("icmp_in", &c.icmpIn)
	m.Counter("dropped_no_route", &c.droppedNoRoute)
	m.Counter("dropped_bad_packet", &c.droppedBadPacket)
	m.Counter("dropped_no_socket", &c.droppedNoSocket)
	m.Counter("dropped_dead", &c.droppedDead)
	m.Counter("arp_requests", &c.arpRequests)
	m.Counter("arp_replies", &c.arpReply)
	m.Counter("tcp_copied_tx", &c.tcpCopiedTx)
	m.Counter("tcp_copied_rx", &c.tcpCopiedRx)
	m.Counter("tcp_retransmits", &c.tcpRetransmits)
}

func (c *counters) snapshot() Stats {
	return Stats{
		FramesIn: c.framesIn.Load(), FramesOut: c.framesOut.Load(),
		IPIn: c.ipIn.Load(), IPOut: c.ipOut.Load(),
		TCPSegsIn: c.tcpSegsIn.Load(), UDPIn: c.udpIn.Load(),
		ICMPIn:           c.icmpIn.Load(),
		DroppedNoRoute:   c.droppedNoRoute.Load(),
		DroppedBadPacket: c.droppedBadPacket.Load(),
		DroppedNoSocket:  c.droppedNoSocket.Load(),
		DroppedDead:      c.droppedDead.Load(),
		ARPRequests:      c.arpRequests.Load(), ARPReply: c.arpReply.Load(),
		TCPCopiedTx: c.tcpCopiedTx.Load(), TCPCopiedRx: c.tcpCopiedRx.Load(),
		TCPRetransmits: c.tcpRetransmits.Load(),
	}
}

// Stack is one host's network stack.
type Stack struct {
	cfg   Config
	iface *Iface // single-homed: one interface per stack instance

	arpCache *arp.Cache
	reasm    *ipv4.Reassembler

	// connShards is the TCP connection table, split by flow shard
	// (one entry in legacy mode). The datapath mutates a shard only
	// from its own core's dispatch queue; the mutex exists for
	// management-plane readers (ConnCount, Conns) on other goroutines.
	connShards []connShard
	listeners  map[uint16]*listenEntry
	udpSocks   map[uint16]*UDPSocket
	pings      map[uint32]*pingWaiter

	ipID     uint16
	nextPort uint16
	nextPing uint16
	gateway  ipv4.Addr
	maskBits int
	stats    counters

	flowCore map[uint32]int // RoundRobinCores assignment table
	nextCore int
	// dead marks a killed stack (its host NSM crashed): arriving frames
	// are dropped, nothing is ever transmitted again.
	dead bool
}

type listenEntry struct {
	listener *tcp.Listener
	opts     SocketOptions
	// handshaking counts passive connections still in SYN-RCVD; they
	// occupy backlog slots so a SYN flood cannot conjure unbounded
	// connection state.
	handshaking int
}

type fourTuple struct {
	localIP    ipv4.Addr
	localPort  uint16
	remoteIP   ipv4.Addr
	remotePort uint16
}

// connShard is one shard of the TCP connection table.
type connShard struct {
	mu    sync.RWMutex
	conns map[fourTuple]*tcp.Conn
}

// shardFor maps a connection key to its table shard — the same
// canonical hash the frame dispatcher uses, so a flow's segments and
// its connection state always meet on one shard/core.
func (s *Stack) shardFor(key fourTuple) *connShard {
	if len(s.connShards) == 1 {
		return &s.connShards[0]
	}
	h := vswitch.TupleHash(key.localIP, key.localPort, key.remoteIP, key.remotePort)
	return &s.connShards[vswitch.ShardOf(h, len(s.connShards))]
}

func (s *Stack) getConn(key fourTuple) (*tcp.Conn, bool) {
	sh := s.shardFor(key)
	sh.mu.RLock()
	c, ok := sh.conns[key]
	sh.mu.RUnlock()
	return c, ok
}

func (s *Stack) putConn(key fourTuple, c *tcp.Conn) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	sh.conns[key] = c
	sh.mu.Unlock()
}

func (s *Stack) delConn(key fourTuple) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	delete(sh.conns, key)
	sh.mu.Unlock()
}

// New builds a stack.
func New(cfg Config) *Stack {
	cfg.fillDefaults()
	if cfg.Clock == nil {
		panic("stack: Config.Clock required")
	}
	if cfg.RNG == nil {
		cfg.RNG = sim.NewRNG(0x5eed)
	}
	nshards := cfg.RxShards
	if nshards < 1 {
		nshards = 1
	}
	s := &Stack{
		cfg:        cfg,
		arpCache:   arp.NewCache(cfg.Clock, 0),
		reasm:      ipv4.NewReassembler(0),
		connShards: make([]connShard, nshards),
		listeners:  make(map[uint16]*listenEntry),
		udpSocks:   make(map[uint16]*UDPSocket),
		pings:      make(map[uint32]*pingWaiter),
		nextPort:   49152,
		flowCore:   make(map[uint32]int),
	}
	for i := range s.connShards {
		s.connShards[i].conns = make(map[fourTuple]*tcp.Conn)
	}
	s.arpCache.Request = s.sendARPRequest
	s.stats.register(cfg.Metrics)
	if cfg.Metrics != nil && cfg.RxShards > 0 {
		// Per-shard live-connection gauges (DESIGN.md §10 naming:
		// <scope>.s<i>.conns), so steering skew is observable.
		for i := range s.connShards {
			sh := &s.connShards[i]
			cfg.Metrics.GaugeFunc(fmt.Sprintf("s%d.conns", i), func() int64 {
				sh.mu.RLock()
				n := len(sh.conns)
				sh.mu.RUnlock()
				return int64(n)
			})
		}
	}
	return s
}

// Iface is the stack's network interface.
type Iface struct {
	stack *Stack
	MAC   ethernet.MAC
	IP    ipv4.Addr
	MTU   int
	tx    func(frame []byte)
}

// AttachInterface configures the stack's interface: its addresses, MTU,
// the netmask length of the local subnet, the default gateway (zero for
// none), and the transmit function (a netsim NIC, VF, or switch port).
func (s *Stack) AttachInterface(mac ethernet.MAC, ip ipv4.Addr, mtu, maskBits int, gw ipv4.Addr, tx func(frame []byte)) *Iface {
	if mtu <= 0 {
		mtu = ethernet.MTU
	}
	s.iface = &Iface{stack: s, MAC: mac, IP: ip, MTU: mtu, tx: tx}
	s.maskBits = maskBits
	s.gateway = gw
	return s.iface
}

// Interface returns the attached interface (nil before AttachInterface).
func (s *Stack) Interface() *Iface { return s.iface }

// Stats returns a copy of the stack counters, read atomically — safe
// to call from any goroutine while the data path runs.
func (s *Stack) Stats() Stats { return s.stats.snapshot() }

// Name returns the stack's label.
func (s *Stack) Name() string { return s.cfg.Name }

// Clock returns the stack's clock.
func (s *Stack) Clock() sim.Clock { return s.cfg.Clock }

// MSS returns the TCP maximum segment size for the attached interface.
func (s *Stack) MSS() int {
	return s.iface.MTU - ipv4.HeaderLen - tcp.MinHeaderLen
}

// SetDefaultCC changes the congestion control used when sockets do not
// name one — e.g. a Linux guest switching its kernel default to BBR
// via sysctl. Existing connections are unaffected.
func (s *Stack) SetDefaultCC(name string) { s.cfg.DefaultCC = name }

// DefaultCC returns the stack's default congestion control.
func (s *Stack) DefaultCC() string { return s.cfg.DefaultCC }

func sameSubnet(a, b ipv4.Addr, bits int) bool {
	if bits <= 0 {
		return true
	}
	if bits > 32 {
		bits = 32
	}
	au := uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
	bu := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	mask := ^uint32(0) << (32 - bits)
	return au&mask == bu&mask
}

// nextHop picks the neighbor to ARP for: the destination itself when
// on-link, else the default gateway.
func (s *Stack) nextHop(dst ipv4.Addr) (ipv4.Addr, error) {
	if sameSubnet(dst, s.iface.IP, s.maskBits) {
		return dst, nil
	}
	if s.gateway.IsZero() {
		return ipv4.Addr{}, fmt.Errorf("stack %s: no route to %v", s.cfg.Name, dst)
	}
	return s.gateway, nil
}

// DeliverFrame is the interface's receive entry point; wire it to the
// NIC/VF handler. Processing is charged to the configured CPU.
func (s *Stack) DeliverFrame(frame []byte) {
	s.stats.framesIn.Inc()
	if s.dead {
		s.stats.droppedDead.Inc()
		return
	}
	if s.cfg.CPU == nil || s.cfg.PerPacketCost <= 0 {
		s.processFrame(frame)
		return
	}
	s.cfg.CPU.Dispatch(s.frameCore(frame), s.cfg.PerPacketCost, func() { s.processFrame(frame) })
}

// frameCore picks the CPU core charged for a frame: the flow's shard
// in sharded mode (core i owns shard i), else legacy RSS steering.
func (s *Stack) frameCore(frame []byte) int {
	if s.cfg.RxShards > 0 {
		return vswitch.FrameShard(frame, s.cfg.RxShards)
	}
	return s.coreFor(rssHash(frame))
}

// coreFor maps a flow hash to a core: directly (RSS) or via a
// round-robin assignment table (manual pinning).
func (s *Stack) coreFor(hash uint32) int {
	if !s.cfg.RoundRobinCores {
		return int(hash)
	}
	if core, ok := s.flowCore[hash]; ok {
		return core
	}
	core := s.nextCore
	s.nextCore++
	if s.cfg.CPU != nil && s.nextCore >= s.cfg.CPU.Cores() {
		s.nextCore = 0
	}
	s.flowCore[hash] = core
	return core
}

// rssHash steers a frame to a core by hashing its flow fields, like NIC
// receive-side scaling: all segments of one flow share a core.
func rssHash(frame []byte) uint32 {
	// IPv4 src/dst live at 26..34, ports at 34..38 of an Ethernet frame.
	var h uint32 = 2166136261
	end := 38
	if end > len(frame) {
		end = len(frame)
	}
	for _, b := range frame[26:end] {
		h = (h ^ uint32(b)) * 16777619
	}
	return h
}

func (s *Stack) processFrame(frame []byte) {
	eh, payload, err := ethernet.Parse(frame)
	if err != nil {
		s.stats.droppedBadPacket.Inc()
		return
	}
	if eh.Dst != s.iface.MAC && !eh.Dst.IsBroadcast() {
		return // not ours (promiscuous fabric)
	}
	switch eh.Type {
	case ethernet.TypeARP:
		s.processARP(payload)
	case ethernet.TypeIPv4:
		s.processIPv4(payload)
	default:
		s.stats.droppedBadPacket.Inc()
	}
}

func (s *Stack) processARP(pkt []byte) {
	p, err := arp.Parse(pkt)
	if err != nil {
		s.stats.droppedBadPacket.Inc()
		return
	}
	// Opportunistic learning.
	s.arpCache.Learn(p.SenderIP, p.SenderMAC)
	if p.Op == arp.OpRequest && p.TargetIP == s.iface.IP {
		s.stats.arpReply.Inc()
		reply := arp.Packet{
			Op:        arp.OpReply,
			SenderMAC: s.iface.MAC,
			SenderIP:  s.iface.IP,
			TargetMAC: p.SenderMAC,
			TargetIP:  p.SenderIP,
		}
		s.sendEthernet(p.SenderMAC, ethernet.TypeARP, marshalARP(&reply))
	}
}

func marshalARP(p *arp.Packet) []byte {
	b := make([]byte, arp.PacketLen)
	p.Marshal(b)
	return b
}

func (s *Stack) processIPv4(pkt []byte) {
	h, payload, err := ipv4.Parse(pkt)
	if err != nil {
		s.stats.droppedBadPacket.Inc()
		return
	}
	if h.Dst != s.iface.IP {
		return // we are a host, not a router
	}
	s.stats.ipIn.Inc()
	full, done := s.reasm.Add(h, payload, s.cfg.Clock.Now())
	if !done {
		return
	}
	ce := h.ECN() == ipv4.ECNCE
	switch h.Proto {
	case ipv4.ProtoTCP:
		s.processTCP(h.Src, full, ce)
	case ipv4.ProtoUDP:
		s.processUDP(h.Src, full)
	case ipv4.ProtoICMP:
		s.processICMP(h.Src, full)
	default:
		s.stats.droppedNoSocket.Inc()
	}
}

// sendEthernet frames and transmits a payload to a resolved MAC.
func (s *Stack) sendEthernet(dst ethernet.MAC, typ ethernet.EtherType, payload []byte) {
	if s.dead {
		return // a crashed stack transmits nothing
	}
	frame := make([]byte, ethernet.HeaderLen+len(payload))
	eh := ethernet.Header{Dst: dst, Src: s.iface.MAC, Type: typ}
	eh.Marshal(frame)
	copy(frame[ethernet.HeaderLen:], payload)
	s.stats.framesOut.Inc()
	if s.cfg.CPU != nil && s.cfg.PerPacketCost > 0 {
		s.cfg.CPU.Dispatch(s.frameCore(frame), s.cfg.PerPacketCost, func() { s.iface.tx(frame) })
		return
	}
	s.iface.tx(frame)
}

// sendIPv4 routes, resolves, fragments if needed, and transmits one IP
// datagram. Packets awaiting ARP resolution are sent when it completes.
func (s *Stack) sendIPv4(dst ipv4.Addr, proto uint8, tos uint8, payload []byte) error {
	hop, err := s.nextHop(dst)
	if err != nil {
		s.stats.droppedNoRoute.Inc()
		return err
	}
	s.ipID++
	h := ipv4.Header{
		TOS:   tos,
		ID:    s.ipID,
		TTL:   s.cfg.TTL,
		Proto: proto,
		Src:   s.iface.IP,
		Dst:   dst,
	}
	pkts, err := ipv4.Fragment(h, payload, s.iface.MTU)
	if err != nil {
		return fmt.Errorf("stack %s: %w", s.cfg.Name, err)
	}
	s.stats.ipOut.Add(uint64(len(pkts)))

	send := func(mac ethernet.MAC) {
		for _, p := range pkts {
			s.sendEthernet(mac, ethernet.TypeIPv4, p)
		}
	}
	if mac, ok := s.arpCache.Lookup(hop); ok {
		send(mac)
		return nil
	}
	if first := s.arpCache.Await(hop, send); first {
		s.sendARPRequest(hop)
	}
	return nil
}

func (s *Stack) sendARPRequest(target ipv4.Addr) {
	s.stats.arpRequests.Inc()
	req := arp.Packet{
		Op:        arp.OpRequest,
		SenderMAC: s.iface.MAC,
		SenderIP:  s.iface.IP,
		TargetIP:  target,
	}
	s.sendEthernet(ethernet.Broadcast, ethernet.TypeARP, marshalARP(&req))
}

// Kill models the stack's host process crashing: every connection is
// torn down silently (no FIN, no RST — a dead process transmits
// nothing), listeners, UDP sockets, and pending pings vanish, ARP
// resolution timers stop, and any frame still in flight toward the
// stack is dropped on arrival. Peers learn of the crash through their
// own retransmission timers or from the successor stack's RSTs.
func (s *Stack) Kill() {
	if s.dead {
		return
	}
	s.dead = true
	err := fmt.Errorf("stack %s: killed", s.cfg.Name)
	// Collect before tearing down: each Kill fires the conn's owner
	// hook, which deletes from the table. Sorted globally for
	// determinism, regardless of which shard a flow lives on.
	var keys []fourTuple
	for i := range s.connShards {
		sh := &s.connShards[i]
		sh.mu.RLock()
		for k := range sh.conns {
			keys = append(keys, k)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(keys, func(i, j int) bool { return lessTuple(keys[i], keys[j]) })
	for _, k := range keys {
		if c, ok := s.getConn(k); ok && c != nil {
			c.Kill(err)
		}
	}
	for i := range s.connShards {
		sh := &s.connShards[i]
		sh.mu.Lock()
		sh.conns = make(map[fourTuple]*tcp.Conn)
		sh.mu.Unlock()
	}
	s.listeners = make(map[uint16]*listenEntry)
	s.udpSocks = make(map[uint16]*UDPSocket)
	for _, w := range s.pings {
		if w.timer != nil {
			w.timer.Stop()
		}
	}
	s.pings = make(map[uint32]*pingWaiter)
	s.arpCache.Reset()
}

// Dead reports whether Kill has been called.
func (s *Stack) Dead() bool { return s.dead }

// ListenerCount returns the number of open listeners.
func (s *Stack) ListenerCount() int { return len(s.listeners) }

func lessTuple(a, b fourTuple) bool {
	if a.localIP != b.localIP {
		return ipLess(a.localIP, b.localIP)
	}
	if a.localPort != b.localPort {
		return a.localPort < b.localPort
	}
	if a.remoteIP != b.remoteIP {
		return ipLess(a.remoteIP, b.remoteIP)
	}
	return a.remotePort < b.remotePort
}

func ipLess(a, b ipv4.Addr) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// ccByName builds a congestion-control instance, falling back to the
// stack default.
func (s *Stack) ccByName(name string) (tcpcc.Algorithm, error) {
	if name == "" {
		name = s.cfg.DefaultCC
	}
	return tcpcc.New(name)
}
