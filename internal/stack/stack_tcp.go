package stack

import (
	"fmt"

	"netkernel/internal/proto/ipv4"
	"netkernel/internal/proto/tcp"
	"netkernel/internal/tcpcc"
)

// SocketOptions shape a TCP socket created through the stack.
type SocketOptions struct {
	// CC names the congestion control ("" = stack default).
	CC string
	// SendBufSize / RecvBufSize override the stack defaults when > 0.
	SendBufSize, RecvBufSize int
	// Nagle enables small-segment coalescing.
	Nagle bool

	// Callbacks, delivered on the stack's clock executor.
	OnEstablished func(err error)
	OnReadable    func()
	OnWritable    func()
	OnClose       func(err error)
}

// Dial opens an active TCP connection to remote.
func (s *Stack) Dial(remote tcp.AddrPort, opts SocketOptions) (*tcp.Conn, error) {
	if s.iface == nil {
		return nil, fmt.Errorf("stack %s: no interface attached", s.cfg.Name)
	}
	cc, err := s.ccByName(opts.CC)
	if err != nil {
		return nil, err
	}
	port, iss, err := s.allocPort(remote)
	if err != nil {
		return nil, err
	}
	local := tcp.AddrPort{Addr: s.iface.IP, Port: port}
	key := fourTuple{local.Addr, local.Port, remote.Addr, remote.Port}
	cfg := s.connConfig(local, remote, cc, opts)
	cfg.ISS = iss
	conn := tcp.Dial(cfg)
	conn.SetOwnerHook(func() { s.delConn(key) })
	s.putConn(key, conn)
	return conn, nil
}

// Listen opens a TCP listener on port. Accepted connections inherit
// opts (congestion control, buffers); per-connection callbacks are
// attached after Accept with Conn.SetCallbacks.
func (s *Stack) Listen(port uint16, backlog int, opts SocketOptions) (*tcp.Listener, error) {
	if s.iface == nil {
		return nil, fmt.Errorf("stack %s: no interface attached", s.cfg.Name)
	}
	if _, used := s.listeners[port]; used {
		return nil, fmt.Errorf("stack %s: port %d already listening", s.cfg.Name, port)
	}
	l := tcp.NewListener(tcp.AddrPort{Addr: s.iface.IP, Port: port}, backlog)
	s.listeners[port] = &listenEntry{listener: l, opts: opts}
	return l, nil
}

// CloseListener stops accepting on port.
func (s *Stack) CloseListener(port uint16) { delete(s.listeners, port) }

// ConnCount returns the number of live TCP connections (monitoring).
// Safe to call from any goroutine while the data path runs.
func (s *Stack) ConnCount() int {
	n := 0
	for i := range s.connShards {
		sh := &s.connShards[i]
		sh.mu.RLock()
		n += len(sh.conns)
		sh.mu.RUnlock()
	}
	return n
}

// ShardConnCount returns shard i's live TCP connections (monitoring;
// 0 for out-of-range shards).
func (s *Stack) ShardConnCount(i int) int {
	if i < 0 || i >= len(s.connShards) {
		return 0
	}
	sh := &s.connShards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.conns)
}

// RxShards returns the configured shard count (0 = legacy mode).
func (s *Stack) RxShards() int { return s.cfg.RxShards }

// Conns invokes fn for every live connection (monitoring/accounting).
func (s *Stack) Conns(fn func(c *tcp.Conn)) {
	for i := range s.connShards {
		sh := &s.connShards[i]
		sh.mu.RLock()
		conns := make([]*tcp.Conn, 0, len(sh.conns))
		for _, c := range sh.conns {
			conns = append(conns, c)
		}
		sh.mu.RUnlock()
		for _, c := range conns {
			fn(c)
		}
	}
}

func (s *Stack) connConfig(local, remote tcp.AddrPort, ccAlg tcpcc.Algorithm, opts SocketOptions) tcp.Config {
	cfg := tcp.Config{
		Clock:             s.cfg.Clock,
		RNG:               s.cfg.RNG,
		Local:             local,
		Remote:            remote,
		MSS:               s.MSS(),
		SendBufSize:       s.cfg.SendBufSize,
		RecvBufSize:       s.cfg.RecvBufSize,
		CC:                ccAlg,
		MinRTO:            s.cfg.MinRTO,
		MSL:               s.cfg.MSL,
		DelayedAckTimeout: s.cfg.DelayedAckTimeout,
		Nagle:             opts.Nagle,
		Output:            s.tcpOutput(local, remote),
		OnEstablished:     opts.OnEstablished,
		OnReadable:        opts.OnReadable,
		OnWritable:        opts.OnWritable,
		OnClose:           opts.OnClose,
		CopiedTx:          &s.stats.tcpCopiedTx,
		CopiedRx:          &s.stats.tcpCopiedRx,
		Retrans:           &s.stats.tcpRetransmits,
	}
	if opts.SendBufSize > 0 {
		cfg.SendBufSize = opts.SendBufSize
	}
	if opts.RecvBufSize > 0 {
		cfg.RecvBufSize = opts.RecvBufSize
	}
	return cfg
}

func (s *Stack) tcpOutput(local, remote tcp.AddrPort) tcp.OutputFunc {
	return func(h *tcp.Header, payload []byte, ecnCapable bool) {
		seg := h.Marshal(local.Addr, remote.Addr, payload)
		var tos uint8
		if ecnCapable {
			tos = ipv4.ECNECT0
		}
		// Routing errors surface as drops; TCP's own retransmission
		// handles transient ones.
		_ = s.sendIPv4(remote.Addr, ipv4.ProtoTCP, tos, seg)
	}
}

func (s *Stack) processTCP(src ipv4.Addr, seg []byte, ce bool) {
	h, payload, err := tcp.Parse(src, s.iface.IP, seg)
	if err != nil {
		s.stats.droppedBadPacket.Inc()
		return
	}
	s.stats.tcpSegsIn.Inc()
	key := fourTuple{s.iface.IP, h.DstPort, src, h.SrcPort}
	if conn, ok := s.getConn(key); ok {
		conn.Input(&h, payload, ce)
		// TIME_WAIT assassination by a valid new SYN (the peer recycled
		// its port): Input tore the lingering connection down and freed
		// the table slot. Fall through to the listener so the attempt
		// is served now rather than at the peer's SYN retransmission.
		if _, alive := s.getConn(key); alive {
			return
		}
		if h.Flags&tcp.FlagSYN == 0 || h.Flags&tcp.FlagACK != 0 {
			return
		}
	}

	// No connection: a SYN may match a listener.
	if h.Flags&tcp.FlagSYN != 0 && h.Flags&tcp.FlagACK == 0 {
		if le, ok := s.listeners[h.DstPort]; ok {
			if le.listener.Full() || le.listener.Pending()+le.handshaking >= le.listener.MaxBacklog() {
				return // listen-queue overflow: silently drop the SYN
			}
			s.acceptSYN(le, key, &h)
			return
		}
	}
	s.stats.droppedNoSocket.Inc()
	s.sendRST(src, &h, len(payload))
}

func (s *Stack) acceptSYN(le *listenEntry, key fourTuple, syn *tcp.Header) {
	cc, err := s.ccByName(le.opts.CC)
	if err != nil {
		return
	}
	local := tcp.AddrPort{Addr: key.localIP, Port: key.localPort}
	remote := tcp.AddrPort{Addr: key.remoteIP, Port: key.remotePort}
	cfg := s.connConfig(local, remote, cc, le.opts)
	lst := le.listener
	le.handshaking++
	var conn *tcp.Conn
	cfg.OnEstablished = func(err error) {
		le.handshaking--
		if err == nil && conn != nil {
			lst.Deposit(conn)
		}
		if le.opts.OnEstablished != nil {
			le.opts.OnEstablished(err)
		}
	}
	ecnReq := syn.Flags&tcp.FlagECE != 0 && syn.Flags&tcp.FlagCWR != 0
	conn = tcp.NewPassive(cfg, syn, ecnReq)
	conn.SetOwnerHook(func() { s.delConn(key) })
	s.putConn(key, conn)
}

// sendRST answers a stray segment per RFC 793 §3.4.
func (s *Stack) sendRST(src ipv4.Addr, h *tcp.Header, payloadLen int) {
	if h.Flags&tcp.FlagRST != 0 {
		return
	}
	rst := tcp.Header{SrcPort: h.DstPort, DstPort: h.SrcPort}
	if h.Flags&tcp.FlagACK != 0 {
		rst.Flags = tcp.FlagRST
		rst.Seq = h.Ack
	} else {
		rst.Flags = tcp.FlagRST | tcp.FlagACK
		ack := h.Seq + uint32(payloadLen)
		if h.Flags&tcp.FlagSYN != 0 {
			ack++
		}
		if h.Flags&tcp.FlagFIN != 0 {
			ack++
		}
		rst.Ack = ack
	}
	seg := rst.Marshal(s.iface.IP, src, nil)
	_ = s.sendIPv4(src, ipv4.ProtoTCP, 0, seg)
}

// recycleISSMargin is how far beyond a TIME_WAIT predecessor's final
// sequence a recycled port pair starts its ISS: comfortably above
// anything the peer's lingering state has seen, with headroom for the
// predecessor's stray retransmissions still in flight.
const recycleISSMargin = 1 << 16

// allocPort picks an ephemeral port not colliding with existing
// connections to the same remote, listeners, or UDP sockets. A port
// pair held only by a TIME_WAIT connection is recycled (RFC 6191
// flavour): the lingering connection is discarded and the successor's
// ISS is pinned above its final sequence number, so the peer's own
// TIME_WAIT state validates the new SYN as genuinely new instead of a
// delayed duplicate. The returned ISS override is nil for fresh ports.
func (s *Stack) allocPort(remote tcp.AddrPort) (uint16, *uint32, error) {
	for i := 0; i < 16384; i++ {
		p := s.nextPort
		s.nextPort++
		if s.nextPort == 0 {
			s.nextPort = 49152
		}
		if p < 49152 {
			continue
		}
		if _, used := s.listeners[p]; used {
			continue
		}
		if _, used := s.udpSocks[p]; used {
			continue
		}
		key := fourTuple{s.iface.IP, p, remote.Addr, remote.Port}
		if c, used := s.getConn(key); used {
			if c.State() != tcp.StateTimeWait {
				continue
			}
			iss := c.FinalSeq() + recycleISSMargin
			c.Kill(nil) // owner hook clears the table slot
			return p, &iss, nil
		}
		return p, nil, nil
	}
	return 0, nil, fmt.Errorf("stack %s: ephemeral ports exhausted", s.cfg.Name)
}
