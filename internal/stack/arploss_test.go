package stack

import (
	"testing"
	"time"

	"netkernel/internal/netsim"
	"netkernel/internal/proto/tcp"
)

// TestConnectSurvivesLostARP drops the very first frame of a
// connection attempt — the ARP request — and verifies resolution
// retries rescue the handshake (previously a permanent stall).
func TestConnectSurvivesLostARP(t *testing.T) {
	p := newPair(t, fastLink(), nil)
	// Drop exactly the first frame host A transmits (the ARP request).
	dropped := false
	origTx := p.a.iface.tx
	p.a.iface.tx = func(f []byte) {
		if !dropped {
			dropped = true
			return
		}
		origTx(f)
	}
	p.b.Listen(80, 4, SocketOptions{})
	var est error = errPending
	_, err := p.a.Dial(tcp.AddrPort{Addr: ipB, Port: 80}, SocketOptions{
		OnEstablished: func(e error) { est = e },
	})
	if err != nil {
		t.Fatal(err)
	}
	p.loop.RunFor(5 * time.Second)
	if !dropped {
		t.Fatal("no frame was dropped")
	}
	if est != nil {
		t.Fatalf("connection never recovered from the lost ARP request: %v", est)
	}
	_ = netsim.EthernetOverhead
}
