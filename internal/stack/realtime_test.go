package stack

import (
	"bytes"
	"testing"
	"time"

	"netkernel/internal/netsim"
	"netkernel/internal/proto/ethernet"
	"netkernel/internal/proto/ipv4"
	"netkernel/internal/proto/tcp"
	"netkernel/internal/sim"
)

// TestWallClockDomain runs the identical stack code on sim.RealClock —
// real time, real timers, callbacks serialized by the clock's lock —
// and moves data end to end. This is the dual-domain property DESIGN.md
// claims: the virtual-time experiments and a live deployment share one
// implementation.
func TestWallClockDomain(t *testing.T) {
	clock := sim.NewRealClock()
	rng := sim.NewRNG(1)

	a := New(Config{Clock: clock, RNG: sim.NewRNG(1), Name: "rt-a", MinRTO: 50 * time.Millisecond})
	b := New(Config{Clock: clock, RNG: sim.NewRNG(2), Name: "rt-b", MinRTO: 50 * time.Millisecond})

	macA := ethernet.MAC{2, 0, 0, 0, 0, 1}
	macB := ethernet.MAC{2, 0, 0, 0, 0, 2}
	nicA := netsim.NewNIC(clock, netsim.MAC(macA))
	nicB := netsim.NewNIC(clock, netsim.MAC(macB))
	link := netsim.LinkConfig{Rate: 1 * netsim.Gbps, Delay: time.Millisecond}
	ab, ba := netsim.Duplex(clock, rng, link, nicA, nicB)
	nicA.AttachWire(ab)
	nicB.AttachWire(ba)
	a.AttachInterface(macA, ipv4.Addr{10, 0, 0, 1}, 1500, 24, ipv4.Addr{}, nicA.Send)
	b.AttachInterface(macB, ipv4.Addr{10, 0, 0, 2}, 1500, 24, ipv4.Addr{}, nicB.Send)
	nicA.SetHandler(a.DeliverFrame)
	nicB.SetHandler(b.DeliverFrame)

	done := make(chan []byte, 1)
	msg := bytes.Repeat([]byte("wall-clock "), 1000)

	// Everything below runs under the clock's serialization lock, the
	// wall-clock equivalent of running inside the event loop.
	clock.Locked(func() {
		l, err := b.Listen(80, 4, SocketOptions{})
		if err != nil {
			t.Error(err)
			return
		}
		l.OnAcceptable = func() {
			conn, ok := l.Accept()
			if !ok {
				return
			}
			var got bytes.Buffer
			buf := make([]byte, 32<<10)
			conn.SetCallbacks(func() {
				for {
					n, eof := conn.Read(buf)
					got.Write(buf[:n])
					if eof {
						done <- got.Bytes()
						return
					}
					if n == 0 {
						return
					}
				}
			}, nil, nil)
		}

		var conn *tcp.Conn
		conn, err = a.Dial(tcp.AddrPort{Addr: ipv4.Addr{10, 0, 0, 2}, Port: 80}, SocketOptions{
			OnEstablished: func(err error) {
				if err != nil {
					t.Errorf("dial: %v", err)
					return
				}
				conn.Write(msg)
				conn.Close()
			},
		})
		if err != nil {
			t.Error(err)
		}
	})

	select {
	case got := <-done:
		if !bytes.Equal(got, msg) {
			t.Fatalf("wall-clock transfer moved %d of %d bytes intact=%v", len(got), len(msg), bytes.Equal(got, msg))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("wall-clock transfer timed out")
	}
}
