package stack

import (
	"bytes"
	"testing"
	"time"

	"netkernel/internal/proto/tcp"
)

// TestEphemeralPortRecycleAcrossTimeWait drives the RFC 6191-flavoured
// port recycle end to end: a connection closes simultaneously on both
// sides (so BOTH stacks hold TIME_WAIT for the pair), the client's
// ephemeral allocator wraps back onto the port, and a fresh dial must
// (a) discard the local TIME_WAIT and pin its ISS above the dead
// incarnation's final sequence, and (b) present the server's lingering
// TIME_WAIT with a SYN it can validate as genuinely new, assassinating
// the wait and establishing through the listener — with the new stream
// byte-exact.
func TestEphemeralPortRecycleAcrossTimeWait(t *testing.T) {
	p := newPair(t, fastLink(), nil)
	l, err := p.b.Listen(80, 16, SocketOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.a.Dial(tcp.AddrPort{Addr: ipB, Port: 80}, SocketOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p.loop.RunFor(200 * time.Millisecond)
	srv, ok := l.Accept()
	if !ok {
		t.Fatal("no accepted connection")
	}

	// Push the sequence space forward so the recycled ISS has something
	// real to clear.
	payload := bytes.Repeat([]byte("abcdefgh"), 1024)
	c.Write(payload)
	p.loop.RunFor(200 * time.Millisecond)
	got := make([]byte, 0, len(payload))
	buf := make([]byte, 4096)
	for {
		n, _ := srv.Read(buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("first incarnation corrupted: %d of %d bytes", len(got), len(payload))
	}

	// Simultaneous close: FINs cross, both ends traverse CLOSING into
	// TIME_WAIT.
	c.Close()
	srv.Close()
	p.loop.RunFor(20 * time.Millisecond) // < 2·MSL (100ms): both still linger
	if c.State() != tcp.StateTimeWait || srv.State() != tcp.StateTimeWait {
		t.Fatalf("states after simultaneous close: client=%v server=%v, want TIME_WAIT/TIME_WAIT", c.State(), srv.State())
	}
	oldPort := c.LocalAddr().Port
	oldFinal := c.FinalSeq()

	// Wrap the allocator back onto the lingering pair and redial.
	p.a.nextPort = oldPort
	c2, err := p.a.Dial(tcp.AddrPort{Addr: ipB, Port: 80}, SocketOptions{})
	if err != nil {
		t.Fatalf("redial on recycled port: %v", err)
	}
	if c2.LocalAddr().Port != oldPort {
		t.Fatalf("dial took port %d, want recycled %d", c2.LocalAddr().Port, oldPort)
	}
	if c.State() != tcp.StateClosed {
		t.Fatalf("local TIME_WAIT predecessor not discarded: %v", c.State())
	}
	snap := c2.Snapshot()
	if snap == nil {
		t.Fatal("no snapshot for recycled dial")
	}
	if delta := snap.ISS - oldFinal; delta < recycleISSMargin {
		t.Fatalf("recycled ISS only %d beyond predecessor's final seq, want ≥ %d", delta, recycleISSMargin)
	}

	p.loop.RunFor(200 * time.Millisecond)
	if c2.State() != tcp.StateEstablished {
		t.Fatalf("recycled connection state %v, want ESTABLISHED (server TIME_WAIT should be assassinated by the new SYN)", c2.State())
	}
	srv2, ok := l.Accept()
	if !ok {
		t.Fatal("listener never produced the recycled connection")
	}
	if srv.State() != tcp.StateClosed {
		t.Fatalf("server TIME_WAIT survived a valid new SYN: %v", srv.State())
	}

	// The new incarnation carries data byte-exactly.
	payload2 := bytes.Repeat([]byte("01234567"), 512)
	c2.Write(payload2)
	p.loop.RunFor(200 * time.Millisecond)
	got = got[:0]
	for {
		n, _ := srv2.Read(buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if !bytes.Equal(got, payload2) {
		t.Fatalf("recycled incarnation corrupted: %d of %d bytes", len(got), len(payload2))
	}
}

// TestTimeWaitIgnoresStaleSYN is the negative half of the seq
// validation: a SYN whose sequence lies inside what the TIME_WAIT
// incarnation already received is a delayed duplicate, not a recycle —
// it must neither assassinate the wait nor reach the listener.
func TestTimeWaitIgnoresStaleSYN(t *testing.T) {
	p := newPair(t, fastLink(), nil)
	l, err := p.b.Listen(80, 16, SocketOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.a.Dial(tcp.AddrPort{Addr: ipB, Port: 80}, SocketOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p.loop.RunFor(200 * time.Millisecond)
	srv, ok := l.Accept()
	if !ok {
		t.Fatal("no accepted connection")
	}
	c.Write(bytes.Repeat([]byte("x"), 4096))
	p.loop.RunFor(100 * time.Millisecond)
	buf := make([]byte, 8192)
	for n, _ := srv.Read(buf); n > 0; n, _ = srv.Read(buf) {
	}

	c.Close()
	srv.Close()
	p.loop.RunFor(20 * time.Millisecond)
	if srv.State() != tcp.StateTimeWait {
		t.Fatalf("server state %v, want TIME_WAIT", srv.State())
	}

	// Replay a "delayed" SYN from the old incarnation's sequence space
	// straight into the server stack.
	stale := tcp.Header{
		SrcPort: c.LocalAddr().Port, DstPort: 80,
		Flags: tcp.FlagSYN, Seq: c.FinalSeq() - 1000, Window: 65535,
	}
	p.b.processTCP(ipA, stale.Marshal(ipA, ipB, nil), false)
	p.loop.RunFor(10 * time.Millisecond)

	if srv.State() != tcp.StateTimeWait {
		t.Fatalf("stale SYN assassinated TIME_WAIT: state %v", srv.State())
	}
	if _, ok := l.Accept(); ok {
		t.Fatal("stale SYN reached the listener")
	}
}
