package shm

import (
	"fmt"
	"sync/atomic"
)

// Ring is a single-producer single-consumer ring buffer of fixed-size
// slots, the in-memory equivalent of the prototype's small IVSHMEM queue
// devices (§4.1: "The queues are ring buffers implemented as much smaller
// IVSHMEM devices"). One goroutine may produce while another consumes
// without locks; head and tail live on separate cache lines to avoid
// false sharing on the hot path.
type Ring struct {
	slotSize int
	mask     uint64
	buf      []byte

	_    [64]byte // keep head and tail on distinct cache lines
	head atomic.Uint64
	_    [64]byte
	tail atomic.Uint64
	_    [64]byte
}

// NewRing builds a ring of slots entries of slotSize bytes each. slots
// must be a power of two.
func NewRing(slots, slotSize int) (*Ring, error) {
	if slots <= 0 || slots&(slots-1) != 0 {
		return nil, fmt.Errorf("shm: slot count %d is not a positive power of two", slots)
	}
	if slotSize <= 0 {
		return nil, fmt.Errorf("shm: non-positive slot size %d", slotSize)
	}
	return &Ring{
		slotSize: slotSize,
		mask:     uint64(slots - 1),
		buf:      make([]byte, slots*slotSize),
	}, nil
}

// Cap returns the slot count.
func (r *Ring) Cap() int { return int(r.mask + 1) }

// SlotSize returns the slot size in bytes.
func (r *Ring) SlotSize() int { return r.slotSize }

// Len returns the number of occupied slots. It is approximate when
// producer and consumer run concurrently but exact when quiescent.
func (r *Ring) Len() int { return int(r.tail.Load() - r.head.Load()) }

// Empty reports whether no slot is occupied.
func (r *Ring) Empty() bool { return r.tail.Load() == r.head.Load() }

// Full reports whether every slot is occupied.
func (r *Ring) Full() bool { return r.tail.Load()-r.head.Load() > r.mask }

func (r *Ring) slot(pos uint64) []byte {
	off := int(pos&r.mask) * r.slotSize
	return r.buf[off : off+r.slotSize : off+r.slotSize]
}

// Reserve returns the next producer slot for in-place writing, or false
// if the ring is full. The slot is not visible to the consumer until
// Commit. Only the producer goroutine may call Reserve/Commit.
func (r *Ring) Reserve() ([]byte, bool) {
	span, n := r.ReserveN(1)
	if n == 0 {
		return nil, false
	}
	return span, true
}

// Commit publishes the slot returned by the last Reserve.
func (r *Ring) Commit() { r.tail.Add(1) }

// ReserveN returns a contiguous span of up to max free slots for
// in-place writing, as one backing-array slice of n*SlotSize bytes.
// The span never wraps: a reservation that reaches the end of the
// buffer is truncated there, and the next call returns the slots at the
// start. n is 0 when the ring is full (or max <= 0). Nothing is visible
// to the consumer until CommitN. Only the producer goroutine may call
// ReserveN/CommitN.
func (r *Ring) ReserveN(max int) (span []byte, n int) {
	if max <= 0 {
		return nil, 0
	}
	tail := r.tail.Load()
	free := int(r.mask + 1 - (tail - r.head.Load()))
	if free <= 0 {
		return nil, 0
	}
	n = min(max, free)
	idx := int(tail & r.mask)
	if contig := int(r.mask) + 1 - idx; n > contig {
		n = contig
	}
	off := idx * r.slotSize
	end := off + n*r.slotSize
	return r.buf[off:end:end], n
}

// CommitN publishes the first n slots of the span returned by the last
// ReserveN with a single atomic add — the batch-publication the paper's
// batched-interrupt design implies (§3.2).
func (r *Ring) CommitN(n int) {
	if n > 0 {
		r.tail.Add(uint64(n))
	}
}

// Front returns the oldest occupied slot for in-place reading, or false
// if the ring is empty. The slot remains occupied until Release. Only the
// consumer goroutine may call Front/Release.
func (r *Ring) Front() ([]byte, bool) {
	span, n := r.FrontN(1)
	if n == 0 {
		return nil, false
	}
	return span, true
}

// Release frees the slot returned by the last Front.
func (r *Ring) Release() { r.head.Add(1) }

// FrontN returns a contiguous span of up to max occupied slots for
// in-place reading (or patching), as one backing-array slice of
// n*SlotSize bytes. Like ReserveN the span never wraps: it is truncated
// at the buffer end and the next call returns the wrapped remainder.
// n is 0 when the ring is empty. The slots stay occupied until
// ReleaseN. Only the consumer goroutine may call FrontN/ReleaseN.
func (r *Ring) FrontN(max int) (span []byte, n int) {
	if max <= 0 {
		return nil, 0
	}
	head := r.head.Load()
	avail := int(r.tail.Load() - head)
	if avail <= 0 {
		return nil, 0
	}
	n = min(max, avail)
	idx := int(head & r.mask)
	if contig := int(r.mask) + 1 - idx; n > contig {
		n = contig
	}
	off := idx * r.slotSize
	end := off + n*r.slotSize
	return r.buf[off:end:end], n
}

// ReleaseN frees the first n slots of the span returned by the last
// FrontN with a single atomic add.
func (r *Ring) ReleaseN(n int) {
	if n > 0 {
		r.head.Add(uint64(n))
	}
}

// Enqueue copies src into the next free slot. src must be at most one
// slot long. It reports false when the ring is full.
func (r *Ring) Enqueue(src []byte) bool {
	if len(src) > r.slotSize {
		panic(fmt.Sprintf("shm: enqueue of %d bytes into %d-byte slots", len(src), r.slotSize))
	}
	slot, ok := r.Reserve()
	if !ok {
		return false
	}
	copy(slot, src)
	r.Commit()
	return true
}

// Dequeue copies the oldest slot into dst. It reports false when the ring
// is empty.
func (r *Ring) Dequeue(dst []byte) bool {
	slot, ok := r.Front()
	if !ok {
		return false
	}
	copy(dst, slot)
	r.Release()
	return true
}
