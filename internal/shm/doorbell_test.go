package shm

import (
	"testing"
	"time"
)

func TestDoorbellPollingNeverBlocks(t *testing.T) {
	d := NewDoorbell(Polling, 16)
	d.Ring()
	if !d.Wait(time.Second) {
		t.Fatal("polling Wait must return immediately")
	}
}

func TestDoorbellBatching(t *testing.T) {
	d := NewDoorbell(BatchedInterrupt, 4)
	for i := 0; i < 3; i++ {
		d.Ring()
	}
	if d.Wait(10 * time.Millisecond) {
		t.Fatal("woke before the batch filled")
	}
	d.Ring() // 4th: fires
	if !d.Wait(time.Second) {
		t.Fatal("did not wake once the batch filled")
	}
}

func TestDoorbellFlushDeliversPartialBatch(t *testing.T) {
	d := NewDoorbell(BatchedInterrupt, 100)
	d.Ring()
	d.Flush()
	if !d.Wait(time.Second) {
		t.Fatal("Flush did not deliver a partial batch")
	}
}

func TestDoorbellFlushIdleIsNoop(t *testing.T) {
	d := NewDoorbell(BatchedInterrupt, 4)
	d.Flush()
	if d.Wait(10 * time.Millisecond) {
		t.Fatal("Flush with nothing pending delivered a wakeup")
	}
}

func TestDoorbellCoalesces(t *testing.T) {
	d := NewDoorbell(BatchedInterrupt, 1)
	for i := 0; i < 10; i++ {
		d.Ring()
	}
	if !d.Wait(time.Second) {
		t.Fatal("no wakeup after rings")
	}
	// All ten rings collapse into at most one more pending wakeup.
	extra := 0
	for d.Wait(5 * time.Millisecond) {
		extra++
		if extra > 1 {
			t.Fatal("wakeups not coalesced")
		}
	}
}

func TestDoorbellBatchClamped(t *testing.T) {
	d := NewDoorbell(BatchedInterrupt, 0)
	d.Ring()
	if !d.Wait(time.Second) {
		t.Fatal("batch<1 should behave like batch=1")
	}
}

func TestDoorbellRingNOneWakeupPerBatch(t *testing.T) {
	d := NewDoorbell(BatchedInterrupt, 4)
	// A span of 64 crosses 16 batch boundaries but must deliver exactly
	// one wakeup: this is "one interrupt per batch", not per element.
	d.RingN(64)
	if !d.Wait(time.Second) {
		t.Fatal("no wakeup after a full batch span")
	}
	if d.Wait(5 * time.Millisecond) {
		t.Fatal("batched span delivered more than one wakeup")
	}
}

func TestDoorbellRingNBelowBatchDefers(t *testing.T) {
	d := NewDoorbell(BatchedInterrupt, 8)
	d.RingN(3)
	if d.Wait(10 * time.Millisecond) {
		t.Fatal("woke before the batch filled")
	}
	d.RingN(5) // pending reaches 8: fires
	if !d.Wait(time.Second) {
		t.Fatal("did not wake once spans summed to a batch")
	}
}

func TestDoorbellRingNPolling(t *testing.T) {
	d := NewDoorbell(Polling, 4)
	d.RingN(100) // must not panic or accumulate anything
	if d.pending.Load() != 0 {
		t.Fatal("polling RingN accumulated pending work")
	}
}

func TestNotifyModeString(t *testing.T) {
	if Polling.String() != "polling" || BatchedInterrupt.String() != "batched-interrupt" {
		t.Fatal("NotifyMode String broken")
	}
	if NotifyMode(42).String() != "unknown" {
		t.Fatal("unknown mode String broken")
	}
}
