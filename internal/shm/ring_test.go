package shm

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"testing"
	"testing/quick"
	"time"
)

func TestNewRingValidation(t *testing.T) {
	for _, slots := range []int{0, -1, 3, 6, 1000} {
		if _, err := NewRing(slots, 64); err == nil {
			t.Errorf("NewRing(%d, 64) accepted a non-power-of-two", slots)
		}
	}
	if _, err := NewRing(8, 0); err == nil {
		t.Error("NewRing accepted zero slot size")
	}
	r, err := NewRing(8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cap() != 8 || r.SlotSize() != 64 {
		t.Fatalf("Cap/SlotSize = %d/%d, want 8/64", r.Cap(), r.SlotSize())
	}
}

func TestRingFIFO(t *testing.T) {
	r, _ := NewRing(4, 8)
	for i := 0; i < 100; i++ {
		var in [8]byte
		binary.LittleEndian.PutUint64(in[:], uint64(i))
		if !r.Enqueue(in[:]) {
			t.Fatalf("enqueue %d failed on non-full ring", i)
		}
		var out [8]byte
		if !r.Dequeue(out[:]) {
			t.Fatalf("dequeue %d failed on non-empty ring", i)
		}
		if out != in {
			t.Fatalf("dequeue %d = %v, want %v", i, out, in)
		}
	}
}

func TestRingFullAndEmpty(t *testing.T) {
	r, _ := NewRing(4, 1)
	if !r.Empty() || r.Full() {
		t.Fatal("fresh ring should be empty and not full")
	}
	for i := 0; i < 4; i++ {
		if !r.Enqueue([]byte{byte(i)}) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if !r.Full() || r.Len() != 4 {
		t.Fatalf("ring should be full with 4; Len = %d", r.Len())
	}
	if r.Enqueue([]byte{9}) {
		t.Fatal("enqueue succeeded on full ring")
	}
	var b [1]byte
	for i := 0; i < 4; i++ {
		if !r.Dequeue(b[:]) || b[0] != byte(i) {
			t.Fatalf("dequeue %d got %d", i, b[0])
		}
	}
	if !r.Empty() {
		t.Fatal("ring should be empty after draining")
	}
	if r.Dequeue(b[:]) {
		t.Fatal("dequeue succeeded on empty ring")
	}
}

func TestRingWraparound(t *testing.T) {
	r, _ := NewRing(2, 4)
	next := byte(0)
	for round := 0; round < 50; round++ {
		for r.Enqueue([]byte{next, next, next, next}) {
			next++
		}
		var b [4]byte
		for r.Dequeue(b[:]) {
			if b[0] != b[3] {
				t.Fatal("slot torn across wraparound")
			}
		}
	}
}

func TestRingReserveCommitZeroCopy(t *testing.T) {
	r, _ := NewRing(4, 16)
	slot, ok := r.Reserve()
	if !ok {
		t.Fatal("Reserve failed on empty ring")
	}
	copy(slot, "hello")
	// Not yet visible.
	if _, ok := r.Front(); ok {
		t.Fatal("uncommitted slot visible to consumer")
	}
	r.Commit()
	front, ok := r.Front()
	if !ok || !bytes.HasPrefix(front, []byte("hello")) {
		t.Fatalf("Front = %q, %v", front, ok)
	}
	r.Release()
	if !r.Empty() {
		t.Fatal("ring not empty after Release")
	}
}

func TestRingOversizeEnqueuePanics(t *testing.T) {
	r, _ := NewRing(4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("oversize enqueue did not panic")
		}
	}()
	r.Enqueue(make([]byte, 5))
}

// Property: any interleaving of enqueues and dequeues preserves FIFO
// content and never exceeds capacity.
func TestRingQuickFIFO(t *testing.T) {
	err := quick.Check(func(ops []bool) bool {
		r, _ := NewRing(8, 8)
		var model [][8]byte
		next := uint64(0)
		for _, enq := range ops {
			if enq {
				var in [8]byte
				binary.LittleEndian.PutUint64(in[:], next)
				if r.Enqueue(in[:]) {
					model = append(model, in)
					next++
				} else if len(model) != 8 {
					return false // refused while not full
				}
			} else {
				var out [8]byte
				if r.Dequeue(out[:]) {
					if len(model) == 0 || out != model[0] {
						return false
					}
					model = model[1:]
				} else if len(model) != 0 {
					return false // refused while not empty
				}
			}
			if r.Len() != len(model) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

// One producer and one consumer hammer the ring concurrently; every value
// must arrive exactly once, in order. Run with -race to check the
// publication protocol.
func TestRingSPSCConcurrent(t *testing.T) {
	r, _ := NewRing(64, 8)
	const n = 20000
	errc := make(chan error, 1)
	go func() {
		var in [8]byte
		for i := uint64(0); i < n; i++ {
			binary.LittleEndian.PutUint64(in[:], i)
			for !r.Enqueue(in[:]) {
				runtime.Gosched() // single-core hosts need the yield
			}
		}
	}()
	go func() {
		var out [8]byte
		for i := uint64(0); i < n; i++ {
			for !r.Dequeue(out[:]) {
				runtime.Gosched()
			}
			if got := binary.LittleEndian.Uint64(out[:]); got != i {
				errc <- errValue{i, got}
				return
			}
		}
		errc <- nil
	}()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("SPSC exchange timed out")
	}
}

type errValue struct{ want, got uint64 }

func (e errValue) Error() string {
	return "out-of-order value"
}

func TestRingReserveNBasics(t *testing.T) {
	r, _ := NewRing(8, 4)
	if _, n := r.ReserveN(0); n != 0 {
		t.Fatalf("ReserveN(0) = %d slots, want 0", n)
	}
	span, n := r.ReserveN(5)
	if n != 5 || len(span) != 5*4 {
		t.Fatalf("ReserveN(5) = %d slots, %d bytes; want 5, 20", n, len(span))
	}
	for i := 0; i < 5; i++ {
		span[i*4] = byte(i)
	}
	// Not yet visible.
	if _, n := r.FrontN(8); n != 0 {
		t.Fatalf("uncommitted span visible: FrontN = %d slots", n)
	}
	r.CommitN(5)
	got, n := r.FrontN(8)
	if n != 5 {
		t.Fatalf("FrontN = %d slots, want 5", n)
	}
	for i := 0; i < 5; i++ {
		if got[i*4] != byte(i) {
			t.Fatalf("slot %d = %d, want %d", i, got[i*4], i)
		}
	}
	r.ReleaseN(5)
	if !r.Empty() {
		t.Fatal("ring not empty after ReleaseN")
	}
}

// A span must never wrap: reservations and reads are truncated at the
// buffer end and the next call returns the wrapped remainder.
func TestRingBatchWraparound(t *testing.T) {
	r, _ := NewRing(8, 1)
	// Advance head/tail to 6 so a 5-slot batch straddles the boundary.
	for i := 0; i < 6; i++ {
		if !r.Enqueue([]byte{0}) || !r.Dequeue(make([]byte, 1)) {
			t.Fatal("prefill failed")
		}
	}
	span, n := r.ReserveN(5)
	if n != 2 { // slots 6,7 only: truncated at the buffer end
		t.Fatalf("ReserveN(5) at offset 6 = %d slots, want 2", n)
	}
	span[0], span[1] = 6, 7
	r.CommitN(2)
	span, n = r.ReserveN(3)
	if n != 3 { // wrapped remainder at the start
		t.Fatalf("wrapped ReserveN(3) = %d slots, want 3", n)
	}
	span[0], span[1], span[2] = 0, 1, 2
	r.CommitN(3)

	got, n := r.FrontN(8)
	if n != 2 || got[0] != 6 || got[1] != 7 {
		t.Fatalf("FrontN before boundary = %d slots %v, want 2 [6 7]", n, got[:n])
	}
	r.ReleaseN(2)
	got, n = r.FrontN(8)
	if n != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("FrontN after boundary = %d slots %v, want 3 [0 1 2]", n, got[:n])
	}
	r.ReleaseN(3)
	if !r.Empty() {
		t.Fatal("ring not empty after wrapped batch")
	}
}

func TestRingBatchFullAndEmpty(t *testing.T) {
	r, _ := NewRing(4, 1)
	span, n := r.ReserveN(100)
	if n != 4 || len(span) != 4 {
		t.Fatalf("full-ring ReserveN = %d slots, want the whole ring (4)", n)
	}
	r.CommitN(4)
	if _, n := r.ReserveN(1); n != 0 {
		t.Fatalf("ReserveN on full ring = %d slots, want 0", n)
	}
	if !r.Full() {
		t.Fatal("ring should be full")
	}
	_, n = r.FrontN(100)
	if n != 4 {
		t.Fatalf("FrontN on full ring = %d slots, want 4", n)
	}
	r.ReleaseN(4)
	if _, n := r.FrontN(1); n != 0 {
		t.Fatalf("FrontN on empty ring = %d slots, want 0", n)
	}
}

// Partial commit: committing fewer slots than reserved publishes only
// the prefix, and the next ReserveN hands the rest out again.
func TestRingPartialCommit(t *testing.T) {
	r, _ := NewRing(8, 1)
	span, n := r.ReserveN(6)
	if n != 6 {
		t.Fatalf("ReserveN(6) = %d", n)
	}
	span[0], span[1] = 10, 11
	r.CommitN(2)
	if r.Len() != 2 {
		t.Fatalf("Len after partial commit = %d, want 2", r.Len())
	}
	span, n = r.ReserveN(6)
	if n != 6 {
		t.Fatalf("re-ReserveN(6) = %d", n)
	}
	span[0] = 12
	r.CommitN(1)
	var got []byte
	for len(got) < 3 {
		s, n := r.FrontN(8)
		if n == 0 {
			t.Fatalf("drained %d slots, want 3", len(got))
		}
		got = append(got, s[:n]...)
		r.ReleaseN(n)
	}
	if got[0] != 10 || got[1] != 11 || got[2] != 12 {
		t.Fatalf("drained %v, want [10 11 12]", got)
	}
}

// One producer reserves/commits spans while one consumer drains spans;
// every value must arrive exactly once, in order. Run with -race to
// check that CommitN/ReleaseN publish whole spans correctly.
func TestRingSPSCBatchConcurrent(t *testing.T) {
	r, _ := NewRing(64, 8)
	const n = 50000
	errc := make(chan error, 1)
	go func() {
		i := uint64(0)
		for i < n {
			span, got := r.ReserveN(17) // deliberately co-prime with the ring size
			if got == 0 {
				runtime.Gosched()
				continue
			}
			fill := 0
			for fill < got && i < n {
				binary.LittleEndian.PutUint64(span[fill*8:], i)
				i++
				fill++
			}
			r.CommitN(fill)
		}
	}()
	go func() {
		i := uint64(0)
		for i < n {
			span, got := r.FrontN(23)
			if got == 0 {
				runtime.Gosched()
				continue
			}
			for s := 0; s < got; s++ {
				if v := binary.LittleEndian.Uint64(span[s*8:]); v != i {
					errc <- errValue{i, v}
					return
				}
				i++
			}
			r.ReleaseN(got)
		}
		errc <- nil
	}()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("SPSC batch exchange timed out")
	}
}
