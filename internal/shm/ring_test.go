package shm

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"testing"
	"testing/quick"
	"time"
)

func TestNewRingValidation(t *testing.T) {
	for _, slots := range []int{0, -1, 3, 6, 1000} {
		if _, err := NewRing(slots, 64); err == nil {
			t.Errorf("NewRing(%d, 64) accepted a non-power-of-two", slots)
		}
	}
	if _, err := NewRing(8, 0); err == nil {
		t.Error("NewRing accepted zero slot size")
	}
	r, err := NewRing(8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cap() != 8 || r.SlotSize() != 64 {
		t.Fatalf("Cap/SlotSize = %d/%d, want 8/64", r.Cap(), r.SlotSize())
	}
}

func TestRingFIFO(t *testing.T) {
	r, _ := NewRing(4, 8)
	for i := 0; i < 100; i++ {
		var in [8]byte
		binary.LittleEndian.PutUint64(in[:], uint64(i))
		if !r.Enqueue(in[:]) {
			t.Fatalf("enqueue %d failed on non-full ring", i)
		}
		var out [8]byte
		if !r.Dequeue(out[:]) {
			t.Fatalf("dequeue %d failed on non-empty ring", i)
		}
		if out != in {
			t.Fatalf("dequeue %d = %v, want %v", i, out, in)
		}
	}
}

func TestRingFullAndEmpty(t *testing.T) {
	r, _ := NewRing(4, 1)
	if !r.Empty() || r.Full() {
		t.Fatal("fresh ring should be empty and not full")
	}
	for i := 0; i < 4; i++ {
		if !r.Enqueue([]byte{byte(i)}) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if !r.Full() || r.Len() != 4 {
		t.Fatalf("ring should be full with 4; Len = %d", r.Len())
	}
	if r.Enqueue([]byte{9}) {
		t.Fatal("enqueue succeeded on full ring")
	}
	var b [1]byte
	for i := 0; i < 4; i++ {
		if !r.Dequeue(b[:]) || b[0] != byte(i) {
			t.Fatalf("dequeue %d got %d", i, b[0])
		}
	}
	if !r.Empty() {
		t.Fatal("ring should be empty after draining")
	}
	if r.Dequeue(b[:]) {
		t.Fatal("dequeue succeeded on empty ring")
	}
}

func TestRingWraparound(t *testing.T) {
	r, _ := NewRing(2, 4)
	next := byte(0)
	for round := 0; round < 50; round++ {
		for r.Enqueue([]byte{next, next, next, next}) {
			next++
		}
		var b [4]byte
		for r.Dequeue(b[:]) {
			if b[0] != b[3] {
				t.Fatal("slot torn across wraparound")
			}
		}
	}
}

func TestRingReserveCommitZeroCopy(t *testing.T) {
	r, _ := NewRing(4, 16)
	slot, ok := r.Reserve()
	if !ok {
		t.Fatal("Reserve failed on empty ring")
	}
	copy(slot, "hello")
	// Not yet visible.
	if _, ok := r.Front(); ok {
		t.Fatal("uncommitted slot visible to consumer")
	}
	r.Commit()
	front, ok := r.Front()
	if !ok || !bytes.HasPrefix(front, []byte("hello")) {
		t.Fatalf("Front = %q, %v", front, ok)
	}
	r.Release()
	if !r.Empty() {
		t.Fatal("ring not empty after Release")
	}
}

func TestRingOversizeEnqueuePanics(t *testing.T) {
	r, _ := NewRing(4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("oversize enqueue did not panic")
		}
	}()
	r.Enqueue(make([]byte, 5))
}

// Property: any interleaving of enqueues and dequeues preserves FIFO
// content and never exceeds capacity.
func TestRingQuickFIFO(t *testing.T) {
	err := quick.Check(func(ops []bool) bool {
		r, _ := NewRing(8, 8)
		var model [][8]byte
		next := uint64(0)
		for _, enq := range ops {
			if enq {
				var in [8]byte
				binary.LittleEndian.PutUint64(in[:], next)
				if r.Enqueue(in[:]) {
					model = append(model, in)
					next++
				} else if len(model) != 8 {
					return false // refused while not full
				}
			} else {
				var out [8]byte
				if r.Dequeue(out[:]) {
					if len(model) == 0 || out != model[0] {
						return false
					}
					model = model[1:]
				} else if len(model) != 0 {
					return false // refused while not empty
				}
			}
			if r.Len() != len(model) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

// One producer and one consumer hammer the ring concurrently; every value
// must arrive exactly once, in order. Run with -race to check the
// publication protocol.
func TestRingSPSCConcurrent(t *testing.T) {
	r, _ := NewRing(64, 8)
	const n = 20000
	errc := make(chan error, 1)
	go func() {
		var in [8]byte
		for i := uint64(0); i < n; i++ {
			binary.LittleEndian.PutUint64(in[:], i)
			for !r.Enqueue(in[:]) {
				runtime.Gosched() // single-core hosts need the yield
			}
		}
	}()
	go func() {
		var out [8]byte
		for i := uint64(0); i < n; i++ {
			for !r.Dequeue(out[:]) {
				runtime.Gosched()
			}
			if got := binary.LittleEndian.Uint64(out[:]); got != i {
				errc <- errValue{i, got}
				return
			}
		}
		errc <- nil
	}()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("SPSC exchange timed out")
	}
}

type errValue struct{ want, got uint64 }

func (e errValue) Error() string {
	return "out-of-order value"
}
