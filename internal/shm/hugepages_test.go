package shm

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestNewHugePagesValidation(t *testing.T) {
	if _, err := NewHugePages(0, 8192); err == nil {
		t.Error("accepted zero pages")
	}
	if _, err := NewHugePages(1, 0); err == nil {
		t.Error("accepted zero chunk size")
	}
	if _, err := NewHugePages(1, 3000); err == nil {
		t.Error("accepted chunk size not dividing the page")
	}
	h, err := NewHugePages(2, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if h.Chunks() != 2*PageSize/8192 {
		t.Fatalf("Chunks = %d", h.Chunks())
	}
	if h.FreeCount() != h.Chunks() {
		t.Fatalf("fresh allocator FreeCount = %d, want %d", h.FreeCount(), h.Chunks())
	}
}

func TestHugePagesAllocFreeCycle(t *testing.T) {
	h, _ := NewHugePages(1, PageSize/4) // 4 chunks
	var chunks []Chunk
	for i := 0; i < 4; i++ {
		c, ok := h.Alloc()
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		chunks = append(chunks, c)
	}
	if _, ok := h.Alloc(); ok {
		t.Fatal("alloc succeeded on exhausted region")
	}
	// All offsets distinct and chunk-aligned.
	seen := map[uint64]bool{}
	for _, c := range chunks {
		if seen[c.Offset] {
			t.Fatalf("duplicate chunk offset %d", c.Offset)
		}
		if c.Offset%uint64(h.ChunkSize()) != 0 {
			t.Fatalf("misaligned offset %d", c.Offset)
		}
		seen[c.Offset] = true
	}
	for _, c := range chunks {
		h.Free(c)
	}
	if h.FreeCount() != 4 {
		t.Fatalf("FreeCount = %d after freeing all", h.FreeCount())
	}
}

func TestHugePagesWriteRead(t *testing.T) {
	h, _ := NewHugePages(1, 8192)
	c, _ := h.Alloc()
	msg := bytes.Repeat([]byte("netkernel"), 100)
	n := h.Write(c, msg)
	if n != len(msg) {
		t.Fatalf("Write = %d, want %d", n, len(msg))
	}
	buf := make([]byte, len(msg))
	if got := h.Read(c, buf, len(msg)); got != len(msg) {
		t.Fatalf("Read = %d", got)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatal("round trip corrupted data")
	}
}

func TestHugePagesWriteTruncatesAtChunk(t *testing.T) {
	h, _ := NewHugePages(1, 8192)
	c, _ := h.Alloc()
	big := make([]byte, 10000)
	if n := h.Write(c, big); n != 8192 {
		t.Fatalf("Write of oversize data = %d, want 8192", n)
	}
	if n := h.Read(c, make([]byte, 10000), 10000); n != 8192 {
		t.Fatalf("Read clamped = %d, want 8192", n)
	}
}

func TestHugePagesDoubleFreePanics(t *testing.T) {
	h, _ := NewHugePages(1, 8192)
	c, _ := h.Alloc()
	h.Free(c)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	h.Free(c)
}

func TestHugePagesBadOffsetPanics(t *testing.T) {
	h, _ := NewHugePages(1, 8192)
	defer func() {
		if recover() == nil {
			t.Fatal("misaligned free did not panic")
		}
	}()
	h.Free(Chunk{Offset: 1})
}

// Property: chunks allocated between frees are always distinct, and
// alloc+free conserves the free count.
func TestHugePagesQuickConservation(t *testing.T) {
	h, _ := NewHugePages(1, PageSize/16) // 16 chunks
	err := quick.Check(func(ops []bool) bool {
		live := map[uint64]Chunk{}
		for _, alloc := range ops {
			if alloc {
				if c, ok := h.Alloc(); ok {
					if _, dup := live[c.Offset]; dup {
						return false
					}
					live[c.Offset] = c
				} else if len(live) != 16 {
					return false
				}
			} else {
				for off, c := range live {
					h.Free(c)
					delete(live, off)
					break
				}
			}
			if h.FreeCount()+len(live) != 16 {
				return false
			}
		}
		for _, c := range live {
			h.Free(c)
		}
		return h.FreeCount() == 16
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHugePagesIsolation(t *testing.T) {
	// Each VM↔NSM pair gets its own region (§3.1); writes through one
	// allocator must not be visible through another.
	a, _ := NewHugePages(1, 8192)
	b, _ := NewHugePages(1, 8192)
	ca, _ := a.Alloc()
	cb, _ := b.Alloc()
	a.Write(ca, []byte("tenant-a-secret"))
	buf := make([]byte, 15)
	b.Read(cb, buf, 15)
	if bytes.Contains(buf, []byte("secret")) {
		t.Fatal("data leaked across regions")
	}
}

func TestRegionSliceBounds(t *testing.T) {
	r := NewRegion(100)
	if _, err := r.Slice(90, 20); err == nil {
		t.Error("out-of-bounds slice accepted")
	}
	if _, err := r.Slice(-1, 5); err == nil {
		t.Error("negative offset accepted")
	}
	b, err := r.Slice(10, 20)
	if err != nil || len(b) != 20 {
		t.Fatalf("Slice = %d bytes, err %v", len(b), err)
	}
	b[0] = 7
	b2, _ := r.Slice(10, 1)
	if b2[0] != 7 {
		t.Fatal("slices do not alias region memory")
	}
}
