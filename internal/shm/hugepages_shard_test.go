package shm

import (
	"sync"
	"testing"
)

func TestHugePagesRetainDefersFree(t *testing.T) {
	h, _ := NewHugePages(1, PageSize/4)
	c, ok := h.Alloc()
	if !ok {
		t.Fatal("alloc failed")
	}
	if got := h.RefCount(c); got != 1 {
		t.Fatalf("fresh chunk RefCount = %d, want 1", got)
	}
	h.Retain(c)
	if got := h.RefCount(c); got != 2 {
		t.Fatalf("after Retain RefCount = %d, want 2", got)
	}
	h.Free(c)
	if got := h.RefCount(c); got != 1 {
		t.Fatalf("after first Free RefCount = %d, want 1", got)
	}
	if h.FreeCount() != h.Chunks()-1 {
		t.Fatalf("chunk returned to pool with a live reference: FreeCount = %d", h.FreeCount())
	}
	h.Free(c)
	if h.FreeCount() != h.Chunks() {
		t.Fatalf("FreeCount = %d after last reference dropped, want %d", h.FreeCount(), h.Chunks())
	}
	if h.LiveRefs() != 0 {
		t.Fatalf("LiveRefs = %d at quiescence", h.LiveRefs())
	}
}

func TestHugePagesRetainFreeChunkPanics(t *testing.T) {
	h, _ := NewHugePages(1, 8192)
	c, _ := h.Alloc()
	h.Free(c)
	defer func() {
		if recover() == nil {
			t.Fatal("Retain of a free chunk did not panic")
		}
	}()
	h.Retain(c)
}

func TestHugePagesStealsAcrossShards(t *testing.T) {
	// Exhaust the pool through repeated Allocs: the rotating cursor visits
	// every shard, and once the preferred shard runs dry the search must
	// steal from the others until the whole region is handed out.
	h, _ := NewHugePages(1, PageSize/64) // 64 chunks over 8 shards
	seen := map[uint64]bool{}
	for i := 0; i < h.Chunks(); i++ {
		c, ok := h.Alloc()
		if !ok {
			t.Fatalf("alloc %d failed with %d chunks outstanding", i, len(seen))
		}
		if seen[c.Offset] {
			t.Fatalf("duplicate chunk offset %d", c.Offset)
		}
		seen[c.Offset] = true
	}
	if _, ok := h.Alloc(); ok {
		t.Fatal("alloc succeeded on exhausted region")
	}
	for off := range seen {
		h.Free(Chunk{Offset: off})
	}
	if h.FreeCount() != h.Chunks() {
		t.Fatalf("FreeCount = %d after freeing all, want %d", h.FreeCount(), h.Chunks())
	}
}

// TestHugePagesConcurrentAllocFree is the wall-clock contention scenario
// the sharded design exists for: guest-side goroutines allocating while
// NSM-side goroutines free, with occasional Retain/Free pairs riding
// along. Run under -race; the assertions check conservation, not timing.
func TestHugePagesConcurrentAllocFree(t *testing.T) {
	h, _ := NewHugePages(2, 8192) // 512 chunks
	const (
		workers = 8
		rounds  = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var held []Chunk
			for i := 0; i < rounds; i++ {
				if c, ok := h.Alloc(); ok {
					h.Bytes(c)[0] = byte(w)
					if i%3 == 0 {
						h.Retain(c)
						h.Free(c)
					}
					held = append(held, c)
				}
				// Free in bursts so alloc and free phases overlap across
				// goroutines rather than pairing up within one.
				if len(held) > 16 {
					for _, c := range held {
						h.Free(c)
					}
					held = held[:0]
				}
			}
			for _, c := range held {
				h.Free(c)
			}
		}(w)
	}
	wg.Wait()
	if h.FreeCount() != h.Chunks() {
		t.Fatalf("FreeCount = %d after quiescence, want %d", h.FreeCount(), h.Chunks())
	}
	if h.LiveRefs() != 0 {
		t.Fatalf("LiveRefs = %d after quiescence, want 0", h.LiveRefs())
	}
}
