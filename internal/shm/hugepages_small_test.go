package shm

import (
	"bytes"
	"sync"
	"testing"
)

// The small size class (DESIGN.md §11): NewHugePagesSized carves
// SmallPages×PageSize of small chunks above the bulk region, AllocSized
// dispatches short payloads there with bulk fallback, and the two
// classes share the refcount table and Free/Retain discipline.

func TestNewHugePagesSizedValidation(t *testing.T) {
	if _, err := NewHugePagesSized(1, 8192, 1, 3000); err == nil {
		t.Error("accepted small size not dividing the page")
	}
	if _, err := NewHugePagesSized(1, 8192, 1, 8192); err == nil {
		t.Error("accepted small size not smaller than the bulk size")
	}
	h, err := NewHugePagesSized(2, 8192, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	wantBulk, wantSmall := 2*PageSize/8192, PageSize/256
	if h.Chunks() != wantBulk+wantSmall {
		t.Fatalf("Chunks = %d, want %d+%d", h.Chunks(), wantBulk, wantSmall)
	}
	if h.SmallChunks() != wantSmall {
		t.Fatalf("SmallChunks = %d, want %d", h.SmallChunks(), wantSmall)
	}
	if h.SmallChunkSize() != 256 {
		t.Fatalf("SmallChunkSize = %d", h.SmallChunkSize())
	}
	// No small class: AllocSized falls back to bulk.
	h2, err := NewHugePagesSized(1, 8192, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h2.SmallChunks() != 0 || h2.SmallChunkSize() != 0 {
		t.Fatalf("classless region reports %d small chunks size %d", h2.SmallChunks(), h2.SmallChunkSize())
	}
	if c, ok := h2.AllocSized(64, 0); !ok || h2.SizeOf(c) != 8192 {
		t.Fatal("AllocSized without a small class must hand out a bulk chunk")
	}
}

func TestAllocSizedDispatch(t *testing.T) {
	h, _ := NewHugePagesSized(1, 8192, 1, 256)
	smallBase := uint64(PageSize)

	small, ok := h.AllocSized(64, 0)
	if !ok || small.Offset < smallBase {
		t.Fatalf("64B alloc landed at %d, want small class ≥ %d", small.Offset, smallBase)
	}
	if h.SizeOf(small) != 256 {
		t.Fatalf("SizeOf(small) = %d", h.SizeOf(small))
	}
	big, ok := h.AllocSized(257, 0)
	if !ok || big.Offset >= smallBase {
		t.Fatalf("257B alloc landed at %d, want bulk class < %d", big.Offset, smallBase)
	}
	if h.SizeOf(big) != 8192 {
		t.Fatalf("SizeOf(big) = %d", h.SizeOf(big))
	}
	// Bulk chunks via Alloc never come from the small range, so big
	// transfers keep their pre-§11 offsets.
	bulk, _ := h.Alloc()
	if bulk.Offset >= smallBase {
		t.Fatalf("Alloc landed in the small range at %d", bulk.Offset)
	}
	h.Free(small)
	h.Free(big)
	h.Free(bulk)
}

func TestSmallClassExhaustionFallsBack(t *testing.T) {
	// Bulk chunks of half a page, small chunks of a quarter page: the
	// small class holds exactly 4 chunks.
	h, err := NewHugePagesSized(1, PageSize/2, 1, PageSize/4)
	if err != nil {
		t.Fatal(err)
	}
	var small []Chunk
	for i := 0; i < 4; i++ {
		c, ok := h.AllocSized(8, 0)
		if !ok || h.SizeOf(c) != PageSize/4 {
			t.Fatalf("small alloc %d: ok=%v size=%d", i, ok, h.SizeOf(c))
		}
		small = append(small, c)
	}
	// Small class dry: a short payload must fall back to a bulk chunk
	// rather than fail.
	c, ok := h.AllocSized(8, 0)
	if !ok {
		t.Fatal("AllocSized failed with bulk chunks free")
	}
	if h.SizeOf(c) != PageSize/2 {
		t.Fatalf("fallback chunk size %d, want bulk", h.SizeOf(c))
	}
	for _, ch := range append(small, c) {
		h.Free(ch)
	}
	if h.FreeCount() != h.Chunks() {
		t.Fatalf("FreeCount = %d after freeing all, want %d", h.FreeCount(), h.Chunks())
	}
}

func TestSmallChunkWriteReadBounds(t *testing.T) {
	h, _ := NewHugePagesSized(1, 8192, 1, 256)
	c, _ := h.AllocSized(64, 0)
	msg := bytes.Repeat([]byte("x"), 300)
	if n := h.Write(c, msg); n != 256 {
		t.Fatalf("Write into a small chunk = %d, want clamped 256", n)
	}
	if n := h.Read(c, make([]byte, 300), 300); n != 256 {
		t.Fatalf("Read from a small chunk = %d, want clamped 256", n)
	}
	if len(h.Bytes(c)) != 256 {
		t.Fatalf("Bytes window = %d, want 256", len(h.Bytes(c)))
	}
	h.Free(c)
}

func TestSmallChunkRefcounts(t *testing.T) {
	h, _ := NewHugePagesSized(1, 8192, 1, 256)
	c, _ := h.AllocSized(8, 0)
	h.Retain(c)
	if n := h.RefCount(c); n != 2 {
		t.Fatalf("RefCount = %d after retain", n)
	}
	h.Free(c)
	if h.LiveRefs() != 1 {
		t.Fatalf("LiveRefs = %d with one ref standing", h.LiveRefs())
	}
	h.Free(c)
	if h.LiveRefs() != 0 {
		t.Fatalf("LiveRefs = %d after final free", h.LiveRefs())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double free of a small chunk did not panic")
		}
	}()
	h.Free(c)
}

// TestSmallClassConcurrentAllocFree hammers the small class from many
// goroutines (the -race tier's view of the sharded free lists).
func TestSmallClassConcurrentAllocFree(t *testing.T) {
	h, _ := NewHugePagesSized(2, 8192, 2, 256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				c, ok := h.AllocSized(16, g)
				if !ok {
					continue
				}
				h.Write(c, []byte{byte(g)})
				h.Free(c)
			}
		}(g)
	}
	wg.Wait()
	if h.FreeCount() != h.Chunks() {
		t.Fatalf("FreeCount = %d after quiesce, want %d", h.FreeCount(), h.Chunks())
	}
	if h.LiveRefs() != 0 {
		t.Fatalf("LiveRefs = %d after quiesce", h.LiveRefs())
	}
}
