package shm

import (
	"sync/atomic"
	"time"

	"netkernel/internal/sim"
)

// NotifyMode selects how one side of a queue pair learns that the other
// side produced work. The prototype polls "for simplicity" (§4.1); the
// design calls for batched interrupts (§3.2), and §5 names the choice as
// an open efficiency question. Both are implemented so the tradeoff can
// be measured (see BenchmarkNotifyModes).
type NotifyMode int

const (
	// Polling busy-spins on the ring, burning a core for minimum latency.
	Polling NotifyMode = iota
	// BatchedInterrupt accumulates rings and wakes the consumer once per
	// batch, trading latency for CPU.
	BatchedInterrupt
)

func (m NotifyMode) String() string {
	switch m {
	case Polling:
		return "polling"
	case BatchedInterrupt:
		return "batched-interrupt"
	default:
		return "unknown"
	}
}

// A Doorbell carries producer→consumer wakeups for one queue direction.
// Ring is called by the producer after enqueuing; Wait blocks the
// consumer until at least one wakeup is pending. In BatchedInterrupt mode
// the wakeup is deferred until batch rings accumulate (or Flush forces
// it), which is the batching the paper's design describes.
type Doorbell struct {
	mode    NotifyMode
	batch   int32
	pending atomic.Int32
	ch      chan struct{}

	faults *doorbellFaults
	stats  doorbellCounters
}

// doorbellFaults injects wakeup-path failures for the chaos suite:
// drop decides whether a due wakeup is swallowed, delay defers its
// delivery on the given clock. Installed once before use; the hooks are
// consulted from whatever context rings the doorbell.
type doorbellFaults struct {
	drop  func() bool
	delay func() time.Duration
	clock sim.Clock
}

type doorbellCounters struct {
	rings, wakeups, dropped, delayed atomic.Uint64
}

// DoorbellStats is a snapshot of a doorbell's wakeup accounting.
type DoorbellStats struct {
	// Rings counts ring units recorded (Ring contributes 1, RingN n).
	Rings uint64
	// Wakeups counts wakeups actually delivered to the consumer channel.
	Wakeups uint64
	// DroppedWakeups counts due wakeups swallowed by the drop fault.
	// Pending ring units survive a drop, so a later Ring or Flush
	// retries the wakeup — recovery is level-triggered.
	DroppedWakeups uint64
	// DelayedWakeups counts wakeups deferred by the delay fault.
	DelayedWakeups uint64
}

// SetWakeupFaults installs fault hooks on the wakeup path. drop, when
// non-nil and returning true, swallows a due wakeup without clearing
// the pending count. delay, when non-nil and returning > 0, defers the
// wakeup by that duration on clock. Call before the doorbell is shared
// between goroutines.
func (d *Doorbell) SetWakeupFaults(drop func() bool, delay func() time.Duration, clock sim.Clock) {
	if drop == nil && delay == nil {
		d.faults = nil
		return
	}
	d.faults = &doorbellFaults{drop: drop, delay: delay, clock: clock}
}

// Stats returns a snapshot of the doorbell's wakeup accounting.
func (d *Doorbell) Stats() DoorbellStats {
	return DoorbellStats{
		Rings:          d.stats.rings.Load(),
		Wakeups:        d.stats.wakeups.Load(),
		DroppedWakeups: d.stats.dropped.Load(),
		DelayedWakeups: d.stats.delayed.Load(),
	}
}

// NewDoorbell builds a doorbell. batch is the interrupt coalescing factor
// and is ignored in Polling mode; values below 1 are treated as 1.
func NewDoorbell(mode NotifyMode, batch int) *Doorbell {
	if batch < 1 {
		batch = 1
	}
	return &Doorbell{mode: mode, batch: int32(batch), ch: make(chan struct{}, 1)}
}

// Mode returns the doorbell's notification mode.
func (d *Doorbell) Mode() NotifyMode { return d.mode }

// Ring records one unit of produced work and wakes the consumer according
// to the mode's coalescing policy.
func (d *Doorbell) Ring() {
	if d.mode == Polling {
		return // consumer is spinning; nothing to signal
	}
	d.stats.rings.Add(1)
	if d.pending.Add(1) >= d.batch {
		d.fire()
	}
}

// RingN records n units of produced work at once, waking the consumer at
// most once however large n is — the per-batch doorbell of §3.2's
// "batched interrupts". It is equivalent to n calls of Ring except that
// intermediate batch boundaries inside the span coalesce into the single
// wakeup the batch deserves.
func (d *Doorbell) RingN(n int) {
	if d.mode == Polling || n <= 0 {
		return
	}
	d.stats.rings.Add(uint64(n))
	if d.pending.Add(int32(n)) >= d.batch {
		d.fire()
	}
}

// Flush delivers any coalesced wakeups immediately. Producers call it
// when they go idle so a partial batch is not stranded.
func (d *Doorbell) Flush() {
	if d.mode == Polling {
		return
	}
	if d.pending.Load() > 0 {
		d.fire()
	}
}

func (d *Doorbell) fire() {
	if f := d.faults; f != nil {
		if f.drop != nil && f.drop() {
			// Swallow the wakeup but keep the pending count: the next
			// Ring or Flush re-fires, so a lost doorbell delays the
			// consumer rather than wedging it.
			d.stats.dropped.Add(1)
			return
		}
		d.pending.Store(0)
		if f.delay != nil {
			if dl := f.delay(); dl > 0 {
				d.stats.delayed.Add(1)
				f.clock.AfterFunc(dl, d.wake)
				return
			}
		}
		d.wake()
		return
	}
	d.pending.Store(0)
	d.wake()
}

func (d *Doorbell) wake() {
	d.stats.wakeups.Add(1)
	select {
	case d.ch <- struct{}{}:
	default: // a wakeup is already pending; coalesce
	}
}

// Wait blocks until a wakeup arrives or timeout elapses (timeout <= 0
// means wait forever). It reports whether a wakeup arrived. In Polling
// mode Wait returns immediately: the caller is expected to spin on the
// ring itself.
func (d *Doorbell) Wait(timeout time.Duration) bool {
	if d.mode == Polling {
		return true
	}
	if timeout <= 0 {
		<-d.ch
		return true
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-d.ch:
		return true
	case <-t.C:
		return false
	}
}
