package shm

import "testing"

func BenchmarkRingEnqueueDequeue(b *testing.B) {
	r, _ := NewRing(1024, 64)
	slot := make([]byte, 64)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Enqueue(slot)
		r.Dequeue(slot)
	}
}

func BenchmarkRingReserveCommit(b *testing.B) {
	r, _ := NewRing(1024, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _ := r.Reserve()
		s[0] = byte(i)
		r.Commit()
		r.Front()
		r.Release()
	}
}

func BenchmarkHugePagesAllocFree(b *testing.B) {
	h, _ := NewHugePages(1, 8<<10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, ok := h.Alloc()
		if !ok {
			b.Fatal("exhausted")
		}
		h.Free(c)
	}
}
