// Package shm is NetKernel's shared-memory substrate.
//
// The paper builds two communication channels between a tenant VM and its
// Network Stack Module (§3.1): a small IVSHMEM region holding ring-buffer
// queues for nqe metadata, and a huge-page region (2 MB pages) holding the
// actual application data, with a unique region per VM↔NSM pair for
// isolation. This package reproduces both on plain process memory:
//
//   - Region: a contiguous byte area standing in for an IVSHMEM device.
//   - HugePages: a chunk allocator over a Region, standing in for the
//     2 MB huge pages GuestLib and ServiceLib copy data through.
//   - Ring: a single-producer single-consumer ring buffer of fixed-size
//     slots, standing in for the queue devices.
//   - Doorbell: the notification primitive between the two sides,
//     supporting the paper's polling mode and batched-interrupt mode.
//
// The datapath cost the paper measures (Table 1 memory-copy latency, the
// ~12 ns nqe copy) is memory-copy cost, which this package incurs for
// real; the benchmarks in bench_test.go measure it with testing.B.
package shm

import "fmt"

// PageSize is the huge-page size used by the prototype (QEMU IVSHMEM,
// §4.1): 2 MB.
const PageSize = 2 << 20

// DefaultPageCount matches the prototype's 40 huge pages per VM↔NSM pair.
const DefaultPageCount = 40

// A Region is a contiguous shared-memory area. It stands in for an
// IVSHMEM device mapped into both a tenant VM and its NSM.
type Region struct {
	buf []byte
}

// NewRegion allocates a region of the given size.
func NewRegion(size int) *Region {
	if size <= 0 {
		panic("shm: non-positive region size")
	}
	return &Region{buf: make([]byte, size)}
}

// Size returns the region size in bytes.
func (r *Region) Size() int { return len(r.buf) }

// Slice returns the [off, off+n) window of the region. The returned slice
// aliases region memory: writes through it are visible to both sides.
func (r *Region) Slice(off, n int) ([]byte, error) {
	if off < 0 || n < 0 || off+n > len(r.buf) {
		return nil, fmt.Errorf("shm: slice [%d, %d+%d) out of region of %d bytes", off, off, n, len(r.buf))
	}
	return r.buf[off : off+n : off+n], nil
}
