package shm

import (
	"testing"
	"time"

	"netkernel/internal/sim"
)

// TestDoorbellDropIsLevelTriggered: a dropped wakeup must not wedge the
// consumer. The pending ring count survives the drop, so the next ring
// that reaches the batch threshold re-fires and delivers the wakeup.
func TestDoorbellDropIsLevelTriggered(t *testing.T) {
	d := NewDoorbell(BatchedInterrupt, 4)
	dropNext := true
	d.SetWakeupFaults(func() bool {
		was := dropNext
		dropNext = false
		return was
	}, nil, nil)

	for i := 0; i < 4; i++ {
		d.Ring()
	}
	if d.Wait(10 * time.Millisecond) {
		t.Fatal("dropped wakeup was delivered anyway")
	}
	d.Ring() // pending is 5 ≥ batch: re-fires, drop is spent
	if !d.Wait(time.Second) {
		t.Fatal("doorbell wedged after a dropped wakeup")
	}
	st := d.Stats()
	if st.Rings != 5 || st.Wakeups != 1 || st.DroppedWakeups != 1 {
		t.Fatalf("stats after drop+recover: %+v", st)
	}
}

// TestDoorbellFlushRecoversDroppedWakeup: Flush is the producer's
// going-idle signal and must also re-fire a previously dropped wakeup.
func TestDoorbellFlushRecoversDroppedWakeup(t *testing.T) {
	d := NewDoorbell(BatchedInterrupt, 2)
	drops := 1
	d.SetWakeupFaults(func() bool {
		if drops > 0 {
			drops--
			return true
		}
		return false
	}, nil, nil)

	d.RingN(2)
	if d.Wait(10 * time.Millisecond) {
		t.Fatal("dropped wakeup was delivered anyway")
	}
	d.Flush()
	if !d.Wait(time.Second) {
		t.Fatal("Flush did not recover the dropped wakeup")
	}
}

// TestDoorbellDelayedWakeup: a delayed wakeup arrives exactly after the
// injected latency on the virtual clock, and still coalesces.
func TestDoorbellDelayedWakeup(t *testing.T) {
	loop := sim.NewLoop()
	d := NewDoorbell(BatchedInterrupt, 1)
	d.SetWakeupFaults(nil, func() time.Duration { return time.Millisecond }, loop)

	d.Ring()
	if d.Wait(5 * time.Millisecond) {
		t.Fatal("wakeup arrived before the injected delay elapsed")
	}
	loop.RunFor(time.Millisecond)
	if !d.Wait(time.Second) {
		t.Fatal("delayed wakeup never arrived")
	}
	st := d.Stats()
	if st.DelayedWakeups != 1 || st.Wakeups != 1 {
		t.Fatalf("stats after delayed wakeup: %+v", st)
	}
}

// TestDoorbellCoalescingUnderLoss drives ring/flush schedules against
// scripted drop patterns and checks the wakeup accounting: every due
// wakeup is either delivered or counted dropped, and a final flush
// always recovers — under any loss pattern the consumer eventually
// wakes as long as work is pending.
func TestDoorbellCoalescingUnderLoss(t *testing.T) {
	cases := []struct {
		name     string
		batch    int
		rings    int
		drops    []bool // consumed per fire attempt
		wakeups  uint64
		dropped  uint64
		recovers bool // a trailing Flush must deliver the stranded batch
	}{
		{name: "no-loss", batch: 2, rings: 4, drops: nil, wakeups: 2, dropped: 0},
		{name: "drop-first", batch: 2, rings: 4, drops: []bool{true}, wakeups: 1, dropped: 1, recovers: true},
		{name: "drop-every-fire", batch: 1, rings: 3, drops: []bool{true, true, true}, wakeups: 0, dropped: 3, recovers: true},
		{name: "drop-middle", batch: 1, rings: 3, drops: []bool{false, true, false}, wakeups: 2, dropped: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := NewDoorbell(BatchedInterrupt, tc.batch)
			i := 0
			d.SetWakeupFaults(func() bool {
				if i < len(tc.drops) {
					i++
					return tc.drops[i-1]
				}
				return false
			}, nil, nil)
			for r := 0; r < tc.rings; r++ {
				d.Ring()
			}
			st := d.Stats()
			if st.Wakeups != tc.wakeups || st.DroppedWakeups != tc.dropped {
				t.Fatalf("wakeups %d dropped %d, want %d/%d", st.Wakeups, st.DroppedWakeups, tc.wakeups, tc.dropped)
			}
			if tc.recovers {
				d.Flush()
				if !d.Wait(time.Second) {
					t.Fatal("flush failed to recover the stranded wakeup")
				}
			}
		})
	}
}
