package shm

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// A Chunk is a fixed-size window of a huge-page region, identified by its
// byte offset. Chunks are what nqe data descriptors point at (§3.2): the
// sender copies application data into a chunk and enqueues an nqe carrying
// the chunk's offset and length; the receiver reads the bytes back out and
// frees the chunk.
type Chunk struct {
	// Offset is the chunk's byte offset within its region.
	Offset uint64
}

// hugePageShards bounds the number of free-list shards. Small pools get
// one shard per chunk; anything realistic gets the full set.
const hugePageShards = 8

// DefaultSmallChunkSize is the small size class granularity (DESIGN.md
// §11): big enough for an RPC header + tiny payload, small enough that
// a 64 B message does not monopolize an 8 KB bulk chunk.
const DefaultSmallChunkSize = 256

type hpShard struct {
	mu   sync.Mutex
	free []int32
}

// chunkClass is one size class's allocation state: a contiguous index
// range of equally-sized chunks with sharded LIFO free lists.
type chunkClass struct {
	chunkSize int
	baseOff   uint64 // byte offset of the class's first chunk
	baseIdx   int32  // global chunk index of the class's first chunk
	count     int32
	shardSize int // chunk indexes per shard (class-local)
	shards    []hpShard
	cursor    atomic.Uint32 // rotating preferred shard
}

// init lays out the class's free lists so the lowest chunk pops first
// (cache warmth, and the historical allocation order within a shard).
func (cc *chunkClass) init() {
	nshards := hugePageShards
	if int(cc.count) < nshards {
		nshards = int(cc.count)
	}
	cc.shardSize = (int(cc.count) + nshards - 1) / nshards
	cc.shards = make([]hpShard, nshards)
	for i := cc.count - 1; i >= 0; i-- {
		s := &cc.shards[int(i)/cc.shardSize]
		s.free = append(s.free, cc.baseIdx+i)
	}
}

func (cc *chunkClass) allocFrom(start int) (int32, bool) {
	for i := 0; i < len(cc.shards); i++ {
		s := &cc.shards[(start+i)%len(cc.shards)]
		s.mu.Lock()
		n := len(s.free)
		if n == 0 {
			s.mu.Unlock()
			continue
		}
		idx := s.free[n-1]
		s.free = s.free[:n-1]
		s.mu.Unlock()
		return idx, true
	}
	return -1, false
}

func (cc *chunkClass) release(idx int32) {
	s := &cc.shards[int(idx-cc.baseIdx)/cc.shardSize]
	s.mu.Lock()
	s.free = append(s.free, idx)
	s.mu.Unlock()
}

func (cc *chunkClass) freeCount() int {
	n := 0
	for i := range cc.shards {
		cc.shards[i].mu.Lock()
		n += len(cc.shards[i].free)
		cc.shards[i].mu.Unlock()
	}
	return n
}

// HugePages is a refcounted chunk allocator over a shared Region,
// standing in for the per-VM↔NSM huge-page area.
//
// The region holds up to two size classes: the bulk class (ChunkSize,
// the streaming data path) and an optional small class (SmallChunkSize)
// carved from dedicated pages at the top of the region, so a 64 B RPC
// does not burn a 2 MB-backed bulk chunk per round trip (DESIGN.md
// §11). A chunk's class is implied by its offset, so descriptors on the
// nqe wire need no class field and Free/Retain/Bytes work unchanged.
//
// The free lists are sharded: each chunk has a home shard (a contiguous
// index range), Free returns a chunk to its home shard, and Alloc starts
// from a rotating preferred shard and steals from the others on a miss.
// In the wall-clock domain the guest side allocates while the NSM side
// frees (and vice versa for receive); sharding keeps those two from
// serializing on a single mutex while each shard's LIFO order preserves
// cache warmth.
//
// Chunks carry a reference count: Alloc hands out a chunk with one
// reference, Retain adds one (e.g. while a TCP send buffer holds a span
// into the chunk and the NSM still tracks it), and Free drops one. The
// chunk returns to its home free list only when the last reference is
// dropped. Releasing a chunk that is already free panics, as before.
type HugePages struct {
	region *Region

	big   chunkClass
	small chunkClass // count 0 when the region has no small class
	refs  []atomic.Int32
}

// NewHugePages builds an allocator of pages×PageSize bytes divided into
// chunkSize chunks. chunkSize must divide PageSize.
func NewHugePages(pages, chunkSize int) (*HugePages, error) {
	return NewHugePagesSized(pages, chunkSize, 0, 0)
}

// NewHugePagesSized builds an allocator with pages×PageSize bytes of
// chunkSize bulk chunks plus smallPages×PageSize bytes of smallSize
// chunks (the short-flow size class). smallPages 0 disables the small
// class; smallSize 0 selects DefaultSmallChunkSize.
func NewHugePagesSized(pages, chunkSize, smallPages, smallSize int) (*HugePages, error) {
	if pages <= 0 {
		return nil, fmt.Errorf("shm: non-positive page count %d", pages)
	}
	if chunkSize <= 0 || PageSize%chunkSize != 0 {
		return nil, fmt.Errorf("shm: chunk size %d must be positive and divide the %d-byte page", chunkSize, PageSize)
	}
	if smallPages < 0 {
		return nil, fmt.Errorf("shm: negative small page count %d", smallPages)
	}
	if smallPages > 0 {
		if smallSize == 0 {
			smallSize = DefaultSmallChunkSize
		}
		if smallSize <= 0 || PageSize%smallSize != 0 {
			return nil, fmt.Errorf("shm: small chunk size %d must be positive and divide the %d-byte page", smallSize, PageSize)
		}
		if smallSize >= chunkSize {
			return nil, fmt.Errorf("shm: small chunk size %d must be below the bulk chunk size %d", smallSize, chunkSize)
		}
	}
	nBig := pages * (PageSize / chunkSize)
	nSmall := 0
	if smallPages > 0 {
		nSmall = smallPages * (PageSize / smallSize)
	}
	h := &HugePages{
		region: NewRegion((pages + smallPages) * PageSize),
		big: chunkClass{
			chunkSize: chunkSize, baseOff: 0, baseIdx: 0, count: int32(nBig),
		},
		refs: make([]atomic.Int32, nBig+nSmall),
	}
	h.big.init()
	if nSmall > 0 {
		h.small = chunkClass{
			chunkSize: smallSize,
			baseOff:   uint64(pages) * PageSize,
			baseIdx:   int32(nBig),
			count:     int32(nSmall),
		}
		h.small.init()
	}
	return h, nil
}

// ChunkSize returns the bulk chunk size in bytes.
func (h *HugePages) ChunkSize() int { return h.big.chunkSize }

// SmallChunkSize returns the small-class chunk size, 0 when the region
// has no small class.
func (h *HugePages) SmallChunkSize() int {
	if h.small.count == 0 {
		return 0
	}
	return h.small.chunkSize
}

// Chunks returns the total number of chunks across both classes.
func (h *HugePages) Chunks() int { return len(h.refs) }

// SmallChunks returns the small-class chunk count (0 when disabled).
func (h *HugePages) SmallChunks() int { return int(h.small.count) }

// FreeCount returns the number of chunks currently available (both
// classes).
func (h *HugePages) FreeCount() int {
	n := h.big.freeCount()
	if h.small.count > 0 {
		n += h.small.freeCount()
	}
	return n
}

// LiveRefs sums the reference counts of all in-use chunks. At quiescence
// (no chunk handed out) it must be zero; the chaos harness asserts this
// together with FreeCount()==Chunks().
func (h *HugePages) LiveRefs() int {
	n := 0
	for i := range h.refs {
		n += int(h.refs[i].Load())
	}
	return n
}

// RefCount reports the chunk's current reference count (0 = free).
func (h *HugePages) RefCount(c Chunk) int { return int(h.refs[h.index(c)].Load()) }

// SizeOf reports the chunk's capacity: its class's chunk size.
func (h *HugePages) SizeOf(c Chunk) int { return h.classOf(h.index(c)).chunkSize }

// Alloc reserves one bulk chunk with a reference count of one. It
// reports false when the class is exhausted, which callers treat as
// backpressure (§3.2: the sender stalls until the receiver consumes and
// frees).
//
// The search starts at a rotating preferred shard and work-steals from
// the remaining shards on a miss, so concurrent allocators spread across
// the free lists instead of queueing on one lock.
func (h *HugePages) Alloc() (Chunk, bool) {
	return h.allocClass(&h.big, int(h.big.cursor.Add(1)-1))
}

// AllocOn reserves one bulk chunk preferring the given shard's free
// list, falling back to work-stealing like Alloc. Sharded datapath
// layers pass their flow shard here so a connection's chunks cluster on
// one free list (cache affinity), without perturbing the rotating cursor
// that unsharded callers share.
func (h *HugePages) AllocOn(pref int) (Chunk, bool) {
	if pref < 0 {
		pref = -pref
	}
	return h.allocClass(&h.big, pref)
}

// AllocSized reserves the cheapest chunk that holds size bytes on the
// preferred shard: the small class when the payload fits and the class
// exists (falling back to a bulk chunk when the small class is
// exhausted), the bulk class otherwise. This is the short-flow
// allocation entry point — tiny RPCs recycle 256 B slots instead of
// cycling 8 KB bulk chunks through the free lists.
func (h *HugePages) AllocSized(size, pref int) (Chunk, bool) {
	if pref < 0 {
		pref = -pref
	}
	if h.small.count > 0 && size <= h.small.chunkSize {
		if c, ok := h.allocClass(&h.small, pref); ok {
			return c, true
		}
	}
	return h.allocClass(&h.big, pref)
}

func (h *HugePages) allocClass(cc *chunkClass, start int) (Chunk, bool) {
	idx, ok := cc.allocFrom(start % len(cc.shards))
	if !ok {
		return Chunk{}, false
	}
	h.refs[idx].Store(1)
	return h.chunkAt(idx), true
}

// Retain adds a reference to an allocated chunk. It panics if the chunk
// is currently free: taking a reference on unowned memory is the same
// descriptor-corruption class of bug as a double free.
func (h *HugePages) Retain(c Chunk) {
	idx := h.index(c)
	if n := h.refs[idx].Add(1); n <= 1 {
		h.refs[idx].Add(-1)
		panic(fmt.Sprintf("shm: retain of free chunk at offset %d", c.Offset))
	}
}

// Free drops one reference; the chunk returns to its home shard's free
// list when the last reference is dropped. Releasing an already-free
// chunk or a misaligned offset panics: both indicate descriptor
// corruption, which in a real deployment would be a guest escaping its
// huge-page window.
func (h *HugePages) Free(c Chunk) {
	idx := h.index(c)
	n := h.refs[idx].Add(-1)
	if n < 0 {
		h.refs[idx].Add(1)
		panic(fmt.Sprintf("shm: double free of chunk at offset %d", c.Offset))
	}
	if n > 0 {
		return // other holders remain
	}
	h.classOf(idx).release(idx)
}

// classOf returns the size class owning a global chunk index.
func (h *HugePages) classOf(idx int32) *chunkClass {
	if idx >= h.big.count {
		return &h.small
	}
	return &h.big
}

// chunkAt returns the Chunk for a global index.
func (h *HugePages) chunkAt(idx int32) Chunk {
	cc := h.classOf(idx)
	return Chunk{Offset: cc.baseOff + uint64(idx-cc.baseIdx)*uint64(cc.chunkSize)}
}

// index maps a chunk offset to its global index, dispatching on the
// class boundary so both size classes share one refcount array.
func (h *HugePages) index(c Chunk) int32 {
	cc := &h.big
	if h.small.count > 0 && c.Offset >= h.small.baseOff {
		cc = &h.small
	}
	rel := c.Offset - cc.baseOff
	if rel%uint64(cc.chunkSize) != 0 || c.Offset >= uint64(h.region.Size()) {
		panic(fmt.Sprintf("shm: chunk offset %d invalid for chunk size %d, region %d", c.Offset, cc.chunkSize, h.region.Size()))
	}
	return cc.baseIdx + int32(rel/uint64(cc.chunkSize))
}

// Bytes returns the chunk's full window (its class's chunk size). The
// slice aliases shared memory.
func (h *HugePages) Bytes(c Chunk) []byte {
	b, err := h.region.Slice(int(c.Offset), h.classOf(h.index(c)).chunkSize)
	if err != nil {
		panic("shm: " + err.Error())
	}
	return b
}

// Write copies data into the chunk and returns the number of bytes
// copied, truncating at the chunk's capacity. This is GuestLib's
// send-side copy (§3.2: "GuestLib intercepts the call and puts the data
// into the huge pages").
func (h *HugePages) Write(c Chunk, data []byte) int {
	return copy(h.Bytes(c), data)
}

// Read copies n bytes of the chunk into buf, returning the number copied.
// This is the receive-side copy out of the huge pages.
func (h *HugePages) Read(c Chunk, buf []byte, n int) int {
	b := h.Bytes(c)
	if n > len(b) {
		n = len(b)
	}
	return copy(buf, b[:n])
}
