package shm

import (
	"fmt"
	"sync"
)

// A Chunk is a fixed-size window of a huge-page region, identified by its
// byte offset. Chunks are what nqe data descriptors point at (§3.2): the
// sender copies application data into a chunk and enqueues an nqe carrying
// the chunk's offset and length; the receiver reads the bytes back out and
// frees the chunk.
type Chunk struct {
	// Offset is the chunk's byte offset within its region.
	Offset uint64
}

// HugePages is a chunk allocator over a shared Region, standing in for
// the per-VM↔NSM huge-page area. Allocation is a LIFO free list guarded
// by a mutex, because in the wall-clock domain the guest side allocates
// while the NSM side frees (and vice versa for receive).
type HugePages struct {
	region    *Region
	chunkSize int

	mu    sync.Mutex
	free  []int32
	inUse []bool
}

// NewHugePages builds an allocator of pages×PageSize bytes divided into
// chunkSize chunks. chunkSize must divide PageSize.
func NewHugePages(pages, chunkSize int) (*HugePages, error) {
	if pages <= 0 {
		return nil, fmt.Errorf("shm: non-positive page count %d", pages)
	}
	if chunkSize <= 0 || PageSize%chunkSize != 0 {
		return nil, fmt.Errorf("shm: chunk size %d must be positive and divide the %d-byte page", chunkSize, PageSize)
	}
	n := pages * (PageSize / chunkSize)
	h := &HugePages{
		region:    NewRegion(pages * PageSize),
		chunkSize: chunkSize,
		free:      make([]int32, n),
		inUse:     make([]bool, n),
	}
	// LIFO free list: hand back the lowest chunks first for cache warmth.
	for i := range h.free {
		h.free[i] = int32(n - 1 - i)
	}
	return h, nil
}

// ChunkSize returns the fixed chunk size in bytes.
func (h *HugePages) ChunkSize() int { return h.chunkSize }

// Chunks returns the total number of chunks.
func (h *HugePages) Chunks() int { return len(h.inUse) }

// FreeCount returns the number of chunks currently available.
func (h *HugePages) FreeCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.free)
}

// Alloc reserves one chunk. It reports false when the region is full,
// which callers treat as backpressure (§3.2: the sender stalls until the
// receiver consumes and frees).
func (h *HugePages) Alloc() (Chunk, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.free)
	if n == 0 {
		return Chunk{}, false
	}
	idx := h.free[n-1]
	h.free = h.free[:n-1]
	h.inUse[idx] = true
	return Chunk{Offset: uint64(idx) * uint64(h.chunkSize)}, true
}

// Free returns a chunk to the allocator. Double frees and misaligned
// offsets panic: both indicate descriptor corruption, which in a real
// deployment would be a guest escaping its huge-page window.
func (h *HugePages) Free(c Chunk) {
	idx := h.index(c)
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.inUse[idx] {
		panic(fmt.Sprintf("shm: double free of chunk at offset %d", c.Offset))
	}
	h.inUse[idx] = false
	h.free = append(h.free, idx)
}

func (h *HugePages) index(c Chunk) int32 {
	if c.Offset%uint64(h.chunkSize) != 0 || c.Offset >= uint64(h.region.Size()) {
		panic(fmt.Sprintf("shm: chunk offset %d invalid for chunk size %d, region %d", c.Offset, h.chunkSize, h.region.Size()))
	}
	return int32(c.Offset / uint64(h.chunkSize))
}

// Bytes returns the chunk's full window. The slice aliases shared memory.
func (h *HugePages) Bytes(c Chunk) []byte {
	b, err := h.region.Slice(int(c.Offset), h.chunkSize)
	if err != nil {
		panic("shm: " + err.Error())
	}
	return b
}

// Write copies data into the chunk and returns the number of bytes
// copied, truncating at the chunk size. This is GuestLib's send-side copy
// (§3.2: "GuestLib intercepts the call and puts the data into the huge
// pages").
func (h *HugePages) Write(c Chunk, data []byte) int {
	return copy(h.Bytes(c), data)
}

// Read copies n bytes of the chunk into buf, returning the number copied.
// This is the receive-side copy out of the huge pages.
func (h *HugePages) Read(c Chunk, buf []byte, n int) int {
	if n > h.chunkSize {
		n = h.chunkSize
	}
	return copy(buf, h.Bytes(c)[:n])
}
