package shm

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// A Chunk is a fixed-size window of a huge-page region, identified by its
// byte offset. Chunks are what nqe data descriptors point at (§3.2): the
// sender copies application data into a chunk and enqueues an nqe carrying
// the chunk's offset and length; the receiver reads the bytes back out and
// frees the chunk.
type Chunk struct {
	// Offset is the chunk's byte offset within its region.
	Offset uint64
}

// hugePageShards bounds the number of free-list shards. Small pools get
// one shard per chunk; anything realistic gets the full set.
const hugePageShards = 8

type hpShard struct {
	mu   sync.Mutex
	free []int32
}

// HugePages is a refcounted chunk allocator over a shared Region,
// standing in for the per-VM↔NSM huge-page area.
//
// The free lists are sharded: each chunk has a home shard (a contiguous
// index range), Free returns a chunk to its home shard, and Alloc starts
// from a rotating preferred shard and steals from the others on a miss.
// In the wall-clock domain the guest side allocates while the NSM side
// frees (and vice versa for receive); sharding keeps those two from
// serializing on a single mutex while each shard's LIFO order preserves
// cache warmth.
//
// Chunks carry a reference count: Alloc hands out a chunk with one
// reference, Retain adds one (e.g. while a TCP send buffer holds a span
// into the chunk and the NSM still tracks it), and Free drops one. The
// chunk returns to its home free list only when the last reference is
// dropped. Releasing a chunk that is already free panics, as before.
type HugePages struct {
	region    *Region
	chunkSize int

	shardSize int // chunk indexes per shard
	shards    []hpShard
	cursor    atomic.Uint32 // rotating preferred shard for Alloc
	refs      []atomic.Int32
}

// NewHugePages builds an allocator of pages×PageSize bytes divided into
// chunkSize chunks. chunkSize must divide PageSize.
func NewHugePages(pages, chunkSize int) (*HugePages, error) {
	if pages <= 0 {
		return nil, fmt.Errorf("shm: non-positive page count %d", pages)
	}
	if chunkSize <= 0 || PageSize%chunkSize != 0 {
		return nil, fmt.Errorf("shm: chunk size %d must be positive and divide the %d-byte page", chunkSize, PageSize)
	}
	n := pages * (PageSize / chunkSize)
	nshards := hugePageShards
	if n < nshards {
		nshards = n
	}
	h := &HugePages{
		region:    NewRegion(pages * PageSize),
		chunkSize: chunkSize,
		shardSize: (n + nshards - 1) / nshards,
		shards:    make([]hpShard, nshards),
		refs:      make([]atomic.Int32, n),
	}
	// Per-shard LIFO free lists ordered so the lowest chunk pops first
	// (cache warmth, and the historical allocation order within a shard).
	for idx := n - 1; idx >= 0; idx-- {
		s := &h.shards[idx/h.shardSize]
		s.free = append(s.free, int32(idx))
	}
	return h, nil
}

// ChunkSize returns the fixed chunk size in bytes.
func (h *HugePages) ChunkSize() int { return h.chunkSize }

// Chunks returns the total number of chunks.
func (h *HugePages) Chunks() int { return len(h.refs) }

// FreeCount returns the number of chunks currently available.
func (h *HugePages) FreeCount() int {
	n := 0
	for i := range h.shards {
		h.shards[i].mu.Lock()
		n += len(h.shards[i].free)
		h.shards[i].mu.Unlock()
	}
	return n
}

// LiveRefs sums the reference counts of all in-use chunks. At quiescence
// (no chunk handed out) it must be zero; the chaos harness asserts this
// together with FreeCount()==Chunks().
func (h *HugePages) LiveRefs() int {
	n := 0
	for i := range h.refs {
		n += int(h.refs[i].Load())
	}
	return n
}

// RefCount reports the chunk's current reference count (0 = free).
func (h *HugePages) RefCount(c Chunk) int { return int(h.refs[h.index(c)].Load()) }

// Alloc reserves one chunk with a reference count of one. It reports
// false when the region is full, which callers treat as backpressure
// (§3.2: the sender stalls until the receiver consumes and frees).
//
// The search starts at a rotating preferred shard and work-steals from
// the remaining shards on a miss, so concurrent allocators spread across
// the free lists instead of queueing on one lock.
func (h *HugePages) Alloc() (Chunk, bool) {
	return h.allocFrom(int(h.cursor.Add(1)-1) % len(h.shards))
}

// AllocOn reserves one chunk preferring the given shard's free list,
// falling back to work-stealing like Alloc. Sharded datapath layers
// pass their flow shard here so a connection's chunks cluster on one
// free list (cache affinity), without perturbing the rotating cursor
// that unsharded callers share.
func (h *HugePages) AllocOn(pref int) (Chunk, bool) {
	if pref < 0 {
		pref = -pref
	}
	return h.allocFrom(pref % len(h.shards))
}

func (h *HugePages) allocFrom(start int) (Chunk, bool) {
	for i := 0; i < len(h.shards); i++ {
		s := &h.shards[(start+i)%len(h.shards)]
		s.mu.Lock()
		n := len(s.free)
		if n == 0 {
			s.mu.Unlock()
			continue
		}
		idx := s.free[n-1]
		s.free = s.free[:n-1]
		s.mu.Unlock()
		h.refs[idx].Store(1)
		return Chunk{Offset: uint64(idx) * uint64(h.chunkSize)}, true
	}
	return Chunk{}, false
}

// Retain adds a reference to an allocated chunk. It panics if the chunk
// is currently free: taking a reference on unowned memory is the same
// descriptor-corruption class of bug as a double free.
func (h *HugePages) Retain(c Chunk) {
	idx := h.index(c)
	if n := h.refs[idx].Add(1); n <= 1 {
		h.refs[idx].Add(-1)
		panic(fmt.Sprintf("shm: retain of free chunk at offset %d", c.Offset))
	}
}

// Free drops one reference; the chunk returns to its home shard's free
// list when the last reference is dropped. Releasing an already-free
// chunk or a misaligned offset panics: both indicate descriptor
// corruption, which in a real deployment would be a guest escaping its
// huge-page window.
func (h *HugePages) Free(c Chunk) {
	idx := h.index(c)
	n := h.refs[idx].Add(-1)
	if n < 0 {
		h.refs[idx].Add(1)
		panic(fmt.Sprintf("shm: double free of chunk at offset %d", c.Offset))
	}
	if n > 0 {
		return // other holders remain
	}
	s := &h.shards[int(idx)/h.shardSize]
	s.mu.Lock()
	s.free = append(s.free, idx)
	s.mu.Unlock()
}

func (h *HugePages) index(c Chunk) int32 {
	if c.Offset%uint64(h.chunkSize) != 0 || c.Offset >= uint64(h.region.Size()) {
		panic(fmt.Sprintf("shm: chunk offset %d invalid for chunk size %d, region %d", c.Offset, h.chunkSize, h.region.Size()))
	}
	return int32(c.Offset / uint64(h.chunkSize))
}

// Bytes returns the chunk's full window. The slice aliases shared memory.
func (h *HugePages) Bytes(c Chunk) []byte {
	b, err := h.region.Slice(int(c.Offset), h.chunkSize)
	if err != nil {
		panic("shm: " + err.Error())
	}
	return b
}

// Write copies data into the chunk and returns the number of bytes
// copied, truncating at the chunk size. This is GuestLib's send-side copy
// (§3.2: "GuestLib intercepts the call and puts the data into the huge
// pages").
func (h *HugePages) Write(c Chunk, data []byte) int {
	return copy(h.Bytes(c), data)
}

// Read copies n bytes of the chunk into buf, returning the number copied.
// This is the receive-side copy out of the huge pages.
func (h *HugePages) Read(c Chunk, buf []byte, n int) int {
	if n > h.chunkSize {
		n = h.chunkSize
	}
	return copy(buf, h.Bytes(c)[:n])
}
