package nqe

import (
	"testing"
)

// FuzzNqeDecode feeds arbitrary 64-byte records through the element
// codec. Decode must accept any bytes without panicking, and
// decode→encode→decode must be a fixed point: the second decode yields
// exactly the first element (padding is canonicalized, every field
// survives). Validate and String must be total on whatever comes out.
func FuzzNqeDecode(f *testing.F) {
	var seed Element
	seed = Element{
		Op: OpSend, Source: FromVM, VMID: 3, NSMID: 1, FD: 42, CID: 7,
		Seq: 99, DataOff: 1 << 21, DataLen: 1460, Arg0: PackAddr([4]byte{10, 0, 0, 1}, 80),
	}
	buf := make([]byte, Size)
	seed.Encode(buf)
	f.Add(append([]byte{}, buf...))
	seed = Element{Op: OpConnClosed, Source: FromNSM, CID: 9, Status: StatusConnReset}
	seed.Encode(buf)
	f.Add(append([]byte{}, buf...))
	f.Add(make([]byte, Size))

	f.Fuzz(func(t *testing.T, b []byte) {
		if len(b) < Size {
			return
		}
		var e Element
		e.Decode(b)
		out := make([]byte, Size)
		e.Encode(out)
		var e2 Element
		e2.Decode(out)
		if e != e2 {
			t.Fatalf("decode/encode/decode diverged:\n  first  %+v\n  second %+v", e, e2)
		}
		_ = e.Validate()
		_ = e.String()

		// The Slot view over the encoded bytes must agree with the
		// struct view field for field.
		s := Slot(out)
		if s.Op() != e.Op || s.VMID() != e.VMID || s.FD() != e.FD ||
			s.CID() != e.CID || s.Seq() != e.Seq ||
			s.DataOff() != e.DataOff || s.DataLen() != e.DataLen || s.Arg1() != e.Arg1 {
			t.Fatalf("slot accessors disagree with decoded element %+v", e)
		}
		_ = s.Validate()
	})
}
