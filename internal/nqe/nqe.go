// Package nqe defines the NetKernel Queue Element, the unit of
// communication between GuestLib, CoreEngine, and ServiceLib (§3.2).
//
// An nqe "contains operation ID, VM ID, and fd for the VM, or operation
// ID, NSM ID, and connection ID (cID) for NSM. It also has a data
// descriptor if necessary, which is a pointer to the huge pages for
// data. Each nqe is copied between VM queues and NSM queues by
// CoreEngine. It is small in size and copying incurs negligible
// overhead."
//
// The element is a fixed 64-byte little-endian record — exactly one
// cache line, and exactly one ring slot — so the CoreEngine copy the
// paper measures at ~12 ns is a single-line copy here too.
package nqe

import (
	"encoding/binary"
	"fmt"
)

// Size is the wire size of an element: one cache line.
const Size = 64

// Op identifies what an element asks for (job queues) or reports
// (completion and receive queues).
type Op uint8

// Operations intercepted from the socket API by GuestLib (§4.1 lists
// socket, connect, recv, send, setsockopt, …) plus the events ServiceLib
// pushes back (§3.2: new data, new connections, completions).
const (
	OpInvalid Op = iota

	// Requests, VM → NSM.
	OpSocket     // create a socket; completion carries the fd
	OpBind       // bind to local address in Arg0
	OpListen     // listen with backlog in Arg0
	OpConnect    // connect to remote address in Arg0
	OpAccept     // harvest an accepted connection
	OpSend       // data descriptor points at payload
	OpRecv       // credit: guest is ready for more data
	OpClose      // close the connection
	OpSetSockOpt // option in Arg0, value in Arg1
	OpGetSockOpt // option in Arg0

	// Events, NSM → VM (receive queue).
	OpNewData     // data arrived; descriptor points at payload
	OpNewConn     // a SYN completed on a listener; Arg0 is the peer address
	OpConnClosed  // peer closed or connection reset
	OpSendCredit  // send buffer drained below the low-water mark
	OpEstablished // a pending connect finished (success or Status error)

	// Readiness fast path (DESIGN.md §11). OpPollCtl is a request that
	// registers (Arg0=1) or deregisters (Arg0=0) a socket for coalesced
	// readiness reporting; OpReady is the event that reports many ready
	// sockets in one element. An OpReady with a data descriptor packs
	// Arg0 ReadyEntry records into the chunk (translated id + event
	// mask); the descriptorless fallback form carries a single socket in
	// the id field and its mask in Arg1.
	OpPollCtl
	OpReady
)

var opNames = [...]string{
	OpInvalid: "invalid", OpSocket: "socket", OpBind: "bind", OpListen: "listen",
	OpConnect: "connect", OpAccept: "accept", OpSend: "send", OpRecv: "recv",
	OpClose: "close", OpSetSockOpt: "setsockopt", OpGetSockOpt: "getsockopt",
	OpNewData: "new-data", OpNewConn: "new-conn", OpConnClosed: "conn-closed",
	OpSendCredit: "send-credit", OpEstablished: "established",
	OpPollCtl: "poll-ctl", OpReady: "ready",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether the op is a defined operation.
func (o Op) Valid() bool { return o > OpInvalid && int(o) < len(opNames) }

// IsEvent reports whether the op belongs on a receive queue (NSM→VM
// asynchronous events) rather than a job/completion pair.
func (o Op) IsEvent() bool {
	switch o {
	case OpNewData, OpNewConn, OpConnClosed, OpSendCredit, OpEstablished,
		OpReady:
		return true
	}
	return false
}

// IsConnEvent reports whether the op is a connection-lifecycle event.
// §3.2 suggests implementing the queues "as priority queues to handle
// connection events and data events separately to avoid the head of line
// blocking"; connection events go to the high-priority ring. OpReady is
// deliberately NOT a connection event: it announces data events already
// in the ring and must not overtake them.
func (o Op) IsConnEvent() bool {
	switch o {
	case OpSocket, OpBind, OpListen, OpConnect, OpAccept, OpClose,
		OpNewConn, OpConnClosed, OpEstablished:
		return true
	}
	return false
}

// Source says which component produced the element.
type Source uint8

const (
	FromVM Source = iota + 1
	FromNSM
	FromCore
)

// Flags qualify an element.
type Flags uint8

const (
	// FlagCompletion marks a completion-queue response to a job.
	FlagCompletion Flags = 1 << iota
	// FlagSync marks a job whose caller blocks until the completion
	// arrives (§3.2 synchronous operations).
	FlagSync
	// FlagMoreData marks a send/new-data element that continues in the
	// next element (payload larger than one huge-page chunk).
	FlagMoreData
	// FlagPush asks the stack to push the data immediately (TCP PSH).
	FlagPush
)

// Status is the errno-like result carried by completions and events.
type Status int32

const (
	StatusOK Status = iota
	StatusAgain
	StatusConnRefused
	StatusConnReset
	StatusTimeout
	StatusAddrInUse
	StatusNotConnected
	StatusClosed
	StatusNoBuffers
	StatusInvalid
	StatusUnreachable
	StatusMsgSize
	StatusNotSupported
)

var statusNames = [...]string{
	StatusOK: "ok", StatusAgain: "again", StatusConnRefused: "connection refused",
	StatusConnReset: "connection reset", StatusTimeout: "timeout",
	StatusAddrInUse: "address in use", StatusNotConnected: "not connected",
	StatusClosed: "closed", StatusNoBuffers: "no buffers", StatusInvalid: "invalid",
	StatusUnreachable: "unreachable", StatusMsgSize: "message too long",
	StatusNotSupported: "not supported",
}

func (s Status) String() string {
	if int(s) >= 0 && int(s) < len(statusNames) {
		return statusNames[s]
	}
	return fmt.Sprintf("status(%d)", int32(s))
}

// Err converts a non-OK status to an error (nil for StatusOK).
func (s Status) Err() error {
	if s == StatusOK {
		return nil
	}
	return &StatusError{s}
}

// StatusError wraps a Status as an error.
type StatusError struct{ Status Status }

func (e *StatusError) Error() string { return "nqe: " + e.Status.String() }

// An Element is one decoded nqe.
type Element struct {
	Op     Op
	Flags  Flags
	Source Source
	VMID   uint32 // tenant VM identity
	NSMID  uint32 // network stack module identity
	FD     int32  // guest-visible socket descriptor
	CID    uint32 // NSM-side connection id
	Status Status
	Seq    uint64 // request/response correlation id

	// Data descriptor: a pointer into the shared huge pages (§3.2).
	DataOff uint64
	DataLen uint32

	// Trace is the telemetry span id riding with the element (0 =
	// untraced). Each layer that moves a traced element stamps a hop
	// against this id, so an end-to-end latency breakdown needs no
	// side-band correlation — the id lives in the former pad bytes at
	// offset 44 and costs nothing on the wire.
	Trace uint32

	// Operation-specific arguments (addresses, options, backlogs…).
	Arg0 uint64
	Arg1 uint64
}

// Wire layout, little endian:
//
//	off  0: Op(1) Flags(1) Source(1) pad(1)
//	off  4: VMID(4) NSMID(4) FD(4) CID(4) Status(4)
//	off 24: Seq(8) DataOff(8) DataLen(4) Trace(4)
//	off 48: Arg0(8) Arg1(8)
const (
	offOp      = 0
	offFlags   = 1
	offSource  = 2
	offVMID    = 4
	offNSMID   = 8
	offFD      = 12
	offCID     = 16
	offStatus  = 20
	offSeq     = 24
	offDataOff = 32
	offDataLen = 40
	offTrace   = 44
	offArg0    = 48
	offArg1    = 56
)

// Encode writes the element into dst, which must be at least Size bytes.
func (e *Element) Encode(dst []byte) {
	_ = dst[Size-1] // bounds hint
	dst[offOp] = byte(e.Op)
	dst[offFlags] = byte(e.Flags)
	dst[offSource] = byte(e.Source)
	dst[3] = 0
	binary.LittleEndian.PutUint32(dst[offVMID:], e.VMID)
	binary.LittleEndian.PutUint32(dst[offNSMID:], e.NSMID)
	binary.LittleEndian.PutUint32(dst[offFD:], uint32(e.FD))
	binary.LittleEndian.PutUint32(dst[offCID:], e.CID)
	binary.LittleEndian.PutUint32(dst[offStatus:], uint32(e.Status))
	binary.LittleEndian.PutUint64(dst[offSeq:], e.Seq)
	binary.LittleEndian.PutUint64(dst[offDataOff:], e.DataOff)
	binary.LittleEndian.PutUint32(dst[offDataLen:], e.DataLen)
	binary.LittleEndian.PutUint32(dst[offTrace:], e.Trace)
	binary.LittleEndian.PutUint64(dst[offArg0:], e.Arg0)
	binary.LittleEndian.PutUint64(dst[offArg1:], e.Arg1)
}

// Decode reads the element from src, which must be at least Size bytes.
func (e *Element) Decode(src []byte) {
	_ = src[Size-1]
	e.Op = Op(src[offOp])
	e.Flags = Flags(src[offFlags])
	e.Source = Source(src[offSource])
	e.VMID = binary.LittleEndian.Uint32(src[offVMID:])
	e.NSMID = binary.LittleEndian.Uint32(src[offNSMID:])
	e.FD = int32(binary.LittleEndian.Uint32(src[offFD:]))
	e.CID = binary.LittleEndian.Uint32(src[offCID:])
	e.Status = Status(binary.LittleEndian.Uint32(src[offStatus:]))
	e.Seq = binary.LittleEndian.Uint64(src[offSeq:])
	e.DataOff = binary.LittleEndian.Uint64(src[offDataOff:])
	e.DataLen = binary.LittleEndian.Uint32(src[offDataLen:])
	e.Trace = binary.LittleEndian.Uint32(src[offTrace:])
	e.Arg0 = binary.LittleEndian.Uint64(src[offArg0:])
	e.Arg1 = binary.LittleEndian.Uint64(src[offArg1:])
}

// Validate checks structural invariants a CoreEngine enforces before
// trusting a guest-produced element.
func (e *Element) Validate() error {
	if !e.Op.Valid() {
		return fmt.Errorf("nqe: invalid op %d", uint8(e.Op))
	}
	if e.Source != FromVM && e.Source != FromNSM && e.Source != FromCore {
		return fmt.Errorf("nqe: invalid source %d", uint8(e.Source))
	}
	return nil
}

func (e *Element) String() string {
	return fmt.Sprintf("nqe{%s vm=%d nsm=%d fd=%d cid=%d seq=%d len=%d status=%s}",
		e.Op, e.VMID, e.NSMID, e.FD, e.CID, e.Seq, e.DataLen, e.Status)
}

// Slot is a view over one encoded element sitting in place in a ring
// slot. The CoreEngine's translation step must consult the fd↔cID table
// per element, but it only ever touches a handful of header fields; Slot
// lets it read and patch exactly those fields without the full
// decode/encode round trip of Element, which is what keeps the batched
// queue-to-queue path at a single 64-byte copy per element (§4.2).
type Slot []byte

// Op returns the element's operation.
func (s Slot) Op() Op { return Op(s[offOp]) }

// Flags returns the element's flags.
func (s Slot) Flags() Flags { return Flags(s[offFlags]) }

// Source returns the producing component.
func (s Slot) Source() Source { return Source(s[offSource]) }

// VMID returns the tenant VM identity.
func (s Slot) VMID() uint32 { return binary.LittleEndian.Uint32(s[offVMID:]) }

// SetVMID patches the tenant VM identity in place.
func (s Slot) SetVMID(v uint32) { binary.LittleEndian.PutUint32(s[offVMID:], v) }

// SetNSMID patches the stack-module identity in place.
func (s Slot) SetNSMID(v uint32) { binary.LittleEndian.PutUint32(s[offNSMID:], v) }

// FD returns the guest-visible descriptor.
func (s Slot) FD() int32 { return int32(binary.LittleEndian.Uint32(s[offFD:])) }

// SetFD patches the guest-visible descriptor in place.
func (s Slot) SetFD(v int32) { binary.LittleEndian.PutUint32(s[offFD:], uint32(v)) }

// CID returns the NSM-side connection id.
func (s Slot) CID() uint32 { return binary.LittleEndian.Uint32(s[offCID:]) }

// SetCID patches the NSM-side connection id in place.
func (s Slot) SetCID(v uint32) { binary.LittleEndian.PutUint32(s[offCID:], v) }

// Seq returns the request/response correlation id.
func (s Slot) Seq() uint64 { return binary.LittleEndian.Uint64(s[offSeq:]) }

// DataOff returns the huge-page chunk offset of the slot's data
// descriptor without a full decode.
func (s Slot) DataOff() uint64 { return binary.LittleEndian.Uint64(s[offDataOff:]) }

// DataLen returns the data descriptor's length without a full decode.
func (s Slot) DataLen() uint32 { return binary.LittleEndian.Uint32(s[offDataLen:]) }

// SetDataLen patches the data descriptor's length in place.
func (s Slot) SetDataLen(v uint32) { binary.LittleEndian.PutUint32(s[offDataLen:], v) }

// Trace returns the telemetry span id (0 = untraced).
func (s Slot) Trace() uint32 { return binary.LittleEndian.Uint32(s[offTrace:]) }

// SetTrace patches the telemetry span id in place.
func (s Slot) SetTrace(v uint32) { binary.LittleEndian.PutUint32(s[offTrace:], v) }

// Arg0 returns the first operation argument.
func (s Slot) Arg0() uint64 { return binary.LittleEndian.Uint64(s[offArg0:]) }

// SetArg0 patches the first operation argument in place.
func (s Slot) SetArg0(v uint64) { binary.LittleEndian.PutUint64(s[offArg0:], v) }

// Arg1 returns the second operation argument.
func (s Slot) Arg1() uint64 { return binary.LittleEndian.Uint64(s[offArg1:]) }

// SetArg1 patches the second operation argument in place.
func (s Slot) SetArg1(v uint64) { binary.LittleEndian.PutUint64(s[offArg1:], v) }

// Validate performs the same structural checks as Element.Validate
// without decoding the rest of the record.
func (s Slot) Validate() error {
	if op := s.Op(); !op.Valid() {
		return fmt.Errorf("nqe: invalid op %d", uint8(op))
	}
	if src := s.Source(); src != FromVM && src != FromNSM && src != FromCore {
		return fmt.Errorf("nqe: invalid source %d", uint8(src))
	}
	return nil
}

// Socket options carried in OpSetSockOpt's Arg0 (value in Arg1).
const (
	// SockOptNagle toggles RFC 896 small-segment coalescing.
	SockOptNagle = 1
	// SockOptPriority marks the connection latency-sensitive; the NSM
	// may map it to its high-priority event ring.
	SockOptPriority = 2
)

// Readiness masks carried by OpReady entries (ORed together).
const (
	ReadyReadable   uint32 = 1 << iota // data or EOF available to Recv
	ReadyWritable                      // send capacity returned
	ReadyAcceptable                    // a listener has pending accepts
	ReadyClosed                        // the connection terminated
)

// ReadyEntrySize is the packed size of one OpReady payload entry:
// little-endian id (cID on the NSM side, fd after engine translation)
// followed by the readiness mask.
const ReadyEntrySize = 8

// PutReadyEntry packs one readiness entry into b.
func PutReadyEntry(b []byte, id uint32, mask uint32) {
	binary.LittleEndian.PutUint32(b, id)
	binary.LittleEndian.PutUint32(b[4:], mask)
}

// ReadyEntryAt unpacks the i-th readiness entry of an OpReady payload.
func ReadyEntryAt(b []byte, i int) (id uint32, mask uint32) {
	e := b[i*ReadyEntrySize:]
	return binary.LittleEndian.Uint32(e), binary.LittleEndian.Uint32(e[4:])
}

// SetReadyEntryID patches the i-th entry's id in place (the engine's
// cID→fd translation).
func SetReadyEntryID(b []byte, i int, id uint32) {
	binary.LittleEndian.PutUint32(b[i*ReadyEntrySize:], id)
}

// PackAddr packs an IPv4 address and port into an nqe argument.
func PackAddr(ip [4]byte, port uint16) uint64 {
	return uint64(binary.BigEndian.Uint32(ip[:]))<<16 | uint64(port)
}

// UnpackAddr reverses PackAddr.
func UnpackAddr(v uint64) (ip [4]byte, port uint16) {
	binary.BigEndian.PutUint32(ip[:], uint32(v>>16))
	return ip, uint16(v)
}
