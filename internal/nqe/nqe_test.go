package nqe

import (
	"testing"
	"testing/quick"
)

func sample() Element {
	return Element{
		Op: OpSend, Flags: FlagCompletion | FlagPush, Source: FromVM,
		VMID: 3, NSMID: 9, FD: 42, CID: 1007, Status: StatusAgain,
		Seq: 0xdeadbeefcafe, DataOff: 8192 * 7, DataLen: 1448,
		Arg0: 0x12345678, Arg1: 0x9abcdef0,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := sample()
	var buf [Size]byte
	in.Encode(buf[:])
	var out Element
	out.Decode(buf[:])
	if out != in {
		t.Fatalf("round trip:\n in=%+v\nout=%+v", in, out)
	}
}

// Property: every element round-trips through the wire format.
func TestQuickRoundTrip(t *testing.T) {
	err := quick.Check(func(op, flags, src uint8, vm, nsm, cid uint32, fd int32, status int32, seq, off, a0, a1 uint64, dlen uint32) bool {
		in := Element{
			Op: Op(op), Flags: Flags(flags), Source: Source(src),
			VMID: vm, NSMID: nsm, FD: fd, CID: cid, Status: Status(status),
			Seq: seq, DataOff: off, DataLen: dlen, Arg0: a0, Arg1: a1,
		}
		var buf [Size]byte
		in.Encode(buf[:])
		var out Element
		out.Decode(buf[:])
		return out == in
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestEncodeIsDeterministic(t *testing.T) {
	e := sample()
	var a, b [Size]byte
	// Dirty buffer: encode must overwrite every meaningful byte.
	for i := range b {
		b[i] = 0xff
	}
	e.Encode(a[:])
	e.Encode(b[:])
	if a != b {
		t.Fatal("encoding depends on prior buffer contents")
	}
}

func TestValidate(t *testing.T) {
	e := sample()
	if err := e.Validate(); err != nil {
		t.Fatalf("valid element rejected: %v", err)
	}
	bad := e
	bad.Op = OpInvalid
	if bad.Validate() == nil {
		t.Fatal("invalid op accepted")
	}
	bad = e
	bad.Op = Op(200)
	if bad.Validate() == nil {
		t.Fatal("out-of-range op accepted")
	}
	bad = e
	bad.Source = 0
	if bad.Validate() == nil {
		t.Fatal("invalid source accepted")
	}
}

func TestOpClassification(t *testing.T) {
	if !OpNewConn.IsEvent() || !OpNewData.IsEvent() || !OpEstablished.IsEvent() {
		t.Fatal("receive-queue events misclassified")
	}
	if OpSend.IsEvent() || OpSocket.IsEvent() {
		t.Fatal("jobs classified as events")
	}
	// §3.2: connection events and data events are separated to avoid
	// head-of-line blocking.
	for _, op := range []Op{OpSocket, OpConnect, OpAccept, OpClose, OpNewConn, OpConnClosed, OpEstablished} {
		if !op.IsConnEvent() {
			t.Errorf("%v should be a connection event", op)
		}
	}
	for _, op := range []Op{OpSend, OpRecv, OpNewData, OpSendCredit} {
		if op.IsConnEvent() {
			t.Errorf("%v should be a data event", op)
		}
	}
}

func TestOpStrings(t *testing.T) {
	if OpSend.String() != "send" || OpNewData.String() != "new-data" {
		t.Fatal("op names broken")
	}
	if Op(250).String() != "op(250)" {
		t.Fatal("unknown op String broken")
	}
}

func TestStatusErr(t *testing.T) {
	if StatusOK.Err() != nil {
		t.Fatal("StatusOK should map to nil error")
	}
	err := StatusConnRefused.Err()
	if err == nil || err.Error() != "nqe: connection refused" {
		t.Fatalf("StatusConnRefused.Err() = %v", err)
	}
	var se *StatusError
	if !asStatusError(err, &se) || se.Status != StatusConnRefused {
		t.Fatal("error does not unwrap to StatusError")
	}
}

func asStatusError(err error, target **StatusError) bool {
	se, ok := err.(*StatusError)
	if ok {
		*target = se
	}
	return ok
}

func TestPackAddrRoundTrip(t *testing.T) {
	err := quick.Check(func(a, b, c, d byte, port uint16) bool {
		ip := [4]byte{a, b, c, d}
		gotIP, gotPort := UnpackAddr(PackAddr(ip, port))
		return gotIP == ip && gotPort == port
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSizeIsCacheLine(t *testing.T) {
	if Size != 64 {
		t.Fatalf("nqe size = %d, want one cache line (64)", Size)
	}
}

// Slot accessors must agree exactly with the Encode/Decode wire format,
// both reading and patching in place.
func TestSlotAccessorsMatchCodec(t *testing.T) {
	e := Element{
		Op: OpNewConn, Flags: FlagCompletion | FlagSync, Source: FromNSM,
		VMID: 7, NSMID: 9, FD: -3, CID: 0xdeadbeef, Status: StatusAgain,
		Seq: 1 << 40, DataOff: 4096, DataLen: 1448, Arg0: 42, Arg1: 99,
	}
	buf := make([]byte, Size)
	e.Encode(buf)
	s := Slot(buf)
	if s.Op() != e.Op || s.Flags() != e.Flags || s.Source() != e.Source ||
		s.VMID() != e.VMID || s.FD() != e.FD || s.CID() != e.CID ||
		s.Seq() != e.Seq || s.Arg1() != e.Arg1 {
		t.Fatalf("Slot read mismatch: %v vs %+v", buf, e)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Slot.Validate: %v", err)
	}

	s.SetVMID(100)
	s.SetNSMID(200)
	s.SetFD(-300)
	s.SetCID(400)
	s.SetArg1(500)
	var got Element
	got.Decode(buf)
	want := e
	want.VMID, want.NSMID, want.FD, want.CID, want.Arg1 = 100, 200, -300, 400, 500
	if got != want {
		t.Fatalf("patched decode = %+v, want %+v", got, want)
	}
}

func TestSlotValidateRejects(t *testing.T) {
	buf := make([]byte, Size)
	if Slot(buf).Validate() == nil {
		t.Fatal("zero slot (invalid op) passed validation")
	}
	e := Element{Op: OpSend, Source: FromVM}
	e.Encode(buf)
	buf[2] = 99 // corrupt Source
	if Slot(buf).Validate() == nil {
		t.Fatal("bad source passed validation")
	}
}
