// Package chaostest runs seeded, randomized end-to-end scenarios
// against the full NetKernel pipeline — GuestLib → CoreEngine →
// ServiceLib → stack → fabric — in virtual time, with faults injected
// at every layer: link loss (Bernoulli and bursty Gilbert–Elliott),
// reordering, duplication, bit corruption, link flaps, stalled nqe
// queues, dropped/delayed doorbells, and NSM crash+reboot.
//
// After each run a set of invariants must hold regardless of the fault
// schedule:
//
//   - Byte integrity: every byte an application received is exactly a
//     prefix of what the peer sent (full equality for cleanly closed
//     connections) — TCP over shared memory never reorders, drops, or
//     corrupts data at the socket API.
//   - Terminal states: every connection ends closed or failed; nothing
//     wedges half-open.
//   - No leaks: the event loop drains to empty (no stuck timers), every
//     shared-memory chunk returns to its pool, the engine's fd↔cID
//     table empties, and every stack's connection table empties.
//   - Conservation: per-link frames offered equal transmitted plus the
//     three drop classes; per-switch frames received equal forwarded
//     plus flooded plus dropped.
//
// Every run is deterministic: the same seed produces the identical
// event trace and identical final statistics, so any failure is
// reproducible from the one-line seed in the test log (-chaos.seed=N).
package chaostest

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"
	"testing"
	"time"

	"netkernel/internal/guestlib"
	"netkernel/internal/hypervisor"
	"netkernel/internal/netsim"
	"netkernel/internal/nkqueue"
	"netkernel/internal/proto/ipv4"
	"netkernel/internal/sim"
	"netkernel/internal/stack"
	"netkernel/internal/vswitch"
)

// Profile is one chaos scenario: a fault environment plus a workload.
type Profile struct {
	Name string
	// Link shapes both directions of the inter-host path, including
	// netsim-level faults (loss, GE bursts, reorder, duplication,
	// corruption).
	Link netsim.LinkConfig
	// Flaps schedules link outages: each entry downs both directions
	// at At (measured from workload start) for Outage.
	Flaps []Flap

	// QueueStallProb fails nqe-queue pushes with this probability
	// (fault-injected "queue stall": the push behaves as if the ring
	// were full).
	QueueStallProb float64
	// DoorbellDropProb swallows doorbell wakeups (level-triggered: the
	// pending count survives, so a later ring re-fires).
	DoorbellDropProb float64
	// DoorbellDelayMax defers doorbell wakeups by a random
	// 0..DoorbellDelayMax.
	DoorbellDelayMax time.Duration
	// CrashAt reboots the server-side NSM at these times (from
	// workload start).
	CrashAt []time.Duration
	// Migrations schedules live migrations of the server-side NSM
	// (times from workload start): each point boots a fresh module and
	// cuts every tenant over mid-transfer, connections intact. Points
	// fire against whatever module serves the VM at that moment, so
	// chained migrations follow the previous successor.
	Migrations []MigrationPoint

	// Conns is how many client connections the workload opens.
	Conns int
	// MaxBody bounds the per-connection payload (1..MaxBody bytes).
	MaxBody int
	// Spacing staggers connection starts.
	Spacing time.Duration
	// Watchdog force-closes a connection that has not reached a
	// terminal state this long after it started, so a lost FIN or a
	// silently dead peer cannot leave it half-open forever.
	Watchdog time.Duration
	// Run is the main-phase virtual duration; Quiesce is the drain
	// phase after the workload shuts down. Quiesce must exceed the
	// longest timer horizon (TCP retransmission give-up).
	Run, Quiesce time.Duration

	// TCP/host knobs (zero = harness defaults, tuned for a LAN RTT).
	MinRTO time.Duration
	MSL    time.Duration

	// TraceSampleEvery arms per-nqe span tracing on both hosts (every
	// Nth operation; 0 runs untraced). Tracing uses the sim clock and
	// counter-based sampling, so traced runs stay deterministic.
	TraceSampleEvery int

	// Shards is the channel/stack shard count both hosts run with (the
	// journal version's multi-queue NSM). 0 uses the harness default of
	// 2 so every scenario exercises the sharded datapath; -1 pins the
	// conference paper's legacy single-queue channel.
	Shards int
}

// Flap is one scheduled link outage.
type Flap struct {
	At     time.Duration
	Outage time.Duration
}

// MigrationPoint is one scheduled live migration of the server NSM.
type MigrationPoint struct {
	At time.Duration
	// CC is the successor's congestion control: "" keeps the donor's (a
	// pure build swap), anything else hot-swaps every live flow.
	CC string
	// FailAfter > 0 injects a restore fault once that many connections
	// have revived on the successor, forcing the abort path: the
	// migration falls back to crash-reboot semantics for the donor.
	FailAfter int
}

// ConnReport is the post-run record of one workload connection.
type ConnReport struct {
	ID          int
	Established bool
	EstErr      error
	Closed      bool
	CloseErr    error
	SentBytes   int    // accepted by the socket API
	EchoedBytes int    // received back
	PayloadLen  int    // intended transfer size
	Integrity   string // non-empty when the echo diverged from the payload
}

// Result is everything a run produces, for invariant checking and
// determinism comparison.
type Result struct {
	Seed  uint64
	Trace []string
	Conns []ConnReport

	L12, L21   netsim.LinkStats
	Sw1, Sw2   vswitch.Stats
	Eng1, Eng2 hypervisor.EngineStats
	Pending    int
	Restarts   int

	// Migrated and MigAborted count the server module's completed and
	// aborted live migrations; MigConns and MigStall accumulate what the
	// completed cutovers moved and stalled. ServerStats is the final
	// serving stack's counters — after a migration, the successor's —
	// so the determinism contract covers post-handoff protocol behavior
	// (seq spaces, retransmits, CC evolution) byte for byte.
	Migrated    int
	MigAborted  int
	MigConns    int
	MigStall    time.Duration
	ServerStats stack.Stats

	// Spans holds both hosts' completed pipeline spans, formatted with
	// their hop names and virtual-time offsets (empty unless the
	// profile set TraceSampleEvery). Formatted strings make the
	// determinism comparison byte-exact.
	Spans []string
}

const (
	chaosPort = 7777
	headerLen = 8 // conn id (4B) + body length (4B)
)

var (
	clientIP = ipv4.Addr{10, 0, 1, 1}
	serverIP = ipv4.Addr{10, 0, 2, 1}
)

type harness struct {
	prof Profile
	seed uint64

	loop     *sim.Loop
	h1, h2   *hypervisor.Host
	l12, l21 *netsim.Link
	client   *hypervisor.VM
	server   *hypervisor.VM

	frng *sim.RNG // fault draws (queue stalls, doorbells)
	wrng *sim.RNG // workload shape (payload sizes and content)

	trace    []string
	conns    []*cconn
	recvBuf  []byte
	shutdown bool
	lfd      int32

	// Live-migration bookkeeping: donors holds every module the server
	// VM migrated away from (their registry scopes and dead stacks must
	// stay consistent), migrated/migAborted count outcomes.
	donors     []*hypervisor.NSM
	migrated   int
	migAborted int
	migConns   int
	migStall   time.Duration

	// namesBoot is each host's full registry name set right after VM
	// creation; untraced scenarios re-check it after quiesce so NSM
	// restarts provably neither leak nor duplicate metric names.
	namesBoot map[string][]string
}

type cconn struct {
	id      int
	fd      int32
	payload []byte // header + body
	sent    int
	echoed  []byte

	established bool
	estErr      error
	closed      bool
	closeErr    error
	watchdog    sim.Timer
}

// srvConn tracks one accepted connection on the server.
type srvConn struct {
	fd      int32
	rcvd    int    // inbound byte count
	need    int    // total expected (header + body); -1 until parsed
	hdr     []byte // first bytes, until the header parses
	echo    []byte // bytes received but not yet echoed back
	closing bool
}

func (h *harness) tracef(format string, args ...interface{}) {
	h.trace = append(h.trace, fmt.Sprintf("%12d %s", int64(h.loop.Now()), fmt.Sprintf(format, args...)))
}

func newHarness(seed uint64, prof Profile) *harness {
	if prof.MinRTO == 0 {
		prof.MinRTO = 20 * time.Millisecond
	}
	if prof.MSL == 0 {
		prof.MSL = 50 * time.Millisecond
	}
	return &harness{
		prof:    prof,
		seed:    seed,
		loop:    sim.NewLoop(),
		frng:    sim.NewRNG(seed ^ 0x9e3779b97f4a7c15),
		wrng:    sim.NewRNG(seed ^ 0xbf58476d1ce4e5b9),
		recvBuf: make([]byte, 64<<10),
	}
}

// Run executes one seeded chaos scenario and returns its Result. It
// does not assert; Check applies the invariants.
func Run(seed uint64, prof Profile) *Result {
	return newHarness(seed, prof).run()
}

func (h *harness) run() *Result {
	prof := h.prof
	shards := prof.Shards
	if shards == 0 {
		shards = 2
	}
	if shards < 0 {
		shards = 0
	}
	mk := func(name string, id uint8) *hypervisor.Host {
		return hypervisor.NewHost(hypervisor.HostConfig{
			Name: name, Clock: h.loop, RNG: sim.NewRNG(h.seed + uint64(id)),
			HostID: id, Cores: 8, Shards: shards,
			MinRTO: prof.MinRTO, MSL: prof.MSL,
			// Queue stalls can swallow the push whose completion would
			// have been the next wakeup; the recovery timer guarantees
			// faults delay work instead of wedging it.
			StallRecovery:    10 * time.Microsecond,
			TraceSampleEvery: prof.TraceSampleEvery,
		})
	}
	h.h1 = mk("chaos1", 1)
	h.h2 = mk("chaos2", 2)
	linkRNG := sim.NewRNG(h.seed)
	h.l12, h.l21 = netsim.Duplex(h.loop, linkRNG, prof.Link, h.h1.NIC, h.h2.NIC)
	h.h1.NIC.AttachWire(h.l12)
	h.h2.NIC.AttachWire(h.l21)

	spec := hypervisor.NSMSpec{Form: hypervisor.FormModule, CC: "cubic"}
	var err error
	h.client, err = h.h1.CreateVM(hypervisor.VMConfig{Name: "cli", IP: clientIP, Mode: hypervisor.ModeNetKernel, NSM: spec})
	if err != nil {
		panic(err)
	}
	h.server, err = h.h2.CreateVM(hypervisor.VMConfig{Name: "srv", IP: serverIP, Mode: hypervisor.ModeNetKernel, NSM: spec})
	if err != nil {
		panic(err)
	}
	h.wireChannelFaults()
	h.namesBoot = map[string][]string{
		"h1": h.h1.Metrics.Names(),
		"h2": h.h2.Metrics.Names(),
	}
	h.loop.RunFor(50 * time.Millisecond) // NSM boot

	h.startServer()
	for i := 0; i < prof.Conns; i++ {
		i := i
		h.loop.AfterFunc(time.Duration(i)*prof.Spacing, func() { h.startConn(i) })
	}
	for _, f := range prof.Flaps {
		h.l12.ScheduleFlap(f.At, f.Outage)
		h.l21.ScheduleFlap(f.At, f.Outage)
	}
	for _, at := range prof.CrashAt {
		at := at
		h.loop.AfterFunc(at, func() {
			h.tracef("chaos: crash server NSM")
			h.h2.RestartNSM(h.server.NSM)
		})
	}
	for _, mp := range prof.Migrations {
		mp := mp
		h.loop.AfterFunc(mp.At, func() { h.migrateServer(mp) })
	}

	h.loop.RunFor(prof.Run)
	h.shutdown = true
	h.closeStragglers()
	h.loop.RunFor(prof.Quiesce)

	res := &Result{
		Seed:  h.seed,
		Trace: h.trace,
		L12:   h.l12.Stats(), L21: h.l21.Stats(),
		Sw1: h.h1.Switch.Stats(), Sw2: h.h2.Switch.Stats(),
		Eng1: h.h1.Engine.Stats(), Eng2: h.h2.Engine.Stats(),
		Pending:  h.loop.Pending(),
		Restarts: h.server.NSM.Restarts,

		Migrated: h.migrated, MigAborted: h.migAborted,
		MigConns: h.migConns, MigStall: h.migStall,
		ServerStats: h.server.NSM.Stack.Stats(),
	}
	for _, host := range []*hypervisor.Host{h.h1, h.h2} {
		for _, sp := range host.Tracer.Completed() {
			res.Spans = append(res.Spans, host.Name()+" "+sp.Format())
		}
	}
	for _, c := range h.conns {
		r := ConnReport{
			ID: c.id, Established: c.established, EstErr: c.estErr,
			Closed: c.closed, CloseErr: c.closeErr,
			SentBytes: c.sent, EchoedBytes: len(c.echoed), PayloadLen: len(c.payload),
		}
		if !bytes.HasPrefix(c.payload, c.echoed) {
			r.Integrity = fmt.Sprintf("echo of %d bytes is not a prefix of the %d-byte payload",
				len(c.echoed), len(c.payload))
		}
		res.Conns = append(res.Conns, r)
	}
	return res
}

// wireChannelFaults installs queue-stall and doorbell faults on every
// ring of both VM↔NSM channels, drawing from the fault RNG.
func (h *harness) wireChannelFaults() {
	p := h.prof
	for _, vm := range []*hypervisor.VM{h.client, h.server} {
		for _, pair := range vm.Guest.Pairs() {
			pair.EnsureShards()
			var queues []nkqueue.Q
			for si := range pair.Shards {
				r := &pair.Shards[si]
				queues = append(queues,
					r.VMJob, r.VMCompletion, r.VMReceive,
					r.NSMJob, r.NSMCompletion, r.NSMReceive)
			}
			for _, q := range queues {
				if p.QueueStallProb > 0 {
					prob := p.QueueStallProb
					q.SetPushStall(func() bool { return h.frng.Bernoulli(prob) })
				}
				if p.DoorbellDropProb > 0 || p.DoorbellDelayMax > 0 {
					var drop func() bool
					if p.DoorbellDropProb > 0 {
						prob := p.DoorbellDropProb
						drop = func() bool { return h.frng.Bernoulli(prob) }
					}
					var delay func() time.Duration
					if p.DoorbellDelayMax > 0 {
						max := int(p.DoorbellDelayMax)
						delay = func() time.Duration { return time.Duration(h.frng.Intn(max)) }
					}
					q.Doorbell().SetWakeupFaults(drop, delay, h.loop)
				}
			}
		}
	}
}

// startServer installs a listener that echoes every connection's bytes
// back and re-listens after an NSM crash kills it.
func (h *harness) startServer() {
	g := h.server.Guest
	var lfd int32
	lfd = g.Socket(guestlib.Callbacks{
		OnAcceptable: func() {
			for {
				fd, ok := g.Accept(lfd)
				if !ok {
					return
				}
				h.serveConn(fd)
			}
		},
		OnClose: func(err error) {
			h.tracef("server: listener closed (%v)", err)
			if !h.shutdown {
				h.startServer() // the module rebooted: open shop again
			}
		},
	})
	if err := g.Listen(lfd, chaosPort, 64); err != nil {
		panic(err)
	}
	h.lfd = lfd
	h.tracef("server: listening fd=%d", lfd)
}

func (h *harness) serveConn(fd int32) {
	g := h.server.Guest
	sc := &srvConn{fd: fd, need: -1}
	h.tracef("server: accepted fd=%d", fd)

	pushEcho := func() {
		for len(sc.echo) > 0 {
			n := g.Send(sc.fd, sc.echo)
			if n == 0 {
				return
			}
			sc.echo = sc.echo[n:]
		}
		if sc.need >= 0 && sc.rcvd == sc.need && !sc.closing {
			sc.closing = true
			h.tracef("server: fd=%d echoed %d bytes, closing", sc.fd, sc.need)
			g.Close(sc.fd)
		}
	}
	read := func() {
		for {
			n, eof := g.Recv(sc.fd, h.recvBuf)
			if n > 0 {
				sc.rcvd += n
				sc.echo = append(sc.echo, h.recvBuf[:n]...)
				if sc.need < 0 {
					sc.hdr = append(sc.hdr, h.recvBuf[:n]...)
					if len(sc.hdr) >= headerLen {
						sc.need = headerLen + int(binary.BigEndian.Uint32(sc.hdr[4:8]))
						sc.hdr = nil
					}
				}
			}
			if n == 0 {
				if eof && !sc.closing {
					// The client quit early (watchdog, reset): release
					// our side too.
					sc.closing = true
					g.Close(sc.fd)
				}
				return
			}
		}
	}
	g.SetCallbacks(fd, guestlib.Callbacks{
		// Echo after every drain: OnWritable alone only fires on a
		// stalled→writable transition, which never happens if the
		// first Send is never attempted.
		OnReadable: func() { read(); pushEcho() },
		OnWritable: pushEcho,
		OnClose: func(err error) {
			h.tracef("server: fd=%d closed (%v) after %d bytes", sc.fd, err, sc.rcvd)
		},
	})
	read()
	pushEcho()
}

// migrateServer live-migrates the module currently serving the server
// VM onto a fresh one, tracing the outcome. The guest-side workload is
// untouched: its descriptors, callbacks, and in-flight transfers ride
// the cutover.
func (h *harness) migrateServer(mp MigrationPoint) {
	nsm := h.server.NSM // the module at fire time: chained points follow successors
	h.tracef("chaos: migrate server NSM cc=%q failAfter=%d", mp.CC, mp.FailAfter)
	_, err := h.h2.MigrateNSM(nsm,
		hypervisor.NSMSpec{Form: hypervisor.FormModule, CC: mp.CC},
		hypervisor.MigrateOptions{FailRestoreAfter: mp.FailAfter},
		func(m *hypervisor.Migration) {
			if m.Aborted {
				h.migAborted++
				h.tracef("chaos: migration aborted after %d conns (%v)", m.Conns, m.Err)
				return
			}
			h.migrated++
			h.migConns += m.Conns
			h.migStall += m.Stall
			h.donors = append(h.donors, m.From)
			h.tracef("chaos: migration complete vms=%d conns=%d stall=%v", m.VMs, m.Conns, m.Stall)
		})
	if err != nil {
		// The module was mid-boot after a crash, or already migrating:
		// the scenario keeps running, the point just records as refused.
		h.tracef("chaos: migration refused (%v)", err)
	}
}

// startConn opens workload connection i: send a framed payload, expect
// it echoed verbatim, close cleanly.
func (h *harness) startConn(i int) {
	g := h.client.Guest
	body := make([]byte, 1+h.wrng.Intn(h.prof.MaxBody))
	for j := 0; j+8 <= len(body); j += 8 {
		binary.BigEndian.PutUint64(body[j:], h.wrng.Uint64())
	}
	c := &cconn{id: i, payload: make([]byte, headerLen+len(body))}
	binary.BigEndian.PutUint32(c.payload[0:], uint32(i))
	binary.BigEndian.PutUint32(c.payload[4:], uint32(len(body)))
	copy(c.payload[headerLen:], body)
	h.conns = append(h.conns, c)

	pushMore := func() {
		if c.closed || !c.established {
			return
		}
		for c.sent < len(c.payload) {
			n := g.Send(c.fd, c.payload[c.sent:])
			if n == 0 {
				return
			}
			c.sent += n
		}
	}
	c.fd = g.Socket(guestlib.Callbacks{
		OnEstablished: func(err error) {
			if err != nil {
				c.estErr = err
				h.tracef("conn %d: establish failed (%v)", c.id, err)
				return
			}
			c.established = true
			h.tracef("conn %d: established, sending %d bytes", c.id, len(c.payload))
			pushMore()
		},
		OnWritable: pushMore,
		OnReadable: func() {
			for {
				n, eof := g.Recv(c.fd, h.recvBuf)
				if n > 0 {
					c.echoed = append(c.echoed, h.recvBuf[:n]...)
				}
				if n == 0 {
					if eof && !c.closed {
						h.tracef("conn %d: echo complete (%d bytes), closing", c.id, len(c.echoed))
						g.Close(c.fd)
					}
					return
				}
			}
		},
		OnClose: func(err error) {
			c.closed = true
			c.closeErr = err
			if c.watchdog != nil {
				c.watchdog.Stop()
			}
			h.tracef("conn %d: closed (%v) sent=%d echoed=%d", c.id, err, c.sent, len(c.echoed))
		},
	})
	h.tracef("conn %d: connect fd=%d", c.id, c.fd)
	if err := g.Connect(c.fd, serverIP, chaosPort); err != nil {
		c.estErr = err
		return
	}
	c.watchdog = h.loop.AfterFunc(h.prof.Watchdog, func() {
		if !c.closed {
			h.tracef("conn %d: watchdog close", c.id)
			g.Close(c.fd)
		}
	})
}

// closeStragglers force-closes anything the workload left open so the
// quiesce phase can drain to zero.
func (h *harness) closeStragglers() {
	for _, c := range h.conns {
		if !c.closed {
			h.client.Guest.Close(c.fd)
		}
	}
	h.server.Guest.Close(h.lfd)
}

// Check applies the post-run invariants that live in the Result.
func Check(t *testing.T, h *Result) {
	t.Helper()
	fail := func(format string, args ...interface{}) {
		t.Helper()
		t.Errorf("[seed %d] "+format, append([]interface{}{h.Seed}, args...)...)
	}

	established := 0
	for _, c := range h.Conns {
		terminal := c.Closed || (!c.Established && c.EstErr != nil)
		if !terminal {
			fail("conn %d not terminal: established=%v closed=%v", c.ID, c.Established, c.Closed)
		}
		if c.Established {
			established++
		}
		if c.Integrity != "" {
			fail("conn %d integrity: %s", c.ID, c.Integrity)
		}
		if c.Closed && c.CloseErr == nil && c.EstErr == nil {
			if c.EchoedBytes != c.PayloadLen || c.SentBytes != c.PayloadLen {
				fail("conn %d closed clean but sent %d, echoed %d of %d bytes",
					c.ID, c.SentBytes, c.EchoedBytes, c.PayloadLen)
			}
		}
	}
	if established == 0 {
		fail("no connection ever established — the scenario exercised nothing")
	}

	if h.Pending != 0 {
		fail("event loop still holds %d timers after quiesce", h.Pending)
	}

	for dir, ls := range map[string]netsim.LinkStats{"h1→h2": h.L12, "h2→h1": h.L21} {
		if ls.Offered != ls.TxFrames+ls.LossDrops+ls.QueueDrops+ls.DownDrops {
			fail("link %s: offered %d != tx %d + loss %d + queue %d + down %d",
				dir, ls.Offered, ls.TxFrames, ls.LossDrops, ls.QueueDrops, ls.DownDrops)
		}
	}
	for name, sw := range map[string]vswitch.Stats{"h1": h.Sw1, "h2": h.Sw2} {
		if sw.RxFrames != sw.Forwarded+sw.Flooded+sw.Dropped {
			fail("switch %s: rx %d != fwd %d + flood %d + drop %d",
				name, sw.RxFrames, sw.Forwarded, sw.Flooded, sw.Dropped)
		}
	}
}

// checkPools verifies the leak invariants that need live objects (the
// Result only carries value snapshots): huge-page chunks, engine
// mappings, and stack connection tables.
func (h *harness) checkPools(t *testing.T) {
	t.Helper()
	for _, vm := range []*hypervisor.VM{h.client, h.server} {
		for i, pair := range vm.Guest.Pairs() {
			if pair.Pages.FreeCount() != pair.Pages.Chunks() {
				t.Errorf("[seed %d] %s pair %d leaked chunks: %d free of %d",
					h.seed, vm.Name, i, pair.Pages.FreeCount(), pair.Pages.Chunks())
			}
			// With the refcounted span datapath a chunk can leak by
			// reference too: every Retain must be matched even when the
			// final Free happens on conn teardown or NSM crash.
			if n := pair.Pages.LiveRefs(); n != 0 {
				t.Errorf("[seed %d] %s pair %d has %d live chunk refs after quiesce",
					h.seed, vm.Name, i, n)
			}
		}
	}
	for name, host := range map[string]*hypervisor.Host{"h1": h.h1, "h2": h.h2} {
		if n := host.Engine.Mappings(); n != 0 {
			t.Errorf("[seed %d] engine %s holds %d fd↔cID mappings after quiesce", h.seed, name, n)
		}
		// Flow affinity: no fd or connection ID may ever have appeared
		// on two shards of the same channel — once a flow is steered,
		// every nqe it produces rides the same ring set for life.
		if err := host.Engine.CheckFlowAffinity(); err != nil {
			t.Errorf("[seed %d] engine %s: %v", h.seed, name, err)
		}
	}
	for _, nsm := range []*hypervisor.NSM{h.client.NSM, h.server.NSM} {
		if n := nsm.Stack.ConnCount(); n != 0 {
			t.Errorf("[seed %d] stack %s holds %d connections after quiesce", h.seed, nsm.Stack.Name(), n)
		}
	}
	// Migration donors: every connection either moved to the successor
	// or was dropped at cutover — a donor stack retaining state after
	// the handoff would be a leak no tenant can ever reach.
	for _, donor := range h.donors {
		if !donor.Stack.Dead() {
			t.Errorf("[seed %d] donor stack %s still alive after migration", h.seed, donor.Stack.Name())
		}
		if n := donor.Stack.ConnCount(); n != 0 {
			t.Errorf("[seed %d] donor stack %s holds %d connections after handoff", h.seed, donor.Stack.Name(), n)
		}
	}
}

// checkTelemetry verifies the unified registry against ground truth
// after a run. Three families of invariant:
//
//   - Queue conservation: per ring, everything pushed was popped or is
//     still occupying the ring (the API-level counters are maintained
//     independently of the ring cursors, so drift catches accounting
//     bugs rather than restating them).
//   - Registry/ledger agreement: snapshot values must equal the ad-hoc
//     stats structs they mirror — switch and engine gauges, and each
//     stack's drop/retransmit counters (which also proves last-wins
//     re-registration survived any NSM restart).
//   - Snapshot-internal conservation: the per-queue pushed/popped/depth
//     gauges inside one snapshot must balance.
func (h *harness) checkTelemetry(t *testing.T) {
	t.Helper()
	for _, vm := range []*hypervisor.VM{h.client, h.server} {
		for i, pair := range vm.Guest.Pairs() {
			pair.EnsureShards()
			for si := range pair.Shards {
				r := &pair.Shards[si]
				queues := map[string]nkqueue.Q{
					"vm_job": r.VMJob, "vm_completion": r.VMCompletion, "vm_receive": r.VMReceive,
					"nsm_job": r.NSMJob, "nsm_completion": r.NSMCompletion, "nsm_receive": r.NSMReceive,
				}
				for name, q := range queues {
					if q.Pushed() != q.Popped()+uint64(q.Len()) {
						t.Errorf("[seed %d] %s pair %d shard %d queue %s: pushed %d != popped %d + len %d",
							h.seed, vm.Name, i, si, name, q.Pushed(), q.Popped(), q.Len())
					}
				}
			}
		}
	}
	for name, host := range map[string]*hypervisor.Host{"h1": h.h1, "h2": h.h2} {
		snap := host.Snapshot()
		sw := host.Switch.Stats()
		eng := host.Engine.Stats()
		gauges := map[string]uint64{
			"switch.rx_frames":          sw.RxFrames,
			"switch.forwarded":          sw.Forwarded,
			"switch.flooded":            sw.Flooded,
			"switch.dropped":            sw.Dropped,
			"engine.nqes_vm_to_nsm":     eng.NqesVMToNSM,
			"engine.nqes_nsm_to_vm":     eng.NqesNSMToVM,
			"engine.translated":         eng.Translated,
			"engine.bad_elements":       eng.BadElements,
			"engine.discarded_elements": eng.DiscardedElements,
		}
		for metric, want := range gauges {
			if got := snap.Gauge(metric); got != int64(want) {
				t.Errorf("[seed %d] host %s: registry %s = %d, ground truth %d",
					h.seed, name, metric, got, want)
			}
		}
		for gname, v := range snap.Gauges {
			if !strings.HasSuffix(gname, ".pushed") {
				continue
			}
			base := strings.TrimSuffix(gname, ".pushed")
			if v != snap.Gauges[base+".popped"]+snap.Gauges[base+".depth"] {
				t.Errorf("[seed %d] host %s: snapshot %s: pushed %d != popped %d + depth %d",
					h.seed, name, base, v, snap.Gauges[base+".popped"], snap.Gauges[base+".depth"])
			}
		}
	}
	for _, nsm := range []*hypervisor.NSM{h.client.NSM, h.server.NSM} {
		st := nsm.Stack.Stats()
		snap := h.h1.Snapshot()
		if nsm == h.server.NSM {
			snap = h.h2.Snapshot()
		}
		prefix := fmt.Sprintf("nsm%d.stack.", nsm.ID)
		counters := map[string]uint64{
			prefix + "dropped_no_route":   st.DroppedNoRoute,
			prefix + "dropped_bad_packet": st.DroppedBadPacket,
			prefix + "dropped_no_socket":  st.DroppedNoSocket,
			prefix + "dropped_dead":       st.DroppedDead,
			prefix + "tcp_retransmits":    st.TCPRetransmits,
			prefix + "frames_in":          st.FramesIn,
			prefix + "frames_out":         st.FramesOut,
		}
		for metric, want := range counters {
			if got := snap.Counter(metric); got != want {
				t.Errorf("[seed %d] registry %s = %d, stack ledger %d", h.seed, metric, got, want)
			}
		}

		// Per-shard connection gauges: the registry must hold exactly
		// one "s<i>.conns" per configured shard — no stale shard names
		// surviving an NSM restart — and each must equal the live
		// stack's own shard count.
		host := h.h1
		if nsm == h.server.NSM {
			host = h.h2
		}
		want := map[string]int64{}
		for i := 0; i < nsm.Stack.RxShards(); i++ {
			want[fmt.Sprintf("%ss%d.conns", prefix, i)] = int64(nsm.Stack.ShardConnCount(i))
		}
		got := map[string]bool{}
		for _, n := range host.Metrics.Names() {
			if strings.HasPrefix(n, prefix+"s") && strings.HasSuffix(n, ".conns") {
				got[n] = true
			}
		}
		for n, v := range want {
			if !got[n] {
				t.Errorf("[seed %d] registry missing per-shard gauge %s", h.seed, n)
			} else if g := snap.Gauge(n); g != v {
				t.Errorf("[seed %d] registry %s = %d, stack ledger %d", h.seed, n, g, v)
			}
		}
		for n := range got {
			if _, ok := want[n]; !ok {
				t.Errorf("[seed %d] registry holds stale per-shard gauge %s (stack has %d shards)",
					h.seed, n, nsm.Stack.RxShards())
			}
		}
	}

	// Telemetry conservation across the old and new registry scopes:
	// the donor's scope survives a migration (operators can still read
	// the decommissioned module's final counters), but its live gauges
	// must sample the dead stack as empty — a nonzero donor conn gauge
	// after handoff means a connection escaped the cutover.
	for _, donor := range h.donors {
		snap := h.h2.Snapshot()
		prefix := fmt.Sprintf("nsm%d.stack.", donor.ID)
		for i := 0; i < donor.Stack.RxShards(); i++ {
			name := fmt.Sprintf("%ss%d.conns", prefix, i)
			if g := snap.Gauge(name); g != 0 {
				t.Errorf("[seed %d] donor gauge %s = %d after handoff, want 0", h.seed, name, g)
			}
		}
		st := donor.Stack.Stats()
		for metric, want := range map[string]uint64{
			prefix + "frames_in":  st.FramesIn,
			prefix + "frames_out": st.FramesOut,
		} {
			if got := snap.Counter(metric); got != want {
				t.Errorf("[seed %d] donor registry %s = %d, frozen ledger %d", h.seed, metric, got, want)
			}
		}
	}

	// Name-set stability: everything registers at boot, and restarts
	// re-register last-wins under identical names, so the registry's
	// name set after quiesce must equal the boot capture. (Traced runs
	// create span histograms lazily mid-run, so only untraced profiles
	// pin the full set.) A migration legitimately adds the successor
	// module's scope, so those profiles check containment instead: every
	// boot name must survive, with growth only from the new scopes.
	if h.prof.TraceSampleEvery == 0 {
		for name, host := range map[string]*hypervisor.Host{"h1": h.h1, "h2": h.h2} {
			now := host.Metrics.Names()
			boot := h.namesBoot[name]
			if len(h.prof.Migrations) > 0 {
				set := make(map[string]bool, len(now))
				for _, n := range now {
					set[n] = true
				}
				for _, n := range boot {
					if !set[n] {
						t.Errorf("[seed %d] host %s registry lost boot name %q across migration", h.seed, name, n)
					}
				}
				continue
			}
			if len(now) != len(boot) {
				t.Errorf("[seed %d] host %s registry grew from %d to %d names across the run (restart leak?)",
					h.seed, name, len(boot), len(now))
				continue
			}
			for i := range now {
				if now[i] != boot[i] {
					t.Errorf("[seed %d] host %s registry name drift: %q vs boot %q", h.seed, name, now[i], boot[i])
					break
				}
			}
		}
	}
}

// RunAndCheck executes the scenario and applies every invariant,
// logging the trace on failure.
func RunAndCheck(t *testing.T, seed uint64, prof Profile) *Result {
	t.Helper()
	h := newHarness(seed, prof)
	res := h.run()
	Check(t, res)
	h.checkPools(t)
	h.checkTelemetry(t)
	if t.Failed() {
		for _, line := range res.Trace {
			t.Log(line)
		}
		t.Logf("reproduce with: go test ./internal/chaostest/ -run %s -chaos.seed=%d", t.Name(), seed)
	}
	return res
}

// Equal reports whether two results are identical — the determinism
// contract: same seed, same trace, same stats.
func Equal(a, b *Result) (string, bool) {
	if len(a.Trace) != len(b.Trace) {
		return fmt.Sprintf("trace length %d vs %d", len(a.Trace), len(b.Trace)), false
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			return fmt.Sprintf("trace[%d]: %q vs %q", i, a.Trace[i], b.Trace[i]), false
		}
	}
	if a.L12 != b.L12 || a.L21 != b.L21 {
		return "link stats differ", false
	}
	if a.Sw1 != b.Sw1 || a.Sw2 != b.Sw2 {
		return "switch stats differ", false
	}
	if a.Eng1 != b.Eng1 || a.Eng2 != b.Eng2 {
		return "engine stats differ", false
	}
	if a.Migrated != b.Migrated || a.MigAborted != b.MigAborted ||
		a.MigConns != b.MigConns || a.MigStall != b.MigStall {
		return fmt.Sprintf("migration schedule diverged: %d/%d conns=%d stall=%v vs %d/%d conns=%d stall=%v",
			a.Migrated, a.MigAborted, a.MigConns, a.MigStall,
			b.Migrated, b.MigAborted, b.MigConns, b.MigStall), false
	}
	if a.ServerStats != b.ServerStats {
		return fmt.Sprintf("post-migration server stack stats differ:\n  %+v\n  %+v", a.ServerStats, b.ServerStats), false
	}
	if len(a.Spans) != len(b.Spans) {
		return fmt.Sprintf("span count %d vs %d", len(a.Spans), len(b.Spans)), false
	}
	for i := range a.Spans {
		if a.Spans[i] != b.Spans[i] {
			return fmt.Sprintf("span[%d]: %q vs %q", i, a.Spans[i], b.Spans[i]), false
		}
	}
	if len(a.Conns) != len(b.Conns) {
		return "conn counts differ", false
	}
	for i := range a.Conns {
		ca, cb := a.Conns[i], b.Conns[i]
		if ca.SentBytes != cb.SentBytes || ca.EchoedBytes != cb.EchoedBytes ||
			ca.Established != cb.Established || ca.Closed != cb.Closed {
			return fmt.Sprintf("conn %d outcomes differ", i), false
		}
	}
	return "", true
}
