package chaostest

import (
	"strings"
	"testing"
)

// TestTraceDeterminism is the tracing counterpart of
// TestChaosDeterminism: with sampling armed, two runs of the same seed
// must produce byte-identical span sequences — same operations sampled,
// same hops in the same order, and the exact same virtual-time hop
// offsets and span durations (Span.Format embeds both, so string
// equality is the strongest check). Anything nondeterministic in the
// tracer — RNG-based sampling, map iteration, wall-clock stamps —
// breaks this immediately.
func TestTraceDeterminism(t *testing.T) {
	prof := lossyReorderLAN()
	prof.TraceSampleEvery = 8
	const seed = 1234
	a := Run(seed, prof)
	b := Run(seed, prof)
	if diff, ok := Equal(a, b); !ok {
		t.Fatalf("two traced runs with seed %d diverged: %s", seed, diff)
	}
	if len(a.Spans) == 0 {
		t.Fatal("no completed spans: tracing sampled nothing")
	}

	// The spans must actually describe the pipeline: a send-path span
	// walks GuestLib → engine → ServiceLib → stack.
	var sawTx, sawRx bool
	for _, s := range a.Spans {
		if strings.Contains(s, "tx:") && strings.Contains(s, "guestlib.enqueue") &&
			strings.Contains(s, "engine.vm-pump") && strings.Contains(s, "servicelib.dispatch") {
			sawTx = true
		}
		if strings.Contains(s, "rx:") && strings.Contains(s, "servicelib.emit") &&
			strings.Contains(s, "engine.nsm-pump") && strings.Contains(s, "guestlib.deliver") {
			sawRx = true
		}
	}
	if !sawTx {
		t.Errorf("no complete send-path span among %d spans; first: %q", len(a.Spans), a.Spans[0])
	}
	if !sawRx {
		t.Errorf("no complete receive-path span among %d spans; first: %q", len(a.Spans), a.Spans[0])
	}
}

// TestChaosTelemetryInvariants drives the bursty Gilbert–Elliott WAN
// profile with tracing armed and holds the registry to ground truth:
// per-queue conservation (enqueued == dequeued + in-flight), snapshot
// gauges equal to the switch/engine/stack ledgers they mirror, and
// span-latency histograms consistent with the completed spans. The
// telemetry checks themselves run inside RunAndCheck for every chaos
// scenario; this test pins the WAN + tracing combination.
func TestChaosTelemetryInvariants(t *testing.T) {
	prof := gilbertElliottWAN()
	prof.TraceSampleEvery = 4
	const seed = 7
	res := RunAndCheck(t, seed, prof)
	if len(res.Spans) == 0 {
		t.Error("no completed spans under the WAN profile")
	}
}
