package chaostest

import (
	"flag"
	"testing"
	"time"

	"netkernel/internal/netsim"
)

// -chaos.seed=N replays every scenario with exactly one seed — the
// one-line reproduction knob printed when a seeded run fails.
var chaosSeed = flag.Uint64("chaos.seed", 0, "run chaos scenarios with this single seed instead of the fixed set")

// -chaos.random adds one wall-clock-derived seed on top of the fixed
// set; CI enables it so every run explores fresh schedules, and the
// failure log carries the seed for replay.
var chaosRandom = flag.Bool("chaos.random", false, "also run each scenario with one random seed")

// fixedSeeds is the deterministic regression set every run covers.
var fixedSeeds = []uint64{1, 7, 42}

func seeds(t *testing.T) []uint64 {
	if *chaosSeed != 0 {
		return []uint64{*chaosSeed}
	}
	s := fixedSeeds
	if *chaosRandom {
		s = append(append([]uint64{}, s...), uint64(time.Now().UnixNano())|1)
	}
	return s
}

// lossyReorderLAN: a misbehaving 1 Gbit/s segment — random loss,
// duplication, corruption, heavy reordering — plus doorbell faults,
// sporadic queue stalls, and one mid-run link flap.
func lossyReorderLAN() Profile {
	return Profile{
		Name:             "lossy-reorder-lan",
		Link:             netsim.LossyReorderLAN(),
		Flaps:            []Flap{{At: 300 * time.Millisecond, Outage: 40 * time.Millisecond}},
		QueueStallProb:   0.01,
		DoorbellDropProb: 0.05,
		DoorbellDelayMax: 5 * time.Microsecond,
		Conns:            8,
		MaxBody:          128 << 10,
		Spacing:          25 * time.Millisecond,
		Watchdog:         5 * time.Second,
		Run:              2 * time.Second,
		Quiesce:          120 * time.Second,
	}
}

// gilbertElliottWAN: the §4.3 intercontinental path with bursty GE
// loss. 12 Mbit/s and a 350 ms RTT force small payloads and WAN-scale
// TCP timers; the quiesce phase must outlast the full retransmission
// give-up horizon at MinRTO=400ms.
func gilbertElliottWAN() Profile {
	return Profile{
		Name:             "gilbert-elliott-wan",
		Link:             netsim.WANPathGE(0.005, 0.2, 0.5),
		DoorbellDropProb: 0.02,
		Conns:            4,
		MaxBody:          16 << 10,
		Spacing:          500 * time.Millisecond,
		Watchdog:         60 * time.Second,
		Run:              30 * time.Second,
		Quiesce:          1600 * time.Second,
		MinRTO:           400 * time.Millisecond,
		MSL:              time.Second,
	}
}

// nsmCrashRestart: a clean 40G fabric, but the server-side network
// stack module is killed and rebooted twice mid-workload. Connections
// caught by a crash must fail terminally; later ones (and the
// re-listen) must succeed against the fresh stack.
func nsmCrashRestart() Profile {
	return Profile{
		Name:    "nsm-crash-restart",
		Link:    netsim.Testbed40G(),
		CrashAt: []time.Duration{150 * time.Millisecond, 400 * time.Millisecond},
		Conns:   8,
		MaxBody: 64 << 10,
		Spacing: 60 * time.Millisecond,
		// Crash victims only detect the dead peer via retransmission
		// timeouts, so give them room before the watchdog reaps them.
		Watchdog: 3 * time.Second,
		Run:      2 * time.Second,
		Quiesce:  120 * time.Second,
	}
}

func runScenario(t *testing.T, prof Profile) {
	for _, seed := range seeds(t) {
		seed := seed
		t.Run(prof.Name, func(t *testing.T) {
			res := RunAndCheck(t, seed, prof)
			if t.Failed() {
				t.Logf("seed %d: %d conns, restarts=%d", seed, len(res.Conns), res.Restarts)
			}
		})
	}
}

func TestChaosLossyReorderLAN(t *testing.T) { runScenario(t, lossyReorderLAN()) }

func TestChaosGilbertElliottWAN(t *testing.T) { runScenario(t, gilbertElliottWAN()) }

func TestChaosNSMCrashRestart(t *testing.T) {
	for _, seed := range seeds(t) {
		seed := seed
		prof := nsmCrashRestart()
		t.Run(prof.Name, func(t *testing.T) {
			res := RunAndCheck(t, seed, prof)
			if res.Restarts != len(prof.CrashAt) {
				t.Errorf("[seed %d] expected %d NSM restarts, got %d", seed, len(prof.CrashAt), res.Restarts)
			}
		})
	}
}

// TestChaosLegacySingleQueue keeps the conference paper's single-queue
// channel (Shards = -1 → no sharding anywhere) covered now that the
// harness default runs the multi-queue datapath.
func TestChaosLegacySingleQueue(t *testing.T) {
	prof := lossyReorderLAN()
	prof.Name = "lossy-reorder-lan-legacy"
	prof.Shards = -1
	runScenario(t, prof)
}

// TestShardDeterminism is the scale-out replay contract: with an
// explicit 4-shard datapath — four ring sets per channel, RSS flow
// steering, sharded connection tables — two runs of the same seed must
// still be byte-identical. Any schedule dependence hiding in the shard
// plumbing (map iteration over shard tables, cross-shard lookup order,
// per-shard reset order) diverges the trace immediately.
func TestShardDeterminism(t *testing.T) {
	prof := lossyReorderLAN()
	prof.Shards = 4
	const seed = 4242
	a := Run(seed, prof)
	b := Run(seed, prof)
	if diff, ok := Equal(a, b); !ok {
		t.Fatalf("two 4-shard runs with seed %d diverged: %s", seed, diff)
	}
	if len(a.Trace) == 0 {
		t.Fatal("empty trace: the scenario recorded nothing")
	}
}

// TestChaosDeterminism is the replay contract: the same seed must
// produce a byte-identical event trace and identical statistics, or
// -chaos.seed is useless as a reproduction tool.
func TestChaosDeterminism(t *testing.T) {
	prof := lossyReorderLAN()
	const seed = 1234
	a := Run(seed, prof)
	b := Run(seed, prof)
	if diff, ok := Equal(a, b); !ok {
		t.Fatalf("two runs with seed %d diverged: %s", seed, diff)
	}
	if len(a.Trace) == 0 {
		t.Fatal("empty trace: the scenario recorded nothing")
	}
}
