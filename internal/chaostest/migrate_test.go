package chaostest

import (
	"testing"
	"time"

	"netkernel/internal/netsim"
)

// The handoff scenario family: live NSM migration fired into the same
// fault environments the rest of the suite runs — bursty loss,
// reordering, doorbell faults, link flaps — with the standard
// invariants (byte-exact echoes, terminal states, zero chunk/fd/cID
// leaks, telemetry conservation across the old and new registry
// scopes) applied unchanged. A migration must be invisible at the
// socket API no matter what the fault schedule is doing around it.

// migrateLossyLAN chains two live migrations — a build swap at 250 ms
// (straddling the 300 ms link flap) and a CUBIC→BBR hot-swap at
// 700 ms — through the misbehaving LAN profile.
func migrateLossyLAN() Profile {
	p := lossyReorderLAN()
	p.Name = "migrate-lossy-reorder-lan"
	p.Migrations = []MigrationPoint{
		{At: 250 * time.Millisecond},
		{At: 700 * time.Millisecond, CC: "bbr"},
	}
	return p
}

// migrateGEWAN cuts the server module over mid-transfer on the §4.3
// intercontinental path under bursty Gilbert–Elliott loss: WAN-scale
// retransmission state (RTO backoff, SACK scoreboards, in-flight
// spans) must serialize and revive exactly.
func migrateGEWAN() Profile {
	p := gilbertElliottWAN()
	p.Name = "migrate-gilbert-elliott-wan"
	p.Migrations = []MigrationPoint{{At: 1200 * time.Millisecond}}
	return p
}

func TestChaosMigrateLossyLAN(t *testing.T) {
	for _, seed := range seeds(t) {
		seed := seed
		prof := migrateLossyLAN()
		t.Run(prof.Name, func(t *testing.T) {
			res := RunAndCheck(t, seed, prof)
			if res.Migrated != len(prof.Migrations) || res.MigAborted != 0 {
				t.Errorf("[seed %d] migrated=%d aborted=%d, want %d/0",
					seed, res.Migrated, res.MigAborted, len(prof.Migrations))
			}
			if res.Restarts != 0 {
				t.Errorf("[seed %d] live migration caused %d crash restarts", seed, res.Restarts)
			}
		})
	}
}

func TestChaosMigrateGilbertElliottWAN(t *testing.T) {
	for _, seed := range seeds(t) {
		seed := seed
		prof := migrateGEWAN()
		t.Run(prof.Name, func(t *testing.T) {
			res := RunAndCheck(t, seed, prof)
			if res.Migrated != 1 || res.MigAborted != 0 {
				t.Errorf("[seed %d] migrated=%d aborted=%d, want 1/0", seed, res.Migrated, res.MigAborted)
			}
			if res.MigConns == 0 {
				t.Errorf("[seed %d] cutover found the WAN server idle: no in-flight state was serialized", seed)
			}
		})
	}
}

// TestChaosMigrateAbortFallsBack injects a restore fault mid-handoff:
// the migration must abort into PR 2 crash semantics — donor reboots
// once, caught connections fail terminally, later traffic succeeds
// against the rebooted module — with every leak and conservation
// invariant still holding. The WAN profile keeps transfers alive for
// seconds, so the 1.2 s cutover reliably catches several connections
// mid-flight; the FailAfter=1 fault fires on the second restore.
// Pinned to one seed because the abort only triggers when at least two
// connections are live at the cutover.
func TestChaosMigrateAbortFallsBack(t *testing.T) {
	prof := gilbertElliottWAN()
	prof.Name = "migrate-abort-fallback"
	prof.Migrations = []MigrationPoint{{At: 1200 * time.Millisecond, FailAfter: 1}}
	const seed = 42
	res := RunAndCheck(t, seed, prof)
	if res.MigAborted != 1 || res.Migrated != 0 {
		t.Fatalf("[seed %d] migrated=%d aborted=%d, want 0/1", seed, res.Migrated, res.MigAborted)
	}
	if res.Restarts != 1 {
		t.Fatalf("[seed %d] abort fallback restarted the donor %d times, want 1", seed, res.Restarts)
	}
}

// TestMigrateDeterminism is the handoff replay contract: two runs of
// the same seed, each migrating the server module mid-transfer with a
// CUBIC→BBR hot-swap and per-nqe tracing armed, must produce
// byte-identical event traces, byte-identical span traces, an
// identical migration schedule (count, conns moved, stall), and
// identical post-migration server stack stats — the post-handoff cwnd
// evolution is a pure function of the seed. The WAN profile guarantees
// the 1.2 s cutover lands while transfers are in flight, so the moved
// state includes live SACK scoreboards and CC internals, not just an
// idle listener.
func TestMigrateDeterminism(t *testing.T) {
	prof := migrateGEWAN()
	prof.Name = "migrate-determinism"
	prof.Migrations = []MigrationPoint{{At: 1200 * time.Millisecond, CC: "bbr"}}
	prof.TraceSampleEvery = 64
	const seed = 4242
	a := Run(seed, prof)
	b := Run(seed, prof)
	if diff, ok := Equal(a, b); !ok {
		t.Fatalf("two migrating runs with seed %d diverged: %s", seed, diff)
	}
	if a.Migrated != len(prof.Migrations) {
		t.Fatalf("only %d of %d migrations completed", a.Migrated, len(prof.Migrations))
	}
	if len(a.Spans) == 0 {
		t.Fatal("no spans recorded: the determinism check covered nothing")
	}
	if a.MigConns == 0 {
		t.Fatal("no connection rode a cutover: the hot-swap never moved live state")
	}
}

// TestMigrateDuringDoorbellFaults aims the channel-fault artillery at
// the cutover window itself: dropped and delayed doorbells around the
// freeze/resume sequence must delay delivery, never lose it.
func TestMigrateDuringDoorbellFaults(t *testing.T) {
	for _, seed := range seeds(t) {
		seed := seed
		prof := Profile{
			Name:             "migrate-doorbell-faults",
			Link:             netsim.Testbed40G(),
			QueueStallProb:   0.02,
			DoorbellDropProb: 0.10,
			DoorbellDelayMax: 10 * time.Microsecond,
			Conns:            12,
			MaxBody:          256 << 10,
			Spacing:          15 * time.Millisecond,
			Watchdog:         5 * time.Second,
			Run:              2 * time.Second,
			Quiesce:          120 * time.Second,
			Migrations: []MigrationPoint{
				{At: 90 * time.Millisecond, CC: "bbr"},
				{At: 400 * time.Millisecond, CC: "cubic"},
			},
		}
		t.Run(prof.Name, func(t *testing.T) {
			res := RunAndCheck(t, seed, prof)
			if res.Migrated != 2 || res.MigAborted != 0 {
				t.Errorf("[seed %d] migrated=%d aborted=%d, want 2/0", seed, res.Migrated, res.MigAborted)
			}
		})
	}
}
