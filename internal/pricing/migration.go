package pricing

import "time"

// Live NSM migration accounting (§5 "seamless NSM migration" meets §5
// pricing): moving a tenant's stack is a billable provider operation —
// the provider charges for the serialization work, and compensates the
// tenant when the guest-visible stall exceeds the advertised bound.

// MigrationEvent is the billable shape of one live NSM migration.
type MigrationEvent struct {
	// FromForm and ToForm name the donor and successor realizations
	// ("vm", "container", "module", …).
	FromForm, ToForm string
	// VMs and Conns count the tenants and connections that moved.
	VMs   int
	Conns int
	// Stall is the guest-visible cutover pause.
	Stall time.Duration
	// Aborted records a migration that fell back to crash semantics.
	Aborted bool
}

// MigrationPricer prices migration events: a flat base per completed
// migration, a per-connection serialization charge, and a rebate per
// millisecond of guest-visible stall beyond the free allowance. An
// aborted migration bills nothing — the tenant got crash semantics,
// not a migration.
type MigrationPricer struct {
	Base    MicroUSD
	PerConn MicroUSD
	// FreeStall is the stall the SLA allows without compensation;
	// StallRebatePerMs credits the tenant for each millisecond beyond
	// it. The total never rebates below zero.
	FreeStall        time.Duration
	StallRebatePerMs MicroUSD
}

// Price converts one event into money.
func (p MigrationPricer) Price(ev MigrationEvent) MicroUSD {
	if ev.Aborted {
		return 0
	}
	total := p.Base + MicroUSD(ev.Conns)*p.PerConn
	if over := ev.Stall - p.FreeStall; over > 0 {
		total -= MicroUSD(float64(p.StallRebatePerMs) * float64(over) / float64(time.Millisecond))
	}
	if total < 0 {
		total = 0
	}
	return total
}

// DefaultMigrationPricer returns representative rates: a tenth of a
// cent per migration, a hundredth of a cent per hundred connections,
// and rebates past one millisecond of stall.
func DefaultMigrationPricer() MigrationPricer {
	return MigrationPricer{
		Base:             USD(0.001),
		PerConn:          USD(0.000001),
		FreeStall:        time.Millisecond,
		StallRebatePerMs: USD(0.0005),
	}
}
