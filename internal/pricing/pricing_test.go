package pricing

import (
	"testing"
	"time"

	"netkernel/internal/sim"
)

func sampleUsage() Usage {
	return Usage{
		Period:       2 * time.Hour,
		Form:         "vm",
		Cores:        2,
		MemoryMB:     1024,
		CPUBusy:      30 * time.Minute,
		BytesOut:     10e9,
		BytesIn:      2e9,
		PeakConns:    5000,
		SLATargetBps: 2e9,
	}
}

func TestPerInstancePricing(t *testing.T) {
	m := PerInstance{
		HourlyByForm: map[string]MicroUSD{"vm": USD(0.05), "module": USD(0.005)},
		Default:      USD(0.03),
	}
	u := sampleUsage()
	if got := m.Price(u); got != USD(0.10) {
		t.Fatalf("vm 2h = %v, want $0.10", got)
	}
	u.Form = "module"
	if got := m.Price(u); got != USD(0.01) {
		t.Fatalf("module 2h = %v", got)
	}
	u.Form = "exotic"
	if got := m.Price(u); got != USD(0.06) {
		t.Fatalf("default 2h = %v", got)
	}
}

func TestPerCorePricing(t *testing.T) {
	m := PerCore{CoreHour: USD(0.04), GBHour: USD(0.01)}
	// 2 cores × 2 h × 0.04 + 1 GB × 2 h × 0.01 = 0.16 + 0.02.
	if got := m.Price(sampleUsage()); got != USD(0.18) {
		t.Fatalf("per-core = %v, want $0.18", got)
	}
}

func TestUtilizationCheaperWhenIdle(t *testing.T) {
	util := UtilizationBased{BusyCoreHour: USD(0.08), GBHour: USD(0.005)}
	reserved := PerCore{CoreHour: USD(0.04), GBHour: USD(0.005)}
	u := sampleUsage() // 30 min busy over a 2 h, 2-core reservation
	if util.Price(u) >= reserved.Price(u) {
		t.Fatalf("idle tenant should be cheaper on utilization pricing: %v vs %v",
			util.Price(u), reserved.Price(u))
	}
	// A fully-busy tenant flips the comparison.
	u.CPUBusy = 4 * time.Hour // both cores pegged
	if util.Price(u) <= reserved.Price(u) {
		t.Fatal("pegged tenant should be cheaper on reservations")
	}
}

func TestSLABasedPricing(t *testing.T) {
	m := SLABased{PerGbpsHour: USD(0.01), PerGBOut: USD(0.05), PerKConns: USD(0.002)}
	u := sampleUsage()
	// 2 Gbit/s × 2 h × 0.01 + 10 GB × 0.05 + 5k conns × 2 h × 0.002
	want := USD(0.04) + USD(0.50) + USD(0.02)
	if got := m.Price(u); got != want {
		t.Fatalf("sla = %v, want %v", got, want)
	}
}

func TestInvoiceCoversAllModels(t *testing.T) {
	lines := Invoice(sampleUsage(), DefaultModels()...)
	if len(lines) != 4 {
		t.Fatalf("%d lines", len(lines))
	}
	names := map[string]bool{}
	for _, l := range lines {
		names[l.Model] = true
		if l.Amount <= 0 {
			t.Fatalf("line %s priced %v", l.Model, l.Amount)
		}
	}
	for _, want := range []string{"per-instance", "per-core", "utilization", "sla"} {
		if !names[want] {
			t.Fatalf("missing model %s", want)
		}
	}
}

func TestMeterAccumulates(t *testing.T) {
	loop := sim.NewLoop()
	var busy time.Duration
	var out, in uint64
	conns := 0
	m := NewMeter(loop, "container", 1, 128, 1e9,
		func() time.Duration { return busy },
		func() (uint64, uint64) { return out, in },
		func() int { return conns },
	)
	m.StartSampling(100 * time.Millisecond)

	busy = 10 * time.Minute
	out, in = 5e9, 1e9
	conns = 300
	loop.RunFor(time.Second)
	conns = 100 // dropped after the peak
	loop.RunFor(time.Second)
	m.Stop()

	u := m.Snapshot()
	if u.Period != 2*time.Second {
		t.Fatalf("Period = %v", u.Period)
	}
	if u.CPUBusy != 10*time.Minute || u.BytesOut != 5e9 || u.BytesIn != 1e9 {
		t.Fatalf("usage %+v", u)
	}
	if u.PeakConns != 300 {
		t.Fatalf("PeakConns = %d, want the 300 high-water mark", u.PeakConns)
	}
	if u.Form != "container" || u.Cores != 1 || u.MemoryMB != 128 {
		t.Fatalf("identity fields %+v", u)
	}
}

func TestMeterBaselinesExistingCounters(t *testing.T) {
	loop := sim.NewLoop()
	busy := time.Hour // pre-existing consumption
	out := uint64(7e9)
	m := NewMeter(loop, "vm", 1, 1024, 0,
		func() time.Duration { return busy },
		func() (uint64, uint64) { return out, 0 },
		func() int { return 0 },
	)
	busy += time.Minute
	out += 1000
	u := m.Snapshot()
	if u.CPUBusy != time.Minute || u.BytesOut != 1000 {
		t.Fatalf("meter did not baseline: %+v", u)
	}
}

func TestMoneyFormatting(t *testing.T) {
	if USD(1.5).String() != "$1.500000" {
		t.Fatalf("got %q", USD(1.5).String())
	}
}
