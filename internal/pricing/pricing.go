// Package pricing implements the §5 research-agenda item "Pricing
// model and accounting CPU and RAM": "One may charge tenants based on
// the number of NSM instances or number of cores, even CPU and memory
// utilization on average per instance used for example. One may also
// use SLA based pricing, based on for example the maximum number of
// concurrent connections supported, maximum throughput allowed, etc."
//
// A Meter samples one tenant's NSM attachment; Models convert the
// resulting Usage into money; an Invoice lays the alternatives side by
// side.
package pricing

import (
	"fmt"
	"time"

	"netkernel/internal/sim"
)

// MicroUSD is a millionth of a dollar; integer money keeps invoices
// deterministic.
type MicroUSD int64

func (m MicroUSD) String() string { return fmt.Sprintf("$%.6f", float64(m)/1e6) }

// USD converts dollars to MicroUSD.
func USD(d float64) MicroUSD { return MicroUSD(d * 1e6) }

// Usage is one tenant's resource consumption over a metering period.
type Usage struct {
	// Period is the metered wall (virtual) time.
	Period time.Duration
	// Form names the NSM realization ("vm", "container", …).
	Form string
	// Cores and MemoryMB are the provisioned reservation.
	Cores    int
	MemoryMB int
	// CPUBusy is the actually-consumed core time.
	CPUBusy time.Duration
	// BytesOut / BytesIn are tenant payload volumes through the NSM.
	BytesOut, BytesIn uint64
	// PeakConns is the high-water concurrent-connection mark.
	PeakConns int
	// SLATargetBps is the promised throughput floor (0 = best effort).
	SLATargetBps float64
}

// A Model prices a Usage.
type Model interface {
	Name() string
	Price(u Usage) MicroUSD
}

// PerInstance charges a flat rate per NSM instance-hour, scaled by the
// form's weight (a full VM costs more to run than a module).
type PerInstance struct {
	// HourlyByForm maps form name → instance-hour price; missing forms
	// use Default.
	HourlyByForm map[string]MicroUSD
	Default      MicroUSD
}

// Name implements Model.
func (PerInstance) Name() string { return "per-instance" }

// Price implements Model.
func (p PerInstance) Price(u Usage) MicroUSD {
	rate, ok := p.HourlyByForm[u.Form]
	if !ok {
		rate = p.Default
	}
	return MicroUSD(float64(rate) * u.Period.Hours())
}

// PerCore charges reserved cores and memory by the hour, whether used
// or not — classic reservation pricing.
type PerCore struct {
	CoreHour MicroUSD
	GBHour   MicroUSD
}

// Name implements Model.
func (PerCore) Name() string { return "per-core" }

// Price implements Model.
func (p PerCore) Price(u Usage) MicroUSD {
	cores := MicroUSD(float64(p.CoreHour) * float64(u.Cores) * u.Period.Hours())
	mem := MicroUSD(float64(p.GBHour) * float64(u.MemoryMB) / 1024 * u.Period.Hours())
	return cores + mem
}

// UtilizationBased charges only what was consumed: busy core-time and
// resident memory. This is the model the paper's efficiency argument
// enables — the provider can meter the stack because it runs the stack.
type UtilizationBased struct {
	BusyCoreHour MicroUSD
	GBHour       MicroUSD
}

// Name implements Model.
func (UtilizationBased) Name() string { return "utilization" }

// Price implements Model.
func (p UtilizationBased) Price(u Usage) MicroUSD {
	busy := MicroUSD(float64(p.BusyCoreHour) * u.CPUBusy.Hours())
	mem := MicroUSD(float64(p.GBHour) * float64(u.MemoryMB) / 1024 * u.Period.Hours())
	return busy + mem
}

// SLABased charges for the promised throughput floor plus egress
// volume — §5's "maximum throughput allowed" pricing.
type SLABased struct {
	// PerGbpsHour prices each promised Gbit/s of throughput SLA.
	PerGbpsHour MicroUSD
	// PerGBOut prices each GB of egress.
	PerGBOut MicroUSD
	// PerKConns prices each 1000 peak concurrent connections per hour.
	PerKConns MicroUSD
}

// Name implements Model.
func (SLABased) Name() string { return "sla" }

// Price implements Model.
func (p SLABased) Price(u Usage) MicroUSD {
	sla := MicroUSD(float64(p.PerGbpsHour) * u.SLATargetBps / 1e9 * u.Period.Hours())
	egress := MicroUSD(float64(p.PerGBOut) * float64(u.BytesOut) / 1e9)
	conns := MicroUSD(float64(p.PerKConns) * float64(u.PeakConns) / 1000 * u.Period.Hours())
	return sla + egress + conns
}

// Meter samples a tenant's NSM attachment over time. The closures
// decouple it from the hypervisor types: feed it the NSM CPU's busy
// counter, the ServiceLib byte counters, and a live-connection count.
type Meter struct {
	clock sim.Clock
	start sim.Time

	form     string
	cores    int
	memoryMB int
	slaBps   float64

	cpuBusy func() time.Duration
	bytes   func() (out, in uint64)
	conns   func() int

	baseBusy          time.Duration
	baseOut, baseIn   uint64
	peakConns         int
	sampling, stopped bool
}

// NewMeter starts metering at the current instant.
func NewMeter(clock sim.Clock, form string, cores, memoryMB int, slaBps float64,
	cpuBusy func() time.Duration, bytes func() (out, in uint64), conns func() int) *Meter {
	m := &Meter{
		clock: clock, start: clock.Now(),
		form: form, cores: cores, memoryMB: memoryMB, slaBps: slaBps,
		cpuBusy: cpuBusy, bytes: bytes, conns: conns,
	}
	m.baseBusy = cpuBusy()
	m.baseOut, m.baseIn = bytes()
	return m
}

// StartSampling begins periodic peak-connection sampling.
func (m *Meter) StartSampling(every time.Duration) {
	if m.sampling {
		return
	}
	m.sampling = true
	var tick func()
	tick = func() {
		if m.stopped {
			return
		}
		if n := m.conns(); n > m.peakConns {
			m.peakConns = n
		}
		m.clock.AfterFunc(every, tick)
	}
	tick()
}

// Stop halts sampling.
func (m *Meter) Stop() { m.stopped = true }

// Snapshot returns the usage accumulated since the meter started.
func (m *Meter) Snapshot() Usage {
	out, in := m.bytes()
	if n := m.conns(); n > m.peakConns {
		m.peakConns = n
	}
	return Usage{
		Period:       m.clock.Now().Sub(m.start),
		Form:         m.form,
		Cores:        m.cores,
		MemoryMB:     m.memoryMB,
		CPUBusy:      m.cpuBusy() - m.baseBusy,
		BytesOut:     out - m.baseOut,
		BytesIn:      in - m.baseIn,
		PeakConns:    m.peakConns,
		SLATargetBps: m.slaBps,
	}
}

// InvoiceLine is one model's price for one usage.
type InvoiceLine struct {
	Model  string
	Amount MicroUSD
}

// Invoice prices a usage under every supplied model, preserving order.
func Invoice(u Usage, models ...Model) []InvoiceLine {
	lines := make([]InvoiceLine, 0, len(models))
	for _, m := range models {
		lines = append(lines, InvoiceLine{Model: m.Name(), Amount: m.Price(u)})
	}
	return lines
}

// DefaultModels returns a representative catalogue (rates loosely
// shaped on public-cloud list prices).
func DefaultModels() []Model {
	return []Model{
		PerInstance{
			HourlyByForm: map[string]MicroUSD{
				"vm": USD(0.0475), "unikernel": USD(0.02),
				"container": USD(0.01), "module": USD(0.005),
			},
			Default: USD(0.0475),
		},
		PerCore{CoreHour: USD(0.04), GBHour: USD(0.005)},
		UtilizationBased{BusyCoreHour: USD(0.08), GBHour: USD(0.005)},
		SLABased{PerGbpsHour: USD(0.01), PerGBOut: USD(0.05), PerKConns: USD(0.002)},
	}
}
