// Package nkchan defines the shared-memory channel between one tenant
// VM and its Network Stack Module: the six queues of Figure 3 (job,
// completion, and receive queues on each side) plus the huge-page data
// region. GuestLib owns the VM side, ServiceLib the NSM side, and the
// CoreEngine shuttles nqes between them.
//
// A channel may be sharded (the journal version's multi-queue NSM):
// each shard owns a full six-ring set, flows are pinned to shards by
// the vswitch RSS hash, and an element's shard is implied by the rings
// it rides — the wire format carries no shard field.
package nkchan

import (
	"netkernel/internal/nkqueue"
	"netkernel/internal/shm"
)

// Config shapes a channel.
type Config struct {
	// Queue configures the six rings (per shard).
	Queue nkqueue.Config
	// HugePages is the page count of the data region (default 40, the
	// prototype's allocation).
	HugePages int
	// ChunkSize is the data-chunk granularity (default 8 KB, the chunk
	// size of Figure 4's caption).
	ChunkSize int
	// Shards is the number of ring-set shards (default 1, the single-
	// queue channel of the conference paper). The huge-page region is
	// shared across shards; ring sets are not.
	Shards int
	// SmallPages is the page count of the short-flow size class carved
	// above the bulk region (DESIGN.md §11). Default 1; negative
	// disables the class. Bulk chunk offsets are unaffected either way.
	SmallPages int
	// SmallChunkSize is the short-flow chunk granularity (default
	// shm.DefaultSmallChunkSize).
	SmallChunkSize int
}

func (c *Config) fillDefaults() {
	if c.HugePages <= 0 {
		c.HugePages = shm.DefaultPageCount
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 8 << 10
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.SmallPages == 0 {
		c.SmallPages = 1
	}
	if c.SmallPages < 0 {
		c.SmallPages = 0
	}
	if c.SmallChunkSize <= 0 {
		c.SmallChunkSize = shm.DefaultSmallChunkSize
	}
}

// QueueKind selects an NSM-side output queue for emission.
type QueueKind int

// Queue kinds.
const (
	// Completion answers a specific job (correlated by Seq).
	Completion QueueKind = iota
	// Receive carries asynchronous events.
	Receive
)

// Rings is one shard's six queues.
type Rings struct {
	// VM-side queues: the VM produces jobs and consumes completions
	// and receive events.
	VMJob, VMCompletion, VMReceive nkqueue.Q
	// NSM-side queues: the NSM consumes jobs and produces completions
	// and receive events.
	NSMJob, NSMCompletion, NSMReceive nkqueue.Q
}

// Pair is the full VM↔NSM channel.
type Pair struct {
	// Shard 0's queues, inlined for single-shard callers (tests and
	// benchmarks build bare Pairs with just these; EnsureShards wraps
	// them into Shards[0]).
	VMJob, VMCompletion, VMReceive    nkqueue.Q
	NSMJob, NSMCompletion, NSMReceive nkqueue.Q
	// Shards holds every ring set; Shards[0] aliases the fields above.
	Shards []Rings
	// Pages is the shared data region, unique per pair (§3.1
	// isolation) and shared by all shards — its own free lists are
	// already sharded, and AllocOn gives each flow shard affinity.
	Pages *shm.HugePages

	// Kicks are notification hooks wired by the owners, one doorbell
	// per shard. Each models a batched interrupt in the paper's design
	// (§3.2): a producer pushes a whole batch to one shard's ring,
	// then kicks that shard once, and the consumer drains the ring in
	// spans rather than taking one interrupt per nqe.
	KickEngineVM  func(shard int) // GuestLib → CoreEngine: VM job queue has work
	KickEngineNSM func(shard int) // ServiceLib → CoreEngine: NSM completion/receive queues have work
	KickNSM       func(shard int) // CoreEngine → ServiceLib: NSM job queue has work
	KickVM        func(shard int) // CoreEngine → GuestLib: VM completion/receive queues have work
}

// NewPair allocates the queues and data region.
func NewPair(cfg Config) (*Pair, error) {
	cfg.fillDefaults()
	pages, err := shm.NewHugePagesSized(cfg.HugePages, cfg.ChunkSize, cfg.SmallPages, cfg.SmallChunkSize)
	if err != nil {
		return nil, err
	}
	p := &Pair{Pages: pages, Shards: make([]Rings, cfg.Shards)}
	for i := range p.Shards {
		vm, err := nkqueue.NewSet(cfg.Queue)
		if err != nil {
			return nil, err
		}
		nsm, err := nkqueue.NewSet(cfg.Queue)
		if err != nil {
			return nil, err
		}
		p.Shards[i] = Rings{
			VMJob: vm.Job, VMCompletion: vm.Completion, VMReceive: vm.Receive,
			NSMJob: nsm.Job, NSMCompletion: nsm.Completion, NSMReceive: nsm.Receive,
		}
	}
	p.VMJob, p.VMCompletion, p.VMReceive = p.Shards[0].VMJob, p.Shards[0].VMCompletion, p.Shards[0].VMReceive
	p.NSMJob, p.NSMCompletion, p.NSMReceive = p.Shards[0].NSMJob, p.Shards[0].NSMCompletion, p.Shards[0].NSMReceive
	return p, nil
}

// EnsureShards makes Shards usable on hand-built pairs that only
// filled the inline shard-0 fields. Owners (engine, guestlib,
// servicelib) call it on attach.
func (p *Pair) EnsureShards() {
	if len(p.Shards) == 0 {
		p.Shards = []Rings{{
			VMJob: p.VMJob, VMCompletion: p.VMCompletion, VMReceive: p.VMReceive,
			NSMJob: p.NSMJob, NSMCompletion: p.NSMCompletion, NSMReceive: p.NSMReceive,
		}}
	}
}

// NumShards returns the channel's shard count.
func (p *Pair) NumShards() int {
	if len(p.Shards) == 0 {
		return 1
	}
	return len(p.Shards)
}

// ChunkSize returns the bulk data-chunk granularity.
func (p *Pair) ChunkSize() int { return p.Pages.ChunkSize() }

// SmallChunkSize returns the short-flow chunk granularity, 0 when the
// pair's region has no small class.
func (p *Pair) SmallChunkSize() int { return p.Pages.SmallChunkSize() }

// FlushDoorbells delivers any coalesced doorbell wakeups still pending
// on every shard's rings. Producers call it when a burst ends with a
// partial batch, so BatchedInterrupt mode never strands the tail of a
// transfer waiting for a batch that will not fill.
func (p *Pair) FlushDoorbells() {
	p.EnsureShards()
	for i := range p.Shards {
		r := &p.Shards[i]
		for _, q := range []nkqueue.Q{
			r.VMJob, r.VMCompletion, r.VMReceive,
			r.NSMJob, r.NSMCompletion, r.NSMReceive,
		} {
			q.Flush()
		}
	}
}
