// Package nkchan defines the shared-memory channel between one tenant
// VM and its Network Stack Module: the six queues of Figure 3 (job,
// completion, and receive queues on each side) plus the huge-page data
// region. GuestLib owns the VM side, ServiceLib the NSM side, and the
// CoreEngine shuttles nqes between them.
package nkchan

import (
	"netkernel/internal/nkqueue"
	"netkernel/internal/shm"
)

// Config shapes a channel.
type Config struct {
	// Queue configures the six rings.
	Queue nkqueue.Config
	// HugePages is the page count of the data region (default 40, the
	// prototype's allocation).
	HugePages int
	// ChunkSize is the data-chunk granularity (default 8 KB, the chunk
	// size of Figure 4's caption).
	ChunkSize int
}

func (c *Config) fillDefaults() {
	if c.HugePages <= 0 {
		c.HugePages = shm.DefaultPageCount
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 8 << 10
	}
}

// QueueKind selects an NSM-side output queue for emission.
type QueueKind int

// Queue kinds.
const (
	// Completion answers a specific job (correlated by Seq).
	Completion QueueKind = iota
	// Receive carries asynchronous events.
	Receive
)

// Pair is the full VM↔NSM channel.
type Pair struct {
	// VM-side queues: the VM produces jobs and consumes completions
	// and receive events.
	VMJob, VMCompletion, VMReceive nkqueue.Q
	// NSM-side queues: the NSM consumes jobs and produces completions
	// and receive events.
	NSMJob, NSMCompletion, NSMReceive nkqueue.Q
	// Pages is the shared data region, unique per pair (§3.1
	// isolation).
	Pages *shm.HugePages

	// Kicks are notification hooks wired by the owners. Each models a
	// doorbell/batched interrupt in the paper's design (§3.2): a
	// producer pushes a whole batch, then kicks once, and the consumer
	// drains the ring in spans rather than taking one interrupt per
	// nqe. The per-queue shm.Doorbell coalescing (RingN/Flush) tracks
	// the same batches at the ring level for the notification ablation.
	KickEngineVM  func() // GuestLib → CoreEngine: VM job queue has work
	KickEngineNSM func() // ServiceLib → CoreEngine: NSM completion/receive queues have work
	KickNSM       func() // CoreEngine → ServiceLib: NSM job queue has work
	KickVM        func() // CoreEngine → GuestLib: VM completion/receive queues have work
}

// NewPair allocates the queues and data region.
func NewPair(cfg Config) (*Pair, error) {
	cfg.fillDefaults()
	vm, err := nkqueue.NewSet(cfg.Queue)
	if err != nil {
		return nil, err
	}
	nsm, err := nkqueue.NewSet(cfg.Queue)
	if err != nil {
		return nil, err
	}
	pages, err := shm.NewHugePages(cfg.HugePages, cfg.ChunkSize)
	if err != nil {
		return nil, err
	}
	return &Pair{
		VMJob: vm.Job, VMCompletion: vm.Completion, VMReceive: vm.Receive,
		NSMJob: nsm.Job, NSMCompletion: nsm.Completion, NSMReceive: nsm.Receive,
		Pages: pages,
	}, nil
}

// ChunkSize returns the data-chunk granularity.
func (p *Pair) ChunkSize() int { return p.Pages.ChunkSize() }

// FlushDoorbells delivers any coalesced doorbell wakeups still pending
// on all six rings. Producers call it when a burst ends with a partial
// batch, so BatchedInterrupt mode never strands the tail of a transfer
// waiting for a batch that will not fill.
func (p *Pair) FlushDoorbells() {
	for _, q := range []nkqueue.Q{
		p.VMJob, p.VMCompletion, p.VMReceive,
		p.NSMJob, p.NSMCompletion, p.NSMReceive,
	} {
		q.Flush()
	}
}
