package nkchan

import (
	"testing"

	"netkernel/internal/nkqueue"
	"netkernel/internal/nqe"
	"netkernel/internal/shm"
)

func TestNewPairDefaults(t *testing.T) {
	p, err := NewPair(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.ChunkSize() != 8<<10 {
		t.Fatalf("ChunkSize = %d, want 8KB default", p.ChunkSize())
	}
	wantBulk := shm.DefaultPageCount * shm.PageSize / (8 << 10)
	wantSmall := shm.PageSize / shm.DefaultSmallChunkSize
	if p.Pages.Chunks() != wantBulk+wantSmall {
		t.Fatalf("Chunks = %d, want %d bulk + %d small", p.Pages.Chunks(), wantBulk, wantSmall)
	}
	if p.SmallChunkSize() != shm.DefaultSmallChunkSize {
		t.Fatalf("SmallChunkSize = %d", p.SmallChunkSize())
	}
	// All six queues usable.
	e := nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM}
	for i, q := range []nkqueue.Q{p.VMJob, p.VMCompletion, p.VMReceive, p.NSMJob, p.NSMCompletion, p.NSMReceive} {
		if !q.Push(&e) {
			t.Fatalf("queue %d push failed", i)
		}
		var out nqe.Element
		if !q.Pop(&out) || out.Op != nqe.OpSend {
			t.Fatalf("queue %d pop failed", i)
		}
	}
}

func TestNewPairPriorityQueues(t *testing.T) {
	p, err := NewPair(Config{Queue: nkqueue.Config{Priority: true, Slots: 8}})
	if err != nil {
		t.Fatal(err)
	}
	conn := nqe.Element{Op: nqe.OpConnect, Source: nqe.FromVM}
	data := nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM}
	p.VMJob.Push(&data)
	p.VMJob.Push(&conn)
	var out nqe.Element
	p.VMJob.Pop(&out)
	if out.Op != nqe.OpConnect {
		t.Fatal("priority pair did not prioritize the connection event")
	}
}

func TestNewPairBadConfig(t *testing.T) {
	if _, err := NewPair(Config{Queue: nkqueue.Config{Slots: 3}}); err == nil {
		t.Fatal("bad slot count accepted")
	}
	if _, err := NewPair(Config{ChunkSize: 3000}); err == nil {
		t.Fatal("chunk size not dividing the page accepted")
	}
}

func TestPairIsolation(t *testing.T) {
	a, _ := NewPair(Config{})
	b, _ := NewPair(Config{})
	ca, _ := a.Pages.Alloc()
	a.Pages.Write(ca, []byte("tenant-a"))
	cb, _ := b.Pages.Alloc()
	buf := make([]byte, 8)
	b.Pages.Read(cb, buf, 8)
	if string(buf) == "tenant-a" {
		t.Fatal("pairs share huge pages")
	}
}
