package guestlib

import (
	"bytes"
	"testing"

	"netkernel/internal/nkchan"
	"netkernel/internal/nkqueue"
	"netkernel/internal/nqe"
	"netkernel/internal/proto/ipv4"
	"netkernel/internal/sim"
)

// harness wires a GuestLib to a pair with a recording fake engine.
type harness struct {
	loop  *sim.Loop
	pair  *nkchan.Pair
	g     *GuestLib
	jobs  []nqe.Element
	kicks int
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	pair, err := nkchan.NewPair(nkchan.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{loop: sim.NewLoop(), pair: pair}
	pair.KickEngineVM = func(int) {
		h.kicks++
		var e nqe.Element
		for pair.VMJob.Pop(&e) {
			h.jobs = append(h.jobs, e)
		}
	}
	h.g = New(Config{Clock: h.loop, VMID: 7, Pair: pair})
	return h
}

// completeSocket emulates the engine+NSM answering an OpSocket.
func (h *harness) completeSocket(fd int32, seq uint64) {
	e := nqe.Element{Op: nqe.OpSocket, FD: fd, Seq: seq, Source: nqe.FromCore, Flags: nqe.FlagCompletion}
	h.pair.VMCompletion.Push(&e)
	h.pair.KickVM(0)
}

func (h *harness) deliverEvent(e nqe.Element) {
	h.pair.VMReceive.Push(&e)
	h.pair.KickVM(0)
}

func TestSocketEmitsJob(t *testing.T) {
	h := newHarness(t)
	fd := h.g.Socket(Callbacks{})
	if fd < 3 {
		t.Fatalf("fd = %d", fd)
	}
	if len(h.jobs) != 1 || h.jobs[0].Op != nqe.OpSocket || h.jobs[0].FD != fd || h.jobs[0].VMID != 7 {
		t.Fatalf("jobs = %+v", h.jobs)
	}
}

func TestConnectDeferredUntilSocketReady(t *testing.T) {
	h := newHarness(t)
	fd := h.g.Socket(Callbacks{})
	if err := h.g.Connect(fd, ipv4.Addr{10, 0, 0, 2}, 80); err != nil {
		t.Fatal(err)
	}
	// Only the OpSocket job should be out; OpConnect waits for the
	// mapping to exist.
	if len(h.jobs) != 1 {
		t.Fatalf("connect leaked before readiness: %d jobs", len(h.jobs))
	}
	h.completeSocket(fd, h.jobs[0].Seq)
	if len(h.jobs) != 2 || h.jobs[1].Op != nqe.OpConnect {
		t.Fatalf("deferred connect not flushed: %+v", h.jobs)
	}
	ip, port := nqe.UnpackAddr(h.jobs[1].Arg0)
	if ip != (ipv4.Addr{10, 0, 0, 2}) || port != 80 {
		t.Fatalf("connect addr %v:%d", ip, port)
	}
}

func TestConnectOnConnectingSocketFails(t *testing.T) {
	h := newHarness(t)
	fd := h.g.Socket(Callbacks{})
	h.g.Connect(fd, ipv4.Addr{10, 0, 0, 2}, 80)
	if err := h.g.Connect(fd, ipv4.Addr{10, 0, 0, 3}, 80); err == nil {
		t.Fatal("double connect accepted")
	}
	if err := h.g.Connect(999, ipv4.Addr{10, 0, 0, 3}, 80); err == nil {
		t.Fatal("connect on bad fd accepted")
	}
}

func TestEstablishedEventFiresCallback(t *testing.T) {
	h := newHarness(t)
	var got error = errX
	fd := h.g.Socket(Callbacks{OnEstablished: func(err error) { got = err }})
	h.completeSocket(fd, h.jobs[0].Seq)
	h.g.Connect(fd, ipv4.Addr{10, 0, 0, 2}, 80)
	h.deliverEvent(nqe.Element{Op: nqe.OpEstablished, FD: fd, Status: nqe.StatusOK, Source: nqe.FromNSM})
	if got != nil {
		t.Fatalf("OnEstablished got %v", got)
	}
	// Failure path.
	var got2 error
	fd2 := h.g.Socket(Callbacks{OnEstablished: func(err error) { got2 = err }})
	h.completeSocket(fd2, h.jobs[len(h.jobs)-1].Seq)
	h.g.Connect(fd2, ipv4.Addr{10, 0, 0, 9}, 80)
	h.deliverEvent(nqe.Element{Op: nqe.OpEstablished, FD: fd2, Status: nqe.StatusConnRefused, Source: nqe.FromNSM})
	if got2 == nil {
		t.Fatal("refused connect reported success")
	}
}

var errX = &xErr{}

type xErr struct{}

func (*xErr) Error() string { return "x" }

func establishedSocket(t *testing.T, h *harness, cbs Callbacks) int32 {
	t.Helper()
	fd := h.g.Socket(cbs)
	h.completeSocket(fd, h.jobs[len(h.jobs)-1].Seq)
	h.g.Connect(fd, ipv4.Addr{10, 0, 0, 2}, 80)
	h.deliverEvent(nqe.Element{Op: nqe.OpEstablished, FD: fd, Status: nqe.StatusOK, Source: nqe.FromNSM})
	return fd
}

func TestSendChunksAndCredit(t *testing.T) {
	h := newHarness(t)
	fd := establishedSocket(t, h, Callbacks{})
	base := len(h.jobs)

	payload := make([]byte, 20<<10) // 2.5 chunks of 8 KB
	for i := range payload {
		payload[i] = byte(i)
	}
	if n := h.g.Send(fd, payload); n != len(payload) {
		t.Fatalf("Send = %d", n)
	}
	sends := h.jobs[base:]
	if len(sends) != 3 {
		t.Fatalf("%d send jobs, want 3 chunks", len(sends))
	}
	// Verify data landed in the huge pages intact.
	var reassembled bytes.Buffer
	for _, e := range sends {
		if e.Op != nqe.OpSend {
			t.Fatalf("job op %v", e.Op)
		}
		buf := make([]byte, e.DataLen)
		h.pair.Pages.Read(shmChunk(e.DataOff), buf, int(e.DataLen))
		reassembled.Write(buf)
	}
	if !bytes.Equal(reassembled.Bytes(), payload) {
		t.Fatal("huge-page contents do not match the payload")
	}
	// FlagMoreData set on all but the last chunk.
	if sends[0].Flags&nqe.FlagMoreData == 0 || sends[2].Flags&nqe.FlagMoreData != 0 {
		t.Fatal("FlagMoreData misapplied")
	}
}

func TestSendCreditExhaustionAndWritable(t *testing.T) {
	pair, _ := nkchan.NewPair(nkchan.Config{})
	loop := sim.NewLoop()
	var jobs []nqe.Element
	pair.KickEngineVM = func(int) {
		var e nqe.Element
		for pair.VMJob.Pop(&e) {
			jobs = append(jobs, e)
		}
	}
	g := New(Config{Clock: loop, VMID: 1, Pair: pair, SendCredit: 16 << 10})
	fd := g.Socket(Callbacks{})
	e := nqe.Element{Op: nqe.OpSocket, FD: fd, Seq: jobs[0].Seq, Flags: nqe.FlagCompletion, Source: nqe.FromCore}
	pair.VMCompletion.Push(&e)
	pair.KickVM(0)
	g.Connect(fd, ipv4.Addr{10, 0, 0, 2}, 80)
	ev := nqe.Element{Op: nqe.OpEstablished, FD: fd, Status: nqe.StatusOK, Source: nqe.FromNSM}
	pair.VMReceive.Push(&ev)
	pair.KickVM(0)

	writable := 0
	g.SetCallbacks(fd, Callbacks{OnWritable: func() { writable++ }})

	// 16 KB credit: a 100 KB send is cut short.
	n := g.Send(fd, make([]byte, 100<<10))
	if n != 16<<10 {
		t.Fatalf("Send accepted %d, want credit-bounded 16KB", n)
	}
	if g.Send(fd, []byte("more")) != 0 {
		t.Fatal("send with zero credit accepted data")
	}
	if g.Stats().CreditStalls == 0 {
		t.Fatal("credit stall not counted")
	}

	// A send completion returns credit and fires OnWritable.
	comp := nqe.Element{Op: nqe.OpSend, FD: fd, DataLen: 8 << 10, Flags: nqe.FlagCompletion, Source: nqe.FromNSM}
	pair.VMCompletion.Push(&comp)
	pair.KickVM(0)
	if writable != 1 {
		t.Fatalf("OnWritable fired %d times", writable)
	}
	if g.Send(fd, make([]byte, 8<<10)) != 8<<10 {
		t.Fatal("returned credit unusable")
	}
}

func TestRecvFromNewDataEvents(t *testing.T) {
	h := newHarness(t)
	readable := 0
	fd := establishedSocket(t, h, Callbacks{})
	h.g.SetCallbacks(fd, Callbacks{OnReadable: func() { readable++ }})

	// NSM wrote a chunk and sent a new-data event.
	chunk, _ := h.pair.Pages.Alloc()
	msg := []byte("data from the wire")
	h.pair.Pages.Write(chunk, msg)
	h.deliverEvent(nqe.Element{Op: nqe.OpNewData, FD: fd, DataOff: chunk.Offset, DataLen: uint32(len(msg)), Source: nqe.FromNSM})

	if readable != 1 {
		t.Fatalf("OnReadable fired %d times", readable)
	}
	if h.g.ReadAvailable(fd) != len(msg) {
		t.Fatalf("ReadAvailable = %d", h.g.ReadAvailable(fd))
	}
	buf := make([]byte, 64)
	n, eof := h.g.Recv(fd, buf)
	if !bytes.Equal(buf[:n], msg) || eof {
		t.Fatalf("Recv = %q eof=%v", buf[:n], eof)
	}
	// The chunk was freed back to the pool.
	if h.pair.Pages.FreeCount() != h.pair.Pages.Chunks() {
		t.Fatal("chunk leaked after Recv")
	}
	// Credit (OpRecv) returned to the NSM.
	last := h.jobs[len(h.jobs)-1]
	if last.Op != nqe.OpRecv || last.Arg0 != uint64(len(msg)) {
		t.Fatalf("credit job %+v", last)
	}
}

func TestRecvPartialReads(t *testing.T) {
	h := newHarness(t)
	fd := establishedSocket(t, h, Callbacks{})
	chunk, _ := h.pair.Pages.Alloc()
	h.pair.Pages.Write(chunk, []byte("abcdefgh"))
	h.deliverEvent(nqe.Element{Op: nqe.OpNewData, FD: fd, DataOff: chunk.Offset, DataLen: 8, Source: nqe.FromNSM})

	buf := make([]byte, 3)
	n, _ := h.g.Recv(fd, buf)
	if string(buf[:n]) != "abc" {
		t.Fatalf("first read %q", buf[:n])
	}
	n, _ = h.g.Recv(fd, buf)
	if string(buf[:n]) != "def" {
		t.Fatalf("second read %q", buf[:n])
	}
	n, _ = h.g.Recv(fd, buf)
	if string(buf[:n]) != "gh" {
		t.Fatalf("third read %q", buf[:n])
	}
}

func TestConnClosedDeliversEOFAndOnClose(t *testing.T) {
	h := newHarness(t)
	closed := 0
	var closeErr error = errX
	fd := establishedSocket(t, h, Callbacks{})
	h.g.SetCallbacks(fd, Callbacks{OnClose: func(err error) { closed++; closeErr = err }})
	h.deliverEvent(nqe.Element{Op: nqe.OpConnClosed, FD: fd, Status: nqe.StatusOK, Source: nqe.FromNSM})
	if closed != 1 || closeErr != nil {
		t.Fatalf("OnClose fired %d times with %v", closed, closeErr)
	}
	_, eof := h.g.Recv(fd, make([]byte, 4))
	if !eof {
		t.Fatal("no EOF after conn-closed")
	}
	// Reset path carries the error.
	fd2 := establishedSocket(t, h, Callbacks{})
	var err2 error
	h.g.SetCallbacks(fd2, Callbacks{OnClose: func(err error) { err2 = err }})
	h.deliverEvent(nqe.Element{Op: nqe.OpConnClosed, FD: fd2, Status: nqe.StatusConnReset, Source: nqe.FromNSM})
	if err2 == nil {
		t.Fatal("reset close reported clean")
	}
}

func TestListenerAcceptFlow(t *testing.T) {
	h := newHarness(t)
	acceptable := 0
	lfd := h.g.Socket(Callbacks{OnAcceptable: func() { acceptable++ }})
	h.completeSocket(lfd, h.jobs[0].Seq)
	if err := h.g.Listen(lfd, 80, 8); err != nil {
		t.Fatal(err)
	}
	if _, ok := h.g.Accept(lfd); ok {
		t.Fatal("accept on empty listener succeeded")
	}
	// Two connections arrive; fds minted by the CoreEngine in Arg1.
	h.deliverEvent(nqe.Element{Op: nqe.OpNewConn, FD: lfd, Arg0: nqe.PackAddr(ipv4.Addr{10, 9, 9, 9}, 5555), Arg1: 1 << 20, Source: nqe.FromNSM})
	h.deliverEvent(nqe.Element{Op: nqe.OpNewConn, FD: lfd, Arg1: 1<<20 + 1, Source: nqe.FromNSM})
	if acceptable != 1 {
		t.Fatalf("OnAcceptable fired %d times, want edge-triggered 1", acceptable)
	}
	fd1, ok1 := h.g.Accept(lfd)
	fd2, ok2 := h.g.Accept(lfd)
	if !ok1 || !ok2 || fd1 != 1<<20 || fd2 != 1<<20+1 {
		t.Fatalf("accepts %d/%v %d/%v", fd1, ok1, fd2, ok2)
	}
	// Accepted sockets are immediately usable.
	if n := h.g.Send(fd1, []byte("hi")); n != 2 {
		t.Fatalf("send on accepted fd = %d", n)
	}
	// Listen on connected socket fails.
	if err := h.g.Listen(fd1, 81, 4); err == nil {
		t.Fatal("listen on established socket accepted")
	}
}

func TestSendOnNotEstablished(t *testing.T) {
	h := newHarness(t)
	fd := h.g.Socket(Callbacks{})
	if h.g.Send(fd, []byte("early")) != 0 {
		t.Fatal("send before connect accepted data")
	}
	if n, eof := h.g.Recv(999, make([]byte, 4)); n != 0 || !eof {
		t.Fatal("recv on bad fd should report EOF")
	}
}

func TestProfilesDefaultCC(t *testing.T) {
	if ProfileLinux.DefaultCC() != "cubic" || ProfileWindows.DefaultCC() != "ctcp" || ProfileFreeBSD.DefaultCC() != "reno" {
		t.Fatal("guest profile CC defaults broken")
	}
	if GuestProfile("plan9").DefaultCC() != "cubic" {
		t.Fatal("unknown profile should default to cubic")
	}
}

func TestStatsAccounting(t *testing.T) {
	h := newHarness(t)
	fd := establishedSocket(t, h, Callbacks{})
	h.g.Send(fd, make([]byte, 1000))
	st := h.g.Stats()
	if st.OpsIssued == 0 || st.BytesSent != 1000 {
		t.Fatalf("stats %+v", st)
	}
}

// TestSendToFullQueueFreesChunk pins the ENOBUFS path: when the job
// ring is full, SendTo must fail AND return the already-written
// huge-page chunk to the pool — the descriptor never made it out, so
// nobody else will ever free it.
func TestSendToFullQueueFreesChunk(t *testing.T) {
	// A tiny job ring and no engine draining it, so sends back up.
	pair, err := nkchan.NewPair(nkchan.Config{Queue: nkqueue.Config{Slots: 4}})
	if err != nil {
		t.Fatal(err)
	}
	loop := sim.NewLoop()
	g := New(Config{Clock: loop, VMID: 7, Pair: pair})

	fd := g.SocketDatagram(Callbacks{})
	var e nqe.Element
	if !pair.VMJob.Pop(&e) || e.Op != nqe.OpSocket {
		t.Fatalf("expected OpSocket job, got %+v", e)
	}
	done := nqe.Element{Op: nqe.OpSocket, FD: fd, Seq: e.Seq, Source: nqe.FromCore, Flags: nqe.FlagCompletion}
	pair.VMCompletion.Push(&done)
	pair.KickVM(0)
	if err := g.BindUDP(fd, 5353); err != nil {
		t.Fatal(err)
	}

	// The OpBind occupies one of the four slots; three sends fit.
	payload := []byte("datagram")
	sent := 0
	for ; sent < 8; sent++ {
		if err := g.SendTo(fd, ipv4.Addr{10, 0, 0, 9}, 53, payload); err != nil {
			break
		}
	}
	if sent == 8 {
		t.Fatal("job ring never filled")
	}
	if sent != 3 {
		t.Fatalf("sent %d datagrams before the ring filled, want 3", sent)
	}

	// Each queued send legitimately holds one chunk; the failed one
	// must not.
	pool := pair.Pages
	if free, want := pool.FreeCount(), pool.Chunks()-sent; free != want {
		t.Errorf("pool: %d free of %d, want %d (failed SendTo leaked its chunk)",
			free, pool.Chunks(), want)
	}
	// And the failure is stable, not a one-off: retry fails and still
	// doesn't leak.
	if err := g.SendTo(fd, ipv4.Addr{10, 0, 0, 9}, 53, payload); err == nil {
		t.Fatal("SendTo succeeded on a full ring")
	}
	if free, want := pool.FreeCount(), pool.Chunks()-sent; free != want {
		t.Errorf("pool after retry: %d free, want %d", free, want)
	}
}
