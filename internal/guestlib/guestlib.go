// Package guestlib implements the guest half of NetKernel: the library
// that replaces the in-guest network stack while preserving the socket
// API (§3.1: "the network API methods are intercepted by a NetKernel
// GuestLib in the guest kernel … the only change we make to the tenant
// VM").
//
// Socket calls become nqes in the VM job queue; data travels through
// the shared huge pages; completions and events (new data, new
// connections, establishment) come back through the VM completion and
// receive queues. The prototype interposes on glibc with LD_PRELOAD
// (§4.1); here the application calls GuestLib directly, which is the
// same boundary one layer down.
package guestlib

import (
	"fmt"
	"time"

	"netkernel/internal/nkchan"
	"netkernel/internal/nqe"
	"netkernel/internal/proto/ipv4"
	"netkernel/internal/shm"
	"netkernel/internal/sim"
	"netkernel/internal/telemetry"
)

func shmChunk(off uint64) shm.Chunk { return shm.Chunk{Offset: off} }

// GuestProfile names the guest OS flavor. Its only behavioural content
// is the default congestion control of the guest's *legacy* in-kernel
// stack — exactly the distinction Figure 5 draws between a Windows
// guest (C-TCP) and a Linux guest (CUBIC). A NetKernel guest's traffic
// uses whatever the attached NSM runs, regardless of profile.
type GuestProfile string

// Guest profiles.
const (
	ProfileLinux   GuestProfile = "linux"   // in-kernel default: CUBIC
	ProfileWindows GuestProfile = "windows" // in-kernel default: C-TCP
	ProfileFreeBSD GuestProfile = "freebsd" // in-kernel default: Reno (NewReno)
)

// DefaultCC returns the profile's legacy in-kernel congestion control.
func (p GuestProfile) DefaultCC() string {
	switch p {
	case ProfileWindows:
		return "ctcp"
	case ProfileFreeBSD:
		return "reno"
	default:
		return "cubic"
	}
}

// Callbacks are the application-facing event hooks for one socket —
// the epoll-style notification surface of §3.2.
type Callbacks struct {
	// OnEstablished fires when a Connect completes (err nil) or fails.
	OnEstablished func(err error)
	// OnAcceptable fires when a listener has connections to Accept.
	OnAcceptable func()
	// OnReadable fires when data or EOF is available to Recv.
	OnReadable func()
	// OnWritable fires when Send capacity returns after a short write.
	OnWritable func()
	// OnClose fires when the connection terminates; err nil for clean.
	OnClose func(err error)
}

// Config parameterizes a GuestLib.
type Config struct {
	Clock sim.Clock
	VMID  uint32
	// Pair is the channel to the VM's NSM. For scale-out (§2.1 "scale
	// out with more modules to support higher throughput"), Pairs
	// lists one channel per NSM replica and sockets are spread across
	// them round-robin; set either Pair or Pairs.
	Pair  *nkchan.Pair
	Pairs []*nkchan.Pair
	// SendCredit bounds bytes in the huge pages awaiting the NSM per
	// socket (default 1 MiB): the shm-level send window.
	SendCredit int
	// StallRecovery, when positive, arms a virtual-time retry timer
	// whenever a push finds the job queue full or fault-stalled. The
	// production pipeline is purely kick-driven and leaves this zero;
	// fault-injection harnesses set it so an injected queue stall can
	// delay work but never wedge it (a stall may swallow the very push
	// whose completion would have been the next wakeup).
	StallRecovery time.Duration
	// Metrics, when set, publishes the GuestLib counters into the host
	// telemetry registry (e.g. "vm1.guest.bytes_sent").
	Metrics *telemetry.Scope
	// Tracer, when set and sampling, opens a span for sampled job
	// pushes; the span id rides in the nqe's trace field and each
	// downstream layer stamps a hop against it.
	Tracer *telemetry.Tracer
}

// Stats is a point-in-time copy of the GuestLib counters.
type Stats struct {
	OpsIssued     uint64
	Completions   uint64
	Events        uint64
	BytesSent     uint64
	BytesReceived uint64
	CreditStalls  uint64
	// TxBytesCopied and RxBytesCopied count payload bytes this layer
	// memcpy'd: application buffer → huge-page chunk on send, chunk →
	// application buffer on receive. One copy per byte per direction —
	// the socket-API boundary copies that cannot be elided.
	TxBytesCopied uint64
	RxBytesCopied uint64
	// PollerWakeups counts OnReady invocations; PollerEvents the
	// per-socket readiness notifications those wakeups amortized.
	PollerWakeups uint64
	PollerEvents  uint64
}

// counters is the live atomic form of Stats: management-plane readers
// (VM.CopyReport, registry snapshots) may run on another goroutine
// while the guest issues ops under a wall-clock domain.
type counters struct {
	opsIssued, completions, events         telemetry.Counter
	bytesSent, bytesReceived, creditStalls telemetry.Counter
	txBytesCopied, rxBytesCopied           telemetry.Counter
	// pollerWakeups counts OnReady invocations; pollerEvents counts the
	// per-socket readiness notifications those wakeups amortized.
	// events/wakeups is the measured coalescing ratio (BENCH_rpc.json).
	pollerWakeups, pollerEvents telemetry.Counter
}

func (c *counters) register(m *telemetry.Scope) {
	m.Counter("ops_issued", &c.opsIssued)
	m.Counter("completions", &c.completions)
	m.Counter("events", &c.events)
	m.Counter("bytes_sent", &c.bytesSent)
	m.Counter("bytes_received", &c.bytesReceived)
	m.Counter("credit_stalls", &c.creditStalls)
	m.Counter("tx_bytes_copied", &c.txBytesCopied)
	m.Counter("rx_bytes_copied", &c.rxBytesCopied)
	m.Counter("poller_wakeups", &c.pollerWakeups)
	m.Counter("poller_events", &c.pollerEvents)
}

// opLatency holds the per-op round-trip histograms (nanoseconds of
// virtual time, log2 buckets): the setup/teardown paths the short-flow
// work targets, surfaced in `nkctl stats` and the nkbench micro
// excerpt. Scope.Histogram is nil-safe, so an unmetered GuestLib
// observes into no-ops.
type opLatency struct {
	socketRTT  *telemetry.Histogram // Socket() → OpSocket completion
	connectRTT *telemetry.Histogram // Connect() → OpEstablished
	acceptWait *telemetry.Histogram // OpNewConn arrival → Accept() drain
	closeRTT   *telemetry.Histogram // Close() → OpConnClosed
}

func (l *opLatency) register(m *telemetry.Scope) {
	l.socketRTT = m.Histogram("socket_rtt_ns")
	l.connectRTT = m.Histogram("connect_rtt_ns")
	l.acceptWait = m.Histogram("accept_wait_ns")
	l.closeRTT = m.Histogram("close_rtt_ns")
}

func (c *counters) snapshot() Stats {
	return Stats{
		OpsIssued:     c.opsIssued.Load(),
		Completions:   c.completions.Load(),
		Events:        c.events.Load(),
		BytesSent:     c.bytesSent.Load(),
		BytesReceived: c.bytesReceived.Load(),
		CreditStalls:  c.creditStalls.Load(),
		TxBytesCopied: c.txBytesCopied.Load(),
		RxBytesCopied: c.rxBytesCopied.Load(),
		PollerWakeups: c.pollerWakeups.Load(),
		PollerEvents:  c.pollerEvents.Load(),
	}
}

type sockKind int

const (
	kindStream sockKind = iota
	kindListener
	kindDatagram
)

type sockState int

const (
	stIdle sockState = iota
	stConnecting
	stListening
	stEstablished
	stClosed
)

type socket struct {
	fd    int32
	kind  sockKind
	state sockState
	cbs   Callbacks
	// pair is the NSM-replica channel this socket lives on; shard is
	// the channel shard every nqe of this socket rides (flow
	// affinity): assigned round-robin at creation for guest-created
	// sockets, inherited from the OpNewConn event's arrival shard for
	// accepted ones.
	pair  *nkchan.Pair
	shard int

	// ready turns true once the CoreEngine has installed the fd↔cID
	// mapping (the OpSocket completion, §3.2). Control operations
	// issued before that are deferred, which is what the blocking
	// socket() of the real API amounts to.
	ready    bool
	deferred []nqe.Element

	// Send-side shm credit.
	credit    int
	wantWrite bool

	// closeSent records that OpClose was issued, so Close is
	// idempotent but still works after the peer's EOF (a conn-closed
	// event reports the remote direction closing; the local side must
	// still close to release the NSM connection).
	closeSent bool

	// Receive side: huge-page chunks still owned by this socket, in
	// order. Recv copies straight from the chunk into the caller's
	// buffer and frees each chunk as it is fully consumed — the old
	// intermediate copy into a per-event []byte is gone.
	recvQ    []recvSeg
	recvOff  int
	eof      bool
	closeErr error
	accepts  []int32
	// Datagram receive queue (datagram sockets only).
	dgrams []datagram
	bound  bool

	// inStalled marks membership in GuestLib.stalled, making the stall
	// queue O(ready) instead of a linear dedup scan per mark.
	inStalled bool
	// closedSeen records the OpConnClosed event, so teardown knows when
	// both directions are done and the socket can recycle.
	closedSeen bool

	// Poller attachment (DESIGN.md §11): a polled socket feeds readiness
	// masks into its poller instead of firing per-event OnReadable/
	// OnAcceptable/OnWritable callbacks (OnEstablished and OnClose still
	// fire — they are lifecycle, not readiness). pollMask accumulates
	// events not yet drained by Wait; a zero mask means the socket is
	// not on the poller's ready list.
	poller   *Poller
	pollMask uint32

	// Virtual-time stamps feeding the per-op latency histograms.
	sockStart    sim.Time
	connectStart sim.Time
	closeStart   sim.Time
	acceptedAt   sim.Time
}

type datagram struct {
	src  ipv4.Addr
	port uint16
	data []byte
}

// recvSeg is one received chunk awaiting Recv: the socket holds the
// huge-page reference until the application consumes the bytes (or the
// socket closes).
type recvSeg struct {
	chunk shm.Chunk
	size  int
}

// GuestLib is one tenant VM's NetKernel endpoint.
type GuestLib struct {
	cfg       Config
	pairs     []*nkchan.Pair
	nextPair  int // round-robin socket placement across replicas
	nextShard int // round-robin shard placement within a pair
	sockets  map[int32]*socket
	nextFD   int32
	seq      uint64
	stats    counters
	latency  opLatency
	// pollers lists every live Poller so the pump can deliver the one
	// amortized OnReady wakeup per batch.
	pollers []*Poller
	// sockPool recycles socket structs under connection churn (the
	// guest half of the short-flow slab path). Descriptors stay
	// monotonic — only the structs recycle, so a stale fd can never
	// alias a new connection.
	sockPool []*socket
	// stalled lists sockets whose Send came up short (credit, huge
	// pages, or job-queue space). Every pump revisits them so one
	// greedy socket cannot starve its siblings of queue slots.
	stalled []int32
	// pendingOps holds control operations that found the job queue
	// full; they are retried (in order, ahead of new work) on every
	// pump so a data flood can delay but never lose a connect or
	// close.
	pendingOps []pendingOp
	// drain is the reusable completion/receive batch buffer: one pump
	// pops whole ring spans at a time instead of element by element
	// (§3.2 "batched interrupts").
	drain []nqe.Element
	// retryArmed guards the Config.StallRecovery retry timer.
	retryArmed bool
}

type pendingOp struct {
	pair  *nkchan.Pair
	shard int
	e     nqe.Element
}

// New builds a GuestLib and wires it to its pairs' VM-side kicks.
func New(cfg Config) *GuestLib {
	pairs := cfg.Pairs
	if len(pairs) == 0 && cfg.Pair != nil {
		pairs = []*nkchan.Pair{cfg.Pair}
	}
	if cfg.Clock == nil || len(pairs) == 0 {
		panic("guestlib: Config requires Clock and at least one Pair")
	}
	if cfg.SendCredit <= 0 {
		cfg.SendCredit = 1 << 20
	}
	g := &GuestLib{
		cfg: cfg, pairs: pairs, sockets: make(map[int32]*socket), nextFD: 3,
		drain: make([]nqe.Element, 64),
	}
	g.stats.register(cfg.Metrics)
	g.latency.register(cfg.Metrics)
	for _, p := range pairs {
		p := p
		p.EnsureShards()
		p.KickVM = func(shard int) { g.pump(p, shard) }
	}
	return g
}

// newSocket takes a socket struct from the recycling pool (or the
// heap). Under accept/close churn the pool keeps short-lived
// connections from allocating at all; descriptors are never recycled,
// only the structs behind them.
func (g *GuestLib) newSocket() *socket {
	if n := len(g.sockPool); n > 0 {
		s := g.sockPool[n-1]
		g.sockPool = g.sockPool[:n-1]
		return s
	}
	return &socket{}
}

// releaseSocket retires a fully-closed socket: any receive chunks still
// held go back to the huge-page pool, the descriptor unmaps, and the
// struct recycles. Stale references by fd (the stall queue, a poller's
// ready list) resolve through the map and find nothing.
func (g *GuestLib) releaseSocket(s *socket) {
	for _, seg := range s.recvQ {
		s.pair.Pages.Free(seg.chunk)
	}
	delete(g.sockets, s.fd)
	*s = socket{}
	g.sockPool = append(g.sockPool, s)
}

// Replicas returns how many NSM channels the guest spreads over.
func (g *GuestLib) Replicas() int { return len(g.pairs) }

// Pairs returns the guest's NSM channels (fault-injection surface for
// the chaos suite).
func (g *GuestLib) Pairs() []*nkchan.Pair { return g.pairs }

// noteBackpressure arms the retry timer after a failed push. A no-op
// unless Config.StallRecovery is set: the kick-driven pipeline recovers
// full queues through completion traffic on its own, and only injected
// faults can strand work with no inbound kick due. One timer serves the
// whole GuestLib; it re-arms itself while backlog remains.
func (g *GuestLib) noteBackpressure() {
	if g.cfg.StallRecovery <= 0 || g.retryArmed {
		return
	}
	g.retryArmed = true
	g.cfg.Clock.AfterFunc(g.cfg.StallRecovery, func() {
		g.retryArmed = false
		g.retryBacklog()
	})
}

// retryBacklog replays queued control operations and write-stalled
// sockets without waiting for an inbound kick.
func (g *GuestLib) retryBacklog() {
	for len(g.pendingOps) > 0 {
		op := g.pendingOps[0]
		if !g.push(op.pair, op.shard, &op.e) {
			break
		}
		g.pendingOps = g.pendingOps[1:]
	}
	g.wakeStalled()
	g.deliverWakeups()
	for _, p := range g.pairs {
		for i := range p.Shards {
			p.Shards[i].VMJob.Flush()
		}
	}
	if len(g.pendingOps) > 0 {
		g.noteBackpressure()
	}
}

// Stats returns a copy of the counters, read atomically.
func (g *GuestLib) Stats() Stats { return g.stats.snapshot() }

func (g *GuestLib) push(pair *nkchan.Pair, shard int, e *nqe.Element) bool {
	e.VMID = g.cfg.VMID
	e.Source = nqe.FromVM
	g.seq++
	e.Seq = g.seq
	if shard < 0 || shard >= len(pair.Shards) {
		shard = 0
	}
	job := pair.Shards[shard].VMJob
	// The send-path span opens here: the sampled element carries its
	// span id in the wire record, and a failed push keeps the id so the
	// retried element still belongs to the same span (the span then
	// measures queueing delay too).
	if tr := g.cfg.Tracer; tr.Enabled() && e.Trace == 0 {
		e.Trace = tr.Start("tx:" + e.Op.String())
	}
	if !job.Push(e) {
		return false
	}
	g.stats.opsIssued.Inc()
	g.cfg.Tracer.Stamp(e.Trace, "guestlib.enqueue", int64(job.Len()))
	if pair.KickEngineVM != nil {
		pair.KickEngineVM(shard)
	}
	return true
}

// placeSocket picks the pair and shard a new socket lives on: pairs
// round-robin (replica spread), then shards round-robin within the
// pair (pump spread). Deterministic given creation order.
func (g *GuestLib) placeSocket() (*nkchan.Pair, int) {
	pair := g.pairs[g.nextPair%len(g.pairs)]
	g.nextPair++
	shard := g.nextShard % pair.NumShards()
	g.nextShard++
	return pair, shard
}

// Socket creates a stream socket and returns its descriptor. (The
// paper has the CoreEngine assign descriptor values; GuestLib drawing
// them from a CoreEngine-granted range is equivalent and saves the
// round trip — the descriptor space still lives outside the guest
// kernel.)
func (g *GuestLib) Socket(cbs Callbacks) int32 {
	fd := g.nextFD
	g.nextFD++
	pair, shard := g.placeSocket()
	s := g.newSocket()
	s.fd, s.kind, s.cbs, s.credit, s.pair, s.shard = fd, kindStream, cbs, g.cfg.SendCredit, pair, shard
	s.sockStart = g.cfg.Clock.Now()
	g.sockets[fd] = s
	e := nqe.Element{Op: nqe.OpSocket, FD: fd}
	if len(g.pendingOps) > 0 || !g.push(pair, shard, &e) {
		g.pendingOps = append(g.pendingOps, pendingOp{pair: pair, shard: shard, e: e})
		g.noteBackpressure()
	}
	return fd
}

// SocketDatagram creates a UDP socket served by the NSM's stack. The
// datagram API is SendTo/RecvFrom; OnReadable fires per arrival.
func (g *GuestLib) SocketDatagram(cbs Callbacks) int32 {
	fd := g.nextFD
	g.nextFD++
	pair, shard := g.placeSocket()
	s := g.newSocket()
	s.fd, s.kind, s.cbs, s.credit, s.pair, s.shard = fd, kindDatagram, cbs, g.cfg.SendCredit, pair, shard
	s.sockStart = g.cfg.Clock.Now()
	g.sockets[fd] = s
	e := nqe.Element{Op: nqe.OpSocket, FD: fd, Arg0: 1 /* datagram */}
	if len(g.pendingOps) > 0 || !g.push(pair, shard, &e) {
		g.pendingOps = append(g.pendingOps, pendingOp{pair: pair, shard: shard, e: e})
		g.noteBackpressure()
	}
	return fd
}

// BindUDP binds a datagram socket to a local port (0 = ephemeral).
func (g *GuestLib) BindUDP(fd int32, port uint16) error {
	s := g.sockets[fd]
	if s == nil || s.kind != kindDatagram {
		return fmt.Errorf("guestlib: fd %d is not a datagram socket", fd)
	}
	if s.bound {
		return fmt.Errorf("guestlib: fd %d already bound", fd)
	}
	s.bound = true
	g.pushWhenReady(s, &nqe.Element{Op: nqe.OpBind, FD: fd, Arg0: uint64(port)})
	return nil
}

// SendTo transmits one datagram. Datagrams are bounded by the shm
// chunk size (one descriptor each); oversize payloads are refused.
func (g *GuestLib) SendTo(fd int32, addr ipv4.Addr, port uint16, payload []byte) error {
	s := g.sockets[fd]
	if s == nil || s.kind != kindDatagram {
		return fmt.Errorf("guestlib: fd %d is not a datagram socket", fd)
	}
	if len(payload) > s.pair.ChunkSize() {
		return fmt.Errorf("guestlib: datagram of %d bytes exceeds the %d-byte chunk", len(payload), s.pair.ChunkSize())
	}
	if !s.bound {
		// BSD semantics: sending on an unbound datagram socket binds it
		// to an ephemeral port implicitly.
		if err := g.BindUDP(fd, 0); err != nil {
			return err
		}
	}
	chunk, ok := s.pair.Pages.AllocSized(len(payload), s.shard)
	if !ok {
		return fmt.Errorf("guestlib: huge pages exhausted")
	}
	s.pair.Pages.Write(chunk, payload)
	g.stats.txBytesCopied.Add(uint64(len(payload)))
	e := &nqe.Element{
		Op: nqe.OpSend, FD: fd,
		DataOff: chunk.Offset, DataLen: uint32(len(payload)),
		Arg0: nqe.PackAddr(addr, port),
	}
	if !g.pushWhenReadyData(s, e) {
		s.pair.Pages.Free(chunk)
		return fmt.Errorf("guestlib: job queue full")
	}
	g.stats.bytesSent.Add(uint64(len(payload)))
	return nil
}

// pushWhenReadyData is pushWhenReady for descriptor-carrying elements:
// they cannot be retried from a copy after the chunk is freed, so a
// full queue is reported to the caller instead.
func (g *GuestLib) pushWhenReadyData(s *socket, e *nqe.Element) bool {
	if !s.ready {
		s.deferred = append(s.deferred, *e)
		return true
	}
	return g.push(s.pair, s.shard, e)
}

// RecvFrom pops one received datagram into buf.
func (g *GuestLib) RecvFrom(fd int32, buf []byte) (n int, src ipv4.Addr, port uint16, ok bool) {
	s := g.sockets[fd]
	if s == nil || s.kind != kindDatagram || len(s.dgrams) == 0 {
		return 0, ipv4.Addr{}, 0, false
	}
	d := s.dgrams[0]
	s.dgrams = s.dgrams[1:]
	n = copy(buf, d.data)
	g.stats.rxBytesCopied.Add(uint64(n))
	g.stats.bytesReceived.Add(uint64(n))
	return n, d.src, d.port, true
}

// Connect begins a three-way handshake to remote through the NSM's
// stack. The result arrives via OnEstablished. Asynchronous, like the
// §3.2 flow ("the application is returned right away").
func (g *GuestLib) Connect(fd int32, addr ipv4.Addr, port uint16) error {
	s, err := g.stream(fd)
	if err != nil {
		return err
	}
	if s.state != stIdle {
		return fmt.Errorf("guestlib: connect on %v socket", s.state)
	}
	s.state = stConnecting
	s.connectStart = g.cfg.Clock.Now()
	g.pushWhenReady(s, &nqe.Element{Op: nqe.OpConnect, FD: fd, Arg0: nqe.PackAddr(addr, port)})
	return nil
}

// pushWhenReady defers control operations until the CoreEngine has the
// socket's mapping installed, and queues them for retry when the job
// queue is full.
func (g *GuestLib) pushWhenReady(s *socket, e *nqe.Element) {
	if !s.ready {
		s.deferred = append(s.deferred, *e)
		return
	}
	if len(g.pendingOps) > 0 || !g.push(s.pair, s.shard, e) {
		g.pendingOps = append(g.pendingOps, pendingOp{pair: s.pair, shard: s.shard, e: *e})
		g.noteBackpressure()
	}
}

// Listen converts the socket into a listener on port.
func (g *GuestLib) Listen(fd int32, port uint16, backlog int) error {
	s, err := g.stream(fd)
	if err != nil {
		return err
	}
	if s.state != stIdle {
		return fmt.Errorf("guestlib: listen on %v socket", s.state)
	}
	s.kind = kindListener
	s.state = stListening
	g.pushWhenReady(s, &nqe.Element{Op: nqe.OpListen, FD: fd, Arg0: uint64(port), Arg1: uint64(backlog)})
	return nil
}

// Accept pops an established connection from a listener's queue,
// returning its descriptor. ok is false when none is pending.
func (g *GuestLib) Accept(lfd int32) (fd int32, ok bool) {
	s := g.sockets[lfd]
	if s == nil || s.kind != kindListener || len(s.accepts) == 0 {
		return 0, false
	}
	fd = s.accepts[0]
	s.accepts = s.accepts[1:]
	if as := g.sockets[fd]; as != nil {
		g.latency.acceptWait.Observe(uint64(g.cfg.Clock.Now().Sub(as.acceptedAt)))
	}
	return fd, true
}

// AcceptBatch drains up to len(fds) pending accepted connections from a
// listener in one call — the guest end of ServiceLib's spanned
// OpNewConn batches. It returns how many descriptors were written. A
// connection whose socket already died (reset before the drain) still
// occupies a slot; the caller sees its OnClose like any other.
func (g *GuestLib) AcceptBatch(lfd int32, fds []int32) int {
	s := g.sockets[lfd]
	if s == nil || s.kind != kindListener || len(s.accepts) == 0 {
		return 0
	}
	n := copy(fds, s.accepts)
	s.accepts = s.accepts[n:]
	now := g.cfg.Clock.Now()
	for _, fd := range fds[:n] {
		if as := g.sockets[fd]; as != nil {
			g.latency.acceptWait.Observe(uint64(now.Sub(as.acceptedAt)))
		}
	}
	return n
}

// SetCallbacks replaces a socket's event hooks (used for accepted
// connections, which exist before the application sees them).
func (g *GuestLib) SetCallbacks(fd int32, cbs Callbacks) error {
	s := g.sockets[fd]
	if s == nil {
		return fmt.Errorf("guestlib: bad fd %d", fd)
	}
	s.cbs = cbs
	return nil
}

// Send copies data into the shared huge pages and queues send jobs,
// returning the number of bytes accepted. A short return means the shm
// credit or huge pages ran out; OnWritable fires when capacity returns.
// This is exactly §3.2's send path: "GuestLib intercepts the call and
// puts the data into the huge pages. Meanwhile it adds an nqe with a
// write operation to the VM job queue along with the data descriptor."
func (g *GuestLib) Send(fd int32, p []byte) int {
	s, err := g.stream(fd)
	if err != nil || s.state != stEstablished {
		return 0
	}
	chunkSize := s.pair.ChunkSize()
	total := 0
	for len(p) > 0 {
		if s.credit <= 0 {
			g.markStalled(s)
			g.stats.creditStalls.Inc()
			break
		}
		n := min(min(chunkSize, len(p)), s.credit)
		// Short-flow slab path: a tiny message takes a small-class chunk
		// instead of cycling a bulk chunk through the free lists.
		chunk, ok := s.pair.Pages.AllocSized(n, s.shard)
		if !ok {
			g.markStalled(s)
			g.stats.creditStalls.Inc()
			break
		}
		s.pair.Pages.Write(chunk, p[:n])
		g.stats.txBytesCopied.Add(uint64(n))
		e := &nqe.Element{
			Op: nqe.OpSend, FD: fd,
			DataOff: chunk.Offset, DataLen: uint32(n),
		}
		if len(p) > n {
			e.Flags |= nqe.FlagMoreData
		}
		if !g.push(s.pair, s.shard, e) {
			s.pair.Pages.Free(chunk)
			g.markStalled(s)
			// A fault-stalled job queue may never kick us back; under
			// injected faults a timer retries (no-op otherwise).
			g.noteBackpressure()
			break
		}
		s.credit -= n
		total += n
		p = p[n:]
	}
	g.stats.bytesSent.Add(uint64(total))
	return total
}

// Recv drains received data into buf; eof reports a consumed FIN.
func (g *GuestLib) Recv(fd int32, buf []byte) (n int, eof bool) {
	s := g.sockets[fd]
	if s == nil {
		return 0, true
	}
	for n < len(buf) && len(s.recvQ) > 0 {
		head := s.recvQ[0]
		src := s.pair.Pages.Bytes(head.chunk)[s.recvOff:head.size]
		m := copy(buf[n:], src)
		n += m
		s.recvOff += m
		if s.recvOff == head.size {
			s.pair.Pages.Free(head.chunk)
			s.recvQ = s.recvQ[1:]
			s.recvOff = 0
		}
	}
	if n > 0 {
		g.stats.rxBytesCopied.Add(uint64(n))
		g.stats.bytesReceived.Add(uint64(n))
		// Return receive credit so the NSM keeps reading (§3.2 recv()
		// "simply checks and copies new data in the VM receive queue").
		g.push(s.pair, s.shard, &nqe.Element{Op: nqe.OpRecv, FD: fd, Arg0: uint64(n)})
	}
	return n, s.eof && len(s.recvQ) == 0
}

// ReadAvailable returns buffered receive bytes.
func (g *GuestLib) ReadAvailable(fd int32) int {
	s := g.sockets[fd]
	if s == nil {
		return 0
	}
	total := -s.recvOff
	for _, c := range s.recvQ {
		total += c.size
	}
	return total
}

// SetSockOpt sets a socket option (§4.1 lists setsockopt among the
// intercepted calls). Options are the nqe.SockOpt* constants.
func (g *GuestLib) SetSockOpt(fd int32, opt, value uint64) error {
	s := g.sockets[fd]
	if s == nil {
		return fmt.Errorf("guestlib: bad fd %d", fd)
	}
	g.pushWhenReady(s, &nqe.Element{Op: nqe.OpSetSockOpt, FD: fd, Arg0: opt, Arg1: value})
	return nil
}

// Close initiates shutdown; OnClose fires on completion. Closing after
// the peer's EOF is both legal and required to release the connection.
func (g *GuestLib) Close(fd int32) {
	s := g.sockets[fd]
	if s == nil || s.closeSent {
		return
	}
	s.closeSent = true
	s.closeStart = g.cfg.Clock.Now()
	// The application is done reading: return any unconsumed receive
	// chunks to the pool (and discard late arrivals in handleEvent).
	for _, seg := range s.recvQ {
		s.pair.Pages.Free(seg.chunk)
	}
	s.recvQ = nil
	s.recvOff = 0
	// A closing listener orphans accepted-but-undrained connections;
	// close them too so their NSM state unwinds instead of idling
	// forever behind a descriptor nobody holds.
	if s.kind == kindListener {
		orphans := s.accepts
		s.accepts = nil
		for _, afd := range orphans {
			g.Close(afd)
		}
	}
	g.pushWhenReady(s, &nqe.Element{Op: nqe.OpClose, FD: fd})
	// Both directions are already down (the peer's OpConnClosed came
	// first): nothing further will ever arrive for this socket, so it
	// recycles. (Before it is ready, deferred still holds the OpClose —
	// the struct must survive until the replay.) The release defers to
	// the executor: Close is often called from inside the OpConnClosed
	// delivery that announced the peer's close, and that handler still
	// has callbacks (OnClose) to run against this socket. The fd-map
	// re-check makes the posted release a no-op if the event handler
	// already retired the descriptor itself.
	if s.closedSeen && s.ready {
		g.cfg.Clock.Post(func() {
			if g.sockets[fd] == s && s.closeSent {
				g.releaseSocket(s)
			}
		})
	}
}

func (g *GuestLib) stream(fd int32) (*socket, error) {
	s := g.sockets[fd]
	if s == nil {
		return nil, fmt.Errorf("guestlib: bad fd %d", fd)
	}
	if s.kind != kindStream {
		return nil, fmt.Errorf("guestlib: fd %d is not a stream socket", fd)
	}
	return s, nil
}

// pump drains one pair's VM completion and receive queues in batches
// (whole ring spans per pop, §3.2 "batched interrupts"). It runs on the
// clock executor when the CoreEngine kicks the VM side.
func (g *GuestLib) pump(pair *nkchan.Pair, shard int) {
	if shard < 0 || shard >= len(pair.Shards) {
		shard = 0
	}
	rings := &pair.Shards[shard]
	for {
		n := rings.VMCompletion.PopBatch(g.drain)
		if n == 0 {
			break
		}
		g.stats.completions.Add(uint64(n))
		for i := range g.drain[:n] {
			g.handleCompletion(pair, &g.drain[i])
		}
	}
	for {
		n := rings.VMReceive.PopBatch(g.drain)
		if n == 0 {
			break
		}
		g.stats.events.Add(uint64(n))
		for i := range g.drain[:n] {
			g.handleEvent(pair, shard, &g.drain[i])
		}
	}
	for len(g.pendingOps) > 0 {
		op := g.pendingOps[0]
		if !g.push(op.pair, op.shard, &op.e) {
			break
		}
		g.pendingOps = g.pendingOps[1:]
	}
	if len(g.pendingOps) > 0 {
		g.noteBackpressure()
	}
	g.wakeStalled()
	// One amortized OnReady per poller covers every socket that became
	// ready in this batch — the wakeup coalescing the rpc experiment
	// measures.
	g.deliverWakeups()
	// The pump produced jobs (credits, retried ops); deliver any
	// partial doorbell batch before going idle. Credits ride the
	// receiving socket's own shard, which may differ from the pumped
	// one, so every shard's job ring flushes.
	for i := range pair.Shards {
		pair.Shards[i].VMJob.Flush()
	}
}

// wakeStalled revisits write-stalled sockets in stall order once per
// pump, so freed queue slots and returned credit are shared instead of
// monopolized by whichever socket stalls last. The visit costs O(ready):
// each socket carries its membership flag, so marking is an append and
// waking never rescans sockets that already left the queue.
func (g *GuestLib) wakeStalled() {
	if len(g.stalled) == 0 {
		return
	}
	pending := g.stalled
	g.stalled = nil
	for _, fd := range pending {
		s := g.sockets[fd]
		if s == nil {
			continue
		}
		s.inStalled = false
		if !s.wantWrite {
			continue
		}
		if s.credit <= 0 {
			g.markStalled(s) // still out of credit; wait for completions
			continue
		}
		s.wantWrite = false
		if s.poller != nil {
			// Polled sockets get coalesced writable readiness instead of
			// a per-socket callback.
			g.pollerNotify(s, nqe.ReadyWritable)
			continue
		}
		if s.cbs.OnWritable != nil {
			s.cbs.OnWritable()
		}
	}
}

func (g *GuestLib) markStalled(s *socket) {
	s.wantWrite = true
	if s.inStalled {
		return
	}
	s.inStalled = true
	g.stalled = append(g.stalled, s.fd)
}

// A Poller is the guest's epoll-style readiness surface (DESIGN.md
// §11): sockets Add to it, the pipeline coalesces their transitions
// into OpReady batches, and the application drains them with Wait.
// Where the per-event callback path costs one OnReadable per data
// event, a poller costs one OnReady per delivery batch — 10k sparse
// connections wake the application once, not 10k times.
type Poller struct {
	g *GuestLib
	// OnReady fires at most once per delivery batch when at least one
	// polled socket has undrained readiness. Typically it drains with
	// Wait (re-entering GuestLib is safe — wakeups deliver after the
	// rings are drained).
	OnReady func()

	ready       []int32 // fds with a non-zero pollMask, transition order
	wakePending bool
}

// PollEvent is one ready socket reported by Wait.
type PollEvent struct {
	FD     int32
	Events uint32 // ORed nqe.Ready* masks since the last drain
}

// NewPoller creates a poller. onReady may be nil for pure Wait-loop use.
func (g *GuestLib) NewPoller(onReady func()) *Poller {
	p := &Poller{g: g, OnReady: onReady}
	g.pollers = append(g.pollers, p)
	return p
}

// Add registers a socket for coalesced readiness. Per-event
// OnReadable/OnAcceptable/OnWritable callbacks stop firing for it;
// OnEstablished and OnClose still do (lifecycle, not readiness). State
// the socket already holds — buffered data, pending accepts, a seen
// EOF — replays immediately so a late-attached poller never sleeps
// through it.
func (p *Poller) Add(fd int32) error {
	g := p.g
	s := g.sockets[fd]
	if s == nil {
		return fmt.Errorf("guestlib: bad fd %d", fd)
	}
	if s.poller != nil && s.poller != p {
		return fmt.Errorf("guestlib: fd %d already belongs to another poller", fd)
	}
	s.poller = p
	g.pushWhenReady(s, &nqe.Element{Op: nqe.OpPollCtl, FD: fd, Arg0: 1})
	var mask uint32
	if len(s.recvQ) > 0 || len(s.dgrams) > 0 || s.eof {
		mask |= nqe.ReadyReadable
	}
	if len(s.accepts) > 0 {
		mask |= nqe.ReadyAcceptable
	}
	if s.state == stClosed {
		mask |= nqe.ReadyClosed
	}
	if mask != 0 {
		g.pollerNotify(s, mask)
		// Deliver on the executor, not synchronously under the caller.
		g.cfg.Clock.Post(func() { g.deliverWakeups() })
	}
	return nil
}

// Remove deregisters a socket; per-event callbacks resume.
func (p *Poller) Remove(fd int32) error {
	g := p.g
	s := g.sockets[fd]
	if s == nil || s.poller != p {
		return fmt.Errorf("guestlib: fd %d is not on this poller", fd)
	}
	s.poller = nil
	s.pollMask = 0 // a stale ready-list entry now skips in Wait
	g.pushWhenReady(s, &nqe.Element{Op: nqe.OpPollCtl, FD: fd, Arg0: 0})
	return nil
}

// Wait drains ready sockets into events without blocking, returning how
// many it wrote. Sockets keep accumulating masks between drains; a
// socket reported once does not reappear until a new transition.
func (p *Poller) Wait(events []PollEvent) int {
	n, i := 0, 0
	for i < len(p.ready) && n < len(events) {
		fd := p.ready[i]
		i++
		s := p.g.sockets[fd]
		if s == nil || s.poller != p || s.pollMask == 0 {
			continue // released, removed, or already drained
		}
		events[n] = PollEvent{FD: fd, Events: s.pollMask}
		s.pollMask = 0
		n++
	}
	p.ready = p.ready[i:]
	return n
}

// Close detaches the poller from its sockets and the GuestLib.
func (p *Poller) Close() {
	g := p.g
	for _, s := range g.sockets {
		if s.poller == p {
			s.poller = nil
			s.pollMask = 0
		}
	}
	for i, q := range g.pollers {
		if q == p {
			g.pollers = append(g.pollers[:i], g.pollers[i+1:]...)
			break
		}
	}
	p.ready = nil
	p.wakePending = false
}

// pollerNotify records a readiness transition on the socket's poller.
// First transition since the last drain appends to the ready list;
// repeats just OR into the mask. The wakeup itself is deferred to
// deliverWakeups so a batch of transitions costs one OnReady.
func (g *GuestLib) pollerNotify(s *socket, mask uint32) {
	p := s.poller
	if p == nil || mask == 0 {
		return
	}
	g.stats.pollerEvents.Inc()
	if s.pollMask == 0 {
		p.ready = append(p.ready, s.fd)
	}
	s.pollMask |= mask
	p.wakePending = true
}

// deliverWakeups fires each poller's OnReady at most once for
// everything that became ready since the last delivery — the amortized
// wakeup the rpc experiment measures against per-event callbacks.
func (g *GuestLib) deliverWakeups() {
	for _, p := range g.pollers {
		if !p.wakePending {
			continue
		}
		p.wakePending = false
		if len(p.ready) == 0 || p.OnReady == nil {
			continue
		}
		g.stats.pollerWakeups.Inc()
		p.OnReady()
	}
}

func (g *GuestLib) handleCompletion(pair *nkchan.Pair, e *nqe.Element) {
	s := g.sockets[e.FD]
	if s == nil {
		return
	}
	switch e.Op {
	case nqe.OpSend:
		// The NSM consumed a chunk: credit returns.
		s.credit += int(e.DataLen)
	case nqe.OpSocket:
		if e.Status != nqe.StatusOK {
			// The CoreEngine could not install the mapping (the NSM
			// crashed or rejected the socket): dead on arrival. Deferred
			// operations are dropped; the application learns through the
			// usual terminal callbacks.
			s.deferred = nil
			wasConnecting := s.state == stConnecting
			wasClosed := s.state == stClosed
			s.state = stClosed
			s.eof = true
			s.closeErr = e.Status.Err()
			if wasConnecting && s.cbs.OnEstablished != nil {
				s.cbs.OnEstablished(s.closeErr)
			}
			if !wasClosed && s.cbs.OnClose != nil {
				s.cbs.OnClose(s.closeErr)
			}
			return
		}
		g.latency.socketRTT.Observe(uint64(g.cfg.Clock.Now().Sub(s.sockStart)))
		// The CoreEngine installed the fd↔cID mapping: deferred control
		// operations may flow. A full job queue reroutes them through
		// the retry backlog rather than dropping them.
		s.ready = true
		for i := range s.deferred {
			op := s.deferred[i]
			if len(g.pendingOps) > 0 || !g.push(s.pair, s.shard, &op) {
				g.pendingOps = append(g.pendingOps, pendingOp{pair: s.pair, shard: s.shard, e: op})
				g.noteBackpressure()
			}
		}
		s.deferred = nil
	case nqe.OpPollCtl:
		// Registration acknowledged; nothing to do. (A StatusInvalid —
		// the socket died NSM-side before the ctl landed — is not a
		// connection error: the OpConnClosed event carries that.)
	case nqe.OpListen, nqe.OpRecv, nqe.OpClose, nqe.OpSetSockOpt:
		// Status-only completions.
		if e.Status != nqe.StatusOK && s.cbs.OnClose != nil && s.state != stClosed {
			s.state = stClosed
			s.cbs.OnClose(e.Status.Err())
		}
	}
}

func (g *GuestLib) handleEvent(pair *nkchan.Pair, shard int, e *nqe.Element) {
	// A traced receive-path element completes its span on delivery to
	// the guest — the mirror of the send path's stack-TX end.
	g.cfg.Tracer.End(e.Trace, "guestlib.deliver")
	s := g.sockets[e.FD]
	switch e.Op {
	case nqe.OpEstablished:
		if s == nil {
			return
		}
		g.latency.connectRTT.Observe(uint64(g.cfg.Clock.Now().Sub(s.connectStart)))
		if e.Status == nqe.StatusOK {
			s.state = stEstablished
		} else {
			s.state = stClosed
		}
		if s.cbs.OnEstablished != nil {
			s.cbs.OnEstablished(e.Status.Err())
		}
	case nqe.OpNewConn:
		// CoreEngine already assigned the new connection's fd (§3.2:
		// "CoreEngine generates a new socket fd on behalf of the VM for
		// the new flow"); it arrives in Arg1.
		if s == nil || s.kind != kindListener {
			return
		}
		newFD := int32(e.Arg1)
		// The accepted socket inherits the shard its OpNewConn rode in
		// on — the flow's hash shard, where the engine installed its
		// mapping. Every element it ever sends stays there.
		as := g.newSocket()
		as.fd, as.kind, as.state = newFD, kindStream, stEstablished
		as.credit, as.ready, as.pair, as.shard = g.cfg.SendCredit, true, s.pair, shard
		as.acceptedAt = g.cfg.Clock.Now()
		g.sockets[newFD] = as
		s.accepts = append(s.accepts, newFD)
		if s.poller != nil {
			// A polled listener coalesces: one acceptable bit, however
			// many connections landed, drained via AcceptBatch.
			g.pollerNotify(s, nqe.ReadyAcceptable)
		} else if len(s.accepts) == 1 && s.cbs.OnAcceptable != nil {
			s.cbs.OnAcceptable()
		}
	case nqe.OpNewData:
		if s == nil || s.closeSent {
			// No socket to own the chunk (stale fd, or the application
			// already closed): return it to the pool instead of leaking.
			pair.Pages.Free(shmChunk(e.DataOff))
			return
		}
		if s.kind == kindDatagram {
			// Datagrams copy out immediately: each carries its source
			// address and the queue is not a byte stream.
			data := make([]byte, e.DataLen)
			pair.Pages.Read(shmChunk(e.DataOff), data, int(e.DataLen))
			g.stats.rxBytesCopied.Add(uint64(e.DataLen))
			pair.Pages.Free(shmChunk(e.DataOff))
			src, port := nqe.UnpackAddr(e.Arg0)
			s.dgrams = append(s.dgrams, datagram{src: src, port: port, data: data})
		} else {
			// Streams keep the chunk: Recv copies straight from it into
			// the application buffer, eliding the intermediate copy.
			s.recvQ = append(s.recvQ, recvSeg{chunk: shmChunk(e.DataOff), size: int(e.DataLen)})
		}
		if s.poller != nil {
			g.pollerNotify(s, nqe.ReadyReadable)
		} else if s.cbs.OnReadable != nil {
			s.cbs.OnReadable()
		}
	case nqe.OpConnClosed:
		if s == nil {
			return
		}
		if e.Status != nqe.StatusOK {
			// Abortive close (reset, timeout, module crash): undelivered
			// receive data is discarded, BSD-style — return the chunks.
			for _, seg := range s.recvQ {
				pair.Pages.Free(seg.chunk)
			}
			s.recvQ = nil
			s.recvOff = 0
		}
		s.eof = true
		s.closedSeen = true
		wasClosed := s.state == stClosed
		s.state = stClosed
		s.closeErr = e.Status.Err()
		if s.poller != nil {
			g.pollerNotify(s, nqe.ReadyClosed|nqe.ReadyReadable)
		} else if s.cbs.OnReadable != nil {
			s.cbs.OnReadable() // EOF is readable
		}
		if !wasClosed && s.cbs.OnClose != nil {
			s.cbs.OnClose(s.closeErr)
		}
		// The guest had already closed its side: the handshake is
		// complete and the descriptor retires. (s.closeSent re-read
		// because an OnClose handler may have called Close itself,
		// releasing the socket already — the zeroed struct reads false.)
		if s.closeSent {
			g.latency.closeRTT.Observe(uint64(g.cfg.Clock.Now().Sub(s.closeStart)))
			g.releaseSocket(s)
		}

	case nqe.OpReady:
		// Coalesced readiness. The chunk form packs Arg0 (id, mask)
		// entries — ids are fds after engine translation; the
		// descriptorless form carries one socket in FD with its mask in
		// Arg1. Entries for recycled fds are skipped: readiness is a
		// hint, the authoritative state arrived with the data events
		// ahead of this element.
		if e.DataLen == 0 {
			if s != nil {
				g.pollerNotify(s, uint32(e.Arg1))
			}
			return
		}
		buf := pair.Pages.Bytes(shmChunk(e.DataOff))
		n := int(e.Arg0)
		if fit := int(e.DataLen) / nqe.ReadyEntrySize; n > fit {
			n = fit
		}
		for i := 0; i < n; i++ {
			id, mask := nqe.ReadyEntryAt(buf, i)
			if rs := g.sockets[int32(id)]; rs != nil {
				g.pollerNotify(rs, mask)
			}
		}
		pair.Pages.Free(shmChunk(e.DataOff))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
