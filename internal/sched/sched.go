// Package sched provides the resource-allocation machinery the paper's
// §5 calls for: "The resource allocation and scheduling of the NSMs …
// needs to be strategically managed and optimized when we use a NSM to
// serve multiple VMs concurrently while providing QoS guarantees."
//
// It offers three primitives:
//
//   - TokenBucket: per-tenant rate enforcement (throughput SLAs, §2.1).
//   - DRR: deficit-round-robin weighted sharing of one NSM's capacity
//     across multiplexed tenant VMs.
//   - ReplicaSet: scale-out flow placement across several NSM instances
//     (§2.1 "scale out with more modules to support higher throughput").
package sched

import (
	"time"

	"netkernel/internal/sim"
)

// A Shaper grants or defers byte transmissions. ServiceLib consults one
// per tenant on its send path.
type Shaper interface {
	// Take requests n bytes. When denied, retry suggests how long to
	// wait before asking again.
	Take(n int) (ok bool, retry time.Duration)
	// Refund returns bytes that were granted but not actually sent.
	Refund(n int)
}

// Unlimited is a Shaper that always grants.
type Unlimited struct{}

// Take implements Shaper.
func (Unlimited) Take(int) (bool, time.Duration) { return true, 0 }

// Refund implements Shaper.
func (Unlimited) Refund(int) {}

// TokenBucket enforces an average rate with a burst allowance.
type TokenBucket struct {
	clock  sim.Clock
	rate   float64 // bytes per second
	burst  float64 // bucket depth, bytes
	tokens float64
	last   sim.Time
}

// NewTokenBucket builds a bucket; burst <= 0 defaults to 1/10 s of
// rate (min 64 KB).
func NewTokenBucket(clock sim.Clock, bytesPerSec float64, burst int) *TokenBucket {
	if bytesPerSec <= 0 {
		panic("sched: non-positive rate")
	}
	b := float64(burst)
	if burst <= 0 {
		b = bytesPerSec / 10
		if b < 64<<10 {
			b = 64 << 10
		}
	}
	return &TokenBucket{clock: clock, rate: bytesPerSec, burst: b, tokens: b, last: clock.Now()}
}

// Rate returns the configured rate in bytes/sec.
func (tb *TokenBucket) Rate() float64 { return tb.rate }

func (tb *TokenBucket) refill() {
	now := tb.clock.Now()
	tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	tb.last = now
}

// Take implements Shaper.
func (tb *TokenBucket) Take(n int) (bool, time.Duration) {
	tb.refill()
	need := float64(n)
	if tb.tokens >= need {
		tb.tokens -= need
		return true, 0
	}
	wait := time.Duration((need - tb.tokens) / tb.rate * float64(time.Second))
	if wait < time.Microsecond {
		wait = time.Microsecond
	}
	return false, wait
}

// Refund implements Shaper.
func (tb *TokenBucket) Refund(n int) {
	tb.tokens += float64(n)
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
}

// DRR is a deficit-round-robin scheduler (Shreedhar & Varghese): each
// flow receives service proportional to its weight, in byte units,
// regardless of item sizes. Next serves one item per call.
type DRR struct {
	quantumUnit int
	flows       []*Flow
	cursor      int
	current     *Flow // flow being served within its current turn
}

// Flow is one DRR queue.
type Flow struct {
	weight  int
	quantum int
	deficit int
	items   []drrItem
	served  uint64 // bytes served, for tests and monitoring
}

type drrItem struct {
	payload any
	size    int
}

// NewDRR builds an empty scheduler. quantumUnit is the byte quantum per
// weight point per round (default 1500, one MTU).
func NewDRR(quantumUnit int) *DRR {
	if quantumUnit <= 0 {
		quantumUnit = 1500
	}
	return &DRR{quantumUnit: quantumUnit, cursor: -1}
}

// AddFlow registers a flow with the given weight (minimum 1).
func (d *DRR) AddFlow(weight int) *Flow {
	if weight < 1 {
		weight = 1
	}
	f := &Flow{weight: weight, quantum: weight * d.quantumUnit}
	d.flows = append(d.flows, f)
	return f
}

// Enqueue adds an item of the given size to the flow.
func (f *Flow) Enqueue(payload any, size int) {
	f.items = append(f.items, drrItem{payload: payload, size: size})
}

// Len returns the flow's queued item count.
func (f *Flow) Len() int { return len(f.items) }

// Served returns the cumulative bytes this flow has been served.
func (f *Flow) Served() uint64 { return f.served }

// Next returns the next item under weighted fairness, or false when
// every flow is empty.
func (d *DRR) Next() (any, bool) {
	queued := false
	for _, f := range d.flows {
		if len(f.items) > 0 {
			queued = true
			break
		}
	}
	if !queued {
		return nil, false
	}
	for {
		if f := d.current; f != nil {
			if len(f.items) > 0 && f.items[0].size <= f.deficit {
				it := f.items[0]
				f.items = f.items[1:]
				f.deficit -= it.size
				f.served += uint64(it.size)
				if len(f.items) == 0 {
					f.deficit = 0
					d.current = nil
				}
				return it.payload, true
			}
			d.current = nil // turn exhausted
		}
		d.cursor = (d.cursor + 1) % len(d.flows)
		f := d.flows[d.cursor]
		if len(f.items) == 0 {
			f.deficit = 0
			continue
		}
		f.deficit += f.quantum
		d.current = f
	}
}

// ReplicaSet places flows across NSM replicas by symmetric hash, so a
// tenant scaling out keeps per-flow affinity.
type ReplicaSet[T any] struct {
	replicas []T
}

// NewReplicaSet builds a set.
func NewReplicaSet[T any](replicas ...T) *ReplicaSet[T] {
	return &ReplicaSet[T]{replicas: replicas}
}

// Add appends a replica (scale-out event).
func (r *ReplicaSet[T]) Add(replica T) { r.replicas = append(r.replicas, replica) }

// Len returns the replica count.
func (r *ReplicaSet[T]) Len() int { return len(r.replicas) }

// Pick selects the replica for a flow key (e.g. FNV of the 4-tuple).
func (r *ReplicaSet[T]) Pick(flowHash uint32) T {
	if len(r.replicas) == 0 {
		panic("sched: empty replica set")
	}
	return r.replicas[int(flowHash)%len(r.replicas)]
}

// FlowHash hashes connection identifiers for Pick; it is symmetric in
// the endpoints so both directions agree.
func FlowHash(ipA, ipB [4]byte, portA, portB uint16) uint32 {
	h := func(ip [4]byte, port uint16) uint32 {
		v := uint32(ip[0])<<24 | uint32(ip[1])<<16 | uint32(ip[2])<<8 | uint32(ip[3])
		return v*31 + uint32(port)
	}
	a, b := h(ipA, portA), h(ipB, portB)
	return a ^ b
}
