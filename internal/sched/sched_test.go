package sched

import (
	"testing"
	"time"

	"netkernel/internal/sim"
)

func TestTokenBucketEnforcesRate(t *testing.T) {
	loop := sim.NewLoop()
	tb := NewTokenBucket(loop, 1e6, 10000) // 1 MB/s, 10 KB burst

	// Burst drains immediately.
	granted := 0
	for {
		ok, _ := tb.Take(1000)
		if !ok {
			break
		}
		granted += 1000
	}
	if granted != 10000 {
		t.Fatalf("burst granted %d, want 10000", granted)
	}

	// Sustained rate: taking in 10 ms steps for 100 ms grants ≈100 KB.
	granted = 0
	for step := 0; step < 10; step++ {
		loop.RunFor(10 * time.Millisecond)
		for {
			ok, _ := tb.Take(1000)
			if !ok {
				break
			}
			granted += 1000
		}
	}
	if granted < 95000 || granted > 105000 {
		t.Fatalf("sustained 100ms granted %d, want ≈100000", granted)
	}
}

func TestTokenBucketRetryHint(t *testing.T) {
	loop := sim.NewLoop()
	tb := NewTokenBucket(loop, 1e6, 1000)
	tb.Take(1000) // drain the burst
	ok, retry := tb.Take(800)
	if ok {
		t.Fatal("over-budget take granted")
	}
	// 800 bytes at 1 MB/s = 0.8 ms.
	if retry < 700*time.Microsecond || retry > 900*time.Microsecond {
		t.Fatalf("retry hint %v, want ≈0.8ms", retry)
	}
	loop.RunFor(retry)
	if ok, _ := tb.Take(800); !ok {
		t.Fatal("take still denied after the hinted wait")
	}
}

func TestTokenBucketBurstCap(t *testing.T) {
	loop := sim.NewLoop()
	tb := NewTokenBucket(loop, 1e6, 1000)
	loop.RunFor(time.Hour) // tokens must not accumulate past burst
	if ok, _ := tb.Take(2000); ok {
		t.Fatal("bucket exceeded its burst depth")
	}
	if ok, _ := tb.Take(1000); !ok {
		t.Fatal("full burst unavailable")
	}
}

func TestUnlimitedShaper(t *testing.T) {
	var s Shaper = Unlimited{}
	for i := 0; i < 100; i++ {
		if ok, _ := s.Take(1 << 30); !ok {
			t.Fatal("Unlimited denied")
		}
	}
}

func TestDRRWeightedShares(t *testing.T) {
	d := NewDRR(1500)
	heavy := d.AddFlow(2)
	light := d.AddFlow(1)
	for i := 0; i < 1000; i++ {
		heavy.Enqueue("h", 1500)
		light.Enqueue("l", 1500)
	}
	for i := 0; i < 900; i++ {
		if _, ok := d.Next(); !ok {
			t.Fatal("scheduler dried up early")
		}
	}
	ratio := float64(heavy.Served()) / float64(light.Served())
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("service ratio %.2f, want ≈2.0", ratio)
	}
}

func TestDRRUnevenItemSizes(t *testing.T) {
	// Byte fairness, not packet fairness: a flow of small packets gets
	// the same byte share as a flow of large ones.
	d := NewDRR(1500)
	small := d.AddFlow(1)
	big := d.AddFlow(1)
	for i := 0; i < 3000; i++ {
		small.Enqueue("s", 100)
	}
	for i := 0; i < 200; i++ {
		big.Enqueue("b", 1500)
	}
	for i := 0; i < 2000; i++ {
		if _, ok := d.Next(); !ok {
			break
		}
	}
	sm, bg := float64(small.Served()), float64(big.Served())
	if sm/bg < 0.8 || sm/bg > 1.25 {
		t.Fatalf("byte shares small=%v big=%v, want ≈equal", sm, bg)
	}
}

func TestDRREmptyAndDrain(t *testing.T) {
	d := NewDRR(0)
	if _, ok := d.Next(); ok {
		t.Fatal("empty scheduler served something")
	}
	f := d.AddFlow(1)
	f.Enqueue(42, 500)
	v, ok := d.Next()
	if !ok || v.(int) != 42 {
		t.Fatalf("Next = %v, %v", v, ok)
	}
	if _, ok := d.Next(); ok {
		t.Fatal("drained scheduler served something")
	}
	if f.Len() != 0 {
		t.Fatal("flow length wrong")
	}
}

func TestDRROversizeItem(t *testing.T) {
	// An item bigger than one quantum must still be served (after
	// enough rounds), not wedge the scheduler.
	d := NewDRR(100)
	a := d.AddFlow(1)
	b := d.AddFlow(1)
	a.Enqueue("big", 1000)
	b.Enqueue("small", 50)
	seen := map[string]bool{}
	for i := 0; i < 2; i++ {
		v, ok := d.Next()
		if !ok {
			t.Fatal("scheduler wedged on oversize item")
		}
		seen[v.(string)] = true
	}
	if !seen["big"] || !seen["small"] {
		t.Fatalf("served %v", seen)
	}
}

func TestReplicaSetAffinity(t *testing.T) {
	rs := NewReplicaSet("nsm1", "nsm2", "nsm3")
	if rs.Len() != 3 {
		t.Fatal("Len broken")
	}
	h := FlowHash([4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}, 5000, 80)
	first := rs.Pick(h)
	for i := 0; i < 10; i++ {
		if rs.Pick(h) != first {
			t.Fatal("same flow moved replicas")
		}
	}
	// Symmetric: both directions land on the same replica.
	h2 := FlowHash([4]byte{10, 0, 0, 2}, [4]byte{10, 0, 0, 1}, 80, 5000)
	if h != h2 {
		t.Fatal("FlowHash not symmetric")
	}
}

func TestReplicaSetSpreads(t *testing.T) {
	rs := NewReplicaSet(0, 1, 2, 3)
	counts := make([]int, 4)
	for port := uint16(0); port < 1000; port++ {
		idx := rs.Pick(FlowHash([4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}, 49152+port, 80))
		counts[idx]++
	}
	for i, c := range counts {
		if c < 150 {
			t.Fatalf("replica %d got only %d of 1000 flows: %v", i, c, counts)
		}
	}
}

func TestReplicaSetGrowth(t *testing.T) {
	rs := NewReplicaSet("a")
	rs.Add("b")
	if rs.Len() != 2 {
		t.Fatal("Add broken")
	}
}
