package ethernet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMarshalParseRoundTrip(t *testing.T) {
	h := Header{
		Dst:  MAC{2, 0, 0, 0, 0, 1},
		Src:  MAC{2, 0, 0, 0, 0, 2},
		Type: TypeIPv4,
	}
	payload := []byte("payload bytes")
	frame := make([]byte, HeaderLen+len(payload))
	h.Marshal(frame)
	copy(frame[HeaderLen:], payload)

	got, pl, err := Parse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("header = %+v, want %+v", got, h)
	}
	if !bytes.Equal(pl, payload) {
		t.Fatalf("payload = %q", pl)
	}
}

func TestParseShortFrame(t *testing.T) {
	if _, _, err := Parse(make([]byte, HeaderLen-1)); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	err := quick.Check(func(dst, src [6]byte, typ uint16) bool {
		h := Header{Dst: MAC(dst), Src: MAC(src), Type: EtherType(typ)}
		b := make([]byte, HeaderLen)
		h.Marshal(b)
		got, _, err := Parse(b)
		return err == nil && got == h
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPayloadAliasesFrame(t *testing.T) {
	frame := make([]byte, HeaderLen+4)
	_, pl, _ := Parse(frame)
	pl[0] = 0x5a
	if frame[HeaderLen] != 0x5a {
		t.Fatal("payload does not alias the frame (zero-copy contract)")
	}
}

func TestBroadcastClassification(t *testing.T) {
	if !Broadcast.IsBroadcast() {
		t.Fatal("Broadcast not classified as broadcast")
	}
	if (MAC{2, 0, 0, 0, 0, 1}).IsBroadcast() {
		t.Fatal("unicast classified as broadcast")
	}
	if !(MAC{0x01, 0, 0x5e, 0, 0, 1}).IsBroadcast() {
		t.Fatal("multicast not classified as group-addressed")
	}
}

func TestStrings(t *testing.T) {
	if TypeIPv4.String() != "IPv4" || TypeARP.String() != "ARP" {
		t.Fatal("known EtherType names broken")
	}
	if EtherType(0x86dd).String() != "0x86dd" {
		t.Fatal("unknown EtherType formatting broken")
	}
	if (MAC{0xde, 0xad, 0xbe, 0xef, 0, 1}).String() != "de:ad:be:ef:00:01" {
		t.Fatal("MAC formatting broken")
	}
}
