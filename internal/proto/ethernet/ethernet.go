// Package ethernet implements Ethernet II framing for the simulated
// fabric.
package ethernet

import (
	"encoding/binary"
	"fmt"
)

// HeaderLen is the Ethernet II header size (no VLAN tag).
const HeaderLen = 14

// MTU is the standard Ethernet payload limit.
const MTU = 1500

// MAC is a hardware address.
type MAC [6]byte

// Broadcast is the all-ones address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether the address has the group bit set.
func (m MAC) IsBroadcast() bool { return m[0]&1 == 1 }

// EtherType identifies the payload protocol.
type EtherType uint16

// EtherTypes used by the stack.
const (
	TypeIPv4 EtherType = 0x0800
	TypeARP  EtherType = 0x0806
)

func (t EtherType) String() string {
	switch t {
	case TypeIPv4:
		return "IPv4"
	case TypeARP:
		return "ARP"
	default:
		return fmt.Sprintf("0x%04x", uint16(t))
	}
}

// Header is a decoded Ethernet II header.
type Header struct {
	Dst  MAC
	Src  MAC
	Type EtherType
}

// Marshal writes the header into b, which must be at least HeaderLen
// bytes.
func (h *Header) Marshal(b []byte) {
	_ = b[HeaderLen-1]
	copy(b[0:6], h.Dst[:])
	copy(b[6:12], h.Src[:])
	binary.BigEndian.PutUint16(b[12:14], uint16(h.Type))
}

// Parse decodes the header from frame and returns the payload, which
// aliases frame.
func Parse(frame []byte) (Header, []byte, error) {
	if len(frame) < HeaderLen {
		return Header{}, nil, fmt.Errorf("ethernet: frame of %d bytes shorter than header", len(frame))
	}
	var h Header
	copy(h.Dst[:], frame[0:6])
	copy(h.Src[:], frame[6:12])
	h.Type = EtherType(binary.BigEndian.Uint16(frame[12:14]))
	return h, frame[HeaderLen:], nil
}
