package udp

import (
	"bytes"
	"testing"
	"testing/quick"

	"netkernel/internal/proto/ipv4"
)

var (
	srcAddr = ipv4.Addr{10, 0, 0, 1}
	dstAddr = ipv4.Addr{10, 0, 0, 2}
)

func TestMarshalParseRoundTrip(t *testing.T) {
	h := Header{SrcPort: 5353, DstPort: 53}
	payload := []byte("dns query")
	dg := h.Marshal(srcAddr, dstAddr, payload)
	got, pl, err := Parse(srcAddr, dstAddr, dg)
	if err != nil {
		t.Fatal(err)
	}
	if got != h || !bytes.Equal(pl, payload) {
		t.Fatalf("round trip: %+v %q", got, pl)
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	dg := (&Header{SrcPort: 1, DstPort: 2}).Marshal(srcAddr, dstAddr, []byte("data"))
	dg[HeaderLen] ^= 0xff
	if _, _, err := Parse(srcAddr, dstAddr, dg); err == nil {
		t.Fatal("corrupt datagram accepted")
	}
	// Checksum covers the pseudo-header: wrong addresses must fail too.
	dg2 := (&Header{SrcPort: 1, DstPort: 2}).Marshal(srcAddr, dstAddr, []byte("data"))
	if _, _, err := Parse(srcAddr, ipv4.Addr{9, 9, 9, 9}, dg2); err == nil {
		t.Fatal("datagram accepted under wrong destination")
	}
}

func TestParseBounds(t *testing.T) {
	if _, _, err := Parse(srcAddr, dstAddr, make([]byte, 4)); err == nil {
		t.Fatal("short datagram accepted")
	}
	dg := (&Header{SrcPort: 1, DstPort: 2}).Marshal(srcAddr, dstAddr, []byte("abc"))
	dg[4], dg[5] = 0xff, 0xff // length beyond buffer
	if _, _, err := Parse(srcAddr, dstAddr, dg); err == nil {
		t.Fatal("oversize length field accepted")
	}
}

func TestParseStripsEthernetPadding(t *testing.T) {
	dg := (&Header{SrcPort: 7, DstPort: 9}).Marshal(srcAddr, dstAddr, []byte("hi"))
	padded := append(dg, make([]byte, 20)...)
	_, pl, err := Parse(srcAddr, dstAddr, padded)
	if err != nil {
		t.Fatal(err)
	}
	if string(pl) != "hi" {
		t.Fatalf("payload %q", pl)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	err := quick.Check(func(sp, dp uint16, payload []byte, s, d [4]byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		h := Header{SrcPort: sp, DstPort: dp}
		dg := h.Marshal(ipv4.Addr(s), ipv4.Addr(d), payload)
		got, pl, err := Parse(ipv4.Addr(s), ipv4.Addr(d), dg)
		return err == nil && got == h && bytes.Equal(pl, payload)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}
