// Package udp implements the UDP header with pseudo-header
// checksumming.
package udp

import (
	"encoding/binary"
	"fmt"

	"netkernel/internal/proto/inet"
	"netkernel/internal/proto/ipv4"
)

// HeaderLen is the UDP header size.
const HeaderLen = 8

// Header is a decoded UDP header.
type Header struct {
	SrcPort uint16
	DstPort uint16
}

// Marshal serializes header + payload into a fresh datagram, computing
// the checksum over the IPv4 pseudo-header.
func (h *Header) Marshal(src, dst ipv4.Addr, payload []byte) []byte {
	b := make([]byte, HeaderLen+len(payload))
	binary.BigEndian.PutUint16(b[0:], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:], h.DstPort)
	binary.BigEndian.PutUint16(b[4:], uint16(len(b)))
	copy(b[HeaderLen:], payload)
	sum := inet.Checksum(b, inet.PseudoHeaderSum(src, dst, ipv4.ProtoUDP, len(b)))
	if sum == 0 {
		sum = 0xffff // RFC 768: transmitted zero means "no checksum"
	}
	binary.BigEndian.PutUint16(b[6:], sum)
	return b
}

// Parse decodes and validates a datagram; payload aliases b.
func Parse(src, dst ipv4.Addr, b []byte) (Header, []byte, error) {
	if len(b) < HeaderLen {
		return Header{}, nil, fmt.Errorf("udp: datagram of %d bytes shorter than header", len(b))
	}
	length := int(binary.BigEndian.Uint16(b[4:]))
	if length < HeaderLen || length > len(b) {
		return Header{}, nil, fmt.Errorf("udp: length field %d outside datagram of %d", length, len(b))
	}
	if binary.BigEndian.Uint16(b[6:]) != 0 { // zero means sender skipped it
		if !inet.Verify(b[:length], inet.PseudoHeaderSum(src, dst, ipv4.ProtoUDP, length)) {
			return Header{}, nil, fmt.Errorf("udp: checksum mismatch")
		}
	}
	return Header{
		SrcPort: binary.BigEndian.Uint16(b[0:]),
		DstPort: binary.BigEndian.Uint16(b[2:]),
	}, b[HeaderLen:length], nil
}
