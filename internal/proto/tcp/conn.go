package tcp

import (
	"fmt"
	"time"

	"netkernel/internal/proto/ipv4"
	"netkernel/internal/sim"
	"netkernel/internal/tcpcc"
	"netkernel/internal/telemetry"
)

// State is a TCP connection state (RFC 793 §3.2).
type State int

// Connection states.
const (
	StateClosed State = iota
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateClosing
	StateLastAck
	StateTimeWait
)

func (s State) String() string {
	return [...]string{
		"closed", "syn-sent", "syn-rcvd", "established", "fin-wait-1",
		"fin-wait-2", "close-wait", "closing", "last-ack", "time-wait",
	}[s]
}

// AddrPort is one endpoint of a connection.
type AddrPort struct {
	Addr ipv4.Addr
	Port uint16
}

func (a AddrPort) String() string { return fmt.Sprintf("%v:%d", a.Addr, a.Port) }

// OutputFunc transmits one segment. The connection fills in ports,
// sequence numbers and options; the caller (the stack) wraps it in
// IP + Ethernet and hands it to the NIC. ecnCapable asks for ECT(0)
// marking on the IP header.
type OutputFunc func(h *Header, payload []byte, ecnCapable bool)

// Config parameterizes a connection.
type Config struct {
	Clock sim.Clock
	RNG   *sim.RNG

	Local, Remote AddrPort

	// MSS is the maximum segment payload. Defaults to 1460.
	MSS int
	// SendBufSize and RecvBufSize bound the buffers. Default 1 MiB.
	SendBufSize, RecvBufSize int
	// CC is the connection's congestion control; required.
	CC tcpcc.Algorithm
	// MinRTO floors the retransmission timeout (default 200 ms, like
	// Linux; benchmarks on microsecond-RTT fabrics lower it).
	MinRTO time.Duration
	// MSL is the maximum segment lifetime; TIME_WAIT lasts 2·MSL
	// (default 1 s, scaled down from the traditional 2 min for
	// simulation practicality).
	MSL time.Duration
	// DelayedAckTimeout bounds ack delay (default 40 ms).
	DelayedAckTimeout time.Duration
	// Nagle enables RFC 896 coalescing of small segments.
	Nagle bool
	// ISS, when non-nil, overrides the initial send sequence number.
	// The port recycler uses it to start a connection that reuses a
	// TIME_WAIT port pair beyond the predecessor's final sequence, so
	// the peer's lingering state accepts the new SYN (RFC 6191).
	ISS *uint32

	// Output transmits segments; required.
	Output OutputFunc

	// OnEstablished fires once when the handshake completes or fails.
	OnEstablished func(err error)
	// OnReadable fires when data (or EOF) becomes available.
	OnReadable func()
	// OnWritable fires when send-buffer space frees after Write
	// returned short.
	OnWritable func()
	// OnClose fires once when the connection fully terminates; err is
	// nil for a clean close.
	OnClose func(err error)

	// CopiedTx and CopiedRx, when non-nil, aggregate the connection's
	// payload memcpy counters into a stack-wide ledger that survives
	// connection teardown. The copy-budget accounting (DESIGN.md §8)
	// reads them; they have no effect on the datapath. Atomic because
	// the ledger is read by management-plane snapshots on other
	// goroutines while connections run.
	CopiedTx, CopiedRx *telemetry.Counter
	// Retrans, when non-nil, aggregates retransmitted segments into the
	// same kind of stack-wide cumulative ledger.
	Retrans *telemetry.Counter
}

func (c *Config) fillDefaults() {
	if c.MSS <= 0 {
		c.MSS = 1460
	}
	if c.SendBufSize <= 0 {
		c.SendBufSize = 1 << 20
	}
	if c.RecvBufSize <= 0 {
		c.RecvBufSize = 1 << 20
	}
	if c.MinRTO <= 0 {
		c.MinRTO = 200 * time.Millisecond
	}
	if c.MSL <= 0 {
		c.MSL = time.Second
	}
	if c.DelayedAckTimeout <= 0 {
		c.DelayedAckTimeout = 40 * time.Millisecond
	}
}

// Stats counts a connection's activity.
type Stats struct {
	BytesSent    uint64 // payload bytes passed to Output (incl. rexmit)
	BytesRcvd    uint64 // in-order payload bytes delivered to the app side
	BytesAcked   uint64 // payload bytes cumulatively acknowledged
	SegsSent     uint64
	SegsRcvd     uint64
	Retransmits  uint64
	FastRexmits  uint64
	RTOs         uint64
	DupAcks      uint64
	ECNEchoes    uint64
	SRTT         time.Duration
	MinRTT       time.Duration
	DeliveryRate float64 // latest bytes/sec estimate

	// TxBytesCopied and RxBytesCopied count payload bytes this layer
	// memcpy'd on the send and receive paths. The zero-copy datapath
	// keeps both near zero on streaming transfers: WriteOwned spans go
	// out as views, and an installed receive sink bypasses rcvBuf.
	TxBytesCopied uint64
	RxBytesCopied uint64
}

// segMeta tracks one transmitted segment for retransmission and rate
// sampling.
type segMeta struct {
	seq             uint32
	length          int
	sentAt          sim.Time
	deliveredAtSend uint64
	// deliveredTimeAtSend is when the delivered counter reached
	// deliveredAtSend; rate samples span from there to the ack,
	// which keeps burst cumulative acks (after loss recovery) from
	// inflating the estimate.
	deliveredTimeAtSend sim.Time
	appLimited          bool
	retransmitted       bool
	sacked              bool
	fin                 bool
}

type oooSeg struct {
	seq  uint32
	data []byte
	fin  bool
}

// Conn is one TCP connection. All methods must be invoked on the
// configured Clock's executor; callbacks are delivered there too.
type Conn struct {
	cfg   Config
	state State

	// Send sequence state (RFC 793 names).
	iss    uint32
	sndUna uint32
	sndNxt uint32
	sndMax uint32 // highest sequence ever sent (survives RTO rewind)
	sndWnd int    // peer's advertised window, scaled to bytes

	sndBuf    *sendBuffer // bytes in [sndUna+…, ) not yet acknowledged
	finQueued bool
	finSent   bool
	finSeq    uint32

	peerWScale uint8
	ourWScale  uint8
	sackOK     bool

	// Retransmission machinery.
	rto      time.Duration
	srtt     time.Duration
	rttvar   time.Duration
	rtoTimer sim.Timer
	inflight []*segMeta
	backoff  int

	// Recovery (NewReno + SACK-lite).
	dupAcks    int
	inRecovery bool
	recover    uint32
	lastAckSeq uint32

	// Rate sampling (for BBR).
	delivered     uint64
	deliveredAt   sim.Time // when the delivered counter last advanced
	appLtdUntil   uint64
	pendingSample tcpcc.AckSample

	// Receive sequence state.
	irs      uint32
	rcvNxt   uint32
	rcvBuf   *byteRing
	sink     func(p []byte) int
	ooo      []oooSeg
	oooBytes int
	finRcvd  bool

	// Acking.
	delackTimer  sim.Timer
	lastOOOSeq   uint32 // seq of the most recent out-of-order arrival
	sackRotate   uint32 // rotates secondary SACK blocks across runs
	unackedSegs  int
	lastAdvWnd   int
	lastDataCE   bool
	ecnEnabled   bool
	ecnReactedAt sim.Time

	// Pacing.
	paceNext   sim.Time
	paceTimer  sim.Timer
	pacePinned bool

	persistTimer  sim.Timer
	timeWaitTimer sim.Timer
	// timeWaitDeadline is when the TIME_WAIT timer fires; migration
	// snapshots carry the remaining wait instead of restarting 2·MSL.
	timeWaitDeadline sim.Time

	cc        tcpcc.Algorithm
	ctrl      tcpcc.Control
	wantWrite bool
	closed    bool
	stats     Stats
	ownerHook func()

	// onEstablishedFired guards the one-shot handshake callback.
	onEstablishedFired bool
}

// newConn builds the shared parts of active and passive connections.
func newConn(cfg Config) *Conn {
	cfg.fillDefaults()
	if cfg.Clock == nil || cfg.Output == nil || cfg.CC == nil {
		panic("tcp: Config requires Clock, Output, and CC")
	}
	c := &Conn{
		cfg:    cfg,
		sndBuf: newSendBuffer(cfg.SendBufSize),
		rcvBuf: newByteRing(cfg.RecvBufSize),
		cc:     cfg.CC,
		rto:    time.Second,
	}
	if c.rto < cfg.MinRTO {
		c.rto = cfg.MinRTO
	}
	// Window scale large enough to advertise the whole receive buffer.
	for ws := uint8(0); ws <= 14; ws++ {
		if cfg.RecvBufSize>>ws <= 0xffff {
			c.ourWScale = ws
			break
		}
		c.ourWScale = 14
	}
	c.ctrl.MSS = cfg.MSS
	c.cc.Init(&c.ctrl, cfg.Clock.Now().Duration())
	c.stats.MinRTT = -1
	switch {
	case cfg.ISS != nil:
		c.iss = *cfg.ISS
	case cfg.RNG != nil:
		c.iss = uint32(cfg.RNG.Uint64())
	default:
		c.iss = uint32(cfg.Clock.Now())
	}
	return c
}

// Dial opens an active connection: it transmits a SYN immediately.
func Dial(cfg Config) *Conn {
	c := newConn(cfg)
	c.state = StateSynSent
	c.sndUna = c.iss
	c.sndNxt = c.iss + 1
	c.sndMax = c.sndNxt
	c.sendSYN(false)
	c.armRTO()
	return c
}

// newPassive builds a connection for a listener that just received the
// given SYN.
func newPassive(cfg Config, syn *Header, ecnRequested bool) *Conn {
	c := newConn(cfg)
	c.state = StateSynRcvd
	c.irs = syn.Seq
	c.rcvNxt = syn.Seq + 1
	c.sndUna = c.iss
	c.sndNxt = c.iss + 1
	c.sndMax = c.sndNxt
	c.applySynOptions(&syn.Opts)
	c.sndWnd = int(syn.Window) // SYN windows are unscaled
	c.ecnEnabled = ecnRequested && c.cc.NeedsECN()
	c.sendSYN(true)
	c.armRTO()
	return c
}

// State returns the connection state.
func (c *Conn) State() State { return c.state }

// Stats returns a copy of the connection counters.
func (c *Conn) Stats() Stats { return c.stats }

// LocalAddr returns the local endpoint.
func (c *Conn) LocalAddr() AddrPort { return c.cfg.Local }

// RemoteAddr returns the remote endpoint.
func (c *Conn) RemoteAddr() AddrPort { return c.cfg.Remote }

// CongestionControl exposes the connection's CC instance (monitoring).
func (c *Conn) CongestionControl() tcpcc.Algorithm { return c.cc }

// SetCallbacks installs application callbacks after the fact — the
// accept path needs this, since a passive connection exists before the
// application sees it.
func (c *Conn) SetCallbacks(onReadable, onWritable func(), onClose func(error)) {
	c.cfg.OnReadable = onReadable
	c.cfg.OnWritable = onWritable
	c.cfg.OnClose = onClose
}

// CWnd returns the current congestion window in bytes.
func (c *Conn) CWnd() int { return c.ctrl.CWnd }

func (c *Conn) applySynOptions(o *Options) {
	if o.MSS != 0 && int(o.MSS) < c.cfg.MSS {
		c.cfg.MSS = int(o.MSS)
		c.ctrl.MSS = c.cfg.MSS
	}
	if o.WScaleOK {
		c.peerWScale = o.WScale
	} else {
		c.ourWScale = 0 // both sides must support scaling
	}
	c.sackOK = o.SACKPermitted
}

func (c *Conn) sendSYN(synAck bool) {
	h := &Header{
		Flags:  FlagSYN,
		Seq:    c.iss,
		Window: uint16(min(c.rcvBuf.Free(), 0xffff)),
		Opts: Options{
			MSS:           uint16(c.cfg.MSS),
			WScale:        c.ourWScale,
			WScaleOK:      true,
			SACKPermitted: true,
		},
	}
	if synAck {
		h.Flags |= FlagACK
		h.Ack = c.rcvNxt
		if c.ecnEnabled {
			h.Flags |= FlagECE
		}
	} else if c.cc.NeedsECN() {
		// RFC 3168 §6.1.1: ECN-setup SYN carries ECE+CWR.
		h.Flags |= FlagECE | FlagCWR
	}
	c.transmit(h, nil, false)
}

// Write appends data to the send buffer and starts transmission,
// returning the number of bytes accepted (possibly 0 when the buffer is
// full; OnWritable will fire when space frees).
func (c *Conn) Write(p []byte) int {
	if c.closed || c.finQueued || c.state == StateClosed {
		return 0
	}
	n := c.sndBuf.Write(p)
	c.countCopyTx(n)
	if n < len(p) {
		c.wantWrite = true
	}
	if c.state == StateEstablished || c.state == StateCloseWait {
		c.trySend()
	}
	return n
}

// WriteOwned appends a caller-owned span to the send buffer without
// copying. Acceptance is all-or-nothing: on true the connection owns
// the span and will call release exactly once — when the last covering
// byte is cumulatively ACKed, or on teardown; on false ownership stays
// with the caller (release does not fire) and OnWritable will signal
// when buffer space frees. Segments, including retransmissions, read
// the span in place, so release genuinely marks the end of its
// retransmission lifetime (DESIGN.md §8).
func (c *Conn) WriteOwned(data []byte, release func()) bool {
	if c.closed || c.finQueued || c.state == StateClosed {
		return false
	}
	if !c.sndBuf.WriteOwned(data, release) {
		c.wantWrite = true
		return false
	}
	if c.state == StateEstablished || c.state == StateCloseWait {
		c.trySend()
	}
	return true
}

// WriteBufferFree returns the free space in the send buffer.
func (c *Conn) WriteBufferFree() int { return c.sndBuf.Free() }

// WriteBufferCap returns the send buffer's total capacity.
func (c *Conn) WriteBufferCap() int { return c.sndBuf.Cap() }

// Read drains up to len(p) bytes of in-order received data. eof turns
// true once the peer's FIN is consumed and the buffer is empty.
func (c *Conn) Read(p []byte) (n int, eof bool) {
	n = c.rcvBuf.Read(p)
	if n > 0 {
		c.countCopyRx(n)
		c.maybeSendWindowUpdate()
	}
	return n, c.finRcvd && c.rcvBuf.Empty()
}

// SetReceiveSink installs a direct delivery path: in-order payload
// arriving while rcvBuf is empty is offered to fn, which returns the
// bytes it consumed. Consumed bytes never touch rcvBuf (the receive-side
// copy is elided); any remainder falls back into rcvBuf, whose fill
// closes the advertised window — so a sink that refuses (e.g. because
// the shm receive window is exhausted) degrades into ordinary buffered
// flow control rather than losing data. Pass nil to uninstall.
func (c *Conn) SetReceiveSink(fn func(p []byte) int) { c.sink = fn }

// ReadAvailable returns the bytes ready for Read.
func (c *Conn) ReadAvailable() int { return c.rcvBuf.Len() }

// Close starts a graceful shutdown: remaining buffered data is sent,
// then a FIN.
func (c *Conn) Close() {
	if c.closed || c.finQueued {
		return
	}
	switch c.state {
	case StateSynSent:
		c.teardown(nil)
		return
	case StateEstablished, StateSynRcvd, StateCloseWait:
		c.finQueued = true
		c.trySend()
	default:
	}
}

// Abort resets the connection immediately.
func (c *Conn) Abort() {
	if c.closed {
		return
	}
	if c.state != StateClosed && c.state != StateTimeWait {
		h := &Header{Flags: FlagRST | FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt}
		c.transmit(h, nil, false)
	}
	c.teardown(fmt.Errorf("tcp: connection aborted"))
}

// Kill tears the connection down immediately and silently: no RST, no
// FIN, no further transmission of any kind. It models the process (or
// whole stack) hosting the connection dying; the peer discovers the
// death through its own timers or the successor stack's RSTs.
func (c *Conn) Kill(err error) {
	c.teardown(err)
}

// teardown finalizes the connection and stops every timer.
func (c *Conn) teardown(err error) {
	if c.closed {
		return
	}
	c.closed = true
	c.state = StateClosed
	for _, t := range []sim.Timer{c.rtoTimer, c.delackTimer, c.paceTimer, c.persistTimer, c.timeWaitTimer} {
		if t != nil {
			t.Stop()
		}
	}
	// Any spans still unacknowledged die with the connection: fire their
	// release hooks so borrowed huge-page chunks return to the pool.
	c.sndBuf.ReleaseAll()
	if !c.onEstablishedFired && c.cfg.OnEstablished != nil {
		c.onEstablishedFired = true
		e := err
		if e == nil {
			e = fmt.Errorf("tcp: closed before establishment")
		}
		c.cfg.OnEstablished(e)
	}
	if c.ownerHook != nil {
		c.ownerHook()
	}
	if c.cfg.OnClose != nil {
		c.cfg.OnClose(err)
	}
}

// SetNagle toggles RFC 896 coalescing at runtime (setsockopt
// TCP_NODELAY, inverted).
func (c *Conn) SetNagle(on bool) { c.cfg.Nagle = on }

// NagleEnabled reports whether RFC 896 coalescing is active.
func (c *Conn) NagleEnabled() bool { return c.cfg.Nagle }

// SetOwnerHook registers an owner (stack) hook invoked once on final
// teardown, before the application's OnClose. The owning stack uses it
// to deregister the connection from its demux table; SetCallbacks does
// not disturb it.
func (c *Conn) SetOwnerHook(fn func()) { c.ownerHook = fn }

func (c *Conn) establish() {
	c.state = StateEstablished
	if !c.onEstablishedFired {
		c.onEstablishedFired = true
		if c.cfg.OnEstablished != nil {
			c.cfg.OnEstablished(nil)
		}
	}
	c.trySend()
}

// reset handles an inbound RST.
func (c *Conn) reset() {
	err := fmt.Errorf("tcp: connection reset by peer")
	if c.state == StateSynSent {
		err = fmt.Errorf("tcp: connection refused")
	}
	c.teardown(err)
}

// Input processes one inbound segment. ceMarked reports an IP-level
// ECN congestion-experienced codepoint.
func (c *Conn) Input(h *Header, payload []byte, ceMarked bool) {
	if c.closed {
		return
	}
	c.stats.SegsRcvd++

	if h.Flags&FlagRST != 0 {
		// RFC 5961-lite: only accept an in-window RST.
		if c.state == StateSynSent || (seqGEQ(h.Seq, c.rcvNxt) && seqLT(h.Seq, c.rcvNxt+uint32(max(c.rcvBuf.Free(), 1)))) {
			c.reset()
		}
		return
	}

	switch c.state {
	case StateSynSent:
		c.inputSynSent(h)
		return
	case StateSynRcvd:
		if h.Flags&FlagSYN != 0 { // retransmitted SYN: re-ack
			c.sendSYN(true)
			return
		}
		if h.Flags&FlagACK != 0 && h.Ack == c.sndNxt {
			c.sndUna = h.Ack
			c.clearInflightUpTo(h.Ack)
			c.sndWnd = int(h.Window) << c.peerWScale
			c.establish()
			// Fall through to normal processing for any payload.
		} else if h.Flags&FlagACK != 0 {
			return // stale ack
		}
	case StateTimeWait:
		// Sequence validation on port reuse (RFC 6191 flavour): a fresh
		// SYN whose ISN lies beyond everything this incarnation saw is a
		// genuine new connection from a recycled port pair, not a
		// delayed duplicate — tear the wait down so the listener can
		// serve it. A SYN at or below rcvNxt stays ignored: accepting it
		// could splice old-incarnation segments into the new stream.
		if h.Flags&FlagSYN != 0 && h.Flags&FlagACK == 0 && seqGT(h.Seq, c.rcvNxt) {
			c.teardown(nil)
			return
		}
		// Re-ack retransmitted FINs.
		if h.Flags&FlagFIN != 0 {
			c.sendAck()
		}
		return
	}

	if c.state == StateClosed {
		return
	}

	if h.Flags&FlagACK != 0 {
		c.processAck(h)
		if c.closed {
			return
		}
	}
	if len(payload) > 0 || h.Flags&FlagFIN != 0 {
		c.processPayload(h, payload, ceMarked)
	}
	if !c.closed {
		c.trySend()
	}
}

func (c *Conn) inputSynSent(h *Header) {
	if h.Flags&(FlagSYN|FlagACK) != FlagSYN|FlagACK || h.Ack != c.iss+1 {
		return
	}
	c.irs = h.Seq
	c.rcvNxt = h.Seq + 1
	c.sndUna = h.Ack
	c.clearInflightUpTo(h.Ack)
	c.applySynOptions(&h.Opts)
	c.sndWnd = int(h.Window) // unscaled in the SYN-ACK
	// RFC 3168 §6.1.1.1: SYN-ACK with ECE and not CWR means ECN is on.
	c.ecnEnabled = h.Flags&FlagECE != 0 && h.Flags&FlagCWR == 0
	c.stopRTO()
	c.sendAck()
	c.establish()
}

// processPayload handles the data/FIN part of a segment.
func (c *Conn) processPayload(h *Header, payload []byte, ceMarked bool) {
	seq := h.Seq
	fin := h.Flags&FlagFIN != 0

	// Trim data before rcvNxt (retransmitted overlap).
	if seqLT(seq, c.rcvNxt) {
		skip := seqDiff(c.rcvNxt, seq)
		if skip >= len(payload) {
			if fin && seq+uint32(len(payload)) == c.rcvNxt {
				// FIN exactly at rcvNxt after trimming.
				payload = nil
				seq = c.rcvNxt
			} else {
				// Entirely old: re-ack and drop.
				c.sendAck()
				return
			}
		} else {
			payload = payload[skip:]
			seq = c.rcvNxt
		}
	}

	if ceMarked {
		c.lastDataCE = true
	} else if len(payload) > 0 {
		c.lastDataCE = false
	}

	if seq == c.rcvNxt {
		c.acceptInOrder(payload, fin)
	} else {
		// Out of order: buffer everything that fits inside the window
		// we advertised (dropping in-window data would manufacture
		// artificial holes for the sender to recover one RTT at a
		// time), and send an immediate duplicate ACK with SACK info.
		if len(payload) > 0 && c.oooBytes+len(payload) <= c.rcvBuf.Free() {
			data := make([]byte, len(payload))
			copy(data, payload)
			c.countCopyRx(len(payload))
			c.insertOOO(oooSeg{seq: seq, data: data, fin: fin})
			c.lastOOOSeq = seq
		}
		c.sendAck()
		return
	}

	// Acking policy: immediate ack every second segment, else delayed.
	c.unackedSegs++
	if c.unackedSegs >= 2 || c.finRcvd || c.lastDataCE || c.ecnEnabled {
		c.sendAck()
	} else {
		c.armDelack()
	}

	if c.cfg.OnReadable != nil && (c.rcvBuf.Len() > 0 || c.finRcvd) {
		c.cfg.OnReadable()
	}
}

// acceptInOrder consumes payload at rcvNxt, then merges any contiguous
// out-of-order segments.
func (c *Conn) acceptInOrder(payload []byte, fin bool) {
	n := c.deliverInOrder(payload)
	if n < len(payload) {
		return
	}
	if fin {
		c.handleFIN()
		return
	}
	// Merge out-of-order runs.
	for len(c.ooo) > 0 {
		s := c.ooo[0]
		if seqGT(s.seq, c.rcvNxt) {
			break
		}
		c.ooo = c.ooo[1:]
		c.oooBytes -= len(s.data)
		skip := seqDiff(c.rcvNxt, s.seq)
		if skip < 0 || skip > len(s.data) {
			continue
		}
		m := c.deliverInOrder(s.data[skip:])
		if m < len(s.data[skip:]) {
			break
		}
		if s.fin {
			c.handleFIN()
			return
		}
	}
}

// deliverInOrder accepts in-order payload at rcvNxt: first through the
// receive sink (when installed and rcvBuf holds nothing older), then
// into rcvBuf. Bytes beyond what either accepts are dropped; the
// advertised window should prevent this, but a misbehaving peer must
// not corrupt state.
func (c *Conn) deliverInOrder(payload []byte) int {
	total := 0
	if c.sink != nil && len(payload) > 0 && c.rcvBuf.Empty() {
		k := c.sink(payload)
		if k < 0 || k > len(payload) {
			panic("tcp: receive sink consumed out of range")
		}
		c.rcvNxt += uint32(k)
		c.stats.BytesRcvd += uint64(k)
		total = k
		payload = payload[k:]
		if len(payload) == 0 {
			return total
		}
	}
	n := c.rcvBuf.Write(payload)
	c.countCopyRx(n)
	c.rcvNxt += uint32(n)
	c.stats.BytesRcvd += uint64(n)
	return total + n
}

// countCopyTx and countCopyRx record payload memcpys into the per-conn
// stats and the optional stack-wide ledger.
func (c *Conn) countCopyTx(n int) {
	if n <= 0 {
		return
	}
	c.stats.TxBytesCopied += uint64(n)
	if c.cfg.CopiedTx != nil {
		c.cfg.CopiedTx.Add(uint64(n))
	}
}

func (c *Conn) countCopyRx(n int) {
	if n <= 0 {
		return
	}
	c.stats.RxBytesCopied += uint64(n)
	if c.cfg.CopiedRx != nil {
		c.cfg.CopiedRx.Add(uint64(n))
	}
}

func (c *Conn) handleFIN() {
	if c.finRcvd {
		return
	}
	c.finRcvd = true
	c.rcvNxt++
	switch c.state {
	case StateEstablished:
		c.state = StateCloseWait
	case StateFinWait1:
		// Our FIN not yet acked: simultaneous close.
		c.state = StateClosing
	case StateFinWait2:
		c.enterTimeWait()
	}
	c.sendAck()
	if c.cfg.OnReadable != nil {
		c.cfg.OnReadable()
	}
}

func (c *Conn) insertOOO(s oooSeg) {
	i := 0
	for ; i < len(c.ooo); i++ {
		if seqLT(s.seq, c.ooo[i].seq) {
			break
		}
		if s.seq == c.ooo[i].seq {
			return // duplicate
		}
	}
	c.ooo = append(c.ooo, oooSeg{})
	copy(c.ooo[i+1:], c.ooo[i:])
	c.ooo[i] = s
	c.oooBytes += len(s.data)
}

func (c *Conn) enterTimeWait() {
	c.state = StateTimeWait
	c.stopRTO()
	if c.timeWaitTimer != nil {
		c.timeWaitTimer.Stop()
	}
	c.armTimeWait(2 * c.cfg.MSL)
}

func (c *Conn) armTimeWait(d time.Duration) {
	c.timeWaitDeadline = c.cfg.Clock.Now().Add(d)
	c.timeWaitTimer = c.cfg.Clock.AfterFunc(d, func() {
		c.teardown(nil)
	})
}

// TimeWaitRemaining returns how long a TIME_WAIT connection will linger
// (0 for other states). The port recycler and migration snapshots read
// it.
func (c *Conn) TimeWaitRemaining() time.Duration {
	if c.state != StateTimeWait || c.closed {
		return 0
	}
	if d := c.timeWaitDeadline.Sub(c.cfg.Clock.Now()); d > 0 {
		return d
	}
	return 0
}

// FinalSeq returns the connection's highest used send sequence number
// (sndMax). A successor connection recycling this port pair must start
// its ISS beyond it so the peer's lingering state cannot confuse old
// and new segments (RFC 6191-flavoured).
func (c *Conn) FinalSeq() uint32 { return c.sndMax }

// sackBlocks builds up to MaxSACKBlocks from the out-of-order queue.
// Per RFC 2018 the first block is the one containing the most recently
// received segment; the remaining slots rotate through the other runs
// so that, over a stream of ACKs, the sender's scoreboard learns about
// every hole — reporting only the lowest runs would leave everything
// above the front invisible and stall SACK recovery.
func (c *Conn) sackBlocks() []SACKBlock {
	if !c.sackOK || len(c.ooo) == 0 {
		return nil
	}
	// Coalesce the (sorted) queue into contiguous runs.
	var runs []SACKBlock
	newestRun := 0
	for _, s := range c.ooo {
		start, end := s.seq, s.seq+uint32(len(s.data))
		if n := len(runs); n > 0 && runs[n-1].End == start {
			runs[n-1].End = end
		} else {
			runs = append(runs, SACKBlock{Start: start, End: end})
		}
		if seqLEQ(runs[len(runs)-1].Start, c.lastOOOSeq) && seqLT(c.lastOOOSeq, runs[len(runs)-1].End) {
			newestRun = len(runs) - 1
		}
	}
	blocks := make([]SACKBlock, 0, MaxSACKBlocks)
	blocks = append(blocks, runs[newestRun])
	for i := 1; i < len(runs) && len(blocks) < MaxSACKBlocks; i++ {
		idx := (newestRun + int(c.sackRotate) + i) % len(runs)
		if idx == newestRun {
			continue
		}
		blocks = append(blocks, runs[idx])
	}
	c.sackRotate++
	return blocks
}

func (c *Conn) advertisedWindow() uint16 {
	w := c.rcvBuf.Free() >> c.ourWScale
	if w > 0xffff {
		w = 0xffff
	}
	return uint16(w)
}

func (c *Conn) sendAck() {
	if c.delackTimer != nil {
		c.delackTimer.Stop()
	}
	c.unackedSegs = 0
	h := &Header{
		Flags:  FlagACK,
		Seq:    c.sndNxt,
		Ack:    c.rcvNxt,
		Window: c.advertisedWindow(),
		Opts:   Options{SACKBlocks: c.sackBlocks()},
	}
	if c.ecnEnabled && c.lastDataCE {
		h.Flags |= FlagECE
	}
	c.lastAdvWnd = int(h.Window) << c.ourWScale
	c.transmit(h, nil, false)
}

func (c *Conn) armDelack() {
	if c.delackTimer != nil {
		c.delackTimer.Stop()
	}
	c.delackTimer = c.cfg.Clock.AfterFunc(c.cfg.DelayedAckTimeout, func() {
		if !c.closed && c.unackedSegs > 0 {
			c.sendAck()
		}
	})
}

// maybeSendWindowUpdate re-advertises after the application drains the
// receive buffer across a significant threshold (silly-window-syndrome
// avoidance on the receive side).
func (c *Conn) maybeSendWindowUpdate() {
	if c.closed || c.state == StateClosed {
		return
	}
	free := c.rcvBuf.Free()
	if c.lastAdvWnd < c.cfg.MSS && free-c.lastAdvWnd >= c.cfg.MSS ||
		free-c.lastAdvWnd >= c.rcvBuf.Cap()/2 {
		c.sendAck()
	}
}

// transmit stamps shared fields and hands the segment to the stack.
func (c *Conn) transmit(h *Header, payload []byte, ecnCapable bool) {
	h.SrcPort = c.cfg.Local.Port
	h.DstPort = c.cfg.Remote.Port
	c.stats.SegsSent++
	c.stats.BytesSent += uint64(len(payload))
	c.cfg.Output(h, payload, ecnCapable)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Debug accessors used by experiment diagnostics and tests.

// DebugOutstanding returns bytes in flight.
func (c *Conn) DebugOutstanding() int { return c.outstanding() }

// DebugSndWnd returns the peer-advertised send window in bytes.
func (c *Conn) DebugSndWnd() int { return c.sndWnd }

// DebugInflightLen returns tracked in-flight segment count.
func (c *Conn) DebugInflightLen() int { return len(c.inflight) }

// DebugRcvBufLen returns buffered in-order bytes.
func (c *Conn) DebugRcvBufLen() int { return c.rcvBuf.Len() }

// DebugOOOBytes returns buffered out-of-order bytes.
func (c *Conn) DebugOOOBytes() int { return c.oooBytes }

// DebugOOOCount returns the out-of-order segment count.
func (c *Conn) DebugOOOCount() int { return len(c.ooo) }

// DebugAdvWnd returns the window the conn would advertise now.
func (c *Conn) DebugAdvWnd() int { return int(c.advertisedWindow()) << c.ourWScale }
