package tcp

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"netkernel/internal/sim"
	"netkernel/internal/tcpcc"
)

// TestTransferSurvivesRandomAdversity is the TCP torture test: for a
// set of seeds, a transfer crosses a pipe with random loss, random
// extra delay (reordering), and occasional duplication — and must
// arrive complete and intact.
func TestTransferSurvivesRandomAdversity(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			n := newTestNet(t)
			rng := sim.NewRNG(seed)
			n.drop = func(dir string, h *Header, payload []byte) bool {
				if len(payload) == 0 && h.Flags&(FlagSYN|FlagFIN) == 0 {
					// Keep pure acks mostly intact so the test ends in
					// reasonable simulated time.
					return rng.Bernoulli(0.02)
				}
				switch {
				case rng.Bernoulli(0.05): // drop
					return true
				case rng.Bernoulli(0.05): // delay (reorder)
					seg := h.Marshal(n.aAddr.Addr, n.bAddr.Addr, payload)
					src, dst := n.aAddr, n.bAddr
					if dir == "b→a" {
						src, dst = n.bAddr, n.aAddr
					}
					into := func() *Conn {
						if dir == "a→b" {
							return n.b
						}
						return n.a
					}
					extra := time.Duration(rng.Intn(20)) * time.Millisecond
					n.loop.AfterFunc(n.delay+extra, func() {
						hh, pl, err := Parse(src.Addr, dst.Addr, seg)
						if err == nil && into() != nil {
							into().Input(&hh, pl, false)
						}
					})
					return true
				case rng.Bernoulli(0.03): // duplicate
					seg := h.Marshal(n.aAddr.Addr, n.bAddr.Addr, payload)
					src, dst := n.aAddr, n.bAddr
					if dir == "b→a" {
						src, dst = n.bAddr, n.aAddr
					}
					into := func() *Conn {
						if dir == "a→b" {
							return n.b
						}
						return n.a
					}
					n.loop.AfterFunc(n.delay*2, func() {
						hh, pl, err := Parse(src.Addr, dst.Addr, seg)
						if err == nil && into() != nil {
							into().Input(&hh, pl, false)
						}
					})
					return false // deliver the original too
				}
				return false
			}
			n.dialPair("cubic", "cubic", func(cfg *Config, side string) {
				cfg.MinRTO = 50 * time.Millisecond
			})
			n.loop.RunFor(2 * time.Second)
			if n.a == nil || n.a.State() != StateEstablished {
				t.Skipf("handshake lost to adversity (seed %d)", seed)
			}

			payload := make([]byte, 300<<10)
			prng := sim.NewRNG(seed * 77)
			for i := range payload {
				payload[i] = byte(prng.Uint64())
			}
			got := n.transfer(n.a, n.b, payload, 120*time.Second)
			if len(got) != len(payload) {
				t.Fatalf("transferred %d of %d under adversity", len(got), len(payload))
			}
			if !bytes.Equal(got, payload) {
				t.Fatal("payload corrupted under adversity")
			}
		})
	}
}

func TestHalfClose(t *testing.T) {
	// A closes its direction; B must still be able to send until it
	// closes too (FIN-WAIT-2 receives).
	n := newTestNet(t)
	n.dialPair("reno", "reno", nil)
	n.establish()

	n.a.Write([]byte("request"))
	n.a.Close()
	n.loop.RunFor(100 * time.Millisecond)

	buf := make([]byte, 64)
	m, eof := n.b.Read(buf)
	if string(buf[:m]) != "request" || !eof {
		t.Fatalf("b read %q eof=%v", buf[:m], eof)
	}
	if n.a.State() != StateFinWait2 {
		t.Fatalf("a state %v, want fin-wait-2", n.a.State())
	}

	// B responds on the still-open direction.
	n.b.Write([]byte("late response"))
	n.loop.RunFor(100 * time.Millisecond)
	m, _ = n.a.Read(buf)
	if string(buf[:m]) != "late response" {
		t.Fatalf("a read %q after half-close", buf[:m])
	}

	n.b.Close()
	n.loop.RunFor(3 * time.Second)
	if n.a.State() != StateClosed || n.b.State() != StateClosed {
		t.Fatalf("final states a=%v b=%v", n.a.State(), n.b.State())
	}
}

func TestSimultaneousClose(t *testing.T) {
	n := newTestNet(t)
	n.dialPair("reno", "reno", func(cfg *Config, side string) {
		cfg.MSL = 50 * time.Millisecond
	})
	n.establish()
	// Both close in the same instant: FIN crossing → CLOSING → TIME-WAIT.
	n.a.Close()
	n.b.Close()
	n.loop.RunFor(2 * time.Second)
	if n.a.State() != StateClosed || n.b.State() != StateClosed {
		t.Fatalf("states after simultaneous close: a=%v b=%v", n.a.State(), n.b.State())
	}
}

func TestWindowScaleFallback(t *testing.T) {
	// A peer that does not offer window scaling forces both sides to
	// unscaled 16-bit windows.
	n := newTestNet(t)
	n.dialPair("reno", "reno", nil)
	// Strip the wscale option from the SYN-ACK in flight.
	origDrop := n.drop
	_ = origDrop
	n.loop.RunFor(200 * time.Millisecond)
	// (direct manipulation: both sides negotiated; emulate a no-wscale
	// peer by constructing a passive conn from a SYN without the option)
	syn := Header{
		SrcPort: 9999, DstPort: 80, Seq: 1000, Flags: FlagSYN, Window: 4096,
		Opts: Options{MSS: 1460}, // no WScaleOK
	}
	var sent []Header
	cfg := Config{
		Clock: n.loop, Local: n.bAddr, Remote: AddrPort{Addr: n.aAddr.Addr, Port: 9999},
		CC:     mustCC(t, "reno"),
		Output: func(h *Header, p []byte, e bool) { sent = append(sent, *h) },
	}
	c := NewPassive(cfg, &syn, false)
	if c.ourWScale != 0 {
		t.Fatalf("wscale = %d against a non-scaling peer, want 0", c.ourWScale)
	}
	if len(sent) == 0 || sent[0].Flags&(FlagSYN|FlagACK) != FlagSYN|FlagACK {
		t.Fatal("no SYN-ACK emitted")
	}
}

func TestMSSNegotiationTakesMinimum(t *testing.T) {
	syn := Header{
		SrcPort: 9999, DstPort: 80, Seq: 1, Flags: FlagSYN, Window: 4096,
		Opts: Options{MSS: 536, WScaleOK: true},
	}
	cfg := Config{
		Clock: sim.NewLoop(), Local: AddrPort{Port: 80}, Remote: AddrPort{Port: 9999},
		MSS: 1460, CC: mustCC(t, "reno"), Output: func(*Header, []byte, bool) {},
	}
	c := NewPassive(cfg, &syn, false)
	if c.cfg.MSS != 536 {
		t.Fatalf("negotiated MSS %d, want the peer's smaller 536", c.cfg.MSS)
	}
}

func TestRetransmittedSYNACK(t *testing.T) {
	// Drop the first SYN-ACK: the handshake must still complete via
	// handshake retransmission on both sides.
	n := newTestNet(t)
	dropped := false
	n.drop = func(dir string, h *Header, payload []byte) bool {
		if dir == "b→a" && h.Flags&(FlagSYN|FlagACK) == FlagSYN|FlagACK && !dropped {
			dropped = true
			return true
		}
		return false
	}
	n.dialPair("reno", "reno", func(cfg *Config, side string) {
		cfg.MinRTO = 50 * time.Millisecond
	})
	n.loop.RunFor(3 * time.Second)
	if !dropped {
		t.Fatal("test never dropped a SYN-ACK")
	}
	if n.a.State() != StateEstablished || n.b.State() != StateEstablished {
		t.Fatalf("handshake never recovered from SYN-ACK loss: a=%v b=%v", n.a.State(), n.b.State())
	}
	if n.a.Stats().RTOs == 0 && n.b.Stats().RTOs == 0 {
		t.Fatal("handshake retransmission not accounted as an RTO")
	}
}

func TestWriteAfterCloseRefused(t *testing.T) {
	n := newTestNet(t)
	n.dialPair("reno", "reno", nil)
	n.establish()
	n.a.Close()
	if n.a.Write([]byte("too late")) != 0 {
		t.Fatal("Write accepted data after Close")
	}
}

func TestAbortDuringTransfer(t *testing.T) {
	n := newTestNet(t)
	n.dialPair("cubic", "cubic", nil)
	n.establish()
	n.a.Write(make([]byte, 500<<10))
	n.loop.RunFor(20 * time.Millisecond) // mid-flight
	var bErr error
	n.b.SetCallbacks(nil, nil, func(err error) { bErr = err })
	n.a.Abort()
	n.loop.RunFor(200 * time.Millisecond)
	if bErr == nil {
		t.Fatalf("peer not reset mid-transfer (state %v)", n.b.State())
	}
}

func mustCC(t *testing.T, name string) tcpcc.Algorithm {
	t.Helper()
	cc, err := tcpcc.New(name)
	if err != nil {
		t.Fatal(err)
	}
	return cc
}

// redeliver re-injects a marshalled copy of a segment into the
// receiving side after extra delay — the building block for reorder and
// duplication profiles.
func redeliver(n *testNet, dir string, h *Header, payload []byte, extra time.Duration) {
	seg := h.Marshal(n.aAddr.Addr, n.bAddr.Addr, payload)
	src, dst := n.aAddr, n.bAddr
	if dir == "b→a" {
		src, dst = n.bAddr, n.aAddr
	}
	n.loop.AfterFunc(n.delay+extra, func() {
		into := n.b
		if dir == "b→a" {
			into = n.a
		}
		if hh, pl, err := Parse(src.Addr, dst.Addr, seg); err == nil && into != nil {
			into.Input(&hh, pl, false)
		}
	})
}

// geChain is a two-state Gilbert–Elliott loss process: long clean
// stretches punctuated by bursts that eat half the segments.
type geChain struct {
	rng *sim.RNG
	bad bool
}

func (g *geChain) lose() bool {
	if g.bad {
		if g.rng.Bernoulli(0.25) {
			g.bad = false
		}
	} else if g.rng.Bernoulli(0.02) {
		g.bad = true
	}
	return g.bad && g.rng.Bernoulli(0.5)
}

// TestCloseCompletesUnderAdversity is the FIN-retransmission regression
// guard: under heavy reordering, duplication, or bursty Gilbert–Elliott
// loss, a transfer followed by Close on both sides must still drive
// BOTH connections to StateClosed — a lost FIN has to be retransmitted
// like any other segment, and TIME-WAIT must expire on the virtual
// clock.
func TestCloseCompletesUnderAdversity(t *testing.T) {
	profiles := []struct {
		name string
		drop func(n *testNet, rng *sim.RNG) func(dir string, h *Header, payload []byte) bool
	}{
		{"reorder", func(n *testNet, rng *sim.RNG) func(string, *Header, []byte) bool {
			return func(dir string, h *Header, payload []byte) bool {
				if rng.Bernoulli(0.15) { // delay out of order
					redeliver(n, dir, h, payload, time.Duration(1+rng.Intn(20))*time.Millisecond)
					return true
				}
				return false
			}
		}},
		{"duplicate", func(n *testNet, rng *sim.RNG) func(string, *Header, []byte) bool {
			return func(dir string, h *Header, payload []byte) bool {
				if rng.Bernoulli(0.10) { // deliver original AND a copy
					redeliver(n, dir, h, payload, n.delay)
				}
				return false
			}
		}},
		{"gilbert-elliott", func(n *testNet, rng *sim.RNG) func(string, *Header, []byte) bool {
			ab, ba := &geChain{rng: rng}, &geChain{rng: rng}
			return func(dir string, h *Header, payload []byte) bool {
				if dir == "a→b" {
					return ab.lose()
				}
				return ba.lose()
			}
		}},
	}
	for _, p := range profiles {
		p := p
		for seed := uint64(1); seed <= 4; seed++ {
			seed := seed
			t.Run(fmt.Sprintf("%s/seed=%d", p.name, seed), func(t *testing.T) {
				n := newTestNet(t)
				rng := sim.NewRNG(seed)
				n.drop = p.drop(n, rng)
				n.dialPair("cubic", "cubic", func(cfg *Config, side string) {
					cfg.MinRTO = 50 * time.Millisecond
					cfg.MSL = 200 * time.Millisecond
				})
				n.loop.RunFor(3 * time.Second)
				if n.a == nil || n.a.State() != StateEstablished {
					t.Skipf("handshake lost to adversity (seed %d)", seed)
				}

				payload := make([]byte, 64<<10)
				prng := sim.NewRNG(seed * 131)
				for i := range payload {
					payload[i] = byte(prng.Uint64())
				}
				got := n.transfer(n.a, n.b, payload, 60*time.Second)
				if !bytes.Equal(got, payload) {
					t.Fatalf("transferred %d of %d, or corrupted", len(got), len(payload))
				}

				n.a.Close()
				n.b.Close()
				n.loop.RunFor(60 * time.Second)
				if n.a.State() != StateClosed || n.b.State() != StateClosed {
					t.Fatalf("close never completed under %s: a=%v b=%v",
						p.name, n.a.State(), n.b.State())
				}
			})
		}
	}
}
