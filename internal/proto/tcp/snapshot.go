package tcp

import (
	"fmt"
	"time"

	"netkernel/internal/sim"
	"netkernel/internal/tcpcc"
)

// ConnSnapshotVersion identifies the ConnSnapshot layout. Restore
// refuses snapshots of any other version: a migration between builds
// that disagree on the format must fail loudly and fall back to crash
// semantics rather than resurrect a half-understood connection
// (DESIGN.md §12).
const ConnSnapshotVersion = 1

// SegSnapshot is one tracked in-flight segment (the retransmission /
// SACK scoreboard entry) in serialized form.
type SegSnapshot struct {
	Seq                 uint32
	Length              int
	SentAt              sim.Time
	DeliveredAtSend     uint64
	DeliveredTimeAtSend sim.Time
	AppLimited          bool
	Retransmitted       bool
	Sacked              bool
	Fin                 bool
}

// OOOSnapshot is one buffered out-of-order run.
type OOOSnapshot struct {
	Seq  uint32
	Data []byte
	Fin  bool
}

// ConnSnapshot is the complete serialized state of one TCP connection:
// everything a fresh Conn on a different stack needs to continue the
// flow byte-exactly. Buffer contents are copied out of their backing
// storage (huge-page spans become plain bytes), so a snapshot holds no
// references into the donor stack's memory and the donor can release
// its chunks independently.
type ConnSnapshot struct {
	Version       int
	Local, Remote AddrPort
	State         State

	// Negotiated parameters.
	MSS        int
	PeerWScale uint8
	OurWScale  uint8
	SackOK     bool
	ECNEnabled bool
	Nagle      bool

	// Send sequence space and buffer.
	ISS, SndUna, SndNxt, SndMax uint32
	SndWnd                      int
	SendBuf                     []byte // bytes in [SndUna, SndUna+len)
	FinQueued, FinSent          bool
	FinSeq                      uint32

	// Retransmission and recovery.
	RTO, SRTT, RTTVar time.Duration
	Backoff           int
	Inflight          []SegSnapshot
	DupAcks           int
	InRecovery        bool
	Recover           uint32
	LastAckSeq        uint32

	// Rate sampling.
	Delivered   uint64
	DeliveredAt sim.Time

	// Receive sequence space and buffers.
	IRS, RcvNxt uint32
	RecvBuf     []byte
	OOO         []OOOSnapshot
	FinRcvd     bool

	// Acking bookkeeping.
	LastOOOSeq   uint32
	SackRotate   uint32
	UnackedSegs  int
	LastAdvWnd   int
	LastDataCE   bool
	ECNReactedAt sim.Time

	// Pacing.
	PaceNext sim.Time

	// TIME_WAIT residue.
	TimeWaitRemaining time.Duration

	// Congestion control: the algorithm name, its exported internals,
	// and the control block it drives.
	CC      string
	CCState tcpcc.State
	Ctrl    tcpcc.Control

	Stats Stats
}

// Snapshot serializes the connection. It is read-only: the connection
// keeps running afterwards (Detach stops it). Returns nil for a
// connection that is already closed.
func (c *Conn) Snapshot() *ConnSnapshot {
	if c.closed || c.state == StateClosed {
		return nil
	}
	s := &ConnSnapshot{
		Version: ConnSnapshotVersion,
		Local:   c.cfg.Local,
		Remote:  c.cfg.Remote,
		State:   c.state,

		MSS:        c.cfg.MSS,
		PeerWScale: c.peerWScale,
		OurWScale:  c.ourWScale,
		SackOK:     c.sackOK,
		ECNEnabled: c.ecnEnabled,
		Nagle:      c.cfg.Nagle,

		ISS:       c.iss,
		SndUna:    c.sndUna,
		SndNxt:    c.sndNxt,
		SndMax:    c.sndMax,
		SndWnd:    c.sndWnd,
		FinQueued: c.finQueued,
		FinSent:   c.finSent,
		FinSeq:    c.finSeq,

		RTO:        c.rto,
		SRTT:       c.srtt,
		RTTVar:     c.rttvar,
		Backoff:    c.backoff,
		DupAcks:    c.dupAcks,
		InRecovery: c.inRecovery,
		Recover:    c.recover,
		LastAckSeq: c.lastAckSeq,

		Delivered:   c.delivered,
		DeliveredAt: c.deliveredAt,

		IRS:     c.irs,
		RcvNxt:  c.rcvNxt,
		FinRcvd: c.finRcvd,

		LastOOOSeq:   c.lastOOOSeq,
		SackRotate:   c.sackRotate,
		UnackedSegs:  c.unackedSegs,
		LastAdvWnd:   c.lastAdvWnd,
		LastDataCE:   c.lastDataCE,
		ECNReactedAt: c.ecnReactedAt,

		PaceNext: c.paceNext,

		TimeWaitRemaining: c.TimeWaitRemaining(),

		CC:      c.cc.Name(),
		CCState: tcpcc.Save(c.cc),
		Ctrl:    c.ctrl,

		Stats: c.stats,
	}
	// Copy the unacknowledged byte-ring / span contents out of their
	// backing storage: huge-page chunks stay with the donor.
	if n := c.sndBuf.Len(); n > 0 {
		s.SendBuf = make([]byte, n)
		c.sndBuf.Peek(s.SendBuf, 0)
	}
	if n := c.rcvBuf.Len(); n > 0 {
		s.RecvBuf = make([]byte, n)
		c.rcvBuf.Peek(s.RecvBuf, 0)
	}
	for _, m := range c.inflight {
		s.Inflight = append(s.Inflight, SegSnapshot{
			Seq:                 m.seq,
			Length:              m.length,
			SentAt:              m.sentAt,
			DeliveredAtSend:     m.deliveredAtSend,
			DeliveredTimeAtSend: m.deliveredTimeAtSend,
			AppLimited:          m.appLimited,
			Retransmitted:       m.retransmitted,
			Sacked:              m.sacked,
			Fin:                 m.fin,
		})
	}
	for _, o := range c.ooo {
		data := make([]byte, len(o.data))
		copy(data, o.data)
		s.OOO = append(s.OOO, OOOSnapshot{Seq: o.seq, Data: data, Fin: o.fin})
	}
	return s
}

// Detach tears the connection down silently for migration: every timer
// stops, borrowed spans release back to their pool, and the owner hook
// (stack demux deregistration) fires — but no application callback
// does. The guest-facing service keeps its bookkeeping and rewires it
// to the restored successor; firing OnClose here would tell the guest
// its connection died, which is exactly what migration exists to
// avoid.
func (c *Conn) Detach() {
	if c.closed {
		return
	}
	c.closed = true
	c.state = StateClosed
	for _, t := range []sim.Timer{c.rtoTimer, c.delackTimer, c.paceTimer, c.persistTimer, c.timeWaitTimer} {
		if t != nil {
			t.Stop()
		}
	}
	c.sndBuf.ReleaseAll()
	if c.ownerHook != nil {
		c.ownerHook()
	}
}

// Restore builds a connection from a snapshot on a new stack. The
// Config supplies the new environment (clock, output path, callbacks,
// congestion-control instance, buffer sizes); the snapshot supplies
// every negotiated and learned parameter. When cfg.CC's name matches
// the snapshot's, the algorithm's internals are restored too;
// otherwise — the congestion-control hot-swap path — the new algorithm
// keeps its fresh Init state and relearns the path.
//
// No segment is transmitted during Restore. Timers whose cause
// survives the handoff (RTO for in-flight data, TIME_WAIT residue,
// delayed ACK, zero-window persist) are re-armed; pacing resumes on
// the next send opportunity.
func Restore(cfg Config, s *ConnSnapshot) (*Conn, error) {
	if s == nil {
		return nil, fmt.Errorf("tcp: nil snapshot")
	}
	if s.Version != ConnSnapshotVersion {
		return nil, fmt.Errorf("tcp: snapshot version %d, want %d", s.Version, ConnSnapshotVersion)
	}
	if s.State == StateClosed {
		return nil, fmt.Errorf("tcp: cannot restore a closed connection")
	}
	cfg.Local, cfg.Remote = s.Local, s.Remote
	cfg.MSS = s.MSS
	cfg.Nagle = s.Nagle
	cfg.RNG = nil // the ISS below overrides; keep the RNG stream untouched
	iss := s.ISS
	cfg.ISS = &iss
	c := newConn(cfg)
	if c.sndBuf.Cap() < len(s.SendBuf) {
		return nil, fmt.Errorf("tcp: send buffer %d too small for %d snapshot bytes", c.sndBuf.Cap(), len(s.SendBuf))
	}
	if c.rcvBuf.Cap() < len(s.RecvBuf) {
		return nil, fmt.Errorf("tcp: recv buffer %d too small for %d snapshot bytes", c.rcvBuf.Cap(), len(s.RecvBuf))
	}

	c.state = s.State
	c.peerWScale = s.PeerWScale
	c.ourWScale = s.OurWScale
	c.sackOK = s.SackOK
	c.ecnEnabled = s.ECNEnabled

	c.sndUna, c.sndNxt, c.sndMax = s.SndUna, s.SndNxt, s.SndMax
	c.sndWnd = s.SndWnd
	c.finQueued, c.finSent, c.finSeq = s.FinQueued, s.FinSent, s.FinSeq
	c.sndBuf.Write(s.SendBuf)

	c.rto, c.srtt, c.rttvar = s.RTO, s.SRTT, s.RTTVar
	c.backoff = s.Backoff
	c.dupAcks = s.DupAcks
	c.inRecovery = s.InRecovery
	c.recover = s.Recover
	c.lastAckSeq = s.LastAckSeq

	c.delivered, c.deliveredAt = s.Delivered, s.DeliveredAt

	c.irs, c.rcvNxt = s.IRS, s.RcvNxt
	c.finRcvd = s.FinRcvd
	c.rcvBuf.Write(s.RecvBuf)
	for _, o := range s.OOO {
		data := make([]byte, len(o.Data))
		copy(data, o.Data)
		c.ooo = append(c.ooo, oooSeg{seq: o.Seq, data: data, fin: o.Fin})
		c.oooBytes += len(data)
	}

	c.lastOOOSeq = s.LastOOOSeq
	c.sackRotate = s.SackRotate
	c.unackedSegs = s.UnackedSegs
	c.lastAdvWnd = s.LastAdvWnd
	c.lastDataCE = s.LastDataCE
	c.ecnReactedAt = s.ECNReactedAt
	c.paceNext = s.PaceNext

	for _, m := range s.Inflight {
		c.inflight = append(c.inflight, &segMeta{
			seq:                 m.Seq,
			length:              m.Length,
			sentAt:              m.SentAt,
			deliveredAtSend:     m.DeliveredAtSend,
			deliveredTimeAtSend: m.DeliveredTimeAtSend,
			appLimited:          m.AppLimited,
			retransmitted:       m.Retransmitted,
			sacked:              m.Sacked,
			fin:                 m.Fin,
		})
	}

	// Congestion control: newConn already ran cfg.CC.Init. A matching
	// algorithm gets its learned model and control block back; a
	// hot-swapped one keeps the fresh Init window and relearns, with
	// only the recovery flag carried over (the connection-level
	// recovery state machine is algorithm-independent).
	if tcpcc.Load(c.cc, s.CCState) && s.CC == c.cc.Name() {
		c.ctrl = s.Ctrl
		c.ctrl.MSS = cfg.MSS
	}
	c.ctrl.InRecovery = s.InRecovery

	c.stats = s.Stats

	// The connection established long ago; the callback must not
	// re-fire on the new stack.
	if s.State != StateSynSent && s.State != StateSynRcvd {
		c.onEstablishedFired = true
	}

	// Re-arm timers whose cause survived the handoff.
	switch {
	case s.State == StateTimeWait:
		c.stopRTO()
		d := s.TimeWaitRemaining
		if d <= 0 {
			d = time.Millisecond // expire promptly, but on the loop
		}
		c.armTimeWait(d)
	case c.sndUna != c.sndNxt || s.State == StateSynSent || s.State == StateSynRcvd:
		c.armRTO()
	default:
		c.stopRTO()
	}
	if c.unackedSegs > 0 && s.State != StateTimeWait {
		c.armDelack()
	}
	if c.sndWnd <= 0 && c.sndBuf.Len() > 0 {
		c.armPersist()
	}
	// A restored sender may hold transmittable work no future event
	// would otherwise push — paced bytes never sent, a queued FIN behind
	// an open window. Kick the send path once the restore event
	// completes; trySend itself respects state, window, and pacing.
	cfg.Clock.AfterFunc(0, func() {
		if !c.closed {
			c.trySend()
		}
	})
	return c, nil
}
