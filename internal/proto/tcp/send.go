package tcp

import (
	"time"

	"netkernel/internal/tcpcc"
)

// maxRTO caps exponential backoff.
const maxRTO = 60 * time.Second

// processAck handles the acknowledgment part of an inbound segment.
func (c *Conn) processAck(h *Header) {
	ack := h.Ack
	wnd := int(h.Window) << c.peerWScale

	if seqGT(ack, c.sndMax) {
		// Acks data we never sent: re-synchronize.
		c.sendAck()
		return
	}

	ece := h.Flags&FlagECE != 0
	if ece {
		c.stats.ECNEchoes++
	}

	c.applySACK(h.Opts.SACKBlocks)

	switch {
	case seqGT(ack, c.sndUna):
		c.processNewAck(h, ack, ece)
	case ack == c.sndUna && c.outstanding() > 0:
		// Duplicate ACK. When SACK is negotiated, a genuine loss-signal
		// dupack carries blocks describing the receiver's out-of-order
		// data; a blockless duplicate is the echo of a spuriously
		// retransmitted segment (RFC 2883 territory) and must not
		// trigger recovery.
		if c.sackOK && len(h.Opts.SACKBlocks) == 0 {
			break
		}
		c.dupAcks++
		c.stats.DupAcks++
		if c.dupAcks == 3 && !c.inRecovery {
			c.enterRecovery()
		}
	}
	// SACK-driven hole repair runs on every ACK: the scoreboard
	// (sacked-above ⇒ lost) gates it, so it is inert on a clean
	// connection, but after an RTO it is what drains a large hole
	// range at ack-clock speed instead of one segment per timeout.
	c.sackRetransmit(2)

	// Window update (plain; the dup-ack path above tolerates counting
	// pure window updates as dups, which only hastens recovery).
	c.sndWnd = wnd
	if wnd > 0 && c.persistTimer != nil {
		c.persistTimer.Stop()
		c.persistTimer = nil
	}
	if c.wantWrite && c.sndBuf.Free() > 0 && c.cfg.OnWritable != nil {
		c.wantWrite = false
		c.cfg.OnWritable()
	}
}

func (c *Conn) processNewAck(h *Header, ack uint32, ece bool) {
	now := c.cfg.Clock.Now()
	newly := seqDiff(ack, c.sndUna)
	finAcked := c.finSent && ack == c.finSeq+1
	payloadAcked := newly
	if finAcked {
		payloadAcked--
	}
	// A SYN consumes a sequence number too; it never coexists with
	// buffered payload here because establishment precedes Write.
	if payloadAcked > c.sndBuf.Len() {
		payloadAcked = c.sndBuf.Len()
	}

	c.sndUna = ack
	if seqGT(c.sndUna, c.sndNxt) {
		// A late ACK (beyond an RTO rewind) covers data we were about
		// to resend; skip past it.
		c.sndNxt = c.sndUna
	}
	c.sndBuf.Discard(payloadAcked)
	c.stats.BytesAcked += uint64(payloadAcked)
	c.dupAcks = 0
	c.backoff = 0

	rttSeg, newlyDelivered := c.clearInflightUpTo(ack)
	if newlyDelivered > 0 {
		// Bytes SACKed earlier were already counted delivered; only
		// fresh ones advance the rate-sampling counter here.
		c.delivered += uint64(newlyDelivered)
		c.deliveredAt = now
	}

	// RTT estimation (RFC 6298). Karn's rule skips retransmitted data;
	// recovery is skipped too, because segments that sat behind a hole
	// for the length of the recovery would poison the estimator.
	var rtt time.Duration
	if rttSeg != nil && !rttSeg.retransmitted && !c.inRecovery {
		rtt = now.Sub(rttSeg.sentAt)
		c.updateRTT(rtt)
	}

	// Recovery bookkeeping (NewReno).
	if c.inRecovery {
		if seqGEQ(ack, c.recover) {
			c.inRecovery = false
		} else {
			// Partial ack: the next hole is lost too; retransmit it.
			c.retransmitFront()
		}
	}
	c.ctrl.InRecovery = c.inRecovery

	// ECN reaction for classic (RFC 3168) congestion controls: at most
	// one window reduction per RTT.
	if ece && !c.cc.NeedsECN() && !c.inRecovery {
		if c.ecnReactedAt == 0 || now.Sub(c.ecnReactedAt) > c.srttOr(c.rto) {
			c.ecnReactedAt = now
			c.cc.OnLoss(&c.ctrl, tcpcc.LossFastRetransmit, now.Duration())
		}
	}

	// Deliver the sample to congestion control.
	s := tcpcc.AckSample{
		Underutilized: c.outstanding()+payloadAcked+c.cfg.MSS < c.ctrl.CWnd,
		BytesAcked:    payloadAcked,
		RTT:           rtt,
		SRTT:          c.srtt,
		MinRTT:        c.stats.MinRTT,
		Delivered:     c.delivered,
		InFlight:      c.outstanding(),
		ECE:           ece,
		Now:           now.Duration(),
	}
	if ece {
		s.MarkedBytes = payloadAcked
	}
	if rttSeg != nil {
		s.AppLimited = rttSeg.appLimited
		if !rttSeg.retransmitted {
			// Rate sample over the delivered-counter timeline (BBR's
			// "delivery rate estimation"): the bytes delivered since
			// this segment was sent, over the longer of the send and
			// ack intervals.
			interval := now.Sub(rttSeg.deliveredTimeAtSend)
			if snd := now.Sub(rttSeg.sentAt); snd > interval {
				interval = snd
			}
			if interval > 0 {
				s.DeliveryRate = float64(c.delivered-rttSeg.deliveredAtSend) / interval.Seconds()
				c.stats.DeliveryRate = s.DeliveryRate
			}
		}
	}
	c.cc.OnAck(&c.ctrl, &s)

	if c.sndUna == c.sndNxt {
		c.stopRTO()
	} else {
		c.armRTO()
	}

	if finAcked {
		switch c.state {
		case StateFinWait1:
			c.state = StateFinWait2
		case StateClosing:
			c.enterTimeWait()
		case StateLastAck:
			c.teardown(nil)
		}
	}
}

func (c *Conn) srttOr(fallback time.Duration) time.Duration {
	if c.srtt > 0 {
		return c.srtt
	}
	return fallback
}

func (c *Conn) updateRTT(rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	if c.stats.MinRTT < 0 || rtt < c.stats.MinRTT {
		c.stats.MinRTT = rtt
	}
	if c.srtt == 0 {
		c.srtt = rtt
		c.rttvar = rtt / 2
	} else {
		d := c.srtt - rtt
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + rtt) / 8
	}
	c.stats.SRTT = c.srtt
	rto := c.srtt + max4(c.rttvar, time.Millisecond)
	if rto < c.cfg.MinRTO {
		rto = c.cfg.MinRTO
	}
	if rto > maxRTO {
		rto = maxRTO
	}
	c.rto = rto
}

func max4(v, floor time.Duration) time.Duration {
	v *= 4
	if v < floor {
		return floor
	}
	return v
}

// outstanding returns the bytes in flight: sent but neither cumulatively
// acked nor selectively acked.
func (c *Conn) outstanding() int {
	out := seqDiff(c.sndNxt, c.sndUna)
	if c.finSent {
		out--
	}
	for _, s := range c.inflight {
		if s.sacked {
			out -= s.length
		}
	}
	if out < 0 {
		out = 0
	}
	return out
}

// clearInflightUpTo removes fully-acked segments, returning the newest
// one (for RTT/rate sampling) and the payload bytes that had not
// already been counted delivered via SACK.
func (c *Conn) clearInflightUpTo(ack uint32) (*segMeta, int) {
	var newest *segMeta
	fresh := 0
	i := 0
	for ; i < len(c.inflight); i++ {
		s := c.inflight[i]
		end := s.seq + uint32(s.length)
		if s.fin {
			end++
		}
		if seqGT(end, ack) {
			break
		}
		if !s.sacked {
			fresh += s.length
		}
		newest = s
	}
	if i > 0 {
		c.inflight = append(c.inflight[:0], c.inflight[i:]...)
	}
	return newest, fresh
}

// applySACK marks selectively-acknowledged segments so they are
// neither counted in flight nor retransmitted. SACKed bytes count as
// delivered immediately (as Linux's rate sampler does): deferring them
// to the cumulative ack would release recovery windows as one burst
// and wreck delivery-rate estimates.
func (c *Conn) applySACK(blocks []SACKBlock) {
	if len(blocks) == 0 || !c.sackOK {
		return
	}
	for _, b := range blocks {
		if seqGEQ(b.Start, b.End) {
			continue
		}
		for _, s := range c.inflight {
			// A zero-length (FIN-only) segment is never SACK-covered: its
			// degenerate interval fits inside any block whose End touches
			// finSeq, but a receiver that SACKs the final data segment has
			// said nothing about the FIN. Marking it sacked here wedges the
			// close — retransmitFront skips sacked segments and trySend
			// refuses to run post-FIN, so every RTO becomes a no-op.
			if s.length == 0 {
				continue
			}
			if !s.sacked && seqGEQ(s.seq, b.Start) && seqLEQ(s.seq+uint32(s.length), b.End) {
				s.sacked = true
				c.delivered += uint64(s.length)
				c.deliveredAt = c.cfg.Clock.Now()
			}
		}
	}
}

func (c *Conn) enterRecovery() {
	c.inRecovery = true
	c.recover = c.sndNxt
	c.ctrl.InRecovery = true
	c.stats.FastRexmits++
	c.cc.OnLoss(&c.ctrl, tcpcc.LossFastRetransmit, c.cfg.Clock.Now().Duration())
	c.retransmitFront()
}

// retransmitFront resends the first unsacked hole.
func (c *Conn) retransmitFront() {
	for _, s := range c.inflight {
		if s.sacked {
			continue
		}
		c.retransmitSeg(s)
		return
	}
}

// retransmitSeg resends one tracked segment.
func (c *Conn) retransmitSeg(s *segMeta) {
	c.stats.Retransmits++
	if c.cfg.Retrans != nil {
		c.cfg.Retrans.Inc()
	}
	s.retransmitted = true
	s.sentAt = c.cfg.Clock.Now()
	if s.fin && s.length == 0 {
		h := &Header{Flags: FlagFIN | FlagACK, Seq: s.seq, Ack: c.rcvNxt, Window: c.advertisedWindow()}
		c.transmit(h, nil, false)
		return
	}
	// Clip to the unacknowledged portion: a partially-accepted segment
	// leaves sndUna in its middle, and resending from s.seq would read
	// below the buffer (and silently dropping it would wedge the flow).
	seq := s.seq
	length := s.length
	if d := seqDiff(c.sndUna, seq); d > 0 {
		seq = c.sndUna
		length -= d
	}
	if length <= 0 {
		return
	}
	off := seqDiff(seq, c.sndUna)
	if off >= c.sndBuf.Len() {
		return // already consumed (stale)
	}
	// A view into the span, not a copy: original segments never straddle
	// a span boundary (trySend clips to the contiguous run), so the view
	// covers the whole clipped range. The Output contract consumes it
	// synchronously.
	payload := c.sndBuf.Contig(off, length)
	if len(payload) == 0 {
		return
	}
	h := &Header{
		Flags:  FlagACK,
		Seq:    seq,
		Ack:    c.rcvNxt,
		Window: c.advertisedWindow(),
	}
	c.transmit(h, payload, c.ecnEnabled)
	// Deliberately no RTO rearm here: resetting the timer on every
	// SACK-driven retransmission lets a steady dupack trickle postpone
	// the RTO forever, wedging recovery when a retransmission is
	// itself lost. The timer armed by the original transmission (or by
	// new-ack processing) stays authoritative.
}

// sackRetransmit resends holes the SACK scoreboard marks lost (RFC
// 6675-flavoured: a segment with at least dupThresh·MSS of SACKed
// data above it is presumed lost), up to budget segments per ACK. It
// lets multi-loss windows on long-RTT paths recover in one round trip
// instead of one hole per RTT.
func (c *Conn) sackRetransmit(budget int) {
	if !c.sackOK || len(c.inflight) == 0 {
		return
	}
	var hi uint32
	found := false
	for _, s := range c.inflight {
		if s.sacked {
			if end := s.seq + uint32(s.length); !found || seqGT(end, hi) {
				hi = end
				found = true
			}
		}
	}
	if !found {
		return
	}
	lostBelow := hi - uint32(3*c.cfg.MSS) // dupThresh worth of headroom
	// RACK-style re-arming: a hole whose last transmission is older
	// than about one RTT and still unacknowledged was lost again and
	// may be resent. Without this, a lost retransmission leaves its
	// hole unrepairable until an RTO that partial acks keep pushing
	// away.
	reXmitAfter := c.rto
	now := c.cfg.Clock.Now()
	for _, s := range c.inflight {
		if budget == 0 {
			return
		}
		if s.sacked {
			continue
		}
		if s.retransmitted && now.Sub(s.sentAt) < reXmitAfter {
			continue
		}
		if seqGEQ(s.seq+uint32(s.length), lostBelow) {
			return // ordered list: nothing further qualifies
		}
		c.retransmitSeg(s)
		budget--
	}
}

// trySend pushes as much data as the windows, pacing, and buffer allow.
func (c *Conn) trySend() {
	if c.closed {
		return
	}
	canSendData := c.state == StateEstablished || c.state == StateCloseWait
	if !canSendData {
		return
	}
	now := c.cfg.Clock.Now()
	for {
		sent := seqDiff(c.sndNxt, c.sndUna)
		if c.finSent {
			sent--
		}
		avail := c.sndBuf.Len() - sent // unsent bytes in the buffer
		if avail < 0 {
			avail = 0
		}
		cwndAvail := c.ctrl.CWnd + c.dupAcks*c.cfg.MSS - c.outstanding()
		wndAvail := c.sndWnd - sent

		if avail == 0 {
			if c.finQueued && !c.finSent {
				c.emitFIN()
			}
			return
		}
		if wndAvail <= 0 {
			c.armPersist()
			return
		}
		n := min(min(c.cfg.MSS, avail), min(cwndAvail, wndAvail))
		if n <= 0 {
			return // congestion-window limited; acks will reopen
		}
		// Nagle (RFC 896): hold small segments while data is in flight.
		if c.cfg.Nagle && n < c.cfg.MSS && c.outstanding() > 0 && !c.finQueued {
			return
		}
		// Pacing gate.
		if c.ctrl.PacingRate > 0 {
			if c.paceNext > now {
				c.armPacing(c.paceNext.Sub(now))
				return
			}
			gap := time.Duration(float64(n) / c.ctrl.PacingRate * float64(time.Second))
			base := c.paceNext
			if base < now {
				base = now
			}
			c.paceNext = base.Add(gap)
		}

		// Take a zero-copy view of the next contiguous run. It may fall
		// short of n at a span boundary (e.g. the seam between two
		// huge-page chunks); the segment is clipped there so that every
		// tracked segment lies within one span and retransmissions can
		// also be served without copying.
		payload := c.sndBuf.Contig(sent, n)
		got := len(payload)
		if got == 0 {
			return
		}

		h := &Header{
			Flags:  FlagACK,
			Seq:    c.sndNxt,
			Ack:    c.rcvNxt,
			Window: c.advertisedWindow(),
		}
		if got == avail {
			h.Flags |= FlagPSH
		}
		meta := &segMeta{
			seq:                 c.sndNxt,
			length:              got,
			sentAt:              now,
			deliveredAtSend:     c.delivered,
			deliveredTimeAtSend: c.deliveredAt,
			appLimited:          got == avail && cwndAvail-got > 0,
		}
		c.inflight = append(c.inflight, meta)
		c.sndNxt += uint32(got)
		c.sndMax = seqMax(c.sndMax, c.sndNxt)
		c.unackedSegs = 0
		if c.delackTimer != nil {
			c.delackTimer.Stop()
		}
		c.transmit(h, payload, c.ecnEnabled)
		c.armRTO()
	}
}

// emitFIN sends our FIN and advances the state machine.
func (c *Conn) emitFIN() {
	c.finSent = true
	c.finSeq = c.sndNxt
	h := &Header{
		Flags:  FlagFIN | FlagACK,
		Seq:    c.sndNxt,
		Ack:    c.rcvNxt,
		Window: c.advertisedWindow(),
	}
	c.inflight = append(c.inflight, &segMeta{
		seq: c.sndNxt, length: 0, fin: true,
		sentAt: c.cfg.Clock.Now(), deliveredAtSend: c.delivered,
	})
	c.sndNxt++
	c.sndMax = seqMax(c.sndMax, c.sndNxt)
	switch c.state {
	case StateEstablished:
		c.state = StateFinWait1
	case StateCloseWait:
		c.state = StateLastAck
	}
	c.transmit(h, nil, false)
	c.armRTO()
}

// --- timers ---

func (c *Conn) armRTO() {
	if c.rtoTimer != nil {
		c.rtoTimer.Stop()
	}
	c.rtoTimer = c.cfg.Clock.AfterFunc(c.rto, c.onRTO)
}

func (c *Conn) stopRTO() {
	if c.rtoTimer != nil {
		c.rtoTimer.Stop()
		c.rtoTimer = nil
	}
}

func (c *Conn) onRTO() {
	if c.closed {
		return
	}
	c.stats.RTOs++
	c.backoff++
	c.rto *= 2
	if c.rto > maxRTO {
		c.rto = maxRTO
	}
	if c.backoff > 10 {
		c.teardown(errTimeout{})
		return
	}

	switch c.state {
	case StateSynSent:
		c.sendSYN(false)
		c.armRTO()
		return
	case StateSynRcvd:
		c.sendSYN(true)
		c.armRTO()
		return
	}

	now := c.cfg.Clock.Now().Duration()
	c.cc.OnLoss(&c.ctrl, tcpcc.LossRTO, now)
	c.inRecovery = false
	c.ctrl.InRecovery = false
	c.dupAcks = 0
	c.paceNext = 0

	if len(c.inflight) > 0 {
		// Standard RFC 6298 behaviour: retransmit the earliest
		// outstanding segment and keep the SACK scoreboard. Clearing
		// the retransmitted marks lets SACK-driven recovery resend
		// holes whose earlier retransmission was itself lost.
		for _, s := range c.inflight {
			s.retransmitted = false
		}
		c.retransmitFront()
		c.trySend()
		c.armRTO()
		return
	}

	// Nothing tracked (e.g. a lost FIN-only segment): rewind and
	// resend from the cumulative ack.
	c.sndNxt = c.sndUna
	if c.finSent {
		c.finSent = false // FIN will be re-emitted after the data
	}
	c.trySend()
	c.armRTO()
}

type errTimeout struct{}

func (errTimeout) Error() string { return "tcp: connection timed out" }
func (errTimeout) Timeout() bool { return true }

func (c *Conn) armPacing(d time.Duration) {
	if c.pacePinned {
		return
	}
	c.pacePinned = true
	c.paceTimer = c.cfg.Clock.AfterFunc(d, func() {
		c.pacePinned = false
		if !c.closed {
			c.trySend()
		}
	})
}

func (c *Conn) armPersist() {
	if c.persistTimer != nil || c.outstanding() > 0 {
		return // RTO already guards outstanding data
	}
	c.persistTimer = c.cfg.Clock.AfterFunc(c.rto, func() {
		c.persistTimer = nil
		if c.closed || c.sndWnd > 0 {
			return
		}
		c.sendWindowProbe()
		c.armPersist()
	})
}

// sendWindowProbe transmits one byte past the closed window without
// advancing sndNxt; the peer's response re-advertises its window.
func (c *Conn) sendWindowProbe() {
	sent := seqDiff(c.sndNxt, c.sndUna)
	if c.finSent {
		sent--
	}
	if c.sndBuf.Len() <= sent {
		return
	}
	var b [1]byte
	if c.sndBuf.Peek(b[:], sent) != 1 {
		return
	}
	h := &Header{Flags: FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt, Window: c.advertisedWindow()}
	c.transmit(h, b[:], false)
}
