package tcp

import (
	"testing"

	"netkernel/internal/proto/ipv4"
)

func BenchmarkSegmentMarshal(b *testing.B) {
	h := Header{SrcPort: 40000, DstPort: 80, Seq: 1000, Ack: 2000, Flags: FlagACK | FlagPSH, Window: 65535}
	payload := make([]byte, 1448)
	src, dst := ipv4.Addr{10, 0, 0, 1}, ipv4.Addr{10, 0, 0, 2}
	buf := make([]byte, h.Len()+len(payload))
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.MarshalInto(src, dst, buf, payload)
	}
}

func BenchmarkSegmentParse(b *testing.B) {
	h := Header{SrcPort: 40000, DstPort: 80, Seq: 1000, Ack: 2000, Flags: FlagACK, Window: 65535}
	src, dst := ipv4.Addr{10, 0, 0, 1}, ipv4.Addr{10, 0, 0, 2}
	seg := h.Marshal(src, dst, make([]byte, 1448))
	b.SetBytes(int64(len(seg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Parse(src, dst, seg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkByteRingWriteRead(b *testing.B) {
	r := newByteRing(1 << 20)
	chunk := make([]byte, 1448)
	b.SetBytes(1448)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Write(chunk)
		r.Read(chunk)
	}
}
