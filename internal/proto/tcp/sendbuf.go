package tcp

// span is one region of the send buffer. Owned spans hold bytes copied
// in by Write and may be extended in place; borrowed spans alias memory
// the caller handed over via WriteOwned (a huge-page chunk, in
// NetKernel's case) and carry a release hook that fires when the last
// covering byte leaves the buffer.
type span struct {
	data    []byte
	release func()
	owned   bool
}

// sendBuffer is a scatter-gather replacement for the send-side byteRing:
// a FIFO of spans addressed by byte offset from the unacknowledged
// front. Segments (including retransmissions) take contiguous views into
// the spans instead of copying payload out, and cumulative-ACK Discard
// releases a borrowed span only once every byte it covers has been
// discarded — which is what makes handing a refcounted huge-page chunk
// to the connection safe across retransmissions.
type sendBuffer struct {
	capacity int
	n        int // total buffered bytes
	spans    []span
	// Scan cache: spans[cacheIdx] starts at buffer offset cacheStart.
	// Transmits walk the buffer sequentially, so seek resumes from the
	// last hit instead of scanning from the front — with a deep buffer
	// full of chunk-sized borrowed spans a cold scan is O(spans) per
	// segment, which dominated the 40 GbE experiments.
	cacheIdx   int
	cacheStart int
}

func newSendBuffer(capacity int) *sendBuffer {
	if capacity <= 0 {
		panic("tcp: sendBuffer capacity must be positive")
	}
	return &sendBuffer{capacity: capacity}
}

// Cap returns the configured capacity in bytes.
func (b *sendBuffer) Cap() int { return b.capacity }

// Len returns the buffered byte count.
func (b *sendBuffer) Len() int { return b.n }

// Free returns the remaining capacity.
func (b *sendBuffer) Free() int { return b.capacity - b.n }

// Empty reports whether the buffer holds no bytes.
func (b *sendBuffer) Empty() bool { return b.n == 0 }

// Write copies p into owned storage, coalescing into the tail span when
// it is owned, and returns the bytes accepted (bounded by Free).
func (b *sendBuffer) Write(p []byte) int {
	n := min(len(p), b.Free())
	if n == 0 {
		return 0
	}
	if k := len(b.spans); k > 0 && b.spans[k-1].owned {
		b.spans[k-1].data = append(b.spans[k-1].data, p[:n]...)
	} else {
		d := make([]byte, n)
		copy(d, p)
		b.spans = append(b.spans, span{data: d, owned: true})
	}
	b.n += n
	return n
}

// WriteOwned appends a borrowed span without copying. It is
// all-or-nothing: on false the caller keeps ownership (and release does
// not fire); on true the buffer owns the span and will invoke release
// exactly once, when the last covering byte is discarded (cumulatively
// ACKed) or the buffer is torn down.
func (b *sendBuffer) WriteOwned(data []byte, release func()) bool {
	if len(data) == 0 {
		if release != nil {
			release()
		}
		return true
	}
	if len(data) > b.Free() {
		return false
	}
	b.spans = append(b.spans, span{data: data, release: release})
	b.n += len(data)
	return true
}

// seek locates offset off: the span index and the offset within it.
// Amortized O(1) for the sequential access pattern of trySend; a
// backward jump (retransmission) restarts the scan from the front.
func (b *sendBuffer) seek(off int) (int, int) {
	i, base := 0, 0
	if b.cacheIdx < len(b.spans) && off >= b.cacheStart {
		i, base = b.cacheIdx, b.cacheStart
	}
	rel := off - base
	for ; i < len(b.spans); i++ {
		if rel < len(b.spans[i].data) {
			b.cacheIdx, b.cacheStart = i, off-rel
			return i, rel
		}
		rel -= len(b.spans[i].data)
	}
	return len(b.spans), 0
}

// Contig returns a view of the longest contiguous run starting at
// offset off, at most n bytes, without copying. The view aliases buffer
// memory and is only valid until the next buffer mutation; transmit
// paths consume it synchronously (the Output contract).
func (b *sendBuffer) Contig(off, n int) []byte {
	if off < 0 || off >= b.n || n <= 0 {
		return nil
	}
	if off+n > b.n {
		n = b.n - off
	}
	i, rel := b.seek(off)
	if i == len(b.spans) {
		return nil
	}
	end := min(rel+n, len(b.spans[i].data))
	return b.spans[i].data[rel:end]
}

// Peek copies up to len(p) bytes starting at offset off into p,
// returning the bytes copied. Retained for the rare consumers that need
// a stable copy (window probes).
func (b *sendBuffer) Peek(p []byte, off int) int {
	if off < 0 || off >= b.n {
		return 0
	}
	want := min(len(p), b.n-off)
	i, rel := b.seek(off)
	got := 0
	for got < want && i < len(b.spans) {
		got += copy(p[got:want], b.spans[i].data[rel:])
		rel = 0
		i++
	}
	return got
}

// Discard drops n bytes from the front (the cumulative-ACK edge),
// firing the release hook of every borrowed span whose last byte is
// passed. Returns the bytes actually discarded.
func (b *sendBuffer) Discard(n int) int {
	if n > b.n {
		n = b.n
	}
	if n <= 0 {
		return 0
	}
	left, popped := n, 0
	for left > 0 {
		sp := &b.spans[0]
		if left < len(sp.data) {
			// Reslice the consumed prefix away instead of tracking a
			// head offset: for the owned tail span this is what bounds
			// memory under a continuous stream — append regrows the
			// backing array from the live suffix (at most the buffer
			// capacity), abandoning the consumed prefix, instead of
			// extending one ever-growing array.
			sp.data = sp.data[left:]
			left = 0
			break
		}
		left -= len(sp.data)
		if sp.release != nil {
			sp.release()
		}
		*sp = span{}
		b.spans = b.spans[1:]
		popped++
	}
	if len(b.spans) == 0 {
		b.spans = nil
	}
	// Shift the scan cache down with the front edge.
	if popped > b.cacheIdx {
		b.cacheIdx, b.cacheStart = 0, 0
	} else {
		b.cacheIdx -= popped
		if b.cacheStart -= n; b.cacheStart < 0 {
			b.cacheStart = 0
		}
	}
	b.n -= n
	return n
}

// ReleaseAll fires every outstanding release hook and empties the
// buffer. Called on connection teardown so borrowed chunks return to
// their pool even when the connection dies with unacknowledged data.
func (b *sendBuffer) ReleaseAll() {
	for i := range b.spans {
		if b.spans[i].release != nil {
			b.spans[i].release()
		}
		b.spans[i] = span{}
	}
	b.spans = nil
	b.n = 0
	b.cacheIdx, b.cacheStart = 0, 0
}
