package tcp

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"netkernel/internal/proto/ipv4"
)

var (
	srcAddr = ipv4.Addr{10, 0, 0, 1}
	dstAddr = ipv4.Addr{10, 0, 0, 2}
)

func TestMarshalParseBareHeader(t *testing.T) {
	h := Header{
		SrcPort: 43210, DstPort: 80,
		Seq: 0x01020304, Ack: 0x0a0b0c0d,
		Flags: FlagACK | FlagPSH, Window: 65535,
	}
	payload := []byte("GET / HTTP/1.1\r\n")
	seg := h.Marshal(srcAddr, dstAddr, payload)
	got, pl, err := Parse(srcAddr, dstAddr, seg)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != h.SrcPort || got.Seq != h.Seq || got.Ack != h.Ack || got.Flags != h.Flags || got.Window != h.Window {
		t.Fatalf("header = %+v", got)
	}
	if !bytes.Equal(pl, payload) {
		t.Fatalf("payload = %q", pl)
	}
	if len(seg) != MinHeaderLen+len(payload) {
		t.Fatalf("bare header serialized to %d bytes", len(seg))
	}
}

func TestMarshalParseSYNOptions(t *testing.T) {
	h := Header{
		SrcPort: 1, DstPort: 2, Seq: 100, Flags: FlagSYN, Window: 65535,
		Opts: Options{
			MSS: 1460, WScale: 9, WScaleOK: true, SACKPermitted: true,
			TSVal: 12345, TSEcr: 0, TSOK: true,
		},
	}
	seg := h.Marshal(srcAddr, dstAddr, nil)
	got, _, err := Parse(srcAddr, dstAddr, seg)
	if err != nil {
		t.Fatal(err)
	}
	o := got.Opts
	if o.MSS != 1460 || !o.WScaleOK || o.WScale != 9 || !o.SACKPermitted || !o.TSOK || o.TSVal != 12345 {
		t.Fatalf("options = %+v", o)
	}
}

func TestMarshalParseSACKBlocks(t *testing.T) {
	h := Header{
		SrcPort: 1, DstPort: 2, Seq: 1, Ack: 1000, Flags: FlagACK, Window: 100,
		Opts: Options{
			SACKBlocks: []SACKBlock{{Start: 2000, End: 3000}, {Start: 4000, End: 4500}},
			TSVal:      9, TSEcr: 8, TSOK: true,
		},
	}
	seg := h.Marshal(srcAddr, dstAddr, nil)
	got, _, err := Parse(srcAddr, dstAddr, seg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Opts.SACKBlocks, h.Opts.SACKBlocks) {
		t.Fatalf("SACK blocks = %+v", got.Opts.SACKBlocks)
	}
	if !got.Opts.TSOK || got.Opts.TSVal != 9 || got.Opts.TSEcr != 8 {
		t.Fatalf("timestamps lost alongside SACK: %+v", got.Opts)
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	h := Header{SrcPort: 1, DstPort: 2, Flags: FlagACK}
	seg := h.Marshal(srcAddr, dstAddr, []byte("data"))
	seg[MinHeaderLen] ^= 0x80
	if _, _, err := Parse(srcAddr, dstAddr, seg); err == nil {
		t.Fatal("corrupt segment accepted")
	}
	// Pseudo-header coverage.
	seg2 := h.Marshal(srcAddr, dstAddr, []byte("data"))
	if _, _, err := Parse(ipv4.Addr{1, 2, 3, 4}, dstAddr, seg2); err == nil {
		t.Fatal("segment accepted under wrong source address")
	}
}

func TestParseRejectsBadOffsets(t *testing.T) {
	if _, _, err := Parse(srcAddr, dstAddr, make([]byte, 10)); err == nil {
		t.Fatal("short segment accepted")
	}
	h := Header{SrcPort: 1, DstPort: 2, Flags: FlagACK}
	seg := h.Marshal(srcAddr, dstAddr, nil)
	seg[12] = 15 << 4 // data offset beyond segment
	if _, _, err := Parse(srcAddr, dstAddr, seg); err == nil {
		t.Fatal("bad data offset accepted")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	err := quick.Check(func(sp, dp uint16, seq, ack uint32, flags uint8, win uint16, payload []byte, mss uint16, ws uint8, sack, ts bool, tsv, tse uint32) bool {
		if len(payload) > 8000 {
			payload = payload[:8000]
		}
		h := Header{
			SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack,
			Flags: Flags(flags), Window: win,
			Opts: Options{MSS: mss, WScale: ws % 15, WScaleOK: ws%2 == 0, SACKPermitted: sack, TSOK: ts, TSVal: tsv, TSEcr: tse},
		}
		seg := h.Marshal(srcAddr, dstAddr, payload)
		got, pl, err := Parse(srcAddr, dstAddr, seg)
		if err != nil || !bytes.Equal(pl, payload) {
			return false
		}
		if got.SrcPort != sp || got.DstPort != dp || got.Seq != seq || got.Ack != ack || got.Flags != Flags(flags) || got.Window != win {
			return false
		}
		if got.Opts.MSS != mss || got.Opts.SACKPermitted != sack || got.Opts.TSOK != ts {
			return false
		}
		if ws%2 == 0 && (!got.Opts.WScaleOK || got.Opts.WScale != ws%15) {
			return false
		}
		if ts && (got.Opts.TSVal != tsv || got.Opts.TSEcr != tse) {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFlagsString(t *testing.T) {
	if (FlagSYN | FlagACK).String() != "SYN|ACK" {
		t.Fatalf("Flags String = %q", (FlagSYN | FlagACK).String())
	}
	if Flags(0).String() != "none" {
		t.Fatal("zero flags String broken")
	}
}

func TestHeaderLenPadding(t *testing.T) {
	// A lone window-scale option (3 bytes) must pad to 4.
	h := Header{Flags: FlagSYN, Opts: Options{WScaleOK: true, WScale: 7}}
	if h.Len() != MinHeaderLen+4 {
		t.Fatalf("Len = %d, want %d", h.Len(), MinHeaderLen+4)
	}
	seg := h.Marshal(srcAddr, dstAddr, nil)
	got, _, err := Parse(srcAddr, dstAddr, seg)
	if err != nil || !got.Opts.WScaleOK || got.Opts.WScale != 7 {
		t.Fatalf("padded options broken: %+v, %v", got.Opts, err)
	}
}
