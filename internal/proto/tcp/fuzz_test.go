package tcp

import (
	"reflect"
	"testing"

	"netkernel/internal/proto/ipv4"
)

var fuzzSrc = ipv4.Addr{10, 0, 0, 1}
var fuzzDst = ipv4.Addr{10, 0, 0, 2}

// FuzzTCPParse hammers the segment parser with arbitrary bytes. Parse
// must never panic, and any segment it accepts must round-trip: the
// parsed header re-marshalled and re-parsed yields the same header and
// payload.
func FuzzTCPParse(f *testing.F) {
	syn := Header{
		SrcPort: 40000, DstPort: 80, Seq: 0x1000, Flags: FlagSYN, Window: 65535,
		Opts: Options{MSS: 1460, WScaleOK: true, WScale: 7, SACKPermitted: true, TSOK: true, TSVal: 1, TSEcr: 0},
	}
	f.Add(syn.Marshal(fuzzSrc, fuzzDst, nil))
	data := Header{SrcPort: 80, DstPort: 40000, Seq: 7, Ack: 0x1001, Flags: FlagACK | FlagPSH, Window: 1024}
	f.Add(data.Marshal(fuzzSrc, fuzzDst, []byte("hello from the fuzz corpus")))
	sack := Header{
		SrcPort: 1, DstPort: 2, Seq: 3, Ack: 4, Flags: FlagACK, Window: 5,
		Opts: Options{SACKBlocks: []SACKBlock{{Start: 10, End: 20}, {Start: 30, End: 40}}},
	}
	f.Add(sack.Marshal(fuzzSrc, fuzzDst, nil))
	f.Add([]byte{})
	f.Add(make([]byte, MinHeaderLen))

	f.Fuzz(func(t *testing.T, b []byte) {
		h, payload, err := Parse(fuzzSrc, fuzzDst, b)
		if err != nil {
			return
		}
		if len(payload) > len(b)-MinHeaderLen {
			t.Fatalf("payload of %d bytes from a %d-byte segment", len(payload), len(b))
		}
		rt := h.Marshal(fuzzSrc, fuzzDst, payload)
		h2, payload2, err := Parse(fuzzSrc, fuzzDst, rt)
		if err != nil {
			t.Fatalf("re-parse of accepted segment failed: %v", err)
		}
		if !reflect.DeepEqual(h, h2) {
			t.Fatalf("header round trip: %+v vs %+v", h, h2)
		}
		if string(payload) != string(payload2) {
			t.Fatalf("payload round trip changed %d bytes", len(payload))
		}
	})
}
