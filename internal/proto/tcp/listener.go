package tcp

// NewPassive builds a passive-open connection answering the given SYN:
// it transmits the SYN-ACK immediately. ecnRequested reports whether
// the SYN asked for ECN (RFC 3168 ECE+CWR); it is honored only when the
// connection's congestion control wants ECN.
func NewPassive(cfg Config, syn *Header, ecnRequested bool) *Conn {
	return newPassive(cfg, syn, ecnRequested)
}

// A Listener is the accept queue for one listening port. The owning
// stack creates passive connections on inbound SYNs and deposits them
// here once established.
type Listener struct {
	local      AddrPort
	maxBacklog int
	backlog    []*Conn

	// OnAcceptable fires when Accept transitions from empty to ready.
	OnAcceptable func()
}

// NewListener builds a listener; backlog <= 0 selects 128.
func NewListener(local AddrPort, backlog int) *Listener {
	if backlog <= 0 {
		backlog = 128
	}
	return &Listener{local: local, maxBacklog: backlog}
}

// Addr returns the listening endpoint.
func (l *Listener) Addr() AddrPort { return l.local }

// Full reports whether the backlog is at capacity (new SYNs should be
// dropped, the classic listen-queue overflow).
func (l *Listener) Full() bool { return len(l.backlog) >= l.maxBacklog }

// MaxBacklog returns the backlog capacity.
func (l *Listener) MaxBacklog() int { return l.maxBacklog }

// Deposit queues an established connection for Accept.
func (l *Listener) Deposit(c *Conn) {
	wasEmpty := len(l.backlog) == 0
	l.backlog = append(l.backlog, c)
	if wasEmpty && l.OnAcceptable != nil {
		l.OnAcceptable()
	}
}

// Accept pops the oldest established connection, reporting false when
// none is ready.
func (l *Listener) Accept() (*Conn, bool) {
	if len(l.backlog) == 0 {
		return nil, false
	}
	c := l.backlog[0]
	l.backlog = l.backlog[1:]
	return c, true
}

// Pending returns the number of connections awaiting Accept.
func (l *Listener) Pending() int { return len(l.backlog) }
