package tcp

import (
	"bytes"
	"testing"
)

// The lazy byteRing (DESIGN.md §11): logical capacity is fixed at
// construction and governs Free/Write admission, while the physical
// array only materializes as bytes are buffered.

func TestByteRingLazyAllocation(t *testing.T) {
	r := newByteRing(1 << 20)
	if len(r.buf) != 0 {
		t.Fatalf("fresh ring allocated %d bytes", len(r.buf))
	}
	if r.Cap() != 1<<20 || r.Free() != 1<<20 || r.Len() != 0 || !r.Empty() {
		t.Fatalf("fresh ring reports Cap=%d Free=%d Len=%d", r.Cap(), r.Free(), r.Len())
	}
	if n := r.Write([]byte("hello")); n != 5 {
		t.Fatalf("Write = %d", n)
	}
	if len(r.buf) == 0 || len(r.buf) > ringMinAlloc {
		t.Fatalf("5-byte write materialized %d bytes", len(r.buf))
	}
	if r.Free() != 1<<20-5 {
		t.Fatalf("Free = %d after 5-byte write", r.Free())
	}
	got := make([]byte, 5)
	if r.Read(got); !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("Read = %q", got)
	}
}

func TestByteRingGrowPreservesContents(t *testing.T) {
	r := newByteRing(1 << 16)
	// Force wraparound in the small physical array, then grow across it.
	first := bytes.Repeat([]byte("a"), ringMinAlloc-10)
	r.Write(first)
	r.Discard(ringMinAlloc - 100) // start is now deep in the array
	r.Write(bytes.Repeat([]byte("b"), 50))
	want := append(bytes.Repeat([]byte("a"), 90), bytes.Repeat([]byte("b"), 50)...)
	r.Write(bytes.Repeat([]byte("c"), 4*ringMinAlloc)) // forces grow + linearize
	want = append(want, bytes.Repeat([]byte("c"), 4*ringMinAlloc)...)
	got := make([]byte, len(want))
	if n := r.Peek(got, 0); n != len(want) {
		t.Fatalf("Peek = %d, want %d", n, len(want))
	}
	if !bytes.Equal(got, want) {
		t.Fatal("contents corrupted across grow")
	}
}

func TestByteRingAdmissionMatchesEagerRing(t *testing.T) {
	// The lazy ring must admit exactly what an eagerly-allocated ring
	// would: fill to capacity, spill rejected, drain, refill.
	r := newByteRing(100)
	if n := r.Write(bytes.Repeat([]byte("x"), 150)); n != 100 {
		t.Fatalf("overfill admitted %d, want 100", n)
	}
	if len(r.buf) != 100 {
		t.Fatalf("physical array %d, want clamped to capacity 100", len(r.buf))
	}
	if n := r.Write([]byte("y")); n != 0 {
		t.Fatalf("full ring admitted %d", n)
	}
	r.Discard(40)
	if n := r.Write(bytes.Repeat([]byte("z"), 60)); n != 40 {
		t.Fatalf("refill admitted %d, want 40", n)
	}
	if r.Len() != 100 || r.Free() != 0 {
		t.Fatalf("Len=%d Free=%d after refill", r.Len(), r.Free())
	}
}

func TestByteRingDiscardToEmptyResets(t *testing.T) {
	r := newByteRing(1 << 10)
	r.Write([]byte("abc"))
	if n := r.Discard(5); n != 3 {
		t.Fatalf("Discard = %d", n)
	}
	if r.start != 0 || r.n != 0 {
		t.Fatalf("drained ring start=%d n=%d", r.start, r.n)
	}
	// Discard on a never-written ring must not touch the nil array.
	fresh := newByteRing(8)
	if n := fresh.Discard(4); n != 0 {
		t.Fatalf("Discard on fresh ring = %d", n)
	}
}
