package tcp

// byteRing is a bounded FIFO of bytes used for the send and receive
// buffers. It supports reading from an offset without consuming, which
// the send path uses to (re)transmit unacknowledged data.
//
// The backing array is allocated lazily and grows geometrically up to
// the logical capacity (DESIGN.md §11): Cap/Free always report the
// configured bound — so the advertised receive window is exactly what
// an eager allocation would give — but a connection that never buffers
// more than a few KB (short flows, prompt drains, the §8 receive-sink
// bypass) never pays for, or zeroes, the full buffer. Connection-churn
// workloads otherwise spend most of their cycles in memclr for rings
// that are thrown away empty.
type byteRing struct {
	buf   []byte
	cap   int // logical capacity; len(buf) grows lazily toward it
	start int // index of the first byte
	n     int // occupied bytes
}

// ringMinAlloc is the smallest physical allocation once a ring holds
// any bytes at all.
const ringMinAlloc = 1 << 10

func newByteRing(capacity int) *byteRing {
	if capacity <= 0 {
		panic("tcp: non-positive buffer capacity")
	}
	return &byteRing{cap: capacity}
}

func (r *byteRing) Cap() int    { return r.cap }
func (r *byteRing) Len() int    { return r.n }
func (r *byteRing) Free() int   { return r.cap - r.n }
func (r *byteRing) Empty() bool { return r.n == 0 }

// grow ensures the physical buffer holds at least need bytes,
// linearizing the occupied prefix into the new array (start returns
// to 0, so modulo indexing stays valid across the swap).
func (r *byteRing) grow(need int) {
	size := len(r.buf)
	if size == 0 {
		size = ringMinAlloc
	}
	for size < need {
		size *= 2
	}
	if size > r.cap {
		size = r.cap
	}
	buf := make([]byte, size)
	if r.n > 0 {
		first := copy(buf, r.buf[r.start:])
		if first < r.n {
			copy(buf[first:], r.buf[:r.n-first])
		}
	}
	r.buf = buf
	r.start = 0
}

// Write appends as much of p as fits, returning the number of bytes
// accepted.
func (r *byteRing) Write(p []byte) int {
	w := len(p)
	if w > r.Free() {
		w = r.Free()
	}
	if w == 0 {
		return 0
	}
	if r.n+w > len(r.buf) {
		r.grow(r.n + w)
	}
	end := (r.start + r.n) % len(r.buf)
	first := copy(r.buf[end:], p[:w])
	if first < w {
		copy(r.buf, p[first:w])
	}
	r.n += w
	return w
}

// Peek copies up to len(p) bytes starting at offset off (without
// consuming) and returns the number copied.
func (r *byteRing) Peek(p []byte, off int) int {
	if off < 0 || off >= r.n {
		return 0
	}
	w := len(p)
	if w > r.n-off {
		w = r.n - off
	}
	pos := (r.start + off) % len(r.buf)
	first := copy(p[:w], r.buf[pos:])
	if first < w {
		copy(p[first:w], r.buf)
	}
	return w
}

// Discard consumes n bytes from the front, returning how many were
// actually consumed.
func (r *byteRing) Discard(n int) int {
	if n > r.n {
		n = r.n
	}
	r.n -= n
	if r.n == 0 {
		r.start = 0
	} else {
		r.start = (r.start + n) % len(r.buf)
	}
	return n
}

// Read consumes up to len(p) bytes into p.
func (r *byteRing) Read(p []byte) int {
	n := r.Peek(p, 0)
	r.Discard(n)
	return n
}
