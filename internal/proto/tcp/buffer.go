package tcp

// byteRing is a bounded FIFO of bytes used for the send and receive
// buffers. It supports reading from an offset without consuming, which
// the send path uses to (re)transmit unacknowledged data.
type byteRing struct {
	buf   []byte
	start int // index of the first byte
	n     int // occupied bytes
}

func newByteRing(capacity int) *byteRing {
	if capacity <= 0 {
		panic("tcp: non-positive buffer capacity")
	}
	return &byteRing{buf: make([]byte, capacity)}
}

func (r *byteRing) Cap() int    { return len(r.buf) }
func (r *byteRing) Len() int    { return r.n }
func (r *byteRing) Free() int   { return len(r.buf) - r.n }
func (r *byteRing) Empty() bool { return r.n == 0 }

// Write appends as much of p as fits, returning the number of bytes
// accepted.
func (r *byteRing) Write(p []byte) int {
	w := len(p)
	if w > r.Free() {
		w = r.Free()
	}
	end := (r.start + r.n) % len(r.buf)
	first := copy(r.buf[end:], p[:w])
	if first < w {
		copy(r.buf, p[first:w])
	}
	r.n += w
	return w
}

// Peek copies up to len(p) bytes starting at offset off (without
// consuming) and returns the number copied.
func (r *byteRing) Peek(p []byte, off int) int {
	if off < 0 || off >= r.n {
		return 0
	}
	w := len(p)
	if w > r.n-off {
		w = r.n - off
	}
	pos := (r.start + off) % len(r.buf)
	first := copy(p[:w], r.buf[pos:])
	if first < w {
		copy(p[first:w], r.buf)
	}
	return w
}

// Discard consumes n bytes from the front, returning how many were
// actually consumed.
func (r *byteRing) Discard(n int) int {
	if n > r.n {
		n = r.n
	}
	r.start = (r.start + n) % len(r.buf)
	r.n -= n
	return n
}

// Read consumes up to len(p) bytes into p.
func (r *byteRing) Read(p []byte) int {
	n := r.Peek(p, 0)
	r.Discard(n)
	return n
}
