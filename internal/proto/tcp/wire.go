// Package tcp implements the TCP wire format and a full event-driven
// TCP state machine with pluggable congestion control.
//
// This is the "network stack" a Network Stack Module hosts: the paper's
// prototype ports the Linux 4.9 TCP/IP stack including BBR (§4.1); here
// the equivalent from-scratch stack runs against a sim.Clock so it works
// in virtual and wall-clock time (see DESIGN.md §2 for the
// substitution).
package tcp

import (
	"encoding/binary"
	"fmt"

	"netkernel/internal/proto/inet"
	"netkernel/internal/proto/ipv4"
)

// MinHeaderLen is the TCP header size without options.
const MinHeaderLen = 20

// MaxHeaderLen bounds the header with options.
const MaxHeaderLen = 60

// Flags is the TCP flag byte plus the two ECN flags.
type Flags uint16

// TCP flags.
const (
	FlagFIN Flags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
	FlagECE // ECN echo
	FlagCWR // congestion window reduced
)

func (f Flags) String() string {
	names := []struct {
		bit  Flags
		name string
	}{
		{FlagSYN, "SYN"}, {FlagFIN, "FIN"}, {FlagRST, "RST"}, {FlagPSH, "PSH"},
		{FlagACK, "ACK"}, {FlagURG, "URG"}, {FlagECE, "ECE"}, {FlagCWR, "CWR"},
	}
	s := ""
	for _, n := range names {
		if f&n.bit != 0 {
			if s != "" {
				s += "|"
			}
			s += n.name
		}
	}
	if s == "" {
		return "none"
	}
	return s
}

// Options are the TCP options the stack understands.
type Options struct {
	// MSS advertises the maximum segment size (SYN only). 0 = absent.
	MSS uint16
	// WScale advertises the window scale shift (SYN only).
	WScale uint8
	// WScaleOK records whether the option was present.
	WScaleOK bool
	// SACKPermitted advertises selective-acknowledgment support (SYN).
	SACKPermitted bool
	// SACKBlocks lists received out-of-order ranges (data segments).
	SACKBlocks []SACKBlock
	// TSVal and TSEcr carry RFC 7323 timestamps when TSOK.
	TSVal, TSEcr uint32
	TSOK         bool
}

// SACKBlock is one selective-acknowledgment range [Start, End).
type SACKBlock struct {
	Start, End uint32
}

// MaxSACKBlocks is the most blocks that fit alongside timestamps.
const MaxSACKBlocks = 3

// Header is a decoded TCP header.
type Header struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   Flags
	Window  uint16
	Urgent  uint16
	Opts    Options
}

func (h *Header) optLen() int {
	n := 0
	if h.Opts.MSS != 0 {
		n += 4
	}
	if h.Opts.WScaleOK {
		n += 3
	}
	if h.Opts.SACKPermitted {
		n += 2
	}
	if h.Opts.TSOK {
		n += 10
	}
	if len(h.Opts.SACKBlocks) > 0 {
		n += 2 + 8*len(h.Opts.SACKBlocks)
	}
	return (n + 3) &^ 3 // pad to 32-bit boundary
}

// Len returns the marshalled header length including options.
func (h *Header) Len() int { return MinHeaderLen + h.optLen() }

// Marshal serializes header + payload into a fresh segment, computing
// the checksum over the IPv4 pseudo-header.
func (h *Header) Marshal(src, dst ipv4.Addr, payload []byte) []byte {
	hl := h.Len()
	b := make([]byte, hl+len(payload))
	h.MarshalInto(src, dst, b, payload)
	return b
}

// MarshalInto serializes into b, which must be exactly Len()+len(payload)
// bytes. It lets callers serialize directly into a frame buffer.
func (h *Header) MarshalInto(src, dst ipv4.Addr, b, payload []byte) {
	hl := h.Len()
	if len(b) != hl+len(payload) {
		panic(fmt.Sprintf("tcp: buffer %d for segment %d+%d", len(b), hl, len(payload)))
	}
	binary.BigEndian.PutUint16(b[0:], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:], h.DstPort)
	binary.BigEndian.PutUint32(b[4:], h.Seq)
	binary.BigEndian.PutUint32(b[8:], h.Ack)
	b[12] = byte(hl/4) << 4
	b[13] = byte(h.Flags & 0xff)
	binary.BigEndian.PutUint16(b[14:], h.Window)
	b[16], b[17] = 0, 0 // checksum placeholder
	binary.BigEndian.PutUint16(b[18:], h.Urgent)

	o := b[MinHeaderLen:hl]
	i := 0
	if h.Opts.MSS != 0 {
		o[i], o[i+1] = 2, 4
		binary.BigEndian.PutUint16(o[i+2:], h.Opts.MSS)
		i += 4
	}
	if h.Opts.WScaleOK {
		o[i], o[i+1], o[i+2] = 3, 3, h.Opts.WScale
		i += 3
	}
	if h.Opts.SACKPermitted {
		o[i], o[i+1] = 4, 2
		i += 2
	}
	if h.Opts.TSOK {
		o[i], o[i+1] = 8, 10
		binary.BigEndian.PutUint32(o[i+2:], h.Opts.TSVal)
		binary.BigEndian.PutUint32(o[i+6:], h.Opts.TSEcr)
		i += 10
	}
	if n := len(h.Opts.SACKBlocks); n > 0 {
		o[i], o[i+1] = 5, byte(2+8*n)
		i += 2
		for _, blk := range h.Opts.SACKBlocks {
			binary.BigEndian.PutUint32(o[i:], blk.Start)
			binary.BigEndian.PutUint32(o[i+4:], blk.End)
			i += 8
		}
	}
	for ; i < len(o); i++ {
		o[i] = 1 // NOP padding
	}

	copy(b[hl:], payload)
	csum := inet.Checksum(b, inet.PseudoHeaderSum(src, dst, ipv4.ProtoTCP, len(b)))
	binary.BigEndian.PutUint16(b[16:], csum)
}

// Parse decodes and validates a segment; payload aliases b.
func Parse(src, dst ipv4.Addr, b []byte) (Header, []byte, error) {
	if len(b) < MinHeaderLen {
		return Header{}, nil, fmt.Errorf("tcp: segment of %d bytes shorter than header", len(b))
	}
	hl := int(b[12]>>4) * 4
	if hl < MinHeaderLen || hl > len(b) {
		return Header{}, nil, fmt.Errorf("tcp: bad data offset %d", hl)
	}
	if !inet.Verify(b, inet.PseudoHeaderSum(src, dst, ipv4.ProtoTCP, len(b))) {
		return Header{}, nil, fmt.Errorf("tcp: checksum mismatch")
	}
	var h Header
	h.SrcPort = binary.BigEndian.Uint16(b[0:])
	h.DstPort = binary.BigEndian.Uint16(b[2:])
	h.Seq = binary.BigEndian.Uint32(b[4:])
	h.Ack = binary.BigEndian.Uint32(b[8:])
	h.Flags = Flags(b[13])
	h.Window = binary.BigEndian.Uint16(b[14:])
	h.Urgent = binary.BigEndian.Uint16(b[18:])

	o := b[MinHeaderLen:hl]
	for i := 0; i < len(o); {
		switch o[i] {
		case 0: // end of options
			i = len(o)
		case 1: // NOP
			i++
		default:
			if i+1 >= len(o) {
				return Header{}, nil, fmt.Errorf("tcp: truncated option")
			}
			l := int(o[i+1])
			if l < 2 || i+l > len(o) {
				return Header{}, nil, fmt.Errorf("tcp: bad option length %d", l)
			}
			body := o[i+2 : i+l]
			switch o[i] {
			case 2:
				if len(body) == 2 {
					h.Opts.MSS = binary.BigEndian.Uint16(body)
				}
			case 3:
				if len(body) == 1 {
					h.Opts.WScale = body[0]
					h.Opts.WScaleOK = true
				}
			case 4:
				h.Opts.SACKPermitted = true
			case 5:
				for j := 0; j+8 <= len(body); j += 8 {
					h.Opts.SACKBlocks = append(h.Opts.SACKBlocks, SACKBlock{
						Start: binary.BigEndian.Uint32(body[j:]),
						End:   binary.BigEndian.Uint32(body[j+4:]),
					})
				}
			case 8:
				if len(body) == 8 {
					h.Opts.TSVal = binary.BigEndian.Uint32(body)
					h.Opts.TSEcr = binary.BigEndian.Uint32(body[4:])
					h.Opts.TSOK = true
				}
			}
			i += l
		}
	}
	return h, b[hl:], nil
}
