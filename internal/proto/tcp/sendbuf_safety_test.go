package tcp

import (
	"bytes"
	"testing"
	"time"

	"netkernel/internal/shm"
	"netkernel/internal/sim"
)

// These tests pin down the ownership contract of WriteOwned: a
// borrowed huge-page chunk must stay alive (refcount held, release not
// fired) until the cumulative ACK passes its last byte — including
// when segments covering it are lost and retransmitted — and must be
// released exactly once afterwards. An early release here would be a
// use-after-free on the retransmission path; a missed one leaks the
// chunk. The shm pool's own panics (double free, retain-after-free)
// act as the tripwires.

// ownedTransfer pushes the pool-backed chunks through a, drains b, and
// returns the received bytes.
func ownedTransfer(t *testing.T, n *testNet, pool *shm.HugePages, chunks []shm.Chunk, deadline time.Duration) []byte {
	t.Helper()
	total := 0
	for _, c := range chunks {
		total += len(pool.Bytes(c))
	}
	next := 0
	pump := func() {
		for next < len(chunks) {
			c := chunks[next]
			if !n.a.WriteOwned(pool.Bytes(c), func() { pool.Free(c) }) {
				return
			}
			next++
		}
	}
	pump()
	var got bytes.Buffer
	buf := make([]byte, 64<<10)
	end := n.loop.Now().Add(deadline)
	for n.loop.Now() < end && got.Len() < total {
		n.loop.RunFor(time.Millisecond)
		pump()
		for {
			m, _ := n.b.Read(buf)
			if m == 0 {
				break
			}
			got.Write(buf[:m])
		}
	}
	return got.Bytes()
}

func TestWriteOwnedSurvivesRetransmission(t *testing.T) {
	n := newTestNet(t)
	n.dialPair("reno", "reno", nil)
	n.establish()

	pool, err := shm.NewHugePages(1, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	chunk, ok := pool.Alloc()
	if !ok {
		t.Fatal("alloc failed")
	}
	want := pool.Bytes(chunk)
	for i := range want {
		want[i] = byte(i * 31)
	}

	// Drop the first transmission of the chunk's first data segment, so
	// delivery depends on a retransmission served from the span.
	dropped := false
	n.drop = func(dir string, h *Header, payload []byte) bool {
		if dir == "a→b" && len(payload) > 0 && !dropped {
			dropped = true
			return true
		}
		return false
	}

	got := ownedTransfer(t, n, pool, []shm.Chunk{chunk}, 5*time.Second)
	if !dropped {
		t.Fatal("test never dropped a segment")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("payload corrupted across retransmission: got %d bytes", len(got))
	}
	// The receiver has everything, but the chunk must stay held until
	// the final ACK walks back to the sender; then it must be freed.
	n.loop.RunFor(100 * time.Millisecond)
	if rc := pool.RefCount(chunk); rc != 0 {
		t.Errorf("chunk still holds %d refs after full ACK", rc)
	}
	if pool.FreeCount() != pool.Chunks() {
		t.Errorf("pool: %d free of %d after full ACK", pool.FreeCount(), pool.Chunks())
	}
}

func TestWriteOwnedHeldWhileUnacked(t *testing.T) {
	n := newTestNet(t)
	n.dialPair("reno", "reno", nil)
	n.establish()

	pool, err := shm.NewHugePages(1, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	chunk, _ := pool.Alloc()

	// Black-hole every data segment: the chunk's bytes can never be
	// ACKed, so the span must keep its reference through every
	// retransmission attempt.
	n.drop = func(dir string, h *Header, payload []byte) bool {
		return dir == "a→b" && len(payload) > 0
	}
	if !n.a.WriteOwned(pool.Bytes(chunk), func() { pool.Free(chunk) }) {
		t.Fatal("WriteOwned rejected a chunk that fits")
	}
	n.loop.RunFor(3 * time.Second)
	if rc := pool.RefCount(chunk); rc != 1 {
		t.Fatalf("chunk refcount = %d during retransmissions, want 1", rc)
	}

	// Teardown releases the span exactly once — the pool would panic on
	// a double free.
	n.a.Abort()
	n.b.Abort()
	n.loop.RunFor(time.Second)
	if pool.FreeCount() != pool.Chunks() {
		t.Errorf("pool: %d free of %d after abort", pool.FreeCount(), pool.Chunks())
	}
	if n := pool.LiveRefs(); n != 0 {
		t.Errorf("%d live refs after abort", n)
	}
}

func TestWriteOwnedUnderRandomLoss(t *testing.T) {
	n := newTestNet(t)
	n.dialPair("cubic", "cubic", nil)
	n.establish()

	pool, err := shm.NewHugePages(1, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	var chunks []shm.Chunk
	var want bytes.Buffer
	for i := 0; i < 32; i++ {
		c, ok := pool.Alloc()
		if !ok {
			t.Fatal("pool exhausted")
		}
		b := pool.Bytes(c)
		for j := range b {
			b[j] = byte(i + j*7)
		}
		want.Write(b)
		chunks = append(chunks, c)
	}

	// 5% deterministic loss in both directions: data segments AND the
	// ACKs that would release spans.
	rng := sim.NewRNG(99)
	n.drop = func(dir string, h *Header, payload []byte) bool {
		return rng.Float64() < 0.05
	}

	got := ownedTransfer(t, n, pool, chunks, 30*time.Second)
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("payload corrupted under loss: got %d of %d bytes", len(got), want.Len())
	}
	n.drop = nil // let the final ACKs through cleanly
	n.loop.RunFor(time.Second)
	if pool.FreeCount() != pool.Chunks() {
		t.Errorf("pool: %d free of %d after lossy transfer", pool.FreeCount(), pool.Chunks())
	}
	if n := pool.LiveRefs(); n != 0 {
		t.Errorf("%d live refs after lossy transfer", n)
	}
}
