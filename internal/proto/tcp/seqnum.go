package tcp

// Sequence-number arithmetic modulo 2³² (RFC 793 §3.3). All comparisons
// are window-relative: a is "less than" b when the signed distance from
// a to b is positive.

func seqLT(a, b uint32) bool  { return int32(a-b) < 0 }
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }
func seqGT(a, b uint32) bool  { return int32(a-b) > 0 }
func seqGEQ(a, b uint32) bool { return int32(a-b) >= 0 }

// seqDiff returns the signed distance from b to a.
func seqDiff(a, b uint32) int { return int(int32(a - b)) }

// seqMax returns the later of two sequence numbers.
func seqMax(a, b uint32) uint32 {
	if seqGT(a, b) {
		return a
	}
	return b
}
