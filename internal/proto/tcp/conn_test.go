package tcp

import (
	"bytes"
	"testing"
	"time"

	"netkernel/internal/proto/ipv4"
	"netkernel/internal/sim"
	"netkernel/internal/tcpcc"
)

// testNet wires two connections through a serializing pipe with a fixed
// one-way delay, optional per-segment drops, and optional ECN marking.
// Every segment round-trips through Marshal/Parse, so these tests cover
// the wire format under the state machine too.
type testNet struct {
	t     *testing.T
	loop  *sim.Loop
	delay time.Duration

	// drop, when set, discards matching segments. dir is "a→b" or "b→a".
	drop func(dir string, h *Header, payload []byte) bool
	// mark, when set, applies ECN CE to matching data segments.
	mark func(dir string, payload []byte) bool

	a, b         *Conn
	aAddr, bAddr AddrPort

	segsAB, segsBA int
}

func newTestNet(t *testing.T) *testNet {
	return &testNet{
		t:     t,
		loop:  sim.NewLoop(),
		delay: 5 * time.Millisecond,
		aAddr: AddrPort{Addr: ipv4.Addr{10, 0, 0, 1}, Port: 40000},
		bAddr: AddrPort{Addr: ipv4.Addr{10, 0, 0, 2}, Port: 80},
	}
}

// outputTo builds the OutputFunc for one direction.
func (n *testNet) outputTo(dir string, src, dst AddrPort, peer func() *Conn) OutputFunc {
	return func(h *Header, payload []byte, ecnCapable bool) {
		if dir == "a→b" {
			n.segsAB++
		} else {
			n.segsBA++
		}
		if n.drop != nil && n.drop(dir, h, payload) {
			return
		}
		ce := ecnCapable && n.mark != nil && n.mark(dir, payload)
		seg := h.Marshal(src.Addr, dst.Addr, payload)
		n.loop.AfterFunc(n.delay, func() {
			hh, pl, err := Parse(src.Addr, dst.Addr, seg)
			if err != nil {
				n.t.Fatalf("wire corruption %s: %v", dir, err)
			}
			if p := peer(); p != nil {
				p.Input(&hh, pl, ce)
			}
		})
	}
}

// dialPair sets up an active/passive pair with the given congestion
// controls and returns once wiring is done (handshake still needs the
// loop to run).
func (n *testNet) dialPair(ccA, ccB string, mut func(cfg *Config, side string)) {
	mkCC := func(name string) tcpcc.Algorithm {
		a, err := tcpcc.New(name)
		if err != nil {
			n.t.Fatal(err)
		}
		return a
	}
	bCfg := Config{
		Clock: n.loop, RNG: sim.NewRNG(2),
		Local: n.bAddr, Remote: n.aAddr,
		CC:     mkCC(ccB),
		Output: n.outputTo("b→a", n.bAddr, n.aAddr, func() *Conn { return n.a }),
	}
	if mut != nil {
		mut(&bCfg, "b")
	}

	aCfg := Config{
		Clock: n.loop, RNG: sim.NewRNG(1),
		Local: n.aAddr, Remote: n.bAddr,
		CC:     mkCC(ccA),
		Output: n.outputTo("a→b", n.aAddr, n.bAddr, func() *Conn { return n.b }),
	}
	if mut != nil {
		mut(&aCfg, "a")
	}

	// Passive side: materialize b on the first SYN.
	origOut := aCfg.Output
	aCfg.Output = func(h *Header, payload []byte, ecn bool) {
		if h.Flags&FlagSYN != 0 && h.Flags&FlagACK == 0 && n.b == nil {
			seg := h.Marshal(n.aAddr.Addr, n.bAddr.Addr, payload)
			n.loop.AfterFunc(n.delay, func() {
				hh, _, err := Parse(n.aAddr.Addr, n.bAddr.Addr, seg)
				if err != nil {
					n.t.Fatal(err)
				}
				ecnReq := hh.Flags&FlagECE != 0 && hh.Flags&FlagCWR != 0
				n.b = NewPassive(bCfg, &hh, ecnReq)
			})
			return
		}
		origOut(h, payload, ecn)
	}
	n.a = Dial(aCfg)
}

func (n *testNet) establish() {
	n.loop.RunFor(200 * time.Millisecond)
	if n.a.State() != StateEstablished {
		n.t.Fatalf("a state = %v", n.a.State())
	}
	if n.b == nil || n.b.State() != StateEstablished {
		n.t.Fatalf("b not established")
	}
}

// transfer pushes payload from src to dst through the loop, draining dst
// into the returned buffer, until complete or the deadline passes.
func (n *testNet) transfer(src, dst *Conn, payload []byte, deadline time.Duration) []byte {
	var got bytes.Buffer
	sent := 0
	buf := make([]byte, 64<<10)
	pump := func() {
		for sent < len(payload) {
			w := src.Write(payload[sent:])
			sent += w
			if w == 0 {
				break
			}
		}
	}
	pump()
	end := n.loop.Now().Add(deadline)
	for n.loop.Now() < end && got.Len() < len(payload) {
		n.loop.RunFor(time.Millisecond)
		pump()
		for {
			m, _ := dst.Read(buf)
			if m == 0 {
				break
			}
			got.Write(buf[:m])
		}
	}
	return got.Bytes()
}

func TestHandshakeEstablishes(t *testing.T) {
	n := newTestNet(t)
	var estA, estB error = errSentinel, errSentinel
	n.dialPair("reno", "reno", func(cfg *Config, side string) {
		if side == "a" {
			cfg.OnEstablished = func(err error) { estA = err }
		} else {
			cfg.OnEstablished = func(err error) { estB = err }
		}
	})
	n.establish()
	if estA != nil || estB != nil {
		t.Fatalf("OnEstablished: a=%v b=%v", estA, estB)
	}
	// MSS negotiated to the default on both sides.
	if n.a.cfg.MSS != 1460 || n.b.cfg.MSS != 1460 {
		t.Fatalf("MSS a=%d b=%d", n.a.cfg.MSS, n.b.cfg.MSS)
	}
}

var errSentinel = errTimeout{}

func TestSmallDataTransfer(t *testing.T) {
	n := newTestNet(t)
	n.dialPair("reno", "reno", nil)
	n.establish()
	msg := []byte("hello network stack as a service")
	got := n.transfer(n.a, n.b, msg, time.Second)
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
}

func TestBulkTransferIntegrity(t *testing.T) {
	n := newTestNet(t)
	n.dialPair("cubic", "cubic", nil)
	n.establish()
	payload := make([]byte, 1<<20)
	rng := sim.NewRNG(7)
	for i := range payload {
		payload[i] = byte(rng.Uint64())
	}
	got := n.transfer(n.a, n.b, payload, 30*time.Second)
	if len(got) != len(payload) {
		t.Fatalf("transferred %d of %d bytes", len(got), len(payload))
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted in transit")
	}
}

func TestBidirectionalTransfer(t *testing.T) {
	n := newTestNet(t)
	n.dialPair("reno", "reno", nil)
	n.establish()
	msgA := bytes.Repeat([]byte("a"), 100000)
	msgB := bytes.Repeat([]byte("b"), 100000)
	var gotA, gotB bytes.Buffer
	n.a.Write(msgA)
	n.b.Write(msgB)
	buf := make([]byte, 32<<10)
	for i := 0; i < 5000 && (gotA.Len() < len(msgB) || gotB.Len() < len(msgA)); i++ {
		n.loop.RunFor(time.Millisecond)
		for {
			m, _ := n.a.Read(buf)
			if m == 0 {
				break
			}
			gotA.Write(buf[:m])
		}
		for {
			m, _ := n.b.Read(buf)
			if m == 0 {
				break
			}
			gotB.Write(buf[:m])
		}
	}
	if !bytes.Equal(gotA.Bytes(), msgB) || !bytes.Equal(gotB.Bytes(), msgA) {
		t.Fatalf("bidirectional transfer incomplete: a got %d, b got %d", gotA.Len(), gotB.Len())
	}
}

func TestGracefulClose(t *testing.T) {
	n := newTestNet(t)
	var closedA, closedB bool
	n.dialPair("reno", "reno", func(cfg *Config, side string) {
		cfg.MSL = 50 * time.Millisecond
		if side == "a" {
			cfg.OnClose = func(err error) {
				if err != nil {
					t.Errorf("a closed with %v", err)
				}
				closedA = true
			}
		} else {
			cfg.OnClose = func(err error) {
				if err != nil {
					t.Errorf("b closed with %v", err)
				}
				closedB = true
			}
		}
	})
	n.establish()
	n.a.Write([]byte("last words"))
	n.a.Close()
	n.loop.RunFor(50 * time.Millisecond)

	// B sees data then EOF.
	buf := make([]byte, 100)
	m, eof := n.b.Read(buf)
	if string(buf[:m]) != "last words" || !eof {
		t.Fatalf("b read %q eof=%v", buf[:m], eof)
	}
	n.b.Close()
	n.loop.RunFor(500 * time.Millisecond)
	if !closedA || !closedB {
		t.Fatalf("closed a=%v b=%v; states a=%v b=%v", closedA, closedB, n.a.State(), n.b.State())
	}
}

func TestAbortResetsPeer(t *testing.T) {
	n := newTestNet(t)
	var bErr error
	n.dialPair("reno", "reno", func(cfg *Config, side string) {
		if side == "b" {
			cfg.OnClose = func(err error) { bErr = err }
		}
	})
	n.establish()
	n.a.Abort()
	n.loop.RunFor(100 * time.Millisecond)
	if bErr == nil {
		t.Fatalf("peer not reset; b state %v", n.b.State())
	}
	if n.a.State() != StateClosed || n.b.State() != StateClosed {
		t.Fatalf("states a=%v b=%v", n.a.State(), n.b.State())
	}
}

func TestFastRetransmitRecoversLoss(t *testing.T) {
	n := newTestNet(t)
	dropped := false
	n.dialPair("reno", "reno", nil)
	n.establish()
	// Drop exactly one mid-stream data segment.
	n.drop = func(dir string, h *Header, payload []byte) bool {
		if dir == "a→b" && len(payload) > 0 && !dropped && h.Seq-n.a.iss > 20000 {
			dropped = true
			return true
		}
		return false
	}
	payload := make([]byte, 200<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	got := n.transfer(n.a, n.b, payload, 10*time.Second)
	if !bytes.Equal(got, payload) {
		t.Fatalf("transfer incomplete after loss: %d of %d", len(got), len(payload))
	}
	if !dropped {
		t.Fatal("test never dropped a segment")
	}
	st := n.a.Stats()
	if st.FastRexmits == 0 {
		t.Fatalf("loss recovered without fast retransmit (RTOs=%d)", st.RTOs)
	}
	if st.RTOs != 0 {
		t.Fatalf("fast-retransmit path fell back to RTO (%d)", st.RTOs)
	}
}

func TestSACKLimitsRetransmissions(t *testing.T) {
	n := newTestNet(t)
	n.dialPair("reno", "reno", nil)
	n.establish()
	dropped := false
	n.drop = func(dir string, h *Header, payload []byte) bool {
		if dir == "a→b" && len(payload) > 0 && !dropped && h.Seq-n.a.iss > 50000 {
			dropped = true
			return true
		}
		return false
	}
	payload := make([]byte, 500<<10)
	got := n.transfer(n.a, n.b, payload, 10*time.Second)
	if len(got) != len(payload) {
		t.Fatalf("transfer incomplete: %d", len(got))
	}
	st := n.a.Stats()
	// With SACK, a single loss needs very few retransmits (the hole),
	// not a whole window's worth.
	if st.Retransmits > 4 {
		t.Fatalf("SACK did not bound retransmissions: %d", st.Retransmits)
	}
}

func TestTailLossRecoversByRTO(t *testing.T) {
	n := newTestNet(t)
	n.dialPair("reno", "reno", func(cfg *Config, side string) {
		cfg.MinRTO = 50 * time.Millisecond
	})
	n.establish()
	msg := []byte("tail segment with nothing after it")
	// Drop its first transmission only.
	drops := 0
	n.drop = func(dir string, h *Header, payload []byte) bool {
		if dir == "a→b" && len(payload) > 0 && drops == 0 {
			drops++
			return true
		}
		return false
	}
	got := n.transfer(n.a, n.b, msg, 5*time.Second)
	if !bytes.Equal(got, msg) {
		t.Fatalf("tail loss never recovered: %q", got)
	}
	if n.a.Stats().RTOs == 0 {
		t.Fatal("expected an RTO for a tail loss with no dupacks")
	}
}

func TestReceiverWindowBackpressure(t *testing.T) {
	n := newTestNet(t)
	n.dialPair("reno", "reno", func(cfg *Config, side string) {
		if side == "b" {
			cfg.RecvBufSize = 16 << 10 // tiny receiver
		}
	})
	n.establish()
	payload := make([]byte, 300<<10)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	// transfer drains the receiver as it goes: flow control must let the
	// whole payload through a 16 KB receive buffer.
	got := n.transfer(n.a, n.b, payload, 30*time.Second)
	if !bytes.Equal(got, payload) {
		t.Fatalf("flow-controlled transfer incomplete: %d of %d", len(got), len(payload))
	}
}

func TestZeroWindowPersistProbe(t *testing.T) {
	n := newTestNet(t)
	n.dialPair("reno", "reno", func(cfg *Config, side string) {
		cfg.MinRTO = 50 * time.Millisecond
		if side == "b" {
			cfg.RecvBufSize = 4 << 10
		}
	})
	n.establish()
	payload := make([]byte, 64<<10)
	sent := 0
	for sent < len(payload) {
		w := n.a.Write(payload[sent:])
		sent += w
		if w == 0 {
			break
		}
	}
	// Let the receiver's buffer fill; nobody reads.
	n.loop.RunFor(2 * time.Second)
	if n.a.sndWnd != 0 {
		t.Fatalf("sender window = %d, want 0 while receiver is full", n.a.sndWnd)
	}
	// Now drain: the window reopens (via update or persist probe) and
	// the transfer completes.
	var got bytes.Buffer
	buf := make([]byte, 8<<10)
	for i := 0; i < 20000 && got.Len() < sent; i++ {
		n.loop.RunFor(time.Millisecond)
		if sent < len(payload) {
			sent += n.a.Write(payload[sent:])
		}
		m, _ := n.b.Read(buf)
		got.Write(buf[:m])
	}
	if got.Len() < 60<<10 {
		t.Fatalf("stalled after zero window: got %d", got.Len())
	}
}

func TestOutOfOrderReassembly(t *testing.T) {
	n := newTestNet(t)
	n.dialPair("reno", "reno", nil)
	n.establish()
	// Delay one segment so its successor arrives first.
	delayedOnce := false
	origDelay := n.delay
	n.drop = func(dir string, h *Header, payload []byte) bool {
		if dir == "a→b" && len(payload) > 0 && !delayedOnce && h.Seq-n.a.iss > 10000 {
			delayedOnce = true
			seg := h.Marshal(n.aAddr.Addr, n.bAddr.Addr, payload)
			n.loop.AfterFunc(origDelay*4, func() {
				hh, pl, _ := Parse(n.aAddr.Addr, n.bAddr.Addr, seg)
				n.b.Input(&hh, pl, false)
			})
			return true // drop the on-time copy
		}
		return false
	}
	payload := make([]byte, 100<<10)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	got := n.transfer(n.a, n.b, payload, 10*time.Second)
	if !bytes.Equal(got, payload) {
		t.Fatal("reordered stream corrupted")
	}
}

func TestECNEndToEndWithDCTCP(t *testing.T) {
	n := newTestNet(t)
	n.dialPair("dctcp", "dctcp", nil)
	// Mark every 3rd a→b data segment CE.
	count := 0
	n.mark = func(dir string, payload []byte) bool {
		if dir == "a→b" && len(payload) > 0 {
			count++
			return count%3 == 0
		}
		return false
	}
	n.establish()
	if !n.a.ecnEnabled || !n.b.ecnEnabled {
		t.Fatal("ECN not negotiated between DCTCP endpoints")
	}
	payload := make([]byte, 300<<10)
	got := n.transfer(n.a, n.b, payload, 30*time.Second)
	if len(got) != len(payload) {
		t.Fatalf("transfer incomplete under marking: %d", len(got))
	}
	if n.a.Stats().ECNEchoes == 0 {
		t.Fatal("no ECN echoes reached the sender")
	}
	d := n.a.CongestionControl().(*tcpcc.DCTCP)
	if d.Alpha() <= 0 || d.Alpha() > 0.8 {
		t.Fatalf("DCTCP α = %v, want a moderate mark fraction", d.Alpha())
	}
}

func TestECNNotNegotiatedForLossBasedCC(t *testing.T) {
	n := newTestNet(t)
	n.dialPair("cubic", "cubic", nil)
	n.establish()
	if n.a.ecnEnabled || n.b.ecnEnabled {
		t.Fatal("CUBIC endpoints negotiated ECN")
	}
}

func TestNagleCoalescesSmallWrites(t *testing.T) {
	run := func(nagle bool) int {
		n := newTestNet(t)
		n.dialPair("reno", "reno", func(cfg *Config, side string) {
			cfg.Nagle = nagle
		})
		n.establish()
		base := n.segsAB
		for i := 0; i < 50; i++ {
			n.a.Write([]byte("x"))
			n.loop.RunFor(time.Millisecond)
		}
		n.loop.RunFor(time.Second)
		return n.segsAB - base
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Fatalf("Nagle did not reduce segments: with=%d without=%d", with, without)
	}
}

func TestDelayedAckReducesAckTraffic(t *testing.T) {
	n := newTestNet(t)
	n.dialPair("reno", "reno", nil)
	n.establish()
	base := n.segsBA
	payload := make([]byte, 100<<10)
	n.transfer(n.a, n.b, payload, 5*time.Second)
	acks := n.segsBA - base
	dataSegs := (len(payload) + 1459) / 1460
	if acks > dataSegs*3/4 {
		t.Fatalf("delayed acks ineffective: %d acks for %d data segments", acks, dataSegs)
	}
}

func TestRTTEstimation(t *testing.T) {
	n := newTestNet(t)
	n.dialPair("reno", "reno", nil)
	n.establish()
	payload := make([]byte, 50<<10)
	n.transfer(n.a, n.b, payload, 5*time.Second)
	st := n.a.Stats()
	// One-way delay is 5 ms → RTT ≈ 10 ms (plus ack delay).
	if st.SRTT < 9*time.Millisecond || st.SRTT > 60*time.Millisecond {
		t.Fatalf("SRTT = %v, want ≈10ms", st.SRTT)
	}
	if st.MinRTT < 9*time.Millisecond || st.MinRTT > 15*time.Millisecond {
		t.Fatalf("MinRTT = %v", st.MinRTT)
	}
}

func TestStatsAccounting(t *testing.T) {
	n := newTestNet(t)
	n.dialPair("reno", "reno", nil)
	n.establish()
	payload := make([]byte, 10000)
	n.transfer(n.a, n.b, payload, 5*time.Second)
	n.loop.RunFor(time.Second)
	sa, sb := n.a.Stats(), n.b.Stats()
	if sa.BytesSent < 10000 || sa.BytesAcked != 10000 {
		t.Fatalf("sender stats %+v", sa)
	}
	if sb.BytesRcvd != 10000 {
		t.Fatalf("receiver stats %+v", sb)
	}
}

func TestListenerBacklog(t *testing.T) {
	l := NewListener(AddrPort{Port: 80}, 2)
	if _, ok := l.Accept(); ok {
		t.Fatal("Accept on empty backlog succeeded")
	}
	notified := 0
	l.OnAcceptable = func() { notified++ }
	l.Deposit(&Conn{})
	l.Deposit(&Conn{})
	if !l.Full() {
		t.Fatal("backlog of 2 not full after 2 deposits")
	}
	if notified != 1 {
		t.Fatalf("OnAcceptable fired %d times, want 1 (edge-triggered)", notified)
	}
	if _, ok := l.Accept(); !ok {
		t.Fatal("Accept failed")
	}
	if l.Pending() != 1 || l.Full() {
		t.Fatal("backlog accounting broken")
	}
}

func TestSeqnumArithmetic(t *testing.T) {
	const top = ^uint32(0)
	if !seqLT(top-10, 10) {
		t.Fatal("wraparound LT broken")
	}
	if !seqGT(10, top-10) {
		t.Fatal("wraparound GT broken")
	}
	if seqDiff(10, top-9) != 20 {
		t.Fatalf("seqDiff across wrap = %d, want 20", seqDiff(10, top-9))
	}
	if seqMax(top-10, 10) != 10 {
		t.Fatal("seqMax across wrap broken")
	}
	if !seqLEQ(5, 5) || !seqGEQ(5, 5) {
		t.Fatal("equality cases broken")
	}
}

func TestByteRing(t *testing.T) {
	r := newByteRing(10)
	if n := r.Write([]byte("hello world!")); n != 10 {
		t.Fatalf("Write = %d, want 10 (capacity)", n)
	}
	buf := make([]byte, 4)
	if r.Peek(buf, 6) != 4 || string(buf) != "worl" {
		t.Fatalf("Peek at offset = %q", buf)
	}
	if r.Read(buf) != 4 || string(buf) != "hell" {
		t.Fatalf("Read = %q", buf)
	}
	if r.Write([]byte("XY")) != 2 { // wraps around
		t.Fatal("wrap write failed")
	}
	rest := make([]byte, 10)
	n := r.Read(rest)
	if string(rest[:n]) != "o worlXY" { // the 12-byte write truncated at capacity

		t.Fatalf("wrapped content = %q", rest[:n])
	}
	if !r.Empty() || r.Free() != 10 {
		t.Fatal("ring not empty after drain")
	}
}

// A SACK block that ends exactly at the FIN's sequence number must not
// mark the (zero-length) FIN segment as selectively acked. Regression:
// the degenerate interval [finSeq, finSeq) fits inside any block that
// SACKs the final data segment, and a "sacked" FIN is skipped by every
// retransmission path while trySend refuses to run post-FIN — the close
// wedges into a no-op RTO loop until the backoff limit tears the
// connection down. Reordered or lost closing segments (routine in the
// wall-clock domain) trigger exactly that shape.
func TestLostFINRetransmitsDespiteSACK(t *testing.T) {
	n := newTestNet(t)
	var droppedData, droppedFIN bool
	var firstDataSeq uint32
	n.drop = func(dir string, h *Header, payload []byte) bool {
		if dir != "a→b" {
			return false
		}
		// Drop the first copy of the first data segment so the second
		// segment arrives out of order and gets SACKed...
		if len(payload) > 0 && !droppedData {
			droppedData = true
			firstDataSeq = h.Seq
			return true
		}
		// ...and the first copy of the FIN, so closing depends on the
		// RTO resending it.
		if h.Flags&FlagFIN != 0 && !droppedFIN {
			droppedFIN = true
			return true
		}
		return false
	}
	n.dialPair("reno", "reno", func(cfg *Config, side string) {
		cfg.MinRTO = 50 * time.Millisecond
	})
	n.establish()

	msg := make([]byte, 2*n.a.cfg.MSS) // exactly two segments, then FIN
	for i := range msg {
		msg[i] = byte(i)
	}
	if w := n.a.Write(msg); w != len(msg) {
		t.Fatalf("short write: %d", w)
	}
	n.a.Close()
	// The first RTO (initial 1s, no RTT sample yet) resends the data
	// hole; the FIN needs the next, backed-off RTO (~2s later).
	n.loop.RunFor(6 * time.Second)

	if !droppedData || !droppedFIN {
		t.Fatalf("scenario not staged: droppedData=%v droppedFIN=%v (firstDataSeq=%d)",
			droppedData, droppedFIN, firstDataSeq)
	}
	buf := make([]byte, 64<<10)
	var got bytes.Buffer
	for {
		m, eof := n.b.Read(buf)
		got.Write(buf[:m])
		if eof || m == 0 {
			break
		}
	}
	if !bytes.Equal(got.Bytes(), msg) {
		t.Fatalf("b received %d of %d bytes", got.Len(), len(msg))
	}
	// b must have seen the retransmitted FIN (CloseWait), and a must
	// still be alive in FinWait2 — not torn down by a futile RTO loop.
	if n.b.State() != StateCloseWait {
		t.Fatalf("b state = %v, want close-wait (FIN never arrived)", n.b.State())
	}
	if n.a.State() != StateFinWait2 {
		t.Fatalf("a state = %v, want fin-wait-2", n.a.State())
	}
}
