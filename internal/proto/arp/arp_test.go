package arp

import (
	"testing"
	"time"

	"netkernel/internal/proto/ethernet"
	"netkernel/internal/proto/ipv4"
	"netkernel/internal/sim"
)

func samplePacket() Packet {
	return Packet{
		Op:        OpRequest,
		SenderMAC: ethernet.MAC{2, 0, 0, 0, 0, 1},
		SenderIP:  ipv4.Addr{10, 0, 0, 1},
		TargetMAC: ethernet.MAC{},
		TargetIP:  ipv4.Addr{10, 0, 0, 2},
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	in := samplePacket()
	var b [PacketLen]byte
	in.Marshal(b[:])
	out, err := Parse(b[:])
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v vs %+v", out, in)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse(make([]byte, 10)); err == nil {
		t.Fatal("short packet accepted")
	}
	var b [PacketLen]byte
	p := samplePacket()
	p.Marshal(b[:])
	b[0] = 9 // hardware type
	if _, err := Parse(b[:]); err == nil {
		t.Fatal("bad hardware type accepted")
	}
	p = samplePacket()
	p.Marshal(b[:])
	b[7] = 9 // op
	if _, err := Parse(b[:]); err == nil {
		t.Fatal("bad op accepted")
	}
}

func TestCacheLearnLookup(t *testing.T) {
	loop := sim.NewLoop()
	c := NewCache(loop, time.Minute)
	ip := ipv4.Addr{10, 0, 0, 2}
	mac := ethernet.MAC{2, 0, 0, 0, 0, 2}
	if _, ok := c.Lookup(ip); ok {
		t.Fatal("lookup hit on empty cache")
	}
	c.Learn(ip, mac)
	got, ok := c.Lookup(ip)
	if !ok || got != mac {
		t.Fatalf("Lookup = %v, %v", got, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCacheExpiry(t *testing.T) {
	loop := sim.NewLoop()
	c := NewCache(loop, time.Second)
	ip := ipv4.Addr{10, 0, 0, 2}
	c.Learn(ip, ethernet.MAC{2, 0, 0, 0, 0, 2})
	loop.RunFor(2 * time.Second)
	if _, ok := c.Lookup(ip); ok {
		t.Fatal("expired entry still resolves")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after expiry", c.Len())
	}
}

func TestCacheAwaitReleasesWaiters(t *testing.T) {
	loop := sim.NewLoop()
	c := NewCache(loop, time.Minute)
	ip := ipv4.Addr{10, 0, 0, 7}
	var got []ethernet.MAC
	first := c.Await(ip, func(m ethernet.MAC) { got = append(got, m) })
	second := c.Await(ip, func(m ethernet.MAC) { got = append(got, m) })
	if !first {
		t.Fatal("first waiter should be told to send a request")
	}
	if second {
		t.Fatal("second waiter should not duplicate the request")
	}
	mac := ethernet.MAC{2, 0, 0, 0, 0, 9}
	c.Learn(ip, mac)
	if len(got) != 2 || got[0] != mac || got[1] != mac {
		t.Fatalf("waiters got %v", got)
	}
	// A later Learn must not re-run the waiters.
	c.Learn(ip, mac)
	if len(got) != 2 {
		t.Fatal("waiters ran twice")
	}
	// After resolution, a new Await is "first" again.
	if !c.Await(ipv4.Addr{10, 0, 0, 8}, func(ethernet.MAC) {}) {
		t.Fatal("fresh address should request")
	}
}

func TestCacheRetriesLostRequests(t *testing.T) {
	loop := sim.NewLoop()
	c := NewCache(loop, time.Minute)
	requests := 0
	ip := ipv4.Addr{10, 0, 0, 9}
	c.Request = func(target ipv4.Addr) {
		if target != ip {
			t.Fatalf("retry for %v", target)
		}
		requests++
		// The first retry succeeds (the caller's own initial request
		// was "lost": Learn was never called for it).
		c.Learn(ip, ethernet.MAC{2, 0, 0, 0, 0, 9})
	}
	resolved := false
	if !c.Await(ip, func(ethernet.MAC) { resolved = true }) {
		t.Fatal("first waiter should send the initial request")
	}
	// The caller's initial request was "lost" (we never Learn from it).
	loop.RunFor(RequestTimeout + time.Millisecond)
	if !resolved {
		t.Fatalf("retry did not resolve (requests=%d)", requests)
	}
	if c.Pending() != 0 {
		t.Fatal("pending entry leaked after resolution")
	}
	// No further retries after resolution.
	loop.RunFor(5 * RequestTimeout)
	if requests != 1 {
		t.Fatalf("requests after resolution: %d", requests)
	}
}

func TestCacheGivesUpAfterMaxRequests(t *testing.T) {
	loop := sim.NewLoop()
	c := NewCache(loop, time.Minute)
	requests := 1 // the caller's initial transmission
	c.Request = func(ipv4.Addr) { requests++ }
	called := false
	c.Await(ipv4.Addr{10, 0, 0, 99}, func(ethernet.MAC) { called = true })
	loop.RunFor(time.Duration(MaxRequests+2) * RequestTimeout)
	if requests != MaxRequests {
		t.Fatalf("sent %d requests, want %d", requests, MaxRequests)
	}
	if called {
		t.Fatal("waiter ran without resolution")
	}
	if c.Pending() != 0 {
		t.Fatal("abandoned resolution still pending")
	}
	// The address can be retried fresh afterwards.
	if !c.Await(ipv4.Addr{10, 0, 0, 99}, func(ethernet.MAC) {}) {
		t.Fatal("fresh Await after give-up should request again")
	}
}
