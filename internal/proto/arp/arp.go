// Package arp implements Address Resolution Protocol packets and a
// resolution cache for IPv4 over Ethernet.
package arp

import (
	"encoding/binary"
	"fmt"
	"time"

	"netkernel/internal/proto/ethernet"
	"netkernel/internal/proto/ipv4"
	"netkernel/internal/sim"
)

// PacketLen is the size of an IPv4-over-Ethernet ARP packet.
const PacketLen = 28

// Op is the ARP operation.
type Op uint16

// Operations.
const (
	OpRequest Op = 1
	OpReply   Op = 2
)

// Packet is a decoded ARP packet.
type Packet struct {
	Op        Op
	SenderMAC ethernet.MAC
	SenderIP  ipv4.Addr
	TargetMAC ethernet.MAC
	TargetIP  ipv4.Addr
}

// Marshal writes the packet into b, at least PacketLen bytes.
func (p *Packet) Marshal(b []byte) {
	_ = b[PacketLen-1]
	binary.BigEndian.PutUint16(b[0:], 1)      // hardware: Ethernet
	binary.BigEndian.PutUint16(b[2:], 0x0800) // protocol: IPv4
	b[4] = 6                                  // MAC length
	b[5] = 4                                  // IP length
	binary.BigEndian.PutUint16(b[6:], uint16(p.Op))
	copy(b[8:14], p.SenderMAC[:])
	copy(b[14:18], p.SenderIP[:])
	copy(b[18:24], p.TargetMAC[:])
	copy(b[24:28], p.TargetIP[:])
}

// Parse decodes an ARP packet.
func Parse(b []byte) (Packet, error) {
	if len(b) < PacketLen {
		return Packet{}, fmt.Errorf("arp: packet of %d bytes shorter than %d", len(b), PacketLen)
	}
	if binary.BigEndian.Uint16(b[0:]) != 1 || binary.BigEndian.Uint16(b[2:]) != 0x0800 || b[4] != 6 || b[5] != 4 {
		return Packet{}, fmt.Errorf("arp: not IPv4-over-Ethernet")
	}
	var p Packet
	p.Op = Op(binary.BigEndian.Uint16(b[6:]))
	if p.Op != OpRequest && p.Op != OpReply {
		return Packet{}, fmt.Errorf("arp: unknown op %d", p.Op)
	}
	copy(p.SenderMAC[:], b[8:14])
	copy(p.SenderIP[:], b[14:18])
	copy(p.TargetMAC[:], b[18:24])
	copy(p.TargetIP[:], b[24:28])
	return p, nil
}

// DefaultCacheTTL is how long a learned mapping stays valid.
const DefaultCacheTTL = 60 * time.Second

// Resolution retry policy: a lost ARP request must not strand the
// packets parked behind it, so unresolved requests are retransmitted.
const (
	// RequestTimeout is the wait between retransmitted requests.
	RequestTimeout = time.Second
	// MaxRequests bounds the attempts before waiters are dropped.
	MaxRequests = 3
)

type cacheEntry struct {
	mac     ethernet.MAC
	expires sim.Time
}

type pendingResolution struct {
	waiters  []func(ethernet.MAC)
	attempts int
	timer    sim.Timer
}

// Cache maps IPv4 addresses to MACs with expiry, and parks packets that
// are waiting for resolution. Resolution requests are retried on a
// timer: a single lost ARP request otherwise strands every waiter until
// upper-layer timeouts fire.
type Cache struct {
	clock   sim.Clock
	ttl     time.Duration
	entries map[ipv4.Addr]cacheEntry
	pending map[ipv4.Addr]*pendingResolution
	// Request transmits an ARP request for ip; the owning stack wires
	// it so retries can be driven from here.
	Request func(ip ipv4.Addr)
}

// NewCache builds a cache; ttl <= 0 selects the default.
func NewCache(clock sim.Clock, ttl time.Duration) *Cache {
	if ttl <= 0 {
		ttl = DefaultCacheTTL
	}
	return &Cache{
		clock:   clock,
		ttl:     ttl,
		entries: make(map[ipv4.Addr]cacheEntry),
		pending: make(map[ipv4.Addr]*pendingResolution),
	}
}

// Lookup returns the MAC for ip if a live entry exists.
func (c *Cache) Lookup(ip ipv4.Addr) (ethernet.MAC, bool) {
	e, ok := c.entries[ip]
	if !ok || c.clock.Now() >= e.expires {
		return ethernet.MAC{}, false
	}
	return e.mac, true
}

// Learn records a mapping and releases any packets waiting on it.
func (c *Cache) Learn(ip ipv4.Addr, mac ethernet.MAC) {
	c.entries[ip] = cacheEntry{mac: mac, expires: c.clock.Now().Add(c.ttl)}
	if p := c.pending[ip]; p != nil {
		delete(c.pending, ip)
		if p.timer != nil {
			p.timer.Stop()
		}
		for _, fn := range p.waiters {
			fn(mac)
		}
	}
}

// Await registers fn to run once ip resolves. It reports whether the
// caller should transmit an ARP request now (true for the first
// waiter); retransmissions are driven internally through the Request
// hook.
func (c *Cache) Await(ip ipv4.Addr, fn func(ethernet.MAC)) bool {
	p := c.pending[ip]
	if p != nil {
		p.waiters = append(p.waiters, fn)
		return false
	}
	p = &pendingResolution{waiters: []func(ethernet.MAC){fn}, attempts: 1}
	c.pending[ip] = p
	c.armRetry(ip, p)
	return true
}

func (c *Cache) armRetry(ip ipv4.Addr, p *pendingResolution) {
	p.timer = c.clock.AfterFunc(RequestTimeout, func() {
		if c.pending[ip] != p {
			return // resolved meanwhile
		}
		if p.attempts >= MaxRequests {
			// Give up: drop the waiters; upper layers' own timers
			// (TCP RTO, ping timeout) surface the failure.
			delete(c.pending, ip)
			return
		}
		p.attempts++
		if c.Request != nil {
			c.Request(ip)
		}
		c.armRetry(ip, p)
	})
}

// Reset drops all entries and abandons in-flight resolutions, stopping
// their retry timers and discarding their waiters. The owning stack
// calls it on teardown so no resolution timer outlives the stack.
func (c *Cache) Reset() {
	for _, p := range c.pending {
		if p.timer != nil {
			p.timer.Stop()
		}
	}
	c.pending = make(map[ipv4.Addr]*pendingResolution)
	c.entries = make(map[ipv4.Addr]cacheEntry)
}

// Pending returns the number of in-progress resolutions.
func (c *Cache) Pending() int { return len(c.pending) }

// Len returns the number of live entries.
func (c *Cache) Len() int {
	n := 0
	now := c.clock.Now()
	for _, e := range c.entries {
		if now < e.expires {
			n++
		}
	}
	return n
}
