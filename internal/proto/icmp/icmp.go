// Package icmp implements the ICMPv4 messages the stack uses: echo
// (ping, which powers the pingmesh-style failure detector in
// internal/mgmt), destination unreachable, and time exceeded.
package icmp

import (
	"encoding/binary"
	"fmt"

	"netkernel/internal/proto/inet"
)

// HeaderLen is the fixed ICMP header size.
const HeaderLen = 8

// Type is the ICMP message type.
type Type uint8

// Message types.
const (
	TypeEchoReply       Type = 0
	TypeDestUnreachable Type = 3
	TypeEchoRequest     Type = 8
	TypeTimeExceeded    Type = 11
)

func (t Type) String() string {
	switch t {
	case TypeEchoReply:
		return "echo-reply"
	case TypeDestUnreachable:
		return "dest-unreachable"
	case TypeEchoRequest:
		return "echo-request"
	case TypeTimeExceeded:
		return "time-exceeded"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Destination-unreachable codes.
const (
	CodeNetUnreachable  = 0
	CodeHostUnreachable = 1
	CodePortUnreachable = 3
)

// Message is a decoded ICMP message. For echo messages ID and Seq are
// meaningful; for errors Body carries the embedded offending datagram.
type Message struct {
	Type Type
	Code uint8
	ID   uint16 // echo only
	Seq  uint16 // echo only
	Body []byte
}

// Marshal serializes the message, computing the checksum.
func (m *Message) Marshal() []byte {
	b := make([]byte, HeaderLen+len(m.Body))
	b[0] = byte(m.Type)
	b[1] = m.Code
	binary.BigEndian.PutUint16(b[4:], m.ID)
	binary.BigEndian.PutUint16(b[6:], m.Seq)
	copy(b[HeaderLen:], m.Body)
	binary.BigEndian.PutUint16(b[2:], inet.Checksum(b, 0))
	return b
}

// Parse decodes and validates a message. Body aliases b.
func Parse(b []byte) (Message, error) {
	if len(b) < HeaderLen {
		return Message{}, fmt.Errorf("icmp: message of %d bytes shorter than header", len(b))
	}
	if !inet.Verify(b, 0) {
		return Message{}, fmt.Errorf("icmp: checksum mismatch")
	}
	return Message{
		Type: Type(b[0]),
		Code: b[1],
		ID:   binary.BigEndian.Uint16(b[4:]),
		Seq:  binary.BigEndian.Uint16(b[6:]),
		Body: b[HeaderLen:],
	}, nil
}

// EchoRequest builds an echo request carrying payload.
func EchoRequest(id, seq uint16, payload []byte) []byte {
	m := Message{Type: TypeEchoRequest, ID: id, Seq: seq, Body: payload}
	return m.Marshal()
}

// EchoReply builds the reply to a request message.
func EchoReply(req Message) []byte {
	m := Message{Type: TypeEchoReply, ID: req.ID, Seq: req.Seq, Body: req.Body}
	return m.Marshal()
}

// DestUnreachable builds a destination-unreachable error embedding the
// start of the offending datagram (IP header + 8 bytes, per RFC 792).
func DestUnreachable(code uint8, original []byte) []byte {
	n := len(original)
	if n > 28 {
		n = 28
	}
	m := Message{Type: TypeDestUnreachable, Code: code, Body: original[:n]}
	return m.Marshal()
}

// TimeExceeded builds a TTL-expired error embedding the offending
// datagram prefix.
func TimeExceeded(original []byte) []byte {
	n := len(original)
	if n > 28 {
		n = 28
	}
	m := Message{Type: TypeTimeExceeded, Body: original[:n]}
	return m.Marshal()
}
