package icmp

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEchoRoundTrip(t *testing.T) {
	payload := []byte("pingmesh probe 42")
	req := EchoRequest(7, 3, payload)
	m, err := Parse(req)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != TypeEchoRequest || m.ID != 7 || m.Seq != 3 || !bytes.Equal(m.Body, payload) {
		t.Fatalf("parsed %+v", m)
	}
	rep := EchoReply(m)
	rm, err := Parse(rep)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Type != TypeEchoReply || rm.ID != 7 || rm.Seq != 3 || !bytes.Equal(rm.Body, payload) {
		t.Fatalf("reply %+v", rm)
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	req := EchoRequest(1, 1, []byte("x"))
	req[len(req)-1] ^= 0xff
	if _, err := Parse(req); err == nil {
		t.Fatal("corrupt message accepted")
	}
	if _, err := Parse(make([]byte, 4)); err == nil {
		t.Fatal("short message accepted")
	}
}

func TestQuickEchoRoundTrip(t *testing.T) {
	err := quick.Check(func(id, seq uint16, body []byte) bool {
		m, err := Parse(EchoRequest(id, seq, body))
		return err == nil && m.ID == id && m.Seq == seq && bytes.Equal(m.Body, body)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestErrorsEmbedOriginal(t *testing.T) {
	original := make([]byte, 100)
	for i := range original {
		original[i] = byte(i)
	}
	du := DestUnreachable(CodePortUnreachable, original)
	m, err := Parse(du)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != TypeDestUnreachable || m.Code != CodePortUnreachable {
		t.Fatalf("parsed %+v", m)
	}
	if len(m.Body) != 28 || !bytes.Equal(m.Body, original[:28]) {
		t.Fatalf("embedded %d bytes", len(m.Body))
	}
	te, err := Parse(TimeExceeded(original[:10]))
	if err != nil || te.Type != TypeTimeExceeded || len(te.Body) != 10 {
		t.Fatalf("time-exceeded %+v, %v", te, err)
	}
}

func TestTypeString(t *testing.T) {
	if TypeEchoRequest.String() != "echo-request" || Type(99).String() != "type(99)" {
		t.Fatal("Type String broken")
	}
}
