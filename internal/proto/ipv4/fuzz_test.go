package ipv4

import (
	"bytes"
	"testing"
	"time"

	"netkernel/internal/sim"
)

// FuzzIPv4Reassembly drives Fragment and the Reassembler with arbitrary
// payloads and MTUs, plus raw fuzzed packets straight into Parse+Add.
// Invariants: nothing panics; fragmenting a payload and feeding every
// fragment back — interleaved with the raw packet — reconstructs the
// payload byte for byte; completed datagrams leave no pending state.
func FuzzIPv4Reassembly(f *testing.F) {
	h := Header{ID: 1, TTL: 64, Proto: ProtoTCP, Src: Addr{10, 0, 0, 1}, Dst: Addr{10, 0, 0, 2}}
	whole := make([]byte, HeaderLen)
	h.TotalLen = HeaderLen
	h.Marshal(whole)
	f.Add([]byte("a payload that spans a handful of fragments at a tiny mtu"), uint16(28), whole)
	f.Add(bytes.Repeat([]byte{0xaa}, 4096), uint16(576), []byte{})
	f.Add([]byte{}, uint16(0), bytes.Repeat([]byte{0x45}, 64))

	f.Fuzz(func(t *testing.T, payload []byte, mtu uint16, raw []byte) {
		// Cap the work: reassembly sorts the piece list on every Add,
		// so a 60 kB payload at an 8-byte-per-fragment MTU would spend
		// the whole fuzz budget on one input.
		if len(payload) > 2048 {
			payload = payload[:2048]
		}
		r := NewReassembler(time.Second)
		now := sim.Time(0)

		// Any raw bytes the parser accepts must be safe to reassemble.
		if rh, rp, err := Parse(raw); err == nil {
			r.Add(rh, rp, now)
		}

		fh := Header{ID: 7, TTL: 64, Proto: ProtoUDP, Src: Addr{10, 0, 0, 3}, Dst: Addr{10, 0, 0, 4}}
		frags, err := Fragment(fh, payload, int(mtu))
		if err != nil {
			return // undersized MTU: rejected, not mishandled
		}
		var got []byte
		var done bool
		for _, pkt := range frags {
			ph, pp, perr := Parse(pkt)
			if perr != nil {
				t.Fatalf("Fragment produced an unparseable packet: %v", perr)
			}
			if got, done = r.Add(ph, pp, now); done {
				break
			}
		}
		if !done {
			t.Fatalf("datagram of %d bytes in %d fragments never completed", len(payload), len(frags))
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("reassembly returned %d bytes, want %d", len(got), len(payload))
		}
		// The completed datagram must be retired; only the raw fuzzed
		// fragment (if it was a buffered partial) may remain.
		if r.Pending() > 1 {
			t.Fatalf("pending %d after completion of %d-fragment datagram", r.Pending(), len(frags))
		}
		r.Sweep(now.Add(2 * time.Second))
		if r.Pending() != 0 {
			t.Fatalf("sweep left %d stale datagrams", r.Pending())
		}
	})
}
