// Package ipv4 implements the IPv4 header, checksumming, ECN codepoints,
// and fragmentation/reassembly.
package ipv4

import (
	"encoding/binary"
	"fmt"

	"netkernel/internal/proto/inet"
)

// HeaderLen is the size of a header without options; the stack never
// emits options.
const HeaderLen = 20

// Protocol numbers carried in the Proto field.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// ECN codepoints (the two low bits of the TOS byte).
const (
	ECNNotECT = 0 // not ECN-capable
	ECNECT1   = 1
	ECNECT0   = 2 // ECN-capable transport
	ECNCE     = 3 // congestion experienced
)

// Flags in the fragmentation field.
const (
	FlagDontFragment = 0x2
	FlagMoreFrags    = 0x1
)

// Addr is an IPv4 address.
type Addr [4]byte

func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// IsZero reports whether the address is 0.0.0.0.
func (a Addr) IsZero() bool { return a == Addr{} }

// MustParseAddr parses dotted-quad notation, panicking on malformed
// input; it is intended for constants in tests and examples.
func MustParseAddr(s string) Addr {
	var a Addr
	var idx, val, digits int
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '.' {
			if digits == 0 || idx > 3 {
				panic("ipv4: malformed address " + s)
			}
			a[idx] = byte(val)
			idx++
			val, digits = 0, 0
			continue
		}
		c := s[i]
		if c < '0' || c > '9' {
			panic("ipv4: malformed address " + s)
		}
		val = val*10 + int(c-'0')
		if val > 255 {
			panic("ipv4: malformed address " + s)
		}
		digits++
	}
	if idx != 4 {
		panic("ipv4: malformed address " + s)
	}
	return a
}

// Header is a decoded IPv4 header.
type Header struct {
	TOS      uint8 // includes the ECN codepoint in the low 2 bits
	TotalLen uint16
	ID       uint16
	Flags    uint8  // DF / MF
	FragOff  uint16 // in 8-byte units
	TTL      uint8
	Proto    uint8
	Src      Addr
	Dst      Addr
}

// ECN returns the header's ECN codepoint.
func (h *Header) ECN() uint8 { return h.TOS & 0x3 }

// Marshal writes the header into b (at least HeaderLen bytes) and
// computes the header checksum. TotalLen must already be set.
func (h *Header) Marshal(b []byte) {
	_ = b[HeaderLen-1]
	b[0] = 4<<4 | 5 // version 4, IHL 5 words
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:], h.ID)
	binary.BigEndian.PutUint16(b[6:], uint16(h.Flags)<<13|h.FragOff&0x1fff)
	b[8] = h.TTL
	b[9] = h.Proto
	b[10], b[11] = 0, 0
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	csum := inet.Checksum(b[:HeaderLen], 0)
	binary.BigEndian.PutUint16(b[10:], csum)
}

// Parse decodes and validates a header from pkt, returning the payload
// (aliasing pkt, truncated to TotalLen).
func Parse(pkt []byte) (Header, []byte, error) {
	if len(pkt) < HeaderLen {
		return Header{}, nil, fmt.Errorf("ipv4: packet of %d bytes shorter than header", len(pkt))
	}
	if v := pkt[0] >> 4; v != 4 {
		return Header{}, nil, fmt.Errorf("ipv4: version %d", v)
	}
	ihl := int(pkt[0]&0xf) * 4
	if ihl < HeaderLen || len(pkt) < ihl {
		return Header{}, nil, fmt.Errorf("ipv4: bad IHL %d", ihl)
	}
	if !inet.Verify(pkt[:ihl], 0) {
		return Header{}, nil, fmt.Errorf("ipv4: header checksum mismatch")
	}
	var h Header
	h.TOS = pkt[1]
	h.TotalLen = binary.BigEndian.Uint16(pkt[2:])
	h.ID = binary.BigEndian.Uint16(pkt[4:])
	ff := binary.BigEndian.Uint16(pkt[6:])
	h.Flags = uint8(ff >> 13)
	h.FragOff = ff & 0x1fff
	h.TTL = pkt[8]
	h.Proto = pkt[9]
	copy(h.Src[:], pkt[12:16])
	copy(h.Dst[:], pkt[16:20])
	if int(h.TotalLen) < ihl || int(h.TotalLen) > len(pkt) {
		return Header{}, nil, fmt.Errorf("ipv4: total length %d outside packet of %d", h.TotalLen, len(pkt))
	}
	return h, pkt[ihl:h.TotalLen], nil
}

// SetCEInPlace flips an IPv4 packet's ECN codepoint to
// congestion-experienced, fixing the header checksum incrementally
// (RFC 1624). It reports false when the packet is not ECN-capable
// (NotECT), in which case it is left untouched — a router must not mark
// traffic that cannot carry the signal.
func SetCEInPlace(pkt []byte) bool {
	if len(pkt) < HeaderLen || pkt[0]>>4 != 4 {
		return false
	}
	old := pkt[1]
	if old&0x3 == ECNNotECT || old&0x3 == ECNCE {
		return old&0x3 == ECNCE
	}
	pkt[1] = old&^0x3 | ECNCE
	// Incremental checksum update: HC' = ~(~HC + ~m + m').
	hc := binary.BigEndian.Uint16(pkt[10:])
	oldWord := uint32(pkt[0])<<8 | uint32(old)
	newWord := uint32(pkt[0])<<8 | uint32(pkt[1])
	sum := uint32(^hc&0xffff) + (^oldWord & 0xffff) + newWord
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	binary.BigEndian.PutUint16(pkt[10:], ^uint16(sum))
	return true
}
