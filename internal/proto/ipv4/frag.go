package ipv4

import (
	"fmt"
	"sort"
	"time"

	"netkernel/internal/sim"
)

// Fragment splits payload into fully marshalled IPv4 packets that fit
// mtu (the link payload limit including the IP header). Offsets are in
// 8-byte units per RFC 791, so every fragment but the last carries a
// multiple of 8 payload bytes. A set DF flag on an oversized datagram is
// an error.
func Fragment(h Header, payload []byte, mtu int) ([][]byte, error) {
	if mtu < HeaderLen+8 {
		return nil, fmt.Errorf("ipv4: mtu %d cannot carry a fragment", mtu)
	}
	if HeaderLen+len(payload) <= mtu {
		h.TotalLen = uint16(HeaderLen + len(payload))
		pkt := make([]byte, h.TotalLen)
		h.Marshal(pkt)
		copy(pkt[HeaderLen:], payload)
		return [][]byte{pkt}, nil
	}
	if h.Flags&FlagDontFragment != 0 {
		return nil, fmt.Errorf("ipv4: datagram of %d bytes needs fragmentation but DF is set", len(payload))
	}
	per := (mtu - HeaderLen) &^ 7
	var frags [][]byte
	for off := 0; off < len(payload); off += per {
		end := off + per
		last := end >= len(payload)
		if last {
			end = len(payload)
		}
		fh := h
		fh.FragOff = uint16(off / 8)
		if !last {
			fh.Flags |= FlagMoreFrags
		}
		fh.TotalLen = uint16(HeaderLen + end - off)
		pkt := make([]byte, fh.TotalLen)
		fh.Marshal(pkt)
		copy(pkt[HeaderLen:], payload[off:end])
		frags = append(frags, pkt)
	}
	return frags, nil
}

// DefaultReassemblyTimeout is how long a partial datagram is held.
const DefaultReassemblyTimeout = 30 * time.Second

type fragKey struct {
	src, dst Addr
	id       uint16
	proto    uint8
}

type fragPiece struct {
	off  int
	data []byte
	last bool
}

type fragEntry struct {
	pieces   []fragPiece
	deadline sim.Time
}

// Reassembler reconstructs fragmented datagrams. It is driven by the
// caller's clock: pass the current time to Add, and call Sweep
// periodically to expire stale partial datagrams.
type Reassembler struct {
	timeout time.Duration
	pending map[fragKey]*fragEntry
}

// NewReassembler builds a reassembler; timeout <= 0 selects the default.
func NewReassembler(timeout time.Duration) *Reassembler {
	if timeout <= 0 {
		timeout = DefaultReassemblyTimeout
	}
	return &Reassembler{timeout: timeout, pending: make(map[fragKey]*fragEntry)}
}

// Pending returns the number of partially reassembled datagrams.
func (r *Reassembler) Pending() int { return len(r.pending) }

// Add accepts one fragment (or whole datagram). When the datagram is
// complete it returns the full payload and true; otherwise it buffers
// the fragment and returns false. Whole unfragmented packets pass
// through without copying.
func (r *Reassembler) Add(h Header, payload []byte, now sim.Time) ([]byte, bool) {
	if h.Flags&FlagMoreFrags == 0 && h.FragOff == 0 {
		return payload, true
	}
	key := fragKey{h.Src, h.Dst, h.ID, h.Proto}
	e := r.pending[key]
	if e == nil {
		e = &fragEntry{}
		r.pending[key] = e
	}
	e.deadline = now.Add(r.timeout)
	data := make([]byte, len(payload))
	copy(data, payload)
	e.pieces = append(e.pieces, fragPiece{
		off:  int(h.FragOff) * 8,
		data: data,
		last: h.Flags&FlagMoreFrags == 0,
	})

	full, ok := e.assemble()
	if ok {
		delete(r.pending, key)
	}
	return full, ok
}

func (e *fragEntry) assemble() ([]byte, bool) {
	sort.Slice(e.pieces, func(i, j int) bool { return e.pieces[i].off < e.pieces[j].off })
	next := 0
	total := -1
	for _, p := range e.pieces {
		if p.off > next {
			return nil, false // hole
		}
		if end := p.off + len(p.data); end > next {
			next = end
		}
		if p.last {
			total = p.off + len(p.data)
		}
	}
	if total < 0 || next < total {
		return nil, false
	}
	out := make([]byte, total)
	for _, p := range e.pieces {
		copy(out[p.off:], p.data)
	}
	return out, true
}

// Sweep drops partial datagrams whose reassembly timer expired and
// returns how many were dropped.
func (r *Reassembler) Sweep(now sim.Time) int {
	dropped := 0
	for k, e := range r.pending {
		if now >= e.deadline {
			delete(r.pending, k)
			dropped++
		}
	}
	return dropped
}
