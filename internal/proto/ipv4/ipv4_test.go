package ipv4

import (
	"bytes"
	"testing"
	"testing/quick"
)

func sampleHeader() Header {
	return Header{
		TOS:      ECNECT0,
		TotalLen: HeaderLen + 100,
		ID:       0x1234,
		TTL:      64,
		Proto:    ProtoTCP,
		Src:      Addr{10, 0, 0, 1},
		Dst:      Addr{10, 0, 0, 2},
	}
}

func marshalPacket(h Header, payload []byte) []byte {
	h.TotalLen = uint16(HeaderLen + len(payload))
	pkt := make([]byte, h.TotalLen)
	h.Marshal(pkt)
	copy(pkt[HeaderLen:], payload)
	return pkt
}

func TestMarshalParseRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, 100)
	pkt := marshalPacket(sampleHeader(), payload)
	h, pl, err := Parse(pkt)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleHeader()
	if h != want {
		t.Fatalf("header = %+v, want %+v", h, want)
	}
	if !bytes.Equal(pl, payload) {
		t.Fatal("payload mismatch")
	}
}

func TestParseRejectsCorruptChecksum(t *testing.T) {
	pkt := marshalPacket(sampleHeader(), make([]byte, 10))
	pkt[15] ^= 1 // flip a bit in Src
	if _, _, err := Parse(pkt); err == nil {
		t.Fatal("corrupt header accepted")
	}
}

func TestParseRejectsShortAndBadVersion(t *testing.T) {
	if _, _, err := Parse(make([]byte, 19)); err == nil {
		t.Fatal("short packet accepted")
	}
	pkt := marshalPacket(sampleHeader(), nil)
	pkt[0] = 6<<4 | 5
	if _, _, err := Parse(pkt); err == nil {
		t.Fatal("IPv6 version accepted")
	}
}

func TestParseTruncatesToTotalLen(t *testing.T) {
	pkt := marshalPacket(sampleHeader(), []byte("hello"))
	padded := append(pkt, make([]byte, 26)...) // Ethernet min-frame padding
	_, pl, err := Parse(padded)
	if err != nil {
		t.Fatal(err)
	}
	if string(pl) != "hello" {
		t.Fatalf("payload = %q, want trailing padding stripped", pl)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	err := quick.Check(func(tos, ttl, proto uint8, id uint16, src, dst [4]byte, n uint8) bool {
		h := Header{TOS: tos, ID: id, TTL: ttl, Proto: proto, Src: src, Dst: dst}
		pkt := marshalPacket(h, make([]byte, int(n)))
		got, pl, err := Parse(pkt)
		if err != nil {
			return false
		}
		h.TotalLen = uint16(HeaderLen + int(n))
		return got == h && len(pl) == int(n)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSetCEInPlace(t *testing.T) {
	pkt := marshalPacket(sampleHeader(), make([]byte, 8)) // ECT(0)
	if !SetCEInPlace(pkt) {
		t.Fatal("marking an ECT packet failed")
	}
	h, _, err := Parse(pkt)
	if err != nil {
		t.Fatalf("checksum broken after incremental update: %v", err)
	}
	if h.ECN() != ECNCE {
		t.Fatalf("ECN = %d, want CE", h.ECN())
	}
	// Marking again is idempotent and still reports CE.
	if !SetCEInPlace(pkt) {
		t.Fatal("re-marking a CE packet reported failure")
	}
}

func TestSetCERefusesNotECT(t *testing.T) {
	h := sampleHeader()
	h.TOS = 0 // NotECT
	pkt := marshalPacket(h, make([]byte, 8))
	if SetCEInPlace(pkt) {
		t.Fatal("marked a NotECT packet")
	}
	got, _, err := Parse(pkt)
	if err != nil || got.ECN() != ECNNotECT {
		t.Fatal("NotECT packet was modified")
	}
}

func TestMustParseAddr(t *testing.T) {
	if MustParseAddr("192.168.1.200") != (Addr{192, 168, 1, 200}) {
		t.Fatal("parse broken")
	}
	for _, bad := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MustParseAddr(%q) did not panic", bad)
				}
			}()
			MustParseAddr(bad)
		}()
	}
}

func TestAddrString(t *testing.T) {
	if (Addr{10, 0, 0, 1}).String() != "10.0.0.1" {
		t.Fatal("Addr String broken")
	}
	if !(Addr{}).IsZero() || (Addr{1}).IsZero() {
		t.Fatal("IsZero broken")
	}
}
