package ipv4

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"netkernel/internal/sim"
)

func TestFragmentSmallPacketPassesThrough(t *testing.T) {
	h := sampleHeader()
	payload := make([]byte, 100)
	frags, err := Fragment(h, payload, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 {
		t.Fatalf("got %d fragments, want 1", len(frags))
	}
	got, pl, err := Parse(frags[0])
	if err != nil || got.Flags&FlagMoreFrags != 0 || len(pl) != 100 {
		t.Fatalf("pass-through broken: %+v, %d bytes, %v", got, len(pl), err)
	}
}

func TestFragmentAndReassemble(t *testing.T) {
	h := sampleHeader()
	payload := make([]byte, 4000)
	for i := range payload {
		payload[i] = byte(i)
	}
	frags, err := Fragment(h, payload, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 3 {
		t.Fatalf("got %d fragments, want 3", len(frags))
	}
	r := NewReassembler(0)
	var full []byte
	var done bool
	for i, f := range frags {
		fh, pl, err := Parse(f)
		if err != nil {
			t.Fatalf("fragment %d: %v", i, err)
		}
		if len(pl)%8 != 0 && fh.Flags&FlagMoreFrags != 0 {
			t.Fatalf("non-final fragment %d has %d payload bytes (not 8-aligned)", i, len(pl))
		}
		full, done = r.Add(fh, pl, 0)
	}
	if !done {
		t.Fatal("datagram never completed")
	}
	if !bytes.Equal(full, payload) {
		t.Fatal("reassembled payload differs")
	}
	if r.Pending() != 0 {
		t.Fatal("completed datagram still pending")
	}
}

func TestReassembleOutOfOrderAndDuplicates(t *testing.T) {
	h := sampleHeader()
	payload := make([]byte, 5000)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	frags, _ := Fragment(h, payload, 576)
	r := NewReassembler(0)
	order := sim.NewRNG(3).Perm(len(frags))
	var full []byte
	var done bool
	for _, idx := range order {
		fh, pl, _ := Parse(frags[idx])
		full, done = r.Add(fh, pl, 0)
		// Feed a duplicate too; must be harmless.
		fh2, pl2, _ := Parse(frags[idx])
		if f2, d2 := r.Add(fh2, pl2, 0); d2 {
			full, done = f2, d2
		}
	}
	if !done || !bytes.Equal(full, payload) {
		t.Fatal("out-of-order reassembly failed")
	}
}

func TestFragmentRespectsDF(t *testing.T) {
	h := sampleHeader()
	h.Flags = FlagDontFragment
	if _, err := Fragment(h, make([]byte, 3000), 1500); err == nil {
		t.Fatal("DF datagram fragmented")
	}
	if _, err := Fragment(h, make([]byte, 100), 1500); err != nil {
		t.Fatalf("DF datagram that fits rejected: %v", err)
	}
}

func TestFragmentTinyMTU(t *testing.T) {
	if _, err := Fragment(sampleHeader(), make([]byte, 100), HeaderLen+4); err == nil {
		t.Fatal("unusable MTU accepted")
	}
}

func TestReassemblerTimeout(t *testing.T) {
	h := sampleHeader()
	frags, _ := Fragment(h, make([]byte, 4000), 1500)
	r := NewReassembler(time.Second)
	fh, pl, _ := Parse(frags[0])
	if _, done := r.Add(fh, pl, 0); done {
		t.Fatal("incomplete datagram reported done")
	}
	if n := r.Sweep(sim.Time(500 * time.Millisecond)); n != 0 {
		t.Fatal("swept a live datagram")
	}
	if n := r.Sweep(sim.Time(2 * time.Second)); n != 1 {
		t.Fatalf("Sweep dropped %d, want 1", n)
	}
	if r.Pending() != 0 {
		t.Fatal("expired datagram still pending")
	}
}

// Property: fragmentation followed by reassembly is the identity for any
// payload and any workable MTU.
func TestQuickFragmentReassemble(t *testing.T) {
	err := quick.Check(func(seed uint64, sizeSel uint16, mtuSel uint8) bool {
		size := int(sizeSel)%8000 + 1
		mtu := HeaderLen + 8 + int(mtuSel)%1400
		rng := sim.NewRNG(seed)
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(rng.Uint64())
		}
		frags, err := Fragment(sampleHeader(), payload, mtu)
		if err != nil {
			return false
		}
		r := NewReassembler(0)
		for i, f := range frags {
			fh, pl, err := Parse(f)
			if err != nil {
				return false
			}
			full, done := r.Add(fh, pl, 0)
			if done {
				return i == len(frags)-1 && bytes.Equal(full, payload)
			}
		}
		return false
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReassemblerKeysAreIndependent(t *testing.T) {
	// Same ID from two different sources must not merge.
	h1 := sampleHeader()
	h2 := sampleHeader()
	h2.Src = Addr{10, 0, 0, 9}
	f1, _ := Fragment(h1, bytes.Repeat([]byte{1}, 3000), 1500)
	f2, _ := Fragment(h2, bytes.Repeat([]byte{2}, 3000), 1500)
	r := NewReassembler(0)
	fh, pl, _ := Parse(f1[0])
	r.Add(fh, pl, 0)
	fh2, pl2, _ := Parse(f2[1])
	if _, done := r.Add(fh2, pl2, 0); done {
		t.Fatal("fragments from different sources merged")
	}
	if r.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2 distinct keys", r.Pending())
	}
}
