package inet

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestChecksumRFC1071Example(t *testing.T) {
	// Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 → checksum 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data, 0); got != 0x220d {
		t.Fatalf("Checksum = 0x%04x, want 0x220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Trailing byte is padded with zero.
	odd := Checksum([]byte{0xab}, 0)
	even := Checksum([]byte{0xab, 0x00}, 0)
	if odd != even {
		t.Fatalf("odd %04x != padded even %04x", odd, even)
	}
}

func TestChecksumEmpty(t *testing.T) {
	if got := Checksum(nil, 0); got != 0xffff {
		t.Fatalf("Checksum(nil) = 0x%04x, want 0xffff", got)
	}
}

// Property: embedding the computed checksum makes the data verify.
func TestChecksumQuickSelfVerify(t *testing.T) {
	err := quick.Check(func(data []byte, a, b, c, d, e, f, g, h2 byte, proto uint8) bool {
		src := [4]byte{a, b, c, d}
		dst := [4]byte{e, f, g, h2}
		buf := make([]byte, 2+len(data))
		copy(buf[2:], data)
		ph := PseudoHeaderSum(src, dst, proto, len(buf))
		binary.BigEndian.PutUint16(buf, Checksum(buf, ph))
		return Verify(buf, ph)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i * 7)
	}
	binary.BigEndian.PutUint16(data, 0)
	binary.BigEndian.PutUint16(data, Checksum(data, 0))
	if !Verify(data, 0) {
		t.Fatal("self-checksummed data does not verify")
	}
	data[33] ^= 0x40
	if Verify(data, 0) {
		t.Fatal("corruption not detected")
	}
}

// referenceChecksum is the textbook two-bytes-at-a-time RFC 1071 sum,
// kept as the oracle for the optimized wide-word implementation.
func referenceChecksum(data []byte, initial uint32) uint16 {
	sum := initial
	n := len(data)
	i := 0
	for ; i+1 < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if i < n {
		sum += uint32(data[i]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

func TestChecksumMatchesReference(t *testing.T) {
	if err := quick.Check(func(data []byte, initial uint32) bool {
		return Checksum(data, initial&0xffff) == referenceChecksum(data, initial&0xffff)
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// Every length 0..64 (exercises all tail paths).
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = byte(i*37 + 11)
	}
	for n := 0; n <= 64; n++ {
		if Checksum(buf[:n], 7) != referenceChecksum(buf[:n], 7) {
			t.Fatalf("mismatch at length %d", n)
		}
	}
}

func TestPseudoHeaderSumOrderSensitivity(t *testing.T) {
	a := PseudoHeaderSum([4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}, 6, 100)
	b := PseudoHeaderSum([4]byte{10, 0, 0, 2}, [4]byte{10, 0, 0, 1}, 6, 100)
	// Ones-complement addition is commutative, so swapping src/dst gives
	// the same sum — document the (standard) property.
	if a != b {
		t.Fatalf("pseudo-header sums differ: %x vs %x", a, b)
	}
	c := PseudoHeaderSum([4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}, 17, 100)
	if a == c {
		t.Fatal("protocol change did not alter the sum")
	}
}
