// Package inet holds helpers shared by the Internet protocol family:
// the RFC 1071 ones-complement checksum and the TCP/UDP pseudo-header.
package inet

import "encoding/binary"

// Checksum computes the RFC 1071 Internet checksum of data with the
// given initial partial sum (pass 0 unless folding in a pseudo-header).
//
// The hot loop accumulates 64-bit big-endian words and folds the carries
// afterwards — ones-complement addition is associative across word
// splits, so summing wider lanes and folding is equivalent to summing
// 16-bit words (RFC 1071 §2(B)), and roughly 4× faster.
func Checksum(data []byte, initial uint32) uint16 {
	sum := uint64(initial)
	n := len(data)
	i := 0
	for ; i+8 <= n; i += 8 {
		v := binary.BigEndian.Uint64(data[i:])
		sum += v>>32 + v&0xffffffff
	}
	if i+4 <= n {
		sum += uint64(binary.BigEndian.Uint32(data[i:]))
		i += 4
	}
	if i+2 <= n {
		sum += uint64(binary.BigEndian.Uint16(data[i:]))
		i += 2
	}
	if i < n {
		sum += uint64(data[i]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// PseudoHeaderSum returns the partial sum of the IPv4 pseudo-header used
// by TCP and UDP checksums: source, destination, protocol, and segment
// length.
func PseudoHeaderSum(src, dst [4]byte, proto uint8, length int) uint32 {
	sum := uint32(src[0])<<8 | uint32(src[1])
	sum += uint32(src[2])<<8 | uint32(src[3])
	sum += uint32(dst[0])<<8 | uint32(dst[1])
	sum += uint32(dst[2])<<8 | uint32(dst[3])
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// Verify reports whether data checksums to zero under the given initial
// partial sum, i.e. whether an embedded checksum field is consistent.
func Verify(data []byte, initial uint32) bool {
	return Checksum(data, initial) == 0
}
