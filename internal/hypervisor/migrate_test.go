package hypervisor

import (
	"bytes"
	"testing"
	"time"

	"netkernel/internal/guestlib"
)

// echoSrv wires a byte-echo server on g: every accepted connection's
// bytes are pushed straight back, and the accepted fd count and close
// errors are recorded.
type echoSrv struct {
	lfd       int32
	accepted  int
	closeErrs []error
}

func startEcho(t *testing.T, g *guestlib.GuestLib, port uint16) *echoSrv {
	t.Helper()
	es := &echoSrv{}
	var lfd int32
	lfd = g.Socket(guestlib.Callbacks{OnAcceptable: func() {
		for {
			fd, ok := g.Accept(lfd)
			if !ok {
				return
			}
			es.accepted++
			var pending []byte
			buf := make([]byte, 32<<10)
			push := func() {
				for len(pending) > 0 {
					n := g.Send(fd, pending)
					if n == 0 {
						return
					}
					pending = pending[n:]
				}
			}
			read := func() {
				for {
					n, eof := g.Recv(fd, buf)
					if n > 0 {
						pending = append(pending, buf[:n]...)
					}
					if n == 0 {
						if eof {
							g.Close(fd)
						}
						return
					}
				}
			}
			g.SetCallbacks(fd, guestlib.Callbacks{
				OnReadable: func() { read(); push() },
				OnWritable: push,
				OnClose:    func(err error) { es.closeErrs = append(es.closeErrs, err) },
			})
		}
	}})
	if err := g.Listen(lfd, port, 16); err != nil {
		t.Fatal(err)
	}
	es.lfd = lfd
	return es
}

// pacedSender drips payload into fd a few KB at a time so a transfer
// spans many milliseconds of virtual time — long enough to migrate the
// serving NSM mid-stream.
func pacedSender(c *cluster, g *guestlib.GuestLib, fd int32, payload []byte) {
	sent := 0
	var pump func()
	pump = func() {
		for sent < len(payload) {
			end := sent + 4096
			if end > len(payload) {
				end = len(payload)
			}
			n := g.Send(fd, payload[sent:end])
			sent += n
			if n == 0 {
				break // flow control: retry next tick
			}
		}
		if sent < len(payload) {
			c.loop.AfterFunc(2*time.Millisecond, pump)
		}
	}
	pump()
}

// TestNSMMigrateLive migrates the server-side NSM in the middle of a
// paced bulk transfer and proves the handoff is invisible: the full
// echo arrives byte-exact, neither guest sees an error or reset, the
// donor's stack dies, the successor owns the tenant, and no
// shared-memory chunk leaks.
func TestNSMMigrateLive(t *testing.T) {
	c := newCluster(t, nil)
	vma, vmb := c.nkPair(t, "cubic", "cubic")
	srv := startEcho(t, vmb.Guest, 80)

	cliG := vma.Guest
	payload := make([]byte, 400<<10)
	for i := range payload {
		payload[i] = byte(i*7 + i>>9)
	}
	var echoed []byte
	var estErr error = errSentinel
	var closeErr error = errSentinel
	buf := make([]byte, 64<<10)
	var cfd int32
	cfd = cliG.Socket(guestlib.Callbacks{
		OnEstablished: func(err error) { estErr = err },
		OnReadable: func() {
			for {
				n, _ := cliG.Recv(cfd, buf)
				if n == 0 {
					return
				}
				echoed = append(echoed, buf[:n]...)
			}
		},
		OnClose: func(err error) { closeErr = err },
	})
	if err := cliG.Connect(cfd, ipVMB, 80); err != nil {
		t.Fatal(err)
	}
	c.loop.RunFor(100 * time.Millisecond)
	if estErr != nil {
		t.Fatalf("OnEstablished: %v", estErr)
	}
	pacedSender(c, cliG, cfd, payload)
	c.loop.RunFor(60 * time.Millisecond) // well inside the transfer

	old := vmb.NSM
	var rec *Migration
	m, err := c.h2.MigrateNSM(old, moduleNSM("cubic"), MigrateOptions{}, func(mm *Migration) { rec = mm })
	if err != nil {
		t.Fatal(err)
	}
	c.loop.RunFor(2 * time.Second) // boot + cutover + rest of the transfer

	if rec == nil {
		t.Fatal("migration callback never fired")
	}
	if rec != m || rec.Aborted {
		t.Fatalf("migration aborted: %v", rec.Err)
	}
	if rec.Conns < 1 || rec.VMs != 1 {
		t.Fatalf("migration moved %d conns across %d VMs, want >=1 conns of 1 VM", rec.Conns, rec.VMs)
	}
	if rec.Stall <= 0 || rec.ResumeAt.Sub(rec.CutoverAt) != rec.Stall {
		t.Fatalf("stall accounting broken: stall=%v cutover=%v resume=%v", rec.Stall, rec.CutoverAt, rec.ResumeAt)
	}
	if vmb.NSM != rec.To || vmb.NSM == old {
		t.Fatal("VM still points at the donor module")
	}
	if !old.Stack.Dead() || vmb.NSM.Stack.Dead() {
		t.Fatal("donor stack must be dead and successor live")
	}
	if got := c.h2.Engine.Stats().NSMResets; got != 0 {
		t.Fatalf("engine saw %d NSM resets during a live migration, want 0", got)
	}
	if !bytes.Equal(echoed, payload) {
		t.Fatalf("echo diverged across migration: got %d bytes, want %d byte-exact", len(echoed), len(payload))
	}
	if closeErr != errSentinel {
		t.Fatalf("client conn closed during migration: %v", closeErr)
	}

	cliG.Close(cfd)
	vmb.Guest.Close(srv.lfd)
	c.loop.RunFor(3 * time.Second) // close handshakes + mapping-retire grace
	for _, err := range srv.closeErrs {
		if err != nil {
			t.Fatalf("server conn died: %v", err)
		}
	}
	if n := c.h2.Engine.Mappings(); n != 0 {
		t.Fatalf("engine holds %d mappings after quiesce", n)
	}
	if n := vmb.NSM.Stack.ConnCount(); n != 0 {
		t.Fatalf("successor stack holds %d conns after quiesce", n)
	}
	for _, vm := range []*VM{vma, vmb} {
		for _, pair := range vm.Guest.Pairs() {
			if pair.Pages.FreeCount() != pair.Pages.Chunks() || pair.Pages.LiveRefs() != 0 {
				t.Fatalf("%s leaked chunks: free %d of %d, refs %d",
					vm.Name, pair.Pages.FreeCount(), pair.Pages.Chunks(), pair.Pages.LiveRefs())
			}
		}
	}
}

// TestNSMMigrateHotSwapCC migrates onto a successor running a
// different congestion-control algorithm mid-transfer: the flow
// survives, finishes byte-exact, and the module advertises the new
// algorithm.
func TestNSMMigrateHotSwapCC(t *testing.T) {
	c := newCluster(t, nil)
	vma, vmb := c.nkPair(t, "cubic", "cubic")
	startEcho(t, vmb.Guest, 80)

	cliG := vma.Guest
	payload := make([]byte, 256<<10)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	var echoed []byte
	buf := make([]byte, 64<<10)
	var cfd int32
	cfd = cliG.Socket(guestlib.Callbacks{
		OnReadable: func() {
			for {
				n, _ := cliG.Recv(cfd, buf)
				if n == 0 {
					return
				}
				echoed = append(echoed, buf[:n]...)
			}
		},
	})
	if err := cliG.Connect(cfd, ipVMB, 80); err != nil {
		t.Fatal(err)
	}
	c.loop.RunFor(100 * time.Millisecond)
	pacedSender(c, cliG, cfd, payload)
	c.loop.RunFor(40 * time.Millisecond)

	var rec *Migration
	if _, err := c.h2.MigrateNSM(vmb.NSM, moduleNSM("bbr"), MigrateOptions{}, func(m *Migration) { rec = m }); err != nil {
		t.Fatal(err)
	}
	c.loop.RunFor(2 * time.Second)

	if rec == nil || rec.Aborted {
		t.Fatalf("hot-swap migration failed: %+v", rec)
	}
	if vmb.NSM.CC != "bbr" {
		t.Fatalf("successor CC = %q, want bbr", vmb.NSM.CC)
	}
	if !bytes.Equal(echoed, payload) {
		t.Fatalf("echo diverged across CC hot-swap: got %d of %d bytes", len(echoed), len(payload))
	}
}

// TestNSMMigrateAbortFallsBackToCrash injects a restore fault
// mid-migration and checks the abort path degrades to exactly the
// crash-reboot semantics of RestartNSM: guests get reset
// notifications, the half-built successor is discarded, the original
// module reboots on its own identity and serves again — and no
// shared-memory chunk is double-freed (the pool panics on double-free)
// or leaked.
func TestNSMMigrateAbortFallsBackToCrash(t *testing.T) {
	c := newCluster(t, nil)
	vma, vmb := c.nkPair(t, "cubic", "cubic")
	srv := startEcho(t, vmb.Guest, 80)

	cliG := vma.Guest
	// Three live connections with data in flight, so the injected fault
	// (after two restores) strikes mid-migration.
	type cliConn struct {
		fd       int32
		closeErr error
	}
	var conns []*cliConn
	for i := 0; i < 3; i++ {
		cc := &cliConn{closeErr: errSentinel}
		cc.fd = cliG.Socket(guestlib.Callbacks{
			OnClose: func(err error) { cc.closeErr = err },
		})
		if err := cliG.Connect(cc.fd, ipVMB, 80); err != nil {
			t.Fatal(err)
		}
		conns = append(conns, cc)
	}
	c.loop.RunFor(200 * time.Millisecond)
	for _, cc := range conns {
		if n := cliG.Send(cc.fd, bytes.Repeat([]byte("y"), 8<<10)); n == 0 {
			t.Fatal("Send pushed nothing")
		}
	}
	c.loop.RunFor(50 * time.Millisecond)

	old := vmb.NSM
	oldStack := old.Stack
	var rec *Migration
	if _, err := c.h2.MigrateNSM(old, moduleNSM("cubic"), MigrateOptions{FailRestoreAfter: 2}, func(m *Migration) { rec = m }); err != nil {
		t.Fatal(err)
	}
	c.loop.RunFor(2 * time.Second)

	if rec == nil || !rec.Aborted || rec.Err == nil {
		t.Fatalf("expected aborted migration, got %+v", rec)
	}
	// Crash semantics: the engine reset the tenant's channel once, the
	// module rebooted in place, and the discarded successor is gone.
	if st := c.h2.Engine.Stats(); st.NSMResets != 1 || st.ResetConns == 0 {
		t.Fatalf("engine stats after abort: %+v, want 1 reset with conns", st)
	}
	if vmb.NSM != old || old.Restarts != 1 {
		t.Fatalf("abort must reboot the original module (restarts=%d)", old.Restarts)
	}
	if !oldStack.Dead() || old.Stack == oldStack || old.Stack.Dead() {
		t.Fatal("module did not reboot onto a fresh live stack")
	}
	if !rec.To.Stack.Dead() {
		t.Fatal("discarded successor stack still alive")
	}
	if n := c.h2.NSMs(); n != 1 {
		t.Fatalf("host has %d NSMs after abort, want 1", n)
	}
	if len(srv.closeErrs) == 0 {
		t.Fatal("server guest never saw its connections reset")
	}
	for _, err := range srv.closeErrs {
		if err == nil {
			t.Fatal("server conn closed cleanly across an abort, want reset errors")
		}
	}
	// Idle client conns learn of the crash on their next transmit (the
	// rebooted stack RSTs stale segments).
	for _, cc := range conns {
		cliG.Send(cc.fd, []byte("probe"))
	}
	c.loop.RunFor(time.Second)
	for i, cc := range conns {
		if cc.closeErr == errSentinel || cc.closeErr == nil {
			t.Fatalf("client conn %d = %v, want an error after abort", i, cc.closeErr)
		}
	}

	// The rebooted module serves fresh connections under its old
	// identity (the reset killed the guest's listener fd, so re-listen —
	// exactly what a guest does after a module crash).
	srv2 := startEcho(t, vmb.Guest, 80)
	c.loop.RunFor(50 * time.Millisecond)
	var estErr error = errSentinel
	cfd := cliG.Socket(guestlib.Callbacks{OnEstablished: func(err error) { estErr = err }})
	if err := cliG.Connect(cfd, ipVMB, 80); err != nil {
		t.Fatal(err)
	}
	c.loop.RunFor(500 * time.Millisecond)
	if estErr != nil {
		t.Fatalf("post-abort OnEstablished: %v", estErr)
	}
	cliG.Close(cfd)
	vmb.Guest.Close(srv2.lfd)
	c.loop.RunFor(3 * time.Second) // close handshakes + mapping-retire grace

	if n := c.h2.Engine.Mappings(); n != 0 {
		t.Fatalf("engine holds %d mappings after quiesce", n)
	}
	for _, vm := range []*VM{vma, vmb} {
		for _, pair := range vm.Guest.Pairs() {
			if pair.Pages.FreeCount() != pair.Pages.Chunks() || pair.Pages.LiveRefs() != 0 {
				t.Fatalf("%s leaked chunks after abort: free %d of %d, refs %d",
					vm.Name, pair.Pages.FreeCount(), pair.Pages.Chunks(), pair.Pages.LiveRefs())
			}
		}
	}
}
