package hypervisor

import (
	"testing"
	"time"

	"netkernel/internal/guestlib"
)

func TestShardSmoke(t *testing.T) {
	c := newCluster(t, func(cfg *HostConfig) { cfg.Shards = 4 })
	vma, vmb := c.nkPair(t, "cubic", "cubic")

	srvG := vmb.Guest
	lfd := srvG.Socket(guestlib.Callbacks{})
	if err := srvG.Listen(lfd, 80, 64); err != nil {
		t.Fatal(err)
	}

	cliG := vma.Guest
	const nconns = 8
	payload := make([]byte, 20000)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := 0; i < nconns; i++ {
		cfd := cliG.Socket(guestlib.Callbacks{})
		if err := cliG.Connect(cfd, ipVMB, 80); err != nil {
			t.Fatal(err)
		}
		fd := cfd
		cliG.SetCallbacks(fd, guestlib.Callbacks{
			OnEstablished: func(err error) {
				if err != nil {
					t.Errorf("conn %d: %v", fd, err)
					return
				}
				cliG.Send(fd, payload)
			},
		})
	}
	got := 0
	c.loop.RunFor(500 * time.Millisecond)
	for {
		fd, ok := srvG.Accept(lfd)
		if !ok {
			break
		}
		buf := make([]byte, 4096)
		for {
			n, _ := srvG.Recv(fd, buf)
			if n <= 0 {
				break
			}
			got += n
		}
	}
	c.loop.RunFor(2 * time.Second)
	// drain whatever arrived after the first pass
	for fd := int32(0); fd < 64; fd++ {
		buf := make([]byte, 65536)
		for {
			n, _ := srvG.Recv(fd, buf)
			if n <= 0 {
				break
			}
			got += n
		}
	}
	if got < nconns*len(payload)/2 {
		t.Fatalf("received %d bytes, want most of %d", got, nconns*len(payload))
	}
	if err := c.h1.Engine.CheckFlowAffinity(); err != nil {
		t.Fatal(err)
	}
	if err := c.h2.Engine.CheckFlowAffinity(); err != nil {
		t.Fatal(err)
	}
	// With 8 flows over 4 shards, the server NSM's conn table should be
	// spread beyond shard 0.
	st := vmb.NSM.Stack
	if st.RxShards() != 4 {
		t.Fatalf("RxShards = %d, want 4", st.RxShards())
	}
	spread := 0
	for i := 0; i < 4; i++ {
		if st.ShardConnCount(i) > 0 {
			spread++
		}
	}
	t.Logf("server conn shards occupied: %d/4, bytes: %d", spread, got)
}
