package hypervisor

import (
	"sync"
	"testing"
	"time"

	"netkernel/internal/guestlib"
)

// TestCopyReportConcurrentWithPipeline is the -race gate for the
// observability counters: a monitoring goroutine hammers
// VM.CopyReport() and the NSM stacks' Stats() — the two surfaces that
// used to read hot-path fields bare — while the event loop pumps a
// bulk transfer on the test goroutine. Every counter those accessors
// touch must be an atomic; before the migration this test fails under
// `go test -race` with reads in CopyReport racing writes in
// guestlib/servicelib/stack hot paths.
func TestCopyReportConcurrentWithPipeline(t *testing.T) {
	c := newCluster(t, nil)
	vma, vmb := c.nkPair(t, "cubic", "cubic")

	// Sink server on vmb: drain everything.
	srvG := vmb.Guest
	buf := make([]byte, 64<<10)
	lfd := srvG.Socket(guestlib.Callbacks{})
	srvG.SetCallbacks(lfd, guestlib.Callbacks{OnAcceptable: func() {
		fd, ok := srvG.Accept(lfd)
		if !ok {
			return
		}
		drain := func() {
			for {
				n, _ := srvG.Recv(fd, buf)
				if n == 0 {
					return
				}
			}
		}
		srvG.SetCallbacks(fd, guestlib.Callbacks{OnReadable: drain})
		drain()
	}})
	if err := srvG.Listen(lfd, 80, 16); err != nil {
		t.Fatal(err)
	}

	// Pump client on vma: keep the send buffer full.
	cliG := vma.Guest
	out := make([]byte, 16<<10)
	var cfd int32
	pump := func() {
		for cliG.Send(cfd, out) > 0 {
		}
	}
	cfd = cliG.Socket(guestlib.Callbacks{
		OnEstablished: func(err error) {
			if err == nil {
				pump()
			}
		},
		OnWritable: pump,
	})
	if err := cliG.Connect(cfd, ipVMB, 80); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(200 * time.Microsecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			for _, vm := range []*VM{vma, vmb} {
				rep := vm.CopyReport()
				// The reads must at least be internally coherent:
				// cumulative counters never exceed what Sub from zero
				// reports (a smoke check that the snapshot didn't tear
				// into garbage).
				if rep.Sub(CopyReport{}) != rep {
					t.Error("CopyReport not self-consistent")
					return
				}
				for _, n := range vm.NSMs {
					_ = n.Stack.Stats()
				}
				for _, svc := range vm.Services {
					_ = svc.Stats()
				}
			}
		}
	}()

	// Drive the pipeline while the monitor races it.
	for i := 0; i < 10; i++ {
		c.loop.RunFor(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	rep := vma.CopyReport()
	if rep.PayloadTx == 0 {
		t.Fatal("no payload moved; the race test exercised nothing")
	}
	if got := vmb.CopyReport(); got.PayloadRx == 0 {
		t.Fatal("server VM recorded no received payload")
	}
}
