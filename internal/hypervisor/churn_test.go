package hypervisor

import (
	"fmt"
	"testing"
	"time"

	"netkernel/internal/guestlib"
	"netkernel/internal/sim"
)

// TestConnectionChurn opens and closes many short connections through
// the NetKernel path and verifies nothing leaks: every connection
// establishes, every byte arrives, huge-page chunks return to the
// pool, the engine's mapping table drains after the grace period, and
// the NSM stacks' connection tables empty.
func TestConnectionChurn(t *testing.T) {
	c := newCluster(t, nil)
	vma, vmb := c.nkPair(t, "cubic", "cubic")

	// Echo-close server: read one message, echo, close.
	srv := vmb.Guest
	lfd := srv.Socket(guestlib.Callbacks{})
	srv.SetCallbacks(lfd, guestlib.Callbacks{OnAcceptable: func() {
		for {
			fd, ok := srv.Accept(lfd)
			if !ok {
				return
			}
			buf := make([]byte, 4096)
			srv.SetCallbacks(fd, guestlib.Callbacks{OnReadable: func() {
				n, _ := srv.Recv(fd, buf)
				if n > 0 {
					srv.Send(fd, buf[:n])
					srv.Close(fd)
				}
			}})
		}
	}})
	srv.Listen(lfd, 80, 64)

	const rounds = 40
	done := 0
	cli := vma.Guest
	var launch func(i int)
	launch = func(i int) {
		if i >= rounds {
			return
		}
		var fd int32
		fd = cli.Socket(guestlib.Callbacks{
			OnEstablished: func(err error) {
				if err != nil {
					t.Errorf("round %d: %v", i, err)
					return
				}
				cli.Send(fd, []byte("ping"))
			},
			OnReadable: func() {
				buf := make([]byte, 64)
				n, eof := cli.Recv(fd, buf)
				if n > 0 && string(buf[:n]) != "ping" {
					t.Errorf("round %d: echo %q", i, buf[:n])
				}
				if eof {
					cli.Close(fd)
					done++
					launch(i + 1) // next connection only after this one closed
				}
			},
		})
		cli.Connect(fd, ipVMB, 80)
	}
	launch(0)
	c.loop.RunFor(20 * time.Second)

	if done != rounds {
		t.Fatalf("completed %d of %d churn rounds", done, rounds)
	}
	// Connections drained from both NSM stacks (TIME_WAIT is 2×50 ms).
	c.loop.RunFor(5 * time.Second)
	if n := vma.NSM.Stack.ConnCount(); n != 0 {
		t.Errorf("client NSM leaked %d connections", n)
	}
	if n := vmb.NSM.Stack.ConnCount(); n != 0 {
		t.Errorf("server NSM leaked %d connections", n)
	}
	// The engine's mapping table drained after the grace period
	// (listener entries remain: one per listening socket).
	if m := c.h1.Engine.Mappings(); m > 2 {
		t.Errorf("client engine holds %d mappings after churn", m)
	}
	if m := c.h2.Engine.Mappings(); m > 2 {
		t.Errorf("server engine holds %d mappings after churn", m)
	}
}

// TestManyVMChurnStress is the seeded scale-out churn tier: hundreds
// of tenant VMs multiplexed onto one shared 4-shard NSM per host,
// with tens of thousands of connections alive at once and every slot
// continuously tearing its connection down and dialing a fresh one to
// a randomly chosen server tenant. It hammers exactly the state the
// sharded datapath split up — per-shard fd↔cID mappings, sharded
// connection tables, per-shard rings — and then asserts the
// steady-state invariants: everything established, everything echoed,
// flow affinity held, and after quiesce no connection, mapping, or
// huge-page reference leaked anywhere. The full tier runs in tier-1;
// -short keeps the same shape at a fraction of the population.
func TestManyVMChurnStress(t *testing.T) {
	vmsPerHost, slotsPerVM := 100, 200 // 200 VMs, 20 000 concurrent conns
	if testing.Short() {
		vmsPerHost, slotsPerVM = 10, 20
	}
	const (
		seed        = 4242
		generations = 2 // churn rounds per slot
	)
	rng := sim.NewRNG(seed)

	c := newCluster(t, func(cfg *HostConfig) {
		cfg.Shards = 4
		// 2 MB of huge pages per tenant channel: pings are tiny and
		// chunks turn over within an RTT, and hundreds of default 80 MB
		// regions would be absurd.
		cfg.Chan.HugePages = 1
	})

	// One shared multi-queue NSM per host; tenant 0 boots it and the
	// rest attach to it (the journal version's many-VMs-per-NSM shape).
	mkTenants := func(h *Host, ip [4]byte) []*VM {
		vms := make([]*VM, vmsPerHost)
		var first *NSM
		for i := range vms {
			spec := NSMSpec{Form: FormModule, CC: "cubic"}
			if first != nil {
				spec = NSMSpec{ShareWith: first}
			}
			vm, err := h.CreateVM(VMConfig{
				Name: fmt.Sprintf("t%d", i), IP: ip, Mode: ModeNetKernel, NSM: spec,
			})
			if err != nil {
				t.Fatal(err)
			}
			vms[i] = vm
			if first == nil {
				first = vm.NSM
			}
		}
		return vms
	}
	clients := mkTenants(c.h1, ipVMA)
	servers := mkTenants(c.h2, ipVMB)
	c.loop.RunFor(50 * time.Millisecond) // module boot

	// Every server tenant runs an echo service on its own port of the
	// shared stack: echo each ping, hold the connection, close on the
	// client's FIN.
	for j, srv := range servers {
		g := srv.Guest
		port := uint16(8000 + j)
		lfd := g.Socket(guestlib.Callbacks{})
		g.SetCallbacks(lfd, guestlib.Callbacks{OnAcceptable: func() {
			for {
				fd, ok := g.Accept(lfd)
				if !ok {
					return
				}
				cfd := fd
				buf := make([]byte, 256)
				g.SetCallbacks(cfd, guestlib.Callbacks{OnReadable: func() {
					for {
						n, eof := g.Recv(cfd, buf)
						if n > 0 {
							g.Send(cfd, buf[:n])
						}
						if eof {
							g.Close(cfd)
							return
						}
						if n == 0 {
							return
						}
					}
				}})
			}
		}})
		if err := g.Listen(lfd, port, 256); err != nil {
			t.Fatal(err)
		}
	}

	// Client slots: each dials a seeded-random server tenant, pings,
	// holds the established connection open for a seeded 50–150 ms —
	// so the whole population is up at once — then closes and dials a
	// fresh connection, `generations` times per slot. Work is bounded
	// at slots×generations lifecycles; concurrency is bounded below by
	// the overlapping holds.
	var (
		completed int
		failed    int
		badEcho   int
	)
	var spawn func(g *guestlib.GuestLib, gen int)
	spawn = func(g *guestlib.GuestLib, gen int) {
		port := uint16(8000 + int(rng.Uint64()%uint64(vmsPerHost)))
		hold := 50*time.Millisecond + time.Duration(rng.Uint64()%uint64(100*time.Millisecond))
		var fd int32
		echoed := false
		fd = g.Socket(guestlib.Callbacks{
			OnEstablished: func(err error) {
				if err != nil {
					failed++
					return
				}
				g.Send(fd, []byte("ping"))
			},
			OnReadable: func() {
				buf := make([]byte, 64)
				n, _ := g.Recv(fd, buf)
				if n > 0 {
					if string(buf[:n]) != "ping" {
						badEcho++
					}
					if !echoed {
						echoed = true
						c.loop.AfterFunc(hold, func() { g.Close(fd) })
					}
				}
			},
			OnClose: func(error) {
				completed++
				if gen+1 < generations {
					spawn(g, gen+1)
				}
			},
		})
		if err := g.Connect(fd, ipVMB, port); err != nil {
			t.Fatalf("connect: %v", err)
		}
	}

	// Launch in waves (one tenant's slots per wave, a tick of virtual
	// time apart) so the initial 20 000 SYNs don't all land in the same
	// instant and overflow every listener backlog at once.
	for _, vm := range clients {
		for s := 0; s < slotsPerVM; s++ {
			spawn(vm.Guest, 0)
		}
		c.loop.RunFor(time.Millisecond)
	}

	// Peak concurrency: while the holds overlap, the shared server
	// stack must be carrying a large fraction of slots×VMs established
	// connections at once.
	peak := 0
	sample := func() {
		if n := servers[0].NSM.Stack.ConnCount(); n > peak {
			peak = n
		}
	}
	sample()

	target := generations * vmsPerHost * slotsPerVM
	deadline := 400 // × 25 ms virtual chunks = 10 s of virtual time
	for i := 0; completed < target && i < deadline; i++ {
		c.loop.RunFor(25 * time.Millisecond)
		sample()
	}
	if completed < target {
		t.Fatalf("completed %d of %d churn rounds in the deadline", completed, target)
	}
	if failed > 0 {
		t.Errorf("%d connections failed to establish", failed)
	}
	if badEcho > 0 {
		t.Errorf("%d connections read a corrupted echo", badEcho)
	}
	if want := vmsPerHost * slotsPerVM / 2; peak < want {
		t.Errorf("peak server conn-table occupancy %d, want ≥%d (holds did not overlap)", peak, want)
	}

	// Mid-flight affinity: no fd or cID may ever have crossed shards.
	for _, h := range []*Host{c.h1, c.h2} {
		if err := h.Engine.CheckFlowAffinity(); err != nil {
			t.Fatal(err)
		}
	}

	// Quiesce: every slot has finished its generations; let TIME_WAIT
	// (2×MSL = 100 ms) and the engine's unmap grace drain.
	c.loop.RunFor(3 * time.Second)

	for name, nsm := range map[string]*NSM{"client": clients[0].NSM, "server": servers[0].NSM} {
		if n := nsm.Stack.ConnCount(); n != 0 {
			t.Errorf("%s NSM still holds %d connections after quiesce", name, n)
		}
		for i := 0; i < nsm.Stack.RxShards(); i++ {
			if n := nsm.Stack.ShardConnCount(i); n != 0 {
				t.Errorf("%s NSM shard %d still holds %d connections", name, i, n)
			}
		}
	}
	// Engine mappings: one per listening socket survives on the server
	// host; the client side must drain to zero.
	if m := c.h1.Engine.Mappings(); m != 0 {
		t.Errorf("client engine holds %d mappings after quiesce", m)
	}
	if m := c.h2.Engine.Mappings(); m > vmsPerHost {
		t.Errorf("server engine holds %d mappings, want ≤%d listeners", m, vmsPerHost)
	}
	// No huge-page chunk may survive the churn on any tenant channel.
	leaked := 0
	for _, vm := range append(append([]*VM{}, clients...), servers...) {
		for _, pair := range vm.Guest.Pairs() {
			leaked += pair.Pages.LiveRefs()
		}
	}
	if leaked != 0 {
		t.Errorf("%d live huge-page chunk refs after quiesce", leaked)
	}
	t.Logf("%d VMs, %d slots, %d rounds completed, peak server conns %d",
		2*vmsPerHost, vmsPerHost*slotsPerVM, completed, peak)
}
