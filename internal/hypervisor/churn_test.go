package hypervisor

import (
	"testing"
	"time"

	"netkernel/internal/guestlib"
)

// TestConnectionChurn opens and closes many short connections through
// the NetKernel path and verifies nothing leaks: every connection
// establishes, every byte arrives, huge-page chunks return to the
// pool, the engine's mapping table drains after the grace period, and
// the NSM stacks' connection tables empty.
func TestConnectionChurn(t *testing.T) {
	c := newCluster(t, nil)
	vma, vmb := c.nkPair(t, "cubic", "cubic")

	// Echo-close server: read one message, echo, close.
	srv := vmb.Guest
	lfd := srv.Socket(guestlib.Callbacks{})
	srv.SetCallbacks(lfd, guestlib.Callbacks{OnAcceptable: func() {
		for {
			fd, ok := srv.Accept(lfd)
			if !ok {
				return
			}
			buf := make([]byte, 4096)
			srv.SetCallbacks(fd, guestlib.Callbacks{OnReadable: func() {
				n, _ := srv.Recv(fd, buf)
				if n > 0 {
					srv.Send(fd, buf[:n])
					srv.Close(fd)
				}
			}})
		}
	}})
	srv.Listen(lfd, 80, 64)

	const rounds = 40
	done := 0
	cli := vma.Guest
	var launch func(i int)
	launch = func(i int) {
		if i >= rounds {
			return
		}
		var fd int32
		fd = cli.Socket(guestlib.Callbacks{
			OnEstablished: func(err error) {
				if err != nil {
					t.Errorf("round %d: %v", i, err)
					return
				}
				cli.Send(fd, []byte("ping"))
			},
			OnReadable: func() {
				buf := make([]byte, 64)
				n, eof := cli.Recv(fd, buf)
				if n > 0 && string(buf[:n]) != "ping" {
					t.Errorf("round %d: echo %q", i, buf[:n])
				}
				if eof {
					cli.Close(fd)
					done++
					launch(i + 1) // next connection only after this one closed
				}
			},
		})
		cli.Connect(fd, ipVMB, 80)
	}
	launch(0)
	c.loop.RunFor(20 * time.Second)

	if done != rounds {
		t.Fatalf("completed %d of %d churn rounds", done, rounds)
	}
	// Connections drained from both NSM stacks (TIME_WAIT is 2×50 ms).
	c.loop.RunFor(5 * time.Second)
	if n := vma.NSM.Stack.ConnCount(); n != 0 {
		t.Errorf("client NSM leaked %d connections", n)
	}
	if n := vmb.NSM.Stack.ConnCount(); n != 0 {
		t.Errorf("server NSM leaked %d connections", n)
	}
	// The engine's mapping table drained after the grace period
	// (listener entries remain: one per listening socket).
	if m := c.h1.Engine.Mappings(); m > 2 {
		t.Errorf("client engine holds %d mappings after churn", m)
	}
	if m := c.h2.Engine.Mappings(); m > 2 {
		t.Errorf("server engine holds %d mappings after churn", m)
	}
}
