package hypervisor

import (
	"sort"
	"time"

	"netkernel/internal/nkchan"
	"netkernel/internal/nkqueue"
	"netkernel/internal/nqe"
	"netkernel/internal/shm"
	"netkernel/internal/sim"
	"netkernel/internal/telemetry"
)

// EngineConfig shapes the CoreEngine's cost model.
type EngineConfig struct {
	// NotifyLatency is the engine's own wakeup latency per batched
	// interrupt (added to the NSM form's doorbell latency). Default
	// 1 µs.
	NotifyLatency time.Duration
	// NqeCopyCost is the per-element queue-to-queue copy cost; §4.2
	// measures ~12 ns on the prototype (and bench_test.go reproduces
	// it on real memory). Default 12 ns.
	NqeCopyCost time.Duration
	// MappingGrace is how long a closed connection's fd↔cID entry
	// survives after its conn-closed event, so a straggling OpClose
	// from the guest still translates. Default 2 s.
	MappingGrace time.Duration
	// Batch caps how many nqes one pump drains per ring span. Larger
	// batches amortize doorbells and atomic publication over more
	// elements (§3.2 "batched interrupts"); the queue itself bounds
	// worst-case latency. Default 64.
	Batch int
	// Tracer, when set, stamps traced elements as they cross the
	// engine ("engine.vm-pump" / "engine.nsm-pump" hops).
	Tracer *telemetry.Tracer
}

func (c *EngineConfig) fillDefaults() {
	if c.NotifyLatency <= 0 {
		c.NotifyLatency = time.Microsecond
	}
	if c.NqeCopyCost <= 0 {
		c.NqeCopyCost = 12 * time.Nanosecond
	}
	if c.MappingGrace <= 0 {
		c.MappingGrace = 2 * time.Second
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
}

// EngineStats counts CoreEngine activity.
type EngineStats struct {
	NqesVMToNSM uint64
	NqesNSMToVM uint64
	Translated  uint64
	BadElements uint64
	// NSM crash handling (ResetNSM).
	NSMResets         uint64
	ResetConns        uint64 // mappings force-closed by a reset
	DiscardedElements uint64 // in-flight nqes dropped by a reset
}

// Mappings returns the total live fd↔cID entries across pairs
// (monitoring; a steadily growing value would indicate a leak).
func (ce *CoreEngine) Mappings() int {
	n := 0
	for _, ep := range ce.pairs {
		n += len(ep.fdToCID)
	}
	return n
}

// CoreEngine is the hypervisor daemon of §3: it copies nqes between VM
// and NSM queues, owns the <VM ID, fd> ↔ <NSM ID, cID> connection
// mapping table, and assigns descriptors for accepted connections.
type CoreEngine struct {
	clock sim.Clock
	cfg   EngineConfig
	pairs []*enginePair
	stats EngineStats
}

// NewCoreEngine builds the daemon.
func NewCoreEngine(clock sim.Clock, cfg EngineConfig) *CoreEngine {
	cfg.fillDefaults()
	return &CoreEngine{clock: clock, cfg: cfg}
}

// Stats returns a copy of the counters.
func (ce *CoreEngine) Stats() EngineStats { return ce.stats }

// Pairs returns the number of attached VM↔NSM channels.
func (ce *CoreEngine) Pairs() int { return len(ce.pairs) }

// enginePair is one VM↔NSM channel's state inside the engine,
// including its slice of the connection mapping table (Figure 3).
type enginePair struct {
	engine *CoreEngine
	ch     *nkchan.Pair
	vmID   uint32
	nsmID  uint32
	notify time.Duration

	fdToCID map[int32]uint32
	cidToFD map[uint32]int32
	// pendingFD correlates OpSocket completions back to the guest fd
	// (by Seq) so the mapping can be installed.
	pendingFD map[uint64]int32
	// nextFD allocates descriptors for accepted connections (§3.2:
	// "CoreEngine generates a new socket fd on behalf of the VM").
	// The range is disjoint from GuestLib's own allocations.
	nextFD int32

	readyAt      sim.Time // NSM boot gate
	vmScheduled  bool
	nsmScheduled bool
	// stalled holds elements that could not be pushed to a full queue.
	stalledToNSM []nqe.Element
	stalledToVM  []stalledOut
}

type stalledOut struct {
	e          nqe.Element
	completion bool
}

// Attach registers a channel with the engine. notifyExtra is the NSM
// form's doorbell latency; readyAt gates service until the NSM boots.
// fdBase seeds the accepted-connection descriptor range; a VM attached
// to several NSM replicas gives each a disjoint base.
func (ce *CoreEngine) Attach(ch *nkchan.Pair, vmID, nsmID uint32, notifyExtra time.Duration, readyAt sim.Time, fdBase int32) {
	if fdBase <= 0 {
		fdBase = 1 << 20
	}
	ep := &enginePair{
		engine: ce, ch: ch, vmID: vmID, nsmID: nsmID,
		notify:    ce.cfg.NotifyLatency + notifyExtra,
		fdToCID:   make(map[int32]uint32),
		cidToFD:   make(map[uint32]int32),
		pendingFD: make(map[uint64]int32),
		nextFD:    fdBase,
		readyAt:   readyAt,
	}
	ch.KickEngineVM = ep.kickVM
	ch.KickEngineNSM = ep.kickNSM
	ce.pairs = append(ce.pairs, ep)
}

// delay returns how long until the pair may pump: the notify latency,
// stretched while the NSM is still booting.
func (ep *enginePair) delay() time.Duration {
	d := ep.notify
	if now := ep.engine.clock.Now(); now < ep.readyAt {
		if wait := ep.readyAt.Sub(now); wait > d {
			d = wait
		}
	}
	return d
}

func (ep *enginePair) kickVM() {
	if ep.vmScheduled {
		return
	}
	ep.vmScheduled = true
	ep.engine.clock.AfterFunc(ep.delay(), ep.pumpVM)
}

func (ep *enginePair) kickNSM() {
	if ep.nsmScheduled {
		return
	}
	ep.nsmScheduled = true
	ep.engine.clock.AfterFunc(ep.delay(), ep.pumpNSM)
}

// pumpVM drains the VM job queue into the NSM job queue in batches,
// translating <VM ID, fd> to <NSM ID, cID> via the mapping table. Each
// span pops with one atomic add, translates in place (per element — the
// mapping table must be consulted — but touching only the header fields
// translation needs, not a full decode/encode), transfers contiguous
// runs with PushSpan, and rings the NSM doorbell once.
func (ep *enginePair) pumpVM() {
	ep.vmScheduled = false
	ce := ep.engine
	count := 0

	// Retry previously stalled elements first to preserve order.
	for len(ep.stalledToNSM) > 0 {
		e := ep.stalledToNSM[0]
		if !ep.ch.NSMJob.Push(&e) {
			break
		}
		ep.stalledToNSM = ep.stalledToNSM[1:]
		count++
	}
	for len(ep.stalledToNSM) == 0 {
		span, n := ep.ch.VMJob.FrontSpan(ce.cfg.Batch)
		if n == 0 {
			break
		}
		handled, moved := ep.translateSpanToNSM(span, n)
		count += moved
		ep.ch.VMJob.ReleaseSpan(handled)
		if len(ep.stalledToNSM) > 0 || handled < n {
			break // destination full: the rest waits for the next pump
		}
	}

	if count > 0 || len(ep.stalledToNSM) > 0 {
		ce.stats.NqesVMToNSM += uint64(count)
		cost := time.Duration(count) * ce.cfg.NqeCopyCost
		ce.clock.AfterFunc(ep.notify+cost, func() {
			if ep.ch.KickNSM != nil {
				ep.ch.KickNSM()
			}
			// Stalled elements need another pump once the NSM drains.
			if len(ep.stalledToNSM) > 0 {
				ep.kickVM()
			}
		})
	}
}

// translateSpanToNSM validates and translates one popped span in place,
// pushing contiguous runs of surviving slots into the NSM job queue.
// It returns how many slots of the span were fully handled (pushed,
// dropped, or stalled) and how many were pushed. When the NSM job queue
// fills mid-run, the already-translated remainder of the run is decoded
// into stalledToNSM so nothing is lost or reordered.
func (ep *enginePair) translateSpanToNSM(span []byte, n int) (handled, moved int) {
	ce := ep.engine
	i := 0
	for i < n {
		// Grow a contiguous run of translatable slots.
		runStart := i
		for i < n {
			s := nqe.Slot(span[i*nqe.Size : (i+1)*nqe.Size])
			if s.Validate() != nil || s.VMID() != ep.vmID {
				ce.stats.BadElements++
				break
			}
			if !ep.translateSlotToNSM(s) {
				break
			}
			i++
		}
		if i > runStart {
			run := span[runStart*nqe.Size : i*nqe.Size]
			got := ep.ch.NSMJob.PushSpan(run)
			moved += got
			if got < i-runStart {
				// NSM job queue full: stall the translated remainder.
				for j := runStart + got; j < i; j++ {
					var e nqe.Element
					e.Decode(span[j*nqe.Size:])
					ep.stalledToNSM = append(ep.stalledToNSM, e)
				}
				return i, moved
			}
		}
		if i < n {
			i++ // skip the dropped slot
		}
	}
	return i, moved
}

// translateSlotToNSM patches one job element in place for the NSM side.
// It reports false when the element must be dropped (the VM has already
// been answered with an error completion where appropriate).
func (ep *enginePair) translateSlotToNSM(s nqe.Slot) bool {
	ce := ep.engine
	s.SetNSMID(ep.nsmID)
	switch s.Op() {
	case nqe.OpSocket:
		// The cID does not exist yet; remember the fd for the
		// completion.
		ep.pendingFD[s.Seq()] = s.FD()
	default:
		cid, ok := ep.fdToCID[s.FD()]
		if !ok {
			// Unknown descriptor: answer the VM with an error. The data
			// offset in a rejected element is guest-controlled and cannot
			// be trusted, so the engine must NOT free it — a forged
			// element could otherwise release a chunk owned by a live
			// transfer. Any real chunk behind a bogus send stays charged
			// to the misbehaving guest's own credit.
			ce.stats.BadElements++
			ep.pushToVM(nqe.Element{
				Op: s.Op(), FD: s.FD(), Seq: s.Seq(), VMID: ep.vmID,
				Source: nqe.FromCore, Status: nqe.StatusInvalid,
				Flags: nqe.FlagCompletion,
			}, true)
			return false
		}
		s.SetCID(cid)
	}
	ce.stats.Translated++
	if t := s.Trace(); t != 0 {
		ce.cfg.Tracer.Stamp(t, "engine.vm-pump", 0)
	}
	return true
}

// pumpNSM drains the NSM completion and receive queues toward the VM in
// batches, translating <NSM ID, cID> back to <VM ID, fd> in place.
func (ep *enginePair) pumpNSM() {
	ep.nsmScheduled = false
	ce := ep.engine
	count := 0

	for len(ep.stalledToVM) > 0 {
		s := ep.stalledToVM[0]
		if !ep.pushToVM(s.e, s.completion) {
			break
		}
		ep.stalledToVM = ep.stalledToVM[1:]
		count++
	}

	count += ep.drainNSMQueue(ep.ch.NSMCompletion, ep.ch.VMCompletion, true)
	count += ep.drainNSMQueue(ep.ch.NSMReceive, ep.ch.VMReceive, false)

	if count > 0 || len(ep.stalledToVM) > 0 {
		ce.stats.NqesNSMToVM += uint64(count)
		cost := time.Duration(count) * ce.cfg.NqeCopyCost
		ce.clock.AfterFunc(ep.notify+cost, func() {
			if ep.ch.KickVM != nil {
				ep.ch.KickVM()
			}
			// Draining the NSM-side rings may have unblocked stalled
			// ServiceLib emissions; give it a chance to refill.
			if ep.ch.KickNSM != nil {
				ep.ch.KickNSM()
			}
			if len(ep.stalledToVM) > 0 {
				ep.kickNSM()
			}
		})
	}
}

// drainNSMQueue moves batches from one NSM-side output queue to its
// VM-side peer, translating in place, and returns how many elements
// moved. It stops (leaving work queued or stalled) when the VM-side
// queue fills.
func (ep *enginePair) drainNSMQueue(src, dst nkqueue.Q, completion bool) int {
	ce := ep.engine
	moved := 0
	for len(ep.stalledToVM) == 0 {
		span, n := src.FrontSpan(ce.cfg.Batch)
		if n == 0 {
			break
		}
		handled := 0
		for handled < n && len(ep.stalledToVM) == 0 {
			// Grow a contiguous run of translatable slots.
			runStart := handled
			for handled < n {
				s := nqe.Slot(span[handled*nqe.Size : (handled+1)*nqe.Size])
				if !ep.translateSlotToVM(s) {
					break
				}
				handled++
			}
			if handled > runStart {
				run := span[runStart*nqe.Size : handled*nqe.Size]
				got := dst.PushSpan(run)
				moved += got
				if got < handled-runStart {
					// VM-side queue full: stall the translated remainder.
					for j := runStart + got; j < handled; j++ {
						var e nqe.Element
						e.Decode(span[j*nqe.Size:])
						ep.stalledToVM = append(ep.stalledToVM, stalledOut{e, completion})
					}
					break
				}
			} else if handled < n {
				handled++ // skip the dropped slot
			}
		}
		src.ReleaseSpan(handled)
		if handled < n || len(ep.stalledToVM) > 0 {
			break
		}
	}
	return moved
}

// translateSlotToVM patches one NSM-side element in place for the VM,
// maintaining the fd↔cID mapping table exactly as the per-element path
// did. It reports false when the element must be dropped.
func (ep *enginePair) translateSlotToVM(s nqe.Slot) bool {
	ce := ep.engine
	s.SetVMID(ep.vmID)
	switch s.Op() {
	case nqe.OpSocket:
		// Completion of a socket creation: install the mapping.
		fd, ok := ep.pendingFD[s.Seq()]
		if !ok {
			ce.stats.BadElements++
			return false
		}
		delete(ep.pendingFD, s.Seq())
		ep.fdToCID[fd] = s.CID()
		ep.cidToFD[s.CID()] = fd
		s.SetFD(fd)
	case nqe.OpConnClosed:
		fd, ok := ep.cidToFD[s.CID()]
		if !ok {
			ce.stats.BadElements++
			return false
		}
		s.SetFD(fd)
		// The connection is gone: retire its mapping after a grace
		// period (a straggling OpClose from the guest must still
		// translate), so long-lived pairs do not accumulate entries.
		cid := s.CID()
		ce.clock.AfterFunc(ce.cfg.MappingGrace, func() {
			delete(ep.fdToCID, fd)
			delete(ep.cidToFD, cid)
		})
	case nqe.OpNewConn:
		// A new accepted flow: mint a descriptor for the VM and map it
		// to the NSM's new cID (carried in Arg1).
		lfd, ok := ep.cidToFD[s.CID()]
		if !ok {
			ce.stats.BadElements++
			return false
		}
		newCID := uint32(s.Arg1())
		newFD := ep.nextFD
		ep.nextFD++
		ep.fdToCID[newFD] = newCID
		ep.cidToFD[newCID] = newFD
		s.SetFD(lfd)
		s.SetArg1(uint64(uint32(newFD)))
	default:
		fd, ok := ep.cidToFD[s.CID()]
		if !ok {
			ce.stats.BadElements++
			return false
		}
		s.SetFD(fd)
	}
	ce.stats.Translated++
	if t := s.Trace(); t != 0 {
		ce.cfg.Tracer.Stamp(t, "engine.nsm-pump", 0)
	}
	return true
}

// ResetNSM handles the crash of module nsmID: for every channel the
// module served, in-flight elements are discarded (their huge-page
// chunks returned to the pool the hypervisor owns), socket jobs the
// module will never answer get error completions, every mapped
// connection is reported closed-by-reset to its guest, and the mapping
// tables are cleared. readyAt gates pumping until the replacement
// module has booted; the guest-facing notifications go out immediately.
func (ce *CoreEngine) ResetNSM(nsmID uint32, readyAt sim.Time) {
	for _, ep := range ce.pairs {
		if ep.nsmID == nsmID {
			ep.reset(readyAt)
		}
	}
}

func (ep *enginePair) reset(readyAt sim.Time) {
	ce := ep.engine
	ce.stats.NSMResets++
	ep.readyAt = readyAt

	// The module's queues die with it. NSM-side output queues hold
	// events the module produced before crashing; the NSM job queue
	// holds work it never got to. Both are gone — only the data chunks
	// survive, back into the pool.
	ep.discardQueue(ep.ch.NSMCompletion)
	ep.discardQueue(ep.ch.NSMReceive)
	ep.discardQueue(ep.ch.NSMJob)
	for i := range ep.stalledToNSM {
		ep.freeChunk(&ep.stalledToNSM[i])
	}
	ce.stats.DiscardedElements += uint64(len(ep.stalledToNSM))
	ep.stalledToNSM = nil
	for i := range ep.stalledToVM {
		ep.freeChunk(&ep.stalledToVM[i].e)
	}
	ce.stats.DiscardedElements += uint64(len(ep.stalledToVM))
	ep.stalledToVM = nil

	// Socket jobs already forwarded will never complete: answer them
	// with error completions so the guest's deferred operations fail
	// fast instead of wedging. Sorted for deterministic replay.
	seqs := make([]uint64, 0, len(ep.pendingFD))
	for seq := range ep.pendingFD {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		ep.deliverOrStall(nqe.Element{
			Op: nqe.OpSocket, FD: ep.pendingFD[seq], Seq: seq,
			Source: nqe.FromCore, Status: nqe.StatusConnReset,
			Flags: nqe.FlagCompletion,
		}, true)
	}
	ep.pendingFD = make(map[uint64]int32)

	// Every mapped connection died with the module: tell each guest
	// socket it was reset.
	fds := make([]int32, 0, len(ep.fdToCID))
	for fd := range ep.fdToCID {
		fds = append(fds, fd)
	}
	sort.Slice(fds, func(i, j int) bool { return fds[i] < fds[j] })
	for _, fd := range fds {
		ep.deliverOrStall(nqe.Element{
			Op: nqe.OpConnClosed, FD: fd,
			Source: nqe.FromCore, Status: nqe.StatusConnReset,
		}, false)
	}
	ce.stats.ResetConns += uint64(len(fds))
	ep.fdToCID = make(map[int32]uint32)
	ep.cidToFD = make(map[uint32]int32)

	// Wake the guest to process the notifications now — the boot gate
	// only holds back queue pumping, not crash reporting.
	ep.ch.VMCompletion.Flush()
	ep.ch.VMReceive.Flush()
	ce.clock.AfterFunc(ep.notify, func() {
		if ep.ch.KickVM != nil {
			ep.ch.KickVM()
		}
	})
}

// deliverOrStall pushes a reset notification to the VM, parking it in
// the stalled buffer when the queue is full (pumpNSM retries it).
func (ep *enginePair) deliverOrStall(e nqe.Element, completion bool) {
	if len(ep.stalledToVM) > 0 || !ep.pushToVM(e, completion) {
		ep.stalledToVM = append(ep.stalledToVM, stalledOut{e, completion})
		ep.kickNSM()
	}
}

// discardQueue drains a queue the crashed module owned, returning any
// huge-page data chunks carried by the discarded elements.
func (ep *enginePair) discardQueue(q nkqueue.Q) {
	var e nqe.Element
	for q.Pop(&e) {
		ep.freeChunk(&e)
		ep.engine.stats.DiscardedElements++
	}
}

// freeChunk returns an element's data chunk to the pair's pool. Chunk
// ownership travels with the data direction: a VM-sourced OpSend job
// owns its chunk until the NSM consumes it, and an NSM-sourced
// OpNewData event owns its chunk until the guest copies it out. An
// OpSend *completion* (NSM-sourced) echoes DataLen but its chunk was
// already freed when the module consumed the data.
func (ep *enginePair) freeChunk(e *nqe.Element) {
	owns := (e.Op == nqe.OpSend && e.Source == nqe.FromVM) ||
		(e.Op == nqe.OpNewData && e.Source == nqe.FromNSM)
	if owns && e.DataLen > 0 {
		ep.ch.Pages.Free(shm.Chunk{Offset: e.DataOff})
	}
	// A discarded element's span will never complete; abandon it.
	ep.engine.cfg.Tracer.Drop(e.Trace)
}

func (ep *enginePair) pushToVM(e nqe.Element, completion bool) bool {
	e.VMID = ep.vmID
	if completion {
		return ep.ch.VMCompletion.Push(&e)
	}
	return ep.ch.VMReceive.Push(&e)
}
