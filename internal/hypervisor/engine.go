package hypervisor

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"netkernel/internal/nkchan"
	"netkernel/internal/nkqueue"
	"netkernel/internal/nqe"
	"netkernel/internal/shm"
	"netkernel/internal/sim"
	"netkernel/internal/telemetry"
)

// EngineConfig shapes the CoreEngine's cost model.
type EngineConfig struct {
	// NotifyLatency is the engine's own wakeup latency per batched
	// interrupt (added to the NSM form's doorbell latency). Default
	// 1 µs.
	NotifyLatency time.Duration
	// NqeCopyCost is the per-element queue-to-queue copy cost; §4.2
	// measures ~12 ns on the prototype (and bench_test.go reproduces
	// it on real memory). Default 12 ns.
	NqeCopyCost time.Duration
	// MappingGrace is how long a closed connection's fd↔cID entry
	// survives after its conn-closed event, so a straggling OpClose
	// from the guest still translates. Default 2 s.
	MappingGrace time.Duration
	// Batch caps how many nqes one pump drains per ring span. Larger
	// batches amortize doorbells and atomic publication over more
	// elements (§3.2 "batched interrupts"); the queue itself bounds
	// worst-case latency. Default 64.
	Batch int
	// Tracer, when set, stamps traced elements as they cross the
	// engine ("engine.vm-pump" / "engine.nsm-pump" hops).
	Tracer *telemetry.Tracer
}

func (c *EngineConfig) fillDefaults() {
	if c.NotifyLatency <= 0 {
		c.NotifyLatency = time.Microsecond
	}
	if c.NqeCopyCost <= 0 {
		c.NqeCopyCost = 12 * time.Nanosecond
	}
	if c.MappingGrace <= 0 {
		c.MappingGrace = 2 * time.Second
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
}

// EngineStats counts CoreEngine activity.
type EngineStats struct {
	NqesVMToNSM uint64
	NqesNSMToVM uint64
	Translated  uint64
	BadElements uint64
	// NSM crash handling (ResetNSM).
	NSMResets         uint64
	ResetConns        uint64 // mappings force-closed by a reset
	DiscardedElements uint64 // in-flight nqes dropped by a reset
}

// Mappings returns the total live fd↔cID entries across pairs and
// shards (monitoring; a steadily growing value would indicate a
// leak). Safe to call from any goroutine.
func (ce *CoreEngine) Mappings() int {
	n := 0
	for _, ep := range ce.pairs {
		for _, sh := range ep.shards {
			sh.mu.Lock()
			n += len(sh.fdToCID)
			sh.mu.Unlock()
		}
	}
	return n
}

// CheckFlowAffinity verifies the shard-for-life invariant on the
// mapping table: a descriptor (and its cID) may live on exactly one
// shard of its pair. A violation means an nqe for a live flow crossed
// shards — the bug class sharding must exclude. Safe to call from any
// goroutine.
func (ce *CoreEngine) CheckFlowAffinity() error {
	for _, ep := range ce.pairs {
		fdShard := make(map[int32]int)
		cidShard := make(map[uint32]int)
		for _, sh := range ep.shards {
			sh.mu.Lock()
			for fd := range sh.fdToCID {
				if prev, dup := fdShard[fd]; dup {
					sh.mu.Unlock()
					return fmt.Errorf("vm%d/nsm%d: fd %d mapped on shards %d and %d",
						ep.vmID, ep.nsmID, fd, prev, sh.idx)
				}
				fdShard[fd] = sh.idx
			}
			for cid := range sh.cidToFD {
				if prev, dup := cidShard[cid]; dup {
					sh.mu.Unlock()
					return fmt.Errorf("vm%d/nsm%d: cID %d mapped on shards %d and %d",
						ep.vmID, ep.nsmID, cid, prev, sh.idx)
				}
				cidShard[cid] = sh.idx
			}
			sh.mu.Unlock()
		}
	}
	return nil
}

// CoreEngine is the hypervisor daemon of §3: it copies nqes between VM
// and NSM queues, owns the <VM ID, fd> ↔ <NSM ID, cID> connection
// mapping table, and assigns descriptors for accepted connections.
//
// With a sharded channel the engine runs one logical pump per shard
// (the journal version's multi-queue NSM): each shard owns a slice of
// the mapping table and its own stall buffers, and a flow's elements
// only ever ride the shard its RSS hash pinned it to. All pumps
// execute on the simulation loop; same-instant pumps run in kick
// order, which producers issue in ascending shard order, keeping runs
// pure functions of the seed.
type CoreEngine struct {
	clock sim.Clock
	cfg   EngineConfig
	pairs []*enginePair
	stats EngineStats
}

// NewCoreEngine builds the daemon.
func NewCoreEngine(clock sim.Clock, cfg EngineConfig) *CoreEngine {
	cfg.fillDefaults()
	return &CoreEngine{clock: clock, cfg: cfg}
}

// Stats returns a copy of the counters.
func (ce *CoreEngine) Stats() EngineStats { return ce.stats }

// Pairs returns the number of attached VM↔NSM channels.
func (ce *CoreEngine) Pairs() int { return len(ce.pairs) }

// enginePair is one VM↔NSM channel's state inside the engine. The
// translation state lives in its shards; the pair holds what is
// shard-invariant: identity, latency, the boot gate, and the
// accepted-connection descriptor allocator.
type enginePair struct {
	engine *CoreEngine
	ch     *nkchan.Pair
	vmID   uint32
	nsmID  uint32
	notify time.Duration

	// nextFD allocates descriptors for accepted connections (§3.2:
	// "CoreEngine generates a new socket fd on behalf of the VM").
	// The range is disjoint from GuestLib's own allocations and
	// shared by all shards (only pump code, i.e. the loop goroutine,
	// touches it).
	nextFD int32

	readyAt sim.Time // NSM boot gate
	shards  []*pairShard
}

// pairShard is one shard's pump state: its rings, its slice of the
// fd↔cID mapping table, and its stall buffers. The mutex guards the
// maps for management-plane readers (Mappings, CheckFlowAffinity);
// all mutation happens on the loop goroutine.
type pairShard struct {
	ep    *enginePair
	idx   int
	rings *nkchan.Rings

	mu      sync.Mutex
	fdToCID map[int32]uint32
	cidToFD map[uint32]int32
	// pendingFD correlates OpSocket completions back to the guest fd
	// (by Seq) so the mapping can be installed.
	pendingFD map[uint64]int32

	vmScheduled  bool
	nsmScheduled bool
	// stalled holds elements that could not be pushed to a full queue.
	stalledToNSM []nqe.Element
	stalledToVM  []stalledOut
}

type stalledOut struct {
	e          nqe.Element
	completion bool
}

// Attach registers a channel with the engine. notifyExtra is the NSM
// form's doorbell latency; readyAt gates service until the NSM boots.
// fdBase seeds the accepted-connection descriptor range; a VM attached
// to several NSM replicas gives each a disjoint base.
func (ce *CoreEngine) Attach(ch *nkchan.Pair, vmID, nsmID uint32, notifyExtra time.Duration, readyAt sim.Time, fdBase int32) {
	if fdBase <= 0 {
		fdBase = 1 << 20
	}
	ch.EnsureShards()
	ep := &enginePair{
		engine: ce, ch: ch, vmID: vmID, nsmID: nsmID,
		notify:  ce.cfg.NotifyLatency + notifyExtra,
		nextFD:  fdBase,
		readyAt: readyAt,
	}
	for i := range ch.Shards {
		ep.shards = append(ep.shards, &pairShard{
			ep: ep, idx: i, rings: &ch.Shards[i],
			fdToCID:   make(map[int32]uint32),
			cidToFD:   make(map[uint32]int32),
			pendingFD: make(map[uint64]int32),
		})
	}
	ch.KickEngineVM = func(shard int) { ep.shard(shard).kickVM() }
	ch.KickEngineNSM = func(shard int) { ep.shard(shard).kickNSM() }
	ce.pairs = append(ce.pairs, ep)
}

// shard clamps an index to the attached shard set (bad indices fold to
// shard 0 rather than panicking the loop).
func (ep *enginePair) shard(i int) *pairShard {
	if i < 0 || i >= len(ep.shards) {
		i = 0
	}
	return ep.shards[i]
}

// delay returns how long until the pair may pump: the notify latency,
// stretched while the NSM is still booting.
func (ep *enginePair) delay() time.Duration {
	d := ep.notify
	if now := ep.engine.clock.Now(); now < ep.readyAt {
		if wait := ep.readyAt.Sub(now); wait > d {
			d = wait
		}
	}
	return d
}

func (sh *pairShard) kickVM() {
	if sh.vmScheduled {
		return
	}
	sh.vmScheduled = true
	sh.ep.engine.clock.AfterFunc(sh.ep.delay(), sh.pumpVM)
}

func (sh *pairShard) kickNSM() {
	if sh.nsmScheduled {
		return
	}
	sh.nsmScheduled = true
	sh.ep.engine.clock.AfterFunc(sh.ep.delay(), sh.pumpNSM)
}

// gated defers a pump that fires inside a freeze window (a kick
// scheduled before FreezeNSM/RebindNSM moved readyAt forward): the
// pump re-queues itself for the gate's end instead of running. This is
// what makes the migration stall a hard bound — no element crosses the
// engine while the pair is quiesced.
func (sh *pairShard) gated(rekick func()) bool {
	if sh.ep.engine.clock.Now() >= sh.ep.readyAt {
		return false
	}
	rekick()
	return true
}

// pumpVM drains the shard's VM job queue into its NSM job queue in
// batches, translating <VM ID, fd> to <NSM ID, cID> via the shard's
// slice of the mapping table. Each span pops with one atomic add,
// translates in place (per element — the mapping table must be
// consulted — but touching only the header fields translation needs,
// not a full decode/encode), transfers contiguous runs with PushSpan,
// and rings the NSM doorbell once.
func (sh *pairShard) pumpVM() {
	sh.vmScheduled = false
	if sh.gated(sh.kickVM) {
		return
	}
	ep := sh.ep
	ce := ep.engine
	count := 0

	// Retry previously stalled elements first to preserve order.
	for len(sh.stalledToNSM) > 0 {
		e := sh.stalledToNSM[0]
		if !sh.rings.NSMJob.Push(&e) {
			break
		}
		sh.stalledToNSM = sh.stalledToNSM[1:]
		count++
	}
	for len(sh.stalledToNSM) == 0 {
		span, n := sh.rings.VMJob.FrontSpan(ce.cfg.Batch)
		if n == 0 {
			break
		}
		handled, moved := sh.translateSpanToNSM(span, n)
		count += moved
		sh.rings.VMJob.ReleaseSpan(handled)
		if len(sh.stalledToNSM) > 0 || handled < n {
			break // destination full: the rest waits for the next pump
		}
	}

	if count > 0 || len(sh.stalledToNSM) > 0 {
		ce.stats.NqesVMToNSM += uint64(count)
		cost := time.Duration(count) * ce.cfg.NqeCopyCost
		ce.clock.AfterFunc(ep.notify+cost, func() {
			if ep.ch.KickNSM != nil {
				ep.ch.KickNSM(sh.idx)
			}
			// Stalled elements need another pump once the NSM drains.
			if len(sh.stalledToNSM) > 0 {
				sh.kickVM()
			}
		})
	}
}

// translateSpanToNSM validates and translates one popped span in place,
// pushing contiguous runs of surviving slots into the NSM job queue.
// It returns how many slots of the span were fully handled (pushed,
// dropped, or stalled) and how many were pushed. When the NSM job queue
// fills mid-run, the already-translated remainder of the run is decoded
// into stalledToNSM so nothing is lost or reordered.
func (sh *pairShard) translateSpanToNSM(span []byte, n int) (handled, moved int) {
	ce := sh.ep.engine
	i := 0
	for i < n {
		// Grow a contiguous run of translatable slots.
		runStart := i
		for i < n {
			s := nqe.Slot(span[i*nqe.Size : (i+1)*nqe.Size])
			if s.Validate() != nil || s.VMID() != sh.ep.vmID {
				ce.stats.BadElements++
				break
			}
			if !sh.translateSlotToNSM(s) {
				break
			}
			i++
		}
		if i > runStart {
			run := span[runStart*nqe.Size : i*nqe.Size]
			got := sh.rings.NSMJob.PushSpan(run)
			moved += got
			if got < i-runStart {
				// NSM job queue full: stall the translated remainder.
				for j := runStart + got; j < i; j++ {
					var e nqe.Element
					e.Decode(span[j*nqe.Size:])
					sh.stalledToNSM = append(sh.stalledToNSM, e)
				}
				return i, moved
			}
		}
		if i < n {
			i++ // skip the dropped slot
		}
	}
	return i, moved
}

// translateSlotToNSM patches one job element in place for the NSM side.
// It reports false when the element must be dropped (the VM has already
// been answered with an error completion where appropriate).
func (sh *pairShard) translateSlotToNSM(s nqe.Slot) bool {
	ep := sh.ep
	ce := ep.engine
	s.SetNSMID(ep.nsmID)
	switch s.Op() {
	case nqe.OpSocket:
		// The cID does not exist yet; remember the fd for the
		// completion.
		sh.mu.Lock()
		sh.pendingFD[s.Seq()] = s.FD()
		sh.mu.Unlock()
	default:
		sh.mu.Lock()
		cid, ok := sh.fdToCID[s.FD()]
		sh.mu.Unlock()
		if !ok {
			// Unknown descriptor: answer the VM with an error. The data
			// offset in a rejected element is guest-controlled and cannot
			// be trusted, so the engine must NOT free it — a forged
			// element could otherwise release a chunk owned by a live
			// transfer. Any real chunk behind a bogus send stays charged
			// to the misbehaving guest's own credit.
			ce.stats.BadElements++
			sh.pushToVM(nqe.Element{
				Op: s.Op(), FD: s.FD(), Seq: s.Seq(), VMID: ep.vmID,
				Source: nqe.FromCore, Status: nqe.StatusInvalid,
				Flags: nqe.FlagCompletion,
			}, true)
			return false
		}
		s.SetCID(cid)
	}
	ce.stats.Translated++
	if t := s.Trace(); t != 0 {
		ce.cfg.Tracer.Stamp(t, "engine.vm-pump", 0)
	}
	return true
}

// pumpNSM drains the shard's NSM completion and receive queues toward
// the VM in batches, translating <NSM ID, cID> back to <VM ID, fd> in
// place.
func (sh *pairShard) pumpNSM() {
	sh.nsmScheduled = false
	if sh.gated(sh.kickNSM) {
		return
	}
	ep := sh.ep
	ce := ep.engine
	count := 0

	for len(sh.stalledToVM) > 0 {
		s := sh.stalledToVM[0]
		if !sh.pushToVM(s.e, s.completion) {
			break
		}
		sh.stalledToVM = sh.stalledToVM[1:]
		count++
	}

	count += sh.drainNSMQueue(sh.rings.NSMCompletion, sh.rings.VMCompletion, true)
	count += sh.drainNSMQueue(sh.rings.NSMReceive, sh.rings.VMReceive, false)

	if count > 0 || len(sh.stalledToVM) > 0 {
		ce.stats.NqesNSMToVM += uint64(count)
		cost := time.Duration(count) * ce.cfg.NqeCopyCost
		ce.clock.AfterFunc(ep.notify+cost, func() {
			if ep.ch.KickVM != nil {
				ep.ch.KickVM(sh.idx)
			}
			// Draining the NSM-side rings may have unblocked stalled
			// ServiceLib emissions; give it a chance to refill.
			if ep.ch.KickNSM != nil {
				ep.ch.KickNSM(sh.idx)
			}
			if len(sh.stalledToVM) > 0 {
				sh.kickNSM()
			}
		})
	}
}

// drainNSMQueue moves batches from one NSM-side output queue to its
// VM-side peer, translating in place, and returns how many elements
// moved. It stops (leaving work queued or stalled) when the VM-side
// queue fills.
func (sh *pairShard) drainNSMQueue(src, dst nkqueue.Q, completion bool) int {
	ce := sh.ep.engine
	moved := 0
	for len(sh.stalledToVM) == 0 {
		span, n := src.FrontSpan(ce.cfg.Batch)
		if n == 0 {
			break
		}
		handled := 0
		for handled < n && len(sh.stalledToVM) == 0 {
			// Grow a contiguous run of translatable slots.
			runStart := handled
			for handled < n {
				s := nqe.Slot(span[handled*nqe.Size : (handled+1)*nqe.Size])
				if !sh.translateSlotToVM(s) {
					break
				}
				handled++
			}
			if handled > runStart {
				run := span[runStart*nqe.Size : handled*nqe.Size]
				got := dst.PushSpan(run)
				moved += got
				if got < handled-runStart {
					// VM-side queue full: stall the translated remainder.
					for j := runStart + got; j < handled; j++ {
						var e nqe.Element
						e.Decode(span[j*nqe.Size:])
						sh.stalledToVM = append(sh.stalledToVM, stalledOut{e, completion})
					}
					break
				}
			} else if handled < n {
				handled++ // skip the dropped slot
			}
		}
		src.ReleaseSpan(handled)
		if handled < n || len(sh.stalledToVM) > 0 {
			break
		}
	}
	return moved
}

// lookupListenerFD resolves a listener's cID to its guest fd, checking
// this shard first and then its siblings in ascending order. Accepted
// connections hash to their own shard, which is rarely the listener's:
// the OpNewConn control element is the one place a pump may read
// another shard's table slice (one lock at a time, never nested).
func (sh *pairShard) lookupListenerFD(cid uint32) (int32, bool) {
	sh.mu.Lock()
	fd, ok := sh.cidToFD[cid]
	sh.mu.Unlock()
	if ok {
		return fd, true
	}
	for _, other := range sh.ep.shards {
		if other == sh {
			continue
		}
		other.mu.Lock()
		fd, ok = other.cidToFD[cid]
		other.mu.Unlock()
		if ok {
			return fd, true
		}
	}
	return 0, false
}

// translateSlotToVM patches one NSM-side element in place for the VM,
// maintaining the shard's fd↔cID mapping exactly as the per-element
// path did. It reports false when the element must be dropped.
func (sh *pairShard) translateSlotToVM(s nqe.Slot) bool {
	ep := sh.ep
	ce := ep.engine
	s.SetVMID(ep.vmID)
	switch s.Op() {
	case nqe.OpSocket:
		// Completion of a socket creation: install the mapping.
		sh.mu.Lock()
		fd, ok := sh.pendingFD[s.Seq()]
		if !ok {
			sh.mu.Unlock()
			ce.stats.BadElements++
			return false
		}
		delete(sh.pendingFD, s.Seq())
		sh.fdToCID[fd] = s.CID()
		sh.cidToFD[s.CID()] = fd
		sh.mu.Unlock()
		s.SetFD(fd)
	case nqe.OpConnClosed:
		sh.mu.Lock()
		fd, ok := sh.cidToFD[s.CID()]
		sh.mu.Unlock()
		if !ok {
			ce.stats.BadElements++
			return false
		}
		s.SetFD(fd)
		// The connection is gone: retire its mapping after a grace
		// period (a straggling OpClose from the guest must still
		// translate), so long-lived pairs do not accumulate entries.
		cid := s.CID()
		ce.clock.AfterFunc(ce.cfg.MappingGrace, func() {
			sh.mu.Lock()
			delete(sh.fdToCID, fd)
			delete(sh.cidToFD, cid)
			sh.mu.Unlock()
		})
	case nqe.OpNewConn:
		// A new accepted flow: mint a descriptor for the VM and map it
		// to the NSM's new cID (carried in Arg1). The event rides the
		// NEW flow's shard; the listener usually lives on another, so
		// the lookup may cross shards — the mapping installs here, on
		// the flow's home shard, where every later element will look
		// it up.
		lfd, ok := sh.lookupListenerFD(s.CID())
		if !ok {
			ce.stats.BadElements++
			return false
		}
		newCID := uint32(s.Arg1())
		newFD := ep.nextFD
		ep.nextFD++
		sh.mu.Lock()
		sh.fdToCID[newFD] = newCID
		sh.cidToFD[newCID] = newFD
		sh.mu.Unlock()
		s.SetFD(lfd)
		s.SetArg1(uint64(uint32(newFD)))
	case nqe.OpReady:
		return sh.translateReady(s)
	default:
		sh.mu.Lock()
		fd, ok := sh.cidToFD[s.CID()]
		sh.mu.Unlock()
		if !ok {
			ce.stats.BadElements++
			return false
		}
		s.SetFD(fd)
	}
	ce.stats.Translated++
	if t := s.Trace(); t != 0 {
		ce.cfg.Tracer.Stamp(t, "engine.nsm-pump", 0)
	}
	return true
}

// translateReady rewrites a coalesced readiness event in place: every
// packed cID becomes the guest's fd. A socket whose mapping is already
// retired (closed past the grace period) is compacted out rather than
// failing the whole batch — readiness is a hint, and a straggler entry
// for a dead socket must not suppress wakeups for live ones. An event
// left with no live entries is dropped and its chunk freed here (the
// engine owns an NSM-sourced OpReady chunk exactly like an OpNewData
// chunk).
func (sh *pairShard) translateReady(s nqe.Slot) bool {
	ep := sh.ep
	ce := ep.engine
	if s.DataLen() == 0 {
		// Descriptorless single-socket form: the id rides the CID field.
		// lookupListenerFD's sibling fallback covers entries whose
		// mapping lives on another shard.
		fd, ok := sh.lookupListenerFD(s.CID())
		if !ok {
			return false
		}
		s.SetFD(fd)
		ce.stats.Translated++
		return true
	}
	buf := ep.ch.Pages.Bytes(shm.Chunk{Offset: s.DataOff()})
	n := int(s.Arg0())
	if fit := int(s.DataLen()) / nqe.ReadyEntrySize; n > fit {
		n = fit
	}
	kept := 0
	for i := 0; i < n; i++ {
		cid, mask := nqe.ReadyEntryAt(buf, i)
		fd, ok := sh.lookupListenerFD(cid)
		if !ok {
			continue
		}
		nqe.PutReadyEntry(buf[kept*nqe.ReadyEntrySize:], uint32(fd), mask)
		kept++
	}
	if kept == 0 {
		ep.ch.Pages.Free(shm.Chunk{Offset: s.DataOff()})
		return false
	}
	s.SetArg0(uint64(kept))
	s.SetDataLen(uint32(kept * nqe.ReadyEntrySize))
	ce.stats.Translated++
	return true
}

// FreezeNSM gates pumping on every channel served by nsmID until
// `until`: kicks issued from now on stretch to the gate, and pumps
// already scheduled re-queue themselves when they fire inside the
// window. Unlike ResetNSM nothing is discarded — ring contents, stall
// buffers, mapping tables, and pending socket jobs all survive. This
// is the quiesce step of a live migration: the guest keeps producing
// into its rings and observes only a bounded stall. Returns the number
// of channels frozen.
func (ce *CoreEngine) FreezeNSM(nsmID uint32, until sim.Time) int {
	n := 0
	for _, ep := range ce.pairs {
		if ep.nsmID == nsmID {
			ep.readyAt = until
			n++
		}
	}
	return n
}

// RebindNSM retargets every channel served by oldID onto newID and
// resumes pumping at resumeAt. The fd↔cID tables, the descriptor
// allocator, stall buffers, and queued elements survive verbatim: the
// mapping relation is an invariant of the guest-visible sockets, not
// of the serving module, and the migration protocol reconstructs the
// same cIDs on the successor. This is the commit point of a migration
// — after it, ResetNSM(oldID) no longer matches these channels, so an
// abort must happen before rebinding. Returns the number of channels
// rebound.
func (ce *CoreEngine) RebindNSM(oldID, newID uint32, resumeAt sim.Time) int {
	n := 0
	for _, ep := range ce.pairs {
		if ep.nsmID != oldID {
			continue
		}
		ep.nsmID = newID
		ep.readyAt = resumeAt
		n++
		pair := ep
		// Wake both directions once the gate opens: guest jobs queued
		// during the stall pump to the successor, and the successor's
		// first emissions pump back.
		ce.clock.AfterFunc(pair.delay(), func() {
			for _, sh := range pair.shards {
				sh.kickVM()
				sh.kickNSM()
			}
		})
	}
	return n
}

// ResetNSM handles the crash of module nsmID: for every channel the
// module served, in-flight elements are discarded (their huge-page
// chunks returned to the pool the hypervisor owns), socket jobs the
// module will never answer get error completions, every mapped
// connection is reported closed-by-reset to its guest, and the mapping
// tables are cleared. readyAt gates pumping until the replacement
// module has booted; the guest-facing notifications go out immediately.
func (ce *CoreEngine) ResetNSM(nsmID uint32, readyAt sim.Time) {
	for _, ep := range ce.pairs {
		if ep.nsmID == nsmID {
			ep.reset(readyAt)
		}
	}
}

func (ep *enginePair) reset(readyAt sim.Time) {
	ce := ep.engine
	ce.stats.NSMResets++
	ep.readyAt = readyAt
	// Shards reset in ascending order so crash notifications replay
	// deterministically.
	for _, sh := range ep.shards {
		sh.reset()
	}
	ce.clock.AfterFunc(ep.notify, func() {
		if ep.ch.KickVM != nil {
			for _, sh := range ep.shards {
				ep.ch.KickVM(sh.idx)
			}
		}
	})
}

func (sh *pairShard) reset() {
	ep := sh.ep
	ce := ep.engine

	// The module's queues die with it. NSM-side output queues hold
	// events the module produced before crashing; the NSM job queue
	// holds work it never got to. Both are gone — only the data chunks
	// survive, back into the pool.
	sh.discardQueue(sh.rings.NSMCompletion)
	sh.discardQueue(sh.rings.NSMReceive)
	sh.discardQueue(sh.rings.NSMJob)
	for i := range sh.stalledToNSM {
		sh.freeChunk(&sh.stalledToNSM[i])
	}
	ce.stats.DiscardedElements += uint64(len(sh.stalledToNSM))
	sh.stalledToNSM = nil
	for i := range sh.stalledToVM {
		sh.freeChunk(&sh.stalledToVM[i].e)
	}
	ce.stats.DiscardedElements += uint64(len(sh.stalledToVM))
	sh.stalledToVM = nil

	// Socket jobs already forwarded will never complete: answer them
	// with error completions so the guest's deferred operations fail
	// fast instead of wedging. Sorted for deterministic replay.
	sh.mu.Lock()
	seqs := make([]uint64, 0, len(sh.pendingFD))
	for seq := range sh.pendingFD {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	pending := make(map[uint64]int32, len(sh.pendingFD))
	for seq, fd := range sh.pendingFD {
		pending[seq] = fd
	}
	sh.pendingFD = make(map[uint64]int32)
	// Every mapped connection died with the module: collect the fds to
	// tell each guest socket it was reset.
	fds := make([]int32, 0, len(sh.fdToCID))
	for fd := range sh.fdToCID {
		fds = append(fds, fd)
	}
	sort.Slice(fds, func(i, j int) bool { return fds[i] < fds[j] })
	sh.fdToCID = make(map[int32]uint32)
	sh.cidToFD = make(map[uint32]int32)
	sh.mu.Unlock()

	for _, seq := range seqs {
		sh.deliverOrStall(nqe.Element{
			Op: nqe.OpSocket, FD: pending[seq], Seq: seq,
			Source: nqe.FromCore, Status: nqe.StatusConnReset,
			Flags: nqe.FlagCompletion,
		}, true)
	}
	for _, fd := range fds {
		sh.deliverOrStall(nqe.Element{
			Op: nqe.OpConnClosed, FD: fd,
			Source: nqe.FromCore, Status: nqe.StatusConnReset,
		}, false)
	}
	ce.stats.ResetConns += uint64(len(fds))

	// Wake the guest to process the notifications now — the boot gate
	// only holds back queue pumping, not crash reporting.
	sh.rings.VMCompletion.Flush()
	sh.rings.VMReceive.Flush()
}

// deliverOrStall pushes a reset notification to the VM, parking it in
// the stalled buffer when the queue is full (pumpNSM retries it).
func (sh *pairShard) deliverOrStall(e nqe.Element, completion bool) {
	if len(sh.stalledToVM) > 0 || !sh.pushToVM(e, completion) {
		sh.stalledToVM = append(sh.stalledToVM, stalledOut{e, completion})
		sh.kickNSM()
	}
}

// discardQueue drains a queue the crashed module owned, returning any
// huge-page data chunks carried by the discarded elements.
func (sh *pairShard) discardQueue(q nkqueue.Q) {
	var e nqe.Element
	for q.Pop(&e) {
		sh.freeChunk(&e)
		sh.ep.engine.stats.DiscardedElements++
	}
}

// freeChunk returns an element's data chunk to the pair's pool. Chunk
// ownership travels with the data direction: a VM-sourced OpSend job
// owns its chunk until the NSM consumes it, and an NSM-sourced
// OpNewData event owns its chunk until the guest copies it out. An
// OpSend *completion* (NSM-sourced) echoes DataLen but its chunk was
// already freed when the module consumed the data.
func (sh *pairShard) freeChunk(e *nqe.Element) {
	owns := (e.Op == nqe.OpSend && e.Source == nqe.FromVM) ||
		(e.Op == nqe.OpNewData && e.Source == nqe.FromNSM) ||
		(e.Op == nqe.OpReady && e.Source == nqe.FromNSM)
	if owns && e.DataLen > 0 {
		sh.ep.ch.Pages.Free(shm.Chunk{Offset: e.DataOff})
	}
	// A discarded element's span will never complete; abandon it.
	sh.ep.engine.cfg.Tracer.Drop(e.Trace)
}

func (sh *pairShard) pushToVM(e nqe.Element, completion bool) bool {
	e.VMID = sh.ep.vmID
	if completion {
		return sh.rings.VMCompletion.Push(&e)
	}
	return sh.rings.VMReceive.Push(&e)
}
