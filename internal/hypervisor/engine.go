package hypervisor

import (
	"time"

	"netkernel/internal/nkchan"
	"netkernel/internal/nqe"
	"netkernel/internal/sim"
)

// EngineConfig shapes the CoreEngine's cost model.
type EngineConfig struct {
	// NotifyLatency is the engine's own wakeup latency per batched
	// interrupt (added to the NSM form's doorbell latency). Default
	// 1 µs.
	NotifyLatency time.Duration
	// NqeCopyCost is the per-element queue-to-queue copy cost; §4.2
	// measures ~12 ns on the prototype (and bench_test.go reproduces
	// it on real memory). Default 12 ns.
	NqeCopyCost time.Duration
	// MappingGrace is how long a closed connection's fd↔cID entry
	// survives after its conn-closed event, so a straggling OpClose
	// from the guest still translates. Default 2 s.
	MappingGrace time.Duration
}

func (c *EngineConfig) fillDefaults() {
	if c.NotifyLatency <= 0 {
		c.NotifyLatency = time.Microsecond
	}
	if c.NqeCopyCost <= 0 {
		c.NqeCopyCost = 12 * time.Nanosecond
	}
	if c.MappingGrace <= 0 {
		c.MappingGrace = 2 * time.Second
	}
}

// EngineStats counts CoreEngine activity.
type EngineStats struct {
	NqesVMToNSM uint64
	NqesNSMToVM uint64
	Translated  uint64
	BadElements uint64
}

// Mappings returns the total live fd↔cID entries across pairs
// (monitoring; a steadily growing value would indicate a leak).
func (ce *CoreEngine) Mappings() int {
	n := 0
	for _, ep := range ce.pairs {
		n += len(ep.fdToCID)
	}
	return n
}

// CoreEngine is the hypervisor daemon of §3: it copies nqes between VM
// and NSM queues, owns the <VM ID, fd> ↔ <NSM ID, cID> connection
// mapping table, and assigns descriptors for accepted connections.
type CoreEngine struct {
	clock sim.Clock
	cfg   EngineConfig
	pairs []*enginePair
	stats EngineStats
}

// NewCoreEngine builds the daemon.
func NewCoreEngine(clock sim.Clock, cfg EngineConfig) *CoreEngine {
	cfg.fillDefaults()
	return &CoreEngine{clock: clock, cfg: cfg}
}

// Stats returns a copy of the counters.
func (ce *CoreEngine) Stats() EngineStats { return ce.stats }

// Pairs returns the number of attached VM↔NSM channels.
func (ce *CoreEngine) Pairs() int { return len(ce.pairs) }

// enginePair is one VM↔NSM channel's state inside the engine,
// including its slice of the connection mapping table (Figure 3).
type enginePair struct {
	engine *CoreEngine
	ch     *nkchan.Pair
	vmID   uint32
	nsmID  uint32
	notify time.Duration

	fdToCID map[int32]uint32
	cidToFD map[uint32]int32
	// pendingFD correlates OpSocket completions back to the guest fd
	// (by Seq) so the mapping can be installed.
	pendingFD map[uint64]int32
	// nextFD allocates descriptors for accepted connections (§3.2:
	// "CoreEngine generates a new socket fd on behalf of the VM").
	// The range is disjoint from GuestLib's own allocations.
	nextFD int32

	readyAt      sim.Time // NSM boot gate
	vmScheduled  bool
	nsmScheduled bool
	// stalled holds elements that could not be pushed to a full queue.
	stalledToNSM []nqe.Element
	stalledToVM  []stalledOut
}

type stalledOut struct {
	e          nqe.Element
	completion bool
}

// Attach registers a channel with the engine. notifyExtra is the NSM
// form's doorbell latency; readyAt gates service until the NSM boots.
// fdBase seeds the accepted-connection descriptor range; a VM attached
// to several NSM replicas gives each a disjoint base.
func (ce *CoreEngine) Attach(ch *nkchan.Pair, vmID, nsmID uint32, notifyExtra time.Duration, readyAt sim.Time, fdBase int32) {
	if fdBase <= 0 {
		fdBase = 1 << 20
	}
	ep := &enginePair{
		engine: ce, ch: ch, vmID: vmID, nsmID: nsmID,
		notify:    ce.cfg.NotifyLatency + notifyExtra,
		fdToCID:   make(map[int32]uint32),
		cidToFD:   make(map[uint32]int32),
		pendingFD: make(map[uint64]int32),
		nextFD:    fdBase,
		readyAt:   readyAt,
	}
	ch.KickEngineVM = ep.kickVM
	ch.KickEngineNSM = ep.kickNSM
	ce.pairs = append(ce.pairs, ep)
}

// delay returns how long until the pair may pump: the notify latency,
// stretched while the NSM is still booting.
func (ep *enginePair) delay() time.Duration {
	d := ep.notify
	if now := ep.engine.clock.Now(); now < ep.readyAt {
		if wait := ep.readyAt.Sub(now); wait > d {
			d = wait
		}
	}
	return d
}

func (ep *enginePair) kickVM() {
	if ep.vmScheduled {
		return
	}
	ep.vmScheduled = true
	ep.engine.clock.AfterFunc(ep.delay(), ep.pumpVM)
}

func (ep *enginePair) kickNSM() {
	if ep.nsmScheduled {
		return
	}
	ep.nsmScheduled = true
	ep.engine.clock.AfterFunc(ep.delay(), ep.pumpNSM)
}

// pumpVM drains the VM job queue into the NSM job queue, translating
// <VM ID, fd> to <NSM ID, cID> via the mapping table.
func (ep *enginePair) pumpVM() {
	ep.vmScheduled = false
	ce := ep.engine
	count := 0

	// Retry previously stalled elements first to preserve order.
	for len(ep.stalledToNSM) > 0 {
		e := ep.stalledToNSM[0]
		if !ep.ch.NSMJob.Push(&e) {
			break
		}
		ep.stalledToNSM = ep.stalledToNSM[1:]
		count++
	}
	var e nqe.Element
	for len(ep.stalledToNSM) == 0 && ep.ch.VMJob.Pop(&e) {
		if err := e.Validate(); err != nil || e.VMID != ep.vmID {
			ce.stats.BadElements++
			continue
		}
		if !ep.translateToNSM(&e) {
			continue
		}
		if !ep.ch.NSMJob.Push(&e) {
			ep.stalledToNSM = append(ep.stalledToNSM, e)
			break
		}
		count++
	}

	if count > 0 || len(ep.stalledToNSM) > 0 {
		ce.stats.NqesVMToNSM += uint64(count)
		cost := time.Duration(count) * ce.cfg.NqeCopyCost
		ce.clock.AfterFunc(ep.notify+cost, func() {
			if ep.ch.KickNSM != nil {
				ep.ch.KickNSM()
			}
			// Stalled elements need another pump once the NSM drains.
			if len(ep.stalledToNSM) > 0 {
				ep.kickVM()
			}
		})
	}
}

func (ep *enginePair) translateToNSM(e *nqe.Element) bool {
	ce := ep.engine
	e.NSMID = ep.nsmID
	switch e.Op {
	case nqe.OpSocket:
		// The cID does not exist yet; remember the fd for the
		// completion.
		ep.pendingFD[e.Seq] = e.FD
	default:
		cid, ok := ep.fdToCID[e.FD]
		if !ok {
			// Unknown descriptor: answer the VM with an error.
			ce.stats.BadElements++
			ep.pushToVM(nqe.Element{
				Op: e.Op, FD: e.FD, Seq: e.Seq, VMID: ep.vmID,
				Source: nqe.FromCore, Status: nqe.StatusInvalid,
				Flags: nqe.FlagCompletion,
			}, true)
			return false
		}
		e.CID = cid
	}
	ce.stats.Translated++
	return true
}

// pumpNSM drains the NSM completion and receive queues toward the VM,
// translating <NSM ID, cID> back to <VM ID, fd>.
func (ep *enginePair) pumpNSM() {
	ep.nsmScheduled = false
	ce := ep.engine
	count := 0

	for len(ep.stalledToVM) > 0 {
		s := ep.stalledToVM[0]
		if !ep.pushToVM(s.e, s.completion) {
			break
		}
		ep.stalledToVM = ep.stalledToVM[1:]
		count++
	}

	var e nqe.Element
	for len(ep.stalledToVM) == 0 && ep.ch.NSMCompletion.Pop(&e) {
		if !ep.translateToVM(&e) {
			continue
		}
		if !ep.pushToVM(e, true) {
			ep.stalledToVM = append(ep.stalledToVM, stalledOut{e, true})
			break
		}
		count++
	}
	for len(ep.stalledToVM) == 0 && ep.ch.NSMReceive.Pop(&e) {
		if !ep.translateToVM(&e) {
			continue
		}
		if !ep.pushToVM(e, false) {
			ep.stalledToVM = append(ep.stalledToVM, stalledOut{e, false})
			break
		}
		count++
	}

	if count > 0 || len(ep.stalledToVM) > 0 {
		ce.stats.NqesNSMToVM += uint64(count)
		cost := time.Duration(count) * ce.cfg.NqeCopyCost
		ce.clock.AfterFunc(ep.notify+cost, func() {
			if ep.ch.KickVM != nil {
				ep.ch.KickVM()
			}
			// Draining the NSM-side rings may have unblocked stalled
			// ServiceLib emissions; give it a chance to refill.
			if ep.ch.KickNSM != nil {
				ep.ch.KickNSM()
			}
			if len(ep.stalledToVM) > 0 {
				ep.kickNSM()
			}
		})
	}
}

func (ep *enginePair) pushToVM(e nqe.Element, completion bool) bool {
	e.VMID = ep.vmID
	if completion {
		return ep.ch.VMCompletion.Push(&e)
	}
	return ep.ch.VMReceive.Push(&e)
}

func (ep *enginePair) translateToVM(e *nqe.Element) bool {
	ce := ep.engine
	e.VMID = ep.vmID
	switch e.Op {
	case nqe.OpSocket:
		// Completion of a socket creation: install the mapping.
		fd, ok := ep.pendingFD[e.Seq]
		if !ok {
			ce.stats.BadElements++
			return false
		}
		delete(ep.pendingFD, e.Seq)
		ep.fdToCID[fd] = e.CID
		ep.cidToFD[e.CID] = fd
		e.FD = fd
	case nqe.OpConnClosed:
		fd, ok := ep.cidToFD[e.CID]
		if !ok {
			ce.stats.BadElements++
			return false
		}
		e.FD = fd
		// The connection is gone: retire its mapping after a grace
		// period (a straggling OpClose from the guest must still
		// translate), so long-lived pairs do not accumulate entries.
		cid := e.CID
		ce.clock.AfterFunc(ce.cfg.MappingGrace, func() {
			delete(ep.fdToCID, fd)
			delete(ep.cidToFD, cid)
		})
	case nqe.OpNewConn:
		// A new accepted flow: mint a descriptor for the VM and map it
		// to the NSM's new cID (carried in Arg1).
		lfd, ok := ep.cidToFD[e.CID]
		if !ok {
			ce.stats.BadElements++
			return false
		}
		newCID := uint32(e.Arg1)
		newFD := ep.nextFD
		ep.nextFD++
		ep.fdToCID[newFD] = newCID
		ep.cidToFD[newCID] = newFD
		e.FD = lfd
		e.Arg1 = uint64(uint32(newFD))
	default:
		fd, ok := ep.cidToFD[e.CID]
		if !ok {
			ce.stats.BadElements++
			return false
		}
		e.FD = fd
	}
	ce.stats.Translated++
	return true
}
