package hypervisor

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"netkernel/internal/guestlib"
	"netkernel/internal/sim"
)

// TestAcceptBacklogOverflow pins the SYN handling when a listener's
// backlog fills: with backlog 2 and 8 simultaneous SYNs, the stack
// drops the overflow (stack_tcp.go refuses a SYN while pending +
// handshaking ≥ MaxBacklog) and the clients' SYN retransmissions admit
// them in later rounds — every connection eventually establishes, none
// errors out, and the early-vs-late split shows the drops happened.
func TestAcceptBacklogOverflow(t *testing.T) {
	c := newCluster(t, nil)
	vma, vmb := c.nkPair(t, "cubic", "cubic")

	srv := vmb.Guest
	lfd := srv.Socket(guestlib.Callbacks{})
	srv.SetCallbacks(lfd, guestlib.Callbacks{OnAcceptable: func() {
		for {
			fd, ok := srv.Accept(lfd)
			if !ok {
				return
			}
			srv.SetCallbacks(fd, guestlib.Callbacks{})
		}
	}})
	if err := srv.Listen(lfd, 80, 2); err != nil {
		t.Fatal(err)
	}

	const dialers = 8
	cli := vma.Guest
	established := 0
	failed := 0
	for i := 0; i < dialers; i++ {
		fd := cli.Socket(guestlib.Callbacks{
			OnEstablished: func(err error) {
				if err != nil {
					failed++
					return
				}
				established++
			},
		})
		if err := cli.Connect(fd, ipVMB, 80); err != nil {
			t.Fatal(err)
		}
	}

	// Before the first retransmission timeout (MinRTO 20 ms) only the
	// backlog's worth of handshakes can have completed; the other SYNs
	// were dropped, not queued.
	c.loop.RunFor(15 * time.Millisecond)
	if established > 2 {
		t.Fatalf("%d connections established with backlog 2 before any SYN retry", established)
	}
	early := established

	// Retransmissions admit the rest in later rounds (the SYN RTO
	// starts at 1 s and backs off, so the last of 8 dialers through a
	// backlog-2 listener lands around t=7 s).
	c.loop.RunFor(15 * time.Second)
	if failed != 0 {
		t.Fatalf("%d connections failed outright; overflow must retry, not error", failed)
	}
	if established != dialers {
		t.Fatalf("%d of %d connections established after retries", established, dialers)
	}
	if early == dialers {
		t.Fatal("all connections made it in the first round: backlog never overflowed")
	}
}

// TestAcceptAfterCloseChurn races teardown against accept: clients
// connect and close immediately, while the server application drains
// its accept queue only later — every drained descriptor refers to a
// connection that is already dead. Closing those descriptors must be
// clean: no panic, no leaked connection state, no leaked chunks.
func TestAcceptAfterCloseChurn(t *testing.T) {
	c := newCluster(t, nil)
	vma, vmb := c.nkPair(t, "cubic", "cubic")

	srv, cli := vmb.Guest, vma.Guest
	lfd := srv.Socket(guestlib.Callbacks{})
	// No OnAcceptable: accepts pile up until the timer below drains them.
	if err := srv.Listen(lfd, 80, 64); err != nil {
		t.Fatal(err)
	}

	const dialers = 16
	closed := 0
	for i := 0; i < dialers; i++ {
		var fd int32
		fd = cli.Socket(guestlib.Callbacks{
			OnEstablished: func(err error) {
				if err == nil {
					cli.Close(fd)
				}
			},
			OnClose: func(error) { closed++ },
		})
		if err := cli.Connect(fd, ipVMB, 80); err != nil {
			t.Fatal(err)
		}
	}

	// Let every connection establish, FIN, and land its OpConnClosed
	// before the server application looks at the accept queue.
	drained := 0
	c.loop.AfterFunc(200*time.Millisecond, func() {
		fds := make([]int32, dialers)
		n := srv.AcceptBatch(lfd, fds)
		drained = n
		for _, fd := range fds[:n] {
			srv.Close(fd)
		}
	})
	c.loop.RunFor(2 * time.Second)

	if closed != dialers {
		t.Fatalf("%d of %d client connections closed", closed, dialers)
	}
	if drained != dialers {
		t.Fatalf("server drained %d of %d accepted connections", drained, dialers)
	}
	// Quiesce TIME_WAIT (2×MSL = 100 ms) and the unmap grace; nothing
	// may leak.
	c.loop.RunFor(3 * time.Second)
	if n := vma.NSM.Stack.ConnCount(); n != 0 {
		t.Errorf("client NSM leaked %d connections", n)
	}
	if n := vmb.NSM.Stack.ConnCount(); n != 0 {
		t.Errorf("server NSM leaked %d connections", n)
	}
	for _, vm := range []*VM{vma, vmb} {
		for _, pair := range vm.Guest.Pairs() {
			if n := pair.Pages.LiveRefs(); n != 0 {
				t.Errorf("%s channel leaked %d chunk refs", vm.Name, n)
			}
		}
	}
}

// TestAcceptBatchListenerCloseMidBatch closes the listener while its
// accept queue is still half drained: the first AcceptBatch keeps its
// connections, the close orphans the rest, and the orphans unwind —
// their clients see a close instead of a connection idling forever
// behind a descriptor nobody holds.
func TestAcceptBatchListenerCloseMidBatch(t *testing.T) {
	c := newCluster(t, nil)
	vma, vmb := c.nkPair(t, "cubic", "cubic")

	srv, cli := vmb.Guest, vma.Guest
	lfd := srv.Socket(guestlib.Callbacks{})
	if err := srv.Listen(lfd, 80, 64); err != nil {
		t.Fatal(err)
	}

	const dialers = 12
	closedByPeer := 0
	established := 0
	for i := 0; i < dialers; i++ {
		var fd int32
		fd = cli.Socket(guestlib.Callbacks{
			OnEstablished: func(err error) {
				if err == nil {
					established++
				}
			},
			OnClose: func(error) {
				closedByPeer++
				cli.Close(fd) // answer the server's FIN so both sides drain
			},
		})
		if err := cli.Connect(fd, ipVMB, 80); err != nil {
			t.Fatal(err)
		}
	}

	kept := make([]int32, 4)
	var keptN int
	c.loop.AfterFunc(200*time.Millisecond, func() {
		keptN = srv.AcceptBatch(lfd, kept)
		srv.Close(lfd) // orphans the rest of the queue
	})
	c.loop.RunFor(2 * time.Second)

	if established != dialers {
		t.Fatalf("%d of %d dialers established", established, dialers)
	}
	if keptN != len(kept) {
		t.Fatalf("first batch drained %d, want %d", keptN, len(kept))
	}
	// The orphaned (dialers-keptN) connections were closed by the
	// listener teardown; their clients saw it.
	c.loop.RunFor(time.Second)
	if want := dialers - keptN; closedByPeer < want {
		t.Fatalf("%d clients saw a close, want ≥%d orphans", closedByPeer, want)
	}
	// The kept descriptors still work: server can close them cleanly.
	for _, fd := range kept[:keptN] {
		srv.Close(fd)
	}
	c.loop.RunFor(3 * time.Second)
	if n := vmb.NSM.Stack.ConnCount(); n != 0 {
		t.Errorf("server NSM leaked %d connections", n)
	}
}

// pollerReadyTrace runs a seeded bursty scenario against a
// poller-driven server and returns the byte-exact sequence of ready
// events the server observed: virtual timestamp, descriptor, and mask
// of every PollEvent, in drain order.
func pollerReadyTrace(t *testing.T, seed uint64) string {
	t.Helper()
	c := newCluster(t, nil)
	vma, vmb := c.nkPair(t, "cubic", "cubic")
	srv, cli := vmb.Guest, vma.Guest

	var log strings.Builder
	buf := make([]byte, 4096)
	batch := make([]int32, 16)
	events := make([]guestlib.PollEvent, 32)
	var p *guestlib.Poller
	var lfd int32
	p = srv.NewPoller(func() {
		for {
			n := p.Wait(events)
			if n == 0 {
				return
			}
			for _, ev := range events[:n] {
				fmt.Fprintf(&log, "%d fd=%d ev=%x\n", c.loop.Now(), ev.FD, ev.Events)
				if ev.FD == lfd {
					for {
						m := srv.AcceptBatch(lfd, batch)
						for _, fd := range batch[:m] {
							if err := p.Add(fd); err != nil {
								t.Errorf("poller add: %v", err)
							}
						}
						if m < len(batch) {
							break
						}
					}
					continue
				}
				for {
					n, eof := srv.Recv(ev.FD, buf)
					if n == 0 {
						if eof {
							srv.Close(ev.FD)
						}
						break
					}
				}
			}
		}
	})
	lfd = srv.Socket(guestlib.Callbacks{})
	if err := srv.Listen(lfd, 80, 64); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(lfd); err != nil {
		t.Fatal(err)
	}

	// 24 connections, then seeded bursts of small sends across them.
	const conns = 24
	fds := make([]int32, 0, conns)
	established := 0
	for i := 0; i < conns; i++ {
		fd := cli.Socket(guestlib.Callbacks{
			OnEstablished: func(err error) {
				if err == nil {
					established++
				}
			},
		})
		if err := cli.Connect(fd, ipVMB, 80); err != nil {
			t.Fatal(err)
		}
		fds = append(fds, fd)
	}
	c.loop.RunFor(500 * time.Millisecond)
	if established != conns {
		t.Fatalf("%d of %d connections established", established, conns)
	}

	rng := sim.NewRNG(seed)
	msg := []byte("ready-determinism")
	for b := 0; b < 50; b++ {
		c.loop.AfterFunc(time.Duration(b)*200*time.Microsecond, func() {
			for k := 0; k < 6; k++ {
				cli.Send(fds[rng.Intn(len(fds))], msg)
			}
		})
	}
	c.loop.RunFor(100 * time.Millisecond)
	return log.String()
}

// TestPollerDeterminism is the readiness counterpart of
// chaostest.TestTraceDeterminism: two runs of the same seed must
// deliver byte-identical ready sequences — same descriptors, same
// coalesced masks, same virtual-time instants, same order. Anything
// nondeterministic in the coalescing path (map-ordered flushes, shard
// races, timer jitter) breaks this immediately.
func TestPollerDeterminism(t *testing.T) {
	a := pollerReadyTrace(t, 7777)
	b := pollerReadyTrace(t, 7777)
	if a != b {
		t.Fatalf("two runs with the same seed diverged:\n--- run A ---\n%s\n--- run B ---\n%s", a, b)
	}
	if len(a) == 0 {
		t.Fatal("no ready events observed")
	}
	// The sequence must show coalescing: fewer OnReady-batch lines than
	// the 300 messages sent is implied by masks ORing; at minimum the
	// accept path and the data path both appear.
	if !strings.Contains(a, "ev=4") {
		t.Error("no acceptable-readiness event in the trace")
	}
	if !strings.Contains(a, "ev=1") {
		t.Error("no readable-readiness event in the trace")
	}
}
