package hypervisor

// Unit tests for the CoreEngine's batched pump machinery, driving the
// queue pair directly (no GuestLib/ServiceLib) so backpressure and
// mid-span drops can be staged precisely.

import (
	"testing"
	"time"

	"netkernel/internal/nkchan"
	"netkernel/internal/nkqueue"
	"netkernel/internal/nqe"
	"netkernel/internal/sim"
)

// asymPair builds a channel whose VM-side and NSM-side rings differ in
// size, so a batch popped from one side can only half-fit in the other.
func asymPair(t *testing.T, vmSlots, nsmSlots int) *nkchan.Pair {
	t.Helper()
	mk := func(slots int) nkqueue.Q {
		q, err := nkqueue.NewQueue(nkqueue.Config{Slots: slots})
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	return &nkchan.Pair{
		VMJob: mk(vmSlots), VMCompletion: mk(vmSlots), VMReceive: mk(vmSlots),
		NSMJob: mk(nsmSlots), NSMCompletion: mk(nsmSlots), NSMReceive: mk(nsmSlots),
	}
}

// installMapping round-trips an OpSocket job so the engine's fd↔cID
// table maps fd to cid.
func installMapping(t *testing.T, loop *sim.Loop, ch *nkchan.Pair, vmID uint32, fd int32, cid uint32) {
	t.Helper()
	sock := nqe.Element{Op: nqe.OpSocket, Source: nqe.FromVM, VMID: vmID, FD: fd, Seq: uint64(fd)}
	if !ch.VMJob.Push(&sock) {
		t.Fatal("push socket job")
	}
	ch.KickEngineVM(0)
	loop.RunFor(10 * time.Millisecond)
	var got nqe.Element
	if !ch.NSMJob.Pop(&got) || got.Op != nqe.OpSocket {
		t.Fatal("socket job did not reach the NSM job queue")
	}
	comp := nqe.Element{Op: nqe.OpSocket, Source: nqe.FromNSM, CID: cid, Seq: got.Seq}
	if !ch.NSMCompletion.Push(&comp) {
		t.Fatal("push socket completion")
	}
	ch.KickEngineNSM(0)
	loop.RunFor(10 * time.Millisecond)
	if !ch.VMCompletion.Pop(&got) || got.FD != fd {
		t.Fatalf("socket completion came back as %+v", got)
	}
}

// A 20-element batch aimed at an 8-slot NSM job ring: the overflow must
// stall inside the engine and drain later, in order, with nothing lost.
func TestEngineBatchHalfFitsStallsAndDrains(t *testing.T) {
	loop := sim.NewLoop()
	ch := asymPair(t, 64, 8)
	ce := NewCoreEngine(loop, EngineConfig{})
	ce.Attach(ch, 1, 2, 0, 0, 0)
	installMapping(t, loop, ch, 1, 5, 77)

	const total = 20
	for i := 0; i < total; i++ {
		e := nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM, VMID: 1, FD: 5, Seq: uint64(100 + i)}
		if !ch.VMJob.Push(&e) {
			t.Fatalf("push %d failed", i)
		}
	}
	ch.KickEngineVM(0)

	var got []nqe.Element
	for drained := 0; drained < 10 && len(got) < total; drained++ {
		loop.RunFor(10 * time.Millisecond)
		var e nqe.Element
		for ch.NSMJob.Pop(&e) {
			got = append(got, e)
		}
		ch.KickEngineVM(0) // NSM ring drained; let the engine retry stalls
	}
	if len(got) != total {
		t.Fatalf("got %d of %d elements through the 8-slot ring", len(got), total)
	}
	for i, e := range got {
		if e.Seq != uint64(100+i) {
			t.Fatalf("element %d arrived as Seq=%d: batch stall reordered", i, e.Seq)
		}
		if e.CID != 77 || e.NSMID != 2 {
			t.Fatalf("element %d not translated: %+v", i, e)
		}
	}
}

// A spoofed element in the middle of a span must be dropped without
// taking its neighbors with it.
func TestEngineBatchDropsBadElementMidSpan(t *testing.T) {
	loop := sim.NewLoop()
	ch := asymPair(t, 64, 64)
	ce := NewCoreEngine(loop, EngineConfig{})
	ce.Attach(ch, 1, 2, 0, 0, 0)
	installMapping(t, loop, ch, 1, 5, 77)

	good := nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM, VMID: 1, FD: 5, Seq: 201}
	spoofed := nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM, VMID: 9, FD: 5, Seq: 202}
	good2 := good
	good2.Seq = 203
	ch.VMJob.Push(&good)
	ch.VMJob.Push(&spoofed)
	ch.VMJob.Push(&good2)
	before := ce.Stats().BadElements
	ch.KickEngineVM(0)
	loop.RunFor(10 * time.Millisecond)

	var e nqe.Element
	var seqs []uint64
	for ch.NSMJob.Pop(&e) {
		seqs = append(seqs, e.Seq)
	}
	if len(seqs) != 2 || seqs[0] != 201 || seqs[1] != 203 {
		t.Fatalf("survivors = %v, want [201 203]", seqs)
	}
	if ce.Stats().BadElements != before+1 {
		t.Fatalf("BadElements = %d, want %d", ce.Stats().BadElements, before+1)
	}
}

// An unmapped descriptor mid-span is answered with an error completion
// while its neighbors keep flowing.
func TestEngineBatchUnknownFDMidSpan(t *testing.T) {
	loop := sim.NewLoop()
	ch := asymPair(t, 64, 64)
	ce := NewCoreEngine(loop, EngineConfig{})
	ce.Attach(ch, 1, 2, 0, 0, 0)
	installMapping(t, loop, ch, 1, 5, 77)

	a := nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM, VMID: 1, FD: 5, Seq: 301}
	bogus := nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM, VMID: 1, FD: 31337, Seq: 302}
	b := a
	b.Seq = 303
	ch.VMJob.Push(&a)
	ch.VMJob.Push(&bogus)
	ch.VMJob.Push(&b)
	ch.KickEngineVM(0)
	loop.RunFor(10 * time.Millisecond)

	var e nqe.Element
	var seqs []uint64
	for ch.NSMJob.Pop(&e) {
		seqs = append(seqs, e.Seq)
	}
	if len(seqs) != 2 || seqs[0] != 301 || seqs[1] != 303 {
		t.Fatalf("survivors = %v, want [301 303]", seqs)
	}
	if !ch.VMCompletion.Pop(&e) || e.Seq != 302 || e.Status != nqe.StatusInvalid {
		t.Fatalf("unmapped fd not answered with an error completion: %+v", e)
	}
}

// The NSM→VM direction under backpressure: a receive-queue flood into a
// small VM receive ring must stall and drain without loss or reorder.
func TestEngineBatchNSMToVMBackpressure(t *testing.T) {
	loop := sim.NewLoop()
	ch := asymPair(t, 8, 64)
	ce := NewCoreEngine(loop, EngineConfig{})
	ce.Attach(ch, 1, 2, 0, 0, 0)
	installMapping(t, loop, ch, 1, 5, 77)

	const total = 20
	for i := 0; i < total; i++ {
		e := nqe.Element{Op: nqe.OpNewData, Source: nqe.FromNSM, NSMID: 2, CID: 77, Seq: uint64(400 + i)}
		if !ch.NSMReceive.Push(&e) {
			t.Fatalf("push event %d failed", i)
		}
	}
	ch.KickEngineNSM(0)

	var got []nqe.Element
	for drained := 0; drained < 10 && len(got) < total; drained++ {
		loop.RunFor(10 * time.Millisecond)
		var e nqe.Element
		for ch.VMReceive.Pop(&e) {
			got = append(got, e)
		}
		ch.KickEngineNSM(0)
	}
	if len(got) != total {
		t.Fatalf("got %d of %d events through the 8-slot ring", len(got), total)
	}
	for i, e := range got {
		if e.Seq != uint64(400+i) || e.FD != 5 || e.VMID != 1 {
			t.Fatalf("event %d arrived as %+v", i, e)
		}
	}
}
