package hypervisor

import (
	"testing"
	"time"

	"netkernel/internal/guestlib"
)

// TestScaleOutReplicas verifies §2.1 scale-out: a VM attached to
// several NSM replicas spreads its sockets across them and exceeds the
// single-module per-core ceiling.
func TestScaleOutReplicas(t *testing.T) {
	c := newCluster(t, nil)
	vma, err := c.h1.CreateVM(VMConfig{
		Name: "scaled", IP: ipVMA, Mode: ModeNetKernel,
		NSM: NSMSpec{Form: FormModule, CC: "cubic", Replicas: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if vma.Guest.Replicas() != 3 || len(vma.NSMs) != 3 || c.h1.NSMs() != 3 {
		t.Fatalf("replicas: guest=%d vm=%d host=%d", vma.Guest.Replicas(), len(vma.NSMs), c.h1.NSMs())
	}
	// Distinct network identities per replica.
	seen := map[string]bool{}
	for _, n := range vma.NSMs {
		ip := n.Stack.Interface().IP.String()
		if seen[ip] {
			t.Fatalf("replicas share IP %s", ip)
		}
		seen[ip] = true
	}

	vmb, _ := c.h2.CreateVM(VMConfig{Name: "sink", IP: ipVMB, Mode: ModeNetKernel, NSM: moduleNSM("cubic")})
	c.loop.RunFor(50 * time.Millisecond)

	// Three connections land on three different replica stacks.
	lfd := vmb.Guest.Socket(guestlib.Callbacks{})
	vmb.Guest.Listen(lfd, 80, 16)
	established := 0
	for i := 0; i < 3; i++ {
		fd := vma.Guest.Socket(guestlib.Callbacks{
			OnEstablished: func(err error) {
				if err == nil {
					established++
				}
			},
		})
		vma.Guest.Connect(fd, ipVMB, 80)
	}
	c.loop.RunFor(500 * time.Millisecond)
	if established != 3 {
		t.Fatalf("established %d of 3 across replicas", established)
	}
	for i, n := range vma.NSMs {
		if n.Stack.ConnCount() != 1 {
			t.Fatalf("replica %d holds %d conns, want 1 (round-robin spread)", i, n.Stack.ConnCount())
		}
	}

	// Data flows across the replicas too.
	got := bulkThrough(c, vma, vmb, 9000, 1<<20, time.Second)
	if got != 1<<20 {
		t.Fatalf("scale-out transfer moved %d of %d", got, 1<<20)
	}
}

// TestScaleOutAcceptedFDsDisjoint guards the per-replica descriptor
// ranges: accepted-connection fds from different replicas must not
// collide.
func TestScaleOutAcceptedFDsDisjoint(t *testing.T) {
	c := newCluster(t, nil)
	vma, _ := c.h1.CreateVM(VMConfig{Name: "a", IP: ipVMA, Mode: ModeNetKernel,
		NSM: NSMSpec{Form: FormModule, CC: "cubic", Replicas: 2}})
	vmb, _ := c.h2.CreateVM(VMConfig{Name: "b", IP: ipVMB, Mode: ModeNetKernel, NSM: moduleNSM("cubic")})
	c.loop.RunFor(50 * time.Millisecond)

	// Listeners on both replicas of vma (sockets round-robin), then
	// connections from vmb to each replica's address.
	fds := map[int32]bool{}
	for r := 0; r < 2; r++ {
		lfd := vma.Guest.Socket(guestlib.Callbacks{})

		vma.Guest.SetCallbacks(lfd, guestlib.Callbacks{OnAcceptable: func() {
			fd, ok := vma.Guest.Accept(lfd)
			if ok {
				if fds[fd] {
					t.Errorf("accepted fd %d collides across replicas", fd)
				}
				fds[fd] = true
			}
		}})
		vma.Guest.Listen(lfd, 80, 8)
	}
	for r := 0; r < 2; r++ {
		ip := vma.NSMs[r].Stack.Interface().IP
		fd := vmb.Guest.Socket(guestlib.Callbacks{})
		vmb.Guest.Connect(fd, ip, 80)
	}
	c.loop.RunFor(500 * time.Millisecond)
	if len(fds) != 2 {
		t.Fatalf("accepted %d connections, want 2", len(fds))
	}
}
