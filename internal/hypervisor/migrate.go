package hypervisor

import (
	"fmt"
	"sort"
	"time"

	"netkernel/internal/proto/tcp"
	"netkernel/internal/servicelib"
	"netkernel/internal/sim"
	"netkernel/internal/stack"
)

// This file implements live NSM migration (DESIGN.md §12): replacing
// the module serving a set of tenant VMs with a freshly booted one —
// a different form, different congestion control, or simply a newer
// build — without losing a single connection. The cutover is atomic in
// virtual time: connection state serializes out of the old stack and
// revives on the new one within one event, the module's network
// identity (MAC, IP, fabric port) transfers to the successor, and the
// engine gates the tenants' channels for a bounded stall before
// resuming. GuestLib never notices; the guest's descriptors, credits,
// and in-flight operations all survive.

// MigrateOptions tunes Host.MigrateNSM.
type MigrateOptions struct {
	// StallBase and StallPerConn model the guest-visible cutover stall:
	// the engine gates the migrating tenants' channels for
	// StallBase + conns·StallPerConn of virtual time, the serialization
	// cost the prototype would pay. Defaults 200 µs and 2 µs.
	StallBase    time.Duration
	StallPerConn time.Duration
	// FailRestoreAfter, when > 0, injects a restore fault once that many
	// connections have been revived on the successor, forcing the abort
	// path: the migration falls back to crash-reboot semantics for the
	// original module (testing).
	FailRestoreAfter int
}

func (o *MigrateOptions) fillDefaults() {
	if o.StallBase <= 0 {
		o.StallBase = 200 * time.Microsecond
	}
	if o.StallPerConn <= 0 {
		o.StallPerConn = 2 * time.Microsecond
	}
}

// Migration is the record of one NSM migration.
type Migration struct {
	From, To *NSM
	// StartedAt is when MigrateNSM was called (successor boot begins);
	// CutoverAt is when state moved; ResumeAt is when the engine gate
	// reopened the tenants' channels.
	StartedAt sim.Time
	CutoverAt sim.Time
	ResumeAt  sim.Time
	// VMs and Conns count what moved. Stall is the guest-visible pause.
	VMs   int
	Conns int
	Stall time.Duration
	// Aborted reports the fallback to crash semantics; Err is why.
	Aborted bool
	Err     error
}

// MigrateNSM live-migrates every tenant of old onto a freshly booted
// module built from spec (spec.CC "" keeps the old module's congestion
// control; a different CC hot-swaps every migrated flow). The successor
// boots detached — no network identity — and the cutover runs when its
// boot time elapses: connections serialize, the donor's identity
// transfers, and the tenants resume after a bounded stall. done, if
// non-nil, fires when the cutover (or its abort) completes.
//
// The returned Migration is live: its cutover fields fill in when the
// cutover runs.
func (h *Host) MigrateNSM(old *NSM, spec NSMSpec, opts MigrateOptions, done func(*Migration)) (*Migration, error) {
	if old == nil || old.Stack == nil || old.migratedTo != nil {
		return nil, fmt.Errorf("hypervisor: migration source is not a live module")
	}
	if _, ok := h.nsms[old.ID]; !ok {
		return nil, fmt.Errorf("hypervisor: nsm%d is not on this host", old.ID)
	}
	if spec.ShareWith != nil || spec.Replicas > 1 {
		return nil, fmt.Errorf("hypervisor: migration target must be a single fresh module")
	}
	if spec.CC == "" {
		spec.CC = old.CC
	}
	opts.fillDefaults()
	next := h.bootDetachedNSM(spec)
	m := &Migration{
		From: old, To: next,
		StartedAt: h.clock.Now(),
		VMs:       len(old.Services),
	}
	h.clock.AfterFunc(next.Profile.BootTime, func() { h.cutover(old, next, opts, m, done) })
	return m, nil
}

// cutover is the atomic handoff, run once the successor has booted.
func (h *Host) cutover(old, next *NSM, opts MigrateOptions, m *Migration, done func(*Migration)) {
	now := h.clock.Now()
	m.CutoverAt = now

	// The successor adopts the donor's network identity first: restored
	// connections carry the donor's IP, and the stack refuses to revive
	// a connection whose local address it does not own. From here frames
	// for the module deliver to the successor's stack — which drops them
	// demuxless until the restores below land, all within this event.
	old.migratedTo = next
	next.attach = old.attach
	next.attach(next.Stack)

	conns := 0
	var err error
	for _, svc := range old.Services {
		fail := 0
		if opts.FailRestoreAfter > 0 {
			fail = opts.FailRestoreAfter - conns
			if fail <= 0 {
				err = fmt.Errorf("hypervisor: injected migration fault after %d conns", conns)
				break
			}
		}
		var n int
		n, err = svc.Migrate(next.Stack, next.ID, next.CC, servicelib.MigrateOpts{FailRestoreAfter: fail})
		conns += n
		if err != nil {
			break
		}
	}
	if err == nil {
		// What remains in the donor's demux is owned by no pump and no
		// backlog: mid-handshake embryos and TIME_WAIT corpses. TIME_WAIT
		// moves — it self-expires on the successor and keeps protecting
		// its port from stale segments across the handoff (the port
		// recycling model depends on it). Anything else is dropped: the
		// peer's SYN retransmit re-establishes against the successor's
		// listener, crash semantics for state no guest ever saw. Unowned
		// non-expiring states must NOT revive — an orphaned ESTABLISHED
		// conn would wedge in CLOSE_WAIT forever.
		for _, snap := range old.Stack.DrainSnapshots() {
			if snap.State != tcp.StateTimeWait {
				continue
			}
			if _, rerr := next.Stack.RestoreConn(snap, stack.SocketOptions{}); rerr == nil {
				conns++
			}
		}
	}

	if err != nil {
		m.Aborted, m.Err = true, err
		h.abortMigration(old, next)
		if done != nil {
			done(m)
		}
		return
	}

	// The donor stack is empty of connections now; Kill clears its
	// listeners and UDP demux and marks it dead for any straggler frame
	// that races the attachment swap.
	old.Stack.Kill()

	// Commit: the engine retargets the tenants' channels onto the
	// successor and reopens them when the modeled stall elapses. After
	// this point an abort is impossible — ResetNSM(old.ID) would match
	// nothing.
	stall := opts.StallBase + time.Duration(conns)*opts.StallPerConn
	m.Conns, m.Stall = conns, stall
	m.ResumeAt = now.Add(stall)
	h.Engine.RebindNSM(old.ID, next.ID, m.ResumeAt)

	// Bookkeeping: tenants and their pumps belong to the successor; the
	// donor is decommissioned.
	// The donor keeps its dead stack (a stale NSM pointer held by a
	// meter or report samples zeros instead of panicking), but loses its
	// pumps and its host registration.
	next.Services = append(next.Services, old.Services...)
	next.Restarts = old.Restarts
	old.Services = nil
	delete(h.nsms, old.ID)
	ids := make([]uint32, 0, len(h.vms))
	for id := range h.vms {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		vm := h.vms[id]
		for i, n := range vm.NSMs {
			if n == old {
				vm.NSMs[i] = next
			}
		}
		if vm.NSM == old {
			vm.NSM = next
		}
	}
	if done != nil {
		done(m)
	}
}

// abortMigration falls back to crash semantics when the successor
// fails mid-restore: the guest sees every connection reset — exactly a
// module crash — and the original module reboots on its own identity.
//
// Ordering is load-bearing. The pumps crash FIRST: Crash frees each
// queued send chunk and open receive chunk exactly once and empties the
// connection maps, so when the two stack Kills fire teardown callbacks
// into the pumps they find nothing and free nothing — the double-free
// a naive kill-then-crash order would hit. The successor's stack dies
// before the donor's reboot so its half-restored connections never
// transmit.
func (h *Host) abortMigration(old, next *NSM) {
	for _, svc := range old.Services {
		svc.Crash()
	}
	next.Stack.Kill()
	delete(h.nsms, next.ID)
	// Undo the identity transfer: the donor's attachment must deliver to
	// its own rebooted stack again.
	old.migratedTo = nil
	next.attach = nil
	// Standard crash-reboot of the original module (PR 2 semantics):
	// ResetNSM discards in-flight channel work and tells each guest its
	// connections reset; the pumps rebind to a fresh stack after the
	// form's boot time. Crash above is idempotent, so RestartNSM calling
	// it again is harmless.
	h.RestartNSM(old)
}
