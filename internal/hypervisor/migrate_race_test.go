package hypervisor

import (
	"sync"
	"testing"
	"time"

	"netkernel/internal/guestlib"
)

// TestMigrateConcurrentWithChurn extends the sharded-churn -race gate
// across a live migration: while the event loop churns connections of
// one tenant (vma→vmb echo-close respawn across a 4-shard datapath),
// the NSM serving vmb — shared with a second tenant vmc holding
// long-lived connections — is live-migrated mid-churn, serializing
// both tenants' connection state while the shard pumps stay busy. A
// wall-clock monitor goroutine concurrently hammers every
// cross-goroutine reader that must stay lock-correct through the
// freeze/serialize/rebind/resume sequence: the engine's per-shard
// fd↔cID mappings and flow-affinity checker, the ServiceLib stats
// surfaces, and the huge-page pool counters. Any unsynchronized read
// in the shard plumbing or the migration path fails under `go test
// -race`.
func TestMigrateConcurrentWithChurn(t *testing.T) {
	c := newCluster(t, func(cfg *HostConfig) { cfg.Shards = 4 })
	vma, vmb := c.nkPair(t, "cubic", "cubic")

	// vmc multiplexes onto vmb's NSM (sharing its network identity) and
	// serves a second port, so the migration moves two pumps at once.
	vmc, err := c.h2.CreateVM(VMConfig{
		Name: "vmc", IP: ipVMB, Mode: ModeNetKernel,
		NSM: NSMSpec{Form: FormModule, CC: "cubic", ShareWith: vmb.NSM},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.loop.RunFor(10 * time.Millisecond)

	// Echo-close churn server on vmb (port 80), long-lived echo on vmc
	// (port 81).
	srv := vmb.Guest
	lfd := srv.Socket(guestlib.Callbacks{})
	srv.SetCallbacks(lfd, guestlib.Callbacks{OnAcceptable: func() {
		for {
			fd, ok := srv.Accept(lfd)
			if !ok {
				return
			}
			buf := make([]byte, 4096)
			srv.SetCallbacks(fd, guestlib.Callbacks{OnReadable: func() {
				n, _ := srv.Recv(fd, buf)
				if n > 0 {
					srv.Send(fd, buf[:n])
					srv.Close(fd)
				}
			}})
		}
	}})
	if err := srv.Listen(lfd, 80, 64); err != nil {
		t.Fatal(err)
	}
	startEcho(t, vmc.Guest, 81)

	// Churn client: 16 slots, each closed connection respawns.
	const slots = 16
	cli := vma.Guest
	completed := 0
	var spawn func()
	spawn = func() {
		var fd int32
		fd = cli.Socket(guestlib.Callbacks{
			OnEstablished: func(err error) {
				if err != nil {
					return
				}
				cli.Send(fd, []byte("ping"))
			},
			OnReadable: func() {
				buf := make([]byte, 64)
				_, eof := cli.Recv(fd, buf)
				if eof {
					cli.Close(fd)
				}
			},
			OnClose: func(error) {
				completed++
				spawn()
			},
		})
		cli.Connect(fd, ipVMB, 80)
	}
	for i := 0; i < slots; i++ {
		spawn()
	}

	// Long-lived tenant connections to vmc that must survive the
	// migration: periodic pings, echoes collected.
	type longConn struct {
		fd       int32
		echoed   int
		closeErr error
	}
	var longs []*longConn
	for i := 0; i < 4; i++ {
		lc := &longConn{closeErr: errSentinel}
		lc.fd = cli.Socket(guestlib.Callbacks{
			OnReadable: func() {
				buf := make([]byte, 4096)
				for {
					n, _ := cli.Recv(lc.fd, buf)
					if n == 0 {
						return
					}
					lc.echoed += n
				}
			},
			OnClose: func(err error) { lc.closeErr = err },
		})
		if err := cli.Connect(lc.fd, ipVMB, 81); err != nil {
			t.Fatal(err)
		}
		longs = append(longs, lc)
	}
	var tick func()
	tick = func() {
		for _, lc := range longs {
			cli.Send(lc.fd, []byte("keepalive"))
		}
		c.loop.AfterFunc(500*time.Microsecond, tick)
	}
	c.loop.AfterFunc(time.Millisecond, tick)

	// The monitor touches only migration-stable surfaces: the VM's
	// ServiceLib pointers and channel pairs survive the cutover in
	// place (the pumps move between modules, the objects don't).
	// vm.NSM and vm.NSMs are rewritten by the cutover on the event
	// loop, so the monitor must not chase them — that would be a real
	// data race, not a latent one in the plumbing.
	vms := []*VM{vma, vmb, vmc}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			for _, h := range []*Host{c.h1, c.h2} {
				_ = h.Engine.Mappings()
				if err := h.Engine.CheckFlowAffinity(); err != nil {
					t.Errorf("flow affinity violated mid-migration: %v", err)
					return
				}
			}
			for _, vm := range vms {
				for _, svc := range vm.Services {
					_ = svc.Stats()
				}
				for _, pair := range vm.Guest.Pairs() {
					_ = pair.Pages.FreeCount()
					_ = pair.Pages.LiveRefs()
				}
			}
			// CopyReport walks vm.NSMs — an unstable surface for the
			// migrating tenants — so only the client VM gets it.
			if rep := vma.CopyReport(); rep.Sub(CopyReport{}) != rep {
				t.Error("CopyReport not self-consistent")
				return
			}
		}
	}()

	// Churn, then migrate the shared NSM mid-churn, then keep churning.
	for i := 0; i < 4; i++ {
		c.loop.RunFor(2 * time.Millisecond)
	}
	var rec *Migration
	if _, err := c.h2.MigrateNSM(vmb.NSM, moduleNSM("bbr"), MigrateOptions{}, func(m *Migration) { rec = m }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		c.loop.RunFor(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if rec == nil || rec.Aborted {
		t.Fatalf("migration did not complete cleanly: %+v", rec)
	}
	if rec.VMs != 2 {
		t.Fatalf("migration moved %d VMs, want the 2 sharing the module", rec.VMs)
	}
	if completed < 4*slots {
		t.Fatalf("only %d churn connections completed; too little concurrency", completed)
	}
	for i, lc := range longs {
		if lc.closeErr != errSentinel {
			t.Fatalf("long-lived conn %d died across migration: %v", i, lc.closeErr)
		}
		if lc.echoed == 0 {
			t.Fatalf("long-lived conn %d never echoed", i)
		}
	}
	if err := c.h2.Engine.CheckFlowAffinity(); err != nil {
		t.Fatal(err)
	}
	// Post-migration the successor's sharded conn table must carry the
	// spread; the donor is dead and empty.
	spread := 0
	for i := 0; i < 4; i++ {
		if rec.To.Stack.ShardConnCount(i) > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Errorf("successor connections landed on %d of 4 shards; RSS steering broke across migration", spread)
	}
	if rec.From.Stack.ConnCount() != 0 || !rec.From.Stack.Dead() {
		t.Error("donor stack still live after cutover")
	}
}
