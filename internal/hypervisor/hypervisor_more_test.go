package hypervisor

import (
	"bytes"
	"testing"
	"time"

	"netkernel/internal/guestlib"
	"netkernel/internal/nkqueue"
	"netkernel/internal/nqe"
	"netkernel/internal/proto/tcp"
	"netkernel/internal/sim"
)

// bulkThrough pushes size bytes from vma to vmb and returns the bytes
// that arrived within the deadline.
func bulkThrough(c *cluster, vma, vmb *VM, port uint16, size int, deadline time.Duration) int {
	lfd := vmb.Guest.Socket(guestlib.Callbacks{})
	vmb.Guest.Listen(lfd, port, 8)
	var got bytes.Buffer
	buf := make([]byte, 256<<10)
	vmb.Guest.SetCallbacks(lfd, guestlib.Callbacks{OnAcceptable: func() {
		fd, ok := vmb.Guest.Accept(lfd)
		if !ok {
			return
		}
		vmb.Guest.SetCallbacks(fd, guestlib.Callbacks{OnReadable: func() {
			for {
				n, _ := vmb.Guest.Recv(fd, buf)
				if n == 0 {
					return
				}
				got.Write(buf[:n])
			}
		}})
	}})

	payload := make([]byte, size)
	sent := 0
	var fd int32
	pump := func() {
		for sent < size {
			n := vma.Guest.Send(fd, payload[sent:])
			sent += n
			if n == 0 {
				return
			}
		}
	}
	fd = vma.Guest.Socket(guestlib.Callbacks{
		OnEstablished: func(err error) {
			if err == nil {
				pump()
			}
		},
		OnWritable: pump,
	})
	vma.Guest.Connect(fd, vmb.IP, port)
	c.loop.RunFor(deadline)
	return got.Len()
}

// Tiny rings force the CoreEngine's stall/retry machinery (stalledToNSM
// and stalledToVM) onto the hot path; the transfer must still complete
// losslessly.
func TestEngineBackpressureWithTinyRings(t *testing.T) {
	c := newCluster(t, func(cfg *HostConfig) {
		cfg.Chan.Queue = nkqueue.Config{Slots: 4}
	})
	vma, vmb := c.nkPair(t, "cubic", "cubic")
	got := bulkThrough(c, vma, vmb, 9000, 1<<20, 3*time.Second)
	if got != 1<<20 {
		t.Fatalf("transferred %d of %d through 4-slot rings", got, 1<<20)
	}
}

func TestPriorityRingsEndToEnd(t *testing.T) {
	c := newCluster(t, func(cfg *HostConfig) {
		cfg.Chan.Queue = nkqueue.Config{Slots: 64, Priority: true}
	})
	vma, vmb := c.nkPair(t, "cubic", "cubic")
	got := bulkThrough(c, vma, vmb, 9000, 1<<20, 3*time.Second)
	if got != 1<<20 {
		t.Fatalf("transferred %d of %d through priority rings", got, 1<<20)
	}
}

func TestNSMRateLimitEnforced(t *testing.T) {
	c := newCluster(t, nil)
	vma, err := c.h1.CreateVM(VMConfig{
		Name: "limited", IP: ipVMA, Mode: ModeNetKernel,
		NSM: NSMSpec{Form: FormModule, CC: "cubic", RateLimitBps: 100e6}, // 100 Mbit/s SLA
	})
	if err != nil {
		t.Fatal(err)
	}
	vmb, _ := c.h2.CreateVM(VMConfig{Name: "sink", IP: ipVMB, Mode: ModeNetKernel, NSM: moduleNSM("cubic")})
	c.loop.RunFor(50 * time.Millisecond)

	got := bulkThrough(c, vma, vmb, 9000, 64<<20, time.Second)
	bps := float64(got) * 8
	// 100 Mbit/s over ~1s (allow the burst allowance and ramp).
	if bps > 140e6 {
		t.Fatalf("rate limit leaked: %.0f Mbit/s against a 100 Mbit/s SLA", bps/1e6)
	}
	if bps < 60e6 {
		t.Fatalf("rate limit over-throttled: %.0f Mbit/s", bps/1e6)
	}
}

func TestNSMScaleUpCores(t *testing.T) {
	c := newCluster(t, nil)
	vm, err := c.h1.CreateVM(VMConfig{
		Name: "big", IP: ipVMA, Mode: ModeNetKernel,
		NSM: NSMSpec{Form: FormVM, CC: "cubic", Cores: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if vm.NSM.CPU.Cores() != 4 {
		t.Fatalf("scale-up NSM has %d cores, want 4", vm.NSM.CPU.Cores())
	}
	// Default form reservation still applies without the override.
	vm2, _ := c.h1.CreateVM(VMConfig{
		Name: "small", IP: ipVMB, Mode: ModeNetKernel,
		NSM: NSMSpec{Form: FormVM, CC: "cubic"},
	})
	if vm2.NSM.CPU.Cores() != 1 {
		t.Fatalf("default VM-form NSM has %d cores, want 1", vm2.NSM.CPU.Cores())
	}
}

func TestModuleFormSharesHostCPU(t *testing.T) {
	c := newCluster(t, nil)
	vm, _ := c.h1.CreateVM(VMConfig{Name: "m", IP: ipVMA, Mode: ModeNetKernel, NSM: moduleNSM("cubic")})
	if vm.NSM.CPU != c.h1.CPU {
		t.Fatal("module-form NSM should share the hypervisor CPU")
	}
}

func TestBootNSMDirectly(t *testing.T) {
	c := newCluster(t, nil)
	nsm := c.h1.BootNSM(NSMSpec{Form: FormContainer, CC: "bbr"}, ipVMA)
	if nsm.CC != "bbr" || nsm.Stack == nil {
		t.Fatalf("BootNSM produced %+v", nsm)
	}
	if c.h1.NSMs() != 1 {
		t.Fatal("NSM not registered with the host")
	}
	// Attach a VM to it explicitly.
	vm, err := c.h1.CreateVM(VMConfig{Name: "t", IP: ipVMA, Mode: ModeNetKernel, NSM: NSMSpec{ShareWith: nsm}})
	if err != nil {
		t.Fatal(err)
	}
	if vm.NSM != nsm || c.h1.NSMs() != 1 {
		t.Fatal("explicit attach booted a second NSM")
	}
}

func TestVMRequiresIP(t *testing.T) {
	c := newCluster(t, nil)
	if _, err := c.h1.CreateVM(VMConfig{Name: "noip", Mode: ModeLegacy}); err == nil {
		t.Fatal("VM without IP accepted")
	}
}

func TestManyConcurrentConnections(t *testing.T) {
	c := newCluster(t, nil)
	vma, vmb := c.nkPair(t, "cubic", "cubic")

	lfd := vmb.Guest.Socket(guestlib.Callbacks{})
	vmb.Guest.Listen(lfd, 80, 128)
	accepted := 0
	vmb.Guest.SetCallbacks(lfd, guestlib.Callbacks{OnAcceptable: func() {
		for {
			if _, ok := vmb.Guest.Accept(lfd); !ok {
				return
			}
			accepted++
		}
	}})

	const conns = 50
	established := 0
	for i := 0; i < conns; i++ {
		fd := vma.Guest.Socket(guestlib.Callbacks{
			OnEstablished: func(err error) {
				if err == nil {
					established++
				}
			},
		})
		vma.Guest.Connect(fd, ipVMB, 80)
	}
	c.loop.RunFor(2 * time.Second)
	if established != conns {
		t.Fatalf("established %d of %d connections", established, conns)
	}
	if accepted != conns {
		t.Fatalf("accepted %d of %d connections", accepted, conns)
	}
	if vma.NSM.Stack.ConnCount() != conns {
		t.Fatalf("NSM stack tracks %d conns", vma.NSM.Stack.ConnCount())
	}
}

func TestEngineBootGateDelaysNotReorders(t *testing.T) {
	// Ops issued before boot must be processed in order afterwards.
	loop := sim.NewLoop()
	_ = loop
	c := newCluster(t, nil)
	vma, _ := c.h1.CreateVM(VMConfig{Name: "a", IP: ipVMA, Mode: ModeNetKernel,
		NSM: NSMSpec{Form: FormVM, CC: "cubic"}}) // 3 s boot
	vmb, _ := c.h2.CreateVM(VMConfig{Name: "b", IP: ipVMB, Mode: ModeNetKernel,
		NSM: NSMSpec{Form: FormVM, CC: "cubic"}})

	// Queue a whole socket+listen and socket+connect sequence pre-boot.
	lfd := vmb.Guest.Socket(guestlib.Callbacks{})
	vmb.Guest.Listen(lfd, 80, 8)
	var est error = errSentinel
	fd := vma.Guest.Socket(guestlib.Callbacks{OnEstablished: func(err error) { est = err }})
	vma.Guest.Connect(fd, ipVMB, 80)

	c.loop.RunFor(time.Second)
	if est != errSentinel {
		t.Fatal("progress before the NSM booted")
	}
	c.loop.RunFor(5 * time.Second)
	if est != nil {
		t.Fatalf("pre-boot operations failed after boot: %v", est)
	}
}

func TestSetSockOptThroughNSM(t *testing.T) {
	c := newCluster(t, nil)
	vma, vmb := c.nkPair(t, "cubic", "cubic")
	lfd := vmb.Guest.Socket(guestlib.Callbacks{})
	vmb.Guest.Listen(lfd, 80, 4)
	fd := vma.Guest.Socket(guestlib.Callbacks{})
	vma.Guest.Connect(fd, ipVMB, 80)
	c.loop.RunFor(200 * time.Millisecond)

	if err := vma.Guest.SetSockOpt(fd, nqe.SockOptNagle, 1); err != nil {
		t.Fatal(err)
	}
	c.loop.RunFor(100 * time.Millisecond)
	// The NSM-side connection now has Nagle enabled.
	nagle := false
	vma.NSM.Stack.Conns(func(conn *tcp.Conn) { nagle = conn.NagleEnabled() })
	if !nagle {
		t.Fatal("setsockopt(Nagle) did not reach the NSM connection")
	}
	if err := vma.Guest.SetSockOpt(999, nqe.SockOptNagle, 1); err == nil {
		t.Fatal("setsockopt on bad fd accepted")
	}
}

// TestUDPDatagramsThroughNSM exercises the BSD datagram surface over
// the NetKernel path: bind, sendto, recvfrom, including the implicit
// bind on first send.
func TestUDPDatagramsThroughNSM(t *testing.T) {
	c := newCluster(t, nil)
	vma, vmb := c.nkPair(t, "cubic", "cubic")

	// Server: bound datagram socket on vmb:5353, echoing datagrams.
	srv := vmb.Guest
	var sfd int32
	sfd = srv.SocketDatagram(guestlib.Callbacks{OnReadable: func() {
		buf := make([]byte, 2048)
		for {
			n, src, srcPort, ok := srv.RecvFrom(sfd, buf)
			if !ok {
				return
			}
			srv.SendTo(sfd, src, srcPort, buf[:n])
		}
	}})
	if err := srv.BindUDP(sfd, 5353); err != nil {
		t.Fatal(err)
	}

	// Client: unbound socket; the first SendTo binds implicitly.
	cli := vma.Guest
	var got []byte
	var cfd int32
	cfd = cli.SocketDatagram(guestlib.Callbacks{OnReadable: func() {
		buf := make([]byte, 2048)
		n, src, _, ok := cli.RecvFrom(cfd, buf)
		if ok {
			if src != ipVMB {
				t.Errorf("datagram from %v", src)
			}
			got = append(got, buf[:n]...)
		}
	}})
	if err := cli.SendTo(cfd, ipVMB, 5353, []byte("nsaas datagram")); err != nil {
		t.Fatal(err)
	}
	c.loop.RunFor(500 * time.Millisecond)
	if string(got) != "nsaas datagram" {
		t.Fatalf("echo returned %q", got)
	}

	// Oversize datagrams refused at the API.
	if err := cli.SendTo(cfd, ipVMB, 5353, make([]byte, 9000)); err == nil {
		t.Fatal("oversize datagram accepted")
	}
	// Stream ops on a datagram socket refused.
	if err := cli.Connect(cfd, ipVMB, 80); err == nil {
		t.Fatal("connect on datagram socket accepted")
	}
	// Close releases the port: rebinding on the server works after.
	srv.Close(sfd)
	c.loop.RunFor(100 * time.Millisecond)
	sfd2 := srv.SocketDatagram(guestlib.Callbacks{})
	if err := srv.BindUDP(sfd2, 5353); err != nil {
		t.Fatal(err)
	}
	c.loop.RunFor(100 * time.Millisecond)
}
