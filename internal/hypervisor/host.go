package hypervisor

import (
	"fmt"
	"time"

	"netkernel/internal/guestlib"
	"netkernel/internal/netsim"
	"netkernel/internal/nkchan"
	"netkernel/internal/nkqueue"
	"netkernel/internal/proto/ethernet"
	"netkernel/internal/proto/ipv4"
	"netkernel/internal/sched"
	"netkernel/internal/servicelib"
	"netkernel/internal/sim"
	"netkernel/internal/stack"
	"netkernel/internal/telemetry"
	"netkernel/internal/vswitch"
)

// HostConfig parameterizes one physical host.
type HostConfig struct {
	Name  string
	Clock sim.Clock
	RNG   *sim.RNG
	// HostID distinguishes MAC address ranges between hosts.
	HostID uint8
	// Cores is the host CPU size (default 8, the testbed's E5-2618LV3).
	Cores int
	// PerPacketCost models per-core stack processing (0 = free).
	PerPacketCost time.Duration
	// RoundRobinCores pins flows to cores round-robin (see
	// stack.Config.RoundRobinCores).
	RoundRobinCores bool
	// SwitchMode selects the overlay switch substrate.
	SwitchMode vswitch.Mode
	// Engine configures the CoreEngine cost model.
	Engine EngineConfig
	// Chan configures VM↔NSM channels.
	Chan nkchan.Config
	// Shards turns on the multi-queue datapath (the journal version's
	// multi-core NSM): every VM↔NSM channel gets this many ring-set
	// shards (unless Chan.Shards overrides it), each NSM stack shards
	// its connection table RxShards-wise with RSS flow steering, and
	// flows stay pinned to their shard for life. 0 (the default) is the
	// conference paper's single-queue channel with legacy core
	// steering; 1 models a single-queue NSM whose flows all share core
	// 0 — the scale-out baseline. Fixed for the host's lifetime: NSM
	// restarts reboot with the same shard count.
	Shards int

	// TCP knobs inherited by every stack on the host.
	MinRTO            time.Duration
	MSL               time.Duration
	DelayedAckTimeout time.Duration
	SendBufSize       int
	RecvBufSize       int
	// ShmWindow sizes the shared-memory flow-control windows
	// (GuestLib send credit, ServiceLib receive window). Default 1 MiB;
	// high-bandwidth-delay scenarios raise it alongside the TCP
	// buffers.
	ShmWindow int
	// MaskBits is the on-link prefix length (default 8: one flat
	// 10/8 fabric, everything on-link).
	MaskBits int
	// StallRecovery, when positive, arms retry timers in GuestLib and
	// ServiceLib so fault-injected queue stalls can delay work but
	// never wedge it. Zero (the default) keeps the pipeline purely
	// kick-driven; only fault-injection harnesses set it.
	StallRecovery time.Duration
	// Metrics, when set, is the registry every component on this host
	// publishes into (useful to aggregate several hosts); nil builds a
	// private one, so Host.Metrics is never nil.
	Metrics *telemetry.Registry
	// TraceSampleEvery enables per-nqe span tracing: every Nth
	// operation entering the pipeline is stamped at each hop (GuestLib
	// enqueue → engine pump → ServiceLib dispatch → stack TX, and the
	// mirror receive path). 0, the default, disables tracing.
	TraceSampleEvery int
}

// Host is one physical machine: NIC, overlay switch, cores, CoreEngine,
// and the VMs and NSMs placed on it.
type Host struct {
	cfg   HostConfig
	clock sim.Clock
	rng   *sim.RNG

	CPU    *netsim.CPU
	NIC    *netsim.NIC
	Switch *vswitch.Switch
	Engine *CoreEngine

	// Metrics is the host's unified telemetry registry; every layer
	// registers its counters here under "<instance>.<subsystem>."
	// prefixes ("vm1.guest.", "nsm2.stack.", "engine.", …).
	Metrics *telemetry.Registry
	// Tracer samples per-nqe spans across the pipeline (nil-safe to
	// use; disabled unless HostConfig.TraceSampleEvery > 0).
	Tracer *telemetry.Tracer

	vms  map[uint32]*VM
	nsms map[uint32]*NSM

	nextVMID  uint32
	nextNSMID uint32
	macSeq    uint16
}

// NewHost builds a host.
func NewHost(cfg HostConfig) *Host {
	if cfg.Clock == nil {
		panic("hypervisor: HostConfig.Clock required")
	}
	if cfg.RNG == nil {
		cfg.RNG = sim.NewRNG(uint64(cfg.HostID) + 7)
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 8
	}
	if cfg.MaskBits == 0 {
		cfg.MaskBits = 8
	}
	if cfg.Chan.Shards <= 0 && cfg.Shards > 1 {
		cfg.Chan.Shards = cfg.Shards
	}
	h := &Host{
		cfg:   cfg,
		clock: cfg.Clock,
		rng:   cfg.RNG,
		CPU:   netsim.NewCPU(cfg.Clock, cfg.Cores),
		vms:   make(map[uint32]*VM),
		nsms:  make(map[uint32]*NSM),
	}
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.NewRegistry()
	}
	h.Metrics = cfg.Metrics
	h.Tracer = telemetry.NewTracer(telemetry.TraceConfig{
		Clock:       cfg.Clock,
		SampleEvery: cfg.TraceSampleEvery,
		Metrics:     h.Metrics.Scope("trace."),
	})
	h.cfg.Engine.Tracer = h.Tracer
	h.NIC = netsim.NewNIC(cfg.Clock, h.newMAC())
	h.Switch = vswitch.New(cfg.Clock, vswitch.Config{Mode: cfg.SwitchMode})
	h.Engine = NewCoreEngine(cfg.Clock, h.cfg.Engine)
	h.registerHostMetrics()

	// The physical port is one switch port: frames from the wire enter
	// the switch through it; frames the switch sends out it reach the
	// wire.
	uplink := h.Switch.AddPort(netsim.PortFunc(func(f []byte) { h.NIC.Send(f) }))
	h.NIC.SetHandler(uplink.Deliver)
	return h
}

// registerHostMetrics exposes the host-global counters (CoreEngine,
// overlay switch) as snapshot-time gauges. EngineStats and
// vswitch.Stats stay plain value structs (deterministic-replay tests
// compare them wholesale), so the registry reads them through their
// copying accessors instead of owning atomics.
func (h *Host) registerHostMetrics() {
	eng := h.Metrics.Scope("engine.")
	eng.GaugeFunc("nqes_vm_to_nsm", func() int64 { return int64(h.Engine.Stats().NqesVMToNSM) })
	eng.GaugeFunc("nqes_nsm_to_vm", func() int64 { return int64(h.Engine.Stats().NqesNSMToVM) })
	eng.GaugeFunc("translated", func() int64 { return int64(h.Engine.Stats().Translated) })
	eng.GaugeFunc("bad_elements", func() int64 { return int64(h.Engine.Stats().BadElements) })
	eng.GaugeFunc("nsm_resets", func() int64 { return int64(h.Engine.Stats().NSMResets) })
	eng.GaugeFunc("reset_conns", func() int64 { return int64(h.Engine.Stats().ResetConns) })
	eng.GaugeFunc("discarded_elements", func() int64 { return int64(h.Engine.Stats().DiscardedElements) })
	eng.GaugeFunc("mappings", func() int64 { return int64(h.Engine.Mappings()) })
	sw := h.Metrics.Scope("switch.")
	sw.GaugeFunc("rx_frames", func() int64 { return int64(h.Switch.Stats().RxFrames) })
	sw.GaugeFunc("forwarded", func() int64 { return int64(h.Switch.Stats().Forwarded) })
	sw.GaugeFunc("flooded", func() int64 { return int64(h.Switch.Stats().Flooded) })
	sw.GaugeFunc("dropped", func() int64 { return int64(h.Switch.Stats().Dropped) })
	sw.GaugeFunc("learned", func() int64 { return int64(h.Switch.Stats().Learned) })
	sw.GaugeFunc("aged_out", func() int64 { return int64(h.Switch.Stats().AgedOut) })
}

// registerPairMetrics publishes one VM↔NSM channel's ring occupancy,
// push/pop accounting, doorbell activity, and huge-page pool state
// under "vm<id>.r<replica>.".
func (h *Host) registerPairMetrics(vmID uint32, replica int, pair *nkchan.Pair) {
	scope := h.Metrics.Scope(fmt.Sprintf("vm%d.r%d.", vmID, replica))
	pair.EnsureShards()
	for si := range pair.Shards {
		rings := &pair.Shards[si]
		// A single-shard channel keeps the original flat names; a
		// sharded one infixes "s<i>." so every shard's rings are
		// individually observable (vm1.r0.s2.q.vm_job.depth).
		shardScope := scope
		if len(pair.Shards) > 1 {
			shardScope = scope.Child(fmt.Sprintf("s%d", si))
		}
		queues := []struct {
			name string
			q    nkqueue.Q
		}{
			{"vm_job", rings.VMJob}, {"vm_completion", rings.VMCompletion}, {"vm_receive", rings.VMReceive},
			{"nsm_job", rings.NSMJob}, {"nsm_completion", rings.NSMCompletion}, {"nsm_receive", rings.NSMReceive},
		}
		for _, ent := range queues {
			q := ent.q
			qs := shardScope.Child("q." + ent.name + ".")
			qs.GaugeFunc("depth", func() int64 { return int64(q.Len()) })
			qs.GaugeFunc("pushed", func() int64 { return int64(q.Pushed()) })
			qs.GaugeFunc("popped", func() int64 { return int64(q.Popped()) })
			db := q.Doorbell()
			qs.GaugeFunc("doorbell_rings", func() int64 { return int64(db.Stats().Rings) })
			qs.GaugeFunc("doorbell_wakeups", func() int64 { return int64(db.Stats().Wakeups) })
		}
	}
	pages := pair.Pages
	ps := scope.Child("pages.")
	ps.GaugeFunc("live_refs", func() int64 { return int64(pages.LiveRefs()) })
	ps.GaugeFunc("free_chunks", func() int64 { return int64(pages.FreeCount()) })
}

// Snapshot captures every metric registered on the host.
func (h *Host) Snapshot() telemetry.Snapshot { return h.Metrics.Snapshot() }

// Name returns the host's label.
func (h *Host) Name() string { return h.cfg.Name }

// Clock returns the host's clock.
func (h *Host) Clock() sim.Clock { return h.clock }

func (h *Host) newMAC() netsim.MAC {
	h.macSeq++
	return netsim.MAC{0x02, h.cfg.HostID, 0, 0, byte(h.macSeq >> 8), byte(h.macSeq)}
}

// VMMode selects the Figure 1 architecture for a tenant VM.
type VMMode int

// Modes.
const (
	// ModeLegacy is Figure 1a: the network stack inside the guest.
	ModeLegacy VMMode = iota
	// ModeNetKernel is Figure 1b: network stack as a service.
	ModeNetKernel
)

func (m VMMode) String() string {
	if m == ModeNetKernel {
		return "netkernel"
	}
	return "legacy"
}

// NSMSpec requests a Network Stack Module for a VM.
type NSMSpec struct {
	// Form selects the realization (VM / unikernel / container /
	// module).
	Form NSMForm
	// CC names the stack the module hosts ("cubic", "bbr", …); this is
	// the NSM's identity. Default "cubic".
	CC string
	// Cores scales the module up (§2.1 "dynamically scale up the
	// network stack module with more dedicated cores"); 0 uses the
	// form default.
	Cores int
	// SRIOV attaches the NSM to a NIC virtual function, bypassing the
	// host switch (§3.1).
	SRIOV bool
	// ShareWith multiplexes this VM onto an existing NSM instead of
	// booting a new one (§2.1 "exploit the multiplexing gains by
	// serving multiple tenant VMs with the same network stack module").
	ShareWith *NSM
	// Replicas scales the tenant out across several NSM instances
	// (§2.1 "scale out with more modules to support higher throughput
	// to a large number of concurrent connections"): sockets are
	// spread round-robin across the replicas. Each replica gets its
	// own network identity (the VM's IP with the last octet offset by
	// the replica index). 0 and 1 both mean a single module.
	Replicas int
	// RateLimitBps caps this tenant's egress through the module in
	// bits per second — the throughput-SLA knob of §2.1. Zero means
	// unlimited.
	RateLimitBps float64
}

// VMConfig requests a tenant VM.
type VMConfig struct {
	Name    string
	Profile guestlib.GuestProfile
	IP      ipv4.Addr
	Mode    VMMode
	// NSM configures the module for ModeNetKernel.
	NSM NSMSpec
	// SendCredit overrides GuestLib's shm send window.
	SendCredit int
}

// VM is one tenant virtual machine.
type VM struct {
	ID      uint32
	Name    string
	Profile guestlib.GuestProfile
	IP      ipv4.Addr
	Mode    VMMode

	// Guest is the NetKernel-mode socket surface (nil in legacy mode).
	Guest *guestlib.GuestLib
	// Service is this VM's ServiceLib pump inside its (first) NSM (nil
	// in legacy mode); per-tenant accounting reads its counters.
	Service *servicelib.ServiceLib
	// Services lists one pump per NSM replica (scale-out); length 1
	// normally.
	Services []*servicelib.ServiceLib
	// NSMs lists the attached replicas; NSM is NSMs[0].
	NSMs []*NSM
	// Legacy is the in-guest stack (nil in NetKernel mode).
	Legacy *stack.Stack
	// NSM is the attached module (nil in legacy mode).
	NSM *NSM

	host *Host
}

// NSM is one Network Stack Module instance.
type NSM struct {
	ID      uint32
	Form    NSMForm
	Profile FormProfile
	CC      string
	Stack   *stack.Stack
	// CPU is the module's core reservation (the host CPU for
	// FormModule).
	CPU *netsim.CPU
	// ReadyAt is when the module finishes booting.
	ReadyAt sim.Time
	// Services are the per-VM ServiceLib pumps (one per multiplexed
	// VM).
	Services []*servicelib.ServiceLib
	// Restarts counts crash-reboot cycles.
	Restarts int

	// attach binds a stack to the module's fixed network identity
	// (MAC, IP, fabric port); restarts reuse it.
	attach func(*stack.Stack)
	// migratedTo points at the successor after a live migration: frames
	// arriving on this module's network identity chase the chain to the
	// stack currently serving its connections.
	migratedTo *NSM

	host *Host
}

// liveStack resolves the stack currently serving this module's network
// identity, chasing migration redirects.
func (n *NSM) liveStack() *stack.Stack {
	m := n
	for m.migratedTo != nil {
		m = m.migratedTo
	}
	return m.Stack
}

// Tenants returns how many VMs the module serves.
func (n *NSM) Tenants() int { return len(n.Services) }

func (h *Host) stackConfig(name, cc string, cpu *netsim.CPU, rxShards int, metrics *telemetry.Scope) stack.Config {
	return stack.Config{
		RxShards:          rxShards,
		Clock:             h.clock,
		RNG:               sim.NewRNG(h.rng.Uint64()),
		Name:              name,
		CPU:               cpu,
		PerPacketCost:     h.cfg.PerPacketCost,
		RoundRobinCores:   h.cfg.RoundRobinCores,
		DefaultCC:         cc,
		MinRTO:            h.cfg.MinRTO,
		MSL:               h.cfg.MSL,
		DelayedAckTimeout: h.cfg.DelayedAckTimeout,
		SendBufSize:       h.cfg.SendBufSize,
		RecvBufSize:       h.cfg.RecvBufSize,
		Metrics:           metrics,
	}
}

// attachStack wires a stack to the fabric: a switch port normally, or
// an SR-IOV virtual function for host bypass.
func (h *Host) attachStack(s *stack.Stack, ip ipv4.Addr, sriov bool) {
	h.makeAttachment(func() *stack.Stack { return s }, ip, sriov)(s)
}

// makeAttachment allocates a network identity (MAC, switch port or VF)
// whose inbound side delivers to whatever stack current() returns at
// frame-arrival time, and returns a function that attaches a stack to
// that identity. NSM restarts reuse the attachment so the rebooted
// stack keeps the module's MAC, IP, and fabric port.
func (h *Host) makeAttachment(current func() *stack.Stack, ip ipv4.Addr, sriov bool) func(*stack.Stack) {
	mac := ethernet.MAC(h.newMAC())
	deliver := func(f []byte) {
		if s := current(); s != nil {
			s.DeliverFrame(f)
		}
	}
	var tx func([]byte)
	if sriov {
		vf := h.NIC.AddVF(netsim.MAC(mac))
		vf.SetHandler(deliver)
		tx = vf.Send
	} else {
		port := h.Switch.AddPort(netsim.PortFunc(deliver))
		tx = port.Deliver
	}
	return func(s *stack.Stack) {
		s.AttachInterface(mac, ip, ethernet.MTU, h.cfg.MaskBits, ipv4.Addr{}, tx)
	}
}

// BootNSM provisions a Network Stack Module (normally done implicitly
// by CreateVM; exposed for scale-out scenarios). ip is the module's
// network identity.
func (h *Host) BootNSM(spec NSMSpec, ip ipv4.Addr) *NSM {
	n := h.bootDetachedNSM(spec)
	// Frames on the module's identity deliver through liveStack, so the
	// attachment survives both crash-reboots (same module, fresh stack)
	// and live migrations (successor module adopts the identity).
	n.attach = h.makeAttachment(func() *stack.Stack { return n.liveStack() }, ip, spec.SRIOV)
	n.attach(n.Stack)
	return n
}

// bootDetachedNSM provisions a module without a network identity: the
// migration path boots the successor this way and hands it the donor's
// identity at cutover.
func (h *Host) bootDetachedNSM(spec NSMSpec) *NSM {
	if spec.CC == "" {
		spec.CC = "cubic"
	}
	h.nextNSMID++
	prof := spec.Form.Profile()
	cores := spec.Cores
	if cores <= 0 {
		cores = prof.DedicatedCores
	}
	cpu := h.CPU // FormModule shares hypervisor cores
	if cores > 0 {
		cpu = netsim.NewCPU(h.clock, cores)
	}
	n := &NSM{
		ID:      h.nextNSMID,
		Form:    spec.Form,
		Profile: prof,
		CC:      spec.CC,
		CPU:     cpu,
		ReadyAt: h.clock.Now().Add(prof.BootTime),
		host:    h,
	}
	// NSM stacks shard their connection tables to match the channel
	// shard count (Shards <= 0 stays the legacy single-table stack).
	n.Stack = stack.New(h.stackConfig(fmt.Sprintf("%s/nsm%d-%s", h.cfg.Name, n.ID, spec.CC), spec.CC, cpu,
		h.cfg.Shards, h.Metrics.Scope(fmt.Sprintf("nsm%d.stack.", n.ID))))
	h.nsms[n.ID] = n
	return n
}

// RestartNSM models the module process crashing and rebooting. The
// failure is abrupt: tenant pumps die silently, the stack is torn down
// without emitting RST or FIN (the process is gone, nothing is on the
// wire), and the CoreEngine discards in-flight channel work, releases
// fd↔cID mappings, and notifies each guest with a reset completion.
// After the form's boot time a fresh stack with the module's original
// network identity (same MAC, IP, and fabric port) comes up and the
// pumps rebind to it; connection IDs and fds stay monotonic across the
// reboot so stale references cannot alias new connections.
func (h *Host) RestartNSM(n *NSM) {
	for _, svc := range n.Services {
		svc.Crash()
	}
	n.Stack.Kill()
	n.ReadyAt = h.clock.Now().Add(n.Profile.BootTime)
	h.Engine.ResetNSM(n.ID, n.ReadyAt)
	n.Restarts++
	h.clock.AfterFunc(n.Profile.BootTime, func() {
		// Registration is last-wins, so the rebooted stack's counters
		// take over the module's metric names (restarts zero them).
		// The shard count is the host's fixed one, so the per-shard
		// "s<i>.conns" gauge names re-register 1:1 — the registry's
		// name set is identical before and after a reboot.
		fresh := stack.New(h.stackConfig(
			fmt.Sprintf("%s/nsm%d-%s", h.cfg.Name, n.ID, n.CC), n.CC, n.CPU,
			h.cfg.Shards, h.Metrics.Scope(fmt.Sprintf("nsm%d.stack.", n.ID))))
		n.attach(fresh)
		n.Stack = fresh
		for _, svc := range n.Services {
			svc.Rebind(fresh)
		}
	})
}

// CreateVM provisions a tenant VM. In NetKernel mode the CoreEngine
// boots (or attaches) the NSM and wires the shared-memory channel, as
// §3.1 describes ("A NetKernel CoreEngine runs on the hypervisor and
// is responsible for setting up the NSM when a VM boots").
func (h *Host) CreateVM(cfg VMConfig) (*VM, error) {
	if cfg.IP.IsZero() {
		return nil, fmt.Errorf("hypervisor: VM %q needs an IP", cfg.Name)
	}
	if cfg.Profile == "" {
		cfg.Profile = guestlib.ProfileLinux
	}
	h.nextVMID++
	vm := &VM{
		ID: h.nextVMID, Name: cfg.Name, Profile: cfg.Profile,
		IP: cfg.IP, Mode: cfg.Mode, host: h,
	}

	switch cfg.Mode {
	case ModeLegacy:
		// Figure 1a/2a: the guest kernel's own stack, vNIC into the
		// overlay switch. Its congestion control is whatever the guest
		// OS ships (CUBIC on Linux, C-TCP on Windows, …).
		vm.Legacy = stack.New(h.stackConfig(
			fmt.Sprintf("%s/vm%d-%s", h.cfg.Name, vm.ID, cfg.Name),
			cfg.Profile.DefaultCC(), h.CPU, 0, /* guests keep the legacy single-table stack */
			h.Metrics.Scope(fmt.Sprintf("vm%d.stack.", vm.ID))))
		h.attachStack(vm.Legacy, cfg.IP, false)

	case ModeNetKernel:
		replicas := cfg.NSM.Replicas
		if replicas < 1 {
			replicas = 1
		}
		if cfg.NSM.ShareWith != nil {
			replicas = 1
		}
		credit := cfg.SendCredit
		if credit <= 0 {
			credit = h.cfg.ShmWindow
		}
		var pairs []*nkchan.Pair
		for r := 0; r < replicas; r++ {
			nsm := cfg.NSM.ShareWith
			if nsm == nil {
				ip := cfg.IP
				ip[3] += byte(r) // per-replica network identity
				nsm = h.BootNSM(cfg.NSM, ip)
			}
			if vm.NSM == nil {
				vm.NSM = nsm
			}
			vm.NSMs = append(vm.NSMs, nsm)

			pair, err := nkchan.NewPair(h.cfg.Chan)
			if err != nil {
				return nil, fmt.Errorf("hypervisor: %w", err)
			}
			var shaper sched.Shaper
			if cfg.NSM.RateLimitBps > 0 {
				shaper = sched.NewTokenBucket(h.clock, cfg.NSM.RateLimitBps/8, 0)
			}
			svc := servicelib.New(servicelib.Config{
				Clock:         h.clock,
				NSMID:         nsm.ID,
				Pair:          pair,
				Stack:         nsm.Stack,
				CC:            nsm.CC,
				Shaper:        shaper,
				RecvWindow:    h.cfg.ShmWindow,
				StallRecovery: h.cfg.StallRecovery,
				Metrics:       h.Metrics.Scope(fmt.Sprintf("vm%d.r%d.svc.", vm.ID, r)),
				Tracer:        h.Tracer,
			})
			h.registerPairMetrics(vm.ID, r, pair)
			nsm.Services = append(nsm.Services, svc)
			if vm.Service == nil {
				vm.Service = svc
			}
			vm.Services = append(vm.Services, svc)
			h.Engine.Attach(pair, vm.ID, nsm.ID, nsm.Profile.NotifyLatency, nsm.ReadyAt,
				int32(1+r)<<20)
			pairs = append(pairs, pair)
		}
		vm.Guest = guestlib.New(guestlib.Config{
			Clock:         h.clock,
			VMID:          vm.ID,
			Pairs:         pairs,
			SendCredit:    credit,
			StallRecovery: h.cfg.StallRecovery,
			Metrics:       h.Metrics.Scope(fmt.Sprintf("vm%d.guest.", vm.ID)),
			Tracer:        h.Tracer,
		})

	default:
		return nil, fmt.Errorf("hypervisor: unknown VM mode %d", cfg.Mode)
	}

	h.vms[vm.ID] = vm
	return vm, nil
}

// VMs returns the host's VM count.
func (h *Host) VMs() int { return len(h.vms) }

// NSMs returns the host's NSM count.
func (h *Host) NSMs() int { return len(h.nsms) }

// EachNSM visits every NSM (accounting, scheduling).
func (h *Host) EachNSM(fn func(*NSM)) {
	for _, n := range h.nsms {
		fn(n)
	}
}

// EachVM visits every VM.
func (h *Host) EachVM(fn func(*VM)) {
	for _, v := range h.vms {
		fn(v)
	}
}

// CopyReport aggregates the data-path memcpy counters across one VM's
// layers: the socket-API boundary (GuestLib), the NSM-side pump
// (ServiceLib), and the TCP stack itself. Payload counters give the
// copies-per-byte denominator. Note that when an NSM is multiplexed
// across VMs its stack counters cover all tenants; the copy-budget
// experiments use one VM per NSM so the attribution is exact.
type CopyReport struct {
	// PayloadTx / PayloadRx are payload bytes the guest application
	// pushed into / pulled out of the socket API.
	PayloadTx, PayloadRx uint64
	// Send-direction copied bytes, by the layer whose code ran the
	// memcpy.
	GuestTxCopied, ServiceTxCopied, TCPTxCopied uint64
	// Receive-direction copied bytes.
	GuestRxCopied, ServiceRxCopied, TCPRxCopied uint64
}

// TxCopied sums send-direction copies across layers.
func (r CopyReport) TxCopied() uint64 { return r.GuestTxCopied + r.ServiceTxCopied + r.TCPTxCopied }

// RxCopied sums receive-direction copies across layers.
func (r CopyReport) RxCopied() uint64 { return r.GuestRxCopied + r.ServiceRxCopied + r.TCPRxCopied }

// TxCopiesPerByte is send-direction copies per payload byte.
func (r CopyReport) TxCopiesPerByte() float64 {
	if r.PayloadTx == 0 {
		return 0
	}
	return float64(r.TxCopied()) / float64(r.PayloadTx)
}

// RxCopiesPerByte is receive-direction copies per payload byte.
func (r CopyReport) RxCopiesPerByte() float64 {
	if r.PayloadRx == 0 {
		return 0
	}
	return float64(r.RxCopied()) / float64(r.PayloadRx)
}

// Sub returns the counter deltas since a prior snapshot (all fields
// are cumulative).
func (r CopyReport) Sub(prev CopyReport) CopyReport {
	return CopyReport{
		PayloadTx:       r.PayloadTx - prev.PayloadTx,
		PayloadRx:       r.PayloadRx - prev.PayloadRx,
		GuestTxCopied:   r.GuestTxCopied - prev.GuestTxCopied,
		ServiceTxCopied: r.ServiceTxCopied - prev.ServiceTxCopied,
		TCPTxCopied:     r.TCPTxCopied - prev.TCPTxCopied,
		GuestRxCopied:   r.GuestRxCopied - prev.GuestRxCopied,
		ServiceRxCopied: r.ServiceRxCopied - prev.ServiceRxCopied,
		TCPRxCopied:     r.TCPRxCopied - prev.TCPRxCopied,
	}
}

// CopyReport snapshots the VM's cumulative copy counters. Legacy VMs
// report only the in-guest stack's TCP copies (the socket API there is
// the stack's own Read/Write, already counted by the TCP layer).
func (vm *VM) CopyReport() CopyReport {
	var r CopyReport
	if vm.Guest != nil {
		gs := vm.Guest.Stats()
		r.PayloadTx = gs.BytesSent
		r.PayloadRx = gs.BytesReceived
		r.GuestTxCopied = gs.TxBytesCopied
		r.GuestRxCopied = gs.RxBytesCopied
	}
	for _, svc := range vm.Services {
		ss := svc.Stats()
		r.ServiceTxCopied += ss.TxBytesCopied
		r.ServiceRxCopied += ss.RxBytesCopied
	}
	for _, n := range vm.NSMs {
		st := n.Stack.Stats()
		r.TCPTxCopied += st.TCPCopiedTx
		r.TCPRxCopied += st.TCPCopiedRx
	}
	if vm.Legacy != nil {
		st := vm.Legacy.Stats()
		r.TCPTxCopied += st.TCPCopiedTx
		r.TCPRxCopied += st.TCPCopiedRx
	}
	return r
}

// Snapshot captures this VM's slice of the host registry: its GuestLib
// counters, per-replica ServiceLib and channel metrics, and each
// attached NSM's stack (which also serves any co-tenants sharing the
// module).
func (vm *VM) Snapshot() telemetry.Snapshot {
	prefixes := []string{fmt.Sprintf("vm%d.", vm.ID)}
	for _, n := range vm.NSMs {
		prefixes = append(prefixes, fmt.Sprintf("nsm%d.", n.ID))
	}
	return vm.host.Metrics.Snapshot().Filter(prefixes...)
}
