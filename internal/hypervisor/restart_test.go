package hypervisor

import (
	"bytes"
	"testing"
	"time"

	"netkernel/internal/guestlib"
	"netkernel/internal/proto/ipv4"
)

// TestNSMCrashRestart crashes the server-side NSM mid-connection and
// checks the full recovery sequence: guests on the crashed module get
// reset notifications, the engine's mapping table is cleaned, the peer
// connection dies (the rebooted stack answers stale segments with RST),
// the module reboots with its original network identity, and a fresh
// connection over the same module works end to end with no leaked
// shared-memory chunks.
func TestNSMCrashRestart(t *testing.T) {
	c := newCluster(t, nil)
	vma, vmb := c.nkPair(t, "cubic", "cubic")

	srvG, cliG := vmb.Guest, vma.Guest
	lfd := srvG.Socket(guestlib.Callbacks{})
	if err := srvG.Listen(lfd, 80, 16); err != nil {
		t.Fatal(err)
	}

	var estErr error = errSentinel
	var cliCloseErr error = errSentinel
	cfd := cliG.Socket(guestlib.Callbacks{
		OnEstablished: func(err error) { estErr = err },
		OnClose:       func(err error) { cliCloseErr = err },
	})
	if err := cliG.Connect(cfd, ipVMB, 80); err != nil {
		t.Fatal(err)
	}
	c.loop.RunFor(200 * time.Millisecond)
	if estErr != nil {
		t.Fatalf("OnEstablished: %v", estErr)
	}
	afd, ok := srvG.Accept(lfd)
	if !ok {
		t.Fatal("server never accepted")
	}
	var srvCloseErr error = errSentinel
	srvG.SetCallbacks(afd, guestlib.Callbacks{
		OnClose: func(err error) { srvCloseErr = err },
	})

	// Put data in flight so the crash finds live state to discard.
	if n := cliG.Send(cfd, bytes.Repeat([]byte("x"), 8<<10)); n == 0 {
		t.Fatal("Send pushed nothing")
	}
	c.loop.RunFor(100 * time.Millisecond)
	if c.h2.Engine.Mappings() == 0 {
		t.Fatal("no live mapping before the crash")
	}

	// Crash + reboot the server-side module.
	c.h2.RestartNSM(vmb.NSM)
	oldStack := vmb.NSM.Stack
	c.loop.RunFor(2 * time.Second)

	st := c.h2.Engine.Stats()
	if st.NSMResets != 1 {
		t.Fatalf("NSMResets = %d, want 1", st.NSMResets)
	}
	if st.ResetConns == 0 {
		t.Fatal("engine reset no connections")
	}
	if srvCloseErr == errSentinel || srvCloseErr == nil {
		t.Fatalf("server guest OnClose = %v, want a reset error", srvCloseErr)
	}
	// The idle client conn only learns of the crash when it next
	// transmits: the rebooted stack answers the stale segment with RST.
	cliG.Send(cfd, []byte("probe"))
	c.loop.RunFor(time.Second)
	if cliCloseErr == errSentinel || cliCloseErr == nil {
		t.Fatalf("client OnClose = %v, want an error (stale conn must die)", cliCloseErr)
	}
	if c.h2.Engine.Mappings() != 0 {
		t.Fatalf("h2 mappings = %d after reset, want 0", c.h2.Engine.Mappings())
	}
	if vmb.NSM.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", vmb.NSM.Restarts)
	}
	if vmb.NSM.Stack == oldStack || !oldStack.Dead() || vmb.NSM.Stack.Dead() {
		t.Fatal("module did not come back with a fresh live stack")
	}

	// The rebooted module serves new connections under the same IP.
	lfd2 := srvG.Socket(guestlib.Callbacks{})
	if err := srvG.Listen(lfd2, 80, 16); err != nil {
		t.Fatal(err)
	}
	estErr = errSentinel
	cfd2 := cliG.Socket(guestlib.Callbacks{
		OnEstablished: func(err error) { estErr = err },
	})
	if err := cliG.Connect(cfd2, ipVMB, 80); err != nil {
		t.Fatal(err)
	}
	c.loop.RunFor(500 * time.Millisecond)
	if estErr != nil {
		t.Fatalf("post-reboot OnEstablished: %v", estErr)
	}
	afd2, ok := srvG.Accept(lfd2)
	if !ok {
		t.Fatal("rebooted module never accepted")
	}
	msg := []byte("alive again")
	cliG.Send(cfd2, msg)
	c.loop.RunFor(200 * time.Millisecond)
	buf := make([]byte, 64)
	if n, _ := srvG.Recv(afd2, buf); !bytes.Equal(buf[:n], msg) {
		t.Fatalf("post-reboot transfer got %q", buf[:n])
	}

	// Quiesce and reconcile: no chunk leaks in either channel.
	cliG.Close(cfd2)
	srvG.Close(afd2)
	c.loop.RunFor(2 * time.Second)
	for i, vm := range []*VM{vma, vmb} {
		for _, pair := range vm.Guest.Pairs() {
			if pair.Pages.FreeCount() != pair.Pages.Chunks() {
				t.Fatalf("vm %d leaked chunks: free %d of %d",
					i, pair.Pages.FreeCount(), pair.Pages.Chunks())
			}
		}
	}
}

// TestNSMCrashIsIsolated checks the blast radius: a module crash must
// not disturb connections of VMs on other modules of the same host.
func TestNSMCrashIsIsolated(t *testing.T) {
	c := newCluster(t, nil)
	vma, vmb := c.nkPair(t, "cubic", "cubic")

	srvG, cliG := vmb.Guest, vma.Guest
	lfd := srvG.Socket(guestlib.Callbacks{})
	if err := srvG.Listen(lfd, 80, 16); err != nil {
		t.Fatal(err)
	}
	var estErr error = errSentinel
	closed := false
	cfd := cliG.Socket(guestlib.Callbacks{
		OnEstablished: func(err error) { estErr = err },
		OnClose:       func(error) { closed = true },
	})
	cliG.Connect(cfd, ipVMB, 80)
	c.loop.RunFor(200 * time.Millisecond)
	if estErr != nil {
		t.Fatalf("OnEstablished: %v", estErr)
	}
	afd, _ := srvG.Accept(lfd)

	// Boot and crash an unrelated module on h2.
	other, err := c.h2.CreateVM(VMConfig{
		Name: "other", IP: ipv4.Addr{10, 0, 2, 9}, Mode: ModeNetKernel,
		NSM: moduleNSM("cubic"),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.loop.RunFor(50 * time.Millisecond)
	c.h2.RestartNSM(other.NSM)
	c.loop.RunFor(time.Second)

	if closed {
		t.Fatal("crash of an unrelated NSM closed a bystander connection")
	}
	msg := []byte("still here")
	cliG.Send(cfd, msg)
	c.loop.RunFor(200 * time.Millisecond)
	buf := make([]byte, 64)
	if n, _ := srvG.Recv(afd, buf); !bytes.Equal(buf[:n], msg) {
		t.Fatalf("bystander transfer got %q", buf[:n])
	}
	if c.h2.Engine.Stats().NSMResets != 1 {
		t.Fatalf("NSMResets = %d, want 1", c.h2.Engine.Stats().NSMResets)
	}
}
