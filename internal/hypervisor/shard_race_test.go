package hypervisor

import (
	"sync"
	"testing"
	"time"

	"netkernel/internal/guestlib"
)

// TestShardTablesConcurrentWithChurn is the -race gate for the sharded
// state: while the event loop churns connections — concurrent accepts,
// closes, and RSS steering across a 4-shard datapath — a monitoring
// goroutine hammers every cross-goroutine reader of the sharded
// structures: the engine's per-shard fd↔cID mappings (Mappings,
// CheckFlowAffinity), the NSM stacks' sharded connection tables
// (ConnCount, ShardConnCount), and the per-layer stats surfaces. All of
// those take the per-shard mutexes or read atomics; a bare map or
// counter read anywhere in the shard plumbing fails under `go test
// -race`.
func TestShardTablesConcurrentWithChurn(t *testing.T) {
	c := newCluster(t, func(cfg *HostConfig) { cfg.Shards = 4 })
	vma, vmb := c.nkPair(t, "cubic", "cubic")

	// Echo-close server: read one message, echo it, close — every
	// connection exercises accept, steer, and teardown.
	srv := vmb.Guest
	lfd := srv.Socket(guestlib.Callbacks{})
	srv.SetCallbacks(lfd, guestlib.Callbacks{OnAcceptable: func() {
		for {
			fd, ok := srv.Accept(lfd)
			if !ok {
				return
			}
			buf := make([]byte, 4096)
			srv.SetCallbacks(fd, guestlib.Callbacks{OnReadable: func() {
				n, _ := srv.Recv(fd, buf)
				if n > 0 {
					srv.Send(fd, buf[:n])
					srv.Close(fd)
				}
			}})
		}
	}})
	if err := srv.Listen(lfd, 80, 64); err != nil {
		t.Fatal(err)
	}

	// Client: keep 16 connection slots busy; every closed connection
	// immediately respawns, so the mapping and conn tables see constant
	// insert/delete on all shards.
	const slots = 16
	cli := vma.Guest
	completed := 0
	var spawn func()
	spawn = func() {
		var fd int32
		fd = cli.Socket(guestlib.Callbacks{
			OnEstablished: func(err error) {
				if err != nil {
					return
				}
				cli.Send(fd, []byte("ping"))
			},
			OnReadable: func() {
				buf := make([]byte, 64)
				_, eof := cli.Recv(fd, buf)
				if eof {
					cli.Close(fd)
				}
			},
			OnClose: func(error) {
				completed++
				spawn()
			},
		})
		cli.Connect(fd, ipVMB, 80)
	}
	for i := 0; i < slots; i++ {
		spawn()
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			for _, h := range []*Host{c.h1, c.h2} {
				_ = h.Engine.Mappings()
				if err := h.Engine.CheckFlowAffinity(); err != nil {
					t.Errorf("flow affinity violated mid-churn: %v", err)
					return
				}
			}
			for _, vm := range []*VM{vma, vmb} {
				for _, n := range vm.NSMs {
					total := 0
					for i := 0; i < n.Stack.RxShards(); i++ {
						total += n.Stack.ShardConnCount(i)
					}
					if all := n.Stack.ConnCount(); total > all+slots {
						// Shard sums and the total are separate lock
						// acquisitions, so they may skew by in-flight
						// churn — but never by more than the live slots.
						t.Errorf("shard counts tore: sum %d vs total %d", total, all)
						return
					}
				}
				if rep := vm.CopyReport(); rep.Sub(CopyReport{}) != rep {
					t.Error("CopyReport not self-consistent")
					return
				}
				for _, svc := range vm.Services {
					_ = svc.Stats()
				}
			}
		}
	}()

	// ~150 µs of virtual time per churn round means a few ms of virtual
	// time already yields hundreds of accept/steer/close cycles; short
	// chunks keep the wall cost down while the wall-clock monitor
	// interleaves between them.
	for i := 0; i < 10; i++ {
		c.loop.RunFor(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if completed < 4*slots {
		t.Fatalf("only %d connections completed; churn exercised too little", completed)
	}
	if err := c.h2.Engine.CheckFlowAffinity(); err != nil {
		t.Fatal(err)
	}
	// 16 live slots hashed over 4 shards: the server conn table must
	// actually have spread (shard 0 alone would mean steering is dead).
	spread := 0
	for i := 0; i < 4; i++ {
		if vmb.NSM.Stack.ShardConnCount(i) > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Errorf("server connections landed on %d of 4 shards; RSS steering looks broken", spread)
	}
}
