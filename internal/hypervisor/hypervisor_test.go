package hypervisor

import (
	"bytes"
	"testing"
	"time"

	"netkernel/internal/guestlib"
	"netkernel/internal/netsim"
	"netkernel/internal/nqe"
	"netkernel/internal/proto/ipv4"
	"netkernel/internal/proto/tcp"
	"netkernel/internal/sim"
	"netkernel/internal/stack"
)

var (
	ipVMA = ipv4.Addr{10, 0, 1, 1}
	ipVMB = ipv4.Addr{10, 0, 2, 1}
)

// cluster is two hosts joined back to back, the paper's testbed.
type cluster struct {
	loop   *sim.Loop
	h1, h2 *Host
}

func newCluster(t *testing.T, mutate func(cfg *HostConfig)) *cluster {
	t.Helper()
	loop := sim.NewLoop()
	rng := sim.NewRNG(99)
	mk := func(name string, id uint8) *Host {
		cfg := HostConfig{
			Name: name, Clock: loop, RNG: sim.NewRNG(uint64(id)),
			HostID: id, Cores: 8,
			MinRTO: 20 * time.Millisecond, MSL: 50 * time.Millisecond,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		return NewHost(cfg)
	}
	h1 := mk("host1", 1)
	h2 := mk("host2", 2)
	link := netsim.Testbed40G()
	l12, l21 := netsim.Duplex(loop, rng, link, h1.NIC, h2.NIC)
	h1.NIC.AttachWire(l12)
	h2.NIC.AttachWire(l21)
	return &cluster{loop: loop, h1: h1, h2: h2}
}

func moduleNSM(cc string) NSMSpec { return NSMSpec{Form: FormModule, CC: cc} }

// nkPair creates one NetKernel VM on each host and returns them after
// the NSMs have booted.
func (c *cluster) nkPair(t *testing.T, ccA, ccB string) (*VM, *VM) {
	t.Helper()
	vma, err := c.h1.CreateVM(VMConfig{Name: "vma", IP: ipVMA, Mode: ModeNetKernel, NSM: moduleNSM(ccA)})
	if err != nil {
		t.Fatal(err)
	}
	vmb, err := c.h2.CreateVM(VMConfig{Name: "vmb", IP: ipVMB, Mode: ModeNetKernel, NSM: moduleNSM(ccB)})
	if err != nil {
		t.Fatal(err)
	}
	c.loop.RunFor(50 * time.Millisecond) // module boot time
	return vma, vmb
}

func TestNetKernelSocketLifecycle(t *testing.T) {
	c := newCluster(t, nil)
	vma, vmb := c.nkPair(t, "cubic", "cubic")

	// Server on vmb.
	srvG := vmb.Guest
	var acceptedFD int32 = -1
	lfd := srvG.Socket(guestlib.Callbacks{OnAcceptable: func() {}})
	if err := srvG.Listen(lfd, 80, 16); err != nil {
		t.Fatal(err)
	}

	// Client on vma.
	cliG := vma.Guest
	var estErr error = errSentinel
	cfd := cliG.Socket(guestlib.Callbacks{
		OnEstablished: func(err error) { estErr = err },
	})
	if err := cliG.Connect(cfd, ipVMB, 80); err != nil {
		t.Fatal(err)
	}
	c.loop.RunFor(500 * time.Millisecond)

	if estErr != nil {
		t.Fatalf("OnEstablished: %v", estErr)
	}
	fd, ok := srvG.Accept(lfd)
	if !ok {
		t.Fatal("server never got an acceptable connection")
	}
	acceptedFD = fd

	// Data client → server.
	msg := []byte("hello through the network stack service")
	if n := cliG.Send(cfd, msg); n != len(msg) {
		t.Fatalf("Send = %d", n)
	}
	c.loop.RunFor(200 * time.Millisecond)
	buf := make([]byte, 1024)
	n, _ := srvG.Recv(acceptedFD, buf)
	if !bytes.Equal(buf[:n], msg) {
		t.Fatalf("server received %q", buf[:n])
	}

	// Echo server → client.
	srvG.Send(acceptedFD, buf[:n])
	c.loop.RunFor(200 * time.Millisecond)
	m, _ := cliG.Recv(cfd, buf)
	if !bytes.Equal(buf[:m], msg) {
		t.Fatalf("client received %q", buf[:m])
	}

	// Close propagates as EOF.
	cliG.Close(cfd)
	c.loop.RunFor(300 * time.Millisecond)
	_, eof := srvG.Recv(acceptedFD, buf)
	if !eof {
		t.Fatal("server never saw EOF after client close")
	}
}

var errSentinel = &sentinelError{}

type sentinelError struct{}

func (*sentinelError) Error() string { return "sentinel" }

func TestNetKernelBulkTransfer(t *testing.T) {
	c := newCluster(t, nil)
	vma, vmb := c.nkPair(t, "cubic", "cubic")

	lfd := vmb.Guest.Socket(guestlib.Callbacks{})
	vmb.Guest.Listen(lfd, 9000, 4)
	cfd := vma.Guest.Socket(guestlib.Callbacks{})
	vma.Guest.Connect(cfd, ipVMB, 9000)
	c.loop.RunFor(200 * time.Millisecond)
	sfd, ok := vmb.Guest.Accept(lfd)
	if !ok {
		t.Fatal("accept failed")
	}

	payload := make([]byte, 4<<20)
	rng := sim.NewRNG(5)
	for i := range payload {
		payload[i] = byte(rng.Uint64())
	}
	var got bytes.Buffer
	sent := 0
	buf := make([]byte, 256<<10)
	for iter := 0; iter < 20000 && got.Len() < len(payload); iter++ {
		if sent < len(payload) {
			sent += vma.Guest.Send(cfd, payload[sent:])
		}
		c.loop.RunFor(time.Millisecond)
		for {
			n, _ := vmb.Guest.Recv(sfd, buf)
			if n == 0 {
				break
			}
			got.Write(buf[:n])
		}
	}
	if got.Len() != len(payload) {
		t.Fatalf("transferred %d of %d", got.Len(), len(payload))
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatal("bulk payload corrupted through the NetKernel path")
	}
}

func TestWindowsGuestUsesBBRNSM(t *testing.T) {
	// The §4.3 flexibility claim: a Windows VM (kernel C-TCP) sends
	// with BBR because the NSM runs BBR.
	c := newCluster(t, nil)
	vma, err := c.h1.CreateVM(VMConfig{
		Name: "win", Profile: guestlib.ProfileWindows,
		IP: ipVMA, Mode: ModeNetKernel, NSM: moduleNSM("bbr"),
	})
	if err != nil {
		t.Fatal(err)
	}
	vmb, _ := c.h2.CreateVM(VMConfig{Name: "srv", IP: ipVMB, Mode: ModeNetKernel, NSM: moduleNSM("cubic")})
	c.loop.RunFor(50 * time.Millisecond)

	lfd := vmb.Guest.Socket(guestlib.Callbacks{})
	vmb.Guest.Listen(lfd, 80, 4)
	cfd := vma.Guest.Socket(guestlib.Callbacks{})
	vma.Guest.Connect(cfd, ipVMB, 80)
	c.loop.RunFor(200 * time.Millisecond)

	// Inspect the NSM stack's live connection: it must run BBR even
	// though the guest is a Windows profile.
	found := ""
	vma.NSM.Stack.Conns(func(conn *tcp.Conn) { found = conn.CongestionControl().Name() })
	if found != "bbr" {
		t.Fatalf("NSM connection runs %q, want bbr", found)
	}
	if vma.Profile.DefaultCC() != "ctcp" {
		t.Fatal("Windows profile default should be ctcp")
	}
}

func TestLegacyVMPath(t *testing.T) {
	c := newCluster(t, nil)
	vma, err := c.h1.CreateVM(VMConfig{Name: "l1", IP: ipVMA, Mode: ModeLegacy, Profile: guestlib.ProfileLinux})
	if err != nil {
		t.Fatal(err)
	}
	vmb, err := c.h2.CreateVM(VMConfig{Name: "l2", IP: ipVMB, Mode: ModeLegacy, Profile: guestlib.ProfileWindows})
	if err != nil {
		t.Fatal(err)
	}
	if vma.Legacy == nil || vmb.Legacy == nil {
		t.Fatal("legacy VMs missing in-guest stacks")
	}

	l, err := vmb.Legacy.Listen(80, 4, stack.SocketOptions{})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := vma.Legacy.Dial(tcp.AddrPort{Addr: ipVMB, Port: 80}, stack.SocketOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c.loop.RunFor(200 * time.Millisecond)
	srv, ok := l.Accept()
	if !ok {
		t.Fatal("legacy accept failed")
	}
	// The Windows legacy guest runs C-TCP in-kernel.
	if srv.CongestionControl().Name() != "ctcp" {
		t.Fatalf("windows legacy stack runs %q", srv.CongestionControl().Name())
	}
	if conn.CongestionControl().Name() != "cubic" {
		t.Fatalf("linux legacy stack runs %q", conn.CongestionControl().Name())
	}
}

func TestNetKernelTalksToLegacy(t *testing.T) {
	c := newCluster(t, nil)
	vma, err := c.h1.CreateVM(VMConfig{Name: "nk", IP: ipVMA, Mode: ModeNetKernel, NSM: moduleNSM("bbr")})
	if err != nil {
		t.Fatal(err)
	}
	vmb, err := c.h2.CreateVM(VMConfig{Name: "legacy", IP: ipVMB, Mode: ModeLegacy})
	if err != nil {
		t.Fatal(err)
	}
	c.loop.RunFor(50 * time.Millisecond)

	vmb.Legacy.Listen(80, 4, stack.SocketOptions{})
	var est error = errSentinel
	cfd := vma.Guest.Socket(guestlib.Callbacks{OnEstablished: func(err error) { est = err }})
	vma.Guest.Connect(cfd, ipVMB, 80)
	c.loop.RunFor(300 * time.Millisecond)
	if est != nil {
		t.Fatalf("NetKernel→legacy connect: %v", est)
	}
}

func TestNSMBootGatesService(t *testing.T) {
	c := newCluster(t, nil)
	// FormContainer boots in 300 ms.
	vma, _ := c.h1.CreateVM(VMConfig{Name: "a", IP: ipVMA, Mode: ModeNetKernel, NSM: NSMSpec{Form: FormContainer, CC: "cubic"}})
	vmb, _ := c.h2.CreateVM(VMConfig{Name: "b", IP: ipVMB, Mode: ModeNetKernel, NSM: NSMSpec{Form: FormContainer, CC: "cubic"}})

	lfd := vmb.Guest.Socket(guestlib.Callbacks{})
	vmb.Guest.Listen(lfd, 80, 4)
	var est error = errSentinel
	cfd := vma.Guest.Socket(guestlib.Callbacks{OnEstablished: func(err error) { est = err }})
	vma.Guest.Connect(cfd, ipVMB, 80)

	// Before boot completes nothing is established.
	c.loop.RunFor(100 * time.Millisecond)
	if est != errSentinel {
		t.Fatal("connection progressed before the NSM booted")
	}
	c.loop.RunFor(2 * time.Second)
	if est != nil {
		t.Fatalf("connection after boot: %v", est)
	}
}

func TestMultiplexingSharedNSM(t *testing.T) {
	// §2.1: one NSM serving multiple tenant VMs.
	c := newCluster(t, nil)
	vm1, err := c.h1.CreateVM(VMConfig{Name: "t1", IP: ipVMA, Mode: ModeNetKernel, NSM: moduleNSM("cubic")})
	if err != nil {
		t.Fatal(err)
	}
	vm2, err := c.h1.CreateVM(VMConfig{Name: "t2", IP: ipVMA, Mode: ModeNetKernel, NSM: NSMSpec{ShareWith: vm1.NSM}})
	if err != nil {
		t.Fatal(err)
	}
	if vm1.NSM != vm2.NSM {
		t.Fatal("VMs did not share the NSM")
	}
	if vm1.NSM.Tenants() != 2 {
		t.Fatalf("Tenants = %d", vm1.NSM.Tenants())
	}
	if c.h1.NSMs() != 1 {
		t.Fatalf("host has %d NSMs, want 1", c.h1.NSMs())
	}

	// Both tenants can use the shared module concurrently.
	vmb, _ := c.h2.CreateVM(VMConfig{Name: "srv", IP: ipVMB, Mode: ModeNetKernel, NSM: moduleNSM("cubic")})
	c.loop.RunFor(50 * time.Millisecond)
	lfd := vmb.Guest.Socket(guestlib.Callbacks{})
	vmb.Guest.Listen(lfd, 80, 16)

	est := map[string]error{"t1": errSentinel, "t2": errSentinel}
	for name, g := range map[string]*guestlib.GuestLib{"t1": vm1.Guest, "t2": vm2.Guest} {
		name := name
		fd := g.Socket(guestlib.Callbacks{OnEstablished: func(err error) { est[name] = err }})
		g.Connect(fd, ipVMB, 80)
	}
	c.loop.RunFor(500 * time.Millisecond)
	if est["t1"] != nil || est["t2"] != nil {
		t.Fatalf("multiplexed connects: %v / %v", est["t1"], est["t2"])
	}
}

func TestSRIOVBypass(t *testing.T) {
	c := newCluster(t, nil)
	vma, err := c.h1.CreateVM(VMConfig{Name: "a", IP: ipVMA, Mode: ModeNetKernel,
		NSM: NSMSpec{Form: FormModule, CC: "cubic", SRIOV: true}})
	if err != nil {
		t.Fatal(err)
	}
	vmb, _ := c.h2.CreateVM(VMConfig{Name: "b", IP: ipVMB, Mode: ModeNetKernel,
		NSM: NSMSpec{Form: FormModule, CC: "cubic", SRIOV: true}})
	c.loop.RunFor(50 * time.Millisecond)

	if len(c.h1.NIC.VFs()) != 1 {
		t.Fatalf("host1 has %d VFs, want 1", len(c.h1.NIC.VFs()))
	}
	lfd := vmb.Guest.Socket(guestlib.Callbacks{})
	vmb.Guest.Listen(lfd, 80, 4)
	var est error = errSentinel
	cfd := vma.Guest.Socket(guestlib.Callbacks{OnEstablished: func(err error) { est = err }})
	vma.Guest.Connect(cfd, ipVMB, 80)
	c.loop.RunFor(300 * time.Millisecond)
	if est != nil {
		t.Fatalf("SR-IOV path connect: %v", est)
	}
	// Traffic bypassed the host switch: it never forwarded the flow.
	if c.h1.Switch.Stats().Forwarded > 0 {
		t.Fatalf("SR-IOV traffic crossed the vSwitch (%d frames)", c.h1.Switch.Stats().Forwarded)
	}
}

func TestEngineRejectsUnknownFD(t *testing.T) {
	c := newCluster(t, nil)
	vma, _ := c.h1.CreateVM(VMConfig{Name: "a", IP: ipVMA, Mode: ModeNetKernel, NSM: moduleNSM("cubic")})
	_ = vma
	c.loop.RunFor(50 * time.Millisecond)

	// A buggy or malicious guest writes a job for a descriptor the
	// CoreEngine never issued; the engine must reject it and answer
	// with an error completion instead of corrupting the mapping table.
	for _, ep := range c.h1.Engine.pairs {
		bogus := nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM, VMID: ep.vmID, FD: 31337, DataLen: 64}
		ep.ch.VMJob.Push(&bogus)
		ep.ch.KickEngineVM(0)
	}
	c.loop.RunFor(50 * time.Millisecond)
	if c.h1.Engine.Stats().BadElements == 0 {
		t.Fatal("engine accepted an unmapped fd")
	}
}

func TestEngineRejectsWrongVMID(t *testing.T) {
	c := newCluster(t, nil)
	c.h1.CreateVM(VMConfig{Name: "a", IP: ipVMA, Mode: ModeNetKernel, NSM: moduleNSM("cubic")})
	c.loop.RunFor(50 * time.Millisecond)
	// Spoofed VM identity in the element.
	for _, ep := range c.h1.Engine.pairs {
		bogus := nqe.Element{Op: nqe.OpSocket, Source: nqe.FromVM, VMID: ep.vmID + 77, FD: 3}
		ep.ch.VMJob.Push(&bogus)
		ep.ch.KickEngineVM(0)
	}
	c.loop.RunFor(50 * time.Millisecond)
	if c.h1.Engine.Stats().BadElements == 0 {
		t.Fatal("engine accepted a spoofed VM ID")
	}
}

func TestFormProfilesOrdering(t *testing.T) {
	vm, uni, ct, mod := FormVM.Profile(), FormUnikernel.Profile(), FormContainer.Profile(), FormModule.Profile()
	if !(mod.BootTime < uni.BootTime && uni.BootTime < vm.BootTime) {
		t.Fatal("boot times not ordered module < unikernel < vm")
	}
	if !(mod.NotifyLatency < ct.NotifyLatency && ct.NotifyLatency < vm.NotifyLatency) {
		t.Fatal("notify latency not ordered module < container < vm")
	}
	if !(mod.MemoryMB < ct.MemoryMB && ct.MemoryMB < vm.MemoryMB) {
		t.Fatal("memory not ordered")
	}
	if FormVM.String() != "vm" || FormModule.String() != "module" {
		t.Fatal("form names broken")
	}
}

func TestEngineStatsCount(t *testing.T) {
	c := newCluster(t, nil)
	vma, vmb := c.nkPair(t, "cubic", "cubic")
	lfd := vmb.Guest.Socket(guestlib.Callbacks{})
	vmb.Guest.Listen(lfd, 80, 4)
	cfd := vma.Guest.Socket(guestlib.Callbacks{})
	vma.Guest.Connect(cfd, ipVMB, 80)
	c.loop.RunFor(300 * time.Millisecond)
	st := c.h1.Engine.Stats()
	if st.NqesVMToNSM == 0 || st.NqesNSMToVM == 0 || st.Translated == 0 {
		t.Fatalf("engine stats empty: %+v", st)
	}
	if c.h1.Engine.Pairs() != 1 {
		t.Fatalf("Pairs = %d", c.h1.Engine.Pairs())
	}
}
