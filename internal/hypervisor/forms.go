// Package hypervisor models the provider side of NetKernel: hosts with
// physical NICs, virtual switches and CPU cores; tenant VMs (legacy or
// NetKernel mode); Network Stack Modules in their §5 forms (VM,
// container, hypervisor module); and the CoreEngine daemon that boots
// NSMs and shuttles nqes between GuestLib and ServiceLib.
package hypervisor

import "time"

// NSMForm is the realization of a Network Stack Module. §5 "NSM form":
// "They may be (1) full-fledged VMs with a monolithic kernel … (2)
// lightweight unikernel-based VMs … or (3) even containers or modules
// running on the hypervisor. Each choice implies vastly different
// tradeoffs."
type NSMForm int

// Forms.
const (
	// FormVM is the prototype's choice: a full KVM VM (1 core, 1 GB in
	// §4.1). Most flexible and best isolated; heaviest.
	FormVM NSMForm = iota
	// FormUnikernel is a minimal library-OS VM.
	FormUnikernel
	// FormContainer is a namespaced process on the host.
	FormContainer
	// FormModule runs inside the hypervisor itself: cheapest, weakest
	// isolation.
	FormModule
)

func (f NSMForm) String() string {
	return [...]string{"vm", "unikernel", "container", "module"}[f]
}

// FormProfile quantifies a form's tradeoffs. The numbers are
// representative of the class, not measurements: a full VM boots in
// seconds and pays VM-exit-scale notification costs, a container in
// hundreds of milliseconds with cheaper IPC, a hypervisor module is
// nearly free but shares the hypervisor's fault domain.
type FormProfile struct {
	// BootTime is how long after CreateVM the NSM serves its queues.
	BootTime time.Duration
	// NotifyLatency is the one-way doorbell latency between the
	// guest/NSM and the CoreEngine.
	NotifyLatency time.Duration
	// MemoryMB is the module's resident footprint.
	MemoryMB int
	// DedicatedCores is the default core reservation.
	DedicatedCores int
	// Isolation grades the fault/security containment.
	Isolation string
}

// Profile returns the form's default profile. The prototype's NSM (a
// KVM VM with 1 core and 1 GB RAM, §4.1) is FormVM.
func (f NSMForm) Profile() FormProfile {
	switch f {
	case FormUnikernel:
		return FormProfile{
			BootTime:       150 * time.Millisecond,
			NotifyLatency:  2 * time.Microsecond,
			MemoryMB:       64,
			DedicatedCores: 1,
			Isolation:      "hardware (minimal TCB)",
		}
	case FormContainer:
		return FormProfile{
			BootTime:       300 * time.Millisecond,
			NotifyLatency:  1 * time.Microsecond,
			MemoryMB:       128,
			DedicatedCores: 1,
			Isolation:      "namespace",
		}
	case FormModule:
		return FormProfile{
			BootTime:       10 * time.Millisecond,
			NotifyLatency:  300 * time.Nanosecond,
			MemoryMB:       32,
			DedicatedCores: 0, // shares hypervisor cores
			Isolation:      "none (hypervisor address space)",
		}
	default: // FormVM
		return FormProfile{
			BootTime:       3 * time.Second,
			NotifyLatency:  3 * time.Microsecond,
			MemoryMB:       1024,
			DedicatedCores: 1,
			Isolation:      "hardware",
		}
	}
}
