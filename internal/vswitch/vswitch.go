// Package vswitch implements the overlay switch of Figure 2: a
// MAC-learning switch connecting tenant vNICs, NSM ports, and the
// physical NIC on one host.
//
// Two modes mirror the paper's deployment options: a software overlay
// switch (OVS/Hyper-V-style, with a per-frame processing delay) and an
// embedded hardware switch (SR-IOV path, zero switching cost — traffic
// "can bypass the host to the physical NIC", §3.1).
package vswitch

import (
	"time"

	"netkernel/internal/netsim"
	"netkernel/internal/sim"
)

// Mode selects the switching substrate.
type Mode int

// Modes.
const (
	// Software is a host software switch (vSwitch) with per-frame cost.
	Software Mode = iota
	// Embedded is a hardware embedded switch (SR-IOV), zero per-frame
	// cost.
	Embedded
)

func (m Mode) String() string {
	if m == Embedded {
		return "embedded"
	}
	return "software"
}

// Config shapes a switch.
type Config struct {
	Mode Mode
	// PerFrameDelay is the software-switch processing latency per
	// frame (ignored in Embedded mode). Default 1 µs.
	PerFrameDelay time.Duration
	// AgingTime bounds how long a learned MAC stays valid. Default 60 s.
	AgingTime time.Duration
}

// Stats counts switch activity. Every frame entering the switch is
// accounted exactly once: RxFrames == Forwarded + Flooded + Dropped.
type Stats struct {
	// RxFrames counts frames entering the switch from any port.
	RxFrames  uint64
	Forwarded uint64
	Flooded   uint64
	// Dropped counts frames discarded without forwarding: runts
	// shorter than an Ethernet header, and frames whose learned
	// destination is the ingress port itself (hairpin suppression).
	Dropped uint64
	Learned uint64
	// AgedOut counts FDB entries evicted because a lookup found them
	// expired.
	AgedOut uint64
}

// Switch is a MAC-learning switch.
type Switch struct {
	clock sim.Clock
	cfg   Config
	ports []*Port
	fdb   map[netsim.MAC]fdbEntry
	stats Stats
}

type fdbEntry struct {
	port    *Port
	expires sim.Time
}

// New builds a switch.
func New(clock sim.Clock, cfg Config) *Switch {
	if cfg.PerFrameDelay <= 0 {
		cfg.PerFrameDelay = time.Microsecond
	}
	if cfg.AgingTime <= 0 {
		cfg.AgingTime = 60 * time.Second
	}
	return &Switch{clock: clock, cfg: cfg, fdb: make(map[netsim.MAC]fdbEntry)}
}

// Stats returns a copy of the counters.
func (s *Switch) Stats() Stats { return s.stats }

// Mode returns the switching mode.
func (s *Switch) Mode() Mode { return s.cfg.Mode }

// Port is one switch port. Frames arriving from the attached device
// enter through Deliver; frames leaving toward the device go to out.
type Port struct {
	sw  *Switch
	idx int
	out netsim.Port
}

// AddPort attaches a device (NIC, VF handler, stack interface…) whose
// inbound side is out.
func (s *Switch) AddPort(out netsim.Port) *Port {
	p := &Port{sw: s, idx: len(s.ports), out: out}
	s.ports = append(s.ports, p)
	return p
}

// Ports returns the port count.
func (s *Switch) Ports() int { return len(s.ports) }

// Deliver implements netsim.Port: a frame entering the switch from this
// port's device.
func (p *Port) Deliver(frame []byte) {
	sw := p.sw
	sw.stats.RxFrames++
	if len(frame) < 12 {
		sw.stats.Dropped++
		return
	}
	var dst, src netsim.MAC
	copy(dst[:], frame[0:6])
	copy(src[:], frame[6:12])

	// Learn the source.
	if !src.IsBroadcast() {
		if old, ok := sw.fdb[src]; !ok || old.port != p {
			sw.stats.Learned++
		}
		sw.fdb[src] = fdbEntry{port: p, expires: sw.clock.Now().Add(sw.cfg.AgingTime)}
	}

	forward := func() {
		if e, ok := sw.fdb[dst]; ok && !dst.IsBroadcast() {
			if sw.clock.Now() < e.expires {
				if e.port != p {
					sw.stats.Forwarded++
					e.port.out.Deliver(frame)
				} else {
					sw.stats.Dropped++ // hairpin: destination is the ingress port
				}
				return
			}
			// Expired entry: evict it and fall through to flooding.
			sw.stats.AgedOut++
			delete(sw.fdb, dst)
		}
		// Unknown or broadcast: flood to every other port.
		sw.stats.Flooded++
		for _, q := range sw.ports {
			if q == p {
				continue
			}
			c := make([]byte, len(frame))
			copy(c, frame)
			q.out.Deliver(c)
		}
	}

	if sw.cfg.Mode == Software {
		sw.clock.AfterFunc(sw.cfg.PerFrameDelay, forward)
	} else {
		forward()
	}
}
