package vswitch

// RSS-style flow steering shared by every sharded layer of the
// datapath. The journal version of the paper multiplexes many VMs onto
// multi-queue NSMs; the queue a flow lands on must be a pure function
// of the flow so that every segment — and every nqe derived from it —
// stays on one shard for the connection's lifetime. The canonical
// 4-tuple hash lives here (the vswitch is the one layer both the
// stack and the hypervisor already depend on) and is direction
// independent: the two endpoints are ordered before hashing, so a
// flow's TX and RX frames steer to the same shard.

import "netkernel/internal/proto/ipv4"

const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// TupleHash hashes a TCP/UDP 4-tuple direction-independently (FNV-1a
// over the canonically ordered endpoints). Both ends of a connection,
// and both directions of its traffic, produce the same value.
func TupleHash(aIP ipv4.Addr, aPort uint16, bIP ipv4.Addr, bPort uint16) uint32 {
	if endpointLess(bIP, bPort, aIP, aPort) {
		aIP, bIP = bIP, aIP
		aPort, bPort = bPort, aPort
	}
	h := uint32(fnvOffset32)
	h = fnvBytes(h, aIP[:])
	h = fnvPort(h, aPort)
	h = fnvBytes(h, bIP[:])
	h = fnvPort(h, bPort)
	return h
}

// PairHash hashes just the two IPs (for non-TCP/UDP traffic), with the
// same direction independence as TupleHash.
func PairHash(aIP, bIP ipv4.Addr) uint32 {
	if endpointLess(bIP, 0, aIP, 0) {
		aIP, bIP = bIP, aIP
	}
	h := uint32(fnvOffset32)
	h = fnvBytes(h, aIP[:])
	h = fnvBytes(h, bIP[:])
	return h
}

// ShardOf folds a flow hash onto one of n shards. FNV-1a's low bits
// stay correlated for correlated inputs — paired port allocators
// handing out sequential (src, dst) ports can land every flow on one
// shard when folded mod a small n — so the hash is avalanched
// (murmur3's 32-bit finalizer) before the fold.
func ShardOf(hash uint32, n int) int {
	if n <= 1 {
		return 0
	}
	hash ^= hash >> 16
	hash *= 0x85ebca6b
	hash ^= hash >> 13
	hash *= 0xc2b2ae35
	hash ^= hash >> 16
	return int(hash % uint32(n))
}

// FrameShard steers an Ethernet frame to a shard by its flow fields.
// Non-IPv4 frames (ARP) and fragments without a transport header fall
// back to shard 0 — control traffic is rare and needs no spreading.
// Because the endpoint ordering is canonical, a frame and its reply
// land on the same shard.
func FrameShard(frame []byte, n int) int {
	if n <= 1 {
		return 0
	}
	// Ethernet: ethertype at 12..14. IPv4 header follows at 14.
	if len(frame) < 34 || frame[12] != 0x08 || frame[13] != 0x00 {
		return 0
	}
	ihl := int(frame[14]&0x0f) * 4
	if ihl < 20 || len(frame) < 14+ihl {
		return 0
	}
	var src, dst ipv4.Addr
	copy(src[:], frame[26:30])
	copy(dst[:], frame[30:34])
	proto := frame[23]
	// Fragment offset nonzero → no transport header in this frame.
	fragOff := (uint16(frame[20]&0x1f)<<8 | uint16(frame[21]))
	transport := 14 + ihl
	if (proto == 6 || proto == 17) && fragOff == 0 && len(frame) >= transport+4 {
		sp := uint16(frame[transport])<<8 | uint16(frame[transport+1])
		dp := uint16(frame[transport+2])<<8 | uint16(frame[transport+3])
		return ShardOf(TupleHash(src, sp, dst, dp), n)
	}
	return ShardOf(PairHash(src, dst), n)
}

func endpointLess(aIP ipv4.Addr, aPort uint16, bIP ipv4.Addr, bPort uint16) bool {
	for i := range aIP {
		if aIP[i] != bIP[i] {
			return aIP[i] < bIP[i]
		}
	}
	return aPort < bPort
}

func fnvBytes(h uint32, b []byte) uint32 {
	for _, c := range b {
		h = (h ^ uint32(c)) * fnvPrime32
	}
	return h
}

func fnvPort(h uint32, p uint16) uint32 {
	h = (h ^ uint32(p>>8)) * fnvPrime32
	h = (h ^ uint32(p&0xff)) * fnvPrime32
	return h
}
