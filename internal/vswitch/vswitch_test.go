package vswitch

import (
	"testing"
	"time"

	"netkernel/internal/netsim"
	"netkernel/internal/sim"
)

type sink struct{ frames [][]byte }

func (s *sink) Deliver(f []byte) { s.frames = append(s.frames, f) }

func frameFromTo(src, dst netsim.MAC) []byte {
	f := make([]byte, 64)
	copy(f[0:6], dst[:])
	copy(f[6:12], src[:])
	return f
}

var (
	macA = netsim.MAC{2, 0, 0, 0, 0, 1}
	macB = netsim.MAC{2, 0, 0, 0, 0, 2}
	macC = netsim.MAC{2, 0, 0, 0, 0, 3}
)

func build(mode Mode) (*sim.Loop, *Switch, []*sink, []*Port) {
	loop := sim.NewLoop()
	sw := New(loop, Config{Mode: mode})
	sinks := []*sink{{}, {}, {}}
	var ports []*Port
	for _, s := range sinks {
		ports = append(ports, sw.AddPort(s))
	}
	return loop, sw, sinks, ports
}

func TestFloodThenLearn(t *testing.T) {
	loop, sw, sinks, ports := build(Embedded)
	// A (port 0) → B: unknown, floods to ports 1 and 2.
	ports[0].Deliver(frameFromTo(macA, macB))
	loop.Run()
	if len(sinks[1].frames) != 1 || len(sinks[2].frames) != 1 || len(sinks[0].frames) != 0 {
		t.Fatalf("flood delivery: %d/%d/%d", len(sinks[0].frames), len(sinks[1].frames), len(sinks[2].frames))
	}
	// B replies from port 1: A is now learned, unicast to port 0 only.
	ports[1].Deliver(frameFromTo(macB, macA))
	loop.Run()
	if len(sinks[0].frames) != 1 || len(sinks[2].frames) != 1 {
		t.Fatalf("reply delivery: %d/%d/%d", len(sinks[0].frames), len(sinks[1].frames), len(sinks[2].frames))
	}
	// A → B again: B learned from the reply, no flood.
	ports[0].Deliver(frameFromTo(macA, macB))
	loop.Run()
	if len(sinks[1].frames) != 2 || len(sinks[2].frames) != 1 {
		t.Fatal("switch did not learn B")
	}
	st := sw.Stats()
	if st.Learned != 2 || st.Forwarded != 2 || st.Flooded != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestBroadcastFloodsCopies(t *testing.T) {
	loop, _, sinks, ports := build(Embedded)
	ports[0].Deliver(frameFromTo(macA, netsim.Broadcast))
	loop.Run()
	if len(sinks[1].frames) != 1 || len(sinks[2].frames) != 1 {
		t.Fatal("broadcast not flooded")
	}
	sinks[1].frames[0][20] = 0xAA
	if sinks[2].frames[0][20] == 0xAA {
		t.Fatal("flooded frames share a buffer")
	}
}

func TestHairpinSuppressed(t *testing.T) {
	loop, _, sinks, ports := build(Embedded)
	ports[0].Deliver(frameFromTo(macA, macB)) // learn A on port 0
	loop.Run()
	ports[0].Deliver(frameFromTo(macB, macA)) // A reachable via ingress port
	loop.Run()
	if len(sinks[0].frames) != 0 {
		t.Fatal("frame hairpinned back out its ingress port")
	}
}

func TestSoftwareModeAddsLatency(t *testing.T) {
	loop, _, sinks, ports := build(Software)
	ports[0].Deliver(frameFromTo(macA, macB))
	if len(sinks[1].frames) != 0 {
		t.Fatal("software switch forwarded synchronously")
	}
	loop.RunFor(2 * time.Microsecond)
	if len(sinks[1].frames) != 1 {
		t.Fatal("software switch never forwarded")
	}
}

func TestEmbeddedModeIsSynchronous(t *testing.T) {
	_, _, sinks, ports := build(Embedded)
	ports[0].Deliver(frameFromTo(macA, macB))
	if len(sinks[1].frames) != 1 {
		t.Fatal("embedded switch deferred forwarding")
	}
}

func TestFDBAging(t *testing.T) {
	loop := sim.NewLoop()
	sw := New(loop, Config{Mode: Embedded, AgingTime: time.Second})
	s0, s1, s2 := &sink{}, &sink{}, &sink{}
	p0 := sw.AddPort(s0)
	sw.AddPort(s1)
	sw.AddPort(s2)
	p0.Deliver(frameFromTo(macA, macB)) // learn A
	loop.RunFor(2 * time.Second)        // age out
	// B → A: A's entry expired, must flood — s0 (A's port) still gets it,
	// but so does s2, proving the unicast entry was not used.
	sw.ports[1].Deliver(frameFromTo(macB, macA))
	loop.Run()
	if len(s0.frames) != 1 {
		t.Fatal("flood skipped the original port")
	}
	if len(s2.frames) != 2 { // one from the initial flood, one now
		t.Fatalf("expired entry still used (s2 got %d frames)", len(s2.frames))
	}
}

func TestShortFrameIgnored(t *testing.T) {
	loop, sw, _, ports := build(Embedded)
	ports[0].Deliver(make([]byte, 5))
	loop.Run()
	if sw.Stats().Flooded != 0 && sw.Stats().Forwarded != 0 {
		t.Fatal("runt frame forwarded")
	}
}

func TestModeString(t *testing.T) {
	if Software.String() != "software" || Embedded.String() != "embedded" {
		t.Fatal("Mode String broken")
	}
}

// TestStatsConservation exercises every accounting path — unicast,
// flood, runt drop, hairpin drop, aged-out eviction — and checks the
// conservation law the chaos suite relies on:
// RxFrames == Forwarded + Flooded + Dropped.
func TestStatsConservation(t *testing.T) {
	loop := sim.NewLoop()
	sw := New(loop, Config{Mode: Embedded, AgingTime: time.Second})
	sinks := []*sink{{}, {}, {}}
	var ports []*Port
	for _, s := range sinks {
		ports = append(ports, sw.AddPort(s))
	}

	ports[0].Deliver(frameFromTo(macA, macB)) // unknown dst: flood, learn A
	ports[1].Deliver(frameFromTo(macB, macA)) // known dst: unicast, learn B
	ports[0].Deliver(make([]byte, 5))         // runt: dropped
	ports[0].Deliver(frameFromTo(macC, macA)) // hairpin: A is on port 0, dropped
	loop.Run()

	st := sw.Stats()
	if st.RxFrames != 4 || st.Forwarded != 1 || st.Flooded != 1 || st.Dropped != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.RxFrames != st.Forwarded+st.Flooded+st.Dropped {
		t.Fatalf("conservation violated: %+v", st)
	}
	if st.AgedOut != 0 {
		t.Fatalf("nothing expired yet: %+v", st)
	}

	// Let the FDB expire, then address the stale entry: the lookup must
	// evict it (AgedOut) and fall back to flooding.
	loop.RunFor(2 * time.Second)
	ports[1].Deliver(frameFromTo(macB, macA))
	loop.Run()
	st = sw.Stats()
	if st.AgedOut != 1 {
		t.Fatalf("expired entry not evicted: %+v", st)
	}
	if st.Flooded != 2 {
		t.Fatalf("stale unicast entry was trusted: %+v", st)
	}
	if st.RxFrames != st.Forwarded+st.Flooded+st.Dropped {
		t.Fatalf("conservation violated after aging: %+v", st)
	}
}

// TestBroadcastNeverLearnedAsDestination: the broadcast address must
// never enter the FDB as a forwarding target, even though frames sourced
// from it would be absurd — a broadcast destination always floods.
func TestBroadcastNeverLearnedAsDestination(t *testing.T) {
	loop, sw, sinks, ports := build(Embedded)
	ports[0].Deliver(frameFromTo(macA, netsim.Broadcast))
	ports[1].Deliver(frameFromTo(macB, netsim.Broadcast))
	loop.Run()
	// Both broadcasts flood to the two other ports each.
	if len(sinks[2].frames) != 2 {
		t.Fatalf("broadcasts not flooded: %d", len(sinks[2].frames))
	}
	if sw.Stats().Flooded != 2 || sw.Stats().Forwarded != 0 {
		t.Fatalf("broadcast handled as unicast: %+v", sw.Stats())
	}
}
