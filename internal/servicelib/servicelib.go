// Package servicelib implements the NSM half of NetKernel: the library
// inside a Network Stack Module that executes GuestLib's operations
// against the module's real network stack (§3.1: "Inside the NSM, the
// ServiceLib interfaces with the network stack and GuestLib in the
// tenant VM").
//
// The prototype's two callbacks are preserved by name and role:
// NewDataCallback (nk_new_data_callback) pushes received payloads into
// the huge pages and enqueues new-data nqes; NewAcceptCallback
// (nk_new_accept_callback) harvests accepted connections and emits
// new-connection events (§4.1).
package servicelib

import (
	"sort"
	"strings"
	"time"

	"netkernel/internal/nkchan"
	"netkernel/internal/nqe"
	"netkernel/internal/proto/tcp"
	"netkernel/internal/sched"
	"netkernel/internal/shm"
	"netkernel/internal/sim"
	"netkernel/internal/stack"
	"netkernel/internal/telemetry"
	"netkernel/internal/vswitch"
)

// Config parameterizes a ServiceLib.
type Config struct {
	Clock sim.Clock
	NSMID uint32
	Pair  *nkchan.Pair
	// Stack is the network stack this module hosts.
	Stack *stack.Stack
	// CC names the congestion control this NSM offers; it is the NSM's
	// identity ("the CUBIC NSM", "the BBR NSM").
	CC string
	// RecvWindow bounds bytes pushed to the VM but not yet consumed,
	// per connection (default 1 MiB): the shm-level receive window.
	RecvWindow int
	// Shaper rate-limits this tenant's egress through the module: the
	// §2.1/§5 QoS knob ("providing QoS guarantees" when an NSM serves
	// multiple VMs). Nil means unlimited.
	Shaper sched.Shaper
	// CoalesceDelay batches receive-side data into full huge-page
	// chunks: when less than one chunk is buffered, delivery waits up
	// to this long for more. This is the nqe-level analogue of the
	// batched interrupts in §3.2 and keeps the per-event overhead off
	// the bulk datapath. Default 5 µs; negative disables coalescing.
	CoalesceDelay time.Duration
	// ReadyDelay batches readiness transitions of polled sockets
	// (DESIGN.md §11): when a socket registered via OpPollCtl becomes
	// readable/acceptable/closed, its entry is queued and the shard
	// waits up to this long for siblings before emitting one coalesced
	// OpReady. Default 2 µs; negative flushes every transition
	// immediately (one OpReady per event — the degenerate mode the
	// rpc experiment compares against).
	ReadyDelay time.Duration
	// StallRecovery, when positive, arms a virtual-time retry timer
	// whenever an emission finds its output ring full or fault-stalled.
	// The production pipeline is purely kick-driven and leaves this
	// zero; fault-injection harnesses set it so an injected stall can
	// delay emissions but never wedge the module.
	StallRecovery time.Duration
	// Metrics, when set, publishes the ServiceLib counters into the
	// host telemetry registry (e.g. "vm1.r0.svc.data_in").
	Metrics *telemetry.Scope
	// Tracer, when set and sampling, opens receive-path spans for
	// emitted events and stamps/ends send-path spans arriving in jobs.
	Tracer *telemetry.Tracer
}

// Stats is a point-in-time copy of the ServiceLib counters.
type Stats struct {
	JobsProcessed uint64
	DataIn        uint64 // bytes VM→NSM (sends)
	DataOut       uint64 // bytes NSM→VM (receives)
	Conns         uint64
	Accepts       uint64
	// TxBytesCopied and RxBytesCopied count payload bytes this layer
	// memcpy'd. On the streaming path Tx stays zero (chunks are handed
	// to the TCP conn as owned spans) and Rx counts exactly one copy
	// per byte: reassembled wire payload → huge-page chunk.
	TxBytesCopied uint64
	RxBytesCopied uint64
}

// counters is the live atomic form of Stats: management-plane readers
// (VM.CopyReport, registry snapshots) may run on another goroutine
// while the module pumps under a wall-clock domain.
type counters struct {
	jobsProcessed, dataIn, dataOut telemetry.Counter
	conns, accepts                 telemetry.Counter
	txBytesCopied, rxBytesCopied   telemetry.Counter
	// readyEvents counts OpReady elements emitted; readyIDs counts the
	// socket entries they carried. IDs per event is the NSM-side
	// coalescing ratio.
	readyEvents, readyIDs telemetry.Counter
}

func (c *counters) register(m *telemetry.Scope) {
	m.Counter("jobs_processed", &c.jobsProcessed)
	m.Counter("data_in", &c.dataIn)
	m.Counter("data_out", &c.dataOut)
	m.Counter("conns", &c.conns)
	m.Counter("accepts", &c.accepts)
	m.Counter("tx_bytes_copied", &c.txBytesCopied)
	m.Counter("rx_bytes_copied", &c.rxBytesCopied)
	m.Counter("ready_events", &c.readyEvents)
	m.Counter("ready_ids", &c.readyIDs)
}

func (c *counters) snapshot() Stats {
	return Stats{
		JobsProcessed: c.jobsProcessed.Load(),
		DataIn:        c.dataIn.Load(),
		DataOut:       c.dataOut.Load(),
		Conns:         c.conns.Load(),
		Accepts:       c.accepts.Load(),
		TxBytesCopied: c.txBytesCopied.Load(),
		RxBytesCopied: c.rxBytesCopied.Load(),
	}
}

type sendChunk struct {
	chunk shm.Chunk
	size  int
	off   int
	// trace carries the job element's span id so the span can end at
	// the stack hand-off, however long the chunk queues behind the
	// shaper or a full send buffer.
	trace uint32
}

type connState struct {
	cid uint32
	// polled marks a socket registered for coalesced readiness via
	// OpPollCtl; its transitions feed the shard's ready queue instead
	// of relying on per-event guest callbacks.
	polled bool
	// shard is the channel shard this connection is pinned to: every
	// nqe the connection ever emits or receives rides this shard's
	// rings (flow affinity). Dialed connections keep the shard their
	// OpSocket arrived on; accepted connections hash their 4-tuple.
	shard        int
	isDgram      bool
	conn         *tcp.Conn
	udp          *stack.UDPSocket // datagram sockets, set at bind
	sendQ        []sendChunk
	recvDebt     int // bytes at the VM awaiting an OpRecv credit
	eofSent      bool
	shaperWait   bool // a shaper retry timer is pending
	flushPending bool // a coalescing flush timer is pending
	// Open receive chunk: the conn's receive sink fills it directly
	// with reassembled payload (the rcvBuf bypass). Its bytes precede
	// anything later buffered in the conn's rcvBuf, so delivery paths
	// must emit it before draining the conn.
	rxChunk shm.Chunk
	rxHave  bool
	rxFill  int
}

type listenerState struct {
	cid    uint32
	shard  int // the listener socket's own shard (its control traffic)
	lst    *tcp.Listener
	polled bool
}

// readyShard is one shard's pending coalesced-readiness state: cIDs in
// first-transition order plus their accumulated masks. The map is for
// dedup only; emission order is the slice's, so runs stay seed-pure.
type readyShard struct {
	order []uint32
	mask  map[uint32]uint32
	armed bool // a ReadyDelay flush timer is pending
}

// ServiceLib is one NSM's queue pump and stack driver.
type ServiceLib struct {
	cfg       Config
	conns     map[uint32]*connState
	listeners map[uint32]*listenerState
	nextCID   uint32
	stats     counters
	// overflow holds emissions that found their ring full, one queue
	// per shard; they are flushed in order on the next pump, so a data
	// flood can delay but never lose a completion or connection event.
	overflow [][]stalledEmit
	// ready holds per-shard pending readiness of polled sockets,
	// flushed as coalesced OpReady elements (DESIGN.md §11).
	ready []readyShard
	// connPool recycles connState objects under connection churn, the
	// NSM half of the short-flow slab path.
	connPool []*connState
	// drain is the reusable job batch buffer: one pump pops whole ring
	// spans at a time instead of element by element (§3.2 "batched
	// interrupts").
	drain []nqe.Element
	// dead marks a crashed module: pumps and emissions are no-ops until
	// Rebind attaches a replacement stack.
	dead bool
	// retryArmed guards the Config.StallRecovery retry timer.
	retryArmed bool
}

type stalledEmit struct {
	kind nkchan.QueueKind
	e    nqe.Element
}

// New builds a ServiceLib and wires it to the pair's NSM-side kick.
func New(cfg Config) *ServiceLib {
	if cfg.Clock == nil || cfg.Pair == nil || cfg.Stack == nil {
		panic("servicelib: Config requires Clock, Pair, and Stack")
	}
	if cfg.RecvWindow <= 0 {
		cfg.RecvWindow = 1 << 20
	}
	if cfg.CoalesceDelay == 0 {
		cfg.CoalesceDelay = 5 * time.Microsecond
	}
	if cfg.ReadyDelay == 0 {
		cfg.ReadyDelay = 2 * time.Microsecond
	}
	cfg.Pair.EnsureShards()
	s := &ServiceLib{
		cfg:       cfg,
		conns:     make(map[uint32]*connState),
		listeners: make(map[uint32]*listenerState),
		overflow:  make([][]stalledEmit, len(cfg.Pair.Shards)),
		ready:     make([]readyShard, len(cfg.Pair.Shards)),
		drain:     make([]nqe.Element, 64),
	}
	s.stats.register(cfg.Metrics)
	cfg.Pair.KickNSM = s.pump
	return s
}

// nshards returns the channel's shard count.
func (s *ServiceLib) nshards() int { return len(s.cfg.Pair.Shards) }

// shardForConn pins an accepted connection to a shard by its 4-tuple,
// with the same canonical hash the stack's frame dispatch uses.
func (s *ServiceLib) shardForConn(conn *tcp.Conn) int {
	n := s.nshards()
	if n <= 1 {
		return 0
	}
	l, r := conn.LocalAddr(), conn.RemoteAddr()
	return vswitch.ShardOf(vswitch.TupleHash(l.Addr, l.Port, r.Addr, r.Port), n)
}

// Stats returns a copy of the counters, read atomically.
func (s *ServiceLib) Stats() Stats { return s.stats.snapshot() }

// CC returns the module's congestion-control name.
func (s *ServiceLib) CC() string { return s.cfg.CC }

func (s *ServiceLib) emit(shard int, q nkchan.QueueKind, e *nqe.Element) {
	if s.dead {
		return
	}
	if shard < 0 || shard >= s.nshards() {
		shard = 0
	}
	e.NSMID = s.cfg.NSMID
	e.Source = nqe.FromNSM
	rings := &s.cfg.Pair.Shards[shard]
	target := rings.NSMReceive
	if q == nkchan.Completion {
		target = rings.NSMCompletion
	}
	// The receive-path span opens here, the mirror of GuestLib.push:
	// sampled events carry their span id toward the VM. Completions are
	// responses to send-path spans and are not separately traced.
	if q == nkchan.Receive {
		if tr := s.cfg.Tracer; tr.Enabled() && e.Trace == 0 {
			e.Trace = tr.Start("rx:" + e.Op.String())
		}
		s.cfg.Tracer.Stamp(e.Trace, "servicelib.emit", int64(target.Len()))
	}
	if len(s.overflow[shard]) > 0 || !target.Push(e) {
		s.overflow[shard] = append(s.overflow[shard], stalledEmit{kind: q, e: *e})
		s.noteOverflow()
	}
	if s.cfg.Pair.KickEngineNSM != nil {
		s.cfg.Pair.KickEngineNSM(shard)
	}
}

// noteOverflow arms the overflow retry timer. A no-op unless
// Config.StallRecovery is set: the engine's drain pump re-kicks the
// module when it frees ring space, but an injected fault can fail a
// push with space available and nothing inbound due — the timer keeps
// the module making progress regardless.
func (s *ServiceLib) noteOverflow() {
	if s.cfg.StallRecovery <= 0 || s.retryArmed {
		return
	}
	s.retryArmed = true
	s.cfg.Clock.AfterFunc(s.cfg.StallRecovery, func() {
		s.retryArmed = false
		if s.dead {
			return
		}
		pending := false
		for shard := range s.overflow {
			s.flushOverflow(shard)
			s.cfg.Pair.Shards[shard].NSMCompletion.Flush()
			s.cfg.Pair.Shards[shard].NSMReceive.Flush()
			if len(s.overflow[shard]) > 0 {
				pending = true
			}
			if s.cfg.Pair.KickEngineNSM != nil {
				s.cfg.Pair.KickEngineNSM(shard)
			}
		}
		if pending {
			s.noteOverflow()
		}
	})
}

// emitBatch pushes a run of same-shard elements as one ring span with a
// single kick — the accept path's connection-setup batching. Elements
// that do not fit join the overflow queue like single emissions.
func (s *ServiceLib) emitBatch(shard int, q nkchan.QueueKind, es []nqe.Element) {
	if s.dead || len(es) == 0 {
		return
	}
	if shard < 0 || shard >= s.nshards() {
		shard = 0
	}
	rings := &s.cfg.Pair.Shards[shard]
	target := rings.NSMReceive
	if q == nkchan.Completion {
		target = rings.NSMCompletion
	}
	for i := range es {
		es[i].NSMID = s.cfg.NSMID
		es[i].Source = nqe.FromNSM
		if q == nkchan.Receive {
			if tr := s.cfg.Tracer; tr.Enabled() && es[i].Trace == 0 {
				es[i].Trace = tr.Start("rx:" + es[i].Op.String())
			}
			s.cfg.Tracer.Stamp(es[i].Trace, "servicelib.emit", int64(target.Len()))
		}
	}
	n := 0
	if len(s.overflow[shard]) == 0 {
		n = target.PushBatch(es)
	}
	for _, e := range es[n:] {
		s.overflow[shard] = append(s.overflow[shard], stalledEmit{kind: q, e: e})
	}
	if n < len(es) {
		s.noteOverflow()
	}
	if s.cfg.Pair.KickEngineNSM != nil {
		s.cfg.Pair.KickEngineNSM(shard)
	}
}

// queueReady records a polled socket's readiness transition on its
// shard's pending queue (deduped: a second transition before the flush
// ORs into the same entry) and schedules the coalescing flush.
func (s *ServiceLib) queueReady(shard int, cid uint32, mask uint32) {
	if s.dead {
		return
	}
	if shard < 0 || shard >= s.nshards() {
		shard = 0
	}
	rs := &s.ready[shard]
	if rs.mask == nil {
		rs.mask = make(map[uint32]uint32)
	}
	if m, ok := rs.mask[cid]; ok {
		rs.mask[cid] = m | mask
	} else {
		rs.mask[cid] = mask
		rs.order = append(rs.order, cid)
	}
	if s.cfg.ReadyDelay < 0 {
		// Degenerate per-event mode: one OpReady per transition.
		s.flushReady(shard)
		s.cfg.Pair.Shards[shard].NSMReceive.Flush()
		return
	}
	if rs.armed {
		return
	}
	rs.armed = true
	s.cfg.Clock.AfterFunc(s.cfg.ReadyDelay, func() {
		s.ready[shard].armed = false
		if s.dead {
			return
		}
		s.flushReady(shard)
		s.cfg.Pair.Shards[shard].NSMReceive.Flush()
	})
}

// flushReady drains one shard's pending readiness into coalesced
// OpReady elements: up to SmallChunkSize/ReadyEntrySize entries packed
// per small huge-page chunk, with a descriptorless single-entry form
// when only one socket is ready (no chunk round trip for the sparse
// case of exactly one). Emitted on the receive ring *after* the data
// events it announces — OpReady is deliberately not a priority op, so
// FIFO order guarantees the guest sees the data first.
func (s *ServiceLib) flushReady(shard int) {
	rs := &s.ready[shard]
	if len(rs.order) == 0 {
		return
	}
	order, masks := rs.order, rs.mask
	rs.order, rs.mask = nil, nil
	if len(order) == 1 {
		cid := order[0]
		s.stats.readyEvents.Inc()
		s.stats.readyIDs.Inc()
		s.emit(shard, nkchan.Receive, &nqe.Element{
			Op: nqe.OpReady, CID: cid, Arg0: 1, Arg1: uint64(masks[cid]),
		})
		return
	}
	perChunk := s.cfg.Pair.Pages.SmallChunkSize() / nqe.ReadyEntrySize
	if perChunk <= 0 {
		perChunk = s.cfg.Pair.ChunkSize() / nqe.ReadyEntrySize
	}
	for len(order) > 0 {
		n := len(order)
		if n > perChunk {
			n = perChunk
		}
		chunk, ok := s.cfg.Pair.Pages.AllocSized(n*nqe.ReadyEntrySize, shard)
		if !ok {
			// Pool exhausted: fall back to descriptorless singles rather
			// than dropping wakeups.
			for _, cid := range order {
				s.stats.readyEvents.Inc()
				s.stats.readyIDs.Inc()
				s.emit(shard, nkchan.Receive, &nqe.Element{
					Op: nqe.OpReady, CID: cid, Arg0: 1, Arg1: uint64(masks[cid]),
				})
			}
			return
		}
		if fit := s.cfg.Pair.Pages.SizeOf(chunk) / nqe.ReadyEntrySize; n > fit {
			n = fit
		}
		buf := s.cfg.Pair.Pages.Bytes(chunk)
		for i, cid := range order[:n] {
			nqe.PutReadyEntry(buf[i*nqe.ReadyEntrySize:], cid, masks[cid])
		}
		s.stats.readyEvents.Inc()
		s.stats.readyIDs.Add(uint64(n))
		s.emit(shard, nkchan.Receive, &nqe.Element{
			Op: nqe.OpReady, Arg0: uint64(n),
			DataOff: chunk.Offset, DataLen: uint32(n * nqe.ReadyEntrySize),
		})
		order = order[n:]
	}
}

// flushAllReady flushes every shard's pending readiness (pump tails and
// teardown paths).
func (s *ServiceLib) flushAllReady() {
	for shard := range s.ready {
		s.flushReady(shard)
	}
}

// newConnState takes a connState from the recycling pool (or the heap),
// the NSM half of the short-flow slab path: accept/close churn stops
// allocating per connection once the pool warms up.
func (s *ServiceLib) newConnState() *connState {
	if n := len(s.connPool); n > 0 {
		cs := s.connPool[n-1]
		s.connPool = s.connPool[:n-1]
		return cs
	}
	return &connState{}
}

// freeConnState returns a retired connState to the pool. States with a
// timer still pending (shaper retry, coalescing flush) are left to the
// garbage collector — the closure holds the pointer and must not find a
// reincarnated connection behind it.
func (s *ServiceLib) freeConnState(cs *connState) {
	if cs.shaperWait || cs.flushPending {
		return
	}
	*cs = connState{}
	s.connPool = append(s.connPool, cs)
}

// flushOverflow retries one shard's stalled emissions in order.
func (s *ServiceLib) flushOverflow(shard int) {
	for len(s.overflow[shard]) > 0 {
		se := s.overflow[shard][0]
		rings := &s.cfg.Pair.Shards[shard]
		target := rings.NSMReceive
		if se.kind == nkchan.Completion {
			target = rings.NSMCompletion
		}
		if !target.Push(&se.e) {
			return
		}
		s.overflow[shard] = s.overflow[shard][1:]
	}
}

// pump drains the NSM job queue; the CoreEngine kicks it. The
// prototype "continuously polls the queues to execute the operations
// from GuestLib via NetKernel CoreEngine" (§4.1) — under the event
// executor a kick-driven drain is the batched-interrupt variant.
func (s *ServiceLib) pump(shard int) {
	if s.dead {
		return
	}
	if shard < 0 || shard >= s.nshards() {
		shard = 0
	}
	rings := &s.cfg.Pair.Shards[shard]
	s.flushOverflow(shard)
	for {
		n := rings.NSMJob.PopBatch(s.drain)
		if n == 0 {
			break
		}
		s.stats.jobsProcessed.Add(uint64(n))
		for i := range s.drain[:n] {
			s.handleJob(shard, &s.drain[i])
		}
	}
	s.flushOverflow(shard)
	if len(s.overflow[shard]) > 0 {
		s.noteOverflow()
		if s.cfg.Pair.KickEngineNSM != nil {
			s.cfg.Pair.KickEngineNSM(shard)
		}
	}
	// Readiness gathered while handling this batch rides out with it:
	// one OpReady per shard per pump, however many sockets transitioned.
	s.flushAllReady()
	// The pump produced completions and events; deliver any partial
	// doorbell batch before going idle. A handler may have emitted on
	// a sibling shard (an accept pinning its flow elsewhere), so every
	// shard's output rings flush.
	for i := range s.cfg.Pair.Shards {
		s.cfg.Pair.Shards[i].NSMCompletion.Flush()
		s.cfg.Pair.Shards[i].NSMReceive.Flush()
	}
}

func (s *ServiceLib) handleJob(shard int, e *nqe.Element) {
	if e.Trace != 0 {
		// Send spans stay open until the payload reaches the stack in
		// pumpSend; every other op's span ends at dispatch.
		if e.Op == nqe.OpSend {
			s.cfg.Tracer.Stamp(e.Trace, "servicelib.dispatch", 0)
		} else {
			s.cfg.Tracer.End(e.Trace, "servicelib.dispatch")
		}
	}
	switch e.Op {
	case nqe.OpSocket:
		s.nextCID++
		cid := s.nextCID
		cs := s.newConnState()
		cs.cid, cs.shard, cs.isDgram = cid, shard, e.Arg0 == 1
		s.conns[cid] = cs
		s.emit(shard, nkchan.Completion, &nqe.Element{Op: nqe.OpSocket, CID: cid, Seq: e.Seq})

	case nqe.OpPollCtl:
		s.handlePollCtl(shard, e)

	case nqe.OpBind:
		s.handleBind(shard, e)

	case nqe.OpConnect:
		s.handleConnect(e)

	case nqe.OpListen:
		s.handleListen(e)

	case nqe.OpSend:
		cs := s.conns[e.CID]
		if cs == nil {
			s.cfg.Pair.Pages.Free(shm.Chunk{Offset: e.DataOff})
			s.cfg.Tracer.Drop(e.Trace)
			return
		}
		if cs.isDgram {
			// A datagram: one chunk, sent immediately to the address in
			// Arg0, chunk returned to the pool.
			chunk := shm.Chunk{Offset: e.DataOff}
			payload := make([]byte, e.DataLen)
			s.cfg.Pair.Pages.Read(chunk, payload, int(e.DataLen))
			s.stats.txBytesCopied.Add(uint64(e.DataLen))
			s.cfg.Pair.Pages.Free(chunk)
			if cs.udp == nil {
				s.cfg.Tracer.Drop(e.Trace)
				s.emit(cs.shard, nkchan.Completion, &nqe.Element{Op: nqe.OpSend, CID: cs.cid, Status: nqe.StatusNotConnected})
				return
			}
			ip, port := nqe.UnpackAddr(e.Arg0)
			_ = cs.udp.SendTo(ip, port, payload)
			s.stats.dataIn.Add(uint64(e.DataLen))
			s.cfg.Tracer.End(e.Trace, "stack.tx")
			s.emit(cs.shard, nkchan.Completion, &nqe.Element{Op: nqe.OpSend, CID: cs.cid, DataLen: e.DataLen, Status: nqe.StatusOK})
			return
		}
		cs.sendQ = append(cs.sendQ, sendChunk{chunk: shm.Chunk{Offset: e.DataOff}, size: int(e.DataLen), trace: e.Trace})
		s.pumpSend(cs)

	case nqe.OpRecv:
		cs := s.conns[e.CID]
		if cs == nil {
			return
		}
		cs.recvDebt -= int(e.Arg0)
		if cs.recvDebt < 0 {
			cs.recvDebt = 0
		}
		s.NewDataCallback(cs.cid)

	case nqe.OpSetSockOpt:
		cs := s.conns[e.CID]
		if cs == nil || cs.conn == nil {
			s.emit(shard, nkchan.Completion, &nqe.Element{Op: nqe.OpSetSockOpt, CID: e.CID, Seq: e.Seq, Status: nqe.StatusInvalid})
			return
		}
		status := nqe.StatusOK
		switch e.Arg0 {
		case nqe.SockOptNagle:
			cs.conn.SetNagle(e.Arg1 != 0)
		case nqe.SockOptPriority:
			// Accepted; the priority-queue discipline (nkqueue) already
			// services connection events first.
		default:
			status = nqe.StatusNotSupported
		}
		s.emit(cs.shard, nkchan.Completion, &nqe.Element{Op: nqe.OpSetSockOpt, CID: e.CID, Seq: e.Seq, Status: status})

	case nqe.OpClose:
		if cs := s.conns[e.CID]; cs != nil && cs.udp != nil {
			cs.udp.Close()
			delete(s.conns, e.CID)
			// UDP has no close handshake: confirm immediately so the
			// engine retires the fd↔cID mapping instead of leaking it.
			s.emit(cs.shard, nkchan.Receive, &nqe.Element{Op: nqe.OpConnClosed, CID: e.CID, Status: nqe.StatusOK})
			if cs.polled {
				s.queueReady(cs.shard, e.CID, nqe.ReadyClosed)
			}
			s.freeConnState(cs)
		} else if cs != nil && cs.conn != nil {
			cs.conn.Close()
		} else if ls := s.listeners[e.CID]; ls != nil {
			s.cfg.Stack.CloseListener(ls.lst.Addr().Port)
			delete(s.listeners, e.CID)
			// Same for listeners: no TCP teardown will ever report this
			// cID closed, so the mapping must be retired here.
			s.emit(ls.shard, nkchan.Receive, &nqe.Element{Op: nqe.OpConnClosed, CID: e.CID, Status: nqe.StatusOK})
			if ls.polled {
				s.queueReady(ls.shard, e.CID, nqe.ReadyClosed)
			}
		} else if cs != nil {
			// A socket that never connected or bound: retire it and its
			// mapping like the UDP path.
			delete(s.conns, e.CID)
			s.emit(cs.shard, nkchan.Receive, &nqe.Element{Op: nqe.OpConnClosed, CID: e.CID, Status: nqe.StatusOK})
			s.freeConnState(cs)
		}
	}
}

// handlePollCtl registers (Arg0=1) or deregisters (Arg0=0) a socket for
// coalesced readiness reporting. Registration replays state the socket
// already holds — a connection with buffered receive data or a listener
// with pending accepts queues an immediate entry, so a poller attached
// late never sleeps through events that predate it.
func (s *ServiceLib) handlePollCtl(shard int, e *nqe.Element) {
	reg := e.Arg0 == 1
	if cs := s.conns[e.CID]; cs != nil {
		cs.polled = reg
		if reg && cs.conn != nil && cs.conn.ReadAvailable() > 0 {
			s.queueReady(cs.shard, cs.cid, nqe.ReadyReadable)
		}
		s.emit(shard, nkchan.Completion, &nqe.Element{Op: nqe.OpPollCtl, CID: e.CID, Seq: e.Seq, Status: nqe.StatusOK})
		return
	}
	if ls := s.listeners[e.CID]; ls != nil {
		ls.polled = reg
		if reg && ls.lst.Pending() > 0 {
			s.queueReady(ls.shard, ls.cid, nqe.ReadyAcceptable)
		}
		s.emit(shard, nkchan.Completion, &nqe.Element{Op: nqe.OpPollCtl, CID: e.CID, Seq: e.Seq, Status: nqe.StatusOK})
		return
	}
	s.emit(shard, nkchan.Completion, &nqe.Element{Op: nqe.OpPollCtl, CID: e.CID, Seq: e.Seq, Status: nqe.StatusInvalid})
}

func (s *ServiceLib) handleConnect(e *nqe.Element) {
	cs := s.conns[e.CID]
	if cs == nil {
		return
	}
	ip, port := nqe.UnpackAddr(e.Arg0)
	cid := cs.cid
	shard := cs.shard
	conn, err := s.cfg.Stack.Dial(tcp.AddrPort{Addr: ip, Port: port}, stack.SocketOptions{
		CC: s.cfg.CC,
		OnEstablished: func(err error) {
			st := nqe.StatusOK
			if err != nil {
				st = statusFromErr(err)
			}
			s.emit(shard, nkchan.Receive, &nqe.Element{Op: nqe.OpEstablished, CID: cid, Status: st})
		},
		OnReadable: func() { s.NewDataCallback(cid) },
		OnWritable: func() {
			if c := s.conns[cid]; c != nil {
				s.pumpSend(c)
			}
		},
		OnClose: func(err error) { s.connClosed(cid, err) },
	})
	if err != nil {
		s.emit(shard, nkchan.Receive, &nqe.Element{Op: nqe.OpEstablished, CID: cid, Status: nqe.StatusInvalid})
		return
	}
	cs.conn = conn
	conn.SetReceiveSink(s.makeSink(cs))
	s.stats.conns.Inc()
}

func (s *ServiceLib) handleListen(e *nqe.Element) {
	cs := s.conns[e.CID]
	if cs == nil {
		return
	}
	port := uint16(e.Arg0)
	backlog := int(e.Arg1)
	lst, err := s.cfg.Stack.Listen(port, backlog, stack.SocketOptions{CC: s.cfg.CC})
	status := nqe.StatusOK
	if err != nil {
		status = nqe.StatusAddrInUse
	}
	s.emit(cs.shard, nkchan.Completion, &nqe.Element{Op: nqe.OpListen, CID: e.CID, Seq: e.Seq, Status: status})
	if err != nil {
		return
	}
	ls := &listenerState{cid: e.CID, shard: cs.shard, lst: lst}
	s.listeners[e.CID] = ls
	delete(s.conns, e.CID) // the cid now names a listener
	lst.OnAcceptable = func() { s.NewAcceptCallback(ls) }
}

// handleBind binds a datagram socket's UDP port and installs the
// receive path: arriving datagrams go straight into huge-page chunks
// and OpNewData events carrying the source address.
func (s *ServiceLib) handleBind(shard int, e *nqe.Element) {
	cs := s.conns[e.CID]
	if cs == nil || !cs.isDgram || cs.udp != nil {
		s.emit(shard, nkchan.Completion, &nqe.Element{Op: nqe.OpBind, CID: e.CID, Seq: e.Seq, Status: nqe.StatusInvalid})
		return
	}
	sock, err := s.cfg.Stack.OpenUDP(uint16(e.Arg0), s.udpRecv(cs.cid, cs.shard))
	if err != nil {
		s.emit(cs.shard, nkchan.Completion, &nqe.Element{Op: nqe.OpBind, CID: e.CID, Seq: e.Seq, Status: nqe.StatusAddrInUse})
		return
	}
	cs.udp = sock
	s.emit(cs.shard, nkchan.Completion, &nqe.Element{Op: nqe.OpBind, CID: e.CID, Seq: e.Seq, Status: nqe.StatusOK, Arg0: uint64(sock.Port())})
}

// NewAcceptCallback is the prototype's nk_new_accept_callback: it
// harvests accepted connections from a listener, registers them under
// fresh connection IDs, and emits new-connection events toward the VM.
//
// The whole pending backlog drains in one sweep and the resulting
// OpNewConn events leave as one spanned batch per shard with a single
// kick (connection-setup batching, DESIGN.md §11) — a synchronized
// accept burst costs one doorbell, not one per connection.
func (s *ServiceLib) NewAcceptCallback(ls *listenerState) {
	var batch [][]nqe.Element // per shard, lazily sized
	var cids []uint32
	for {
		conn, ok := ls.lst.Accept()
		if !ok {
			break
		}
		s.nextCID++
		cid := s.nextCID
		// The accepted flow pins to its hash shard for life; its
		// OpNewConn rides that shard too, so the engine installs the
		// mapping where every later element of the flow will look it
		// up, and the shard's FIFO orders the event before the data.
		cs := s.newConnState()
		cs.cid, cs.shard, cs.conn = cid, s.shardForConn(conn), conn
		s.conns[cid] = cs
		conn.SetCallbacks(
			func() { s.NewDataCallback(cid) },
			func() {
				if c := s.conns[cid]; c != nil {
					s.pumpSend(c)
				}
			},
			func(err error) { s.connClosed(cid, err) },
		)
		conn.SetReceiveSink(s.makeSink(cs))
		s.stats.accepts.Inc()
		remote := conn.RemoteAddr()
		if batch == nil {
			batch = make([][]nqe.Element, s.nshards())
		}
		batch[cs.shard] = append(batch[cs.shard], nqe.Element{
			Op: nqe.OpNewConn, CID: ls.cid,
			Arg0: nqe.PackAddr(remote.Addr, remote.Port),
			Arg1: uint64(cid),
		})
		cids = append(cids, cid)
	}
	if len(cids) == 0 {
		return
	}
	for shard, es := range batch {
		s.emitBatch(shard, nkchan.Receive, es)
	}
	if ls.polled {
		s.queueReady(ls.shard, ls.cid, nqe.ReadyAcceptable)
	}
	// Deliver anything that arrived before the accepts; the OpNewConn
	// batch is already in the rings (and rides the priority lane), so
	// each connection's data events order behind its announcement.
	for _, cid := range cids {
		s.NewDataCallback(cid)
	}
}

// NewDataCallback is the prototype's nk_new_data_callback: "when data
// is received ServiceLib puts data into the huge pages, and adds an
// nqe to the NSM receive queue" (§3.2). It respects the per-connection
// shm receive window; OpRecv credits reopen it.
func (s *ServiceLib) NewDataCallback(cid uint32) {
	s.deliverData(cid, false)
}

func (s *ServiceLib) deliverData(cid uint32, flush bool) {
	cs := s.conns[cid]
	if cs == nil || cs.conn == nil {
		return
	}
	chunkSize := s.cfg.Pair.ChunkSize()
	for cs.recvDebt < s.cfg.RecvWindow {
		avail := cs.conn.ReadAvailable()
		if avail == 0 {
			if flush {
				s.emitRxChunk(cs)
			}
			if _, eof := cs.conn.Read(nil); eof {
				// The open receive chunk's bytes precede EOF in stream
				// order: emit them before the close event.
				s.emitRxChunk(cs)
				if !cs.eofSent {
					cs.eofSent = true
					s.emit(cs.shard, nkchan.Receive, &nqe.Element{Op: nqe.OpConnClosed, CID: cid, Status: nqe.StatusOK})
					if cs.polled {
						s.queueReady(cs.shard, cid, nqe.ReadyClosed)
					}
				}
			}
			return
		}
		// rcvBuf only fills after the sink stops consuming, so whatever
		// sits in the open receive chunk arrived earlier; emit it first
		// to preserve stream order.
		s.emitRxChunk(cs)
		// Coalesce sub-chunk dribbles: wait briefly for a full chunk so
		// bulk transfers move one nqe per chunk, not one per segment.
		if avail < chunkSize && !flush && s.cfg.CoalesceDelay > 0 {
			s.armRxFlush(cs)
			return
		}
		chunk, ok := s.cfg.Pair.Pages.AllocOn(cs.shard)
		if !ok {
			return // huge pages exhausted; credits will retrigger
		}
		buf := s.cfg.Pair.Pages.Bytes(chunk)
		n, eof := cs.conn.Read(buf)
		if n == 0 {
			s.cfg.Pair.Pages.Free(chunk)
			if eof && !cs.eofSent {
				cs.eofSent = true
				s.emit(cs.shard, nkchan.Receive, &nqe.Element{Op: nqe.OpConnClosed, CID: cid, Status: nqe.StatusOK})
				if cs.polled {
					s.queueReady(cs.shard, cid, nqe.ReadyClosed)
				}
			}
			return
		}
		cs.recvDebt += n
		s.stats.dataOut.Add(uint64(n))
		s.emit(cs.shard, nkchan.Receive, &nqe.Element{
			Op: nqe.OpNewData, CID: cid,
			DataOff: chunk.Offset, DataLen: uint32(n),
		})
		if cs.polled {
			s.queueReady(cs.shard, cid, nqe.ReadyReadable)
		}
		flush = false // only the first read after a flush may be short
	}
}

// makeSink builds the conn's receive sink (the rcvBuf bypass): in-order
// reassembled payload moves straight into the open huge-page chunk, one
// copy, instead of transiting the conn's receive buffer and being copied
// back out. Refusing bytes (shm window exhausted, pool empty, dead
// module) pushes them into the conn's rcvBuf, whose fill closes the TCP
// window — ordinary flow control remains the backstop.
func (s *ServiceLib) makeSink(cs *connState) func([]byte) int {
	// Captured by cid, not pointer: connStates recycle through the slab
	// pool, and a stale sink invocation after teardown must find
	// nothing — not another connection reincarnated in the same object.
	cid := cs.cid
	return func(p []byte) int {
		c := s.conns[cid]
		if c == nil {
			return 0
		}
		return s.sinkData(c, p)
	}
}

func (s *ServiceLib) sinkData(cs *connState, p []byte) int {
	if s.dead || cs.recvDebt >= s.cfg.RecvWindow {
		return 0
	}
	chunkSize := s.cfg.Pair.ChunkSize()
	consumed := 0
	for len(p) > 0 && cs.recvDebt < s.cfg.RecvWindow {
		if !cs.rxHave {
			chunk, ok := s.cfg.Pair.Pages.AllocOn(cs.shard)
			if !ok {
				break // pool exhausted; remainder buffers in the conn
			}
			cs.rxChunk, cs.rxHave, cs.rxFill = chunk, true, 0
		}
		n := copy(s.cfg.Pair.Pages.Bytes(cs.rxChunk)[cs.rxFill:], p)
		cs.rxFill += n
		consumed += n
		p = p[n:]
		s.stats.rxBytesCopied.Add(uint64(n))
		if cs.rxFill == chunkSize {
			s.emitRxChunk(cs)
		}
	}
	if cs.rxHave && cs.rxFill > 0 {
		s.armRxFlush(cs)
	}
	return consumed
}

// emitRxChunk pushes the open receive chunk (if it holds any bytes)
// toward the VM and charges it against the shm receive window.
func (s *ServiceLib) emitRxChunk(cs *connState) {
	if !cs.rxHave || cs.rxFill == 0 {
		return
	}
	cs.recvDebt += cs.rxFill
	s.stats.dataOut.Add(uint64(cs.rxFill))
	s.emit(cs.shard, nkchan.Receive, &nqe.Element{
		Op: nqe.OpNewData, CID: cs.cid,
		DataOff: cs.rxChunk.Offset, DataLen: uint32(cs.rxFill),
	})
	if cs.polled {
		s.queueReady(cs.shard, cs.cid, nqe.ReadyReadable)
	}
	cs.rxHave, cs.rxFill = false, 0
}

// armRxFlush schedules delivery of a partially-filled receive chunk,
// waiting up to CoalesceDelay for more payload to top it off (the same
// batching the buffered path applies).
func (s *ServiceLib) armRxFlush(cs *connState) {
	if s.cfg.CoalesceDelay <= 0 {
		s.emitRxChunk(cs)
		return
	}
	if cs.flushPending {
		return
	}
	cs.flushPending = true
	cid := cs.cid
	s.cfg.Clock.AfterFunc(s.cfg.CoalesceDelay, func() {
		cs.flushPending = false
		s.deliverData(cid, true)
	})
}

// pumpSend drains a connection's queued chunks into the stack socket,
// returning credit as each is accepted. The hot path hands the whole
// chunk to the TCP conn as an owned span — no copy into the socket
// buffer; the conn holds its own huge-page reference and drops it when
// the last covering byte is cumulatively ACKed (or the conn dies). A
// configured Shaper gates the drain, enforcing the tenant's throughput
// allocation.
func (s *ServiceLib) pumpSend(cs *connState) {
	if cs.conn == nil || cs.shaperWait {
		return
	}
	pages := s.cfg.Pair.Pages
	for len(cs.sendQ) > 0 {
		head := &cs.sendQ[0]
		data := pages.Bytes(head.chunk)[head.off:head.size]
		if s.cfg.Shaper != nil {
			ok, retry := s.cfg.Shaper.Take(len(data))
			if !ok {
				cs.shaperWait = true
				s.cfg.Clock.AfterFunc(retry, func() {
					cs.shaperWait = false
					s.pumpSend(cs)
				})
				return
			}
		}
		if head.off == 0 && head.size <= cs.conn.WriteBufferCap() {
			// Zero-copy hand-off. The span takes its own reference so
			// that a module crash (which frees the queue's reference)
			// cannot pull the chunk out from under in-flight segments.
			chunk := head.chunk
			pages.Retain(chunk)
			if !cs.conn.WriteOwned(data, func() { pages.Free(chunk) }) {
				pages.Free(chunk) // hand-off refused: drop the span's reference
				if s.cfg.Shaper != nil {
					s.cfg.Shaper.Refund(len(data))
				}
				return // send buffer full (or conn closing); OnWritable resumes
			}
			s.stats.dataIn.Add(uint64(head.size))
			s.cfg.Tracer.End(head.trace, "stack.tx")
			pages.Free(chunk) // the queue's reference; the span keeps its own
			s.emit(cs.shard, nkchan.Completion, &nqe.Element{
				Op: nqe.OpSend, CID: cs.cid, DataLen: uint32(head.size), Status: nqe.StatusOK,
			})
			cs.sendQ = cs.sendQ[1:]
			continue
		}
		// Copy fallback: a chunk larger than the conn's whole send buffer
		// can never fit as a single span; stream it through Write (the
		// TCP layer counts that copy).
		n := cs.conn.Write(data)
		if s.cfg.Shaper != nil && n < len(data) {
			s.cfg.Shaper.Refund(len(data) - n)
		}
		head.off += n
		s.stats.dataIn.Add(uint64(n))
		if head.off < head.size {
			return // socket buffer full; OnWritable resumes
		}
		s.cfg.Tracer.End(head.trace, "stack.tx")
		pages.Free(head.chunk)
		s.emit(cs.shard, nkchan.Completion, &nqe.Element{
			Op: nqe.OpSend, CID: cs.cid, DataLen: uint32(head.size), Status: nqe.StatusOK,
		})
		cs.sendQ = cs.sendQ[1:]
	}
}

func (s *ServiceLib) connClosed(cid uint32, err error) {
	cs := s.conns[cid]
	if cs == nil {
		return
	}
	// Flush any remaining readable data first (synchronously — the
	// coalescing timer must not outlive the connection).
	s.deliverData(cid, true)
	if !cs.eofSent {
		cs.eofSent = true
		s.emit(cs.shard, nkchan.Receive, &nqe.Element{Op: nqe.OpConnClosed, CID: cid, Status: statusFromErr(err)})
		if cs.polled {
			// The pending entry outlives the connState: the ready queue
			// carries (cid, mask) pairs, not pointers.
			s.queueReady(cs.shard, cid, nqe.ReadyClosed)
		}
	}
	// Release still-queued send chunks. (Chunks already handed to the
	// conn as spans are released by the conn's own teardown.)
	for _, c := range cs.sendQ {
		s.cfg.Pair.Pages.Free(c.chunk)
		s.cfg.Tracer.Drop(c.trace)
	}
	cs.sendQ = nil
	// deliverData flushed the open receive chunk if it held bytes; an
	// empty one allocated but never filled would leak without this.
	if cs.rxHave {
		s.cfg.Pair.Pages.Free(cs.rxChunk)
		cs.rxHave, cs.rxFill = false, 0
	}
	delete(s.conns, cid)
	s.freeConnState(cs)
}

// Crash models the module process dying: all per-connection state
// vanishes, queued send chunks and overflowed data events return to the
// huge-page pool (the pages belong to the hypervisor, not the module),
// and every subsequent pump, emission, or stray stack callback is a
// no-op until Rebind. The caller is responsible for killing the
// module's stack and resetting the CoreEngine's tables.
func (s *ServiceLib) Crash() {
	s.dead = true
	cids := make([]uint32, 0, len(s.conns))
	for cid := range s.conns {
		cids = append(cids, cid)
	}
	sort.Slice(cids, func(i, j int) bool { return cids[i] < cids[j] })
	for _, cid := range cids {
		cs := s.conns[cid]
		for _, c := range cs.sendQ {
			s.cfg.Pair.Pages.Free(c.chunk)
			s.cfg.Tracer.Drop(c.trace)
		}
		cs.sendQ = nil
		if cs.rxHave {
			s.cfg.Pair.Pages.Free(cs.rxChunk)
			cs.rxHave, cs.rxFill = false, 0
		}
		// Detach the sockets so timers still in flight (shaper retries,
		// coalescing flushes) find nothing to drive. Chunks the conns
		// hold as send spans are released when the hypervisor kills the
		// module's stack (each reference was the span's own).
		cs.conn = nil
		cs.udp = nil
	}
	for shard := range s.overflow {
		for _, se := range s.overflow[shard] {
			if (se.e.Op == nqe.OpNewData || se.e.Op == nqe.OpReady) && se.e.DataLen > 0 {
				s.cfg.Pair.Pages.Free(shm.Chunk{Offset: se.e.DataOff})
			}
			s.cfg.Tracer.Drop(se.e.Trace)
		}
		s.overflow[shard] = nil
	}
	// Pending readiness holds no chunks (they are allocated at flush
	// time) — just drop the entries; a timer firing later finds the
	// module dead and bails.
	s.ready = make([]readyShard, s.nshards())
	s.connPool = nil
	s.conns = make(map[uint32]*connState)
	s.listeners = make(map[uint32]*listenerState)
}

// Rebind attaches a rebooted module's fresh stack and resumes pumping,
// draining any jobs that queued up during the outage. Connection IDs
// stay monotonic across the restart, so stale references from before
// the crash can never collide with new connections.
func (s *ServiceLib) Rebind(st *stack.Stack) {
	s.cfg.Stack = st
	s.dead = false
	for shard := range s.cfg.Pair.Shards {
		s.pump(shard)
	}
}

// statusFromErr maps stack errors onto the nqe status space carried
// over the wire-format queues.
func statusFromErr(err error) nqe.Status {
	if err == nil {
		return nqe.StatusOK
	}
	msg := err.Error()
	switch {
	case strings.Contains(msg, "refused"):
		return nqe.StatusConnRefused
	case strings.Contains(msg, "reset"), strings.Contains(msg, "aborted"):
		return nqe.StatusConnReset
	case strings.Contains(msg, "timed out"):
		return nqe.StatusTimeout
	case strings.Contains(msg, "no route"):
		return nqe.StatusUnreachable
	default:
		return nqe.StatusInvalid
	}
}
