// Package servicelib implements the NSM half of NetKernel: the library
// inside a Network Stack Module that executes GuestLib's operations
// against the module's real network stack (§3.1: "Inside the NSM, the
// ServiceLib interfaces with the network stack and GuestLib in the
// tenant VM").
//
// The prototype's two callbacks are preserved by name and role:
// NewDataCallback (nk_new_data_callback) pushes received payloads into
// the huge pages and enqueues new-data nqes; NewAcceptCallback
// (nk_new_accept_callback) harvests accepted connections and emits
// new-connection events (§4.1).
package servicelib

import (
	"sort"
	"strings"
	"time"

	"netkernel/internal/proto/ipv4"

	"netkernel/internal/nkchan"
	"netkernel/internal/nqe"
	"netkernel/internal/proto/tcp"
	"netkernel/internal/sched"
	"netkernel/internal/shm"
	"netkernel/internal/sim"
	"netkernel/internal/stack"
	"netkernel/internal/telemetry"
	"netkernel/internal/vswitch"
)

// Config parameterizes a ServiceLib.
type Config struct {
	Clock sim.Clock
	NSMID uint32
	Pair  *nkchan.Pair
	// Stack is the network stack this module hosts.
	Stack *stack.Stack
	// CC names the congestion control this NSM offers; it is the NSM's
	// identity ("the CUBIC NSM", "the BBR NSM").
	CC string
	// RecvWindow bounds bytes pushed to the VM but not yet consumed,
	// per connection (default 1 MiB): the shm-level receive window.
	RecvWindow int
	// Shaper rate-limits this tenant's egress through the module: the
	// §2.1/§5 QoS knob ("providing QoS guarantees" when an NSM serves
	// multiple VMs). Nil means unlimited.
	Shaper sched.Shaper
	// CoalesceDelay batches receive-side data into full huge-page
	// chunks: when less than one chunk is buffered, delivery waits up
	// to this long for more. This is the nqe-level analogue of the
	// batched interrupts in §3.2 and keeps the per-event overhead off
	// the bulk datapath. Default 5 µs; negative disables coalescing.
	CoalesceDelay time.Duration
	// StallRecovery, when positive, arms a virtual-time retry timer
	// whenever an emission finds its output ring full or fault-stalled.
	// The production pipeline is purely kick-driven and leaves this
	// zero; fault-injection harnesses set it so an injected stall can
	// delay emissions but never wedge the module.
	StallRecovery time.Duration
	// Metrics, when set, publishes the ServiceLib counters into the
	// host telemetry registry (e.g. "vm1.r0.svc.data_in").
	Metrics *telemetry.Scope
	// Tracer, when set and sampling, opens receive-path spans for
	// emitted events and stamps/ends send-path spans arriving in jobs.
	Tracer *telemetry.Tracer
}

// Stats is a point-in-time copy of the ServiceLib counters.
type Stats struct {
	JobsProcessed uint64
	DataIn        uint64 // bytes VM→NSM (sends)
	DataOut       uint64 // bytes NSM→VM (receives)
	Conns         uint64
	Accepts       uint64
	// TxBytesCopied and RxBytesCopied count payload bytes this layer
	// memcpy'd. On the streaming path Tx stays zero (chunks are handed
	// to the TCP conn as owned spans) and Rx counts exactly one copy
	// per byte: reassembled wire payload → huge-page chunk.
	TxBytesCopied uint64
	RxBytesCopied uint64
}

// counters is the live atomic form of Stats: management-plane readers
// (VM.CopyReport, registry snapshots) may run on another goroutine
// while the module pumps under a wall-clock domain.
type counters struct {
	jobsProcessed, dataIn, dataOut telemetry.Counter
	conns, accepts                 telemetry.Counter
	txBytesCopied, rxBytesCopied   telemetry.Counter
}

func (c *counters) register(m *telemetry.Scope) {
	m.Counter("jobs_processed", &c.jobsProcessed)
	m.Counter("data_in", &c.dataIn)
	m.Counter("data_out", &c.dataOut)
	m.Counter("conns", &c.conns)
	m.Counter("accepts", &c.accepts)
	m.Counter("tx_bytes_copied", &c.txBytesCopied)
	m.Counter("rx_bytes_copied", &c.rxBytesCopied)
}

func (c *counters) snapshot() Stats {
	return Stats{
		JobsProcessed: c.jobsProcessed.Load(),
		DataIn:        c.dataIn.Load(),
		DataOut:       c.dataOut.Load(),
		Conns:         c.conns.Load(),
		Accepts:       c.accepts.Load(),
		TxBytesCopied: c.txBytesCopied.Load(),
		RxBytesCopied: c.rxBytesCopied.Load(),
	}
}

type sendChunk struct {
	chunk shm.Chunk
	size  int
	off   int
	// trace carries the job element's span id so the span can end at
	// the stack hand-off, however long the chunk queues behind the
	// shaper or a full send buffer.
	trace uint32
}

type connState struct {
	cid uint32
	// shard is the channel shard this connection is pinned to: every
	// nqe the connection ever emits or receives rides this shard's
	// rings (flow affinity). Dialed connections keep the shard their
	// OpSocket arrived on; accepted connections hash their 4-tuple.
	shard        int
	isDgram      bool
	conn         *tcp.Conn
	udp          *stack.UDPSocket // datagram sockets, set at bind
	sendQ        []sendChunk
	recvDebt     int // bytes at the VM awaiting an OpRecv credit
	eofSent      bool
	shaperWait   bool // a shaper retry timer is pending
	flushPending bool // a coalescing flush timer is pending
	// Open receive chunk: the conn's receive sink fills it directly
	// with reassembled payload (the rcvBuf bypass). Its bytes precede
	// anything later buffered in the conn's rcvBuf, so delivery paths
	// must emit it before draining the conn.
	rxChunk shm.Chunk
	rxHave  bool
	rxFill  int
}

type listenerState struct {
	cid   uint32
	shard int // the listener socket's own shard (its control traffic)
	lst   *tcp.Listener
}

// ServiceLib is one NSM's queue pump and stack driver.
type ServiceLib struct {
	cfg       Config
	conns     map[uint32]*connState
	listeners map[uint32]*listenerState
	nextCID   uint32
	stats     counters
	// overflow holds emissions that found their ring full, one queue
	// per shard; they are flushed in order on the next pump, so a data
	// flood can delay but never lose a completion or connection event.
	overflow [][]stalledEmit
	// drain is the reusable job batch buffer: one pump pops whole ring
	// spans at a time instead of element by element (§3.2 "batched
	// interrupts").
	drain []nqe.Element
	// dead marks a crashed module: pumps and emissions are no-ops until
	// Rebind attaches a replacement stack.
	dead bool
	// retryArmed guards the Config.StallRecovery retry timer.
	retryArmed bool
}

type stalledEmit struct {
	kind nkchan.QueueKind
	e    nqe.Element
}

// New builds a ServiceLib and wires it to the pair's NSM-side kick.
func New(cfg Config) *ServiceLib {
	if cfg.Clock == nil || cfg.Pair == nil || cfg.Stack == nil {
		panic("servicelib: Config requires Clock, Pair, and Stack")
	}
	if cfg.RecvWindow <= 0 {
		cfg.RecvWindow = 1 << 20
	}
	if cfg.CoalesceDelay == 0 {
		cfg.CoalesceDelay = 5 * time.Microsecond
	}
	cfg.Pair.EnsureShards()
	s := &ServiceLib{
		cfg:       cfg,
		conns:     make(map[uint32]*connState),
		listeners: make(map[uint32]*listenerState),
		overflow:  make([][]stalledEmit, len(cfg.Pair.Shards)),
		drain:     make([]nqe.Element, 64),
	}
	s.stats.register(cfg.Metrics)
	cfg.Pair.KickNSM = s.pump
	return s
}

// nshards returns the channel's shard count.
func (s *ServiceLib) nshards() int { return len(s.cfg.Pair.Shards) }

// shardForConn pins an accepted connection to a shard by its 4-tuple,
// with the same canonical hash the stack's frame dispatch uses.
func (s *ServiceLib) shardForConn(conn *tcp.Conn) int {
	n := s.nshards()
	if n <= 1 {
		return 0
	}
	l, r := conn.LocalAddr(), conn.RemoteAddr()
	return vswitch.ShardOf(vswitch.TupleHash(l.Addr, l.Port, r.Addr, r.Port), n)
}

// Stats returns a copy of the counters, read atomically.
func (s *ServiceLib) Stats() Stats { return s.stats.snapshot() }

// CC returns the module's congestion-control name.
func (s *ServiceLib) CC() string { return s.cfg.CC }

func (s *ServiceLib) emit(shard int, q nkchan.QueueKind, e *nqe.Element) {
	if s.dead {
		return
	}
	if shard < 0 || shard >= s.nshards() {
		shard = 0
	}
	e.NSMID = s.cfg.NSMID
	e.Source = nqe.FromNSM
	rings := &s.cfg.Pair.Shards[shard]
	target := rings.NSMReceive
	if q == nkchan.Completion {
		target = rings.NSMCompletion
	}
	// The receive-path span opens here, the mirror of GuestLib.push:
	// sampled events carry their span id toward the VM. Completions are
	// responses to send-path spans and are not separately traced.
	if q == nkchan.Receive {
		if tr := s.cfg.Tracer; tr.Enabled() && e.Trace == 0 {
			e.Trace = tr.Start("rx:" + e.Op.String())
		}
		s.cfg.Tracer.Stamp(e.Trace, "servicelib.emit", int64(target.Len()))
	}
	if len(s.overflow[shard]) > 0 || !target.Push(e) {
		s.overflow[shard] = append(s.overflow[shard], stalledEmit{kind: q, e: *e})
		s.noteOverflow()
	}
	if s.cfg.Pair.KickEngineNSM != nil {
		s.cfg.Pair.KickEngineNSM(shard)
	}
}

// noteOverflow arms the overflow retry timer. A no-op unless
// Config.StallRecovery is set: the engine's drain pump re-kicks the
// module when it frees ring space, but an injected fault can fail a
// push with space available and nothing inbound due — the timer keeps
// the module making progress regardless.
func (s *ServiceLib) noteOverflow() {
	if s.cfg.StallRecovery <= 0 || s.retryArmed {
		return
	}
	s.retryArmed = true
	s.cfg.Clock.AfterFunc(s.cfg.StallRecovery, func() {
		s.retryArmed = false
		if s.dead {
			return
		}
		pending := false
		for shard := range s.overflow {
			s.flushOverflow(shard)
			s.cfg.Pair.Shards[shard].NSMCompletion.Flush()
			s.cfg.Pair.Shards[shard].NSMReceive.Flush()
			if len(s.overflow[shard]) > 0 {
				pending = true
			}
			if s.cfg.Pair.KickEngineNSM != nil {
				s.cfg.Pair.KickEngineNSM(shard)
			}
		}
		if pending {
			s.noteOverflow()
		}
	})
}

// flushOverflow retries one shard's stalled emissions in order.
func (s *ServiceLib) flushOverflow(shard int) {
	for len(s.overflow[shard]) > 0 {
		se := s.overflow[shard][0]
		rings := &s.cfg.Pair.Shards[shard]
		target := rings.NSMReceive
		if se.kind == nkchan.Completion {
			target = rings.NSMCompletion
		}
		if !target.Push(&se.e) {
			return
		}
		s.overflow[shard] = s.overflow[shard][1:]
	}
}

// pump drains the NSM job queue; the CoreEngine kicks it. The
// prototype "continuously polls the queues to execute the operations
// from GuestLib via NetKernel CoreEngine" (§4.1) — under the event
// executor a kick-driven drain is the batched-interrupt variant.
func (s *ServiceLib) pump(shard int) {
	if s.dead {
		return
	}
	if shard < 0 || shard >= s.nshards() {
		shard = 0
	}
	rings := &s.cfg.Pair.Shards[shard]
	s.flushOverflow(shard)
	for {
		n := rings.NSMJob.PopBatch(s.drain)
		if n == 0 {
			break
		}
		s.stats.jobsProcessed.Add(uint64(n))
		for i := range s.drain[:n] {
			s.handleJob(shard, &s.drain[i])
		}
	}
	s.flushOverflow(shard)
	if len(s.overflow[shard]) > 0 {
		s.noteOverflow()
		if s.cfg.Pair.KickEngineNSM != nil {
			s.cfg.Pair.KickEngineNSM(shard)
		}
	}
	// The pump produced completions and events; deliver any partial
	// doorbell batch before going idle. A handler may have emitted on
	// a sibling shard (an accept pinning its flow elsewhere), so every
	// shard's output rings flush.
	for i := range s.cfg.Pair.Shards {
		s.cfg.Pair.Shards[i].NSMCompletion.Flush()
		s.cfg.Pair.Shards[i].NSMReceive.Flush()
	}
}

func (s *ServiceLib) handleJob(shard int, e *nqe.Element) {
	if e.Trace != 0 {
		// Send spans stay open until the payload reaches the stack in
		// pumpSend; every other op's span ends at dispatch.
		if e.Op == nqe.OpSend {
			s.cfg.Tracer.Stamp(e.Trace, "servicelib.dispatch", 0)
		} else {
			s.cfg.Tracer.End(e.Trace, "servicelib.dispatch")
		}
	}
	switch e.Op {
	case nqe.OpSocket:
		s.nextCID++
		cid := s.nextCID
		s.conns[cid] = &connState{cid: cid, shard: shard, isDgram: e.Arg0 == 1}
		s.emit(shard, nkchan.Completion, &nqe.Element{Op: nqe.OpSocket, CID: cid, Seq: e.Seq})

	case nqe.OpBind:
		s.handleBind(shard, e)

	case nqe.OpConnect:
		s.handleConnect(e)

	case nqe.OpListen:
		s.handleListen(e)

	case nqe.OpSend:
		cs := s.conns[e.CID]
		if cs == nil {
			s.cfg.Pair.Pages.Free(shm.Chunk{Offset: e.DataOff})
			s.cfg.Tracer.Drop(e.Trace)
			return
		}
		if cs.isDgram {
			// A datagram: one chunk, sent immediately to the address in
			// Arg0, chunk returned to the pool.
			chunk := shm.Chunk{Offset: e.DataOff}
			payload := make([]byte, e.DataLen)
			s.cfg.Pair.Pages.Read(chunk, payload, int(e.DataLen))
			s.stats.txBytesCopied.Add(uint64(e.DataLen))
			s.cfg.Pair.Pages.Free(chunk)
			if cs.udp == nil {
				s.cfg.Tracer.Drop(e.Trace)
				s.emit(cs.shard, nkchan.Completion, &nqe.Element{Op: nqe.OpSend, CID: cs.cid, Status: nqe.StatusNotConnected})
				return
			}
			ip, port := nqe.UnpackAddr(e.Arg0)
			_ = cs.udp.SendTo(ip, port, payload)
			s.stats.dataIn.Add(uint64(e.DataLen))
			s.cfg.Tracer.End(e.Trace, "stack.tx")
			s.emit(cs.shard, nkchan.Completion, &nqe.Element{Op: nqe.OpSend, CID: cs.cid, DataLen: e.DataLen, Status: nqe.StatusOK})
			return
		}
		cs.sendQ = append(cs.sendQ, sendChunk{chunk: shm.Chunk{Offset: e.DataOff}, size: int(e.DataLen), trace: e.Trace})
		s.pumpSend(cs)

	case nqe.OpRecv:
		cs := s.conns[e.CID]
		if cs == nil {
			return
		}
		cs.recvDebt -= int(e.Arg0)
		if cs.recvDebt < 0 {
			cs.recvDebt = 0
		}
		s.NewDataCallback(cs.cid)

	case nqe.OpSetSockOpt:
		cs := s.conns[e.CID]
		if cs == nil || cs.conn == nil {
			s.emit(shard, nkchan.Completion, &nqe.Element{Op: nqe.OpSetSockOpt, CID: e.CID, Seq: e.Seq, Status: nqe.StatusInvalid})
			return
		}
		status := nqe.StatusOK
		switch e.Arg0 {
		case nqe.SockOptNagle:
			cs.conn.SetNagle(e.Arg1 != 0)
		case nqe.SockOptPriority:
			// Accepted; the priority-queue discipline (nkqueue) already
			// services connection events first.
		default:
			status = nqe.StatusNotSupported
		}
		s.emit(cs.shard, nkchan.Completion, &nqe.Element{Op: nqe.OpSetSockOpt, CID: e.CID, Seq: e.Seq, Status: status})

	case nqe.OpClose:
		if cs := s.conns[e.CID]; cs != nil && cs.udp != nil {
			cs.udp.Close()
			delete(s.conns, e.CID)
			// UDP has no close handshake: confirm immediately so the
			// engine retires the fd↔cID mapping instead of leaking it.
			s.emit(cs.shard, nkchan.Receive, &nqe.Element{Op: nqe.OpConnClosed, CID: e.CID, Status: nqe.StatusOK})
		} else if cs != nil && cs.conn != nil {
			cs.conn.Close()
		} else if ls := s.listeners[e.CID]; ls != nil {
			s.cfg.Stack.CloseListener(ls.lst.Addr().Port)
			delete(s.listeners, e.CID)
			// Same for listeners: no TCP teardown will ever report this
			// cID closed, so the mapping must be retired here.
			s.emit(ls.shard, nkchan.Receive, &nqe.Element{Op: nqe.OpConnClosed, CID: e.CID, Status: nqe.StatusOK})
		}
	}
}

func (s *ServiceLib) handleConnect(e *nqe.Element) {
	cs := s.conns[e.CID]
	if cs == nil {
		return
	}
	ip, port := nqe.UnpackAddr(e.Arg0)
	cid := cs.cid
	shard := cs.shard
	conn, err := s.cfg.Stack.Dial(tcp.AddrPort{Addr: ip, Port: port}, stack.SocketOptions{
		CC: s.cfg.CC,
		OnEstablished: func(err error) {
			st := nqe.StatusOK
			if err != nil {
				st = statusFromErr(err)
			}
			s.emit(shard, nkchan.Receive, &nqe.Element{Op: nqe.OpEstablished, CID: cid, Status: st})
		},
		OnReadable: func() { s.NewDataCallback(cid) },
		OnWritable: func() {
			if c := s.conns[cid]; c != nil {
				s.pumpSend(c)
			}
		},
		OnClose: func(err error) { s.connClosed(cid, err) },
	})
	if err != nil {
		s.emit(shard, nkchan.Receive, &nqe.Element{Op: nqe.OpEstablished, CID: cid, Status: nqe.StatusInvalid})
		return
	}
	cs.conn = conn
	conn.SetReceiveSink(s.makeSink(cs))
	s.stats.conns.Inc()
}

func (s *ServiceLib) handleListen(e *nqe.Element) {
	cs := s.conns[e.CID]
	if cs == nil {
		return
	}
	port := uint16(e.Arg0)
	backlog := int(e.Arg1)
	lst, err := s.cfg.Stack.Listen(port, backlog, stack.SocketOptions{CC: s.cfg.CC})
	status := nqe.StatusOK
	if err != nil {
		status = nqe.StatusAddrInUse
	}
	s.emit(cs.shard, nkchan.Completion, &nqe.Element{Op: nqe.OpListen, CID: e.CID, Seq: e.Seq, Status: status})
	if err != nil {
		return
	}
	ls := &listenerState{cid: e.CID, shard: cs.shard, lst: lst}
	s.listeners[e.CID] = ls
	delete(s.conns, e.CID) // the cid now names a listener
	lst.OnAcceptable = func() { s.NewAcceptCallback(ls) }
}

// handleBind binds a datagram socket's UDP port and installs the
// receive path: arriving datagrams go straight into huge-page chunks
// and OpNewData events carrying the source address.
func (s *ServiceLib) handleBind(shard int, e *nqe.Element) {
	cs := s.conns[e.CID]
	if cs == nil || !cs.isDgram || cs.udp != nil {
		s.emit(shard, nkchan.Completion, &nqe.Element{Op: nqe.OpBind, CID: e.CID, Seq: e.Seq, Status: nqe.StatusInvalid})
		return
	}
	cid := cs.cid
	csShard := cs.shard
	sock, err := s.cfg.Stack.OpenUDP(uint16(e.Arg0), func(src ipv4.Addr, srcPort uint16, data []byte) {
		if len(data) > s.cfg.Pair.ChunkSize() {
			return // cannot represent; drop (UDP semantics)
		}
		chunk, ok := s.cfg.Pair.Pages.AllocOn(csShard)
		if !ok {
			return // pool exhausted; drop (UDP semantics)
		}
		s.cfg.Pair.Pages.Write(chunk, data)
		s.stats.rxBytesCopied.Add(uint64(len(data)))
		s.stats.dataOut.Add(uint64(len(data)))
		s.emit(csShard, nkchan.Receive, &nqe.Element{
			Op: nqe.OpNewData, CID: cid,
			DataOff: chunk.Offset, DataLen: uint32(len(data)),
			Arg0: nqe.PackAddr(src, srcPort),
		})
	})
	if err != nil {
		s.emit(cs.shard, nkchan.Completion, &nqe.Element{Op: nqe.OpBind, CID: e.CID, Seq: e.Seq, Status: nqe.StatusAddrInUse})
		return
	}
	cs.udp = sock
	s.emit(cs.shard, nkchan.Completion, &nqe.Element{Op: nqe.OpBind, CID: e.CID, Seq: e.Seq, Status: nqe.StatusOK, Arg0: uint64(sock.Port())})
}

// NewAcceptCallback is the prototype's nk_new_accept_callback: it
// harvests accepted connections from a listener, registers them under
// fresh connection IDs, and emits new-connection events toward the VM.
func (s *ServiceLib) NewAcceptCallback(ls *listenerState) {
	for {
		conn, ok := ls.lst.Accept()
		if !ok {
			return
		}
		s.nextCID++
		cid := s.nextCID
		// The accepted flow pins to its hash shard for life; its
		// OpNewConn rides that shard too, so the engine installs the
		// mapping where every later element of the flow will look it
		// up, and the shard's FIFO orders the event before the data.
		cs := &connState{cid: cid, shard: s.shardForConn(conn), conn: conn}
		s.conns[cid] = cs
		conn.SetCallbacks(
			func() { s.NewDataCallback(cid) },
			func() { s.pumpSend(cs) },
			func(err error) { s.connClosed(cid, err) },
		)
		conn.SetReceiveSink(s.makeSink(cs))
		s.stats.accepts.Inc()
		remote := conn.RemoteAddr()
		s.emit(cs.shard, nkchan.Receive, &nqe.Element{
			Op: nqe.OpNewConn, CID: ls.cid,
			Arg0: nqe.PackAddr(remote.Addr, remote.Port),
			Arg1: uint64(cid),
		})
		// Deliver anything that arrived before the accept.
		s.NewDataCallback(cid)
	}
}

// NewDataCallback is the prototype's nk_new_data_callback: "when data
// is received ServiceLib puts data into the huge pages, and adds an
// nqe to the NSM receive queue" (§3.2). It respects the per-connection
// shm receive window; OpRecv credits reopen it.
func (s *ServiceLib) NewDataCallback(cid uint32) {
	s.deliverData(cid, false)
}

func (s *ServiceLib) deliverData(cid uint32, flush bool) {
	cs := s.conns[cid]
	if cs == nil || cs.conn == nil {
		return
	}
	chunkSize := s.cfg.Pair.ChunkSize()
	for cs.recvDebt < s.cfg.RecvWindow {
		avail := cs.conn.ReadAvailable()
		if avail == 0 {
			if flush {
				s.emitRxChunk(cs)
			}
			if _, eof := cs.conn.Read(nil); eof {
				// The open receive chunk's bytes precede EOF in stream
				// order: emit them before the close event.
				s.emitRxChunk(cs)
				if !cs.eofSent {
					cs.eofSent = true
					s.emit(cs.shard, nkchan.Receive, &nqe.Element{Op: nqe.OpConnClosed, CID: cid, Status: nqe.StatusOK})
				}
			}
			return
		}
		// rcvBuf only fills after the sink stops consuming, so whatever
		// sits in the open receive chunk arrived earlier; emit it first
		// to preserve stream order.
		s.emitRxChunk(cs)
		// Coalesce sub-chunk dribbles: wait briefly for a full chunk so
		// bulk transfers move one nqe per chunk, not one per segment.
		if avail < chunkSize && !flush && s.cfg.CoalesceDelay > 0 {
			s.armRxFlush(cs)
			return
		}
		chunk, ok := s.cfg.Pair.Pages.AllocOn(cs.shard)
		if !ok {
			return // huge pages exhausted; credits will retrigger
		}
		buf := s.cfg.Pair.Pages.Bytes(chunk)
		n, eof := cs.conn.Read(buf)
		if n == 0 {
			s.cfg.Pair.Pages.Free(chunk)
			if eof && !cs.eofSent {
				cs.eofSent = true
				s.emit(cs.shard, nkchan.Receive, &nqe.Element{Op: nqe.OpConnClosed, CID: cid, Status: nqe.StatusOK})
			}
			return
		}
		cs.recvDebt += n
		s.stats.dataOut.Add(uint64(n))
		s.emit(cs.shard, nkchan.Receive, &nqe.Element{
			Op: nqe.OpNewData, CID: cid,
			DataOff: chunk.Offset, DataLen: uint32(n),
		})
		flush = false // only the first read after a flush may be short
	}
}

// makeSink builds the conn's receive sink (the rcvBuf bypass): in-order
// reassembled payload moves straight into the open huge-page chunk, one
// copy, instead of transiting the conn's receive buffer and being copied
// back out. Refusing bytes (shm window exhausted, pool empty, dead
// module) pushes them into the conn's rcvBuf, whose fill closes the TCP
// window — ordinary flow control remains the backstop.
func (s *ServiceLib) makeSink(cs *connState) func([]byte) int {
	return func(p []byte) int { return s.sinkData(cs, p) }
}

func (s *ServiceLib) sinkData(cs *connState, p []byte) int {
	if s.dead || cs.recvDebt >= s.cfg.RecvWindow {
		return 0
	}
	chunkSize := s.cfg.Pair.ChunkSize()
	consumed := 0
	for len(p) > 0 && cs.recvDebt < s.cfg.RecvWindow {
		if !cs.rxHave {
			chunk, ok := s.cfg.Pair.Pages.AllocOn(cs.shard)
			if !ok {
				break // pool exhausted; remainder buffers in the conn
			}
			cs.rxChunk, cs.rxHave, cs.rxFill = chunk, true, 0
		}
		n := copy(s.cfg.Pair.Pages.Bytes(cs.rxChunk)[cs.rxFill:], p)
		cs.rxFill += n
		consumed += n
		p = p[n:]
		s.stats.rxBytesCopied.Add(uint64(n))
		if cs.rxFill == chunkSize {
			s.emitRxChunk(cs)
		}
	}
	if cs.rxHave && cs.rxFill > 0 {
		s.armRxFlush(cs)
	}
	return consumed
}

// emitRxChunk pushes the open receive chunk (if it holds any bytes)
// toward the VM and charges it against the shm receive window.
func (s *ServiceLib) emitRxChunk(cs *connState) {
	if !cs.rxHave || cs.rxFill == 0 {
		return
	}
	cs.recvDebt += cs.rxFill
	s.stats.dataOut.Add(uint64(cs.rxFill))
	s.emit(cs.shard, nkchan.Receive, &nqe.Element{
		Op: nqe.OpNewData, CID: cs.cid,
		DataOff: cs.rxChunk.Offset, DataLen: uint32(cs.rxFill),
	})
	cs.rxHave, cs.rxFill = false, 0
}

// armRxFlush schedules delivery of a partially-filled receive chunk,
// waiting up to CoalesceDelay for more payload to top it off (the same
// batching the buffered path applies).
func (s *ServiceLib) armRxFlush(cs *connState) {
	if s.cfg.CoalesceDelay <= 0 {
		s.emitRxChunk(cs)
		return
	}
	if cs.flushPending {
		return
	}
	cs.flushPending = true
	cid := cs.cid
	s.cfg.Clock.AfterFunc(s.cfg.CoalesceDelay, func() {
		cs.flushPending = false
		s.deliverData(cid, true)
	})
}

// pumpSend drains a connection's queued chunks into the stack socket,
// returning credit as each is accepted. The hot path hands the whole
// chunk to the TCP conn as an owned span — no copy into the socket
// buffer; the conn holds its own huge-page reference and drops it when
// the last covering byte is cumulatively ACKed (or the conn dies). A
// configured Shaper gates the drain, enforcing the tenant's throughput
// allocation.
func (s *ServiceLib) pumpSend(cs *connState) {
	if cs.conn == nil || cs.shaperWait {
		return
	}
	pages := s.cfg.Pair.Pages
	for len(cs.sendQ) > 0 {
		head := &cs.sendQ[0]
		data := pages.Bytes(head.chunk)[head.off:head.size]
		if s.cfg.Shaper != nil {
			ok, retry := s.cfg.Shaper.Take(len(data))
			if !ok {
				cs.shaperWait = true
				s.cfg.Clock.AfterFunc(retry, func() {
					cs.shaperWait = false
					s.pumpSend(cs)
				})
				return
			}
		}
		if head.off == 0 && head.size <= cs.conn.WriteBufferCap() {
			// Zero-copy hand-off. The span takes its own reference so
			// that a module crash (which frees the queue's reference)
			// cannot pull the chunk out from under in-flight segments.
			chunk := head.chunk
			pages.Retain(chunk)
			if !cs.conn.WriteOwned(data, func() { pages.Free(chunk) }) {
				pages.Free(chunk) // hand-off refused: drop the span's reference
				if s.cfg.Shaper != nil {
					s.cfg.Shaper.Refund(len(data))
				}
				return // send buffer full (or conn closing); OnWritable resumes
			}
			s.stats.dataIn.Add(uint64(head.size))
			s.cfg.Tracer.End(head.trace, "stack.tx")
			pages.Free(chunk) // the queue's reference; the span keeps its own
			s.emit(cs.shard, nkchan.Completion, &nqe.Element{
				Op: nqe.OpSend, CID: cs.cid, DataLen: uint32(head.size), Status: nqe.StatusOK,
			})
			cs.sendQ = cs.sendQ[1:]
			continue
		}
		// Copy fallback: a chunk larger than the conn's whole send buffer
		// can never fit as a single span; stream it through Write (the
		// TCP layer counts that copy).
		n := cs.conn.Write(data)
		if s.cfg.Shaper != nil && n < len(data) {
			s.cfg.Shaper.Refund(len(data) - n)
		}
		head.off += n
		s.stats.dataIn.Add(uint64(n))
		if head.off < head.size {
			return // socket buffer full; OnWritable resumes
		}
		s.cfg.Tracer.End(head.trace, "stack.tx")
		pages.Free(head.chunk)
		s.emit(cs.shard, nkchan.Completion, &nqe.Element{
			Op: nqe.OpSend, CID: cs.cid, DataLen: uint32(head.size), Status: nqe.StatusOK,
		})
		cs.sendQ = cs.sendQ[1:]
	}
}

func (s *ServiceLib) connClosed(cid uint32, err error) {
	cs := s.conns[cid]
	if cs == nil {
		return
	}
	// Flush any remaining readable data first (synchronously — the
	// coalescing timer must not outlive the connection).
	s.deliverData(cid, true)
	if !cs.eofSent {
		cs.eofSent = true
		s.emit(cs.shard, nkchan.Receive, &nqe.Element{Op: nqe.OpConnClosed, CID: cid, Status: statusFromErr(err)})
	}
	// Release still-queued send chunks. (Chunks already handed to the
	// conn as spans are released by the conn's own teardown.)
	for _, c := range cs.sendQ {
		s.cfg.Pair.Pages.Free(c.chunk)
		s.cfg.Tracer.Drop(c.trace)
	}
	cs.sendQ = nil
	// deliverData flushed the open receive chunk if it held bytes; an
	// empty one allocated but never filled would leak without this.
	if cs.rxHave {
		s.cfg.Pair.Pages.Free(cs.rxChunk)
		cs.rxHave, cs.rxFill = false, 0
	}
	delete(s.conns, cid)
}

// Crash models the module process dying: all per-connection state
// vanishes, queued send chunks and overflowed data events return to the
// huge-page pool (the pages belong to the hypervisor, not the module),
// and every subsequent pump, emission, or stray stack callback is a
// no-op until Rebind. The caller is responsible for killing the
// module's stack and resetting the CoreEngine's tables.
func (s *ServiceLib) Crash() {
	s.dead = true
	cids := make([]uint32, 0, len(s.conns))
	for cid := range s.conns {
		cids = append(cids, cid)
	}
	sort.Slice(cids, func(i, j int) bool { return cids[i] < cids[j] })
	for _, cid := range cids {
		cs := s.conns[cid]
		for _, c := range cs.sendQ {
			s.cfg.Pair.Pages.Free(c.chunk)
			s.cfg.Tracer.Drop(c.trace)
		}
		cs.sendQ = nil
		if cs.rxHave {
			s.cfg.Pair.Pages.Free(cs.rxChunk)
			cs.rxHave, cs.rxFill = false, 0
		}
		// Detach the sockets so timers still in flight (shaper retries,
		// coalescing flushes) find nothing to drive. Chunks the conns
		// hold as send spans are released when the hypervisor kills the
		// module's stack (each reference was the span's own).
		cs.conn = nil
		cs.udp = nil
	}
	for shard := range s.overflow {
		for _, se := range s.overflow[shard] {
			if se.e.Op == nqe.OpNewData && se.e.DataLen > 0 {
				s.cfg.Pair.Pages.Free(shm.Chunk{Offset: se.e.DataOff})
			}
			s.cfg.Tracer.Drop(se.e.Trace)
		}
		s.overflow[shard] = nil
	}
	s.conns = make(map[uint32]*connState)
	s.listeners = make(map[uint32]*listenerState)
}

// Rebind attaches a rebooted module's fresh stack and resumes pumping,
// draining any jobs that queued up during the outage. Connection IDs
// stay monotonic across the restart, so stale references from before
// the crash can never collide with new connections.
func (s *ServiceLib) Rebind(st *stack.Stack) {
	s.cfg.Stack = st
	s.dead = false
	for shard := range s.cfg.Pair.Shards {
		s.pump(shard)
	}
}

// statusFromErr maps stack errors onto the nqe status space carried
// over the wire-format queues.
func statusFromErr(err error) nqe.Status {
	if err == nil {
		return nqe.StatusOK
	}
	msg := err.Error()
	switch {
	case strings.Contains(msg, "refused"):
		return nqe.StatusConnRefused
	case strings.Contains(msg, "reset"), strings.Contains(msg, "aborted"):
		return nqe.StatusConnReset
	case strings.Contains(msg, "timed out"):
		return nqe.StatusTimeout
	case strings.Contains(msg, "no route"):
		return nqe.StatusUnreachable
	default:
		return nqe.StatusInvalid
	}
}
