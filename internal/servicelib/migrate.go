package servicelib

import (
	"fmt"
	"sort"

	"netkernel/internal/nkchan"
	"netkernel/internal/nqe"
	"netkernel/internal/proto/ipv4"
	"netkernel/internal/stack"
)

// This file is the ServiceLib half of live NSM migration (DESIGN.md
// §12): moving a pump's entire guest-facing state — connection IDs,
// listeners, UDP bindings, queued send chunks, receive debt — onto a
// successor stack without the guest observing anything. The huge pages
// and rings belong to the VM↔engine channel, which survives the
// migration untouched; only the stack side is rebuilt.

// MigrateOpts tunes one pump's migration.
type MigrateOpts struct {
	// FailRestoreAfter, when > 0, injects a restore fault once that many
	// connections have been revived on the successor (abort-path
	// testing): Migrate returns an error mid-restore, leaving the module
	// in exactly the half-migrated state the abort protocol must clean
	// up with crash semantics.
	FailRestoreAfter int
}

// Migrate moves this pump's guest-facing state onto the successor
// stack st, serving as module nsmID with congestion control cc. Every
// TCP connection is serialized, silently detached from the donor, and
// revived on st; listeners re-listen and UDP sockets re-bind there.
// Connection IDs, shard pinning, send queues, and flow-control debt
// all survive in place, so the guest's descriptors keep working and
// in-flight chunks replay on the revived sockets.
//
// When cc differs from a connection's serialized algorithm the restore
// is a congestion-control hot-swap: the new algorithm starts from its
// fresh Init state and relearns the path (migrating onto "the BBR NSM"
// switches the flow to BBR).
//
// On error the pump is half-migrated and unusable: the caller must
// fall back to crash semantics (Crash, kill both stacks, reset the
// engine). Returns how many connections were restored.
func (s *ServiceLib) Migrate(st *stack.Stack, nsmID uint32, cc string, opts MigrateOpts) (int, error) {
	if s.dead {
		return 0, fmt.Errorf("servicelib: migrate on dead module")
	}

	// Listeners first (sorted by cID for deterministic replay): the
	// successor must be accepting before any frame reaches it, so a
	// detached SYN-RCVD peer's retransmitted SYN re-establishes against
	// the new stack instead of drawing an RST.
	lids := make([]uint32, 0, len(s.listeners))
	for cid := range s.listeners {
		lids = append(lids, cid)
	}
	sort.Slice(lids, func(i, j int) bool { return lids[i] < lids[j] })
	restored := 0
	for _, cid := range lids {
		ls := s.listeners[cid]
		old := ls.lst
		lst, err := st.Listen(old.Addr().Port, old.MaxBacklog(), stack.SocketOptions{CC: cc})
		if err != nil {
			return 0, fmt.Errorf("servicelib: re-listen port %d: %w", old.Addr().Port, err)
		}
		ls.lst = lst
		lsRef := ls
		lst.OnAcceptable = func() { s.NewAcceptCallback(lsRef) }
		// Established connections sitting in the old backlog — the guest
		// never accepted them, but the peer thinks they're up — move into
		// the successor's backlog so a later accept finds them. Deposit
		// fires the acceptable notification if the guest is waiting.
		old.OnAcceptable = nil
		for {
			conn, ok := old.Accept()
			if !ok {
				break
			}
			snap := conn.Snapshot()
			conn.Detach()
			if snap == nil {
				continue
			}
			c, err := st.RestoreConn(snap, stack.SocketOptions{CC: cc})
			if err != nil {
				return restored, fmt.Errorf("servicelib: restore backlogged conn on port %d: %w", old.Addr().Port, err)
			}
			lst.Deposit(c)
			restored++
		}
	}

	cids := make([]uint32, 0, len(s.conns))
	for cid := range s.conns {
		cids = append(cids, cid)
	}
	sort.Slice(cids, func(i, j int) bool { return cids[i] < cids[j] })
	var resumed []uint32
	for _, cid := range cids {
		cs := s.conns[cid]
		if cs.udp != nil {
			port := cs.udp.Port()
			sock, err := st.OpenUDP(port, s.udpRecv(cid, cs.shard))
			if err != nil {
				return restored, fmt.Errorf("servicelib: re-bind udp port %d: %w", port, err)
			}
			cs.udp = sock
			continue
		}
		if cs.conn == nil {
			continue // socket created but never connected: nothing stack-side
		}
		snap := cs.conn.Snapshot()
		cs.conn.Detach()
		cs.conn = nil
		if snap == nil {
			// Closed under us before the teardown callback ran: report it
			// the way the teardown would have.
			delete(s.conns, cid)
			s.emit(cs.shard, nkchan.Receive, &nqe.Element{Op: nqe.OpConnClosed, CID: cid, Status: nqe.StatusOK})
			s.freeConnState(cs)
			continue
		}
		if opts.FailRestoreAfter > 0 && restored >= opts.FailRestoreAfter {
			return restored, fmt.Errorf("servicelib: injected restore fault after %d conns", restored)
		}
		conn, err := st.RestoreConn(snap, s.restoreOptions(cid, cs.shard, cc))
		if err != nil {
			return restored, fmt.Errorf("servicelib: restore cid %d: %w", cid, err)
		}
		cs.conn = conn
		conn.SetReceiveSink(s.makeSink(cs))
		restored++
		resumed = append(resumed, cid)
	}

	s.cfg.Stack = st
	s.cfg.NSMID = nsmID
	s.cfg.CC = cc

	// Resume: queued send chunks continue into the revived sockets and
	// buffered receive bytes flow toward the guest. The emissions land
	// in the rings now; the engine's gate releases them to the VM when
	// the migration stall elapses.
	for _, cid := range resumed {
		if cs := s.conns[cid]; cs != nil {
			s.pumpSend(cs)
		}
		s.deliverData(cid, false)
	}
	s.flushAllReady()
	for i := range s.cfg.Pair.Shards {
		s.cfg.Pair.Shards[i].NSMCompletion.Flush()
		s.cfg.Pair.Shards[i].NSMReceive.Flush()
	}
	return restored, nil
}

// restoreOptions rebuilds the socket callbacks handleConnect and the
// accept path would have installed, bound to the surviving cID. The
// OnEstablished callback matters only for a connection migrated
// mid-handshake (SYN-SENT): its original dial's completion fires
// against the successor stack.
func (s *ServiceLib) restoreOptions(cid uint32, shard int, cc string) stack.SocketOptions {
	return stack.SocketOptions{
		CC: cc,
		OnEstablished: func(err error) {
			st := nqe.StatusOK
			if err != nil {
				st = statusFromErr(err)
			}
			s.emit(shard, nkchan.Receive, &nqe.Element{Op: nqe.OpEstablished, CID: cid, Status: st})
		},
		OnReadable: func() { s.NewDataCallback(cid) },
		OnWritable: func() {
			if c := s.conns[cid]; c != nil {
				s.pumpSend(c)
			}
		},
		OnClose: func(err error) { s.connClosed(cid, err) },
	}
}

// udpRecv builds the datagram receive path for socket cid on the given
// shard: arriving datagrams go straight into huge-page chunks and
// OpNewData events carrying the source address. Shared by the original
// bind and the migration re-bind.
func (s *ServiceLib) udpRecv(cid uint32, shard int) func(src ipv4.Addr, srcPort uint16, data []byte) {
	return func(src ipv4.Addr, srcPort uint16, data []byte) {
		if len(data) > s.cfg.Pair.ChunkSize() {
			return // cannot represent; drop (UDP semantics)
		}
		chunk, ok := s.cfg.Pair.Pages.AllocSized(len(data), shard)
		if !ok {
			return // pool exhausted; drop (UDP semantics)
		}
		s.cfg.Pair.Pages.Write(chunk, data)
		s.stats.rxBytesCopied.Add(uint64(len(data)))
		s.stats.dataOut.Add(uint64(len(data)))
		s.emit(shard, nkchan.Receive, &nqe.Element{
			Op: nqe.OpNewData, CID: cid,
			DataOff: chunk.Offset, DataLen: uint32(len(data)),
			Arg0: nqe.PackAddr(src, srcPort),
		})
		if c := s.conns[cid]; c != nil && c.polled {
			s.queueReady(shard, cid, nqe.ReadyReadable)
		}
	}
}
