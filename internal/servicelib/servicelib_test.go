package servicelib

import (
	"bytes"
	"testing"
	"time"

	"netkernel/internal/netsim"
	"netkernel/internal/nkchan"
	"netkernel/internal/nqe"
	"netkernel/internal/proto/ethernet"
	"netkernel/internal/proto/ipv4"
	"netkernel/internal/proto/tcp"
	"netkernel/internal/shm"
	"netkernel/internal/sim"
	"netkernel/internal/stack"
)

var (
	ipNSM  = ipv4.Addr{10, 0, 0, 1}
	ipPeer = ipv4.Addr{10, 0, 0, 2}
)

type harness struct {
	loop *sim.Loop
	pair *nkchan.Pair
	svc  *ServiceLib
	peer *stack.Stack

	completions []nqe.Element
	events      []nqe.Element
	seq         uint64
}

func newHarness(t *testing.T, cc string) *harness {
	t.Helper()
	loop := sim.NewLoop()
	rng := sim.NewRNG(11)
	pair, err := nkchan.NewPair(nkchan.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{loop: loop, pair: pair}

	nsmStack := stack.New(stack.Config{Clock: loop, RNG: sim.NewRNG(1), Name: "nsm", MinRTO: 20 * time.Millisecond})
	h.peer = stack.New(stack.Config{Clock: loop, RNG: sim.NewRNG(2), Name: "peer", MinRTO: 20 * time.Millisecond})

	macA := ethernet.MAC{2, 0, 0, 0, 0, 1}
	macB := ethernet.MAC{2, 0, 0, 0, 0, 2}
	nicA := netsim.NewNIC(loop, netsim.MAC(macA))
	nicB := netsim.NewNIC(loop, netsim.MAC(macB))
	ab, ba := netsim.Duplex(loop, rng, netsim.LinkConfig{Rate: 10 * netsim.Gbps, Delay: 100 * time.Microsecond}, nicA, nicB)
	nicA.AttachWire(ab)
	nicB.AttachWire(ba)
	nsmStack.AttachInterface(macA, ipNSM, 1500, 24, ipv4.Addr{}, nicA.Send)
	h.peer.AttachInterface(macB, ipPeer, 1500, 24, ipv4.Addr{}, nicB.Send)
	nicA.SetHandler(nsmStack.DeliverFrame)
	nicB.SetHandler(h.peer.DeliverFrame)

	// Drain the NSM-side output queues into recording slices, as the
	// CoreEngine would.
	pair.KickEngineNSM = func(int) {
		var e nqe.Element
		for pair.NSMCompletion.Pop(&e) {
			h.completions = append(h.completions, e)
		}
		for pair.NSMReceive.Pop(&e) {
			h.events = append(h.events, e)
		}
	}

	h.svc = New(Config{Clock: loop, NSMID: 5, Pair: pair, Stack: nsmStack, CC: cc})
	return h
}

func (h *harness) job(e nqe.Element) {
	h.seq++
	e.Seq = h.seq
	e.Source = nqe.FromVM
	e.NSMID = 5
	if !h.pair.NSMJob.Push(&e) {
		panic("job queue full")
	}
	h.pair.KickNSM(0)
}

// newSocket issues OpSocket and returns the assigned cID.
func (h *harness) newSocket(t *testing.T) uint32 {
	t.Helper()
	before := len(h.completions)
	h.job(nqe.Element{Op: nqe.OpSocket})
	if len(h.completions) != before+1 {
		t.Fatal("no socket completion")
	}
	c := h.completions[before]
	if c.Op != nqe.OpSocket || c.CID == 0 || c.NSMID != 5 {
		t.Fatalf("socket completion %+v", c)
	}
	return c.CID
}

func TestSocketAllocatesCIDs(t *testing.T) {
	h := newHarness(t, "cubic")
	c1 := h.newSocket(t)
	c2 := h.newSocket(t)
	if c1 == c2 {
		t.Fatal("duplicate cIDs")
	}
}

func TestConnectEmitsEstablished(t *testing.T) {
	h := newHarness(t, "cubic")
	h.peer.Listen(80, 4, stack.SocketOptions{})
	cid := h.newSocket(t)
	h.job(nqe.Element{Op: nqe.OpConnect, CID: cid, Arg0: nqe.PackAddr(ipPeer, 80)})
	h.loop.RunFor(200 * time.Millisecond)
	if len(h.events) == 0 {
		t.Fatal("no events after connect")
	}
	ev := h.events[0]
	if ev.Op != nqe.OpEstablished || ev.CID != cid || ev.Status != nqe.StatusOK {
		t.Fatalf("event %+v", ev)
	}
}

func TestConnectRefusedStatus(t *testing.T) {
	h := newHarness(t, "cubic")
	cid := h.newSocket(t)
	h.job(nqe.Element{Op: nqe.OpConnect, CID: cid, Arg0: nqe.PackAddr(ipPeer, 9999)})
	h.loop.RunFor(500 * time.Millisecond)
	if len(h.events) == 0 {
		t.Fatal("no establishment failure event")
	}
	if h.events[0].Status == nqe.StatusOK {
		t.Fatal("refused connect reported OK")
	}
}

func TestNSMUsesItsCC(t *testing.T) {
	h := newHarness(t, "bbr")
	h.peer.Listen(80, 4, stack.SocketOptions{})
	cid := h.newSocket(t)
	h.job(nqe.Element{Op: nqe.OpConnect, CID: cid, Arg0: nqe.PackAddr(ipPeer, 80)})
	h.loop.RunFor(200 * time.Millisecond)
	found := ""
	h.svc.cfg.Stack.Conns(func(c *tcp.Conn) { found = c.CongestionControl().Name() })
	if found != "bbr" {
		t.Fatalf("NSM stack conn runs %q", found)
	}
	if h.svc.CC() != "bbr" {
		t.Fatal("CC() broken")
	}
}

// establish sets up a connection and returns its cID plus the peer's
// half.
func (h *harness) establish(t *testing.T) (uint32, *tcp.Conn) {
	t.Helper()
	l, err := h.peer.Listen(80, 4, stack.SocketOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cid := h.newSocket(t)
	h.job(nqe.Element{Op: nqe.OpConnect, CID: cid, Arg0: nqe.PackAddr(ipPeer, 80)})
	h.loop.RunFor(200 * time.Millisecond)
	peerConn, ok := l.Accept()
	if !ok {
		t.Fatal("peer accept failed")
	}
	return cid, peerConn
}

func TestSendPathWritesToWire(t *testing.T) {
	h := newHarness(t, "cubic")
	cid, peerConn := h.establish(t)

	msg := []byte("through the huge pages onto the wire")
	chunk, _ := h.pair.Pages.Alloc()
	h.pair.Pages.Write(chunk, msg)
	h.job(nqe.Element{Op: nqe.OpSend, CID: cid, DataOff: chunk.Offset, DataLen: uint32(len(msg))})
	h.loop.RunFor(100 * time.Millisecond)

	buf := make([]byte, 256)
	n, _ := peerConn.Read(buf)
	if !bytes.Equal(buf[:n], msg) {
		t.Fatalf("peer read %q", buf[:n])
	}
	// Send completion returned the credit and freed the chunk.
	var sendComp *nqe.Element
	for i := range h.completions {
		if h.completions[i].Op == nqe.OpSend {
			sendComp = &h.completions[i]
		}
	}
	if sendComp == nil || sendComp.DataLen != uint32(len(msg)) {
		t.Fatalf("send completion %+v", sendComp)
	}
	if h.pair.Pages.FreeCount() != h.pair.Pages.Chunks() {
		t.Fatal("chunk not freed after send")
	}
}

func TestReceivePathEmitsNewData(t *testing.T) {
	h := newHarness(t, "cubic")
	cid, peerConn := h.establish(t)

	msg := bytes.Repeat([]byte("x"), 20000)
	peerConn.Write(msg)
	h.loop.RunFor(200 * time.Millisecond)

	var got bytes.Buffer
	for _, ev := range h.events {
		if ev.Op != nqe.OpNewData || ev.CID != cid {
			continue
		}
		buf := make([]byte, ev.DataLen)
		h.pair.Pages.Read(shm.Chunk{Offset: ev.DataOff}, buf, int(ev.DataLen))
		got.Write(buf)
	}
	if !bytes.Equal(got.Bytes(), msg) {
		t.Fatalf("reassembled %d bytes of %d", got.Len(), len(msg))
	}
}

func TestReceiveWindowBackpressure(t *testing.T) {
	loopHarness := newHarness(t, "cubic")
	h := loopHarness
	// Shrink the shm receive window.
	h.svc.cfg.RecvWindow = 16 << 10
	cid, peerConn := h.establish(t)

	peerConn.Write(make([]byte, 200<<10))
	h.loop.RunFor(300 * time.Millisecond)

	outstanding := 0
	for _, ev := range h.events {
		if ev.Op == nqe.OpNewData {
			outstanding += int(ev.DataLen)
		}
	}
	if outstanding > 32<<10 {
		t.Fatalf("NSM pushed %d bytes past a 16KB window", outstanding)
	}

	// Returning credit resumes delivery.
	h.job(nqe.Element{Op: nqe.OpRecv, CID: cid, Arg0: uint64(outstanding)})
	h.loop.RunFor(300 * time.Millisecond)
	after := 0
	for _, ev := range h.events {
		if ev.Op == nqe.OpNewData {
			after += int(ev.DataLen)
		}
	}
	if after <= outstanding {
		t.Fatal("credit did not resume delivery")
	}
}

func TestListenAcceptEmitsNewConn(t *testing.T) {
	h := newHarness(t, "cubic")
	lcid := h.newSocket(t)
	h.job(nqe.Element{Op: nqe.OpListen, CID: lcid, Arg0: 8080, Arg1: 8})
	// Listen completion OK.
	found := false
	for _, c := range h.completions {
		if c.Op == nqe.OpListen && c.Status == nqe.StatusOK {
			found = true
		}
	}
	if !found {
		t.Fatal("no listen completion")
	}

	_, err := h.peer.Dial(tcp.AddrPort{Addr: ipNSM, Port: 8080}, stack.SocketOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h.loop.RunFor(200 * time.Millisecond)

	var nc *nqe.Element
	for i := range h.events {
		if h.events[i].Op == nqe.OpNewConn {
			nc = &h.events[i]
		}
	}
	if nc == nil || nc.CID != lcid || nc.Arg1 == 0 {
		t.Fatalf("new-conn event %+v", nc)
	}
	ip, _ := nqe.UnpackAddr(nc.Arg0)
	if ip != ipPeer {
		t.Fatalf("peer addr %v", ip)
	}
	if h.svc.Stats().Accepts != 1 {
		t.Fatalf("Accepts = %d", h.svc.Stats().Accepts)
	}
}

func TestListenPortConflictStatus(t *testing.T) {
	h := newHarness(t, "cubic")
	c1 := h.newSocket(t)
	h.job(nqe.Element{Op: nqe.OpListen, CID: c1, Arg0: 80, Arg1: 4})
	c2 := h.newSocket(t)
	h.job(nqe.Element{Op: nqe.OpListen, CID: c2, Arg0: 80, Arg1: 4})
	bad := false
	for _, c := range h.completions {
		if c.Op == nqe.OpListen && c.Status == nqe.StatusAddrInUse {
			bad = true
		}
	}
	if !bad {
		t.Fatal("port conflict not reported")
	}
}

func TestCloseEmitsConnClosed(t *testing.T) {
	h := newHarness(t, "cubic")
	cid, peerConn := h.establish(t)
	peerConn.Close() // peer initiates
	h.loop.RunFor(300 * time.Millisecond)
	closedSeen := false
	for _, ev := range h.events {
		if ev.Op == nqe.OpConnClosed && ev.CID == cid {
			closedSeen = true
		}
	}
	if !closedSeen {
		t.Fatal("no conn-closed event after peer FIN")
	}
}

func TestVMInitiatedClose(t *testing.T) {
	h := newHarness(t, "cubic")
	cid, peerConn := h.establish(t)
	h.job(nqe.Element{Op: nqe.OpClose, CID: cid})
	h.loop.RunFor(300 * time.Millisecond)
	buf := make([]byte, 16)
	if _, eof := peerConn.Read(buf); !eof {
		t.Fatal("peer never saw FIN from the NSM")
	}
}

func TestSendToUnknownCIDFreesChunk(t *testing.T) {
	h := newHarness(t, "cubic")
	chunk, _ := h.pair.Pages.Alloc()
	h.job(nqe.Element{Op: nqe.OpSend, CID: 777, DataOff: chunk.Offset, DataLen: 100})
	if h.pair.Pages.FreeCount() != h.pair.Pages.Chunks() {
		t.Fatal("chunk leaked on unknown cID")
	}
}
