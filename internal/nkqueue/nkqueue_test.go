package nkqueue

import (
	"testing"
	"time"

	"netkernel/internal/nqe"
	"netkernel/internal/shm"
)

func TestQueuePushPop(t *testing.T) {
	q, err := NewQueue(Config{Slots: 8})
	if err != nil {
		t.Fatal(err)
	}
	in := nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM, VMID: 1, FD: 5, Seq: 99, DataLen: 1448}
	if !q.Push(&in) {
		t.Fatal("push failed")
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d", q.Len())
	}
	var out nqe.Element
	if !q.Pop(&out) {
		t.Fatal("pop failed")
	}
	if out != in {
		t.Fatalf("pop = %+v, want %+v", out, in)
	}
	if q.Pop(&out) {
		t.Fatal("pop succeeded on empty queue")
	}
}

func TestQueueFull(t *testing.T) {
	q, _ := NewQueue(Config{Slots: 2})
	e := nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM}
	if !q.Push(&e) || !q.Push(&e) {
		t.Fatal("push failed below capacity")
	}
	if q.Push(&e) {
		t.Fatal("push succeeded beyond capacity")
	}
}

func TestQueuePopBatch(t *testing.T) {
	q, _ := NewQueue(Config{Slots: 16})
	for i := 0; i < 10; i++ {
		e := nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM, Seq: uint64(i)}
		q.Push(&e)
	}
	batch := make([]nqe.Element, 4)
	if n := q.PopBatch(batch); n != 4 {
		t.Fatalf("first batch = %d, want 4", n)
	}
	for i, e := range batch {
		if e.Seq != uint64(i) {
			t.Fatalf("batch[%d].Seq = %d", i, e.Seq)
		}
	}
	rest := make([]nqe.Element, 16)
	if n := q.PopBatch(rest); n != 6 {
		t.Fatalf("second batch = %d, want 6", n)
	}
}

func TestMoveIsVerbatim(t *testing.T) {
	src, _ := NewQueue(Config{Slots: 8})
	dst, _ := NewQueue(Config{Slots: 8})
	in := nqe.Element{Op: nqe.OpConnect, Source: nqe.FromVM, VMID: 7, FD: 3, Seq: 123, Arg0: nqe.PackAddr([4]byte{10, 0, 0, 2}, 80)}
	src.Push(&in)
	if !Move(dst, src) {
		t.Fatal("move failed")
	}
	if src.Len() != 0 || dst.Len() != 1 {
		t.Fatalf("lens after move: src=%d dst=%d", src.Len(), dst.Len())
	}
	var out nqe.Element
	dst.Pop(&out)
	if out != in {
		t.Fatalf("moved element mutated: %+v vs %+v", out, in)
	}
}

func TestMoveEdgeCases(t *testing.T) {
	src, _ := NewQueue(Config{Slots: 2})
	dst, _ := NewQueue(Config{Slots: 2})
	if Move(dst, src) {
		t.Fatal("move from empty queue succeeded")
	}
	e := nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM}
	src.Push(&e)
	dst.Push(&e)
	dst.Push(&e) // dst now full
	if Move(dst, src) {
		t.Fatal("move into full queue succeeded")
	}
	if src.Len() != 1 {
		t.Fatal("failed move consumed the source element")
	}
}

func TestPriorityQueueOrdering(t *testing.T) {
	p, err := NewPriorityQueue(Config{Slots: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Interleave: bulk data first, then a connection event.
	data := nqe.Element{Op: nqe.OpNewData, Source: nqe.FromNSM, Seq: 1}
	conn := nqe.Element{Op: nqe.OpNewConn, Source: nqe.FromNSM, Seq: 2}
	p.Push(&data)
	p.Push(&data)
	p.Push(&conn)
	var e nqe.Element
	if !p.Pop(&e) || e.Op != nqe.OpNewConn {
		t.Fatalf("first pop = %v, want the connection event (HoL avoidance)", e.Op)
	}
	if !p.Pop(&e) || e.Op != nqe.OpNewData {
		t.Fatalf("second pop = %v, want data", e.Op)
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d", p.Len())
	}
}

func TestPriorityQueueDataFloodDoesNotBlockConn(t *testing.T) {
	p, _ := NewPriorityQueue(Config{Slots: 4})
	data := nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM}
	for p.Push(&data) {
	}
	// Data ring is full, but a connection event still gets through.
	conn := nqe.Element{Op: nqe.OpConnect, Source: nqe.FromVM}
	if !p.Push(&conn) {
		t.Fatal("connection event blocked behind full data ring")
	}
	var e nqe.Element
	if !p.Pop(&e) || e.Op != nqe.OpConnect {
		t.Fatal("connection event not delivered first")
	}
}

func TestNewSet(t *testing.T) {
	for _, priority := range []bool{false, true} {
		s, err := NewSet(Config{Slots: 8, Priority: priority})
		if err != nil {
			t.Fatal(err)
		}
		for name, q := range map[string]Q{"job": s.Job, "completion": s.Completion, "receive": s.Receive} {
			e := nqe.Element{Op: nqe.OpSocket, Source: nqe.FromVM, Seq: 7}
			if !q.Push(&e) {
				t.Fatalf("%s (priority=%v): push failed", name, priority)
			}
			var out nqe.Element
			if !q.Pop(&out) || out.Seq != 7 {
				t.Fatalf("%s (priority=%v): pop = %+v", name, priority, out)
			}
		}
	}
}

func TestNewQueueRejectsBadSlots(t *testing.T) {
	if _, err := NewQueue(Config{Slots: 3}); err == nil {
		t.Fatal("non-power-of-two slot count accepted")
	}
	if _, err := NewPriorityQueue(Config{Slots: 3}); err == nil {
		t.Fatal("non-power-of-two slot count accepted by priority queue")
	}
	if _, err := NewSet(Config{Slots: 3}); err == nil {
		t.Fatal("non-power-of-two slot count accepted by set")
	}
}

func TestQueueDoorbellIntegration(t *testing.T) {
	q, _ := NewQueue(Config{Slots: 8, Mode: shm.BatchedInterrupt, Batch: 2})
	e := nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM}
	q.Push(&e)
	if q.Doorbell().Wait(5 * time.Millisecond) {
		t.Fatal("doorbell fired before the batch filled")
	}
	q.Push(&e) // second push completes the batch of 2
	if !q.Doorbell().Wait(time.Second) {
		t.Fatal("doorbell did not fire after batch")
	}
	// Flush on a partial batch also wakes the consumer.
	q.Push(&e)
	q.Flush()
	if !q.Doorbell().Wait(time.Second) {
		t.Fatal("Flush did not fire the doorbell")
	}
}
