package nkqueue

import (
	"runtime"
	"testing"
	"time"

	"netkernel/internal/nqe"
	"netkernel/internal/shm"
)

func TestQueuePushPop(t *testing.T) {
	q, err := NewQueue(Config{Slots: 8})
	if err != nil {
		t.Fatal(err)
	}
	in := nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM, VMID: 1, FD: 5, Seq: 99, DataLen: 1448}
	if !q.Push(&in) {
		t.Fatal("push failed")
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d", q.Len())
	}
	var out nqe.Element
	if !q.Pop(&out) {
		t.Fatal("pop failed")
	}
	if out != in {
		t.Fatalf("pop = %+v, want %+v", out, in)
	}
	if q.Pop(&out) {
		t.Fatal("pop succeeded on empty queue")
	}
}

func TestQueueFull(t *testing.T) {
	q, _ := NewQueue(Config{Slots: 2})
	e := nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM}
	if !q.Push(&e) || !q.Push(&e) {
		t.Fatal("push failed below capacity")
	}
	if q.Push(&e) {
		t.Fatal("push succeeded beyond capacity")
	}
}

func TestQueuePopBatch(t *testing.T) {
	q, _ := NewQueue(Config{Slots: 16})
	for i := 0; i < 10; i++ {
		e := nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM, Seq: uint64(i)}
		q.Push(&e)
	}
	batch := make([]nqe.Element, 4)
	if n := q.PopBatch(batch); n != 4 {
		t.Fatalf("first batch = %d, want 4", n)
	}
	for i, e := range batch {
		if e.Seq != uint64(i) {
			t.Fatalf("batch[%d].Seq = %d", i, e.Seq)
		}
	}
	rest := make([]nqe.Element, 16)
	if n := q.PopBatch(rest); n != 6 {
		t.Fatalf("second batch = %d, want 6", n)
	}
}

func TestMoveIsVerbatim(t *testing.T) {
	src, _ := NewQueue(Config{Slots: 8})
	dst, _ := NewQueue(Config{Slots: 8})
	in := nqe.Element{Op: nqe.OpConnect, Source: nqe.FromVM, VMID: 7, FD: 3, Seq: 123, Arg0: nqe.PackAddr([4]byte{10, 0, 0, 2}, 80)}
	src.Push(&in)
	if !Move(dst, src) {
		t.Fatal("move failed")
	}
	if src.Len() != 0 || dst.Len() != 1 {
		t.Fatalf("lens after move: src=%d dst=%d", src.Len(), dst.Len())
	}
	var out nqe.Element
	dst.Pop(&out)
	if out != in {
		t.Fatalf("moved element mutated: %+v vs %+v", out, in)
	}
}

func TestMoveEdgeCases(t *testing.T) {
	src, _ := NewQueue(Config{Slots: 2})
	dst, _ := NewQueue(Config{Slots: 2})
	if Move(dst, src) {
		t.Fatal("move from empty queue succeeded")
	}
	e := nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM}
	src.Push(&e)
	dst.Push(&e)
	dst.Push(&e) // dst now full
	if Move(dst, src) {
		t.Fatal("move into full queue succeeded")
	}
	if src.Len() != 1 {
		t.Fatal("failed move consumed the source element")
	}
}

func TestPriorityQueueOrdering(t *testing.T) {
	p, err := NewPriorityQueue(Config{Slots: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Interleave: bulk data first, then a connection event.
	data := nqe.Element{Op: nqe.OpNewData, Source: nqe.FromNSM, Seq: 1}
	conn := nqe.Element{Op: nqe.OpNewConn, Source: nqe.FromNSM, Seq: 2}
	p.Push(&data)
	p.Push(&data)
	p.Push(&conn)
	var e nqe.Element
	if !p.Pop(&e) || e.Op != nqe.OpNewConn {
		t.Fatalf("first pop = %v, want the connection event (HoL avoidance)", e.Op)
	}
	if !p.Pop(&e) || e.Op != nqe.OpNewData {
		t.Fatalf("second pop = %v, want data", e.Op)
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d", p.Len())
	}
}

func TestPriorityQueueDataFloodDoesNotBlockConn(t *testing.T) {
	p, _ := NewPriorityQueue(Config{Slots: 4})
	data := nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM}
	for p.Push(&data) {
	}
	// Data ring is full, but a connection event still gets through.
	conn := nqe.Element{Op: nqe.OpConnect, Source: nqe.FromVM}
	if !p.Push(&conn) {
		t.Fatal("connection event blocked behind full data ring")
	}
	var e nqe.Element
	if !p.Pop(&e) || e.Op != nqe.OpConnect {
		t.Fatal("connection event not delivered first")
	}
}

func TestNewSet(t *testing.T) {
	for _, priority := range []bool{false, true} {
		s, err := NewSet(Config{Slots: 8, Priority: priority})
		if err != nil {
			t.Fatal(err)
		}
		for name, q := range map[string]Q{"job": s.Job, "completion": s.Completion, "receive": s.Receive} {
			e := nqe.Element{Op: nqe.OpSocket, Source: nqe.FromVM, Seq: 7}
			if !q.Push(&e) {
				t.Fatalf("%s (priority=%v): push failed", name, priority)
			}
			var out nqe.Element
			if !q.Pop(&out) || out.Seq != 7 {
				t.Fatalf("%s (priority=%v): pop = %+v", name, priority, out)
			}
		}
	}
}

func TestNewQueueRejectsBadSlots(t *testing.T) {
	if _, err := NewQueue(Config{Slots: 3}); err == nil {
		t.Fatal("non-power-of-two slot count accepted")
	}
	if _, err := NewPriorityQueue(Config{Slots: 3}); err == nil {
		t.Fatal("non-power-of-two slot count accepted by priority queue")
	}
	if _, err := NewSet(Config{Slots: 3}); err == nil {
		t.Fatal("non-power-of-two slot count accepted by set")
	}
}

func TestQueueDoorbellIntegration(t *testing.T) {
	q, _ := NewQueue(Config{Slots: 8, Mode: shm.BatchedInterrupt, Batch: 2})
	e := nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM}
	q.Push(&e)
	if q.Doorbell().Wait(5 * time.Millisecond) {
		t.Fatal("doorbell fired before the batch filled")
	}
	q.Push(&e) // second push completes the batch of 2
	if !q.Doorbell().Wait(time.Second) {
		t.Fatal("doorbell did not fire after batch")
	}
	// Flush on a partial batch also wakes the consumer.
	q.Push(&e)
	q.Flush()
	if !q.Doorbell().Wait(time.Second) {
		t.Fatal("Flush did not fire the doorbell")
	}
}

func TestMoveBatchVerbatimAndOrdered(t *testing.T) {
	src, _ := NewQueue(Config{Slots: 16})
	dst, _ := NewQueue(Config{Slots: 16})
	for i := 0; i < 10; i++ {
		e := nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM, Seq: uint64(i), DataLen: 1448}
		src.Push(&e)
	}
	if n := MoveBatch(dst, src, 64); n != 10 {
		t.Fatalf("MoveBatch moved %d, want 10", n)
	}
	if src.Len() != 0 || dst.Len() != 10 {
		t.Fatalf("lens after batch move: src=%d dst=%d", src.Len(), dst.Len())
	}
	var out nqe.Element
	for i := 0; i < 10; i++ {
		if !dst.Pop(&out) || out.Seq != uint64(i) {
			t.Fatalf("element %d arrived as Seq=%d", i, out.Seq)
		}
	}
}

// A batch that straddles the source ring's wraparound boundary must
// still arrive complete and in order.
func TestMoveBatchAcrossWraparound(t *testing.T) {
	src, _ := NewQueue(Config{Slots: 8})
	dst, _ := NewQueue(Config{Slots: 8})
	var e, out nqe.Element
	// Rotate the ring so head sits at slot 6.
	for i := 0; i < 6; i++ {
		e = nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM}
		src.Push(&e)
		src.Pop(&out)
	}
	for i := 0; i < 5; i++ { // occupies slots 6,7,0,1,2
		e = nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM, Seq: uint64(100 + i)}
		src.Push(&e)
	}
	if n := MoveBatch(dst, src, 5); n != 5 {
		t.Fatalf("wrapped MoveBatch moved %d, want 5", n)
	}
	for i := 0; i < 5; i++ {
		if !dst.Pop(&out) || out.Seq != uint64(100+i) {
			t.Fatalf("wrapped element %d arrived as Seq=%d", i, out.Seq)
		}
	}
}

func TestMoveBatchStopsAtFullDst(t *testing.T) {
	src, _ := NewQueue(Config{Slots: 16})
	dst, _ := NewQueue(Config{Slots: 4})
	e := nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM}
	for i := 0; i < 10; i++ {
		src.Push(&e)
	}
	if n := MoveBatch(dst, src, 64); n != 4 {
		t.Fatalf("MoveBatch into 4-slot dst moved %d, want 4", n)
	}
	if src.Len() != 6 {
		t.Fatalf("src kept %d, want 6 (no elements lost)", src.Len())
	}
}

func TestMoveBatchRingsDoorbellOnce(t *testing.T) {
	src, _ := NewQueue(Config{Slots: 64})
	dst, _ := NewQueue(Config{Slots: 64, Mode: shm.BatchedInterrupt, Batch: 4})
	e := nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM}
	for i := 0; i < 32; i++ {
		src.Push(&e)
	}
	if n := MoveBatch(dst, src, 32); n != 32 {
		t.Fatalf("moved %d, want 32", n)
	}
	if !dst.Doorbell().Wait(time.Second) {
		t.Fatal("no wakeup for a full batch")
	}
	if dst.Doorbell().Wait(5 * time.Millisecond) {
		t.Fatal("batch of 32 delivered more than one wakeup")
	}
}

func TestPushBatchAndSpanRoundTrip(t *testing.T) {
	q, _ := NewQueue(Config{Slots: 16})
	es := make([]nqe.Element, 10)
	for i := range es {
		es[i] = nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM, Seq: uint64(i)}
	}
	if n := q.PushBatch(es); n != 10 {
		t.Fatalf("PushBatch = %d, want 10", n)
	}
	span, n := q.FrontSpan(100)
	if n == 0 {
		t.Fatal("FrontSpan empty after PushBatch")
	}
	if got := nqe.Slot(span).Seq(); got != 0 {
		t.Fatalf("first slot Seq = %d, want 0", got)
	}
	q.ReleaseSpan(n)
	dst, _ := NewQueue(Config{Slots: 16})
	if pushed := dst.PushSpan(span[:n*nqe.Size]); pushed != n {
		t.Fatalf("PushSpan = %d, want %d", pushed, n)
	}
	var out nqe.Element
	for i := 0; i < n; i++ {
		if !dst.Pop(&out) || out.Seq != uint64(i) {
			t.Fatalf("PushSpan element %d arrived as Seq=%d", i, out.Seq)
		}
	}
}

func TestPushBatchStopsWhenFull(t *testing.T) {
	q, _ := NewQueue(Config{Slots: 4})
	es := make([]nqe.Element, 10)
	for i := range es {
		es[i] = nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM, Seq: uint64(i)}
	}
	if n := q.PushBatch(es); n != 4 {
		t.Fatalf("PushBatch into 4-slot queue = %d, want 4", n)
	}
	var out nqe.Element
	for i := 0; i < 4; i++ {
		if !q.Pop(&out) || out.Seq != uint64(i) {
			t.Fatalf("kept prefix broken at %d (Seq=%d)", i, out.Seq)
		}
	}
}

func TestPriorityQueueBatchOps(t *testing.T) {
	p, _ := NewPriorityQueue(Config{Slots: 8})
	es := []nqe.Element{
		{Op: nqe.OpNewData, Source: nqe.FromNSM, Seq: 1},
		{Op: nqe.OpNewConn, Source: nqe.FromNSM, Seq: 2},
		{Op: nqe.OpNewData, Source: nqe.FromNSM, Seq: 3},
		{Op: nqe.OpConnClosed, Source: nqe.FromNSM, Seq: 4},
	}
	if n := p.PushBatch(es); n != 4 {
		t.Fatalf("PushBatch = %d, want 4", n)
	}
	// PopBatch drains the high-priority ring (conn events) first.
	out := make([]nqe.Element, 8)
	if n := p.PopBatch(out); n != 4 {
		t.Fatalf("PopBatch = %d, want 4", n)
	}
	wantSeq := []uint64{2, 4, 1, 3}
	for i, w := range wantSeq {
		if out[i].Seq != w {
			t.Fatalf("PopBatch[%d].Seq = %d, want %d", i, out[i].Seq, w)
		}
	}
}

func TestPriorityQueueSpanOps(t *testing.T) {
	p, _ := NewPriorityQueue(Config{Slots: 8})
	es := []nqe.Element{
		{Op: nqe.OpNewData, Source: nqe.FromNSM, Seq: 1},
		{Op: nqe.OpNewConn, Source: nqe.FromNSM, Seq: 2},
	}
	p.PushBatch(es)
	// First span must come from the high-priority ring.
	span, n := p.FrontSpan(8)
	if n != 1 || nqe.Slot(span).Op() != nqe.OpNewConn {
		t.Fatalf("first span = %d slots op %v, want the conn event", n, nqe.Slot(span).Op())
	}
	p.ReleaseSpan(1)
	span, n = p.FrontSpan(8)
	if n != 1 || nqe.Slot(span).Op() != nqe.OpNewData {
		t.Fatalf("second span = %d slots, want the data event", n)
	}
	p.ReleaseSpan(1)

	// PushSpan routes raw records by op class.
	raw := make([]byte, 2*nqe.Size)
	(&nqe.Element{Op: nqe.OpNewData, Source: nqe.FromNSM, Seq: 10}).Encode(raw)
	(&nqe.Element{Op: nqe.OpEstablished, Source: nqe.FromNSM, Seq: 11}).Encode(raw[nqe.Size:])
	if n := p.PushSpan(raw); n != 2 {
		t.Fatalf("PushSpan = %d, want 2", n)
	}
	var out nqe.Element
	if !p.Pop(&out) || out.Seq != 11 {
		t.Fatalf("conn event not prioritized after PushSpan (Seq=%d)", out.Seq)
	}
}

// Concurrent producer/consumer exercising the batched paths end to end
// under -race: PushBatch on one goroutine, PopBatch on another.
func TestQueueBatchConcurrent(t *testing.T) {
	q, _ := NewQueue(Config{Slots: 64})
	const total = 30000
	errc := make(chan error, 1)
	go func() {
		seq := uint64(0)
		buf := make([]nqe.Element, 13)
		for seq < total {
			n := 0
			for n < len(buf) && seq < total {
				buf[n] = nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM, Seq: seq}
				seq++
				n++
			}
			off := 0
			for off < n {
				m := q.PushBatch(buf[off:n])
				if m == 0 {
					runtime.Gosched()
				}
				off += m
			}
		}
	}()
	go func() {
		buf := make([]nqe.Element, 19)
		next := uint64(0)
		for next < total {
			n := q.PopBatch(buf)
			if n == 0 {
				runtime.Gosched()
			}
			for i := 0; i < n; i++ {
				if buf[i].Seq != next {
					errc <- errBatchOrder{next, buf[i].Seq}
					return
				}
				next++
			}
		}
		errc <- nil
	}()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent batch exchange timed out")
	}
}

type errBatchOrder struct{ want, got uint64 }

func (e errBatchOrder) Error() string { return "batched elements out of order" }
