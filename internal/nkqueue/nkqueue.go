// Package nkqueue builds NetKernel's typed queues on top of the shm ring
// substrate.
//
// Each side of a VM↔NSM pair owns three queues (§3.2, Figure 3): a job
// queue (requests), a completion queue (responses correlated by sequence
// number), and a receive queue (asynchronous events such as new data and
// new connections). The paper further suggests implementing them "as
// priority queues to handle connection events and data events separately
// to avoid the head of line blocking"; PriorityQueue realizes that with a
// high-priority ring for connection events and a low-priority ring for
// data events.
package nkqueue

import (
	"fmt"

	"netkernel/internal/nqe"
	"netkernel/internal/shm"
)

// DefaultSlots is the per-ring slot count used when a Config leaves it 0.
const DefaultSlots = 1024

// Q is the queue interface shared by plain and priority queues.
type Q interface {
	// Push enqueues an element, reporting false when the queue is full.
	Push(e *nqe.Element) bool
	// Pop dequeues into e, reporting false when the queue is empty.
	Pop(e *nqe.Element) bool
	// Len returns the number of queued elements.
	Len() int
	// Flush delivers any coalesced doorbell wakeups.
	Flush()
	// Doorbell returns the queue's consumer-wakeup doorbell.
	Doorbell() *shm.Doorbell
}

// Config shapes a queue set.
type Config struct {
	// Slots per ring; 0 means DefaultSlots. Must be a power of two.
	Slots int
	// Mode selects polling or batched-interrupt notification.
	Mode shm.NotifyMode
	// Batch is the interrupt coalescing factor in BatchedInterrupt mode.
	Batch int
	// Priority splits each queue into connection-event and data-event
	// rings (§3.2 head-of-line-blocking avoidance).
	Priority bool
}

func (c Config) slots() int {
	if c.Slots == 0 {
		return DefaultSlots
	}
	return c.Slots
}

// Queue is a plain single-ring queue of nqes.
type Queue struct {
	ring *shm.Ring
	db   *shm.Doorbell
}

// NewQueue builds a plain queue.
func NewQueue(cfg Config) (*Queue, error) {
	ring, err := shm.NewRing(cfg.slots(), nqe.Size)
	if err != nil {
		return nil, fmt.Errorf("nkqueue: %w", err)
	}
	return &Queue{ring: ring, db: shm.NewDoorbell(cfg.Mode, cfg.Batch)}, nil
}

// Push implements Q, encoding e directly into the ring slot (no
// intermediate buffer: the element is marshalled once, into shared
// memory).
func (q *Queue) Push(e *nqe.Element) bool {
	slot, ok := q.ring.Reserve()
	if !ok {
		return false
	}
	e.Encode(slot)
	q.ring.Commit()
	q.db.Ring()
	return true
}

// Pop implements Q.
func (q *Queue) Pop(e *nqe.Element) bool {
	slot, ok := q.ring.Front()
	if !ok {
		return false
	}
	e.Decode(slot)
	q.ring.Release()
	return true
}

// PopBatch drains up to len(dst) elements, returning the count. Batched
// draining is how ServiceLib and CoreEngine amortize wakeups (§3.2
// "batched interrupts").
func (q *Queue) PopBatch(dst []nqe.Element) int {
	n := 0
	for n < len(dst) {
		if !q.Pop(&dst[n]) {
			break
		}
		n++
	}
	return n
}

// Len implements Q.
func (q *Queue) Len() int { return q.ring.Len() }

// Flush implements Q.
func (q *Queue) Flush() { q.db.Flush() }

// Doorbell implements Q.
func (q *Queue) Doorbell() *shm.Doorbell { return q.db }

// Move transfers one raw element from src to dst without decoding: the
// CoreEngine's 64-byte slot-to-slot copy (§4.2 measures it at ~12 ns per
// event). It reports false when src is empty or dst is full.
func Move(dst, src *Queue) bool {
	s, ok := src.ring.Front()
	if !ok {
		return false
	}
	d, ok := dst.ring.Reserve()
	if !ok {
		return false
	}
	copy(d, s)
	dst.ring.Commit()
	src.ring.Release()
	dst.db.Ring()
	return true
}

// PriorityQueue pairs a high-priority ring (connection events: socket,
// connect, accept, close, established, …) with a low-priority ring (data
// events: send, recv, new-data, credits). Pop drains high before low, so
// a burst of bulk data cannot delay connection setup.
type PriorityQueue struct {
	hi, lo *Queue
	db     *shm.Doorbell
}

// NewPriorityQueue builds the pair; each ring gets cfg.Slots slots.
func NewPriorityQueue(cfg Config) (*PriorityQueue, error) {
	db := shm.NewDoorbell(cfg.Mode, cfg.Batch)
	mk := func() (*Queue, error) {
		ring, err := shm.NewRing(cfg.slots(), nqe.Size)
		if err != nil {
			return nil, fmt.Errorf("nkqueue: %w", err)
		}
		return &Queue{ring: ring, db: db}, nil
	}
	hi, err := mk()
	if err != nil {
		return nil, err
	}
	lo, err := mk()
	if err != nil {
		return nil, err
	}
	return &PriorityQueue{hi: hi, lo: lo, db: db}, nil
}

// Push routes by event class.
func (p *PriorityQueue) Push(e *nqe.Element) bool {
	if e.Op.IsConnEvent() {
		return p.hi.Push(e)
	}
	return p.lo.Push(e)
}

// Pop drains connection events before data events.
func (p *PriorityQueue) Pop(e *nqe.Element) bool {
	if p.hi.Pop(e) {
		return true
	}
	return p.lo.Pop(e)
}

// Len implements Q.
func (p *PriorityQueue) Len() int { return p.hi.Len() + p.lo.Len() }

// Flush implements Q.
func (p *PriorityQueue) Flush() { p.db.Flush() }

// Doorbell implements Q.
func (p *PriorityQueue) Doorbell() *shm.Doorbell { return p.db }

// A Set is one side's three queues (§3.2, Figure 3).
type Set struct {
	// Job carries requests from this side to its peer.
	Job Q
	// Completion carries responses to jobs, correlated by Seq.
	Completion Q
	// Receive carries asynchronous events (new data, new connections).
	Receive Q
}

// NewSet builds a queue set per cfg.
func NewSet(cfg Config) (*Set, error) {
	mk := func() (Q, error) {
		if cfg.Priority {
			return NewPriorityQueue(cfg)
		}
		return NewQueue(cfg)
	}
	job, err := mk()
	if err != nil {
		return nil, err
	}
	comp, err := mk()
	if err != nil {
		return nil, err
	}
	recv, err := mk()
	if err != nil {
		return nil, err
	}
	return &Set{Job: job, Completion: comp, Receive: recv}, nil
}
