// Package nkqueue builds NetKernel's typed queues on top of the shm ring
// substrate.
//
// Each side of a VM↔NSM pair owns three queues (§3.2, Figure 3): a job
// queue (requests), a completion queue (responses correlated by sequence
// number), and a receive queue (asynchronous events such as new data and
// new connections). The paper further suggests implementing them "as
// priority queues to handle connection events and data events separately
// to avoid the head of line blocking"; PriorityQueue realizes that with a
// high-priority ring for connection events and a low-priority ring for
// data events.
package nkqueue

import (
	"fmt"
	"sync/atomic"

	"netkernel/internal/nqe"
	"netkernel/internal/shm"
)

// DefaultSlots is the per-ring slot count used when a Config leaves it 0.
const DefaultSlots = 1024

// Q is the queue interface shared by plain and priority queues.
type Q interface {
	// Push enqueues an element, reporting false when the queue is full.
	Push(e *nqe.Element) bool
	// PushBatch enqueues a prefix of es, stopping at the first element
	// that does not fit, and returns how many were enqueued. The
	// doorbell rings at most once for the whole batch.
	PushBatch(es []nqe.Element) int
	// Pop dequeues into e, reporting false when the queue is empty.
	Pop(e *nqe.Element) bool
	// PopBatch drains up to len(dst) elements, returning the count.
	PopBatch(dst []nqe.Element) int
	// FrontSpan returns up to max oldest queued elements as one raw
	// contiguous byte span (n encoded slots of nqe.Size bytes each) for
	// in-place reading or field patching; the slots stay queued until
	// ReleaseSpan. n is 0 when empty. Only the consumer may call it,
	// and each FrontSpan must be resolved by ReleaseSpan before the
	// next (a priority queue remembers which internal ring the span
	// came from).
	FrontSpan(max int) (span []byte, n int)
	// ReleaseSpan frees the first n slots of the last FrontSpan.
	ReleaseSpan(n int)
	// PushSpan enqueues raw already-encoded slots (len(span) must be a
	// multiple of nqe.Size), stopping when full, and returns how many
	// slots were enqueued. The doorbell rings at most once.
	PushSpan(span []byte) int
	// Len returns the number of queued elements.
	Len() int
	// Pushed returns the total elements ever enqueued. The counter is
	// maintained at this API layer, independently of the ring's
	// head/tail cursors, so the telemetry conservation invariant
	// Pushed() == Popped() + Len() cross-checks the queue accounting
	// against the ring state instead of restating it.
	Pushed() uint64
	// Popped returns the total elements ever dequeued.
	Popped() uint64
	// Flush delivers any coalesced doorbell wakeups.
	Flush()
	// Doorbell returns the queue's consumer-wakeup doorbell.
	Doorbell() *shm.Doorbell
	// SetPushStall installs a fault hook consulted once at the top of
	// every Push/PushBatch/PushSpan call: when it returns true the call
	// fails as if the queue were full, exercising the producers'
	// backpressure paths. nil clears the hook.
	SetPushStall(stall func() bool)
}

// Config shapes a queue set.
type Config struct {
	// Slots per ring; 0 means DefaultSlots. Must be a power of two.
	Slots int
	// Mode selects polling or batched-interrupt notification.
	Mode shm.NotifyMode
	// Batch is the interrupt coalescing factor in BatchedInterrupt mode.
	Batch int
	// Priority splits each queue into connection-event and data-event
	// rings (§3.2 head-of-line-blocking avoidance).
	Priority bool
}

func (c Config) slots() int {
	if c.Slots == 0 {
		return DefaultSlots
	}
	return c.Slots
}

// Queue is a plain single-ring queue of nqes.
type Queue struct {
	ring   *shm.Ring
	db     *shm.Doorbell
	stall  func() bool
	pushed atomic.Uint64
	popped atomic.Uint64
}

// SetPushStall implements Q.
func (q *Queue) SetPushStall(stall func() bool) { q.stall = stall }

func (q *Queue) stalled() bool { return q.stall != nil && q.stall() }

// NewQueue builds a plain queue.
func NewQueue(cfg Config) (*Queue, error) {
	ring, err := shm.NewRing(cfg.slots(), nqe.Size)
	if err != nil {
		return nil, fmt.Errorf("nkqueue: %w", err)
	}
	return &Queue{ring: ring, db: shm.NewDoorbell(cfg.Mode, cfg.Batch)}, nil
}

// Push implements Q, encoding e directly into the ring slot (no
// intermediate buffer: the element is marshalled once, into shared
// memory).
func (q *Queue) Push(e *nqe.Element) bool {
	if q.stalled() {
		return false
	}
	slot, ok := q.ring.Reserve()
	if !ok {
		return false
	}
	e.Encode(slot)
	q.ring.Commit()
	q.pushed.Add(1)
	q.db.Ring()
	return true
}

// Pop implements Q.
func (q *Queue) Pop(e *nqe.Element) bool {
	slot, ok := q.ring.Front()
	if !ok {
		return false
	}
	e.Decode(slot)
	q.ring.Release()
	q.popped.Add(1)
	return true
}

// PushBatch implements Q: each span of contiguous free slots is
// reserved once, filled by direct encoding, and published with one
// atomic add; the doorbell rings once for the whole batch.
func (q *Queue) PushBatch(es []nqe.Element) int {
	if q.stalled() {
		return 0
	}
	pushed := 0
	for pushed < len(es) {
		span, n := q.ring.ReserveN(len(es) - pushed)
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			es[pushed+i].Encode(span[i*nqe.Size:])
		}
		q.ring.CommitN(n)
		pushed += n
	}
	if pushed > 0 {
		q.pushed.Add(uint64(pushed))
		q.db.RingN(pushed)
	}
	return pushed
}

// PopBatch drains up to len(dst) elements, returning the count. Batched
// draining is how GuestLib, ServiceLib, and CoreEngine amortize wakeups
// (§3.2 "batched interrupts"): each contiguous span is decoded in place
// and released with one atomic add.
func (q *Queue) PopBatch(dst []nqe.Element) int {
	n := 0
	for n < len(dst) {
		span, got := q.ring.FrontN(len(dst) - n)
		if got == 0 {
			break
		}
		for i := 0; i < got; i++ {
			dst[n+i].Decode(span[i*nqe.Size:])
		}
		q.ring.ReleaseN(got)
		n += got
	}
	if n > 0 {
		q.popped.Add(uint64(n))
	}
	return n
}

// FrontSpan implements Q.
func (q *Queue) FrontSpan(max int) ([]byte, int) { return q.ring.FrontN(max) }

// ReleaseSpan implements Q.
func (q *Queue) ReleaseSpan(n int) {
	q.ring.ReleaseN(n)
	q.popped.Add(uint64(n))
}

// PushSpan implements Q: whole spans of raw slots transfer with a
// single copy per contiguous run and one doorbell ring.
func (q *Queue) PushSpan(span []byte) int {
	if q.stalled() {
		return 0
	}
	total := len(span) / nqe.Size
	pushed := 0
	for pushed < total {
		d, n := q.ring.ReserveN(total - pushed)
		if n == 0 {
			break
		}
		copy(d, span[pushed*nqe.Size:(pushed+n)*nqe.Size])
		q.ring.CommitN(n)
		pushed += n
	}
	if pushed > 0 {
		q.pushed.Add(uint64(pushed))
		q.db.RingN(pushed)
	}
	return pushed
}

// Len implements Q.
func (q *Queue) Len() int { return q.ring.Len() }

// Pushed implements Q.
func (q *Queue) Pushed() uint64 { return q.pushed.Load() }

// Popped implements Q.
func (q *Queue) Popped() uint64 { return q.popped.Load() }

// Flush implements Q.
func (q *Queue) Flush() { q.db.Flush() }

// Doorbell implements Q.
func (q *Queue) Doorbell() *shm.Doorbell { return q.db }

// Move transfers one raw element from src to dst without decoding: the
// CoreEngine's 64-byte slot-to-slot copy (§4.2 measures it at ~12 ns per
// event). It reports false when src is empty or dst is full.
func Move(dst, src *Queue) bool { return MoveBatch(dst, src, 1) == 1 }

// MoveBatch transfers up to max raw elements from src to dst without
// decoding: the batched CoreEngine fast path. Each contiguous span
// (split only at ring wraparound) moves with a single copy, one
// publishing atomic add, and one releasing atomic add, and the
// destination doorbell rings at most once for the whole batch — per-
// batch rather than per-event operation, which is what lets a shared
// stack serve many tenants at line rate. Returns the number moved.
func MoveBatch(dst, src *Queue, max int) int {
	moved := 0
	for moved < max {
		s, ns := src.ring.FrontN(max - moved)
		if ns == 0 {
			break
		}
		d, nd := dst.ring.ReserveN(ns)
		if nd == 0 {
			break
		}
		copy(d, s[:nd*nqe.Size])
		dst.ring.CommitN(nd)
		src.ring.ReleaseN(nd)
		moved += nd
	}
	if moved > 0 {
		dst.pushed.Add(uint64(moved))
		src.popped.Add(uint64(moved))
		dst.db.RingN(moved)
	}
	return moved
}

// PriorityQueue pairs a high-priority ring (connection events: socket,
// connect, accept, close, established, …) with a low-priority ring (data
// events: send, recv, new-data, credits). Pop drains high before low, so
// a burst of bulk data cannot delay connection setup.
type PriorityQueue struct {
	hi, lo *Queue
	db     *shm.Doorbell
	stall  func() bool
	// spanFrom remembers which ring the last FrontSpan came from, so
	// ReleaseSpan frees the right slots. Consumer-side state only.
	spanFrom *Queue
}

// SetPushStall implements Q. The hook gates pushes through the priority
// queue itself; the internal rings are not separately stalled.
func (p *PriorityQueue) SetPushStall(stall func() bool) { p.stall = stall }

func (p *PriorityQueue) stalled() bool { return p.stall != nil && p.stall() }

// NewPriorityQueue builds the pair; each ring gets cfg.Slots slots.
func NewPriorityQueue(cfg Config) (*PriorityQueue, error) {
	db := shm.NewDoorbell(cfg.Mode, cfg.Batch)
	mk := func() (*Queue, error) {
		ring, err := shm.NewRing(cfg.slots(), nqe.Size)
		if err != nil {
			return nil, fmt.Errorf("nkqueue: %w", err)
		}
		return &Queue{ring: ring, db: db}, nil
	}
	hi, err := mk()
	if err != nil {
		return nil, err
	}
	lo, err := mk()
	if err != nil {
		return nil, err
	}
	return &PriorityQueue{hi: hi, lo: lo, db: db}, nil
}

// Push routes by event class.
func (p *PriorityQueue) Push(e *nqe.Element) bool {
	if p.stalled() {
		return false
	}
	if e.Op.IsConnEvent() {
		return p.hi.Push(e)
	}
	return p.lo.Push(e)
}

// PushBatch implements Q, routing each element by event class. It stops
// at the first element that does not fit so arrival order within a ring
// is never reordered; the shared doorbell rings once for the batch.
func (p *PriorityQueue) PushBatch(es []nqe.Element) int {
	if p.stalled() {
		return 0
	}
	pushed := 0
	var toHi, toLo uint64
	for ; pushed < len(es); pushed++ {
		e := &es[pushed]
		target := p.lo
		if e.Op.IsConnEvent() {
			target = p.hi
		}
		slot, ok := target.ring.Reserve()
		if !ok {
			break
		}
		e.Encode(slot)
		target.ring.Commit()
		if target == p.hi {
			toHi++
		} else {
			toLo++
		}
	}
	if pushed > 0 {
		p.hi.pushed.Add(toHi)
		p.lo.pushed.Add(toLo)
		p.db.RingN(pushed)
	}
	return pushed
}

// Pop drains connection events before data events.
func (p *PriorityQueue) Pop(e *nqe.Element) bool {
	if p.hi.Pop(e) {
		return true
	}
	return p.lo.Pop(e)
}

// PopBatch implements Q, draining connection events before data events.
func (p *PriorityQueue) PopBatch(dst []nqe.Element) int {
	n := p.hi.PopBatch(dst)
	n += p.lo.PopBatch(dst[n:])
	return n
}

// FrontSpan implements Q: the span comes from the high-priority ring
// while it has work, then from the low-priority ring.
func (p *PriorityQueue) FrontSpan(max int) ([]byte, int) {
	if span, n := p.hi.ring.FrontN(max); n > 0 {
		p.spanFrom = p.hi
		return span, n
	}
	p.spanFrom = p.lo
	return p.lo.ring.FrontN(max)
}

// ReleaseSpan implements Q.
func (p *PriorityQueue) ReleaseSpan(n int) {
	if p.spanFrom != nil {
		p.spanFrom.ring.ReleaseN(n)
		p.spanFrom.popped.Add(uint64(n))
	}
}

// PushSpan implements Q. Raw slots still route per element (the class
// lives in the op byte), but without any decode/encode: each 64-byte
// record copies straight into its ring, and the doorbell rings once.
func (p *PriorityQueue) PushSpan(span []byte) int {
	if p.stalled() {
		return 0
	}
	total := len(span) / nqe.Size
	pushed := 0
	var toHi, toLo uint64
	for ; pushed < total; pushed++ {
		rec := span[pushed*nqe.Size : (pushed+1)*nqe.Size]
		target := p.lo
		if nqe.Slot(rec).Op().IsConnEvent() {
			target = p.hi
		}
		slot, ok := target.ring.Reserve()
		if !ok {
			break
		}
		copy(slot, rec)
		target.ring.Commit()
		if target == p.hi {
			toHi++
		} else {
			toLo++
		}
	}
	if pushed > 0 {
		p.hi.pushed.Add(toHi)
		p.lo.pushed.Add(toLo)
		p.db.RingN(pushed)
	}
	return pushed
}

// Len implements Q.
func (p *PriorityQueue) Len() int { return p.hi.Len() + p.lo.Len() }

// Pushed implements Q (sum over both rings).
func (p *PriorityQueue) Pushed() uint64 { return p.hi.Pushed() + p.lo.Pushed() }

// Popped implements Q (sum over both rings).
func (p *PriorityQueue) Popped() uint64 { return p.hi.Popped() + p.lo.Popped() }

// Flush implements Q.
func (p *PriorityQueue) Flush() { p.db.Flush() }

// Doorbell implements Q.
func (p *PriorityQueue) Doorbell() *shm.Doorbell { return p.db }

// A Set is one side's three queues (§3.2, Figure 3).
type Set struct {
	// Job carries requests from this side to its peer.
	Job Q
	// Completion carries responses to jobs, correlated by Seq.
	Completion Q
	// Receive carries asynchronous events (new data, new connections).
	Receive Q
}

// NewSet builds a queue set per cfg.
func NewSet(cfg Config) (*Set, error) {
	mk := func() (Q, error) {
		if cfg.Priority {
			return NewPriorityQueue(cfg)
		}
		return NewQueue(cfg)
	}
	job, err := mk()
	if err != nil {
		return nil, err
	}
	comp, err := mk()
	if err != nil {
		return nil, err
	}
	recv, err := mk()
	if err != nil {
		return nil, err
	}
	return &Set{Job: job, Completion: comp, Receive: recv}, nil
}

// NewSets builds n independent queue sets per cfg — one per datapath
// shard. Each shard of a multi-queue channel owns a full set, so flows
// pinned to different shards never contend on a ring.
func NewSets(cfg Config, n int) ([]*Set, error) {
	if n < 1 {
		n = 1
	}
	sets := make([]*Set, n)
	for i := range sets {
		s, err := NewSet(cfg)
		if err != nil {
			return nil, err
		}
		sets[i] = s
	}
	return sets, nil
}
