package tcpcc

import "time"

// Reno is classic NewReno-style AIMD (RFC 5681): slow start to
// ssthresh, additive increase of one segment per RTT afterwards,
// multiplicative decrease of one half on loss. It is the baseline the
// other algorithms are measured against and the loss-based component
// C-TCP builds on.
type Reno struct{}

// Name implements Algorithm.
func (*Reno) Name() string { return "reno" }

// NeedsECN implements Algorithm.
func (*Reno) NeedsECN() bool { return false }

// Init implements Algorithm.
func (*Reno) Init(c *Control, _ time.Duration) {
	c.CWnd = InitialWindowSegments * c.MSS
	c.SSThresh = 1 << 30 // effectively unbounded until the first loss
}

// OnAck implements Algorithm.
func (*Reno) OnAck(c *Control, s *AckSample) {
	if c.InRecovery || s.BytesAcked <= 0 || s.Underutilized {
		return
	}
	if c.CWnd < c.SSThresh {
		// Slow start: one segment per segment acked.
		c.CWnd += s.BytesAcked
		if c.CWnd > c.SSThresh {
			c.CWnd = c.SSThresh
		}
		return
	}
	// Congestion avoidance: ~one segment per RTT.
	inc := c.MSS * s.BytesAcked / c.CWnd
	if inc < 1 {
		inc = 1
	}
	c.CWnd += inc
}

// OnLoss implements Algorithm.
func (*Reno) OnLoss(c *Control, kind LossKind, _ time.Duration) {
	half := c.CWnd / 2
	if half < 2*c.MSS {
		half = 2 * c.MSS
	}
	c.SSThresh = half
	if kind == LossRTO {
		c.CWnd = c.MSS
	} else {
		c.CWnd = half
	}
	c.Clamp()
}
