package tcpcc

import (
	"math"
	"time"
)

// CTCP implements Compound TCP (Tan et al., INFOCOM 2006), the default
// congestion control of Windows Server — the "Windows CTCP" bar in
// Figure 5. It adds a delay-based window (dwnd) on top of a Reno-style
// loss window: dwnd grows aggressively while queueing delay is low and
// retreats when the path backlog builds, so C-TCP fills long-fat pipes
// faster than Reno/CUBIC yet still halves on loss.
type CTCP struct {
	// Standard Compound TCP parameters.
	alpha float64 // aggressiveness of the delay window
	beta  float64 // multiplicative decrease of dwnd
	k     float64 // exponent of the binomial increase
	gamma float64 // backlog threshold, segments
	zeta  float64 // dwnd retreat rate

	dwnd     float64 // delay window, bytes
	baseRTT  time.Duration
	lossWnd  int // Reno component, bytes
	inited   bool
	ssActive bool
}

// NewCTCP returns a Compound TCP instance. beta, k, gamma, zeta are
// the published defaults; alpha (the delay-window aggressiveness) is
// raised from the paper's 0.125 to 0.5, matching the more aggressive
// tuning deployed Windows stacks exhibit on high-BDP paths (and
// calibrated against Figure 5 — see EXPERIMENTS.md).
func NewCTCP() *CTCP {
	return &CTCP{alpha: 0.5, beta: 0.5, k: 0.75, gamma: 30, zeta: 1}
}

// Name implements Algorithm.
func (*CTCP) Name() string { return "ctcp" }

// NeedsECN implements Algorithm.
func (*CTCP) NeedsECN() bool { return false }

// Init implements Algorithm.
func (ct *CTCP) Init(c *Control, _ time.Duration) {
	ct.lossWnd = InitialWindowSegments * c.MSS
	ct.dwnd = 0
	ct.baseRTT = -1
	ct.ssActive = true
	c.CWnd = ct.lossWnd
	c.SSThresh = 1 << 30
}

// Dwnd returns the delay-based window component in bytes (for tests and
// monitoring).
func (ct *CTCP) Dwnd() int { return int(ct.dwnd) }

// OnAck implements Algorithm.
func (ct *CTCP) OnAck(c *Control, s *AckSample) {
	if c.InRecovery || s.BytesAcked <= 0 {
		return
	}
	if s.RTT > 0 && (ct.baseRTT <= 0 || s.RTT < ct.baseRTT) {
		ct.baseRTT = s.RTT
	}
	if s.Underutilized {
		return
	}

	// Loss-based component: standard Reno.
	if ct.ssActive && ct.lossWnd >= c.SSThresh {
		ct.ssActive = false
	}
	if ct.ssActive {
		ct.lossWnd += s.BytesAcked
		if ct.lossWnd >= c.SSThresh {
			ct.lossWnd = c.SSThresh
			ct.ssActive = false
		}
	} else {
		inc := c.MSS * s.BytesAcked / (ct.lossWnd + int(ct.dwnd))
		if inc < 1 {
			inc = 1
		}
		ct.lossWnd += inc
	}

	// Delay-based component: estimate the path backlog diff = win/baseRTT
	// − win/RTT (in segments), then grow or retreat dwnd around gamma.
	if ct.baseRTT > 0 && s.SRTT > 0 && !ct.ssActive {
		winSeg := float64(ct.lossWnd+int(ct.dwnd)) / float64(c.MSS)
		expected := winSeg / ct.baseRTT.Seconds()
		actual := winSeg / s.SRTT.Seconds()
		diff := (expected - actual) * ct.baseRTT.Seconds()
		if diff < ct.gamma {
			// Path underutilized: binomial increase, α·win^k per RTT,
			// scaled to this ACK's share of the window.
			incSeg := ct.alpha * math.Pow(winSeg, ct.k) * float64(s.BytesAcked) / (winSeg * float64(c.MSS))
			ct.dwnd += incSeg * float64(c.MSS)
		} else {
			// Backlog building: retreat to stay fair.
			ct.dwnd -= ct.zeta * diff * float64(c.MSS) * float64(s.BytesAcked) / (winSeg * float64(c.MSS))
		}
		if ct.dwnd < 0 {
			ct.dwnd = 0
		}
	}

	c.CWnd = ct.lossWnd + int(ct.dwnd)
	c.Clamp()
}

// OnLoss implements Algorithm.
func (ct *CTCP) OnLoss(c *Control, kind LossKind, _ time.Duration) {
	win := ct.lossWnd + int(ct.dwnd)
	half := win / 2
	if half < 2*c.MSS {
		half = 2 * c.MSS
	}
	c.SSThresh = half
	ct.ssActive = false
	// Both components shrink: lossWnd multiplicatively, dwnd by β.
	ct.dwnd *= 1 - ct.beta
	if kind == LossRTO {
		ct.lossWnd = c.MSS
		ct.dwnd = 0
		ct.ssActive = true // slow-start back toward ssthresh
	} else {
		ct.lossWnd = half - int(ct.dwnd)
		if ct.lossWnd < 2*c.MSS {
			ct.lossWnd = 2 * c.MSS
		}
	}
	c.CWnd = ct.lossWnd + int(ct.dwnd)
	c.Clamp()
}
