// Package tcpcc implements pluggable TCP congestion control.
//
// The paper's thesis is that the provider can run any congestion
// control on a tenant's behalf regardless of the guest kernel: its
// prototype ships CUBIC and BBR NSMs and demonstrates a Windows VM
// (whose kernel speaks C-TCP) sending with BBR (§4.3). This package
// provides those algorithms — Reno, CUBIC, BBR, C-TCP, DCTCP — behind
// one interface so a Network Stack Module is just a stack plus a
// congestion-control name.
package tcpcc

import (
	"fmt"
	"sort"
	"time"
)

// InitialWindowSegments is the initial congestion window (RFC 6928).
const InitialWindowSegments = 10

// Control is the per-connection congestion state an Algorithm drives.
// Units are bytes throughout.
type Control struct {
	// MSS is the connection's maximum segment size.
	MSS int
	// CWnd is the congestion window.
	CWnd int
	// SSThresh is the slow-start threshold.
	SSThresh int
	// PacingRate, when positive, asks the connection to pace segments
	// at this many bytes per second instead of bursting the window.
	PacingRate float64
	// InRecovery is maintained by the connection: true between a loss
	// event and the recovery point being acked. Algorithms freeze
	// their growth while set.
	InRecovery bool
}

// Clamp enforces the floor of one segment.
func (c *Control) Clamp() {
	if c.CWnd < c.MSS {
		c.CWnd = c.MSS
	}
}

// AckSample carries the measurements delivered with one ACK.
type AckSample struct {
	// BytesAcked is how many new bytes this ACK cumulatively covers.
	BytesAcked int
	// RTT is the sample measured on this ACK (0 when unavailable,
	// e.g. acks of retransmitted data).
	RTT time.Duration
	// SRTT and MinRTT are the connection's smoothed and minimum RTTs.
	SRTT   time.Duration
	MinRTT time.Duration
	// DeliveryRate is the rate-sample estimate in bytes/sec (0 when
	// unavailable); AppLimited marks samples taken while the sender had
	// nothing to send.
	DeliveryRate float64
	AppLimited   bool
	// Delivered is the total bytes delivered so far (the rate-sample
	// "delivered" counter), used for round counting.
	Delivered uint64
	// InFlight is the bytes outstanding after processing this ACK.
	InFlight int
	// Underutilized reports that the sender is not using its whole
	// congestion window (buffer- or receiver-limited). Loss-based
	// algorithms freeze growth on such ACKs (RFC 7661): growing a
	// window that is not being validated only stores up a burst.
	Underutilized bool
	// ECE reports an ECN congestion echo on this ACK; MarkedBytes is
	// the portion of BytesAcked the receiver observed CE-marked.
	ECE         bool
	MarkedBytes int
	// Now is the current time on the connection's clock.
	Now time.Duration
}

// LossKind distinguishes recovery entries.
type LossKind int

// Loss kinds.
const (
	// LossFastRetransmit is dupack/SACK-triggered recovery.
	LossFastRetransmit LossKind = iota
	// LossRTO is a retransmission-timeout collapse.
	LossRTO
)

func (k LossKind) String() string {
	if k == LossRTO {
		return "rto"
	}
	return "fast-retransmit"
}

// Algorithm is one congestion-control implementation. Methods are
// invoked from the connection's clock executor, so implementations need
// no locking.
type Algorithm interface {
	// Name returns the registry name ("cubic", "bbr", …).
	Name() string
	// Init sets the initial window; c.MSS is already populated.
	Init(c *Control, now time.Duration)
	// OnAck processes one ACK's measurements.
	OnAck(c *Control, s *AckSample)
	// OnLoss processes entry into recovery (once per loss event).
	OnLoss(c *Control, kind LossKind, now time.Duration)
	// NeedsECN reports whether the algorithm wants ECT-marked packets
	// and ECE feedback (DCTCP).
	NeedsECN() bool
}

// Factory builds a fresh Algorithm instance per connection.
type Factory func() Algorithm

var registry = map[string]Factory{}

// Register adds a congestion-control factory under name. It panics on
// duplicates, like net/http handler registration.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic("tcpcc: duplicate registration of " + name)
	}
	registry[name] = f
}

// New builds an algorithm by name.
func New(name string) (Algorithm, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("tcpcc: unknown congestion control %q (have %v)", name, Names())
	}
	return f(), nil
}

// Names lists the registered algorithms, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register("reno", func() Algorithm { return &Reno{} })
	Register("cubic", func() Algorithm { return NewCubic() })
	Register("bbr", func() Algorithm { return NewBBR() })
	Register("ctcp", func() Algorithm { return NewCTCP() })
	Register("dctcp", func() Algorithm { return NewDCTCP() })
}
