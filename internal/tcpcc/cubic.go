package tcpcc

import (
	"math"
	"time"
)

// Cubic implements CUBIC congestion control (RFC 8312), the Linux
// default the paper uses for its Figure 4 NSM and the "Linux Cubic"
// baseline in Figure 5. Window growth in congestion avoidance follows
// W(t) = C·(t−K)³ + Wmax with a TCP-friendly floor.
type Cubic struct {
	// RFC 8312 constants.
	c    float64 // aggressiveness, segments/sec³
	beta float64 // multiplicative decrease factor

	wMax       float64 // window before the last reduction, segments
	k          float64 // time to regrow to wMax, seconds
	epochStart time.Duration
	wEst       float64 // TCP-friendly (Reno) window estimate, segments
}

// NewCubic returns a CUBIC instance with standard constants.
func NewCubic() *Cubic {
	return &Cubic{c: 0.4, beta: 0.7}
}

// Name implements Algorithm.
func (*Cubic) Name() string { return "cubic" }

// NeedsECN implements Algorithm.
func (*Cubic) NeedsECN() bool { return false }

// Init implements Algorithm.
func (cu *Cubic) Init(c *Control, now time.Duration) {
	c.CWnd = InitialWindowSegments * c.MSS
	c.SSThresh = 1 << 30
	cu.epochStart = -1
}

// OnAck implements Algorithm.
func (cu *Cubic) OnAck(c *Control, s *AckSample) {
	if c.InRecovery || s.BytesAcked <= 0 {
		return
	}
	if s.Underutilized {
		// Window validation (RFC 7661): do not grow past what the
		// application uses; restart the epoch so the cubic clock does
		// not run ahead while idle.
		cu.epochStart = -1
		return
	}
	if c.CWnd < c.SSThresh {
		c.CWnd += s.BytesAcked
		if c.CWnd > c.SSThresh {
			c.CWnd = c.SSThresh
		}
		return
	}

	cwndSeg := float64(c.CWnd) / float64(c.MSS)
	if cu.epochStart < 0 {
		cu.epochStart = s.Now
		if cwndSeg < cu.wMax {
			cu.k = math.Cbrt((cu.wMax - cwndSeg) / cu.c)
		} else {
			cu.k = 0
			cu.wMax = cwndSeg
		}
		cu.wEst = cwndSeg
	}

	t := (s.Now - cu.epochStart).Seconds()
	rtt := s.SRTT.Seconds()
	if rtt <= 0 {
		rtt = 0.1
	}
	// Target one RTT ahead, per RFC 8312 §4.1.
	target := cu.c*math.Pow(t+rtt-cu.k, 3) + cu.wMax

	// TCP-friendly region (RFC 8312 §4.2): emulate Reno-rate growth so
	// CUBIC never does worse than standard TCP on short-RTT paths.
	cu.wEst += 3.0 * (1 - cu.beta) / (1 + cu.beta) * float64(s.BytesAcked) / (cwndSeg * float64(c.MSS))
	if cu.wEst > target {
		target = cu.wEst
	}

	if target > cwndSeg {
		// Spread the increase over one window's worth of acks.
		incSeg := (target - cwndSeg) / cwndSeg * float64(s.BytesAcked) / float64(c.MSS)
		c.CWnd += int(incSeg * float64(c.MSS))
	}
	c.Clamp()
}

// OnLoss implements Algorithm.
func (cu *Cubic) OnLoss(c *Control, kind LossKind, now time.Duration) {
	cwndSeg := float64(c.CWnd) / float64(c.MSS)
	// Fast convergence (RFC 8312 §4.6): release bandwidth faster when
	// the window is still below the previous peak.
	if cwndSeg < cu.wMax {
		cu.wMax = cwndSeg * (1 + cu.beta) / 2
	} else {
		cu.wMax = cwndSeg
	}
	cu.epochStart = -1

	reduced := int(cwndSeg * cu.beta * float64(c.MSS))
	if reduced < 2*c.MSS {
		reduced = 2 * c.MSS
	}
	c.SSThresh = reduced
	if kind == LossRTO {
		c.CWnd = c.MSS
	} else {
		c.CWnd = reduced
	}
	c.Clamp()
}
