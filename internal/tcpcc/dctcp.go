package tcpcc

import "time"

// DCTCP implements Data Center TCP (Alizadeh et al., SIGCOMM 2010).
// Switches mark packets with ECN CE above a shallow queue threshold;
// the sender tracks the fraction α of marked bytes and shrinks the
// window proportionally (cwnd ← cwnd·(1−α/2)), keeping queues tiny.
//
// DCTCP is the §5 container scenario's stack of choice for the
// Spark-like job ("A container running a Spark task may use DCTCP for
// its traffic, while a web server container may need BBR or CUBIC"),
// which examples/containers reproduces.
type DCTCP struct {
	g     float64 // EWMA gain for α, standard 1/16
	alpha float64

	// Per-observation-window mark accounting.
	windowStart  uint64 // Delivered count that opens the window
	ackedBytes   int
	markedBytes  int
	everCongEncd bool
}

// NewDCTCP returns a DCTCP instance with the published defaults.
func NewDCTCP() *DCTCP {
	return &DCTCP{g: 1.0 / 16, alpha: 1}
}

// Name implements Algorithm.
func (*DCTCP) Name() string { return "dctcp" }

// NeedsECN implements Algorithm: DCTCP is ECN-based by construction.
func (*DCTCP) NeedsECN() bool { return true }

// Init implements Algorithm.
func (d *DCTCP) Init(c *Control, _ time.Duration) {
	c.CWnd = InitialWindowSegments * c.MSS
	c.SSThresh = 1 << 30
}

// Alpha returns the current marked-byte fraction estimate.
func (d *DCTCP) Alpha() float64 { return d.alpha }

// OnAck implements Algorithm.
func (d *DCTCP) OnAck(c *Control, s *AckSample) {
	if s.BytesAcked <= 0 {
		return
	}
	d.ackedBytes += s.BytesAcked
	if s.ECE {
		marked := s.MarkedBytes
		if marked == 0 {
			marked = s.BytesAcked
		}
		d.markedBytes += marked
		d.everCongEncd = true
	}

	// Close the observation window roughly once per RTT (one cwnd of
	// acked bytes), then update α and apply the proportional decrease.
	if s.Delivered >= d.windowStart {
		frac := 0.0
		if d.ackedBytes > 0 {
			frac = float64(d.markedBytes) / float64(d.ackedBytes)
			if frac > 1 {
				frac = 1
			}
		}
		d.alpha = (1-d.g)*d.alpha + d.g*frac
		if d.markedBytes > 0 && !c.InRecovery {
			reduced := int(float64(c.CWnd) * (1 - d.alpha/2))
			c.SSThresh = reduced
			c.CWnd = reduced
			c.Clamp()
		}
		d.ackedBytes, d.markedBytes = 0, 0
		d.windowStart = s.Delivered + uint64(c.CWnd)
	}

	if c.InRecovery || s.Underutilized {
		return
	}
	// Growth is standard slow start / congestion avoidance.
	if c.CWnd < c.SSThresh {
		c.CWnd += s.BytesAcked
		if c.CWnd > c.SSThresh {
			c.CWnd = c.SSThresh
		}
	} else {
		inc := c.MSS * s.BytesAcked / c.CWnd
		if inc < 1 {
			inc = 1
		}
		c.CWnd += inc
	}
}

// OnLoss implements Algorithm: actual loss falls back to Reno behaviour
// (DCTCP's ECN machinery only softens marks, not drops).
func (d *DCTCP) OnLoss(c *Control, kind LossKind, _ time.Duration) {
	half := c.CWnd / 2
	if half < 2*c.MSS {
		half = 2 * c.MSS
	}
	c.SSThresh = half
	if kind == LossRTO {
		c.CWnd = c.MSS
	} else {
		c.CWnd = half
	}
	c.Clamp()
}
