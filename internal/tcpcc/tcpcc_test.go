package tcpcc

import (
	"testing"
	"time"
)

const mss = 1448

func newControl() *Control {
	return &Control{MSS: mss}
}

func TestRegistryHasAllAlgorithms(t *testing.T) {
	want := []string{"bbr", "ctcp", "cubic", "dctcp", "reno"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, name := range want {
		a, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if a.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, a.Name())
		}
	}
}

func TestRegistryUnknown(t *testing.T) {
	if _, err := New("quic"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register("reno", func() Algorithm { return &Reno{} })
}

func TestFreshInstancesPerConnection(t *testing.T) {
	a, _ := New("cubic")
	b, _ := New("cubic")
	if a == b {
		t.Fatal("factory returned a shared instance")
	}
}

// --- Reno ---

func TestRenoSlowStartDoubles(t *testing.T) {
	c := newControl()
	r := &Reno{}
	r.Init(c, 0)
	initial := c.CWnd
	// Ack one full window: slow start should double it.
	r.OnAck(c, &AckSample{BytesAcked: initial, RTT: time.Millisecond, Now: time.Millisecond})
	if c.CWnd != 2*initial {
		t.Fatalf("cwnd = %d after acking %d, want %d", c.CWnd, initial, 2*initial)
	}
}

func TestRenoCongestionAvoidanceLinear(t *testing.T) {
	c := newControl()
	r := &Reno{}
	r.Init(c, 0)
	c.CWnd = 100 * mss
	c.SSThresh = 50 * mss // below cwnd: CA mode
	before := c.CWnd
	// One window of acks ≈ +1 MSS.
	for acked := 0; acked < before; acked += mss {
		r.OnAck(c, &AckSample{BytesAcked: mss})
	}
	gain := c.CWnd - before
	if gain < mss/2 || gain > 2*mss {
		t.Fatalf("CA gain over one RTT = %d bytes, want ≈1 MSS", gain)
	}
}

func TestRenoLossHalves(t *testing.T) {
	c := newControl()
	r := &Reno{}
	r.Init(c, 0)
	c.CWnd = 100 * mss
	r.OnLoss(c, LossFastRetransmit, 0)
	if c.CWnd != 50*mss || c.SSThresh != 50*mss {
		t.Fatalf("after fast retransmit cwnd=%d ssthresh=%d", c.CWnd/mss, c.SSThresh/mss)
	}
	c.CWnd = 100 * mss
	r.OnLoss(c, LossRTO, 0)
	if c.CWnd != mss {
		t.Fatalf("after RTO cwnd = %d segments, want 1", c.CWnd/mss)
	}
}

func TestRenoFrozenInRecovery(t *testing.T) {
	c := newControl()
	r := &Reno{}
	r.Init(c, 0)
	c.InRecovery = true
	before := c.CWnd
	r.OnAck(c, &AckSample{BytesAcked: 10 * mss})
	if c.CWnd != before {
		t.Fatal("cwnd grew during recovery")
	}
}

// --- CUBIC ---

func TestCubicReductionFactor(t *testing.T) {
	c := newControl()
	cu := NewCubic()
	cu.Init(c, 0)
	c.CWnd = 100 * mss
	cu.OnLoss(c, LossFastRetransmit, 0)
	want := int(100 * 0.7 * mss)
	if c.CWnd < want-mss || c.CWnd > want+mss {
		t.Fatalf("cwnd after loss = %d segs, want ≈70", c.CWnd/mss)
	}
}

func TestCubicConcaveRegrowth(t *testing.T) {
	// After a loss, CUBIC regrows quickly at first (toward wMax), then
	// flattens near wMax: the increment in the first interval must
	// exceed the increment near the plateau.
	c := newControl()
	cu := NewCubic()
	cu.Init(c, 0)
	c.CWnd = 200 * mss
	cu.OnLoss(c, LossFastRetransmit, 0) // wMax=200, cwnd=140
	c.SSThresh = c.CWnd

	// Bulk-transfer ack stream: one tenth of the window per step, ten
	// steps per RTT, run past K (≈5.3 s for wMax=200, cwnd=140). The
	// RTT is long (100 ms) so the cubic term, not the TCP-friendly
	// Reno estimate, governs growth.
	rtt := 100 * time.Millisecond
	now := time.Duration(0)
	cwndBy := map[time.Duration]int{}
	for now < 5300*time.Millisecond {
		now += rtt / 10
		cu.OnAck(c, &AckSample{BytesAcked: c.CWnd / 10, SRTT: rtt, Now: now})
		cwndBy[now.Round(time.Second)] = c.CWnd
	}
	early := cwndBy[time.Second] - (140 * mss)
	late := cwndBy[5*time.Second] - cwndBy[4*time.Second]
	if early <= late {
		t.Fatalf("growth not concave: first second %+d, fifth second %+d", early, late)
	}
	// Must approach wMax (200 segments) near t=K.
	if got := c.CWnd / mss; got < 180 || got > 230 {
		t.Fatalf("regrew to %d segments, want ≈200", got)
	}
}

func TestCubicRTOCollapses(t *testing.T) {
	c := newControl()
	cu := NewCubic()
	cu.Init(c, 0)
	c.CWnd = 50 * mss
	cu.OnLoss(c, LossRTO, 0)
	if c.CWnd != mss {
		t.Fatalf("cwnd after RTO = %d segments", c.CWnd/mss)
	}
}

func TestCubicFastConvergence(t *testing.T) {
	c := newControl()
	cu := NewCubic()
	cu.Init(c, 0)
	c.CWnd = 100 * mss
	cu.OnLoss(c, LossFastRetransmit, 0)
	firstWMax := cu.wMax
	// Second loss below the previous peak: wMax must drop below cwnd
	// (fast convergence releases bandwidth for newcomers).
	cu.OnLoss(c, LossFastRetransmit, 0)
	if cu.wMax >= firstWMax {
		t.Fatalf("wMax %v did not shrink from %v", cu.wMax, firstWMax)
	}
}

// --- BBR ---

// driveBBR feeds a synthetic path: bandwidth bw bytes/s, rtt fixed.
func driveBBR(b *BBR, c *Control, bw float64, rtt time.Duration, rounds int, start time.Duration) time.Duration {
	now := start
	var delivered uint64
	for i := 0; i < rounds; i++ {
		perRound := int(bw * rtt.Seconds())
		acks := perRound / (10 * mss)
		if acks < 1 {
			acks = 1
		}
		for j := 0; j < acks; j++ {
			now += rtt / time.Duration(acks)
			delivered += uint64(10 * mss)
			b.OnAck(c, &AckSample{
				BytesAcked:   10 * mss,
				RTT:          rtt,
				SRTT:         rtt,
				MinRTT:       rtt,
				DeliveryRate: bw,
				Delivered:    delivered,
				InFlight:     int(bw * rtt.Seconds()),
				Now:          now,
			})
		}
	}
	return now
}

func TestBBRStartupToProbeBW(t *testing.T) {
	c := newControl()
	b := NewBBR()
	b.Init(c, 0)
	if b.State() != "startup" {
		t.Fatalf("initial state %s", b.State())
	}
	// Constant delivery rate: growth stalls → full pipe → drain → probe-bw.
	driveBBR(b, c, 1.5e6, 100*time.Millisecond, 12, 0)
	if b.State() != "probe-bw" {
		t.Fatalf("state after plateau = %s, want probe-bw", b.State())
	}
	if got := b.BtlBw(); got < 1.4e6 || got > 1.6e6 {
		t.Fatalf("BtlBw = %.0f, want ≈1.5e6", got)
	}
}

func TestBBRCwndTracksBDP(t *testing.T) {
	c := newControl()
	b := NewBBR()
	b.Init(c, 0)
	bw, rtt := 1.5e6, 100*time.Millisecond
	driveBBR(b, c, bw, rtt, 30, 0)
	bdp := int(bw * rtt.Seconds())
	if c.CWnd < bdp || c.CWnd > 3*bdp {
		t.Fatalf("cwnd = %d, want within [BDP, 3·BDP] = [%d, %d]", c.CWnd, bdp, 3*bdp)
	}
}

func TestBBRPacingRateSet(t *testing.T) {
	c := newControl()
	b := NewBBR()
	b.Init(c, 0)
	driveBBR(b, c, 1.5e6, 100*time.Millisecond, 12, 0)
	if c.PacingRate < 1e6 || c.PacingRate > 2.2e6 {
		t.Fatalf("PacingRate = %.0f, want ≈BtlBw·gain", c.PacingRate)
	}
}

func TestBBRIgnoresFastRetransmit(t *testing.T) {
	c := newControl()
	b := NewBBR()
	b.Init(c, 0)
	driveBBR(b, c, 1.5e6, 100*time.Millisecond, 12, 0)
	before := c.CWnd
	b.OnLoss(c, LossFastRetransmit, 0)
	if c.CWnd != before {
		t.Fatal("BBR reacted to a fast retransmit")
	}
	b.OnLoss(c, LossRTO, 0)
	if c.CWnd != mss {
		t.Fatal("BBR did not collapse on RTO")
	}
}

func TestBBREntersProbeRTTWhenStale(t *testing.T) {
	c := newControl()
	b := NewBBR()
	b.Init(c, 0)
	now := driveBBR(b, c, 1.5e6, 100*time.Millisecond, 12, 0)
	// Keep acking for >10 s without a new RTT minimum (RTT inflated so
	// the 100 ms min never refreshes).
	var state string
	delivered := uint64(1 << 40)
	for i := 0; i < 120; i++ {
		now += 100 * time.Millisecond
		delivered += 10 * mss
		b.OnAck(c, &AckSample{
			BytesAcked: 10 * mss, RTT: 150 * time.Millisecond, SRTT: 150 * time.Millisecond,
			DeliveryRate: 1.5e6, Delivered: delivered, InFlight: 20000, Now: now,
		})
		if b.State() == "probe-rtt" {
			state = b.State()
			break
		}
	}
	if state != "probe-rtt" {
		t.Fatalf("never entered probe-rtt; state=%s", b.State())
	}
	if c.CWnd != bbrMinCwndSegs*mss {
		t.Fatalf("probe-rtt cwnd = %d segments, want %d", c.CWnd/mss, bbrMinCwndSegs)
	}
}

func TestBWFilterWindowedMax(t *testing.T) {
	var f bwFilter
	f.update(100, 1, 10)
	f.update(300, 2, 10)
	f.update(200, 3, 10)
	if f.max() != 300 {
		t.Fatalf("max = %v, want 300", f.max())
	}
	// Round 13: the 300 sample (round 2) ages out; 200 (round 3) too.
	f.update(50, 13, 10)
	if f.max() != 50 {
		t.Fatalf("max after expiry = %v, want 50", f.max())
	}
}

// --- C-TCP ---

func TestCTCPDelayWindowGrowsOnUncongestedPath(t *testing.T) {
	c := newControl()
	ct := NewCTCP()
	ct.Init(c, 0)
	c.SSThresh = 20 * mss // leave slow start quickly
	rtt := 100 * time.Millisecond
	now := time.Duration(0)
	for i := 0; i < 500; i++ {
		now += rtt / 10
		ct.OnAck(c, &AckSample{BytesAcked: mss, RTT: rtt, SRTT: rtt, Now: now})
	}
	if ct.Dwnd() == 0 {
		t.Fatal("dwnd never grew on an uncongested path")
	}
	reno := &Reno{}
	rc := newControl()
	reno.Init(rc, 0)
	rc.SSThresh = 20 * mss
	for i := 0; i < 500; i++ {
		reno.OnAck(rc, &AckSample{BytesAcked: mss, RTT: rtt, SRTT: rtt})
	}
	if c.CWnd <= rc.CWnd {
		t.Fatalf("CTCP (%d) not faster than Reno (%d) on a long-fat path", c.CWnd/mss, rc.CWnd/mss)
	}
}

func TestCTCPDelayWindowRetreatsOnQueueing(t *testing.T) {
	c := newControl()
	ct := NewCTCP()
	ct.Init(c, 0)
	c.SSThresh = 20 * mss
	base := 100 * time.Millisecond
	now := time.Duration(0)
	// Grow dwnd on a clean path first.
	for i := 0; i < 300; i++ {
		now += base / 10
		ct.OnAck(c, &AckSample{BytesAcked: mss, RTT: base, SRTT: base, Now: now})
	}
	grown := ct.Dwnd()
	if grown == 0 {
		t.Fatal("precondition: dwnd did not grow")
	}
	// Now inflate the RTT (queue building): dwnd must retreat.
	for i := 0; i < 300; i++ {
		now += base
		ct.OnAck(c, &AckSample{BytesAcked: mss, RTT: 4 * base, SRTT: 4 * base, Now: now})
	}
	if ct.Dwnd() >= grown {
		t.Fatalf("dwnd %d did not retreat from %d under queueing", ct.Dwnd(), grown)
	}
}

func TestCTCPLossHalves(t *testing.T) {
	c := newControl()
	ct := NewCTCP()
	ct.Init(c, 0)
	c.CWnd = 100 * mss
	ct.lossWnd = 80 * mss
	ct.dwnd = 20 * mss
	ct.OnLoss(c, LossFastRetransmit, 0)
	if c.CWnd > 60*mss || c.CWnd < 40*mss {
		t.Fatalf("cwnd after loss = %d segments, want ≈50", c.CWnd/mss)
	}
	ct.OnLoss(c, LossRTO, 0)
	if ct.Dwnd() != 0 {
		t.Fatal("dwnd survived an RTO")
	}
}

// --- DCTCP ---

func TestDCTCPNeedsECN(t *testing.T) {
	if !NewDCTCP().NeedsECN() {
		t.Fatal("DCTCP must request ECN")
	}
	for _, name := range []string{"reno", "cubic", "bbr", "ctcp"} {
		a, _ := New(name)
		if a.NeedsECN() {
			t.Fatalf("%s requests ECN", name)
		}
	}
}

func TestDCTCPAlphaConvergesToMarkFraction(t *testing.T) {
	c := newControl()
	d := NewDCTCP()
	d.Init(c, 0)
	var delivered uint64
	// Every byte marked → α → 1.
	for i := 0; i < 400; i++ {
		delivered += mss
		d.OnAck(c, &AckSample{BytesAcked: mss, ECE: true, MarkedBytes: mss, Delivered: delivered})
	}
	if d.Alpha() < 0.9 {
		t.Fatalf("α = %v under full marking, want →1", d.Alpha())
	}
	// Then an unmarked epoch: α decays toward 0.
	for i := 0; i < 4000; i++ {
		delivered += mss
		d.OnAck(c, &AckSample{BytesAcked: mss, Delivered: delivered})
	}
	if d.Alpha() > 0.1 {
		t.Fatalf("α = %v after marks stopped, want →0", d.Alpha())
	}
}

func TestDCTCPGentleReduction(t *testing.T) {
	// With a small α, the window reduction must be proportional (≪ half).
	c := newControl()
	d := NewDCTCP()
	d.Init(c, 0)
	d.alpha = 0.1
	c.CWnd = 100 * mss
	c.SSThresh = 50 * mss
	var delivered uint64 = 1 // past windowStart=0
	d.windowStart = 0
	d.OnAck(c, &AckSample{BytesAcked: mss, ECE: true, MarkedBytes: mss, Delivered: delivered})
	// cwnd·(1−α′/2) with α′ ≈ 0.15 → ≈92–97 segments, plus growth.
	if c.CWnd < 90*mss || c.CWnd > 100*mss {
		t.Fatalf("cwnd after gentle mark = %d segments", c.CWnd/mss)
	}
}

func TestDCTCPLossStillHalves(t *testing.T) {
	c := newControl()
	d := NewDCTCP()
	d.Init(c, 0)
	c.CWnd = 100 * mss
	d.OnLoss(c, LossFastRetransmit, 0)
	if c.CWnd != 50*mss {
		t.Fatalf("cwnd after loss = %d segments, want 50", c.CWnd/mss)
	}
}

// --- shared ---

func TestControlClamp(t *testing.T) {
	c := newControl()
	c.CWnd = 10
	c.Clamp()
	if c.CWnd != mss {
		t.Fatalf("Clamp → %d, want %d", c.CWnd, mss)
	}
}

func TestLossKindString(t *testing.T) {
	if LossFastRetransmit.String() != "fast-retransmit" || LossRTO.String() != "rto" {
		t.Fatal("LossKind String broken")
	}
}

func TestAllAlgorithmsSurviveAckStorm(t *testing.T) {
	// Robustness: every algorithm must keep cwnd ≥ 1 MSS through an
	// adversarial mix of acks and losses.
	for _, name := range Names() {
		a, _ := New(name)
		c := newControl()
		a.Init(c, 0)
		now := time.Duration(0)
		var delivered uint64
		for i := 0; i < 2000; i++ {
			now += time.Millisecond
			switch i % 7 {
			case 3:
				a.OnLoss(c, LossFastRetransmit, now)
			case 6:
				a.OnLoss(c, LossRTO, now)
			default:
				delivered += mss
				a.OnAck(c, &AckSample{
					BytesAcked: mss, RTT: time.Millisecond * time.Duration(1+i%50),
					SRTT: 10 * time.Millisecond, DeliveryRate: 1e6,
					Delivered: delivered, InFlight: c.CWnd, Now: now,
				})
			}
			if c.CWnd < mss {
				t.Fatalf("%s: cwnd fell to %d at step %d", name, c.CWnd, i)
			}
		}
	}
}
