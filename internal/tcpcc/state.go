package tcpcc

import "time"

// StateVersion identifies the State layout. A loader must refuse a
// snapshot whose version it does not understand rather than guess at
// field meanings (DESIGN.md §12).
const StateVersion = 1

// State is an algorithm-agnostic bag of congestion-control internals,
// used by live NSM migration to carry an algorithm's learned model
// (CUBIC's epoch, BBR's bandwidth filter, …) across a stack handoff.
// Scalars live in two typed maps keyed by short field names; ordered
// series (BBR's windowed-max samples) use the indexed Series slice.
// The representation is deliberately schemaless so that an old loader
// can at least identify — and reject — a newer algorithm's snapshot by
// Name/Version instead of misparsing it.
type State struct {
	Version int
	Name    string
	F64     map[string]float64
	I64     map[string]int64
	Series  []SeriesPoint
}

// SeriesPoint is one (round, value) sample of an ordered series.
type SeriesPoint struct {
	Round uint64
	Value float64
}

func newState(name string) State {
	return State{
		Version: StateVersion,
		Name:    name,
		F64:     map[string]float64{},
		I64:     map[string]int64{},
	}
}

// Snapshotter is implemented by algorithms whose internals survive a
// live migration. Algorithms that do not implement it (Reno is
// stateless) migrate by fresh Init, which is also the defined
// behaviour for a cross-algorithm hot-swap.
type Snapshotter interface {
	// SaveState exports the algorithm's internal model.
	SaveState() State
	// LoadState replaces the internal model with a previously saved
	// one. It reports false (leaving the fresh-Init state intact) when
	// the snapshot's Name or Version does not match.
	LoadState(State) bool
}

// Save exports the state of any registered algorithm: the internals
// for Snapshotters, or an empty named bag for stateless ones.
func Save(a Algorithm) State {
	if s, ok := a.(Snapshotter); ok {
		return s.SaveState()
	}
	return newState(a.Name())
}

// Load imports st into a when the algorithm name and version match,
// reporting whether the internals were restored. A false return means
// the algorithm keeps its fresh-Init state — the hot-swap semantics.
func Load(a Algorithm, st State) bool {
	if st.Name != a.Name() || st.Version != StateVersion {
		return false
	}
	if s, ok := a.(Snapshotter); ok {
		return s.LoadState(st)
	}
	// Stateless algorithm: a matching name is a complete restore.
	return true
}

func (st State) compatible(name string) bool {
	return st.Name == name && st.Version == StateVersion
}

// --- Cubic ---

// SaveState implements Snapshotter.
func (cu *Cubic) SaveState() State {
	st := newState(cu.Name())
	st.F64["wmax"] = cu.wMax
	st.F64["k"] = cu.k
	st.F64["west"] = cu.wEst
	st.I64["epoch_start"] = int64(cu.epochStart)
	return st
}

// LoadState implements Snapshotter.
func (cu *Cubic) LoadState(st State) bool {
	if !st.compatible(cu.Name()) {
		return false
	}
	cu.wMax = st.F64["wmax"]
	cu.k = st.F64["k"]
	cu.wEst = st.F64["west"]
	cu.epochStart = time.Duration(st.I64["epoch_start"])
	return true
}

// --- BBR ---

// SaveState implements Snapshotter.
func (b *BBR) SaveState() State {
	st := newState(b.Name())
	st.I64["state"] = int64(b.state)
	st.I64["min_rtt"] = int64(b.minRTT)
	st.I64["min_rtt_stamp"] = int64(b.minRTTStamp)
	st.I64["round_count"] = int64(b.roundCount)
	st.I64["next_round_delivered"] = int64(b.nextRoundDelivered)
	st.I64["round_start"] = b2i(b.roundStart)
	st.F64["full_bw"] = b.fullBw
	st.I64["full_bw_count"] = int64(b.fullBwCount)
	st.I64["filled_pipe"] = b2i(b.filledPipe)
	st.F64["pacing_gain"] = b.pacingGain
	st.F64["cwnd_gain"] = b.cwndGain
	st.I64["cycle_index"] = int64(b.cycleIndex)
	st.I64["cycle_stamp"] = int64(b.cycleStamp)
	st.I64["probe_rtt_done"] = int64(b.probeRTTDone)
	st.I64["prior_cwnd"] = int64(b.priorCwnd)
	st.I64["probe_rtt_round"] = int64(b.probeRTTRound)
	for _, s := range b.btlBw.samples {
		st.Series = append(st.Series, SeriesPoint{Round: s.round, Value: s.bw})
	}
	return st
}

// LoadState implements Snapshotter.
func (b *BBR) LoadState(st State) bool {
	if !st.compatible(b.Name()) {
		return false
	}
	b.state = bbrState(st.I64["state"])
	b.minRTT = time.Duration(st.I64["min_rtt"])
	b.minRTTStamp = time.Duration(st.I64["min_rtt_stamp"])
	b.roundCount = uint64(st.I64["round_count"])
	b.nextRoundDelivered = uint64(st.I64["next_round_delivered"])
	b.roundStart = st.I64["round_start"] != 0
	b.fullBw = st.F64["full_bw"]
	b.fullBwCount = int(st.I64["full_bw_count"])
	b.filledPipe = st.I64["filled_pipe"] != 0
	b.pacingGain = st.F64["pacing_gain"]
	b.cwndGain = st.F64["cwnd_gain"]
	b.cycleIndex = int(st.I64["cycle_index"])
	b.cycleStamp = time.Duration(st.I64["cycle_stamp"])
	b.probeRTTDone = time.Duration(st.I64["probe_rtt_done"])
	b.priorCwnd = int(st.I64["prior_cwnd"])
	b.probeRTTRound = uint64(st.I64["probe_rtt_round"])
	b.btlBw.samples = b.btlBw.samples[:0]
	for _, p := range st.Series {
		b.btlBw.samples = append(b.btlBw.samples, bwSample{round: p.Round, bw: p.Value})
	}
	return true
}

// --- CTCP ---

// SaveState implements Snapshotter.
func (ct *CTCP) SaveState() State {
	st := newState(ct.Name())
	st.F64["dwnd"] = ct.dwnd
	st.I64["base_rtt"] = int64(ct.baseRTT)
	st.I64["loss_wnd"] = int64(ct.lossWnd)
	st.I64["ss_active"] = b2i(ct.ssActive)
	return st
}

// LoadState implements Snapshotter.
func (ct *CTCP) LoadState(st State) bool {
	if !st.compatible(ct.Name()) {
		return false
	}
	ct.dwnd = st.F64["dwnd"]
	ct.baseRTT = time.Duration(st.I64["base_rtt"])
	ct.lossWnd = int(st.I64["loss_wnd"])
	ct.ssActive = st.I64["ss_active"] != 0
	return true
}

// --- DCTCP ---

// SaveState implements Snapshotter.
func (d *DCTCP) SaveState() State {
	st := newState(d.Name())
	st.F64["alpha"] = d.alpha
	st.I64["window_start"] = int64(d.windowStart)
	st.I64["acked_bytes"] = int64(d.ackedBytes)
	st.I64["marked_bytes"] = int64(d.markedBytes)
	st.I64["ever_cong"] = b2i(d.everCongEncd)
	return st
}

// LoadState implements Snapshotter.
func (d *DCTCP) LoadState(st State) bool {
	if !st.compatible(d.Name()) {
		return false
	}
	d.alpha = st.F64["alpha"]
	d.windowStart = uint64(st.I64["window_start"])
	d.ackedBytes = int(st.I64["acked_bytes"])
	d.markedBytes = int(st.I64["marked_bytes"])
	d.everCongEncd = st.I64["ever_cong"] != 0
	return true
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
