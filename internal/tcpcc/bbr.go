package tcpcc

import "time"

// BBR implements Google's BBR v1 congestion control (Cardwell et al.,
// CACM 2017 — reference [10] of the paper). It models the path's
// bottleneck bandwidth (windowed-max filter over delivery-rate samples)
// and round-trip propagation delay (windowed-min filter), and paces at
// the estimated bandwidth instead of reacting to loss. That is what
// makes the Figure 5 WAN experiment work: on a 12 Mbit/s, 350 ms path
// with random loss, loss-based CUBIC collapses while BBR stays at the
// link rate.
type BBR struct {
	state bbrState

	// Bottleneck bandwidth filter: windowed max over ~10 rounds.
	btlBw bwFilter
	// Round-trip propagation estimate: windowed min over 10 s.
	minRTT      time.Duration
	minRTTStamp time.Duration

	// Round accounting.
	roundCount         uint64
	nextRoundDelivered uint64
	roundStart         bool

	// Startup full-pipe detection.
	fullBw      float64
	fullBwCount int
	filledPipe  bool

	pacingGain float64
	cwndGain   float64

	// ProbeBW gain cycling.
	cycleIndex int
	cycleStamp time.Duration

	// ProbeRTT bookkeeping.
	probeRTTDone  time.Duration
	priorCwnd     int
	probeRTTRound uint64
}

type bbrState int

const (
	bbrStartup bbrState = iota
	bbrDrain
	bbrProbeBW
	bbrProbeRTT
)

func (s bbrState) String() string {
	return [...]string{"startup", "drain", "probe-bw", "probe-rtt"}[s]
}

// BBR v1 constants.
const (
	bbrHighGain      = 2.885 // 2/ln2: fill the pipe in log2(BDP) rounds
	bbrDrainGain     = 1 / 2.885
	bbrCwndGain      = 2.0
	bbrBtlBwRounds   = 10
	bbrMinRTTWindow  = 10 * time.Second
	bbrProbeRTTTime  = 200 * time.Millisecond
	bbrMinCwndSegs   = 4
	bbrFullBwThresh  = 1.25
	bbrFullBwRounds  = 3
	bbrGainCycleLen  = 8
	bbrProbeBWUpGain = 1.25
	bbrProbeBWDnGain = 0.75
)

// NewBBR returns a BBR instance in startup.
func NewBBR() *BBR {
	return &BBR{state: bbrStartup, pacingGain: bbrHighGain, cwndGain: bbrHighGain, minRTT: -1}
}

// Name implements Algorithm.
func (*BBR) Name() string { return "bbr" }

// NeedsECN implements Algorithm.
func (*BBR) NeedsECN() bool { return false }

// Init implements Algorithm.
func (b *BBR) Init(c *Control, now time.Duration) {
	c.CWnd = InitialWindowSegments * c.MSS
	c.SSThresh = 1 << 30
	b.minRTTStamp = now
}

// State returns the current state name, for tests and monitoring.
func (b *BBR) State() string { return b.state.String() }

// BtlBw returns the current bottleneck-bandwidth estimate in bytes/sec.
func (b *BBR) BtlBw() float64 { return b.btlBw.max() }

// OnAck implements Algorithm.
func (b *BBR) OnAck(c *Control, s *AckSample) {
	// Round accounting: a round trip elapses when a segment sent after
	// the previous round's close is acked.
	if s.Delivered >= b.nextRoundDelivered {
		b.nextRoundDelivered = s.Delivered + uint64(s.InFlight)
		b.roundCount++
		b.roundStart = true
	} else {
		b.roundStart = false
	}

	// Update the bandwidth model. App-limited samples only raise it.
	if s.DeliveryRate > 0 && (!s.AppLimited || s.DeliveryRate > b.btlBw.max()) {
		b.btlBw.update(s.DeliveryRate, b.roundCount, bbrBtlBwRounds)
	}
	// Update the propagation-delay model.
	if s.RTT > 0 && (b.minRTT <= 0 || s.RTT <= b.minRTT) {
		b.minRTT = s.RTT
		b.minRTTStamp = s.Now
	}

	b.checkFullPipe()
	b.advanceStateMachine(c, s)
	b.setControls(c, s)
}

func (b *BBR) checkFullPipe() {
	if b.filledPipe || !b.roundStart {
		return
	}
	bw := b.btlBw.max()
	if bw >= b.fullBw*bbrFullBwThresh {
		b.fullBw = bw
		b.fullBwCount = 0
		return
	}
	b.fullBwCount++
	if b.fullBwCount >= bbrFullBwRounds {
		b.filledPipe = true
	}
}

func (b *BBR) bdp(gain float64) int {
	bw := b.btlBw.max()
	if bw <= 0 || b.minRTT <= 0 {
		return 0
	}
	return int(gain * bw * b.minRTT.Seconds())
}

func (b *BBR) advanceStateMachine(c *Control, s *AckSample) {
	switch b.state {
	case bbrStartup:
		if b.filledPipe {
			b.state = bbrDrain
			b.pacingGain = bbrDrainGain
			b.cwndGain = bbrHighGain
		}
	case bbrDrain:
		if s.InFlight <= b.bdp(1.0) {
			b.enterProbeBW(s.Now)
		}
	case bbrProbeBW:
		// Advance the gain cycle once per minRTT.
		if b.minRTT > 0 && s.Now-b.cycleStamp > b.minRTT {
			b.cycleIndex = (b.cycleIndex + 1) % bbrGainCycleLen
			b.cycleStamp = s.Now
			b.pacingGain = b.cycleGain()
		}
	case bbrProbeRTT:
		if b.probeRTTDone > 0 && s.Now >= b.probeRTTDone && b.roundCount > b.probeRTTRound {
			b.minRTTStamp = s.Now
			c.CWnd = b.priorCwnd
			if b.filledPipe {
				b.enterProbeBW(s.Now)
			} else {
				b.state = bbrStartup
				b.pacingGain = bbrHighGain
				b.cwndGain = bbrHighGain
			}
		}
	}

	// Enter ProbeRTT when the propagation estimate goes stale.
	if b.state != bbrProbeRTT && b.minRTT > 0 && s.Now-b.minRTTStamp > bbrMinRTTWindow {
		b.state = bbrProbeRTT
		b.pacingGain = 1
		b.cwndGain = 1
		b.priorCwnd = c.CWnd
		b.probeRTTDone = s.Now + bbrProbeRTTTime
		b.probeRTTRound = b.roundCount
	}
}

func (b *BBR) enterProbeBW(now time.Duration) {
	b.state = bbrProbeBW
	b.cwndGain = bbrCwndGain
	b.cycleIndex = 0
	b.cycleStamp = now
	b.pacingGain = b.cycleGain()
}

func (b *BBR) cycleGain() float64 {
	switch b.cycleIndex {
	case 0:
		return bbrProbeBWUpGain
	case 1:
		return bbrProbeBWDnGain
	default:
		return 1.0
	}
}

func (b *BBR) setControls(c *Control, s *AckSample) {
	c.PacingRate = b.pacingGain * b.btlBw.max()

	if b.state == bbrProbeRTT {
		c.CWnd = bbrMinCwndSegs * c.MSS
		return
	}
	target := b.bdp(b.cwndGain)
	if target <= 0 {
		// No model yet: grow like slow start.
		c.CWnd += s.BytesAcked
		return
	}
	if min := bbrMinCwndSegs * c.MSS; target < min {
		target = min
	}
	if c.CWnd < target {
		c.CWnd += s.BytesAcked
		if c.CWnd > target {
			c.CWnd = target
		}
	} else {
		c.CWnd = target
	}
}

// OnLoss implements Algorithm. BBR v1 does not treat loss as a
// congestion signal; only an RTO collapses the window (conservation),
// and the model regrows it on the next ACKs.
func (b *BBR) OnLoss(c *Control, kind LossKind, _ time.Duration) {
	if kind == LossRTO {
		c.CWnd = c.MSS
	}
}

// bwFilter is a windowed-max filter over (round, bandwidth) samples.
type bwFilter struct {
	samples []bwSample
}

type bwSample struct {
	round uint64
	bw    float64
}

func (f *bwFilter) update(bw float64, round uint64, window uint64) {
	// Evict samples outside the window.
	keep := f.samples[:0]
	for _, s := range f.samples {
		if round-s.round < window {
			keep = append(keep, s)
		}
	}
	f.samples = keep
	// Dominance: drop older samples that the new one supersedes.
	for len(f.samples) > 0 && f.samples[len(f.samples)-1].bw <= bw {
		f.samples = f.samples[:len(f.samples)-1]
	}
	f.samples = append(f.samples, bwSample{round: round, bw: bw})
}

func (f *bwFilter) max() float64 {
	if len(f.samples) == 0 {
		return 0
	}
	return f.samples[0].bw
}
