// Package netsim is the simulated physical substrate NetKernel runs on:
// links with configurable bandwidth, propagation delay, queueing, random
// loss and ECN marking; NICs with SR-IOV virtual functions; and a
// per-core CPU service model.
//
// The paper's testbed is two Xeon servers with Intel X710 40 GbE NICs
// joined back to back (§4.1), plus a Beijing↔California WAN path for the
// flexibility experiment (§4.3: 12 Mbit/s uplink, 350 ms average RTT).
// Both are link configurations here; see the presets in profiles.go.
//
// Everything in this package runs on a sim.Clock, so the fabric is
// deterministic in the virtual-time domain and usable in the wall-clock
// domain.
package netsim

import (
	"fmt"
	"time"

	"netkernel/internal/sim"
)

// BitsPerSec expresses link capacity.
type BitsPerSec float64

// Common capacities.
const (
	Kbps BitsPerSec = 1e3
	Mbps BitsPerSec = 1e6
	Gbps BitsPerSec = 1e9
)

func (b BitsPerSec) String() string {
	switch {
	case b >= Gbps:
		return fmt.Sprintf("%.2fGbit/s", float64(b)/1e9)
	case b >= Mbps:
		return fmt.Sprintf("%.2fMbit/s", float64(b)/1e6)
	case b >= Kbps:
		return fmt.Sprintf("%.2fKbit/s", float64(b)/1e3)
	default:
		return fmt.Sprintf("%.0fbit/s", float64(b))
	}
}

// A Port is anything that accepts a frame from the fabric. Frames are
// whole Ethernet frames; the receiver owns the slice.
type Port interface {
	Deliver(frame []byte)
}

// PortFunc adapts a function to the Port interface.
type PortFunc func(frame []byte)

// Deliver implements Port.
func (f PortFunc) Deliver(frame []byte) { f(frame) }

// LinkConfig shapes one direction of a link.
type LinkConfig struct {
	// Rate is the transmission capacity. Zero means infinitely fast.
	Rate BitsPerSec
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// LossProb is a Bernoulli per-frame loss probability. It is the
	// historical knob and keeps working unchanged; it is folded into
	// Faults.LossProb at link construction unless Faults configures its
	// own loss model.
	LossProb float64
	// Faults is the full deterministic fault model (bursty loss,
	// duplication, corruption, reordering). The zero value injects
	// nothing.
	Faults FaultConfig
	// QueueBytes bounds the drop-tail transmit queue. Zero means a
	// generous default of one bandwidth-delay product (minimum 64 KB).
	QueueBytes int
	// ECNThresholdBytes, when positive, marks frames (via the Marker
	// hook) once the queue occupancy exceeds it — a RED-at-threshold
	// model sufficient for DCTCP.
	ECNThresholdBytes int
	// Marker is invoked in place on frames selected for ECN marking.
	// The stack wires it to flip the IP CE bit.
	Marker func(frame []byte)
	// FrameOverhead is added to each frame's wire size (preamble, FCS,
	// inter-frame gap): 24 bytes on real Ethernet. Negative means 0.
	FrameOverhead int
}

// EthernetOverhead is the per-frame wire overhead of Ethernet: 7-byte
// preamble + SFD + 4-byte FCS + 12-byte inter-frame gap.
const EthernetOverhead = 24

func (c LinkConfig) queueBytes() int {
	if c.QueueBytes > 0 {
		return c.QueueBytes
	}
	bdp := int(float64(c.Rate) / 8 * c.Delay.Seconds())
	if bdp < 64<<10 {
		bdp = 64 << 10
	}
	return bdp
}

// LinkStats counts what a link did. Every offered frame is accounted
// for exactly once: Offered == TxFrames + LossDrops + QueueDrops +
// DownDrops. Duplicates are extra deliveries on top of TxFrames.
type LinkStats struct {
	Offered    uint64 // frames handed to Send
	TxFrames   uint64
	TxBytes    uint64
	LossDrops  uint64 // random loss (Bernoulli or Gilbert–Elliott)
	QueueDrops uint64 // drop-tail overflow
	DownDrops  uint64 // frames lost to a link flap/partition
	ECNMarks   uint64
	MaxQueue   int // high-water mark, bytes

	DupFrames       uint64 // extra copies delivered beyond TxFrames
	CorruptFrames   uint64 // frames delivered with a flipped bit
	ReorderedFrames uint64 // frames delivered with extra jitter
}

// A Link is one unidirectional pipe: a drop-tail queue, a serializing
// transmitter, a propagation delay, and Bernoulli loss.
type Link struct {
	clock sim.Clock
	rng   *sim.RNG
	cfg   LinkConfig
	dst   Port

	busyUntil sim.Time
	queued    int // bytes committed to the transmitter, not yet sent
	down      bool
	stats     LinkStats
}

// NewLink builds a link feeding dst. rng drives the loss process; pass a
// scenario-seeded RNG for reproducibility.
func NewLink(clock sim.Clock, rng *sim.RNG, cfg LinkConfig, dst Port) *Link {
	if dst == nil {
		panic("netsim: link with nil destination")
	}
	if cfg.FrameOverhead < 0 {
		cfg.FrameOverhead = 0
	}
	if cfg.LossProb > 0 && cfg.Faults.LossProb == 0 && cfg.Faults.GE == nil {
		cfg.Faults.LossProb = cfg.LossProb
	}
	if cfg.Faults.GE != nil {
		ge := *cfg.Faults.GE // each link owns its chain state
		cfg.Faults.GE = &ge
	}
	return &Link{clock: clock, rng: rng, cfg: cfg, dst: dst}
}

// Stats returns a copy of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// QueuedBytes returns the current transmit-queue occupancy.
func (l *Link) QueuedBytes() int { return l.queued }

// Config returns the link configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// Send enqueues a frame for transmission. The link takes ownership of
// the slice. Must be called from the clock's executor.
func (l *Link) Send(frame []byte) {
	wire := len(frame) + l.cfg.FrameOverhead
	l.stats.Offered++
	if l.queued+wire > l.cfg.queueBytes() {
		l.stats.QueueDrops++
		return
	}
	if l.cfg.ECNThresholdBytes > 0 && l.queued > l.cfg.ECNThresholdBytes && l.cfg.Marker != nil {
		l.cfg.Marker(frame)
		l.stats.ECNMarks++
	}
	l.queued += wire
	if l.queued > l.stats.MaxQueue {
		l.stats.MaxQueue = l.queued
	}

	now := l.clock.Now()
	start := l.busyUntil
	if start < now {
		start = now
	}
	var tx time.Duration
	if l.cfg.Rate > 0 {
		tx = time.Duration(float64(wire*8) / float64(l.cfg.Rate) * float64(time.Second))
	}
	done := start.Add(tx)
	l.busyUntil = done

	fate := l.drawFate(len(frame) * 8)
	l.clock.AfterFunc(done.Sub(now), func() {
		l.queued -= wire
		if l.down {
			l.stats.DownDrops++
			return
		}
		if fate.lost {
			l.stats.LossDrops++
			return
		}
		l.stats.TxFrames++
		l.stats.TxBytes += uint64(wire)
		var dup []byte
		if fate.dup {
			// Copy before any corruption: the duplicate models a clean
			// retransmission of the same frame.
			l.stats.DupFrames++
			dup = append([]byte(nil), frame...)
		}
		if fate.corrupt {
			frame[fate.bitIdx/8] ^= 1 << (fate.bitIdx % 8)
			l.stats.CorruptFrames++
		}
		if fate.jitter > 0 {
			l.stats.ReorderedFrames++
		}
		if dup != nil {
			l.propagate(dup, 0)
		}
		l.propagate(frame, fate.jitter)
	})
}

// propagate delivers a frame after the propagation delay plus any
// reordering jitter.
func (l *Link) propagate(frame []byte, jitter time.Duration) {
	delay := l.cfg.Delay + jitter
	if delay > 0 {
		l.clock.AfterFunc(delay, func() { l.dst.Deliver(frame) })
	} else {
		l.dst.Deliver(frame)
	}
}

// Deliver implements Port, so links can be chained behind switches.
func (l *Link) Deliver(frame []byte) { l.Send(frame) }
