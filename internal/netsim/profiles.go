package netsim

import (
	"time"

	"netkernel/internal/sim"
)

// Testbed40G reproduces the paper's testbed fabric (§4.1): two servers
// joined by Intel X710 40 GbE NICs. With standard 1500-byte MTU frames
// the achievable TCP goodput is ~37 Gbit/s, the line rate Figure 4
// reports.
func Testbed40G() LinkConfig {
	return LinkConfig{
		Rate:          40 * Gbps,
		Delay:         5 * time.Microsecond, // back-to-back in one rack
		QueueBytes:    4 << 20,
		FrameOverhead: EthernetOverhead,
	}
}

// WANPath reproduces the §4.3 flexibility experiment's Internet path:
// server in Beijing, client in California, 12 Mbit/s uplink, 350 ms
// average RTT. Random loss is not published; lossProb is the calibration
// knob (see EXPERIMENTS.md) that separates loss-based CUBIC from
// model-based BBR.
func WANPath(lossProb float64) LinkConfig {
	return LinkConfig{
		Rate:          12 * Mbps,
		Delay:         175 * time.Millisecond, // 350 ms RTT
		LossProb:      lossProb,
		QueueBytes:    128 << 10, // ~¼ BDP: a shallow intercontinental queue
		FrameOverhead: EthernetOverhead,
	}
}

// WANPathGE is WANPath with bursty Gilbert–Elliott loss instead of
// Bernoulli loss: mean burst length 1/pBadGood frames at lossBad, with
// a clean good state. Each call returns a fresh chain, so the two
// directions of a duplex path get independent burst processes.
func WANPathGE(pGoodBad, pBadGood, lossBad float64) LinkConfig {
	cfg := WANPath(0)
	cfg.Faults.GE = &GilbertElliott{
		PGoodBad: pGoodBad,
		PBadGood: pBadGood,
		LossBad:  lossBad,
	}
	return cfg
}

// LossyReorderLAN is a misbehaving 1 Gbit/s LAN segment: light random
// loss plus duplication, bit corruption, and enough reordering jitter
// to overtake back-to-back frames. The chaos suite's LAN profile.
func LossyReorderLAN() LinkConfig {
	return LinkConfig{
		Rate:          1 * Gbps,
		Delay:         50 * time.Microsecond,
		QueueBytes:    512 << 10,
		FrameOverhead: EthernetOverhead,
		Faults: FaultConfig{
			LossProb:      0.02,
			DupProb:       0.02,
			CorruptProb:   0.01,
			ReorderProb:   0.10,
			ReorderSpread: 2 * time.Millisecond,
		},
	}
}

// Duplex joins two ports with a symmetric pair of links and returns
// both directions (a→b, b→a).
func Duplex(clock sim.Clock, rng *sim.RNG, cfg LinkConfig, a, b Port) (ab, ba *Link) {
	ab = NewLink(clock, rng, cfg, b)
	ba = NewLink(clock, rng, cfg, a)
	return ab, ba
}
