package netsim

import (
	"time"

	"netkernel/internal/sim"
)

// CPU models per-core packet-processing capacity. Each core is a FIFO
// server: work dispatched to a core starts when the core frees up and
// completes after its cost. This is what makes Figure 4's shape emerge —
// a single flow is pinned to one core and tops out at that core's
// processing rate, while two or more flows on different cores saturate
// the 40 GbE line.
//
// Busy time is tracked per core, feeding the §5 accounting and pricing
// models ("charge tenants based on … CPU and memory utilization").
type CPU struct {
	clock sim.Clock
	cores []coreState
}

type coreState struct {
	busyUntil sim.Time
	busyTotal time.Duration
	jobs      uint64
}

// NewCPU builds a CPU with n cores.
func NewCPU(clock sim.Clock, n int) *CPU {
	if n <= 0 {
		n = 1
	}
	return &CPU{clock: clock, cores: make([]coreState, n)}
}

// Cores returns the core count.
func (c *CPU) Cores() int { return len(c.cores) }

// Dispatch queues work of the given cost on a core and runs fn when the
// work completes. Core indexes wrap, so callers can pass a flow hash
// directly (RSS-style steering). Zero-cost work still respects FIFO
// order. Must be called from the clock's executor.
func (c *CPU) Dispatch(core int, cost time.Duration, fn func()) {
	if cost < 0 {
		cost = 0
	}
	s := &c.cores[core%len(c.cores)]
	now := c.clock.Now()
	start := s.busyUntil
	if start < now {
		start = now
	}
	done := start.Add(cost)
	s.busyUntil = done
	s.busyTotal += cost
	s.jobs++
	if fn != nil {
		c.clock.AfterFunc(done.Sub(now), fn)
	}
}

// BusyTime returns the cumulative busy time of one core.
func (c *CPU) BusyTime(core int) time.Duration {
	return c.cores[core%len(c.cores)].busyTotal
}

// TotalBusy returns the cumulative busy time across all cores.
func (c *CPU) TotalBusy() time.Duration {
	var t time.Duration
	for i := range c.cores {
		t += c.cores[i].busyTotal
	}
	return t
}

// Jobs returns the total number of dispatched work items.
func (c *CPU) Jobs() uint64 {
	var n uint64
	for i := range c.cores {
		n += c.cores[i].jobs
	}
	return n
}

// Utilization returns TotalBusy divided by cores×elapsed, the average
// fraction of the CPU consumed since the epoch.
func (c *CPU) Utilization() float64 {
	elapsed := c.clock.Now().Duration()
	if elapsed <= 0 {
		return 0
	}
	return float64(c.TotalBusy()) / (float64(elapsed) * float64(len(c.cores)))
}
