package netsim

import (
	"time"

	"netkernel/internal/sim"
)

// FaultConfig is a link's deterministic fault model. Every decision is
// drawn from the link's sim.RNG at Send time, so a seeded scenario
// replays the identical fault sequence regardless of downstream timing.
//
// Loss comes from either the two-state Gilbert–Elliott chain (GE, when
// non-nil) or the memoryless LossProb; the remaining knobs compose on
// top of whichever loss model is active.
type FaultConfig struct {
	// LossProb is a Bernoulli per-frame loss probability, the same
	// memoryless model LinkConfig.LossProb always had.
	LossProb float64
	// GE, when non-nil, replaces LossProb with a bursty Gilbert–Elliott
	// loss process. NewLink clones the instance, so each link runs an
	// independent chain even when two directions share a LinkConfig.
	GE *GilbertElliott
	// DupProb duplicates a frame: a second copy is delivered
	// back-to-back with the original.
	DupProb float64
	// CorruptProb flips one random bit of the frame before delivery,
	// leaving the inet checksums to catch the damage.
	CorruptProb float64
	// ReorderProb delays a frame by an extra uniform jitter in
	// (0, ReorderSpread], letting later frames overtake it.
	ReorderProb float64
	// ReorderSpread bounds the reordering jitter. Zero disables
	// reordering regardless of ReorderProb.
	ReorderSpread time.Duration
}

// GilbertElliott is the classic two-state Markov loss model for bursty
// channels: a good state with rare loss and a bad state with heavy
// loss, with per-frame transition probabilities between them. The chain
// state is held in the struct, so each link (or other user) needs its
// own instance; the zero value starts in the good state.
type GilbertElliott struct {
	// PGoodBad and PBadGood are the per-frame transition probabilities
	// good→bad and bad→good.
	PGoodBad, PBadGood float64
	// LossGood and LossBad are the per-frame loss probabilities within
	// each state.
	LossGood, LossBad float64

	bad bool
}

// Lost advances the chain one frame and reports whether that frame is
// lost. It consumes exactly two draws from rng per call.
func (g *GilbertElliott) Lost(rng *sim.RNG) bool {
	if g.bad {
		if rng.Bernoulli(g.PBadGood) {
			g.bad = false
		}
	} else {
		if rng.Bernoulli(g.PGoodBad) {
			g.bad = true
		}
	}
	p := g.LossGood
	if g.bad {
		p = g.LossBad
	}
	return rng.Bernoulli(p)
}

// Bad reports whether the chain is currently in the bad (bursty-loss)
// state.
func (g *GilbertElliott) Bad() bool { return g.bad }

// frameFate is the set of per-frame fault decisions, all drawn when the
// frame is admitted so the RNG consumption order is timing-independent.
type frameFate struct {
	lost    bool
	dup     bool
	corrupt bool
	bitIdx  int // bit to flip when corrupt
	jitter  time.Duration
}

// drawFate consumes the link RNG for one frame. With an all-zero fault
// config no draws are consumed (Bernoulli(0) short-circuits), so
// configurations predating the fault model replay unchanged.
func (l *Link) drawFate(frameBits int) frameFate {
	var f frameFate
	if l.rng == nil {
		return f
	}
	fc := &l.cfg.Faults
	if fc.GE != nil {
		f.lost = fc.GE.Lost(l.rng)
	} else {
		f.lost = l.rng.Bernoulli(fc.LossProb)
	}
	if f.lost {
		return f
	}
	if l.rng.Bernoulli(fc.CorruptProb) && frameBits > 0 {
		f.corrupt = true
		f.bitIdx = l.rng.Intn(frameBits)
	}
	f.dup = l.rng.Bernoulli(fc.DupProb)
	if fc.ReorderSpread > 0 && l.rng.Bernoulli(fc.ReorderProb) {
		f.jitter = time.Duration(1 + l.rng.Intn(int(fc.ReorderSpread)))
	}
	return f
}

// SetDown takes the link down (frames that finish serializing while the
// link is down are dropped and counted as DownDrops) or brings it back
// up. Must be called from the clock's executor.
func (l *Link) SetDown(down bool) { l.down = down }

// Down reports whether the link is administratively down.
func (l *Link) Down() bool { return l.down }

// ScheduleFlap schedules the link to go down at virtual time `at` from
// now and heal after `outage`. Flaps may overlap; the link is simply
// down whenever any scheduled outage covers the current time is not
// tracked — the last SetDown wins, so keep flaps disjoint for clean
// semantics.
func (l *Link) ScheduleFlap(at, outage time.Duration) {
	l.clock.AfterFunc(at, func() { l.SetDown(true) })
	l.clock.AfterFunc(at+outage, func() { l.SetDown(false) })
}

// Partition takes both directions of a duplex link down and returns the
// heal function. Convenience for partition/heal scenarios.
func Partition(ab, ba *Link) (heal func()) {
	ab.SetDown(true)
	ba.SetDown(true)
	return func() {
		ab.SetDown(false)
		ba.SetDown(false)
	}
}
