package netsim

import (
	"bytes"
	"testing"
	"time"

	"netkernel/internal/sim"
)

// reconcile asserts the link's conservation law: every offered frame is
// transmitted or dropped for exactly one reason.
func reconcile(t *testing.T, s LinkStats) {
	t.Helper()
	if s.Offered != s.TxFrames+s.LossDrops+s.QueueDrops+s.DownDrops {
		t.Fatalf("stats do not reconcile: %+v", s)
	}
}

func TestGilbertElliottBursty(t *testing.T) {
	// Mean burst length 10 frames, bad-state loss 0.8, good state clean:
	// losses must cluster far more than a Bernoulli process of the same
	// mean rate would.
	loop := sim.NewLoop()
	dst := &collector{clock: loop}
	cfg := LinkConfig{Faults: FaultConfig{
		GE: &GilbertElliott{PGoodBad: 0.01, PBadGood: 0.1, LossBad: 0.8},
	}}
	l := NewLink(loop, sim.NewRNG(7), cfg, dst)
	const frames = 20000
	lostRun, maxRun := 0, 0
	for i := 0; i < frames; i++ {
		before := l.Stats().LossDrops
		l.Send(make([]byte, 100))
		loop.Run()
		if l.Stats().LossDrops > before {
			lostRun++
			if lostRun > maxRun {
				maxRun = lostRun
			}
		} else {
			lostRun = 0
		}
	}
	s := l.Stats()
	reconcile(t, s)
	rate := float64(s.LossDrops) / frames
	if rate < 0.02 || rate > 0.15 {
		t.Fatalf("GE loss rate %.3f outside expected band", rate)
	}
	// A Bernoulli process at this rate would need ~10^7 frames to show a
	// run of 6; the bad state produces them readily.
	if maxRun < 4 {
		t.Fatalf("max loss run %d; GE losses should be bursty", maxRun)
	}
}

func TestDuplicationAndCorruption(t *testing.T) {
	loop := sim.NewLoop()
	dst := &collector{clock: loop}
	cfg := LinkConfig{QueueBytes: 1 << 30, Faults: FaultConfig{DupProb: 0.5, CorruptProb: 0.5}}
	l := NewLink(loop, sim.NewRNG(3), cfg, dst)
	const frames = 1000
	orig := bytes.Repeat([]byte{0xAA}, 64)
	for i := 0; i < frames; i++ {
		l.Send(append([]byte(nil), orig...))
	}
	loop.Run()
	s := l.Stats()
	reconcile(t, s)
	if s.DupFrames < frames/3 || s.DupFrames > 2*frames/3 {
		t.Fatalf("DupFrames = %d of %d", s.DupFrames, frames)
	}
	if got := uint64(len(dst.frames)); got != s.TxFrames+s.DupFrames {
		t.Fatalf("delivered %d frames, want TxFrames+DupFrames = %d", got, s.TxFrames+s.DupFrames)
	}
	// Corrupted frames differ from the original in exactly one bit;
	// duplicates are clean copies made before the flip.
	var corrupt int
	for _, f := range dst.frames {
		diff := 0
		for i := range f {
			for b := f[i] ^ orig[i]; b != 0; b &= b - 1 {
				diff++
			}
		}
		if diff > 1 {
			t.Fatalf("frame differs in %d bits, want ≤ 1", diff)
		}
		if diff == 1 {
			corrupt++
		}
	}
	if uint64(corrupt) != s.CorruptFrames {
		t.Fatalf("observed %d corrupt frames, stats say %d", corrupt, s.CorruptFrames)
	}
	if s.CorruptFrames < frames/3 {
		t.Fatalf("CorruptFrames = %d of %d", s.CorruptFrames, frames)
	}
}

func TestReorderJitterOvertakes(t *testing.T) {
	loop := sim.NewLoop()
	dst := &collector{clock: loop}
	cfg := LinkConfig{
		Rate:  1 * Gbps,
		Delay: 10 * time.Microsecond,
		Faults: FaultConfig{
			ReorderProb:   0.3,
			ReorderSpread: 500 * time.Microsecond,
		},
	}
	l := NewLink(loop, sim.NewRNG(11), cfg, dst)
	const frames = 500
	for i := 0; i < frames; i++ {
		l.Send([]byte{byte(i), byte(i >> 8)})
	}
	loop.Run()
	s := l.Stats()
	reconcile(t, s)
	if s.ReorderedFrames == 0 {
		t.Fatal("no frames were jittered")
	}
	if len(dst.frames) != frames {
		t.Fatalf("delivered %d, want %d", len(dst.frames), frames)
	}
	inversions := 0
	prev := -1
	for _, f := range dst.frames {
		seq := int(f[0]) | int(f[1])<<8
		if seq < prev {
			inversions++
		}
		prev = seq
	}
	if inversions == 0 {
		t.Fatal("jitter produced no reordering")
	}
}

func TestLinkFlapDropsAndHeals(t *testing.T) {
	loop := sim.NewLoop()
	dst := &collector{clock: loop}
	l := NewLink(loop, sim.NewRNG(1), LinkConfig{Rate: 8 * Mbps}, dst)
	// Down between 10 ms and 20 ms; 1000-byte frames serialize in 1 ms.
	l.ScheduleFlap(10*time.Millisecond, 10*time.Millisecond)
	for i := 0; i < 30; i++ {
		loop.AfterFunc(time.Duration(i)*time.Millisecond, func() {
			l.Send(make([]byte, 1000))
		})
	}
	loop.Run()
	s := l.Stats()
	reconcile(t, s)
	if s.DownDrops == 0 {
		t.Fatal("no frames dropped during the outage")
	}
	if s.TxFrames == 0 || s.TxFrames+s.DownDrops != 30 {
		t.Fatalf("TxFrames=%d DownDrops=%d, want them to sum to 30", s.TxFrames, s.DownDrops)
	}
	if l.Down() {
		t.Fatal("link still down after scheduled heal")
	}
}

func TestLossProbBackCompat(t *testing.T) {
	// The historical LossProb knob must keep driving losses when the new
	// Faults block is untouched (WAN profile path).
	loop := sim.NewLoop()
	dst := &collector{clock: loop}
	l := NewLink(loop, sim.NewRNG(5), LinkConfig{LossProb: 0.3, QueueBytes: 1 << 30}, dst)
	const frames = 2000
	for i := 0; i < frames; i++ {
		l.Send(make([]byte, 64))
	}
	loop.Run()
	s := l.Stats()
	reconcile(t, s)
	rate := float64(s.LossDrops) / frames
	if rate < 0.25 || rate > 0.35 {
		t.Fatalf("LossProb=0.3 produced loss rate %.3f", rate)
	}
}

func TestFaultSequenceDeterministic(t *testing.T) {
	run := func() (LinkStats, int) {
		loop := sim.NewLoop()
		dst := &collector{clock: loop}
		l := NewLink(loop, sim.NewRNG(42), LossyReorderLAN(), dst)
		for i := 0; i < 2000; i++ {
			l.Send(make([]byte, 200))
		}
		loop.Run()
		return l.Stats(), len(dst.frames)
	}
	s1, n1 := run()
	s2, n2 := run()
	if s1 != s2 || n1 != n2 {
		t.Fatalf("same seed diverged:\n%+v (%d frames)\n%+v (%d frames)", s1, n1, s2, n2)
	}
}
