package netsim

import (
	"fmt"

	"netkernel/internal/sim"
)

// MAC is an Ethernet hardware address. netsim reads destination MACs
// directly from frame bytes (an Ethernet header always starts with the
// destination address) so it can demultiplex without importing the
// protocol packages.
type MAC [6]byte

// Broadcast is the all-ones MAC.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether the address is broadcast or multicast.
func (m MAC) IsBroadcast() bool { return m[0]&1 == 1 }

// dstMAC extracts the destination address from a frame.
func dstMAC(frame []byte) MAC {
	var m MAC
	copy(m[:], frame)
	return m
}

// A NIC models a physical NIC with SR-IOV support: a physical function
// (the host / vSwitch side) plus virtual functions handed to NSMs, as in
// the prototype ("one virtual function (VF) of an Intel X710 40Gbps NIC
// with SR-IOV", §4.1). Inbound frames are demultiplexed by destination
// MAC: a VF's traffic bypasses the host entirely, which is the SR-IOV
// host-bypass path of Figure 2.
type NIC struct {
	clock   sim.Clock
	mac     MAC
	wire    Port
	handler func(frame []byte)
	vfs     []*VF
}

// NewNIC builds a NIC with the given physical-function MAC.
func NewNIC(clock sim.Clock, mac MAC) *NIC {
	return &NIC{clock: clock, mac: mac}
}

// MAC returns the physical-function address.
func (n *NIC) MAC() MAC { return n.mac }

// AttachWire connects the NIC's transmitter to the fabric (usually a
// Link).
func (n *NIC) AttachWire(p Port) { n.wire = p }

// SetHandler installs the physical-function receive handler.
func (n *NIC) SetHandler(h func(frame []byte)) { n.handler = h }

// Send transmits a frame from the physical function.
func (n *NIC) Send(frame []byte) {
	if n.wire != nil {
		n.wire.Deliver(frame)
	}
}

// Deliver implements Port: inbound traffic from the wire. Broadcasts go
// to the physical function and every VF (each gets its own copy); unicast
// goes to the owning function only, falling back to the physical function
// for unknown destinations (promiscuous vSwitch behaviour).
func (n *NIC) Deliver(frame []byte) {
	dst := dstMAC(frame)
	if dst.IsBroadcast() {
		for _, vf := range n.vfs {
			if vf.handler != nil {
				c := make([]byte, len(frame))
				copy(c, frame)
				vf.handler(c)
			}
		}
		if n.handler != nil {
			n.handler(frame)
		}
		return
	}
	for _, vf := range n.vfs {
		if vf.mac == dst {
			if vf.handler != nil {
				vf.handler(frame)
			}
			return
		}
	}
	if n.handler != nil {
		n.handler(frame)
	}
}

// AddVF carves a virtual function with its own MAC out of the NIC.
func (n *NIC) AddVF(mac MAC) *VF {
	vf := &VF{nic: n, mac: mac}
	n.vfs = append(n.vfs, vf)
	return vf
}

// VFs returns the NIC's virtual functions.
func (n *NIC) VFs() []*VF { return n.vfs }

// A VF is an SR-IOV virtual function: an independent send/receive
// endpoint sharing the physical port.
type VF struct {
	nic     *NIC
	mac     MAC
	handler func(frame []byte)
}

// MAC returns the VF's address.
func (v *VF) MAC() MAC { return v.mac }

// SetHandler installs the VF receive handler.
func (v *VF) SetHandler(h func(frame []byte)) { v.handler = h }

// Send transmits a frame through the shared physical port.
func (v *VF) Send(frame []byte) { v.nic.Send(frame) }
