package netsim

import (
	"testing"
	"time"

	"netkernel/internal/sim"
)

type collector struct {
	frames [][]byte
	at     []sim.Time
	clock  sim.Clock
}

func (c *collector) Deliver(frame []byte) {
	c.frames = append(c.frames, frame)
	c.at = append(c.at, c.clock.Now())
}

func TestLinkDeliversInOrderWithDelay(t *testing.T) {
	loop := sim.NewLoop()
	dst := &collector{clock: loop}
	// 8 Mbit/s → 1 byte/µs; 1000-byte frame serializes in 1 ms.
	l := NewLink(loop, sim.NewRNG(1), LinkConfig{Rate: 8 * Mbps, Delay: 10 * time.Millisecond}, dst)
	l.Send(make([]byte, 1000))
	l.Send(make([]byte, 1000))
	loop.Run()
	if len(dst.frames) != 2 {
		t.Fatalf("delivered %d frames, want 2", len(dst.frames))
	}
	// First: 1 ms tx + 10 ms prop = 11 ms. Second: serialized behind the
	// first, so 2 ms tx + 10 ms prop = 12 ms.
	if dst.at[0] != sim.Time(11*time.Millisecond) {
		t.Fatalf("first delivery at %v, want 11ms", dst.at[0])
	}
	if dst.at[1] != sim.Time(12*time.Millisecond) {
		t.Fatalf("second delivery at %v, want 12ms", dst.at[1])
	}
}

func TestLinkThroughputMatchesRate(t *testing.T) {
	loop := sim.NewLoop()
	dst := &collector{clock: loop}
	cfg := LinkConfig{Rate: 100 * Mbps, QueueBytes: 1 << 30}
	l := NewLink(loop, sim.NewRNG(1), cfg, dst)
	const frames = 1000
	const size = 1250 // 10 µs each at 100 Mbit/s
	for i := 0; i < frames; i++ {
		l.Send(make([]byte, size))
	}
	loop.Run()
	if len(dst.frames) != frames {
		t.Fatalf("delivered %d, want %d", len(dst.frames), frames)
	}
	elapsed := loop.Now().Duration().Seconds()
	gotRate := float64(frames*size*8) / elapsed
	if gotRate < 99e6 || gotRate > 101e6 {
		t.Fatalf("achieved %.0f bit/s over a 100 Mbit/s link", gotRate)
	}
}

func TestLinkDropTail(t *testing.T) {
	loop := sim.NewLoop()
	dst := &collector{clock: loop}
	l := NewLink(loop, sim.NewRNG(1), LinkConfig{Rate: 1 * Mbps, QueueBytes: 3000}, dst)
	for i := 0; i < 10; i++ {
		l.Send(make([]byte, 1000))
	}
	loop.Run()
	if len(dst.frames) != 3 {
		t.Fatalf("delivered %d, want 3 (queue limit)", len(dst.frames))
	}
	if l.Stats().QueueDrops != 7 {
		t.Fatalf("QueueDrops = %d, want 7", l.Stats().QueueDrops)
	}
}

func TestLinkLossIsBernoulli(t *testing.T) {
	loop := sim.NewLoop()
	dst := &collector{clock: loop}
	l := NewLink(loop, sim.NewRNG(7), LinkConfig{Rate: 1 * Gbps, LossProb: 0.2, QueueBytes: 1 << 30}, dst)
	const n = 10000
	for i := 0; i < n; i++ {
		l.Send(make([]byte, 100))
	}
	loop.Run()
	lossRate := float64(l.Stats().LossDrops) / n
	if lossRate < 0.17 || lossRate > 0.23 {
		t.Fatalf("empirical loss = %.3f, want ≈0.2", lossRate)
	}
	if len(dst.frames)+int(l.Stats().LossDrops) != n {
		t.Fatal("frames neither delivered nor counted lost")
	}
}

func TestLinkECNMarking(t *testing.T) {
	loop := sim.NewLoop()
	dst := &collector{clock: loop}
	marked := 0
	cfg := LinkConfig{
		Rate: 1 * Mbps, QueueBytes: 1 << 20, ECNThresholdBytes: 2000,
		Marker: func(frame []byte) { marked++; frame[0] = 0xCE },
	}
	l := NewLink(loop, sim.NewRNG(1), cfg, dst)
	for i := 0; i < 10; i++ {
		l.Send(make([]byte, 1000))
	}
	loop.Run()
	if marked == 0 {
		t.Fatal("no frames marked despite standing queue")
	}
	if uint64(marked) != l.Stats().ECNMarks {
		t.Fatalf("marker ran %d times, stats say %d", marked, l.Stats().ECNMarks)
	}
	// Early frames (queue below threshold) must not be marked.
	if dst.frames[0][0] == 0xCE {
		t.Fatal("first frame marked below threshold")
	}
	if dst.frames[9][0] != 0xCE {
		t.Fatal("deep-queue frame not marked")
	}
}

func TestLinkFrameOverheadSlowsGoodput(t *testing.T) {
	run := func(overhead int) sim.Time {
		loop := sim.NewLoop()
		dst := &collector{clock: loop}
		l := NewLink(loop, sim.NewRNG(1), LinkConfig{Rate: 8 * Mbps, FrameOverhead: overhead, QueueBytes: 1 << 30}, dst)
		for i := 0; i < 100; i++ {
			l.Send(make([]byte, 1000))
		}
		loop.Run()
		return loop.Now()
	}
	if run(EthernetOverhead) <= run(0) {
		t.Fatal("frame overhead did not consume wire time")
	}
}

func TestNICVFDemux(t *testing.T) {
	loop := sim.NewLoop()
	nic := NewNIC(loop, MAC{2, 0, 0, 0, 0, 1})
	var pf, vf1, vf2 [][]byte
	nic.SetHandler(func(f []byte) { pf = append(pf, f) })
	v1 := nic.AddVF(MAC{2, 0, 0, 0, 0, 0x11})
	v1.SetHandler(func(f []byte) { vf1 = append(vf1, f) })
	v2 := nic.AddVF(MAC{2, 0, 0, 0, 0, 0x22})
	v2.SetHandler(func(f []byte) { vf2 = append(vf2, f) })

	frameTo := func(dst MAC) []byte {
		f := make([]byte, 64)
		copy(f, dst[:])
		return f
	}
	nic.Deliver(frameTo(MAC{2, 0, 0, 0, 0, 0x11}))
	nic.Deliver(frameTo(MAC{2, 0, 0, 0, 0, 0x22}))
	nic.Deliver(frameTo(MAC{2, 0, 0, 0, 0, 1}))
	nic.Deliver(frameTo(MAC{8, 9, 9, 9, 9, 9})) // unknown unicast → PF

	if len(vf1) != 1 || len(vf2) != 1 {
		t.Fatalf("VF demux: vf1=%d vf2=%d, want 1 each", len(vf1), len(vf2))
	}
	if len(pf) != 2 {
		t.Fatalf("PF got %d frames, want 2 (own + unknown)", len(pf))
	}
}

func TestNICBroadcastCopiesToAll(t *testing.T) {
	loop := sim.NewLoop()
	nic := NewNIC(loop, MAC{2, 0, 0, 0, 0, 1})
	var got [][]byte
	nic.SetHandler(func(f []byte) { got = append(got, f) })
	v := nic.AddVF(MAC{2, 0, 0, 0, 0, 0x11})
	v.SetHandler(func(f []byte) { got = append(got, f) })

	f := make([]byte, 64)
	copy(f, Broadcast[:])
	nic.Deliver(f)
	if len(got) != 2 {
		t.Fatalf("broadcast reached %d functions, want 2", len(got))
	}
	// Copies must be independent: mutating one must not affect the other.
	got[0][10] = 0xAA
	if got[1][10] == 0xAA {
		t.Fatal("broadcast recipients share one buffer")
	}
}

func TestVFSendUsesSharedWire(t *testing.T) {
	loop := sim.NewLoop()
	nic := NewNIC(loop, MAC{2, 0, 0, 0, 0, 1})
	var wire [][]byte
	nic.AttachWire(PortFunc(func(f []byte) { wire = append(wire, f) }))
	v := nic.AddVF(MAC{2, 0, 0, 0, 0, 0x11})
	v.Send(make([]byte, 64))
	nic.Send(make([]byte, 64))
	if len(wire) != 2 {
		t.Fatalf("wire saw %d frames, want 2", len(wire))
	}
}

func TestCPUFIFOPerCore(t *testing.T) {
	loop := sim.NewLoop()
	cpu := NewCPU(loop, 2)
	var done []string
	cpu.Dispatch(0, 10*time.Microsecond, func() { done = append(done, "a") })
	cpu.Dispatch(0, 10*time.Microsecond, func() { done = append(done, "b") })
	cpu.Dispatch(1, 5*time.Microsecond, func() { done = append(done, "c") })
	loop.Run()
	if len(done) != 3 {
		t.Fatalf("completed %d jobs", len(done))
	}
	// Core 1 is idle, so "c" finishes first despite being dispatched last.
	if done[0] != "c" || done[1] != "a" || done[2] != "b" {
		t.Fatalf("completion order %v", done)
	}
	if loop.Now() != sim.Time(20*time.Microsecond) {
		t.Fatalf("finished at %v, want 20µs", loop.Now())
	}
}

func TestCPUBusyAccounting(t *testing.T) {
	loop := sim.NewLoop()
	cpu := NewCPU(loop, 4)
	for i := 0; i < 8; i++ {
		cpu.Dispatch(i, time.Millisecond, nil)
	}
	loop.RunFor(4 * time.Millisecond)
	if cpu.TotalBusy() != 8*time.Millisecond {
		t.Fatalf("TotalBusy = %v", cpu.TotalBusy())
	}
	if cpu.BusyTime(0) != 2*time.Millisecond {
		t.Fatalf("core 0 busy = %v (two wrapped dispatches)", cpu.BusyTime(0))
	}
	if cpu.Jobs() != 8 {
		t.Fatalf("Jobs = %d", cpu.Jobs())
	}
	// 8 ms busy over 4 cores × 4 ms elapsed = 50%.
	if u := cpu.Utilization(); u < 0.49 || u > 0.51 {
		t.Fatalf("Utilization = %v, want 0.5", u)
	}
}

func TestCPUCoreWrap(t *testing.T) {
	loop := sim.NewLoop()
	cpu := NewCPU(loop, 3)
	cpu.Dispatch(7, time.Millisecond, nil) // 7%3 == core 1
	if cpu.BusyTime(1) != time.Millisecond {
		t.Fatal("core index did not wrap")
	}
}

func TestDuplex(t *testing.T) {
	loop := sim.NewLoop()
	a := &collector{clock: loop}
	b := &collector{clock: loop}
	ab, ba := Duplex(loop, sim.NewRNG(1), LinkConfig{Rate: 1 * Gbps, Delay: time.Millisecond}, a, b)
	ab.Send(make([]byte, 100))
	ba.Send(make([]byte, 100))
	loop.Run()
	if len(a.frames) != 1 || len(b.frames) != 1 {
		t.Fatalf("duplex delivery a=%d b=%d", len(a.frames), len(b.frames))
	}
}

func TestProfiles(t *testing.T) {
	tb := Testbed40G()
	if tb.Rate != 40*Gbps {
		t.Fatal("testbed profile is not 40GbE")
	}
	wan := WANPath(0.005)
	if wan.Delay != 175*time.Millisecond || wan.LossProb != 0.005 {
		t.Fatalf("WAN profile %+v", wan)
	}
}

func TestBitsPerSecString(t *testing.T) {
	cases := map[BitsPerSec]string{
		40 * Gbps:      "40.00Gbit/s",
		12 * Mbps:      "12.00Mbit/s",
		64 * Kbps:      "64.00Kbit/s",
		BitsPerSec(12): "12bit/s",
	}
	for in, want := range cases {
		if in.String() != want {
			t.Errorf("%v.String() = %q, want %q", float64(in), in.String(), want)
		}
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0x02, 0xab, 0, 1, 2, 3}
	if m.String() != "02:ab:00:01:02:03" {
		t.Fatalf("MAC String = %q", m.String())
	}
	if !Broadcast.IsBroadcast() || m.IsBroadcast() {
		t.Fatal("broadcast detection broken")
	}
}
