package experiments

import (
	"time"

	"netkernel/internal/guestlib"
	"netkernel/internal/hypervisor"
	"netkernel/internal/netsim"
	"netkernel/internal/nkqueue"
	"netkernel/internal/proto/ipv4"
	"netkernel/internal/sim"
)

// The ablations quantify the §5 research-agenda design choices that
// DESIGN.md calls out: notification mechanism, priority queues, NSM
// form, multiplexing with QoS, and synchronous vs asynchronous
// operation.

func ablationWorld(seed uint64, mutate func(hc *hypervisor.HostConfig)) *World {
	return NewWorld(WorldConfig{
		Link: netsim.LinkConfig{Rate: 10 * netsim.Gbps, Delay: 20 * time.Microsecond,
			QueueBytes: 4 << 20, FrameOverhead: netsim.EthernetOverhead},
		Cores:  8,
		Seed:   seed,
		MinRTO: 10 * time.Millisecond,
		Mutate: mutate,
	})
}

// connectLatency measures one fresh connection's setup time through
// the NetKernel path (Socket+Connect → Established).
func connectLatency(w *World, client, server *hypervisor.VM, port uint16) time.Duration {
	lfd := server.Guest.Socket(guestlib.Callbacks{})
	server.Guest.Listen(lfd, port, 64)

	var done sim.Time = -1
	start := w.Loop.Now()
	fd := client.Guest.Socket(guestlib.Callbacks{
		OnEstablished: func(err error) {
			if err == nil {
				done = w.Loop.Now()
			}
		},
	})
	client.Guest.Connect(fd, server.IP, port)
	for i := 0; i < 10000 && done < 0; i++ {
		w.Loop.RunFor(10 * time.Microsecond)
	}
	if done < 0 {
		return -1
	}
	return done.Sub(start)
}

// --- Notification modes (§5 "Resource efficiency and optimization") ---

// NotifyRow compares a notification configuration.
type NotifyRow struct {
	Mode          string
	NotifyLatency time.Duration
	ConnectRTT    time.Duration
	ThroughputBps float64
	// EngineCPU describes the CPU the mode burns: polling dedicates a
	// core; interrupts idle between batches.
	EngineCPU string
}

// RunNotifyAblation compares polling (the prototype's choice, §4.1
// "GuestLib uses polling to process the queues for simplicity") with
// progressively lazier batched interrupts (§5 suggests "more efficient
// soft interrupts (with batching) or hypercalls").
func RunNotifyAblation() []NotifyRow {
	cases := []struct {
		mode    string
		latency time.Duration
		cpu     string
	}{
		{"polling", 100 * time.Nanosecond, "1 dedicated core, always busy"},
		{"interrupt-1us", 1 * time.Microsecond, "idle between wakeups"},
		{"interrupt-5us", 5 * time.Microsecond, "idle between wakeups"},
		{"interrupt-20us", 20 * time.Microsecond, "idle between wakeups"},
	}
	rows := make([]NotifyRow, 0, len(cases))
	for i, tc := range cases {
		lat := tc.latency
		w := ablationWorld(uint64(10+i), func(hc *hypervisor.HostConfig) {
			hc.Engine.NotifyLatency = lat
		})
		spec := hypervisor.NSMSpec{Form: hypervisor.FormModule, CC: "cubic"}
		client, _ := w.H1.CreateVM(hypervisor.VMConfig{Name: "c", IP: SenderIP, Mode: hypervisor.ModeNetKernel, NSM: spec})
		server, _ := w.H2.CreateVM(hypervisor.VMConfig{Name: "s", IP: ReceiverIP, Mode: hypervisor.ModeNetKernel, NSM: spec})
		w.Loop.RunFor(50 * time.Millisecond)

		rtt := connectLatency(w, client, server, 7000)
		fl := StartNetKernelFlow(w, client, server, 7001)
		tput := MeasureGoodput(w, []*Flow{fl}, 100*time.Millisecond, 100*time.Millisecond)
		rows = append(rows, NotifyRow{
			Mode: tc.mode, NotifyLatency: lat, ConnectRTT: rtt,
			ThroughputBps: tput, EngineCPU: tc.cpu,
		})
	}
	return rows
}

// --- Priority queues (§3.2 head-of-line blocking) ---

// PriorityRow compares queue disciplines under bulk-data pressure.
type PriorityRow struct {
	Priority       bool
	ConnectLatency time.Duration // mean, under concurrent bulk transfer
	ThroughputBps  float64
}

// RunPriorityAblation measures connection-setup latency while a bulk
// transfer floods the same queues, with and without the §3.2 priority
// split ("to avoid the head of line blocking").
func RunPriorityAblation() []PriorityRow {
	rows := make([]PriorityRow, 0, 2)
	for _, priority := range []bool{false, true} {
		w := ablationWorld(20, func(hc *hypervisor.HostConfig) {
			// Head-of-line blocking needs standing queues: small rings, a
			// deep shm window, and an engine that wakes only every 100 µs,
			// so between pumps the data flood keeps the rings full and a
			// connection event must either wait for slots (single queue)
			// or bypass them (priority pair).
			hc.Chan.Queue = nkqueue.Config{Slots: 8, Priority: priority}
			hc.ShmWindow = 4 << 20
			hc.Engine.NotifyLatency = 100 * time.Microsecond
		})
		spec := hypervisor.NSMSpec{Form: hypervisor.FormModule, CC: "cubic"}
		client, _ := w.H1.CreateVM(hypervisor.VMConfig{Name: "c", IP: SenderIP, Mode: hypervisor.ModeNetKernel, NSM: spec})
		server, _ := w.H2.CreateVM(hypervisor.VMConfig{Name: "s", IP: ReceiverIP, Mode: hypervisor.ModeNetKernel, NSM: spec})
		w.Loop.RunFor(50 * time.Millisecond)

		// Saturating bulk flow.
		fl := StartNetKernelFlow(w, client, server, 7001)
		w.Loop.RunFor(100 * time.Millisecond)

		// Now time connection setups competing with the data flood.
		var total time.Duration
		const attempts = 10
		for i := 0; i < attempts; i++ {
			d := connectLatency(w, client, server, uint16(7100+i))
			if d < 0 {
				d = time.Second // timed out entirely
			}
			total += d
		}
		start := fl.Received()
		w.Loop.RunFor(100 * time.Millisecond)
		tput := float64(fl.Received()-start) * 8 / 0.1
		rows = append(rows, PriorityRow{
			Priority:       priority,
			ConnectLatency: total / attempts,
			ThroughputBps:  tput,
		})
	}
	return rows
}

// --- NSM forms (§5 "NSM form") ---

// FormRow compares NSM realizations.
type FormRow struct {
	Form          hypervisor.NSMForm
	BootTime      time.Duration
	ConnectRTT    time.Duration
	ThroughputBps float64
	MemoryMB      int
	Isolation     string
}

// RunFormAblation quantifies the §5 form tradeoffs.
func RunFormAblation() []FormRow {
	forms := []hypervisor.NSMForm{hypervisor.FormVM, hypervisor.FormUnikernel, hypervisor.FormContainer, hypervisor.FormModule}
	rows := make([]FormRow, 0, len(forms))
	for i, form := range forms {
		w := ablationWorld(uint64(30+i), nil)
		spec := hypervisor.NSMSpec{Form: form, CC: "cubic"}
		client, _ := w.H1.CreateVM(hypervisor.VMConfig{Name: "c", IP: SenderIP, Mode: hypervisor.ModeNetKernel, NSM: spec})
		server, _ := w.H2.CreateVM(hypervisor.VMConfig{Name: "s", IP: ReceiverIP, Mode: hypervisor.ModeNetKernel, NSM: spec})
		prof := client.NSM.Profile
		w.Loop.RunFor(prof.BootTime + 50*time.Millisecond)

		rtt := connectLatency(w, client, server, 7000)
		fl := StartNetKernelFlow(w, client, server, 7001)
		tput := MeasureGoodput(w, []*Flow{fl}, 100*time.Millisecond, 100*time.Millisecond)
		rows = append(rows, FormRow{
			Form: form, BootTime: prof.BootTime, ConnectRTT: rtt,
			ThroughputBps: tput, MemoryMB: prof.MemoryMB, Isolation: prof.Isolation,
		})
	}
	return rows
}

// --- Multiplexing + QoS (§2.1, §5) ---

// MuxRow compares NSM placement strategies for multiple tenants.
type MuxRow struct {
	Strategy     string
	Tenants      int
	NSMs         int
	MemoryMB     int
	AggregateBps float64
	// PerTenantBps lists each tenant's share (QoS rows show enforced
	// splits).
	PerTenantBps []float64
}

// RunMuxAblation compares dedicated NSMs, a shared NSM, and a shared
// NSM with 2:1:1 rate SLAs across three tenants.
func RunMuxAblation() []MuxRow {
	const tenants = 3
	run := func(strategy string) MuxRow {
		w := ablationWorld(40, func(hc *hypervisor.HostConfig) {
			hc.ShmWindow = 4 << 20
		})
		server, _ := w.H2.CreateVM(hypervisor.VMConfig{
			Name: "s", IP: ReceiverIP, Mode: hypervisor.ModeNetKernel,
			NSM: hypervisor.NSMSpec{Form: hypervisor.FormModule, CC: "cubic"},
		})

		vms := make([]*hypervisor.VM, tenants)
		var first *hypervisor.NSM
		for i := 0; i < tenants; i++ {
			spec := hypervisor.NSMSpec{Form: hypervisor.FormContainer, CC: "cubic"}
			switch strategy {
			case "shared", "shared+qos":
				if first != nil {
					spec.ShareWith = first
				}
			}
			if strategy == "shared+qos" {
				// 2:1:1 Gbit/s SLAs on a 10 Gbit/s fabric (underload, so
				// the limits bind).
				spec.RateLimitBps = []float64{2e9, 1e9, 1e9}[i]
			}
			// Dedicated NSMs carry their own network identity; tenants
			// multiplexed onto a shared NSM share its address.
			ip := ipv4.Addr{10, 0, 1, byte(1 + i)}
			if spec.ShareWith != nil {
				ip = SenderIP
			}
			vm, err := w.H1.CreateVM(hypervisor.VMConfig{
				Name: "t", IP: ip, Mode: hypervisor.ModeNetKernel, NSM: spec,
			})
			if err != nil {
				panic(err)
			}
			vms[i] = vm
			if first == nil {
				first = vm.NSM
			}
		}
		w.Loop.RunFor(400 * time.Millisecond) // container boot

		flows := make([]*Flow, tenants)
		for i, vm := range vms {
			flows[i] = StartNetKernelFlow(w, vm, server, uint16(7001+i))
		}
		w.Loop.RunFor(100 * time.Millisecond)
		start := make([]uint64, tenants)
		for i, f := range flows {
			start[i] = f.Received()
		}
		const window = 200 * time.Millisecond
		w.Loop.RunFor(window)

		row := MuxRow{Strategy: strategy, Tenants: tenants}
		mem := map[*hypervisor.NSM]bool{}
		w.H1.EachNSM(func(n *hypervisor.NSM) {
			mem[n] = true
			row.MemoryMB += n.Profile.MemoryMB
		})
		row.NSMs = len(mem)
		for i, f := range flows {
			bps := float64(f.Received()-start[i]) * 8 / window.Seconds()
			row.PerTenantBps = append(row.PerTenantBps, bps)
			row.AggregateBps += bps
		}
		return row
	}
	return []MuxRow{run("dedicated"), run("shared"), run("shared+qos")}
}

// --- Sync vs async operations (§3.2) ---

// SyncRow compares operation pipelining regimes.
type SyncRow struct {
	Mode          string
	ThroughputBps float64
	OpsPerSec     float64
}

// RunSyncAblation compares asynchronous operation (deep shm credit,
// operations pipelined) against synchronous operation (one chunk
// outstanding: every send waits for its completion, §3.2 "the
// application is not returned … until it obtains an nqe from the VM
// completion queue").
func RunSyncAblation() []SyncRow {
	run := func(mode string, credit int) SyncRow {
		// A lazier notification config (10 µs) makes the per-operation
		// completion round trip visible; with sub-µs doorbells even
		// fully synchronous operation keeps a 10G link busy.
		w := ablationWorld(50, func(hc *hypervisor.HostConfig) {
			hc.Engine.NotifyLatency = 10 * time.Microsecond
		})
		spec := hypervisor.NSMSpec{Form: hypervisor.FormModule, CC: "cubic"}
		client, err := w.H1.CreateVM(hypervisor.VMConfig{
			Name: "c", IP: SenderIP, Mode: hypervisor.ModeNetKernel, NSM: spec,
			SendCredit: credit,
		})
		if err != nil {
			panic(err)
		}
		server, _ := w.H2.CreateVM(hypervisor.VMConfig{Name: "s", IP: ReceiverIP, Mode: hypervisor.ModeNetKernel, NSM: spec})
		w.Loop.RunFor(50 * time.Millisecond)
		fl := StartNetKernelFlow(w, client, server, 7001)
		tput := MeasureGoodput(w, []*Flow{fl}, 100*time.Millisecond, 200*time.Millisecond)
		st := client.Guest.Stats()
		return SyncRow{
			Mode:          mode,
			ThroughputBps: tput,
			OpsPerSec:     float64(st.OpsIssued) / w.Loop.Now().Duration().Seconds(),
		}
	}
	return []SyncRow{
		run("sync (1 chunk credit)", 8<<10),
		run("async (1 MiB credit)", 1<<20),
	}
}

// --- Scale-out (§2.1) ---

// ScaleOutRow compares NSM replica counts for one tenant.
type ScaleOutRow struct {
	Replicas     int
	AggregateBps float64
	CoreCapBps   float64 // the single-core ceiling for reference
}

// RunScaleOutAblation shows §2.1's "scale out with more modules to
// support higher throughput": a single 1-core NSM (the prototype's
// shape) caps the tenant's aggregate; spreading sockets across
// replicas lifts it to line rate.
func RunScaleOutAblation() []ScaleOutRow {
	const perPacket = 2 * time.Microsecond // 1 core ≈ 5.8 Gbit/s of 1460B segments
	coreCap := 1460 * 8 / perPacket.Seconds()
	rows := make([]ScaleOutRow, 0, 3)
	for _, replicas := range []int{1, 2, 3} {
		w := NewWorld(WorldConfig{
			Link: netsim.LinkConfig{Rate: 10 * netsim.Gbps, Delay: 20 * time.Microsecond,
				QueueBytes: 4 << 20, FrameOverhead: netsim.EthernetOverhead},
			PerPacketCost: perPacket,
			Cores:         8,
			Seed:          60 + uint64(replicas),
			MinRTO:        10 * time.Millisecond,
			Mutate: func(hc *hypervisor.HostConfig) {
				hc.SendBufSize = 4 << 20
				hc.RecvBufSize = 4 << 20
				hc.ShmWindow = 4 << 20
			},
		})
		sender, err := w.H1.CreateVM(hypervisor.VMConfig{
			Name: "snd", IP: SenderIP, Mode: hypervisor.ModeNetKernel,
			NSM: hypervisor.NSMSpec{Form: hypervisor.FormVM, CC: "cubic", Cores: 1, Replicas: replicas},
		})
		if err != nil {
			panic(err)
		}
		receiver, _ := w.H2.CreateVM(hypervisor.VMConfig{
			Name: "rcv", IP: ReceiverIP, Mode: hypervisor.ModeNetKernel,
			NSM: hypervisor.NSMSpec{Form: hypervisor.FormVM, CC: "cubic", Cores: 8},
		})
		w.Loop.RunFor(sender.NSM.Profile.BootTime + 50*time.Millisecond)

		// One flow per replica slot, so round-robin puts each on its own
		// module.
		flows := make([]*Flow, replicas)
		for i := range flows {
			flows[i] = StartNetKernelFlow(w, sender, receiver, uint16(7001+i))
		}
		rows = append(rows, ScaleOutRow{
			Replicas:     replicas,
			AggregateBps: MeasureGoodput(w, flows, 300*time.Millisecond, 200*time.Millisecond),
			CoreCapBps:   coreCap,
		})
	}
	return rows
}
