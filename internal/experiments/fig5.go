package experiments

import (
	"time"

	"netkernel/internal/guestlib"
	"netkernel/internal/hypervisor"
	"netkernel/internal/netsim"
)

// Figure5Config parameterizes the §4.3 flexibility experiment: "We use
// a Windows VM with the NetKernel BBR NSM … a Windows VM running its
// default C-TCP in kernel as well as a Linux VM running Cubic and BBR
// (without NetKernel) for comparison. The TCP server is located in
// Beijing … the client is in California. The uplink bandwidth of the
// server is 12 Mbps and the average RTT is 350 ms."
type Figure5Config struct {
	// LossProb is the WAN's random loss; the paper does not publish
	// it, so it is the calibration knob (see EXPERIMENTS.md). Default
	// 0.003 lands CUBIC near the paper's 2.61/12 Mbit/s ratio.
	LossProb float64
	// Duration is the measurement period (paper: results averaged
	// over 10 s). Default 10 s.
	Duration time.Duration
	// Warmup precedes measurement (default 10 s: slow-start transients
	// on a 350 ms path take several seconds to settle).
	Warmup time.Duration
	// Seed drives the deterministic loss process.
	Seed uint64
}

func (c *Figure5Config) fillDefaults() {
	if c.LossProb == 0 {
		c.LossProb = 0.003
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Warmup <= 0 {
		c.Warmup = 10 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 5
	}
}

// Figure5Row is one bar of Figure 5.
type Figure5Row struct {
	Scenario string
	Mbps     float64
}

// Figure5Scenarios are the paper's four bars, in its order.
var Figure5Scenarios = []string{"BBR NSM", "Linux BBR", "Windows CTCP", "Linux Cubic"}

// RunFigure5 reproduces Figure 5: "A Windows VM utilizes BBR by
// NetKernel, achieving similar throughput with original Linux BBR"
// (paper: 11.12 vs 11.14 Mbit/s, with Windows C-TCP at 8.60 and Linux
// CUBIC at 2.61).
func RunFigure5(cfg Figure5Config) []Figure5Row {
	cfg.fillDefaults()
	rows := make([]Figure5Row, 0, len(Figure5Scenarios))
	for _, sc := range Figure5Scenarios {
		rows = append(rows, Figure5Row{Scenario: sc, Mbps: runFig5Scenario(cfg, sc) / 1e6})
	}
	return rows
}

func runFig5Scenario(cfg Figure5Config, scenario string) float64 {
	w := NewWorld(WorldConfig{
		Link:  netsim.WANPath(cfg.LossProb),
		Cores: 8,
		Seed:  cfg.Seed,
	})

	// The receiving client in California: a plain Linux VM.
	receiver, err := w.H2.CreateVM(hypervisor.VMConfig{
		Name: "client-california", IP: ReceiverIP, Mode: hypervisor.ModeLegacy,
		Profile: guestlib.ProfileLinux,
	})
	if err != nil {
		panic(err)
	}

	// The sending server in Beijing, per scenario.
	var sender *hypervisor.VM
	netkernelMode := false
	switch scenario {
	case "BBR NSM":
		// Windows guest whose traffic runs BBR because its NSM does.
		netkernelMode = true
		sender, err = w.H1.CreateVM(hypervisor.VMConfig{
			Name: "server-beijing", IP: SenderIP, Mode: hypervisor.ModeNetKernel,
			Profile: guestlib.ProfileWindows,
			NSM:     hypervisor.NSMSpec{Form: hypervisor.FormVM, CC: "bbr"},
		})
	case "Linux BBR":
		// A Linux guest with BBR compiled into its own kernel.
		sender, err = w.H1.CreateVM(hypervisor.VMConfig{
			Name: "server-beijing", IP: SenderIP, Mode: hypervisor.ModeLegacy,
			Profile: guestlib.ProfileLinux,
		})
		sender.Legacy.SetDefaultCC("bbr")
	case "Windows CTCP":
		sender, err = w.H1.CreateVM(hypervisor.VMConfig{
			Name: "server-beijing", IP: SenderIP, Mode: hypervisor.ModeLegacy,
			Profile: guestlib.ProfileWindows, // kernel default: ctcp
		})
	case "Linux Cubic":
		sender, err = w.H1.CreateVM(hypervisor.VMConfig{
			Name: "server-beijing", IP: SenderIP, Mode: hypervisor.ModeLegacy,
			Profile: guestlib.ProfileLinux, // kernel default: cubic
		})
	default:
		panic("experiments: unknown Figure 5 scenario " + scenario)
	}
	if err != nil {
		panic(err)
	}

	var fl *Flow
	if netkernelMode {
		w.Loop.RunFor(sender.NSM.Profile.BootTime + 100*time.Millisecond)
		fl = StartFlow(w, sender, receiver, 443)
	} else {
		fl = StartFlow(w, sender, receiver, 443)
	}
	return MeasureGoodput(w, []*Flow{fl}, cfg.Warmup, cfg.Duration)
}
