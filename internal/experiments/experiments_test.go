package experiments

import (
	"testing"
	"time"
)

// The experiment tests assert the *shape* of each paper result, the
// reproduction criterion set in DESIGN.md. Full-size runs happen in
// bench_test.go and cmd/nkbench; these use shortened windows.

func TestFigure4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 4 takes ~1 min")
	}
	rows := RunFigure4(Figure4Config{Warmup: 400 * time.Millisecond, Window: 200 * time.Millisecond})
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		t.Logf("flows=%d native=%.1fG nsm=%.1fG", r.Flows, r.NativeBps/1e9, r.NSMBps/1e9)
	}
	// ≥2 flows: native at line rate (within 15%); the NSM path is
	// allowed a wider band (its shm latency stretches loss recovery —
	// see EXPERIMENTS.md for the measured 2-flow value).
	for _, r := range rows[1:] {
		if r.NativePct < 85 {
			t.Errorf("native at %d flows reached only %.0f%% of line rate", r.Flows, r.NativePct)
		}
		if r.NSMPct < 75 {
			t.Errorf("NSM at %d flows reached only %.0f%% of line rate", r.Flows, r.NSMPct)
		}
	}
	// 1 flow: both well below line rate (the per-core ceiling) and
	// within 25% of each other.
	one := rows[0]
	if one.NativePct > 80 || one.NSMPct > 80 {
		t.Errorf("single flow should be core-limited: native %.0f%%, nsm %.0f%%", one.NativePct, one.NSMPct)
	}
	if one.NSMPenalty > 0.25 || one.NSMPenalty < -0.25 {
		t.Errorf("single-flow NSM penalty %.0f%%, want within 25%% of native", one.NSMPenalty*100)
	}
}

func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 5 takes ~30s")
	}
	// Longer-than-paper measurement (30 s vs 10 s) to smooth the
	// variance of individual loss realizations.
	rows := RunFigure5(Figure5Config{Duration: 30 * time.Second})
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Scenario] = r.Mbps
		t.Logf("%-14s %6.2f Mbit/s", r.Scenario, r.Mbps)
	}
	// The paper's ordering: Cubic ≪ CTCP < BBR NSM ≈ Linux BBR ≈ link.
	if !(byName["Linux Cubic"] < byName["Windows CTCP"]) {
		t.Errorf("CUBIC (%.2f) should lose to CTCP (%.2f)", byName["Linux Cubic"], byName["Windows CTCP"])
	}
	if !(byName["Windows CTCP"] < byName["BBR NSM"]) {
		t.Errorf("CTCP (%.2f) should lose to BBR NSM (%.2f)", byName["Windows CTCP"], byName["BBR NSM"])
	}
	// The §4.3 claim: the Windows VM with the BBR NSM matches native BBR.
	diff := byName["BBR NSM"] - byName["Linux BBR"]
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.15*byName["Linux BBR"] {
		t.Errorf("BBR NSM (%.2f) vs Linux BBR (%.2f): not within 15%%", byName["BBR NSM"], byName["Linux BBR"])
	}
	// BBR holds most of the 12 Mbit/s link despite the loss.
	if byName["BBR NSM"] < 8 {
		t.Errorf("BBR NSM only %.2f Mbit/s on a 12 Mbit/s link", byName["BBR NSM"])
	}
	// CUBIC collapses under random loss (paper: 2.61 of 12).
	if byName["Linux Cubic"] > 6 {
		t.Errorf("Linux Cubic at %.2f Mbit/s does not show loss collapse", byName["Linux Cubic"])
	}
}

func TestTable1Shape(t *testing.T) {
	rows := RunTable1(20000)
	if len(rows) != len(Table1Chunks) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		t.Logf("%5dB  %v", r.ChunkBytes, r.Latency)
	}
	// Monotone growth with chunk size; sub-microsecond-ish at 8 KB
	// (generous bound: CI machines vary).
	for i := 1; i < len(rows); i++ {
		if rows[i].Latency < rows[i-1].Latency/2 {
			t.Errorf("latency not roughly monotone: %v then %v", rows[i-1], rows[i])
		}
	}
	if rows[len(rows)-1].Latency > 10*time.Microsecond {
		t.Errorf("8KB copy took %v, want microsecond scale", rows[len(rows)-1].Latency)
	}
}

func TestNqeCopyCostShape(t *testing.T) {
	d := NqeCopyCost(200000)
	t.Logf("nqe copy: %v", d)
	// The paper measures ~12 ns; allow a wide band for host variance.
	if d > 500*time.Nanosecond {
		t.Errorf("nqe copy cost %v, want tens of ns", d)
	}
}

func TestShmChannelShape(t *testing.T) {
	rows := RunShmChannel([]int{64, 8 << 10}, 100*time.Millisecond)
	for _, r := range rows {
		t.Logf("%5dB  %.1f Gbit/s", r.ChunkBytes, r.BitsPerSec/1e9)
	}
	// 8 KB chunks must move multiple Gbit/s per core and beat the
	// per-64B-chunk rate per byte of descriptor overhead... the paper's
	// claim is "NetKernel is unlikely to be the bottleneck": the channel
	// must comfortably exceed a 40G NIC for large chunks on modern CPUs,
	// but CI hosts vary; require >5 Gbit/s.
	if rows[1].BitsPerSec < 5e9 {
		t.Errorf("8KB channel rate %.1f Gbit/s too low", rows[1].BitsPerSec/1e9)
	}
}

func TestNotifyAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation takes ~20s")
	}
	rows := RunNotifyAblation()
	for _, r := range rows {
		t.Logf("%-15s connect=%v tput=%.1fG", r.Mode, r.ConnectRTT, r.ThroughputBps/1e9)
	}
	// Lazier notification → slower connection setup.
	if rows[0].ConnectRTT >= rows[len(rows)-1].ConnectRTT {
		t.Errorf("polling connect (%v) should beat lazy interrupts (%v)",
			rows[0].ConnectRTT, rows[len(rows)-1].ConnectRTT)
	}
}

func TestPriorityAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation takes ~20s")
	}
	rows := RunPriorityAblation()
	for _, r := range rows {
		t.Logf("priority=%v connect=%v tput=%.1fG", r.Priority, r.ConnectLatency, r.ThroughputBps/1e9)
	}
	if rows[1].ConnectLatency >= rows[0].ConnectLatency {
		t.Errorf("priority queues did not improve connect latency under load: %v vs %v",
			rows[1].ConnectLatency, rows[0].ConnectLatency)
	}
}

func TestFormAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation takes ~20s")
	}
	rows := RunFormAblation()
	for _, r := range rows {
		t.Logf("%-10s boot=%v connect=%v tput=%.1fG mem=%dMB", r.Form, r.BootTime, r.ConnectRTT, r.ThroughputBps/1e9, r.MemoryMB)
	}
	// Module boots faster and connects faster than the full VM.
	var vm, module FormRow
	for _, r := range rows {
		switch r.Form.String() {
		case "vm":
			vm = r
		case "module":
			module = r
		}
	}
	if module.BootTime >= vm.BootTime || module.ConnectRTT >= vm.ConnectRTT {
		t.Errorf("module (boot %v, rtt %v) should beat vm (boot %v, rtt %v)",
			module.BootTime, module.ConnectRTT, vm.BootTime, vm.ConnectRTT)
	}
}

func TestMuxAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation takes ~30s")
	}
	rows := RunMuxAblation()
	for _, r := range rows {
		t.Logf("%-12s nsms=%d mem=%dMB agg=%.1fG per=%v", r.Strategy, r.NSMs, r.MemoryMB, r.AggregateBps/1e9, r.PerTenantBps)
	}
	ded, shared, qos := rows[0], rows[1], rows[2]
	if shared.NSMs != 1 || ded.NSMs != 3 {
		t.Fatalf("NSM counts: dedicated=%d shared=%d", ded.NSMs, shared.NSMs)
	}
	if shared.MemoryMB >= ded.MemoryMB {
		t.Errorf("multiplexing should save memory: %d vs %d", shared.MemoryMB, ded.MemoryMB)
	}
	// QoS: tenant 0 (2 Gbit/s SLA) gets about twice tenants 1 and 2.
	if qos.PerTenantBps[0] < 1.5*qos.PerTenantBps[1] {
		t.Errorf("QoS split not enforced: %v", qos.PerTenantBps)
	}
	if qos.PerTenantBps[0] > 2.4e9 {
		t.Errorf("tenant 0 exceeded its 2 Gbit/s SLA: %.2fG", qos.PerTenantBps[0]/1e9)
	}
}

func TestSyncAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation takes ~10s")
	}
	rows := RunSyncAblation()
	for _, r := range rows {
		t.Logf("%-22s tput=%.2fG ops/s=%.0f", r.Mode, r.ThroughputBps/1e9, r.OpsPerSec)
	}
	if rows[1].ThroughputBps <= rows[0].ThroughputBps {
		t.Errorf("async (%.2fG) should beat sync (%.2fG)",
			rows[1].ThroughputBps/1e9, rows[0].ThroughputBps/1e9)
	}
}

func TestScaleOutAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation takes ~30s")
	}
	rows := RunScaleOutAblation()
	for _, r := range rows {
		t.Logf("replicas=%d aggregate=%.1fG (core cap %.1fG)", r.Replicas, r.AggregateBps/1e9, r.CoreCapBps/1e9)
	}
	one, three := rows[0].AggregateBps, rows[2].AggregateBps
	if one > 1.3*rows[0].CoreCapBps {
		t.Errorf("single 1-core NSM exceeded its core cap: %.1fG", one/1e9)
	}
	if three < 1.5*one {
		t.Errorf("3 replicas (%.1fG) did not meaningfully scale past 1 (%.1fG)", three/1e9, one/1e9)
	}
}

// TestCopyBudgetGate is the data-path copy-budget regression gate
// (DESIGN.md §8): the streaming echo must cost at most 1 copy per
// payload byte on send and 2 on receive, with 2.5 as the CI ceiling to
// absorb the copy fallbacks (out-of-order bytes staged in rcvBuf,
// oversized writes). CI's bench-smoke job runs exactly this test.
func TestCopyBudgetGate(t *testing.T) {
	if testing.Short() {
		t.Skip("copy-budget echo takes ~30s")
	}
	res := RunCopyBudget(CopyBudgetConfig{
		Warmup: 100 * time.Millisecond,
		Window: 100 * time.Millisecond,
	})
	t.Logf("echoed=%dMB goodput=%.2fG tx=%.3f copies/B rx=%.3f copies/B",
		res.BytesEchoed>>20, res.GoodputBps/1e9, res.TxCopiesPerByte, res.RxCopiesPerByte)
	t.Logf("layers: guest tx=%d/rx=%d service tx=%d/rx=%d tcp tx=%d/rx=%d payload tx=%d/rx=%d",
		res.Report.GuestTxCopied, res.Report.GuestRxCopied,
		res.Report.ServiceTxCopied, res.Report.ServiceRxCopied,
		res.Report.TCPTxCopied, res.Report.TCPRxCopied,
		res.Report.PayloadTx, res.Report.PayloadRx)
	if res.BytesEchoed == 0 {
		t.Fatal("echo flow moved no bytes")
	}
	if res.TxCopiesPerByte > 2.5 {
		t.Errorf("send path copies/byte %.3f exceeds the 2.5 budget", res.TxCopiesPerByte)
	}
	if res.RxCopiesPerByte > 2.5 {
		t.Errorf("receive path copies/byte %.3f exceeds the 2.5 budget", res.RxCopiesPerByte)
	}
}

// TestScaleoutGate is the multi-core NSM regression gate (DESIGN.md
// §10): the many-VM/many-flow measurement — 8 tenant VMs per host
// multiplexed onto one shared 4-core NSM, 32 bulk flows — must scale
// when the channel and connection table shard. The committed
// BENCH_scaleout.json baselines are exact (virtual time makes the run
// a pure function of the seed); the gate allows 10% slack so an
// intentional retuning of the simulation constants fails loudly
// rather than silently rewriting the scaling story. CI's
// scaleout-smoke job runs exactly this test.
func TestScaleoutGate(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-out pair takes ~60s")
	}
	// Baselines from BENCH_scaleout.json (seed 4242, 8 VMs × 4 flows,
	// 4-core NSMs, 50 ms warmup + 50 ms window).
	const (
		baseline1Bps = 2.48e9
		baseline4Bps = 11.26e9
	)
	one := RunScaleout(ScaleoutConfig{Shards: 1})
	four := RunScaleout(ScaleoutConfig{Shards: 4})
	t.Logf("shards=1: %.2f Gbit/s %v  shards=4: %.2f Gbit/s %v  scaleout %.2fx",
		one.AggregateBps/1e9, one.ShardConns, four.AggregateBps/1e9, four.ShardConns, four.AggregateBps/one.AggregateBps)

	for _, r := range []ScaleoutResult{one, four} {
		if r.Established != r.Flows {
			t.Errorf("shards=%d: only %d of %d flows established", r.Shards, r.Established, r.Flows)
		}
	}
	if four.AggregateBps < 1.5*one.AggregateBps {
		t.Errorf("shards=4 aggregate %.2f Gbit/s is not ≥1.5x shards=1 %.2f Gbit/s",
			four.AggregateBps/1e9, one.AggregateBps/1e9)
	}
	if floor := 0.9 * baseline1Bps; one.AggregateBps < floor {
		t.Errorf("shards=1 goodput %.2f Gbit/s regressed >10%% vs BENCH_scaleout.json %.2f Gbit/s",
			one.AggregateBps/1e9, baseline1Bps/1e9)
	}
	if floor := 0.9 * baseline4Bps; four.AggregateBps < floor {
		t.Errorf("shards=4 goodput %.2f Gbit/s regressed >10%% vs BENCH_scaleout.json %.2f Gbit/s",
			four.AggregateBps/1e9, baseline4Bps/1e9)
	}
	// Steering must actually spread the server's connection table; a
	// single-shard pileup means the ratio above is measuring luck.
	spread := 0
	for _, n := range four.ShardConns {
		if n > 0 {
			spread++
		}
	}
	if spread < 3 {
		t.Errorf("shards=4 run placed connections on only %d of 4 shards: %v", spread, four.ShardConns)
	}
}

// TestRPCGate is the message-rate regression gate (DESIGN.md §11):
// the short-flow fast path — small-message echo RPS, sparse-activity
// wakeup amortization, connect→close churn rate — must hold the
// committed BENCH_rpc.json numbers. Virtual time makes every value an
// exact function of the seed; the gate allows 10% slack on the rates
// so intentional simulation retuning fails loudly instead of silently
// rewriting the message-rate story. The amortization bound is the
// tentpole claim: one coalesced OnReady must replace at least 2
// per-event callback wakeups under sparse activity (measured: ~7.8).
// CI's rpc-smoke job runs exactly this test. (The suite simulates
// ~10k TCP connections yet runs in ~1s of wall time: lazy byte-ring
// allocation means idle connections never materialize their 1 MiB
// receive buffers.)
func TestRPCGate(t *testing.T) {
	// Baselines from BENCH_rpc.json (seed 4242, defaults: 32 echo conns
	// × 64 B, 10k sparse conns × 200 bursts of 8, 16 churners × 20 ms).
	const (
		baselineRPS      = 531200.0
		baselineChurn    = 163200.0
		minAmortization  = 2.0
		maxSparseLatency = 100 * time.Microsecond
	)
	res := RunRPC(RPCConfig{})
	t.Logf("echo %.0f RPS  wakeups poller=%d callback=%d (%.2fx, %d events)  latency poller=%v callback=%v  churn %.0f conn/s",
		res.EchoRPS, res.PollerWakeups, res.CallbackWakeups, res.AmortizationRatio,
		res.PollerEvents, res.PollerLatency, res.CallbackLatency, res.ChurnPerSec)

	if floor := 0.9 * baselineRPS; res.EchoRPS < floor {
		t.Errorf("echo rate %.0f RPS regressed >10%% vs BENCH_rpc.json %.0f RPS", res.EchoRPS, baselineRPS)
	}
	if res.AmortizationRatio < minAmortization {
		t.Errorf("poller amortization %.2fx below the %.0fx bound (poller %d vs callback %d wakeups)",
			res.AmortizationRatio, minAmortization, res.PollerWakeups, res.CallbackWakeups)
	}
	// Coalescing must not buy wakeups with latency: the poller's sparse
	// wakeup delay stays within 2 µs (one ReadyDelay) of the per-event
	// baseline and under an absolute ceiling.
	if res.PollerLatency > res.CallbackLatency+2*time.Microsecond {
		t.Errorf("poller latency %v exceeds callback latency %v by more than the coalescing delay",
			res.PollerLatency, res.CallbackLatency)
	}
	if res.PollerLatency > maxSparseLatency {
		t.Errorf("sparse wakeup latency %v exceeds %v", res.PollerLatency, maxSparseLatency)
	}
	if floor := 0.9 * baselineChurn; res.ChurnPerSec < floor {
		t.Errorf("churn rate %.0f conn/s regressed >10%% vs BENCH_rpc.json %.0f conn/s", res.ChurnPerSec, baselineChurn)
	}
}

// TestRPCShapeShort reruns the rpc experiment at a second, scaled-down
// configuration: the structural claims — coalescing ≥2x and a sane
// echo loop — must hold away from the exact BENCH_rpc.json point, not
// just at it.
func TestRPCShapeShort(t *testing.T) {
	res := RunRPC(RPCConfig{
		Conns: 8, Warmup: 5 * time.Millisecond, Window: 10 * time.Millisecond,
		SparseConns: 500, Bursts: 40, ChurnWindow: 5 * time.Millisecond,
	})
	t.Logf("echo %.0f RPS  amortization %.2fx  churn %.0f conn/s", res.EchoRPS, res.AmortizationRatio, res.ChurnPerSec)
	if res.RoundTrips == 0 {
		t.Error("echo loop moved no messages")
	}
	if res.AmortizationRatio < 2 {
		t.Errorf("poller amortization %.2fx below 2x even in the short tier", res.AmortizationRatio)
	}
	if res.ChurnCycles == 0 {
		t.Error("churn loop completed no cycles")
	}
}

// TestTraceOverheadGate is the telemetry overhead regression gate
// (DESIGN.md §9): with tracing off — the production default — the
// streaming echo must stay within 5% of the PR 3 goodput baseline
// recorded in BENCH_echo.json (15.5 Gbit/s, seed 4242). The registry
// counters are always on, so this gate prices the whole observability
// layer: atomic counters on every hot path plus the disabled tracer's
// nil-check-and-atomic-load. A traced run (1-in-64 sampling) is
// measured alongside and logged for EXPERIMENTS.md; it is
// informational, not gated, because sampled tracing is opt-in.
func TestTraceOverheadGate(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead echo pair takes ~60s")
	}
	// PR 3 baseline from BENCH_echo.json with the identical
	// configuration (100 ms warmup + 100 ms window, seed 4242).
	const baselineBps = 15.5e9
	cfg := CopyBudgetConfig{
		Warmup: 100 * time.Millisecond,
		Window: 100 * time.Millisecond,
	}
	off := RunCopyBudget(cfg)
	cfg.TraceSampleEvery = 64
	on := RunCopyBudget(cfg)

	t.Logf("tracing off: %.2f Gbit/s  tracing 1/64: %.2f Gbit/s  baseline: %.2f Gbit/s",
		off.GoodputBps/1e9, on.GoodputBps/1e9, baselineBps/1e9)
	if floor := 0.95 * baselineBps; off.GoodputBps < floor {
		t.Errorf("tracing-off goodput %.2f Gbit/s below the 5%% overhead floor %.2f Gbit/s",
			off.GoodputBps/1e9, floor/1e9)
	}
	if len(off.Spans) != 0 {
		t.Errorf("tracing off yet %d spans completed", len(off.Spans))
	}
	if len(on.Spans) == 0 {
		t.Error("tracing 1/64 completed no spans")
	}
}
