package experiments

import (
	"time"

	"netkernel/internal/hypervisor"
	"netkernel/internal/netsim"
)

// Figure4Config parameterizes the Figure 4 reproduction: "Throughput
// of TCP Cubic and NetKernel TCP Cubic NSM" on the 40 GbE testbed,
// 1–3 flows. "We observe the NetKernel NSM achieves virtually same
// throughput with running TCP Cubic natively in the VM. Both can
// achieve line rate (∼37 Gbps) when there are more than two flows."
type Figure4Config struct {
	// Flows lists the flow counts to sweep (default 1, 2, 3).
	Flows []int
	// Warmup precedes measurement after establishment (default 400 ms:
	// slow-start overshoot into the 4 MB switch buffer takes a few
	// hundred milliseconds of recovery to clear).
	Warmup time.Duration
	// Window is the measurement period (default 200 ms).
	Window time.Duration
	// PerPacketCost calibrates the single-flow per-core ceiling.
	// Default 470 ns/packet ≈ 25 Gbit/s of 1460-byte segments per
	// core, matching the paper's single-flow point.
	PerPacketCost time.Duration
	// Seed drives deterministic randomness.
	Seed uint64
}

func (c *Figure4Config) fillDefaults() {
	if len(c.Flows) == 0 {
		c.Flows = []int{1, 2, 3}
	}
	if c.Warmup <= 0 {
		c.Warmup = 400 * time.Millisecond
	}
	if c.Window <= 0 {
		c.Window = 200 * time.Millisecond
	}
	if c.PerPacketCost <= 0 {
		c.PerPacketCost = 470 * time.Nanosecond
	}
	if c.Seed == 0 {
		c.Seed = 4
	}
}

// Figure4Row is one x-position of Figure 4: both bars.
type Figure4Row struct {
	Flows      int
	NativeBps  float64 // legacy in-guest CUBIC
	NSMBps     float64 // NetKernel CUBIC NSM
	LineRate   float64 // achievable goodput ceiling for reference
	NativePct  float64 // of line rate
	NSMPct     float64
	NSMPenalty float64 // (native-nsm)/native
}

// RunFigure4 reproduces Figure 4.
func RunFigure4(cfg Figure4Config) []Figure4Row {
	cfg.fillDefaults()
	// Goodput ceiling of 40 GbE with 1460-byte segments:
	// 40e9 × 1460 / (1538 bytes on the wire).
	lineRate := 40e9 * 1460 / 1538

	var rows []Figure4Row
	for _, flows := range cfg.Flows {
		native := runFig4Scenario(cfg, flows, hypervisor.ModeLegacy)
		nsm := runFig4Scenario(cfg, flows, hypervisor.ModeNetKernel)
		rows = append(rows, Figure4Row{
			Flows:      flows,
			NativeBps:  native,
			NSMBps:     nsm,
			LineRate:   lineRate,
			NativePct:  native / lineRate * 100,
			NSMPct:     nsm / lineRate * 100,
			NSMPenalty: (native - nsm) / native,
		})
	}
	return rows
}

func runFig4Scenario(cfg Figure4Config, flows int, mode hypervisor.VMMode) float64 {
	w := NewWorld(WorldConfig{
		Link:          netsim.Testbed40G(),
		PerPacketCost: cfg.PerPacketCost,
		Cores:         8,
		Seed:          cfg.Seed,
		MinRTO:        10 * time.Millisecond,
		Mutate: func(hc *hypervisor.HostConfig) {
			// 40 GbE needs deep buffers: at ~0.5 ms of shm/queueing
			// latency a 1 MiB window caps a flow below 20 Gbit/s.
			hc.SendBufSize = 8 << 20
			hc.RecvBufSize = 8 << 20
			hc.ShmWindow = 8 << 20
		},
	})

	var sender, receiver *hypervisor.VM
	var err error
	switch mode {
	case hypervisor.ModeLegacy:
		sender, err = w.H1.CreateVM(hypervisor.VMConfig{Name: "snd", IP: SenderIP, Mode: mode})
		if err == nil {
			receiver, err = w.H2.CreateVM(hypervisor.VMConfig{Name: "rcv", IP: ReceiverIP, Mode: mode})
		}
	case hypervisor.ModeNetKernel:
		// The prototype's NSM form: a full VM (1 core per prototype;
		// here cores scale with flows as §2.1's scale-up describes,
		// since one 470 ns/pkt core cannot exceed ~25 Gbit/s).
		spec := hypervisor.NSMSpec{Form: hypervisor.FormVM, CC: "cubic", Cores: 8}
		sender, err = w.H1.CreateVM(hypervisor.VMConfig{Name: "snd", IP: SenderIP, Mode: mode, NSM: spec})
		if err == nil {
			receiver, err = w.H2.CreateVM(hypervisor.VMConfig{Name: "rcv", IP: ReceiverIP, Mode: mode, NSM: spec})
		}
	}
	if err != nil {
		panic(err)
	}

	if mode == hypervisor.ModeNetKernel {
		// Let the NSM VMs boot before traffic starts.
		w.Loop.RunFor(sender.NSM.Profile.BootTime + 50*time.Millisecond)
	}

	fl := make([]*Flow, flows)
	for i := 0; i < flows; i++ {
		port := uint16(5001 + i)
		if mode == hypervisor.ModeLegacy {
			fl[i] = StartLegacyFlow(w, sender, receiver, port)
		} else {
			fl[i] = StartNetKernelFlow(w, sender, receiver, port)
		}
	}
	return MeasureGoodput(w, fl, cfg.Warmup, cfg.Window)
}
