package experiments

import (
	"runtime"
	"time"

	"netkernel/internal/nkqueue"
	"netkernel/internal/nqe"
	"netkernel/internal/shm"
)

// These microbenchmarks are wall-clock measurements on real memory —
// the same quantity the paper measures on its Xeon E5-2618LV3 testbed.
// Absolute numbers scale with the host CPU; the reproduced claims are
// the shape (copy latency grows roughly linearly with chunk size and
// stays under a microsecond at 8 KB) and the conclusion ("NetKernel is
// unlikely to be the bottleneck in data transmission").

// Table1Chunks are the paper's chunk sizes.
var Table1Chunks = []int{64, 512, 1 << 10, 2 << 10, 4 << 10, 8 << 10}

// Table1Row is one column of Table 1: "Memory copying latency in
// NetKernel" (paper: 64B 8ns, 512B 64ns, 1KB 117ns, 2KB 214ns, 4KB
// 425ns, 8KB 809ns).
type Table1Row struct {
	ChunkBytes int
	Latency    time.Duration
}

// RunTable1 measures huge-page copy latency with random-offset reads,
// as §4.2 does ("the latency of memory copying between GuestLib and
// ServiceLib with random address reads").
func RunTable1(iters int) []Table1Row {
	if iters <= 0 {
		iters = 200000
	}
	pages, err := shm.NewHugePages(shm.DefaultPageCount, 8<<10)
	if err != nil {
		panic(err)
	}
	// Randomize offsets within one 2 MB huge page (cache-warm, like
	// the paper's sub-10ns 64-byte figure implies); spanning the full
	// 80 MB region instead measures DRAM latency, not copy cost.
	chunks := make([]shm.Chunk, 0, shm.PageSize/(8<<10))
	for cap(chunks) > len(chunks) {
		c, ok := pages.Alloc()
		if !ok {
			break
		}
		chunks = append(chunks, c)
	}
	src := make([]byte, 8<<10)
	for i := range src {
		src[i] = byte(i * 31)
	}
	dst := make([]byte, 8<<10)

	rows := make([]Table1Row, 0, len(Table1Chunks))
	var sink byte
	for _, size := range Table1Chunks {
		// Warm the whole randomized set into cache.
		for i := 0; i < 4*len(chunks); i++ {
			pages.Write(chunks[i%len(chunks)], src)
		}
		idx := uint64(0x9e3779b97f4a7c15)
		start := time.Now()
		for i := 0; i < iters; i++ {
			idx = idx*6364136223846793005 + 1442695040888963407
			c := chunks[idx%uint64(len(chunks))]
			pages.Write(c, src[:size])
			pages.Read(c, dst[:size], size)
			sink ^= dst[0]
		}
		elapsed := time.Since(start)
		// Two copies (write + read) per iteration; the paper reports a
		// single copy.
		rows = append(rows, Table1Row{ChunkBytes: size, Latency: elapsed / time.Duration(2*iters)})
	}
	runtime.KeepAlive(sink)
	return rows
}

// NqeCopyCost measures the CoreEngine's queue-to-queue element copy —
// §4.2: "A nqe is copied between VM and NSM via CoreEngine. The cost
// of this is ∼12ns per event."
func NqeCopyCost(iters int) time.Duration {
	if iters <= 0 {
		iters = 1 << 20
	}
	src, err := nkqueue.NewQueue(nkqueue.Config{Slots: 2})
	if err != nil {
		panic(err)
	}
	dst, err := nkqueue.NewQueue(nkqueue.Config{Slots: 2})
	if err != nil {
		panic(err)
	}
	e := nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM, VMID: 1, FD: 3, Seq: 1, DataLen: 1448}
	var scratch nqe.Element
	start := time.Now()
	for i := 0; i < iters; i++ {
		src.Push(&e)
		nkqueue.Move(dst, src)
		dst.Pop(&scratch)
	}
	elapsed := time.Since(start)
	// Push and Pop bracket the measured Move; calibrate them away.
	calStart := time.Now()
	for i := 0; i < iters; i++ {
		src.Push(&e)
		src.Pop(&scratch)
	}
	overhead := time.Since(calStart)
	per := (elapsed - overhead) / time.Duration(iters)
	if per < 0 {
		per = 0
	}
	return per
}

// ShmChannelRow is one point of the §4.2 channel-throughput
// measurement: "NetKernel can achieve ∼64Gbps (64B) and ∼81Gbps (8KB)
// between GuestLib and ServiceLib for each core."
type ShmChannelRow struct {
	ChunkBytes int
	BitsPerSec float64
}

// RunShmChannel measures GuestLib↔ServiceLib data-channel throughput
// for one core: data chunks copied into huge pages, descriptors pushed
// through a ring, then copied back out on the consumer side — the full
// §3.2 transport datapath without the TCP stack behind it.
func RunShmChannel(chunks []int, duration time.Duration) []ShmChannelRow {
	if len(chunks) == 0 {
		chunks = []int{64, 8 << 10}
	}
	if duration <= 0 {
		duration = 200 * time.Millisecond
	}
	rows := make([]ShmChannelRow, 0, len(chunks))
	for _, size := range chunks {
		rows = append(rows, ShmChannelRow{ChunkBytes: size, BitsPerSec: shmChannelRate(size, duration)})
	}
	return rows
}

func shmChannelRate(chunkSize int, duration time.Duration) float64 {
	pages, err := shm.NewHugePages(4, 8<<10)
	if err != nil {
		panic(err)
	}
	ring, err := shm.NewRing(1024, nqe.Size)
	if err != nil {
		panic(err)
	}
	src := make([]byte, chunkSize)
	dst := make([]byte, chunkSize)
	var e, out nqe.Element
	var moved uint64

	deadline := time.Now().Add(duration)
	slot := make([]byte, nqe.Size)
	for time.Now().Before(deadline) {
		// Batch to amortize the deadline check.
		for b := 0; b < 256; b++ {
			chunk, ok := pages.Alloc()
			if !ok {
				break
			}
			pages.Write(chunk, src)
			e = nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM, DataOff: chunk.Offset, DataLen: uint32(chunkSize)}
			e.Encode(slot)
			if !ring.Enqueue(slot) {
				pages.Free(chunk)
				break
			}
			// Consumer side.
			if ring.Dequeue(slot) {
				out.Decode(slot)
				c := shm.Chunk{Offset: out.DataOff}
				pages.Read(c, dst, int(out.DataLen))
				pages.Free(c)
				moved += uint64(out.DataLen)
			}
		}
	}
	return float64(moved) * 8 / duration.Seconds()
}
