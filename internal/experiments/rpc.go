package experiments

// Message-rate experiment (DESIGN.md §11): the short-flow counterpart
// of the bulk-transfer figures. Bulk goodput hides the per-operation
// costs that dominate RPC-style tenants — connection setup, teardown,
// and the wakeup that tells the application one small message arrived.
// RunRPC measures three of them on the NetKernel path:
//
//   - Echo RPS: closed-loop small-message echo across Conns
//     connections; the server runs the Poller/AcceptBatch fast path,
//     the client the classic per-event callbacks, so one run covers
//     both APIs end to end.
//   - Sparse wakeups: SparseConns mostly-idle connections on one
//     poller; bursts of BurstSize messages land on random connections
//     and the poller must coalesce each burst into ~one OnReady. The
//     identical scenario replayed with per-event callbacks is the
//     baseline the ≥2x amortization gate compares against.
//   - Churn: closed-loop connect→close cycles, the setup/teardown rate
//     the socket/connState recycling pools exist for.
//
// Everything runs in virtual time, so every number is an exact
// function of the seed; BENCH_rpc.json records the committed baselines
// and TestRPCGate enforces them.

import (
	"encoding/binary"
	"time"

	"netkernel/internal/guestlib"
	"netkernel/internal/hypervisor"
	"netkernel/internal/netsim"
	"netkernel/internal/sim"
)

// RPCConfig shapes the message-rate measurement.
type RPCConfig struct {
	// Conns is the echo phase's closed-loop connection count (default 32).
	Conns int
	// MsgBytes is the echo message size (default 64, well inside the
	// small-chunk class).
	MsgBytes int
	// Warmup precedes the echo window (default 20 ms after boot).
	Warmup time.Duration
	// Window is the measured echo period (default 50 ms).
	Window time.Duration
	// SparseConns is the sparse phase's connection count (default
	// 10000; -short runs shrink it).
	SparseConns int
	// Bursts is how many activity bursts the sparse phase injects
	// (default 200).
	Bursts int
	// BurstSize is how many connections receive a message per burst
	// (default 8).
	BurstSize int
	// BurstGap separates bursts (default 100 µs).
	BurstGap time.Duration
	// Churners is the churn phase's concurrent connect→close loop count
	// (default 16; each cycle burns one ephemeral port until its
	// TIME_WAIT expires, so Churners×Window must stay well under the
	// 16k-port range).
	Churners int
	// ChurnWindow is the measured churn period (default 20 ms).
	ChurnWindow time.Duration
	// Seed drives deterministic randomness (default 4242).
	Seed uint64
}

func (c *RPCConfig) fillDefaults() {
	if c.Conns <= 0 {
		c.Conns = 32
	}
	if c.MsgBytes <= 0 {
		c.MsgBytes = 64
	}
	if c.Warmup <= 0 {
		c.Warmup = 20 * time.Millisecond
	}
	if c.Window <= 0 {
		c.Window = 50 * time.Millisecond
	}
	if c.SparseConns <= 0 {
		c.SparseConns = 10000
	}
	if c.Bursts <= 0 {
		c.Bursts = 200
	}
	if c.BurstSize <= 0 {
		c.BurstSize = 8
	}
	if c.BurstGap <= 0 {
		c.BurstGap = 100 * time.Microsecond
	}
	if c.Churners <= 0 {
		c.Churners = 16
	}
	if c.ChurnWindow <= 0 {
		c.ChurnWindow = 20 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 4242
	}
}

// RPCResult reports one run of the message-rate measurement.
type RPCResult struct {
	Conns    int
	MsgBytes int
	// RoundTrips is the echo round trips completed in the window.
	RoundTrips uint64
	// EchoRPS is RoundTrips over the window.
	EchoRPS float64

	SparseConns int
	// PollerWakeups counts server OnReady invocations during the burst
	// phase; PollerEvents the readiness notifications they delivered.
	PollerWakeups, PollerEvents uint64
	// CallbackWakeups counts the per-event callback invocations the
	// identical scenario costs without a poller.
	CallbackWakeups uint64
	// AmortizationRatio is CallbackWakeups / PollerWakeups — how many
	// per-event wakeups one coalesced OnReady replaces (the ≥2x gate).
	AmortizationRatio float64
	// PollerLatency and CallbackLatency are the mean send→drain delays
	// for sparse messages in each mode.
	PollerLatency, CallbackLatency time.Duration

	// ChurnCycles is completed connect→close cycles in ChurnWindow;
	// ChurnPerSec is the rate.
	ChurnCycles uint64
	ChurnPerSec float64
}

// newRPCWorld builds the short-fat-pipe testbed every phase reuses: a
// 40G link with a 5 µs one-way delay, so per-operation costs (channel
// hops, notification latency, packet processing) dominate over
// propagation and the message rate is a property of the stack, not the
// wire.
func newRPCWorld(seed uint64) *World {
	return NewWorld(WorldConfig{
		Link:          netsim.LinkConfig{Rate: 40 * netsim.Gbps, Delay: 5 * time.Microsecond, QueueBytes: 1 << 20},
		PerPacketCost: 500 * time.Nanosecond,
		Cores:         8,
		Seed:          seed,
		MinRTO:        10 * time.Millisecond,
	})
}

func mkRPCVM(h *hypervisor.Host, ip [4]byte) *hypervisor.VM {
	vm, err := h.CreateVM(hypervisor.VMConfig{
		Name: "rpc", IP: ip, Mode: hypervisor.ModeNetKernel,
		NSM: hypervisor.NSMSpec{Form: hypervisor.FormVM, CC: "cubic", Cores: 4},
	})
	if err != nil {
		panic(err)
	}
	return vm
}

// pollServer wires a poller-driven echo/drain server: AcceptBatch on
// the listener, onData per readable connection, Close on EOF. Add runs
// after Listen so the OpPollCtl lands on the listener, not the
// pre-listen socket.
func pollServer(rg *guestlib.GuestLib, port uint16, onData func(fd int32, p []byte)) *guestlib.Poller {
	buf := make([]byte, 64<<10)
	batch := make([]int32, 64)
	events := make([]guestlib.PollEvent, 128)
	var p *guestlib.Poller
	var lfd int32
	drain := func(fd int32) {
		for {
			n, eof := rg.Recv(fd, buf)
			if n > 0 && onData != nil {
				onData(fd, buf[:n])
			}
			if n == 0 {
				if eof {
					rg.Close(fd)
				}
				return
			}
		}
	}
	p = rg.NewPoller(func() {
		for {
			n := p.Wait(events)
			if n == 0 {
				return
			}
			for _, ev := range events[:n] {
				if ev.FD == lfd {
					for {
						m := rg.AcceptBatch(lfd, batch)
						for _, fd := range batch[:m] {
							p.Add(fd)
						}
						if m < len(batch) {
							break
						}
					}
					continue
				}
				drain(ev.FD)
			}
		}
	})
	lfd = rg.Socket(guestlib.Callbacks{})
	if err := rg.Listen(lfd, port, 512); err != nil {
		panic(err)
	}
	if err := p.Add(lfd); err != nil {
		panic(err)
	}
	return p
}

// callbackServer is the same server on the legacy per-event API:
// OnAcceptable accepts one at a time, every connection gets its own
// OnReadable. wake counts the callback invocations — the wakeup cost
// the poller amortizes away.
func callbackServer(rg *guestlib.GuestLib, port uint16, wake *uint64, onData func(fd int32, p []byte)) {
	buf := make([]byte, 64<<10)
	drain := func(fd int32) {
		for {
			n, eof := rg.Recv(fd, buf)
			if n > 0 && onData != nil {
				onData(fd, buf[:n])
			}
			if n == 0 {
				if eof {
					rg.Close(fd)
				}
				return
			}
		}
	}
	var lfd int32
	lfd = rg.Socket(guestlib.Callbacks{OnAcceptable: func() {
		*wake++
		for {
			fd, ok := rg.Accept(lfd)
			if !ok {
				return
			}
			rg.SetCallbacks(fd, guestlib.Callbacks{OnReadable: func() {
				*wake++
				drain(fd)
			}})
			drain(fd)
		}
	}})
	if err := rg.Listen(lfd, port, 512); err != nil {
		panic(err)
	}
}

// runEcho measures closed-loop small-message echo RPS.
func runEcho(cfg RPCConfig) (uint64, float64) {
	w := newRPCWorld(cfg.Seed)
	client := mkRPCVM(w.H1, SenderIP)
	server := mkRPCVM(w.H2, ReceiverIP)
	w.Loop.RunFor(client.NSM.Profile.BootTime + 50*time.Millisecond)

	sg, rg := client.Guest, server.Guest
	const port = 9000
	pollServer(rg, port, func(fd int32, p []byte) {
		rg.Send(fd, p) // echo
	})

	var rts uint64
	msg := make([]byte, cfg.MsgBytes)
	cliBuf := make([]byte, 4<<10)
	for i := 0; i < cfg.Conns; i++ {
		var fd int32
		remaining := cfg.MsgBytes
		fd = sg.Socket(guestlib.Callbacks{
			OnEstablished: func(err error) {
				if err == nil {
					sg.Send(fd, msg)
				}
			},
			OnReadable: func() {
				for {
					n, _ := sg.Recv(fd, cliBuf)
					if n == 0 {
						return
					}
					remaining -= n
					for remaining <= 0 {
						rts++
						remaining += cfg.MsgBytes
						sg.Send(fd, msg)
					}
				}
			},
		})
		if err := sg.Connect(fd, ReceiverIP, port); err != nil {
			panic(err)
		}
	}

	w.Loop.RunFor(cfg.Warmup)
	base := rts
	w.Loop.RunFor(cfg.Window)
	done := rts - base
	return done, float64(done) / cfg.Window.Seconds()
}

// runSparse builds SparseConns mostly-idle connections, injects
// Bursts×BurstSize timestamped messages on random ones, and reports
// (wakeups, events, mean send→drain latency) for the chosen server
// mode. Both modes run the byte-identical client schedule.
func runSparse(cfg RPCConfig, usePoller bool) (wakeups, events uint64, lat time.Duration) {
	w := newRPCWorld(cfg.Seed)
	client := mkRPCVM(w.H1, SenderIP)
	server := mkRPCVM(w.H2, ReceiverIP)
	w.Loop.RunFor(client.NSM.Profile.BootTime + 50*time.Millisecond)

	sg, rg := client.Guest, server.Guest
	const port = 9100

	// Server: drain 8-byte timestamp frames; a connection picked twice
	// in one burst delivers 16 bytes, so frames are parsed from a
	// per-connection remainder.
	var latSum time.Duration
	var latN uint64
	pending := map[int32][]byte{}
	onData := func(fd int32, p []byte) {
		b := append(pending[fd], p...)
		for len(b) >= 8 {
			sent := sim.Time(binary.LittleEndian.Uint64(b))
			latSum += w.Loop.Now().Sub(sent)
			latN++
			b = b[8:]
		}
		pending[fd] = b
	}
	var cbWakeups uint64
	if usePoller {
		pollServer(rg, port, onData)
	} else {
		callbackServer(rg, port, &cbWakeups, onData)
	}

	// Client: connect in 250-conn waves so the listener backlog never
	// overflows, then wait for every handshake.
	fds := make([]int32, 0, cfg.SparseConns)
	established := 0
	var wave func(start int)
	wave = func(start int) {
		end := min(start+250, cfg.SparseConns)
		for i := start; i < end; i++ {
			fd := sg.Socket(guestlib.Callbacks{
				OnEstablished: func(err error) {
					if err == nil {
						established++
					}
				},
			})
			if err := sg.Connect(fd, ReceiverIP, port); err != nil {
				panic(err)
			}
			fds = append(fds, fd)
		}
		if end < cfg.SparseConns {
			w.Loop.AfterFunc(time.Millisecond, func() { wave(end) })
		}
	}
	wave(0)
	for i := 0; i < 400 && established < cfg.SparseConns; i++ {
		w.Loop.RunFor(5 * time.Millisecond)
	}
	if established < cfg.SparseConns {
		panic("rpc sparse phase: connections failed to establish")
	}

	// Quiesce, then snapshot the wakeup counters so setup noise
	// (accept storms, handshake completions) stays out of the measure.
	w.Loop.RunFor(10 * time.Millisecond)
	st := rg.Stats()
	wake0, ev0, cb0 := st.PollerWakeups, st.PollerEvents, cbWakeups

	rng := sim.NewRNG(cfg.Seed*7 + 11)
	for b := 0; b < cfg.Bursts; b++ {
		w.Loop.AfterFunc(time.Duration(b+1)*cfg.BurstGap, func() {
			for k := 0; k < cfg.BurstSize; k++ {
				fd := fds[rng.Intn(len(fds))]
				var msg [8]byte
				binary.LittleEndian.PutUint64(msg[:], uint64(w.Loop.Now()))
				sg.Send(fd, msg[:])
			}
		})
	}
	w.Loop.RunFor(time.Duration(cfg.Bursts+2)*cfg.BurstGap + 10*time.Millisecond)

	st = rg.Stats()
	if usePoller {
		wakeups, events = st.PollerWakeups-wake0, st.PollerEvents-ev0
	} else {
		wakeups, events = cbWakeups-cb0, cbWakeups-cb0
	}
	if latN > 0 {
		lat = latSum / time.Duration(latN)
	}
	return wakeups, events, lat
}

// runChurn measures the closed-loop connect→close cycle rate.
func runChurn(cfg RPCConfig) (uint64, float64) {
	w := newRPCWorld(cfg.Seed)
	client := mkRPCVM(w.H1, SenderIP)
	server := mkRPCVM(w.H2, ReceiverIP)
	w.Loop.RunFor(client.NSM.Profile.BootTime + 50*time.Millisecond)

	sg, rg := client.Guest, server.Guest
	const port = 9200
	pollServer(rg, port, nil) // accept, drain, close on EOF

	var cycles uint64
	for i := 0; i < cfg.Churners; i++ {
		var cycle func()
		cycle = func() {
			var fd int32
			fd = sg.Socket(guestlib.Callbacks{
				OnEstablished: func(err error) {
					if err == nil {
						sg.Close(fd)
					}
				},
				OnClose: func(error) {
					cycles++
					cycle()
				},
			})
			if err := sg.Connect(fd, ReceiverIP, port); err != nil {
				panic(err)
			}
		}
		cycle()
	}

	w.Loop.RunFor(10 * time.Millisecond)
	base := cycles
	w.Loop.RunFor(cfg.ChurnWindow)
	done := cycles - base
	return done, float64(done) / cfg.ChurnWindow.Seconds()
}

// RunRPC runs the three message-rate phases, each on a fresh testbed
// with the same seed.
func RunRPC(cfg RPCConfig) RPCResult {
	cfg.fillDefaults()
	res := RPCResult{Conns: cfg.Conns, MsgBytes: cfg.MsgBytes, SparseConns: cfg.SparseConns}
	res.RoundTrips, res.EchoRPS = runEcho(cfg)
	res.PollerWakeups, res.PollerEvents, res.PollerLatency = runSparse(cfg, true)
	res.CallbackWakeups, _, res.CallbackLatency = runSparse(cfg, false)
	if res.PollerWakeups > 0 {
		res.AmortizationRatio = float64(res.CallbackWakeups) / float64(res.PollerWakeups)
	}
	res.ChurnCycles, res.ChurnPerSec = runChurn(cfg)
	return res
}
