package experiments

// Scale-out experiment (DESIGN.md §10): the journal version's headline
// efficiency claim is many tenant VMs multiplexed onto one shared,
// multi-queue NSM that spreads its packet processing across cores. The
// measurement multiplexes VMs tenant VMs per host onto a single
// multi-core NSM and opens FlowsPerVM bulk flows per tenant; RSS flow
// steering (vswitch.TupleHash over the 4-tuple) pins each flow to a
// channel shard and the NSM stack dispatches each flow's packets to
// CPU core == shard. Shards=1 models the conference paper's
// single-queue NSM — every flow serialized on core 0, the scale-out
// baseline — while Shards=N spreads the same offered load over N
// cores. The NSM's CPU size is held constant across runs so the only
// variable is steering.

import (
	"time"

	"netkernel/internal/hypervisor"
	"netkernel/internal/netsim"
)

// ScaleoutConfig shapes the many-VM/many-flow measurement.
type ScaleoutConfig struct {
	// Shards is the channel/stack shard count (default 1, the
	// single-queue baseline).
	Shards int
	// VMs is the tenant VM count per host (default 8).
	VMs int
	// FlowsPerVM is the concurrent bulk flows per tenant (default 4).
	FlowsPerVM int
	// Cores sizes each NSM's dedicated CPU (default 4; identical for
	// every shard count so runs differ only in steering).
	Cores int
	// Warmup precedes the measured window (default 100 ms after boot).
	Warmup time.Duration
	// Window is the measured period (default 100 ms).
	Window time.Duration
	// Seed drives deterministic randomness (default 4242).
	Seed uint64
}

func (c *ScaleoutConfig) fillDefaults() {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.VMs <= 0 {
		c.VMs = 8
	}
	if c.FlowsPerVM <= 0 {
		c.FlowsPerVM = 4
	}
	if c.Cores <= 0 {
		c.Cores = 4
	}
	if c.Warmup <= 0 {
		c.Warmup = 50 * time.Millisecond
	}
	if c.Window <= 0 {
		c.Window = 50 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 4242
	}
}

// ScaleoutResult reports one run of the many-VM/many-flow measurement.
type ScaleoutResult struct {
	Shards int
	VMs    int
	Flows  int
	// Established counts flows that completed their handshake.
	Established int
	// AggregateBps is the summed receive-side goodput over the window.
	AggregateBps float64
	// ShardConns is the server NSM's per-shard connection-table
	// occupancy at the end of the window (length == stack shards).
	ShardConns []int
}

// RunScaleout multiplexes cfg.VMs tenants per host onto one shared
// multi-core NSM each and measures aggregate goodput across
// VMs×FlowsPerVM bulk flows.
func RunScaleout(cfg ScaleoutConfig) ScaleoutResult {
	cfg.fillDefaults()
	w := NewWorld(WorldConfig{
		// Fat, short pipe: the 100G link never binds, so aggregate
		// goodput is set by how many NSM cores the steering can keep
		// busy at PerPacketCost per frame.
		Link:          netsim.LinkConfig{Rate: 100 * netsim.Gbps, Delay: 20 * time.Microsecond, QueueBytes: 2 << 20},
		PerPacketCost: 2 * time.Microsecond,
		Cores:         8,
		Seed:          cfg.Seed,
		MinRTO:        10 * time.Millisecond,
		Mutate: func(hc *hypervisor.HostConfig) {
			hc.Shards = cfg.Shards
		},
	})

	// One multi-core NSM per host; tenant 0 boots it, the rest attach
	// to it (ShareWith) and inherit its network identity.
	mkTenants := func(h *hypervisor.Host, ip [4]byte) []*hypervisor.VM {
		vms := make([]*hypervisor.VM, cfg.VMs)
		var first *hypervisor.NSM
		for i := range vms {
			spec := hypervisor.NSMSpec{Form: hypervisor.FormVM, CC: "cubic", Cores: cfg.Cores}
			if first != nil {
				spec = hypervisor.NSMSpec{ShareWith: first}
			}
			vm, err := h.CreateVM(hypervisor.VMConfig{
				Name: "tenant", IP: ip, Mode: hypervisor.ModeNetKernel, NSM: spec,
			})
			if err != nil {
				panic(err)
			}
			vms[i] = vm
			if first == nil {
				first = vm.NSM
			}
		}
		return vms
	}
	clients := mkTenants(w.H1, SenderIP)
	servers := mkTenants(w.H2, ReceiverIP)

	w.Loop.RunFor(clients[0].NSM.Profile.BootTime + 50*time.Millisecond)

	// FlowsPerVM bulk flows from each client tenant to its paired
	// server tenant, every flow on its own port so the 4-tuples (and
	// therefore the RSS shards) spread.
	var flows []*Flow
	for i := 0; i < cfg.VMs; i++ {
		for j := 0; j < cfg.FlowsPerVM; j++ {
			port := uint16(7000 + i*cfg.FlowsPerVM + j)
			flows = append(flows, StartFlow(w, clients[i], servers[i], port))
		}
	}

	agg := MeasureGoodput(w, flows, cfg.Warmup, cfg.Window)

	res := ScaleoutResult{
		Shards:       cfg.Shards,
		VMs:          cfg.VMs,
		Flows:        len(flows),
		AggregateBps: agg,
	}
	for _, f := range flows {
		if f.Established() {
			res.Established++
		}
	}
	st := servers[0].NSM.Stack
	for i := 0; i < st.RxShards(); i++ {
		res.ShardConns = append(res.ShardConns, st.ShardConnCount(i))
	}
	return res
}
